#!/usr/bin/env python3
"""Check the metrics-registry overhead pairs in BENCH_alm.json.

The observability layer promises <5% overhead on the hot paths it touches.
bench_to_json runs each instrumented benchmark next to its bare twin on
identical inputs; this script compares their cpu_time per size:

    BM_TransportThroughputMetrics/N  vs  BM_TransportThroughput/N
    BM_PlanSessionMetrics/N          vs  BM_PlanSession/N
    BM_SomoGatherAlerts/N            vs  BM_SomoGather/N

When the JSON holds repetition aggregates (run_benches.sh passes
--benchmark_repetitions for the overhead pass), the median row is used —
single-shot same-process comparisons swing 10-30% with scheduling and
thermal noise, far above the effect being measured.

Exit 0 when every pair is under the threshold, 1 otherwise (the caller
treats failure as a warning — benchmark noise should not fail a build).

Usage: check_bench_overhead.py BENCH.json [--threshold 0.05]
"""

import argparse
import json
import sys

PAIRS = [
    ("BM_TransportThroughputMetrics", "BM_TransportThroughput"),
    ("BM_PlanSessionMetrics", "BM_PlanSession"),
    ("BM_SomoGatherAlerts", "BM_SomoGather"),
]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench_json")
    parser.add_argument("--threshold", type=float, default=0.05)
    args = parser.parse_args()

    with open(args.bench_json, encoding="utf-8") as f:
        data = json.load(f)

    times = {}
    have_medians = any(
        b.get("aggregate_name") == "median" for b in data.get("benchmarks", [])
    )
    for b in data.get("benchmarks", []):
        if have_medians:
            if b.get("aggregate_name") != "median":
                continue
            times[b["run_name"]] = float(b.get("cpu_time", b["real_time"]))
        elif b.get("run_type", "iteration") == "iteration":
            times[b["name"]] = float(b.get("cpu_time", b["real_time"]))

    failures = 0
    checked = 0
    for instrumented, bare in PAIRS:
        for name, t_inst in sorted(times.items()):
            if not name.startswith(instrumented + "/"):
                continue
            size = name.split("/", 1)[1]
            base = times.get(f"{bare}/{size}")
            if base is None or base <= 0.0:
                continue
            checked += 1
            overhead = t_inst / base - 1.0
            status = "ok" if overhead <= args.threshold else "FAIL"
            print(
                f"{status:>4}  {instrumented}/{size}: {overhead:+.2%} "
                f"vs {bare}/{size}"
            )
            if overhead > args.threshold:
                failures += 1

    if checked == 0:
        print("no overhead pairs found in", args.bench_json, file=sys.stderr)
        return 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
