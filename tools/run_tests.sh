#!/usr/bin/env bash
# Build and run the full test suite twice: once under the default
# (RelWithDebInfo) preset and once under ASan+UBSan. The sanitizer pass is
# what catches the lifetime bugs event-driven code is prone to (callbacks
# outliving protocols, trace sinks outliving simulations), so treat a clean
# default run as only half a result.
#
# Usage: tools/run_tests.sh [--report] [--big] [preset...]
#                                           # default: "default sanitize"
#   tools/run_tests.sh default              # quick pass only
#   tools/run_tests.sh sanitize             # sanitizer pass only
#   tools/run_tests.sh tsan                 # ThreadSanitizer, sharded-kernel
#                                           # suites only (Shard*)
#   tools/run_tests.sh --report default     # also run every CLI experiment
#                                           # with --report and validate the
#                                           # emitted p2preport/v1 JSON
#   tools/run_tests.sh --big default        # opt-in 100k-preset fullstack
#                                           # smoke (minutes of wall time;
#                                           # skipped by default). With
#                                           # --report it joins the a/b
#                                           # same-seed double-run diff.
set -euo pipefail

repo_root=$(cd -- "$(dirname -- "${BASH_SOURCE[0]}")/.." && pwd)
cd "$repo_root"

report_mode=0
big_mode=0
presets=()
for arg in "$@"; do
  if [ "$arg" = "--report" ]; then
    report_mode=1
  elif [ "$arg" = "--big" ]; then
    big_mode=1
  else
    presets+=("$arg")
  fi
done
if [ ${#presets[@]} -eq 0 ]; then
  presets=(default sanitize)
fi

for preset in "${presets[@]}"; do
  echo "==== preset: $preset ===="
  if [ "$preset" = "tsan" ]; then
    # ThreadSanitizer pass: only the sharded-kernel suites run threads, so
    # build just their binary and run it directly with a Shard* filter —
    # the multi-threaded TwoShard/mailbox paths are what TSan can catch
    # (single-threaded suites under TSan add minutes and no coverage).
    cmake --preset tsan
    cmake --build --preset tsan -j "$(nproc)" --target sim_shard_tests
    build-tsan/tests/sim_shard_tests --gtest_filter='Shard*'
    continue
  fi
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$(nproc)"
  ctest --preset "$preset" -j "$(nproc)"
done

if [ "$report_mode" = 1 ]; then
  echo "==== run-report validation ===="
  if ! command -v python3 >/dev/null 2>&1; then
    echo "error: --report mode needs python3 for tools/validate_report.py" >&2
    exit 1
  fi
  cli="build/tools/p2ppool_cli"
  if [ ! -x "$cli" ]; then
    cmake --preset default
    cmake --build --preset default -j "$(nproc)" --target p2ppool_cli
  fi
  report_dir=$(mktemp -d)
  trap 'rm -rf "$report_dir"' EXIT
  # Each experiment runs twice at the same (default) seed: pass `a`
  # validates the report plumbing, pass `b` exists so compare_reports.py
  # can enforce that same-seed reports are identical — the determinism
  # contract every replanning/regression diff rests on. Small instances:
  # this validates plumbing, not experiment scale.
  mkdir "$report_dir/a" "$report_dir/b"
  for pass in a b; do
    out="$report_dir/$pass"
    "$cli" plan --group 40                 --report "$out/plan.json"      >/dev/null
    "$cli" multi --sessions 10             --report "$out/multi.json"     >/dev/null
    "$cli" somo --nodes 32 --horizon-ms 20000 --report "$out/somo.json"   >/dev/null
    "$cli" somo-loss --nodes 24 --horizon-ms 20000 --report "$out/somo-loss.json" >/dev/null
    "$cli" hb-jitter --nodes 24 --horizon-ms 20000 --report "$out/hb-jitter.json" >/dev/null
    "$cli" topo --hosts 300                --report "$out/topo.json"      >/dev/null
    "$cli" fullstack --preset 1200 --oracle hier --group 20 \
           --horizon-ms 10000 --report "$out/fullstack.json" >/dev/null
    # Sharded kernel determinism: same seed, 2 shards — byte-identical
    # reports across the a/b passes is the multi-shard contract.
    "$cli" fullstack --preset 1200 --shards 2 --group 20 \
           --horizon-ms 10000 --report "$out/fullstack-sharded.json" >/dev/null
    # Opt-in 100k-preset smoke (minutes per pass): the a/b diff extends
    # the same-seed byte-identical contract to the big-preset SoA +
    # parallel-build paths at their intended scale.
    if [ "$big_mode" = 1 ]; then
      "$cli" fullstack --preset 100k --shards 8 --group 20 \
             --horizon-ms 5000 --report "$out/fullstack-100k.json" >/dev/null
    fi
    "$cli" observe --nodes 32 --horizon-ms 20000 --timeseries-dir "$out" \
           --report "$out/observe.json" >/dev/null
    # In-band alerting loop: the report embeds per-arm alert event logs
    # (virtual-time transitions), so the a/b diff enforces byte-identical
    # alert histories. The nested --timeseries-dir does not exist yet —
    # exercising the EnsureDir path — and the alert_*.csv event logs land
    # there. 36 s horizon: long enough for crash + detection + recovery.
    "$cli" alert --preset 1200 --oracle hier --horizon-ms 36000 \
           --timeseries-dir "$out/alert_ts/nested" \
           --report "$out/alert.json" >/dev/null
    # Planner comparison (tree vs mesh, repair scenarios included): the
    # report carries per-planner repair rows, so the a/b diff also pins
    # the mesh rng-stream-continuation repair path to determinism.
    "$cli" compare --preset 1200 --group 20 --helpers 100 \
           --report "$out/compare.json" >/dev/null
  done
  python3 tools/validate_report.py "$report_dir"/a/*.json
  for report in "$report_dir"/a/*.json; do
    python3 tools/compare_reports.py \
      "$report" "$report_dir/b/$(basename "$report")"
  done
fi

if [ "$big_mode" = 1 ] && [ "$report_mode" = 0 ]; then
  echo "==== big-preset smoke (100k fullstack, 8 shards) ===="
  cli="build/tools/p2ppool_cli"
  if [ ! -x "$cli" ]; then
    cmake --preset default
    cmake --build --preset default -j "$(nproc)" --target p2ppool_cli
  fi
  "$cli" fullstack --preset 100k --shards 8 --group 20 --horizon-ms 5000
fi

echo "all test presets passed: ${presets[*]}"
