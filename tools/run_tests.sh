#!/usr/bin/env bash
# Build and run the full test suite twice: once under the default
# (RelWithDebInfo) preset and once under ASan+UBSan. The sanitizer pass is
# what catches the lifetime bugs event-driven code is prone to (callbacks
# outliving protocols, trace sinks outliving simulations), so treat a clean
# default run as only half a result.
#
# Usage: tools/run_tests.sh [preset...]     # default: "default sanitize"
#   tools/run_tests.sh default              # quick pass only
#   tools/run_tests.sh sanitize             # sanitizer pass only
set -euo pipefail

repo_root=$(cd -- "$(dirname -- "${BASH_SOURCE[0]}")/.." && pwd)
cd "$repo_root"

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(default sanitize)
fi

for preset in "${presets[@]}"; do
  echo "==== preset: $preset ===="
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$(nproc)"
  ctest --preset "$preset" -j "$(nproc)"
done

echo "all test presets passed: ${presets[*]}"
