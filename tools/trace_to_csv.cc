// trace_to_csv — convert a "p2ptrace" dump (TraceSink::WriteText, as
// written by `p2ppool_cli somo --trace FILE`) into CSV for external
// plotting. Reads both v1 (no drop cause) and v2 dumps via the shared
// obs::ReadTrace parser; the CSV always carries the cause column (v1
// records report "none").
//
//   trace_to_csv trace.txt            > trace.csv
//   trace_to_csv trace.txt out.csv
//
// Prints a per-protocol summary (messages, bytes, drops by cause) to
// stderr, so the CSV on stdout stays clean.
#include <cstdio>
#include <map>
#include <string>

#include "obs/trace_reader.h"

namespace {

struct ProtoSummary {
  std::size_t messages = 0;
  std::size_t bytes = 0;
  std::size_t drops_loss = 0;
  std::size_t drops_partition = 0;
};

int Fail(const std::string& msg) {
  std::fprintf(stderr, "trace_to_csv: %s\n", msg.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || argc > 3) {
    std::fprintf(stderr,
                 "usage: trace_to_csv <trace.txt> [out.csv]\n"
                 "converts a p2ptrace v1/v2 dump to CSV (stdout by default)\n");
    return 2;
  }
  p2p::obs::TraceFile trace;
  std::string error;
  if (!p2p::obs::ReadTraceFile(argv[1], &trace, &error)) return Fail(error);
  if (trace.truncated())
    std::fprintf(stderr,
                 "trace_to_csv: warning: trace truncated (%zu of %zu "
                 "records kept — raise --trace-cap)\n",
                 trace.held, trace.total);

  std::FILE* out = stdout;
  if (argc == 3) {
    out = std::fopen(argv[2], "w");
    if (out == nullptr) return Fail("cannot open output");
  }

  std::fprintf(out,
               "time_ms,src_host,dst_host,protocol,kind,bytes,dropped,cause\n");
  std::map<std::string, ProtoSummary> summary;
  for (const auto& r : trace.records) {
    const char* proto = p2p::sim::ProtocolName(r.protocol);
    std::fprintf(out, "%.6f,%zu,%zu,%s,%u,%zu,%d,%s\n", r.time_ms,
                 r.src_host, r.dst_host, proto,
                 static_cast<unsigned>(r.kind), r.bytes, r.dropped ? 1 : 0,
                 p2p::sim::DropCauseName(r.cause));
    auto& s = summary[proto];
    ++s.messages;
    s.bytes += r.bytes;
    if (r.cause == p2p::sim::DropCause::kLoss) ++s.drops_loss;
    if (r.cause == p2p::sim::DropCause::kPartition) ++s.drops_partition;
  }
  if (out != stdout) std::fclose(out);

  std::fprintf(stderr, "%-12s %10s %12s %10s %10s\n", "protocol", "messages",
               "bytes", "drop:loss", "drop:part");
  for (const auto& [name, s] : summary)
    std::fprintf(stderr, "%-12s %10zu %12zu %10zu %10zu\n", name.c_str(),
                 s.messages, s.bytes, s.drops_loss, s.drops_partition);
  return 0;
}
