// trace_to_csv — convert a "p2ptrace v1" dump (TraceSink::WriteText, as
// written by `p2ppool_cli somo --trace FILE`) into CSV for external
// plotting.
//
//   trace_to_csv trace.txt            > trace.csv
//   trace_to_csv trace.txt out.csv
//
// Prints a per-protocol summary (messages, bytes, drops) to stderr, so the
// CSV on stdout stays clean.
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

namespace {

struct ProtoSummary {
  std::size_t messages = 0;
  std::size_t bytes = 0;
  std::size_t drops = 0;
};

int Fail(const char* msg) {
  std::fprintf(stderr, "trace_to_csv: %s\n", msg);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || argc > 3) {
    std::fprintf(stderr,
                 "usage: trace_to_csv <trace.txt> [out.csv]\n"
                 "converts a p2ptrace v1 dump to CSV (stdout by default)\n");
    return 2;
  }
  std::FILE* in = std::fopen(argv[1], "r");
  if (in == nullptr) return Fail("cannot open input");
  std::FILE* out = stdout;
  if (argc == 3) {
    out = std::fopen(argv[2], "w");
    if (out == nullptr) {
      std::fclose(in);
      return Fail("cannot open output");
    }
  }

  char line[512];
  if (std::fgets(line, sizeof line, in) == nullptr) {
    std::fclose(in);
    return Fail("empty input");
  }
  std::size_t held = 0, total = 0;
  if (std::sscanf(line, "p2ptrace v1 %zu %zu", &held, &total) != 2)
    return Fail("not a p2ptrace v1 file");
  if (total > held)
    std::fprintf(stderr,
                 "trace_to_csv: warning: trace truncated (%zu of %zu "
                 "records kept — raise --trace-cap)\n",
                 held, total);

  std::fprintf(out, "time_ms,src_host,dst_host,protocol,kind,bytes,dropped\n");
  std::map<std::string, ProtoSummary> summary;
  std::size_t rows = 0;
  while (std::fgets(line, sizeof line, in) != nullptr) {
    double time_ms = 0.0;
    std::size_t src = 0, dst = 0, bytes = 0;
    unsigned kind = 0;
    int dropped = 0;
    char proto[64];
    if (std::sscanf(line, "%lf %zu %zu %63s %u %zu %d", &time_ms, &src, &dst,
                    proto, &kind, &bytes, &dropped) != 7) {
      std::fclose(in);
      return Fail("malformed record line");
    }
    std::fprintf(out, "%.6f,%zu,%zu,%s,%u,%zu,%d\n", time_ms, src, dst,
                 proto, kind, bytes, dropped);
    auto& s = summary[proto];
    ++s.messages;
    s.bytes += bytes;
    s.drops += static_cast<std::size_t>(dropped);
    ++rows;
  }
  std::fclose(in);
  if (out != stdout) std::fclose(out);
  if (rows != held)
    std::fprintf(stderr,
                 "trace_to_csv: warning: header promised %zu records, "
                 "found %zu\n",
                 held, rows);

  std::fprintf(stderr, "%-12s %10s %12s %8s\n", "protocol", "messages",
               "bytes", "drops");
  for (const auto& [name, s] : summary)
    std::fprintf(stderr, "%-12s %10zu %12zu %8zu\n", name.c_str(),
                 s.messages, s.bytes, s.drops);
  return 0;
}
