#!/usr/bin/env python3
"""Gate the scale sweeps: BENCH_kernel.json, BENCH_net.json, BENCH_alm.json.

Dispatches on the "schema" field of the input file; a file with no
"schema" but a top-level "benchmarks" list is recognised as
google-benchmark JSON (what bench_to_json writes to BENCH_alm.json).

p2pkernelbench/v1 — bench_kernel drives an identical synthetic protocol
mix (heartbeats, SOMO reports, transport deliveries, failure-timeout
rearm churn) through the timing-wheel EventQueue, the retained heap
backend, and a bench-local copy of the pre-wheel queue, at 1.2k/5k/10k
hosts. Checks:

  1. Throughput: at the largest scale, the legacy : wheel ns/event ratio
     must be at least --min-speedup (default 3.0).
  2. Flat memory: the wheel's peak structure footprint stays within
     2 * peak_live + 1 at every scale (no garbage accumulation).
  3. Regression (when a baseline JSON is given): wheel ns/event at the
     largest scale must not exceed baseline * --max-regression
     (default 1.5) — catches an accidental de-optimisation of the hot
     path without failing on ordinary machine-to-machine variance.
  4. Memory (when the JSON carries a "memory_scales" section, PR 9): at
     every sweep with hosts >= 10000, per-host protocol bytes (ring
     routing state + SOMO root aggregate) must stay <=
     --max-bytes-per-host (default 4096) AND at least 2x below the
     recorded pre-SoA layout (--min-host-mem-reduction, default 2.0).
  5. Sharded kernel (when the JSON carries a "sharded_scales" section):
     at every sweep with hosts >= 10000, the 4-shard critical-path
     speedup over the 1-shard run must be at least --min-shard-speedup
     (default 2.5). Critical path = sum over lockstep windows of
     (slowest shard busy + barrier exchange), i.e. projected wall time
     with >= 4 free cores; results are bit-identical at any thread
     count, so the projection is sound on small hosts. Rows whose
     recorded "cpus" is below their shard count get a warning — the
     projection is still sound, but the host never actually overlapped
     the shards.
  6. Serial throughput ceiling (PR 10): at the largest sharded sweep,
     the 1-shard critical_ns_per_event must not exceed
     --max-ns-per-event (default 160, 0 disables) — the absolute
     run-phase budget the flat-profile work defends.
  7. Lookahead extraction (when the JSON carries a "wide_area"
     section, PR 10): every wide-area run's window_reduction (fixed
     56 ms windows / measured-matrix windows, same workload) must be
     at least --min-window-reduction (default 1.5).

p2pnetbench/v1 — bench_net builds the flat and hierarchical latency
oracles at the topology presets and times an identical host-pair query
sequence against both. Checks, at every preset with hosts >=
--net-scale-floor (default 10000):

  1. Memory: flat bytes / hier bytes must be at least
     --min-mem-reduction (default 5.0).
  2. Queries: hier query_ns / flat query_ns must not exceed
     --max-query-ratio (default 2.0). Skipped when the row carries
     "flat_measured": false (the 100k+ presets report the flat triangle
     closed-form instead of building it).
  3. Setup (when the row carries a "setup" section, PR 9): topology +
     pooled hier oracle + DHT batch join must finish within
     --max-setup-seconds (default 120), and wherever the pre-SoA join
     replay was measured at >= 50000 hosts, the end-to-end setup must be
     >= --min-setup-speedup (default 3.0) faster than it.

google-benchmark — bench_to_json's BENCH_alm.json. Checks, against a
baseline of the same format (typically the committed BENCH_alm.json from
before a re-run):

  1. Planner-interface overhead: every BM_PlanSession/N real_time must
     not exceed baseline * --max-plan-regression (default 1.1) — the
     tentpole acceptance gate that routing the paper strategies through
     the alm::Planner virtual interface costs <= 10%.
  2. BM_PlanSessionMesh rows are printed informationally (the mesh is a
     different overlay, not a regression axis).

Exit 0 when every check passes, 1 otherwise (the caller treats failure as
a warning — benchmark noise should not fail a build).

Usage: check_bench_scale.py NEW.json [BASELINE.json]
           [--min-speedup 3.0] [--min-shard-speedup 2.5]
           [--max-regression 1.5]
           [--min-mem-reduction 5.0] [--max-query-ratio 2.0]
           [--max-plan-regression 1.1]
           [--max-bytes-per-host 4096] [--min-host-mem-reduction 2.0]
           [--max-setup-seconds 120] [--min-setup-speedup 3.0]
           [--max-ns-per-event 160] [--min-window-reduction 1.5]
"""

import argparse
import json
import sys

KNOWN_SCHEMAS = ("p2pkernelbench/v1", "p2pnetbench/v1")
GBENCH = "google-benchmark"


def load(path):
    with open(path, encoding="utf-8") as f:
        data = json.load(f)
    schema = data.get("schema")
    if schema is None and "benchmarks" in data:
        return GBENCH, data
    if schema not in KNOWN_SCHEMAS:
        raise SystemExit(f"{path}: unknown schema {schema!r}")
    return schema, data


def check_kernel(data, args):
    scales = data.get("scales", [])
    if not scales:
        raise SystemExit("no scales recorded")
    failures = 0

    for sc in scales:
        wheel = sc["wheel"]
        slack = 2 * wheel["peak_live"] + 1
        status = "ok" if wheel["peak_footprint"] <= slack else "FAIL"
        print(
            f"{status:>4}  {sc['hosts']} hosts: wheel footprint "
            f"{wheel['peak_footprint']} <= 2*{wheel['peak_live']}+1"
        )
        if status == "FAIL":
            failures += 1

    top = max(scales, key=lambda sc: sc["hosts"])
    speedup = top["speedup_legacy_over_wheel"]
    status = "ok" if speedup >= args.min_speedup else "FAIL"
    print(
        f"{status:>4}  {top['hosts']} hosts: legacy/wheel speedup "
        f"{speedup:.2f}x (floor {args.min_speedup:.1f}x)"
    )
    if status == "FAIL":
        failures += 1

    if args.baseline_json:
        base_schema, base = load(args.baseline_json)
        if base_schema != "p2pkernelbench/v1":
            raise SystemExit(f"{args.baseline_json}: schema mismatch")
        base_scales = base.get("scales", [])
        base_top = max(base_scales, key=lambda sc: sc["hosts"])
        if base_top["hosts"] != top["hosts"]:
            print(
                f"FAIL  baseline largest scale {base_top['hosts']} != "
                f"{top['hosts']}",
                file=sys.stderr,
            )
            failures += 1
        else:
            new_ns = top["wheel"]["ns_per_event"]
            base_ns = base_top["wheel"]["ns_per_event"]
            limit = base_ns * args.max_regression
            status = "ok" if new_ns <= limit else "FAIL"
            print(
                f"{status:>4}  {top['hosts']} hosts: wheel "
                f"{new_ns:.1f} ns/event vs baseline {base_ns:.1f} "
                f"(limit {limit:.1f})"
            )
            if status == "FAIL":
                failures += 1

    failures += check_memory(data, args)
    failures += check_sharded(data, args)
    failures += check_wide_area(data, args)
    return failures


def check_memory(data, args):
    memory = data.get("memory_scales", [])
    if not memory:
        print("  --  no memory_scales section (pre-SoA bench JSON)")
        return 0
    failures = 0
    for m in memory:
        hosts = m["hosts"]
        bph = m["bytes_per_host"]
        reduction = m["reduction_vs_presoa"]
        if hosts < 10000:
            print(
                f"  --  {hosts} hosts: {bph:.0f} B/host, "
                f"{reduction:.2f}x below pre-SoA (below the 10000-host gate)"
            )
            continue
        status = "ok" if bph <= args.max_bytes_per_host else "FAIL"
        print(
            f"{status:>4}  {hosts} hosts: {bph:.0f} B/host "
            f"(ceiling {args.max_bytes_per_host:.0f})"
        )
        if status == "FAIL":
            failures += 1
        status = "ok" if reduction >= args.min_host_mem_reduction else "FAIL"
        print(
            f"{status:>4}  {hosts} hosts: {reduction:.2f}x below the "
            f"pre-SoA layout (floor {args.min_host_mem_reduction:.1f}x)"
        )
        if status == "FAIL":
            failures += 1
    return failures


def check_sharded(data, args):
    sharded = data.get("sharded_scales", [])
    if not sharded:
        print("  --  no sharded_scales section (pre-sharding bench JSON)")
        return 0
    failures = 0
    cpus = data.get("cpus")
    for sc in sharded:
        hosts = sc["hosts"]
        runs = {r["shards"]: r for r in sc["runs"]}
        # A critical-path projection from a host that could not overlap
        # the shards is still sound (results are bit-identical at any
        # thread count) but worth flagging: the wall_ns column of that
        # row was measured mostly sequentially.
        for shards, row in sorted(runs.items()):
            row_cpus = row.get("cpus", cpus)
            if row_cpus is not None and shards > 1 and row_cpus < shards:
                print(
                    f"warn  {hosts} hosts: {shards}-shard row measured on "
                    f"{row_cpus} cpu(s) — critical-path projection only, "
                    "wall time ran (partly) sequentially"
                )
        if 4 not in runs:
            print(f"FAIL  {hosts} hosts: no 4-shard run recorded")
            failures += 1
            continue
        speedup = runs[4]["speedup_critical_vs_serial"]
        if hosts < 10000:
            print(
                f"  --  {hosts} hosts: 4-shard critical speedup "
                f"{speedup:.2f}x (below the 10000-host gate)"
            )
            continue
        status = "ok" if speedup >= args.min_shard_speedup else "FAIL"
        note = f" (measured on {cpus} cpu(s))" if cpus else ""
        print(
            f"{status:>4}  {hosts} hosts: 4-shard critical-path speedup "
            f"{speedup:.2f}x (floor {args.min_shard_speedup:.1f}x){note}"
        )
        if status == "FAIL":
            failures += 1

    # Absolute serial run-phase budget at the largest sweep.
    if args.max_ns_per_event > 0.0:
        top = max(sharded, key=lambda sc: sc["hosts"])
        serial = next(
            (r for r in top["runs"] if r["shards"] == 1), None
        )
        if serial is None:
            print(f"FAIL  {top['hosts']} hosts: no 1-shard run recorded")
            failures += 1
        else:
            ns = serial["critical_ns_per_event"]
            status = "ok" if ns <= args.max_ns_per_event else "FAIL"
            print(
                f"{status:>4}  {top['hosts']} hosts: serial "
                f"{ns:.1f} ns/event (ceiling {args.max_ns_per_event:.0f})"
            )
            if status == "FAIL":
                failures += 1
    return failures


def check_wide_area(data, args):
    wide = data.get("wide_area", [])
    if not wide:
        print("  --  no wide_area section (pre-extraction bench JSON)")
        return 0
    failures = 0
    for wa in wide:
        hosts = wa["hosts"]
        for run in wa["runs"]:
            shards = run["shards"]
            reduction = run["window_reduction"]
            wf, we = run["windows_fixed"], run["windows_extracted"]
            status = (
                "ok" if reduction >= args.min_window_reduction else "FAIL"
            )
            print(
                f"{status:>4}  {hosts} hosts / {shards} shards: lookahead "
                f"extraction {wf} -> {we} windows, {reduction:.2f}x "
                f"(floor {args.min_window_reduction:.1f}x)"
            )
            if status == "FAIL":
                failures += 1
    return failures


def check_net(data, args):
    presets = data.get("presets", [])
    if not presets:
        raise SystemExit("no presets recorded")
    failures = 0
    gated = 0

    for p in presets:
        name, hosts = p["preset"], p["hosts"]
        if hosts < args.net_scale_floor:
            print(
                f"  --  {name} ({hosts} hosts): below the "
                f"{args.net_scale_floor}-host gate, informational only"
            )
            continue
        gated += 1
        mem = p["memory_reduction"]
        status = "ok" if mem >= args.min_mem_reduction else "FAIL"
        print(
            f"{status:>4}  {name}: hier memory reduction {mem:.1f}x "
            f"(floor {args.min_mem_reduction:.1f}x)"
        )
        if status == "FAIL":
            failures += 1
        if p.get("flat_measured", True):
            ratio = p["query_ratio_hier_over_flat"]
            status = "ok" if ratio <= args.max_query_ratio else "FAIL"
            print(
                f"{status:>4}  {name}: hier/flat query ratio {ratio:.2f} "
                f"(limit {args.max_query_ratio:.1f})"
            )
            if status == "FAIL":
                failures += 1
        else:
            print(
                f"  --  {name}: flat oracle not built at this scale "
                "(bytes are the closed-form triangle); query gate skipped"
            )
        failures += check_setup(p, args)

    if gated == 0:
        print(
            f"FAIL  no preset at >= {args.net_scale_floor} hosts "
            "— the sweep never reached the scale the gate defends"
        )
        failures += 1
    return failures


def check_setup(p, args):
    setup = p.get("setup")
    if setup is None:
        print(f"  --  {p['preset']}: no setup section (pre-PR-9 bench JSON)")
        return 0
    failures = 0
    name, hosts = p["preset"], p["hosts"]
    total_s = setup["total_s"]
    status = "ok" if total_s <= args.max_setup_seconds else "FAIL"
    print(
        f"{status:>4}  {name}: substrate setup {total_s:.1f} s "
        f"(topo {setup['topo_ms']:.0f} + hier {setup['hier_ms']:.0f} + "
        f"join {setup['dht_join_ms']:.0f} ms, "
        f"{setup['threads']} thread(s); ceiling {args.max_setup_seconds:.0f} s)"
    )
    if status == "FAIL":
        failures += 1
    speedup = setup.get("speedup_vs_presoa", 0.0)
    if speedup > 0.0 and hosts >= 50000:
        status = "ok" if speedup >= args.min_setup_speedup else "FAIL"
        print(
            f"{status:>4}  {name}: setup {speedup:.2f}x faster than the "
            f"pre-SoA join replay (floor {args.min_setup_speedup:.1f}x)"
        )
        if status == "FAIL":
            failures += 1
    elif speedup > 0.0:
        print(
            f"  --  {name}: setup {speedup:.2f}x faster than the pre-SoA "
            "join replay (below the 50000-host gate)"
        )
    return failures


def gbench_rows(data):
    # One row per benchmark instance, keyed by run_name ("BM_Foo/100").
    # Runs with --benchmark_repetitions emit aggregate rows; prefer the
    # median (robust against a noisy repetition) over a single-shot
    # iteration row, and never mix the two for one name.
    rows = {}
    for b in data.get("benchmarks", []):
        run_type = b.get("run_type", "iteration")
        if run_type == "iteration":
            rows.setdefault(b.get("run_name", b["name"]), b)
        elif run_type == "aggregate" and b.get("aggregate_name") == "median":
            rows[b["run_name"]] = b
    return rows


def check_alm(data, args):
    rows = gbench_rows(data)
    plan_rows = sorted(n for n in rows if n.startswith("BM_PlanSession/"))
    if not plan_rows:
        raise SystemExit("no BM_PlanSession rows recorded")
    failures = 0

    if args.baseline_json:
        base_schema, base = load(args.baseline_json)
        if base_schema != GBENCH:
            raise SystemExit(f"{args.baseline_json}: schema mismatch")
        base_rows = gbench_rows(base)
        for name in plan_rows:
            if name not in base_rows:
                print(f"  --  {name}: not in baseline, skipped")
                continue
            unit = rows[name].get("time_unit", "ns")
            new_t = rows[name]["real_time"]
            base_t = base_rows[name]["real_time"]
            limit = base_t * args.max_plan_regression
            status = "ok" if new_t <= limit else "FAIL"
            print(
                f"{status:>4}  {name}: {new_t:.3f} {unit} vs baseline "
                f"{base_t:.3f} (limit {limit:.3f}, "
                f"x{args.max_plan_regression:.2f})"
            )
            if status == "FAIL":
                failures += 1
    else:
        print("  --  no baseline given: BM_PlanSession regression gate skipped")

    for name in sorted(n for n in rows if n.startswith("BM_PlanSessionMesh/")):
        unit = rows[name].get("time_unit", "ns")
        print(
            f"  --  {name}: {rows[name]['real_time']:.3f} {unit} "
            "(informational — mesh overlay, not a regression axis)"
        )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench_json")
    parser.add_argument("baseline_json", nargs="?")
    parser.add_argument("--min-speedup", type=float, default=3.0)
    parser.add_argument("--min-shard-speedup", type=float, default=2.5)
    parser.add_argument("--max-regression", type=float, default=1.5)
    parser.add_argument("--min-mem-reduction", type=float, default=5.0)
    parser.add_argument("--max-query-ratio", type=float, default=2.0)
    parser.add_argument("--net-scale-floor", type=int, default=10000)
    parser.add_argument("--max-plan-regression", type=float, default=1.1)
    parser.add_argument("--max-bytes-per-host", type=float, default=4096.0)
    parser.add_argument("--min-host-mem-reduction", type=float, default=2.0)
    parser.add_argument("--max-setup-seconds", type=float, default=120.0)
    parser.add_argument("--min-setup-speedup", type=float, default=3.0)
    parser.add_argument("--max-ns-per-event", type=float, default=160.0)
    parser.add_argument("--min-window-reduction", type=float, default=1.5)
    args = parser.parse_args()

    schema, data = load(args.bench_json)
    if schema == "p2pkernelbench/v1":
        failures = check_kernel(data, args)
    elif schema == GBENCH:
        failures = check_alm(data, args)
    else:
        failures = check_net(data, args)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
