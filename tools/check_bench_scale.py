#!/usr/bin/env python3
"""Gate the kernel scale sweep in BENCH_kernel.json.

bench_kernel drives an identical synthetic protocol mix (heartbeats, SOMO
reports, transport deliveries, failure-timeout rearm churn) through the
timing-wheel EventQueue, the retained heap backend, and a bench-local copy
of the pre-wheel queue, at 1.2k/5k/10k hosts. This script checks the
claims the sweep exists to defend:

  1. Throughput: at the largest scale, the legacy : wheel ns/event ratio
     must be at least --min-speedup (default 3.0).
  2. Flat memory: the wheel's peak structure footprint stays within
     2 * peak_live + 1 at every scale (no garbage accumulation).
  3. Regression (when a baseline JSON is given): wheel ns/event at the
     largest scale must not exceed baseline * --max-regression
     (default 1.5) — catches an accidental de-optimisation of the hot
     path without failing on ordinary machine-to-machine variance.

Exit 0 when every check passes, 1 otherwise (the caller treats failure as
a warning — benchmark noise should not fail a build).

Usage: check_bench_scale.py NEW.json [BASELINE.json]
           [--min-speedup 3.0] [--max-regression 1.5]
"""

import argparse
import json
import sys


def load_scales(path):
    with open(path, encoding="utf-8") as f:
        data = json.load(f)
    if data.get("schema") != "p2pkernelbench/v1":
        raise SystemExit(f"{path}: not a p2pkernelbench/v1 file")
    scales = data.get("scales", [])
    if not scales:
        raise SystemExit(f"{path}: no scales recorded")
    return scales


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench_json")
    parser.add_argument("baseline_json", nargs="?")
    parser.add_argument("--min-speedup", type=float, default=3.0)
    parser.add_argument("--max-regression", type=float, default=1.5)
    args = parser.parse_args()

    scales = load_scales(args.bench_json)
    failures = 0

    for sc in scales:
        wheel = sc["wheel"]
        slack = 2 * wheel["peak_live"] + 1
        status = "ok" if wheel["peak_footprint"] <= slack else "FAIL"
        print(
            f"{status:>4}  {sc['hosts']} hosts: wheel footprint "
            f"{wheel['peak_footprint']} <= 2*{wheel['peak_live']}+1"
        )
        if status == "FAIL":
            failures += 1

    top = max(scales, key=lambda sc: sc["hosts"])
    speedup = top["speedup_legacy_over_wheel"]
    status = "ok" if speedup >= args.min_speedup else "FAIL"
    print(
        f"{status:>4}  {top['hosts']} hosts: legacy/wheel speedup "
        f"{speedup:.2f}x (floor {args.min_speedup:.1f}x)"
    )
    if status == "FAIL":
        failures += 1

    if args.baseline_json:
        base_scales = load_scales(args.baseline_json)
        base_top = max(base_scales, key=lambda sc: sc["hosts"])
        if base_top["hosts"] != top["hosts"]:
            print(
                f"FAIL  baseline largest scale {base_top['hosts']} != "
                f"{top['hosts']}",
                file=sys.stderr,
            )
            failures += 1
        else:
            new_ns = top["wheel"]["ns_per_event"]
            base_ns = base_top["wheel"]["ns_per_event"]
            limit = base_ns * args.max_regression
            status = "ok" if new_ns <= limit else "FAIL"
            print(
                f"{status:>4}  {top['hosts']} hosts: wheel "
                f"{new_ns:.1f} ns/event vs baseline {base_ns:.1f} "
                f"(limit {limit:.1f})"
            )
            if status == "FAIL":
                failures += 1

    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
