// p2ppool_cli — drive the library's experiments from the command line.
//
//   p2ppool_cli plan  --group 20 --strategy leafset+adj --seed 1
//   p2ppool_cli multi --sessions 30 --members 20 --sweeps 2
//   p2ppool_cli somo  --nodes 256 --fanout 8 --interval-ms 5000 --sync
//   p2ppool_cli somo-loss --loss 0,0.1,0.3 --fail 1 --redundant
//   p2ppool_cli hb-jitter --jitter 0,500,2000,4000
//   p2ppool_cli observe --nodes 64 --loss 0.2 --timeseries-dir /tmp
//   p2ppool_cli alert --preset 1200 --oracle hier --scenarios none,loss
//   p2ppool_cli topo  --hosts 1200 --seed 7
//   p2ppool_cli topo  --preset 10k --oracle hier
//   p2ppool_cli fullstack --preset 10k --oracle hier --group 50
//
// Every command prints an aligned table, and every command accepts
// --report FILE to additionally emit a structured "p2preport/v1" JSON run
// report (tools/report_schema.json) with the effective configuration, the
// headline numbers, and a metrics-registry snapshot.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "net/latency_oracle.h"

#include "alm/bounds.h"
#include "alm/critical.h"
#include "alm/mesh.h"
#include "dht/heartbeat.h"
#include "net/shard_plan.h"
#include "obs/alert.h"
#include "obs/run_report.h"
#include "obs/timeseries.h"
#include "pool/multi_session_sim.h"
#include "pool/resource_pool.h"
#include "sim/sharded.h"
#include "sim/simulation.h"
#include "sim/trace.h"
#include "sim/transport.h"
#include "somo/somo.h"
#include "util/csv.h"
#include "util/flags.h"

namespace {

using namespace p2p;

int Usage() {
  std::printf(
      "usage: p2ppool_cli <command> [flags]\n"
      "commands:\n"
      "  plan       plan one ALM session on a paper-sized pool\n"
      "  multi      run the market-driven multi-session experiment\n"
      "  somo       run the SOMO gather protocol and report latency/overhead\n"
      "  somo-loss  sweep bus loss rates: SOMO root staleness vs loss\n"
      "  hb-jitter  sweep bus jitter: heartbeat false-positive rate\n"
      "  observe    SOMO self-monitoring vs ground truth under faults\n"
      "  alert      in-band alerts: disseminated-view-triggered vs "
      "ground-truth repair\n"
      "  topo       generate a transit-stub topology and print its stats\n"
      "  fullstack  DHT + SOMO + ALM planning on a preset-scale topology\n"
      "  compare    planners side by side (tree vs mesh) under fault "
      "scenarios\n"
      "common flags:\n"
      "  --report FILE   write a p2preport/v1 run_report.json\n");
  return 2;
}

// Registers the shared --report flag; every command calls this first so the
// flag appears in --help output, then FinishReport at the end.
std::string ReportPath(util::FlagParser& flags) {
  return flags.GetString("report", "", "write a p2preport/v1 JSON report");
}

// Writes `report` to `path` unless it is empty. Returns 0, or 1 on I/O
// error (commands return this directly).
int FinishReport(const obs::RunReport& report, const std::string& path) {
  if (path.empty()) return 0;
  if (!report.Write(path)) {
    std::printf("error: cannot write report to %s\n", path.c_str());
    return 1;
  }
  std::printf("report -> %s\n", path.c_str());
  return 0;
}

// "0,0.05,0.1" → {0.0, 0.05, 0.1}.
std::vector<double> ParseDoubleList(const std::string& s) {
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::string item =
        s.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!item.empty()) out.push_back(std::stod(item));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (out.empty()) throw util::CheckError("empty list '" + s + "'");
  return out;
}

// Shared --scenarios parsing (observe, alert): a comma-separated subset of
// none|loss|partition, with the loss scenario taking the command's --loss
// probability.
struct FaultScenario {
  std::string name;
  double loss = 0.0;
  bool partition = false;
};

std::vector<FaultScenario> ParseScenarios(const std::string& flag,
                                          double loss) {
  std::vector<FaultScenario> scenarios;
  std::size_t pos = 0;
  while (pos <= flag.size()) {
    const std::size_t comma = flag.find(',', pos);
    const std::string name =
        flag.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (name == "none") {
      scenarios.push_back({name, 0.0, false});
    } else if (name == "loss") {
      scenarios.push_back({name, loss, false});
    } else if (name == "partition") {
      scenarios.push_back({name, 0.0, true});
    } else if (!name.empty()) {
      throw util::CheckError("unknown scenario '" + name +
                             "' (none|loss|partition)");
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (scenarios.empty()) throw util::CheckError("no scenarios selected");
  return scenarios;
}

// Build the planner a command asked for: "tree" honors the --strategy
// flag (the six paper spellings name TreePlanner option-cube corners);
// every other name goes through the registry. "mesh" additionally takes
// the tuning knobs.
std::unique_ptr<alm::Planner> MakePlanner(const std::string& planner_name,
                                          alm::Strategy strategy,
                                          const alm::MeshOptions& mesh_opts) {
  if (planner_name == "tree")
    return std::make_unique<alm::TreePlanner>(
        alm::OptionsForStrategy(strategy));
  if (planner_name == "mesh")
    return std::make_unique<alm::MeshPlanner>(mesh_opts);
  return alm::CreatePlanner(planner_name);
}

// Shared --mesh-degree/--mesh-rounds knobs (plan, fullstack, compare).
alm::MeshOptions MeshFlagOptions(util::FlagParser& flags) {
  alm::MeshOptions opts;
  opts.target_degree = static_cast<std::size_t>(flags.GetInt(
      "mesh-degree", 4, "mesh planner: target neighbors per node"));
  opts.refine_rounds = static_cast<std::size_t>(flags.GetInt(
      "mesh-rounds", 12, "mesh planner: local refinement rounds"));
  return opts;
}

net::OracleKind ParseOracleKind(const std::string& s) {
  if (s == "flat") return net::OracleKind::kFlat;
  if (s == "hier" || s == "hierarchical") return net::OracleKind::kHierarchical;
  throw util::CheckError("unknown oracle '" + s + "' (flat|hier)");
}

// Shared --oracle/--f32 flags (topo, fullstack). The caller adds the
// thread pool and metrics registry.
net::OracleOptions OracleFlagOptions(util::FlagParser& flags) {
  net::OracleOptions opts;
  opts.kind = ParseOracleKind(
      flags.GetString("oracle", "flat", "latency oracle (flat|hier)"));
  opts.precision =
      flags.GetBool("f32", false, "float32 oracle distance storage")
          ? net::OraclePrecision::kF32
          : net::OraclePrecision::kF64;
  return opts;
}

int CmdPlan(util::FlagParser& flags) {
  const auto group = static_cast<std::size_t>(
      flags.GetInt("group", 20, "session size incl. root"));
  const auto seed = static_cast<std::uint64_t>(
      flags.GetInt("seed", 1, "pool + sampling seed"));
  const std::string strategy_name =
      flags.GetString("strategy", "leafset+adj", "planning strategy");
  const std::string planner_name = flags.GetString(
      "planner", "tree", "planner (tree|mesh; tree honors --strategy)");
  const alm::MeshOptions mesh_opts = MeshFlagOptions(flags);
  const double radius =
      flags.GetDouble("radius", 100.0, "helper radius R (ms)");
  const double stream =
      flags.GetDouble("stream-kbps", 0.0, "per-link stream rate (0=off)");
  const std::string report_path = ReportPath(flags);

  std::printf("building pool (seed %llu) ...\n",
              static_cast<unsigned long long>(seed));
  pool::PoolConfig cfg;
  cfg.seed = seed;
  pool::ResourcePool rp(cfg);

  util::Rng rng(seed ^ 0xfeed);
  const auto idx = rng.SampleIndices(rp.size(), group);
  alm::PlanInput in;
  in.degree_bounds = rp.degree_bounds();
  if (stream > 0.0) {
    for (std::size_t v = 0; v < rp.size(); ++v) {
      const double up = rp.bandwidths().host(v).up_kbps;
      const int cap = static_cast<int>(up / stream) + (v == idx[0] ? 0 : 1);
      in.degree_bounds[v] = std::min(in.degree_bounds[v], cap);
    }
  }
  in.root = idx[0];
  in.members.assign(idx.begin() + 1, idx.end());
  std::vector<char> is_member(rp.size(), 0);
  for (const auto v : idx) is_member[v] = 1;
  for (std::size_t v = 0; v < rp.size(); ++v) {
    if (!is_member[v] && in.degree_bounds[v] >= 4)
      in.helper_candidates.push_back(v);
  }
  in.true_latency = rp.TrueLatencyFn();
  in.estimated_latency = rp.EstimatedLatencyFn();
  in.amcast.helper_radius = radius;
  obs::MetricsRegistry registry;
  in.metrics = &registry;

  const alm::Strategy strategy = alm::ParseStrategy(strategy_name);
  const double base = PlanSession(in, alm::Strategy::kAmcast).height_true;
  // Legacy tree runs keep their pre-interface metric namespace (and so
  // their report bytes); other planners opt into alm.planner.*.
  in.planner_metrics = planner_name != "tree";
  std::unique_ptr<alm::Planner> planner =
      MakePlanner(planner_name, strategy, mesh_opts);
  const auto r = planner->Plan(in);
  const double ideal =
      alm::IdealHeight(in.root, in.members, in.true_latency);

  util::Table t({"metric", "value"});
  t.AddRow({std::string("planner"), planner_name});
  t.AddRow({std::string("strategy"), strategy_name});
  t.AddRow({std::string("group size"), static_cast<long long>(group)});
  t.AddRow({std::string("AMCast baseline height (ms)"), base});
  t.AddRow({std::string("planned height (ms)"), r.height_true});
  t.AddRow({std::string("improvement"), alm::Improvement(base, r.height_true)});
  t.AddRow({std::string("bound (ideal star)"), alm::Improvement(base, ideal)});
  t.AddRow({std::string("helpers used"),
            static_cast<long long>(r.helpers_used)});
  if (r.maintenance_messages > 0)
    t.AddRow({std::string("maintenance msgs"),
              static_cast<long long>(r.maintenance_messages)});
  std::printf("%s", t.ToText(3).c_str());

  obs::RunReport report("plan");
  report.set_seed(seed);
  report.AddConfig("group", static_cast<std::int64_t>(group));
  report.AddConfig("planner", planner_name);
  report.AddConfig("strategy", strategy_name);
  report.AddConfig("radius", radius);
  report.AddConfig("stream_kbps", stream);
  report.AddResult("base_height_ms", base);
  report.AddResult("planned_height_ms", r.height_true);
  report.AddResult("improvement", alm::Improvement(base, r.height_true));
  report.AddResult("ideal_bound", alm::Improvement(base, ideal));
  report.AddResult("helpers_used", static_cast<double>(r.helpers_used));
  report.AddResult("maintenance_msgs",
                   static_cast<double>(r.maintenance_messages));
  report.AttachMetrics(&registry);
  return FinishReport(report, report_path);
}

int CmdMulti(util::FlagParser& flags) {
  pool::MultiSessionParams params;
  params.session_count = static_cast<std::size_t>(
      flags.GetInt("sessions", 30, "concurrent sessions"));
  params.members_per_session = static_cast<std::size_t>(
      flags.GetInt("members", 20, "members per session"));
  params.rescheduling_sweeps = static_cast<std::size_t>(
      flags.GetInt("sweeps", 2, "market rescheduling sweeps"));
  params.seed = static_cast<std::uint64_t>(
      flags.GetInt("seed", 42, "experiment seed"));
  params.compute_upper_bound =
      flags.GetBool("bounds", true, "compute per-session bounds");
  const int jobs = flags.GetInt(
      "jobs", 0, "threads for per-session bounds (0 = hardware concurrency)");
  const std::string report_path = ReportPath(flags);

  std::printf("building pool ...\n");
  pool::PoolConfig cfg;
  cfg.seed = params.seed;
  pool::ResourcePool rp(cfg);
  util::ThreadPool workers(jobs < 0 ? 1 : static_cast<std::size_t>(jobs));
  params.workers = &workers;
  obs::MetricsRegistry registry;
  params.metrics = &registry;
  const auto result = RunMultiSessionExperiment(rp, params);

  util::Table t({"priority", "sessions", "improvement", "helpers"});
  for (int p = 1; p <= 3; ++p) {
    const auto& cls = result.by_priority[static_cast<std::size_t>(p)];
    t.AddRow({static_cast<long long>(p),
              static_cast<long long>(cls.sessions),
              cls.improvement.mean(), cls.helpers_used.mean()});
  }
  std::printf("%s", t.ToText(3).c_str());
  if (params.compute_upper_bound) {
    std::printf("bounds: lower %.3f (AMCast+adj) / upper %.3f "
                "(Leafset+adj solo)\n",
                result.lower_bound_improvement.mean(),
                result.upper_bound_improvement.mean());
  }
  std::printf("pool utilisation %.2f, %zu reschedules, %zu preemptions\n",
              result.pool_utilisation, result.reschedules,
              result.preemptions);

  obs::RunReport report("multi");
  report.set_seed(params.seed);
  report.AddConfig("sessions", static_cast<std::int64_t>(params.session_count));
  report.AddConfig("members",
                   static_cast<std::int64_t>(params.members_per_session));
  report.AddConfig("sweeps",
                   static_cast<std::int64_t>(params.rescheduling_sweeps));
  report.AddConfig("bounds", params.compute_upper_bound);
  for (int p = 1; p <= 3; ++p) {
    const auto& cls = result.by_priority[static_cast<std::size_t>(p)];
    const std::string prefix = "priority" + std::to_string(p) + ".";
    report.AddResult(prefix + "sessions", static_cast<double>(cls.sessions));
    report.AddResult(prefix + "improvement", cls.improvement.mean());
    report.AddResult(prefix + "helpers", cls.helpers_used.mean());
  }
  if (params.compute_upper_bound) {
    report.AddResult("lower_bound", result.lower_bound_improvement.mean());
    report.AddResult("upper_bound", result.upper_bound_improvement.mean());
  }
  report.AddResult("pool_utilisation", result.pool_utilisation);
  report.AddResult("reschedules", static_cast<double>(result.reschedules));
  report.AddResult("preemptions", static_cast<double>(result.preemptions));
  report.AttachMetrics(&registry);
  return FinishReport(report, report_path);
}

int CmdSomo(util::FlagParser& flags) {
  const auto nodes =
      static_cast<std::size_t>(flags.GetInt("nodes", 256, "ring size"));
  const auto fanout =
      static_cast<std::size_t>(flags.GetInt("fanout", 8, "SOMO fanout k"));
  const double interval =
      flags.GetDouble("interval-ms", 5000.0, "reporting cycle T");
  const bool sync = flags.GetBool("sync", false, "synchronised gather");
  const bool disseminate =
      flags.GetBool("disseminate", false, "broadcast the view back down");
  const bool redundant =
      flags.GetBool("redundant", false, "parent-sibling detour links");
  const double horizon =
      flags.GetDouble("horizon-ms", 120000.0, "simulated time");
  const std::string trace_path = flags.GetString(
      "trace", "", "write a p2ptrace v2 dump of all bus traffic to FILE");
  const auto trace_cap = static_cast<std::size_t>(flags.GetInt(
      "trace-cap", 1 << 16, "trace ring capacity (oldest overwritten)"));
  const std::string ts_path = flags.GetString(
      "timeseries", "", "write a per-cycle staleness/traffic CSV to FILE");
  const std::string report_path = ReportPath(flags);

  sim::Simulation sim(nodes);
  sim.EnableMetrics();
  dht::Ring ring(16);
  sim::TraceSink trace(trace_cap);
  if (!trace_path.empty()) {
    trace.set_clock([&sim] { return sim.now(); });
    sim.transport().set_trace(&trace);
    ring.set_trace_sink(&trace);  // per-hop records for overlay lookups
  }
  for (std::size_t i = 0; i < nodes; ++i) ring.JoinHashed(i);
  ring.StabilizeAll();
  somo::SomoConfig cfg;
  cfg.fanout = fanout;
  cfg.report_interval_ms = interval;
  cfg.synchronized_gather = sync;
  cfg.disseminate = disseminate;
  cfg.redundant_links = redundant;
  somo::SomoProtocol somo(sim, ring, cfg, [&](dht::NodeIndex n) {
    somo::NodeReport r;
    r.node = n;
    r.host = ring.node(n).host();
    r.generated_at = sim.now();
    return r;
  });
  somo.Start();
  obs::TimeseriesSampler sampler;
  if (!ts_path.empty()) {
    sampler.AddProbe("root_staleness_ms", [&] {
      const double v = somo.RootStalenessMs();
      return std::isfinite(v) ? v : -1.0;
    });
    sampler.AddProbe("root_members",
                     [&] { return sim.metrics().Value("somo.root.members"); });
    sampler.AddProbe("somo_messages",
                     [&] { return sim.metrics().Value("somo.messages"); });
    sampler.AddProbe("inflight_messages", [&] {
      return static_cast<double>(sim.transport().inflight_messages());
    });
    sim.Every(interval, interval, [&] { sampler.Sample(sim.now()); });
  }
  sim.RunUntil(horizon);

  util::Table t({"metric", "value"});
  t.AddRow({std::string("nodes"), static_cast<long long>(nodes)});
  t.AddRow({std::string("fanout"), static_cast<long long>(fanout)});
  t.AddRow({std::string("tree depth"),
            static_cast<long long>(somo.tree().depth())});
  t.AddRow({std::string("logical nodes"),
            static_cast<long long>(somo.tree().size())});
  t.AddRow({std::string("gathers completed"),
            static_cast<long long>(somo.gathers_completed())});
  t.AddRow({std::string("root staleness (ms)"), somo.RootStalenessMs()});
  t.AddRow({std::string("messages"),
            static_cast<long long>(somo.messages_sent())});
  t.AddRow({std::string("bytes/node/cycle"),
            static_cast<double>(somo.bytes_sent()) /
                static_cast<double>(nodes) /
                (horizon / interval)});
  if (disseminate) {
    t.AddRow({std::string("nodes with newscast"),
              static_cast<long long>(somo.nodes_with_view())});
  }
  std::printf("%s", t.ToText(1).c_str());
  if (!trace_path.empty()) {
    // One overlay query at the horizon interleaves routing-hop records
    // with the protocol traffic the trace already holds.
    (void)somo.QueryFromNode(0);
    std::FILE* f = std::fopen(trace_path.c_str(), "w");
    if (f == nullptr || !trace.WriteText(f)) {
      std::printf("error: cannot write trace to %s\n", trace_path.c_str());
      if (f != nullptr) std::fclose(f);
      return 1;
    }
    std::fclose(f);
    std::printf("trace: %zu records held (%zu total) -> %s\n", trace.size(),
                trace.total_records(), trace_path.c_str());
  }

  obs::RunReport report("somo");
  report.set_seed(nodes);  // the sim seed above is the ring size
  report.AddConfig("nodes", static_cast<std::int64_t>(nodes));
  report.AddConfig("fanout", static_cast<std::int64_t>(fanout));
  report.AddConfig("interval_ms", interval);
  report.AddConfig("sync", sync);
  report.AddConfig("disseminate", disseminate);
  report.AddConfig("redundant", redundant);
  report.AddConfig("horizon_ms", horizon);
  report.AddResult("tree_depth", static_cast<double>(somo.tree().depth()));
  report.AddResult("logical_nodes", static_cast<double>(somo.tree().size()));
  report.AddResult("gathers_completed",
                   static_cast<double>(somo.gathers_completed()));
  report.AddResult("root_staleness_ms", somo.RootStalenessMs());
  report.AddResult("messages", static_cast<double>(somo.messages_sent()));
  report.AddResult("bytes_per_node_cycle",
                   static_cast<double>(somo.bytes_sent()) /
                       static_cast<double>(nodes) / (horizon / interval));
  report.AttachMetrics(&sim.metrics());
  if (!ts_path.empty()) {
    if (!sampler.WriteCsv(ts_path)) {
      std::printf("error: cannot write timeseries to %s\n", ts_path.c_str());
      return 1;
    }
    std::printf("timeseries: %zu rows -> %s\n", sampler.rows(),
                ts_path.c_str());
    report.AddTimeseries("somo_cycle", ts_path, sampler.rows(),
                         sampler.total_rows());
  }
  return FinishReport(report, report_path);
}

// Deterministic fault experiment (§3.2 robustness): sweep the bus loss
// rate and report how stale the SOMO root view gets. With --fail > 0 that
// many internal logical-node owners crash a third of the way in, WITHOUT
// failure detection or tree rebuild — pair with --redundant to watch the
// parent-sibling detour links hold freshness together.
int CmdSomoLoss(util::FlagParser& flags) {
  const auto nodes =
      static_cast<std::size_t>(flags.GetInt("nodes", 128, "ring size"));
  const auto fanout =
      static_cast<std::size_t>(flags.GetInt("fanout", 4, "SOMO fanout k"));
  const double interval =
      flags.GetDouble("interval-ms", 500.0, "reporting cycle T");
  const bool redundant =
      flags.GetBool("redundant", false, "parent-sibling detour links");
  const auto fail = static_cast<std::size_t>(flags.GetInt(
      "fail", 0, "internal owners crashed at horizon/3 (no rebuild)"));
  const double horizon =
      flags.GetDouble("horizon-ms", 60000.0, "simulated time per loss level");
  const auto seed =
      static_cast<std::uint64_t>(flags.GetInt("seed", 1, "simulation seed"));
  const auto losses = ParseDoubleList(flags.GetString(
      "loss", "0,0.05,0.1,0.2,0.3", "comma-separated loss probabilities"));
  const std::string report_path = ReportPath(flags);

  obs::RunReport report("somo-loss");
  report.set_seed(seed);
  report.AddConfig("nodes", static_cast<std::int64_t>(nodes));
  report.AddConfig("fanout", static_cast<std::int64_t>(fanout));
  report.AddConfig("interval_ms", interval);
  report.AddConfig("redundant", redundant);
  report.AddConfig("fail", static_cast<std::int64_t>(fail));
  report.AddConfig("horizon_ms", horizon);
  // Sims outlive the loop so the final level's registry can back the
  // report's metrics snapshot.
  std::vector<std::unique_ptr<sim::Simulation>> sims;

  // alive_stale_ms ignores crashed machines' lingering final reports (they
  // persist in cached aggregates until a rebuild), so it isolates how well
  // gathering tracks the surviving membership.
  util::Table t({"loss", "alive_stale_ms", "complete", "somo_drop%",
                 "redundant_pushes"});
  for (const double loss : losses) {
    sims.push_back(std::make_unique<sim::Simulation>(seed));
    sim::Simulation& sim = *sims.back();
    sim.EnableMetrics();
    dht::Ring ring(16);
    for (std::size_t i = 0; i < nodes; ++i) ring.JoinHashed(i);
    ring.StabilizeAll();
    sim.transport().faults().loss_probability = loss;
    somo::SomoConfig cfg;
    cfg.fanout = fanout;
    cfg.report_interval_ms = interval;
    cfg.redundant_links = redundant;
    somo::SomoProtocol somo(sim, ring, cfg, [&](dht::NodeIndex n) {
      somo::NodeReport r;
      r.node = n;
      r.host = ring.node(n).host();
      r.generated_at = sim.now();
      return r;
    });
    somo.Start();
    sim.RunUntil(horizon / 3.0);
    std::size_t failed = 0;
    const auto& tree = somo.tree();
    for (somo::LogicalIndex l = 0; l < tree.size() && failed < fail; ++l) {
      const auto& ln = tree.node(l);
      if (ln.is_leaf() || ln.is_root()) continue;
      if (ln.owner == tree.node(tree.root()).owner) continue;
      if (!ring.node(ln.owner).alive()) continue;
      ring.Fail(ln.owner);
      ++failed;
    }
    sim.RunUntil(horizon);
    const auto st = sim.transport().stats().protocol(sim::Protocol::kSomo);
    const double drop_pct =
        st.sent == 0 ? 0.0
                     : 100.0 * static_cast<double>(st.dropped) /
                           static_cast<double>(st.sent);
    t.AddRow({loss, somo.RootAliveStalenessMs(),
              std::string(somo.RootViewComplete() ? "yes" : "no"), drop_pct,
              static_cast<long long>(somo.redundant_pushes())});
    const std::string prefix = "loss" + std::to_string(loss) + ".";
    report.AddResult(prefix + "alive_stale_ms", somo.RootAliveStalenessMs());
    report.AddResult(prefix + "complete",
                     somo.RootViewComplete() ? 1.0 : 0.0);
    report.AddResult(prefix + "drop_pct", drop_pct);
    report.AddResult(prefix + "redundant_pushes",
                     static_cast<double>(somo.redundant_pushes()));
  }
  std::printf("%s", t.ToText(3).c_str());
  if (!sims.empty()) report.AttachMetrics(&sims.back()->metrics());
  return FinishReport(report, report_path);
}

// Deterministic fault experiment (§3.1/§4): sweep the bus delay jitter and
// report the heartbeat failure detector's false-positive rate in
// suspect_alive mode. Nobody actually dies; every suspicion is the
// detector being starved by jitter (and --loss adds message loss on top).
int CmdHbJitter(util::FlagParser& flags) {
  const auto nodes =
      static_cast<std::size_t>(flags.GetInt("nodes", 64, "ring size"));
  const double period =
      flags.GetDouble("period-ms", 1000.0, "heartbeat period");
  const double timeout =
      flags.GetDouble("timeout-ms", 2500.0, "suspicion timeout");
  const double loss =
      flags.GetDouble("loss", 0.0, "bus loss probability on top of jitter");
  const double horizon =
      flags.GetDouble("horizon-ms", 120000.0, "simulated time per level");
  const auto seed =
      static_cast<std::uint64_t>(flags.GetInt("seed", 1, "simulation seed"));
  const auto jitters = ParseDoubleList(flags.GetString(
      "jitter", "0,500,1000,2000,4000", "comma-separated jitter bounds (ms)"));
  const std::string report_path = ReportPath(flags);

  obs::RunReport report("hb-jitter");
  report.set_seed(seed);
  report.AddConfig("nodes", static_cast<std::int64_t>(nodes));
  report.AddConfig("period_ms", period);
  report.AddConfig("timeout_ms", timeout);
  report.AddConfig("loss", loss);
  report.AddConfig("horizon_ms", horizon);
  std::vector<std::unique_ptr<sim::Simulation>> sims;

  util::Table t({"jitter_ms", "delivered", "false_pos", "fp/node/min"});
  for (const double jitter : jitters) {
    sims.push_back(std::make_unique<sim::Simulation>(seed));
    sim::Simulation& sim = *sims.back();
    sim.EnableMetrics();
    dht::Ring ring(8);
    for (std::size_t i = 0; i < nodes; ++i) ring.JoinHashed(i);
    ring.StabilizeAll();
    sim.transport().faults().jitter_ms = jitter;
    sim.transport().faults().loss_probability = loss;
    dht::HeartbeatConfig cfg;
    cfg.period_ms = period;
    cfg.timeout_ms = timeout;
    cfg.suspect_alive = true;
    dht::HeartbeatProtocol hb(sim, ring, cfg);
    hb.Start();
    sim.RunUntil(horizon);
    const double node_minutes =
        static_cast<double>(nodes) * horizon / 60000.0;
    t.AddRow({jitter, static_cast<long long>(hb.heartbeats_delivered()),
              static_cast<long long>(hb.false_suspicions()),
              static_cast<double>(hb.false_suspicions()) / node_minutes});
    const std::string prefix = "jitter" + std::to_string(jitter) + ".";
    report.AddResult(prefix + "delivered",
                     static_cast<double>(hb.heartbeats_delivered()));
    report.AddResult(prefix + "false_pos",
                     static_cast<double>(hb.false_suspicions()));
    report.AddResult(prefix + "fp_per_node_min",
                     static_cast<double>(hb.false_suspicions()) /
                         node_minutes);
  }
  std::printf("%s", t.ToText(3).c_str());
  if (!sims.empty()) report.AttachMetrics(&sims.back()->metrics());
  return FinishReport(report, report_path);
}

int CmdTopo(util::FlagParser& flags) {
  net::TransitStubParams params;
  const std::string preset_name = flags.GetString(
      "preset", "",
      "topology preset 1200|10k|50k|100k|250k (overrides --hosts)");
  params.end_hosts = static_cast<std::size_t>(
      flags.GetInt("hosts", 1200, "end systems (ignored with --preset)"));
  const auto seed =
      static_cast<std::uint64_t>(flags.GetInt("seed", 7, "topology seed"));
  net::OracleOptions oracle_opts = OracleFlagOptions(flags);
  const int jobs = flags.GetInt(
      "jobs", 0, "oracle build threads (0 = hardware concurrency)");
  const std::string report_path = ReportPath(flags);
  if (!preset_name.empty())
    params = net::PresetParams(net::ParseTopologyPreset(preset_name));
  util::Rng rng(seed);
  const auto topo = net::GenerateTransitStub(params, rng);

  util::ThreadPool workers(jobs < 0 ? 1 : static_cast<std::size_t>(jobs));
  oracle_opts.pool = &workers;
  const auto b0 = std::chrono::steady_clock::now();
  const net::LatencyOracle oracle(topo, oracle_opts);
  const double build_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - b0)
          .count();

  util::Rng prng(seed ^ 0x777);
  std::vector<double> lat;
  for (int i = 0; i < 5000; ++i) {
    const auto a = prng.NextBounded(topo.host_count());
    const auto b = prng.NextBounded(topo.host_count());
    if (a != b) lat.push_back(oracle.Latency(a, b));
  }
  util::Table t({"metric", "value"});
  t.AddRow({std::string("routers"),
            static_cast<long long>(topo.router_count())});
  t.AddRow({std::string("transit routers"),
            static_cast<long long>(params.total_transit_routers())});
  t.AddRow({std::string("end hosts"),
            static_cast<long long>(topo.host_count())});
  t.AddRow({std::string("router edges"),
            static_cast<long long>(topo.routers.edge_count())});
  t.AddRow({std::string("stub domains"),
            static_cast<long long>(params.total_stub_domains())});
  t.AddRow({std::string("oracle"),
            std::string(oracle.kind() == net::OracleKind::kFlat ? "flat"
                                                                : "hier")});
  t.AddRow({std::string("oracle build (ms)"), build_ms});
  t.AddRow({std::string("oracle memory (MiB)"),
            static_cast<double>(oracle.MemoryBytes()) / (1024.0 * 1024.0)});
  if (oracle.kind() == net::OracleKind::kHierarchical) {
    t.AddRow({std::string("core nodes"),
              static_cast<long long>(oracle.core_node_count())});
    t.AddRow({std::string("gateways"),
              static_cast<long long>(oracle.gateway_count())});
  }
  t.AddRow({std::string("latency p10 (ms)"), util::Percentile(lat, 10)});
  t.AddRow({std::string("latency p50 (ms)"), util::Percentile(lat, 50)});
  t.AddRow({std::string("latency p90 (ms)"), util::Percentile(lat, 90)});
  std::printf("%s", t.ToText(1).c_str());

  obs::RunReport report("topo");
  report.set_seed(seed);
  report.AddConfig("hosts", static_cast<std::int64_t>(params.end_hosts));
  report.AddConfig("preset", preset_name.empty() ? "custom" : preset_name);
  report.AddConfig("oracle",
                   oracle.kind() == net::OracleKind::kFlat ? "flat" : "hier");
  report.AddConfig("f32", oracle.uses_float_storage());
  report.AddResult("routers", static_cast<double>(topo.router_count()));
  report.AddResult("end_hosts", static_cast<double>(topo.host_count()));
  report.AddResult("router_edges",
                   static_cast<double>(topo.routers.edge_count()));
  report.AddResult("oracle_bytes", static_cast<double>(oracle.MemoryBytes()));
  report.AddResult("oracle_core_nodes",
                   static_cast<double>(oracle.core_node_count()));
  report.AddResult("oracle_gateways",
                   static_cast<double>(oracle.gateway_count()));
  report.AddResult("latency_p10_ms", util::Percentile(lat, 10));
  report.AddResult("latency_p50_ms", util::Percentile(lat, 50));
  report.AddResult("latency_p90_ms", util::Percentile(lat, 90));
  return FinishReport(report, report_path);
}

// The full protocol stack at preset scale (the network-substrate PR's
// headline): preset topology -> hierarchical oracle -> every host joins
// the DHT -> leafset heartbeats + SOMO gathering run to the horizon ->
// one ALM session planned with oracle-direct latency fills. At 10k+ hosts
// there are no network coordinates (kPaper1200 pools build them; here the
// point is the substrate scales), so only oracle strategies are valid.
int CmdFullstack(util::FlagParser& flags) {
  const std::string preset_name = flags.GetString(
      "preset", "10k", "topology preset (1200|10k|50k|100k|250k)");
  net::OracleOptions oracle_opts = OracleFlagOptions(flags);
  const auto seed =
      static_cast<std::uint64_t>(flags.GetInt("seed", 1, "experiment seed"));
  const auto group = static_cast<std::size_t>(
      flags.GetInt("group", 50, "ALM session size incl. root"));
  const auto helpers = static_cast<std::size_t>(flags.GetInt(
      "helpers", 200, "helper candidates sampled for the session"));
  const std::string strategy_name = flags.GetString(
      "strategy", "critical+adj", "planning strategy (oracle-based only)");
  const std::string planner_name = flags.GetString(
      "planner", "tree", "planner (tree|mesh; tree honors --strategy)");
  const alm::MeshOptions mesh_opts = MeshFlagOptions(flags);
  const double interval =
      flags.GetDouble("somo-interval-ms", 5000.0, "SOMO reporting cycle T");
  const double horizon =
      flags.GetDouble("horizon-ms", 20000.0, "simulated protocol time");
  const int jobs = flags.GetInt(
      "jobs", 0, "oracle build threads (0 = hardware concurrency)");
  const auto shards = static_cast<std::size_t>(flags.GetInt(
      "shards", 1, "simulation shards (1 = the serial kernel)"));
  const auto shard_threads = static_cast<std::size_t>(flags.GetInt(
      "threads", 0, "shard worker threads (0 = min(shards, hardware))"));
  const std::string join_mode = flags.GetString(
      "join", "batch", "DHT bootstrap (batch|per-host; same end state)");
  const std::string lookahead_mode = flags.GetString(
      "lookahead", "extracted",
      "cross-shard windows (extracted = measured per-pair matrix, "
      "fixed = uniform structural bound)");
  const std::string report_path = ReportPath(flags);
  P2P_CHECK_MSG(join_mode == "batch" || join_mode == "per-host",
                "unknown --join mode '" << join_mode << "'");
  P2P_CHECK_MSG(lookahead_mode == "extracted" || lookahead_mode == "fixed",
                "unknown --lookahead mode '" << lookahead_mode << "'");

  const alm::Strategy strategy = alm::ParseStrategy(strategy_name);
  std::unique_ptr<alm::Planner> planner =
      MakePlanner(planner_name, strategy, mesh_opts);
  if (planner->NeedsEstimates())
    throw util::CheckError(
        "fullstack has no coordinate estimates; pick an oracle strategy "
        "(amcast|amcast+adj|critical|critical+adj)");

  const net::TransitStubParams params =
      net::PresetParams(net::ParseTopologyPreset(preset_name));
  std::printf("generating %s topology (seed %llu) ...\n",
              preset_name.c_str(), static_cast<unsigned long long>(seed));
  util::ThreadPool workers(jobs < 0 ? 1 : static_cast<std::size_t>(jobs));
  util::Rng topo_rng(seed);
  const auto t0 = std::chrono::steady_clock::now();
  const auto topo = net::GenerateTransitStub(params, topo_rng, &workers);
  const double topo_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)
                             .count();

  // Host -> shard placement along whole stub domains plus the structural
  // lookahead bound; trivial at 1 shard, where the sharded kernel IS the
  // serial kernel (same seed, same event stream).
  net::ShardPlan plan = net::PlanShards(topo, shards);

  std::printf("building %s oracle over %zu routers ...\n",
              oracle_opts.kind == net::OracleKind::kFlat ? "flat" : "hier",
              topo.router_count());
  // The oracle must exist before the sharded kernel now that the measured
  // lookahead matrix feeds ShardedOptions, so its build timers land in a
  // setup registry merged into shard 0 once the shards exist.
  obs::MetricsRegistry setup_metrics;
  oracle_opts.pool = &workers;
  oracle_opts.metrics = &setup_metrics;
  const auto b0 = std::chrono::steady_clock::now();
  const net::LatencyOracle oracle(topo, oracle_opts);
  const double build_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - b0)
          .count();

  // Sharpen the structural constant into the measured per-pair matrix
  // (--lookahead fixed retains the uniform-window baseline for the a/b
  // differential). Extraction is exact and deterministic — same seed, same
  // matrix — so same-seed reports still diff clean.
  double extract_ms = 0.0;
  if (shards > 1 && lookahead_mode == "extracted") {
    const auto e0 = std::chrono::steady_clock::now();
    net::ExtractLookahead(topo, oracle, plan);
    extract_ms = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - e0)
                     .count();
  }
  sim::ShardedOptions sharded_opts;
  sharded_opts.shards = shards;
  sharded_opts.lookahead_ms = plan.lookahead_ms;
  sharded_opts.lookahead_matrix = plan.lookahead_matrix;
  sharded_opts.seed = seed;
  sharded_opts.threads = shard_threads;
  sim::ShardedSimulation ssim(sharded_opts);
  for (std::size_t s = 0; s < shards; ++s) ssim.shard(s).EnableMetrics();
  sim::Simulation& sim0 = ssim.shard(0);
  sim0.metrics().MergeFrom(setup_metrics);

  std::printf("joining %zu hosts into the DHT (%s) ...\n", topo.host_count(),
              join_mode.c_str());
  dht::Ring ring(32, &oracle);
  ring.set_thread_pool(&workers);
  const auto j0 = std::chrono::steady_clock::now();
  if (join_mode == "batch") {
    const dht::NodeIndex first = ring.JoinBatchHashed(0, topo.host_count());
    P2P_CHECK(first == 0 && ring.size() == topo.host_count());
  } else {
    for (net::HostIdx h = 0; h < topo.host_count(); ++h) {
      const dht::NodeIndex n = ring.JoinHashed(h);
      P2P_CHECK(n == h);
    }
    ring.StabilizeAll();
  }
  const double join_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - j0)
                             .count();
  ring.set_metrics(&sim0.metrics());
  sim0.metrics().profile("fullstack.setup.join_ms").Add(join_ms);
  ssim.SetHostShards(plan.shard_of_host);

  std::printf("running heartbeats + SOMO to %.0f ms (%zu shard%s) ...\n",
              horizon, shards, shards == 1 ? "" : "s");
  // One protocol instance per shard over the shared (frozen) ring. At one
  // shard the instances stay unbound — the exact serial code path.
  std::vector<std::unique_ptr<dht::HeartbeatProtocol>> hbs;
  std::vector<std::unique_ptr<somo::SomoProtocol>> somos;
  somo::SomoConfig somo_cfg;
  somo_cfg.report_interval_ms = interval;
  for (std::size_t s = 0; s < shards; ++s) {
    sim::Simulation& ssh = ssim.shard(s);
    hbs.push_back(std::make_unique<dht::HeartbeatProtocol>(ssh, ring));
    somos.push_back(std::make_unique<somo::SomoProtocol>(
        ssh, ring, somo_cfg, [&ring, &ssh](dht::NodeIndex n) {
          somo::NodeReport r;
          r.node = n;
          r.host = ring.node(n).host();
          r.generated_at = ssh.now();
          return r;
        }));
  }
  if (shards > 1) {
    std::vector<dht::HeartbeatProtocol*> hb_peers;
    std::vector<somo::SomoProtocol*> somo_peers;
    for (std::size_t s = 0; s < shards; ++s) {
      hb_peers.push_back(hbs[s].get());
      somo_peers.push_back(somos[s].get());
    }
    for (std::size_t s = 0; s < shards; ++s) {
      hbs[s]->BindShard(static_cast<std::uint32_t>(s), &ssim.host_shards(),
                        hb_peers);
      somos[s]->BindShard(static_cast<std::uint32_t>(s), &ssim.host_shards(),
                          somo_peers);
    }
  }
  // The root view lives on the instance owning the SOMO root point's host
  // (all shards build the identical tree).
  const somo::LogicalTree& tree0 = somos[0]->tree();
  const dht::NodeIndex somo_root_owner = tree0.node(tree0.root()).owner;
  const std::size_t root_shard =
      ssim.ShardOfHost(ring.node(somo_root_owner).host());
  somo::SomoProtocol& root_somo = *somos[root_shard];

  // Root-staleness sentinel, evaluated on the root owner's shard so the
  // probe only reads shard-local state (race-free under --shards, where
  // dissemination is unavailable and the root view is the freshest copy).
  // The threshold is the unsync gather bound plus slack; a healthy run
  // logs zero fires, and the (empty) event log still lands in the report's
  // alerts section for the determinism gate to diff.
  obs::AlertEngine alert_engine;
  obs::AlertRule root_stale;
  root_stale.name = "somo.root.stale";
  root_stale.threshold = (static_cast<double>(tree0.depth()) + 2.0) * interval;
  root_stale.debounce_ms = interval;
  root_stale.clear_ms = interval;
  root_stale.probe = [&root_somo] {
    const double v = root_somo.RootStalenessMs();
    return std::isfinite(v) ? v : 0.0;  // no complete view yet
  };
  const std::size_t root_stale_rule =
      alert_engine.AddRule(std::move(root_stale));
  sim::Simulation& root_sim = ssim.shard(root_shard);
  root_sim.Every(interval / 2.0, interval / 2.0,
                 [&alert_engine, &root_sim] {
                   alert_engine.Evaluate(root_sim.now());
                 });

  for (auto& hb : hbs) hb->Start();
  for (auto& so : somos) so->Start();
  const std::size_t protocol_events = ssim.RunUntil(horizon);

  // Aggregated protocol stats: deliveries sum across instances.
  std::size_t hb_delivered = 0;
  for (const auto& hb : hbs) hb_delivered += hb->heartbeats_delivered();

  // mem.bytes_per_host: resident protocol-state bytes per host across the
  // SoA layouts (ring tables + per-shard SOMO, heartbeat and transport
  // state) — the gauge the memory-regression test and BENCH_kernel rows
  // track. Derived from element counts/capacities, not allocator state, so
  // same-seed runs agree.
  std::size_t proto_bytes = ring.MemoryBytes();
  for (std::size_t s = 0; s < shards; ++s) {
    proto_bytes += hbs[s]->MemoryBytes();
    proto_bytes += somos[s]->MemoryBytes();
    proto_bytes += ssim.shard(s).transport().MemoryBytes();
  }
  const double mem_per_host = static_cast<double>(proto_bytes) /
                              static_cast<double>(topo.host_count());
  sim0.metrics().gauge("mem.bytes_per_host").Set(mem_per_host);

  std::printf("planning one %zu-member session (%s) ...\n", group,
              planner_name == "tree" ? strategy_name.c_str()
                                     : planner_name.c_str());
  // Paper degree distribution over all hosts, then the session sample and
  // a bounded helper-candidate sample (helper selection scans candidates
  // per recruited helper; the full 10k pool would be planning noise, the
  // paper's sessions draw on a vicinity anyway).
  util::Rng rng(seed ^ 0xfeed);
  alm::PlanInput in;
  in.degree_bounds.reserve(topo.host_count());
  for (std::size_t v = 0; v < topo.host_count(); ++v)
    in.degree_bounds.push_back(pool::SamplePaperDegreeBound(rng));
  const auto idx = rng.SampleIndices(topo.host_count(), group);
  in.root = idx[0];
  in.members.assign(idx.begin() + 1, idx.end());
  std::vector<char> is_member(topo.host_count(), 0);
  for (const auto v : idx) is_member[v] = 1;
  const auto candidate_pool = rng.SampleIndices(
      topo.host_count(), std::min(topo.host_count(), 4 * helpers + group));
  for (const auto v : candidate_pool) {
    if (in.helper_candidates.size() >= helpers) break;
    if (!is_member[v] && in.degree_bounds[v] >= 4)
      in.helper_candidates.push_back(v);
  }
  in.oracle = &oracle;
  in.metrics = &sim0.metrics();
  const double base = PlanSession(in, alm::Strategy::kAmcast).height_true;
  in.planner_metrics = planner_name != "tree";
  const auto r = planner->Plan(in);

  util::Table t({"metric", "value"});
  t.AddRow({std::string("preset"), preset_name});
  t.AddRow({std::string("planner"), planner_name});
  t.AddRow({std::string("routers"),
            static_cast<long long>(topo.router_count())});
  t.AddRow({std::string("hosts"), static_cast<long long>(topo.host_count())});
  t.AddRow({std::string("oracle"),
            std::string(oracle.kind() == net::OracleKind::kFlat ? "flat"
                                                                : "hier")});
  t.AddRow({std::string("topology gen (ms)"), topo_ms});
  t.AddRow({std::string("oracle build (ms)"), build_ms});
  t.AddRow({std::string("oracle memory (MiB)"),
            static_cast<double>(oracle.MemoryBytes()) / (1024.0 * 1024.0)});
  t.AddRow({std::string("DHT join (ms)"), join_ms});
  t.AddRow({std::string("protocol mem (bytes/host)"), mem_per_host});
  t.AddRow({std::string("shards"), static_cast<long long>(shards)});
  if (shards > 1) {
    t.AddRow({std::string("lookahead (ms)"), plan.lookahead_ms});
    if (!plan.lookahead_matrix.empty()) {
      t.AddRow({std::string("extracted lookahead (ms)"),
                plan.extracted_lookahead_ms});
    }
    t.AddRow({std::string("lockstep windows"),
              static_cast<long long>(ssim.windows())});
    t.AddRow({std::string("cross-shard messages"),
              static_cast<long long>(ssim.cross_shard_messages())});
    t.AddRow({std::string("critical path (ms)"),
              ssim.critical_path_ns() / 1e6});
  }
  t.AddRow({std::string("protocol events"),
            static_cast<long long>(protocol_events)});
  t.AddRow({std::string("heartbeats delivered"),
            static_cast<long long>(hb_delivered)});
  t.AddRow({std::string("SOMO gathers"),
            static_cast<long long>(root_somo.gathers_completed())});
  t.AddRow({std::string("SOMO root staleness (ms)"),
            root_somo.RootStalenessMs()});
  t.AddRow({std::string("alert fires"),
            static_cast<long long>(alert_engine.fires())});
  t.AddRow({std::string("AMCast baseline height (ms)"), base});
  t.AddRow({std::string("planned height (ms)"), r.height_true});
  t.AddRow({std::string("improvement"),
            alm::Improvement(base, r.height_true)});
  t.AddRow({std::string("helpers used"),
            static_cast<long long>(r.helpers_used)});
  if (r.maintenance_messages > 0)
    t.AddRow({std::string("maintenance msgs"),
              static_cast<long long>(r.maintenance_messages)});
  std::printf("%s", t.ToText(3).c_str());

  obs::RunReport report("fullstack");
  report.set_seed(seed);
  report.AddConfig("preset", preset_name);
  report.AddConfig("planner", planner_name);
  report.AddConfig("oracle",
                   oracle.kind() == net::OracleKind::kFlat ? "flat" : "hier");
  report.AddConfig("f32", oracle.uses_float_storage());
  report.AddConfig("group", static_cast<std::int64_t>(group));
  report.AddConfig("helpers", static_cast<std::int64_t>(helpers));
  report.AddConfig("strategy", strategy_name);
  report.AddConfig("somo_interval_ms", interval);
  report.AddConfig("horizon_ms", horizon);
  report.AddConfig("shards", static_cast<std::int64_t>(shards));
  report.AddConfig("join", join_mode);
  report.AddConfig("lookahead", lookahead_mode);
  // Wall-clock build time stays out of the results (same-seed reports must
  // diff clean); it lives in the metrics profile section like every timer.
  // Keys ending in _ms are likewise skipped by tools/compare_reports.py, so
  // the join and critical-path wall times may sit in the results.
  report.AddResult("routers", static_cast<double>(topo.router_count()));
  report.AddResult("hosts", static_cast<double>(topo.host_count()));
  report.AddResult("oracle_bytes", static_cast<double>(oracle.MemoryBytes()));
  report.AddResult("oracle_core_nodes",
                   static_cast<double>(oracle.core_node_count()));
  report.AddResult("oracle_gateways",
                   static_cast<double>(oracle.gateway_count()));
  report.AddResult("setup_topo_ms", topo_ms);
  report.AddResult("setup_oracle_ms", build_ms);
  report.AddResult("setup_join_ms", join_ms);
  report.AddResult("setup_extract_ms", extract_ms);
  report.AddResult("mem_bytes_per_host", mem_per_host);
  report.AddResult("protocol_events", static_cast<double>(protocol_events));
  // Deterministic lookahead facts (the extraction depends only on seed):
  // the structural window bound, the measured matrix min (0 on --lookahead
  // fixed or at 1 shard), and the window count they produce.
  report.AddResult("lookahead_structural_ms", plan.lookahead_ms);
  report.AddResult("lookahead_extracted_ms", plan.extracted_lookahead_ms);
  report.AddResult("lockstep_windows", static_cast<double>(ssim.windows()));
  report.AddResult("cross_shard_messages",
                   static_cast<double>(ssim.cross_shard_messages()));
  report.AddResult("critical_path_ms", ssim.critical_path_ns() / 1e6);
  report.AddResult("heartbeats_delivered", static_cast<double>(hb_delivered));
  report.AddResult("somo_gathers",
                   static_cast<double>(root_somo.gathers_completed()));
  report.AddResult("somo_root_staleness_ms", root_somo.RootStalenessMs());
  report.AddResult("alert_fires", static_cast<double>(alert_engine.fires()));
  report.AddResult("alert_evaluations",
                   static_cast<double>(alert_engine.evaluations()));
  report.AddResult(
      "alert_root_stale_first_ms",
      alert_engine.first_fired_at(root_stale_rule));
  report.AddAlerts("fullstack", alert_engine);
  report.AddResult("base_height_ms", base);
  report.AddResult("planned_height_ms", r.height_true);
  report.AddResult("improvement", alm::Improvement(base, r.height_true));
  report.AddResult("helpers_used", static_cast<double>(r.helpers_used));
  report.AddResult("maintenance_msgs",
                   static_cast<double>(r.maintenance_messages));
  // One registry per shard; merge in shard order (MergeFrom's fixed spec
  // order keeps float sums reproducible). The 1-shard report attaches the
  // single registry directly, exactly as the serial binary did.
  obs::MetricsRegistry merged;
  if (shards > 1) {
    ssim.MergeMetrics(merged);
    // Barrier machinery wall times (exchange swap, inbox drain, outbox
    // pre-sort, window advance) join the non-deterministic profile section
    // next to the other ScopeTimer histograms.
    merged.MergeFrom(ssim.kernel_profile());
    report.AttachMetrics(&merged);
  } else {
    report.AttachMetrics(&sim0.metrics());
  }
  return FinishReport(report, report_path);
}

// Judge registered planners against each other on one session under
// identical seeds: the same preset topology, oracle, degree bounds, member
// sample, and — per fault scenario — the same failure set for every
// planner. Three scenarios:
//   none       plan only (construction cost and tree quality);
//   loss       a seeded random sample of members fails (uncorrelated);
//   partition  the lowest-host-id block of members fails together (host
//              ids are assigned stub domain by stub domain, so the block
//              approximates one side of a stub split).
// Each planner answers the faults through its own Repair() story — global
// re-plan for the tree planners, local component re-probing for the mesh —
// and the report carries per-planner height/stress/overhead/repair rows
// keyed "<planner>.<scenario>.<metric>".
int CmdCompare(util::FlagParser& flags) {
  const std::string preset_name =
      flags.GetString("preset", "1200",
                      "topology preset (1200|10k|50k|100k|250k)");
  const std::string oracle_name = flags.GetString(
      "oracle", "hier", "latency oracle (flat|hier)");
  const auto seed =
      static_cast<std::uint64_t>(flags.GetInt("seed", 1, "experiment seed"));
  const auto group = static_cast<std::size_t>(
      flags.GetInt("group", 50, "ALM session size incl. root"));
  const auto helpers = static_cast<std::size_t>(flags.GetInt(
      "helpers", 200, "helper candidates sampled for the session"));
  const std::string planners_arg = flags.GetString(
      "planner", "tree,mesh", "comma-separated planner names to compare");
  const std::string strategy_name = flags.GetString(
      "strategy", "critical+adj",
      "tree-planner strategy (oracle-based only)");
  const alm::MeshOptions mesh_opts = MeshFlagOptions(flags);
  const double fail_frac = flags.GetDouble(
      "fail-frac", 0.125, "fraction of members failed per fault scenario");
  const int jobs = flags.GetInt(
      "jobs", 0, "oracle build threads (0 = hardware concurrency)");
  const std::string report_path = ReportPath(flags);

  std::vector<std::string> planner_names;
  {
    std::size_t pos = 0;
    while (pos <= planners_arg.size()) {
      const std::size_t comma = planners_arg.find(',', pos);
      const std::string item = planners_arg.substr(
          pos, comma == std::string::npos ? comma : comma - pos);
      if (!item.empty()) planner_names.push_back(item);
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
    P2P_CHECK_MSG(!planner_names.empty(), "empty --planner list");
  }
  const alm::Strategy strategy = alm::ParseStrategy(strategy_name);

  const net::TransitStubParams params =
      net::PresetParams(net::ParseTopologyPreset(preset_name));
  std::printf("generating %s topology (seed %llu) ...\n",
              preset_name.c_str(), static_cast<unsigned long long>(seed));
  util::Rng topo_rng(seed);
  const auto topo = net::GenerateTransitStub(params, topo_rng);

  net::OracleOptions oracle_opts;
  oracle_opts.kind = ParseOracleKind(oracle_name);
  util::ThreadPool workers(jobs < 0 ? 1 : static_cast<std::size_t>(jobs));
  oracle_opts.pool = &workers;
  std::printf("building %s oracle over %zu routers ...\n",
              oracle_opts.kind == net::OracleKind::kFlat ? "flat" : "hier",
              topo.router_count());
  const net::LatencyOracle oracle(topo, oracle_opts);

  // Same session sample as fullstack: paper degree bounds over all hosts,
  // then the group and a bounded helper-candidate sample.
  util::Rng rng(seed ^ 0xfeed);
  obs::MetricsRegistry registry;
  alm::PlanInput in;
  in.degree_bounds.reserve(topo.host_count());
  for (std::size_t v = 0; v < topo.host_count(); ++v)
    in.degree_bounds.push_back(pool::SamplePaperDegreeBound(rng));
  const auto idx = rng.SampleIndices(topo.host_count(), group);
  in.root = idx[0];
  in.members.assign(idx.begin() + 1, idx.end());
  std::vector<char> is_member(topo.host_count(), 0);
  for (const auto v : idx) is_member[v] = 1;
  const auto candidate_pool = rng.SampleIndices(
      topo.host_count(), std::min(topo.host_count(), 4 * helpers + group));
  for (const auto v : candidate_pool) {
    if (in.helper_candidates.size() >= helpers) break;
    if (!is_member[v] && in.degree_bounds[v] >= 4)
      in.helper_candidates.push_back(v);
  }
  in.oracle = &oracle;
  in.metrics = &registry;
  in.planner_metrics = true;

  // Shared failure sets so every planner faces the identical fault.
  const std::size_t fail_count = std::max<std::size_t>(
      1, static_cast<std::size_t>(fail_frac *
                                  static_cast<double>(in.members.size())));
  P2P_CHECK_MSG(fail_count < in.members.size(),
                "--fail-frac leaves no surviving member");
  std::vector<alm::ParticipantId> loss_set;
  {
    util::Rng fail_rng(seed ^ 0xfa11);
    for (const std::size_t i :
         fail_rng.SampleIndices(in.members.size(), fail_count))
      loss_set.push_back(in.members[i]);
  }
  std::vector<alm::ParticipantId> partition_set = in.members;
  std::sort(partition_set.begin(), partition_set.end());
  partition_set.resize(fail_count);

  struct Row {
    std::string planner;
    std::string scenario;
    double height_ms = 0.0;
    std::size_t stress = 0;
    std::size_t maintenance = 0;
    std::size_t helpers_used = 0;
    std::size_t disrupted = 0;
    std::size_t repair_msgs = 0;
    double repair_ms = 0.0;
  };
  std::vector<Row> rows;
  for (const std::string& name : planner_names) {
    std::unique_ptr<alm::Planner> planner =
        MakePlanner(name, strategy, mesh_opts);
    P2P_CHECK_MSG(!planner->NeedsEstimates(),
                  "compare has no coordinate estimates; planner '"
                      << name << "' needs them");
    std::printf("planning %zu-member session with '%s' ...\n", group,
                name.c_str());
    const alm::PlanResult plan = planner->Plan(in);
    rows.push_back({name, "none", plan.height_true, alm::MaxFanout(plan.tree),
                    plan.maintenance_messages, plan.helpers_used, 0, 0, 0.0});
    const struct {
      const char* scenario;
      const std::vector<alm::ParticipantId>* failed;
    } faults[] = {{"loss", &loss_set}, {"partition", &partition_set}};
    for (const auto& f : faults) {
      const alm::RepairOutcome rep = planner->Repair(in, *f.failed);
      rows.push_back({name, f.scenario, rep.plan.height_true,
                      alm::MaxFanout(rep.plan.tree),
                      rep.plan.maintenance_messages, rep.plan.helpers_used,
                      rep.disrupted, rep.repair_messages,
                      rep.repair_latency_ms});
    }
  }

  util::Table t({"planner", "scenario", "height_ms", "stress", "maint_msgs",
                 "helpers", "disrupted", "repair_msgs", "repair_ms"});
  for (const Row& row : rows) {
    t.AddRow({row.planner, row.scenario, row.height_ms,
              static_cast<long long>(row.stress),
              static_cast<long long>(row.maintenance),
              static_cast<long long>(row.helpers_used),
              static_cast<long long>(row.disrupted),
              static_cast<long long>(row.repair_msgs), row.repair_ms});
  }
  std::printf("%s", t.ToText(3).c_str());
  for (const auto& [name, value] :
       registry.ValuesWithPrefix("alm.planner."))
    std::printf("  %s = %.0f\n", name.c_str(), value);

  obs::RunReport report("compare");
  report.set_seed(seed);
  report.AddConfig("preset", preset_name);
  report.AddConfig("oracle", oracle_name);
  report.AddConfig("planners", planners_arg);
  report.AddConfig("strategy", strategy_name);
  report.AddConfig("group", static_cast<std::int64_t>(group));
  report.AddConfig("helpers", static_cast<std::int64_t>(helpers));
  report.AddConfig("fail_frac", fail_frac);
  report.AddResult("hosts", static_cast<double>(topo.host_count()));
  report.AddResult("members", static_cast<double>(in.members.size()));
  report.AddResult("failed_per_scenario", static_cast<double>(fail_count));
  for (const Row& row : rows) {
    const std::string prefix = row.planner + "." + row.scenario + ".";
    report.AddResult(prefix + "height_ms", row.height_ms);
    report.AddResult(prefix + "stress", static_cast<double>(row.stress));
    report.AddResult(prefix + "maintenance_msgs",
                     static_cast<double>(row.maintenance));
    report.AddResult(prefix + "helpers_used",
                     static_cast<double>(row.helpers_used));
    report.AddResult(prefix + "disrupted",
                     static_cast<double>(row.disrupted));
    report.AddResult(prefix + "repair_msgs",
                     static_cast<double>(row.repair_msgs));
    report.AddResult(prefix + "repair_latency_ms", row.repair_ms);
  }
  report.AttachMetrics(&registry);
  return FinishReport(report, report_path);
}

// The self-monitoring experiment (tentpole of the observability PR): every
// host folds a snapshot of its own transport counters into the NodeReport
// it hands SOMO, so the system's telemetry travels in-band up the gather
// tree. The root's aggregate then claims to describe per-host traffic —
// and because this is a simulation we also hold the exact ground truth
// (Transport::EnablePerHostStats). This command quantifies the divergence
// between the two under fault injection:
//   count error  — mean relative error of the root view's per-host
//                  sent-message counters vs the live transport counters;
//   age error    — mean age of the telemetry samples in the root view
//                  (how old the in-band "now" is);
//   coverage     — alive hosts represented with valid telemetry.
// Scenarios: none (baseline), loss (Bernoulli drop on every send), and
// partition (a host block isolated for the middle third of the run).
int CmdObserve(util::FlagParser& flags) {
  const auto nodes =
      static_cast<std::size_t>(flags.GetInt("nodes", 64, "ring size"));
  const auto fanout =
      static_cast<std::size_t>(flags.GetInt("fanout", 4, "SOMO fanout k"));
  const double interval =
      flags.GetDouble("interval-ms", 1000.0, "SOMO reporting cycle T");
  const double loss = flags.GetDouble(
      "loss", 0.2, "loss probability for the 'loss' scenario");
  const double horizon =
      flags.GetDouble("horizon-ms", 60000.0, "simulated time per scenario");
  const auto seed =
      static_cast<std::uint64_t>(flags.GetInt("seed", 1, "simulation seed"));
  const std::string scenarios_flag = flags.GetString(
      "scenarios", "none,loss,partition", "comma-separated scenario names");
  const std::string ts_dir = flags.GetString(
      "timeseries-dir", "", "write observe_<scenario>.csv files to DIR");
  const std::string report_path = ReportPath(flags);

  const std::vector<FaultScenario> scenarios =
      ParseScenarios(scenarios_flag, loss);
  if (!ts_dir.empty() && !util::EnsureDir(ts_dir)) {
    std::printf("error: cannot create --timeseries-dir %s\n", ts_dir.c_str());
    return 1;
  }

  obs::RunReport report("observe");
  report.set_seed(seed);
  report.AddConfig("nodes", static_cast<std::int64_t>(nodes));
  report.AddConfig("fanout", static_cast<std::int64_t>(fanout));
  report.AddConfig("interval_ms", interval);
  report.AddConfig("loss", loss);
  report.AddConfig("horizon_ms", horizon);
  report.AddConfig("scenarios", scenarios_flag);
  std::vector<std::unique_ptr<sim::Simulation>> sims;

  util::Table t({"scenario", "coverage", "count_err%", "age_err_ms",
                 "peak_age_ms", "root_stale_ms", "view_cov", "drop%"});
  for (const FaultScenario& sc : scenarios) {
    sims.push_back(std::make_unique<sim::Simulation>(seed));
    sim::Simulation& sim = *sims.back();
    sim.EnableMetrics();
    sim.transport().EnablePerHostStats(nodes);
    sim.transport().faults().loss_probability = sc.loss;

    dht::Ring ring(16);
    for (std::size_t i = 0; i < nodes; ++i) ring.JoinHashed(i);
    ring.StabilizeAll();
    ring.set_metrics(&sim.metrics());

    // Background workload whose telemetry the SOMO reports carry: the
    // leafset heartbeat protocol (suspicion mode doubles as the churn
    // signal under loss).
    dht::HeartbeatConfig hb_cfg;
    hb_cfg.suspect_alive = true;
    dht::HeartbeatProtocol hb(sim, ring, hb_cfg);
    hb.Start();

    somo::SomoConfig cfg;
    cfg.fanout = fanout;
    cfg.report_interval_ms = interval;
    // Disseminate the root view back down, so every node holds a copy of
    // the newscast whose error vs ground truth can be scored below.
    cfg.disseminate = true;
    somo::SomoProtocol somo(sim, ring, cfg, [&](dht::NodeIndex n) {
      somo::NodeReport r;
      r.node = n;
      r.host = ring.node(n).host();
      r.generated_at = sim.now();
      // In-band self-monitoring: snapshot this host's transport counters
      // into the report (rides the measured 40-byte record budget).
      const sim::HostStats& hs = sim.transport().host_stats(r.host);
      r.telemetry.msgs_sent = hs.sent;
      r.telemetry.msgs_delivered = hs.delivered;
      r.telemetry.msgs_dropped = hs.dropped;
      r.telemetry.bytes_sent = hs.bytes;
      r.telemetry.suspects = hb.suspected_count(n);
      r.telemetry.sampled_at = sim.now();
      return r;
    });
    somo.Start();

    // Decimating fill: were a scenario ever to outlive the buffer, the CSV
    // would keep its full span at halved resolution instead of losing the
    // start-up transient. The standard 60-cycle runs never fill it, so
    // their bytes are unchanged.
    obs::TimeseriesSampler sampler(4096, obs::FillPolicy::kDecimate);
    const std::string ts_path =
        ts_dir.empty() ? "" : ts_dir + "/observe_" + sc.name + ".csv";
    if (!ts_path.empty()) {
      sampler.AddProbe("root_staleness_ms", [&] {
        const double v = somo.RootStalenessMs();
        return std::isfinite(v) ? v : -1.0;
      });
      sampler.AddProbe("root_members", [&] {
        return sim.metrics().Value("somo.root.members");
      });
      sampler.AddProbe("hb_sent", [&] {
        return sim.metrics().Value("dht.heartbeat.sent");
      });
      sampler.AddProbe("inflight_messages", [&] {
        return static_cast<double>(sim.transport().inflight_messages());
      });
      sampler.AddProbe("nodes_with_view", [&] {
        return static_cast<double>(somo.nodes_with_view());
      });
      sim.Every(interval, interval, [&] { sampler.Sample(sim.now()); });
    }

    // Divergence: the in-band root view vs the live transport counters.
    struct Divergence {
      double coverage = 0.0;
      double count_err_pct = 0.0;
      double age_ms = 0.0;
    };
    const auto measure = [&] {
      Divergence d;
      std::size_t with_telemetry = 0;
      const somo::AggregateReport& root = somo.RootReport();
      for (std::size_t i = 0; i < root.size(); ++i) {
        const somo::HostTelemetry* tel = root.telemetry(i);
        if (tel == nullptr) continue;
        ++with_telemetry;
        const sim::HostStats& truth = sim.transport().host_stats(root.host(i));
        const double truth_sent = static_cast<double>(truth.sent);
        d.count_err_pct += std::abs(static_cast<double>(tel->msgs_sent) -
                                    truth_sent) /
                           std::max(1.0, truth_sent);
        d.age_ms += sim.now() - tel->sampled_at;
      }
      const double denom =
          with_telemetry > 0 ? static_cast<double>(with_telemetry) : 1.0;
      d.coverage = static_cast<double>(with_telemetry) /
                   static_cast<double>(ring.alive_count());
      d.count_err_pct = 100.0 * d.count_err_pct / denom;
      d.age_ms /= denom;
      return d;
    };

    if (sc.partition) {
      // Isolate the first eighth of the hosts for the middle third of the
      // run; their telemetry in the root view freezes until the heal.
      std::vector<std::size_t> block;
      for (std::size_t h = 0; h < nodes / 8; ++h) block.push_back(h);
      sim.At(horizon / 3.0, [&sim, block] { sim.transport().Partition(block); });
      sim.At(2.0 * horizon / 3.0, [&sim] { sim.transport().HealPartitions(); });
    }
    // Peak divergence: sampled just before the partition heals (the worst
    // moment for that scenario; for the others just a mid-run reading).
    Divergence peak;
    sim.At(2.0 * horizon / 3.0 - 1.0, [&] { peak = measure(); });

    sim.RunUntil(horizon);

    const Divergence final = measure();
    const auto total = sim.transport().stats().Total();
    const double drop_pct =
        total.sent == 0 ? 0.0
                        : 100.0 * static_cast<double>(total.dropped) /
                              static_cast<double>(total.sent);
    const double root_stale = somo.RootStalenessMs();

    // Dissemination scoring: every node's copy of the newscast, not just
    // the root's. Per node with a view: staleness of the copy and the mean
    // relative error of its telemetry counts vs live ground truth. The
    // whole distribution lands in the metrics histograms; headline
    // percentiles in the results.
    std::vector<double> view_age, view_err;
    obs::Histogram& h_age = sim.metrics().histogram("observe.view.age_ms");
    obs::Histogram& h_err =
        sim.metrics().histogram("observe.view.count_err_pct");
    for (dht::NodeIndex n = 0; n < nodes; ++n) {
      if (!ring.node(n).alive()) continue;
      const somo::SomoProtocol::NodeView& v = somo.ViewAt(n);
      if (!v.valid() || v.view->empty()) continue;
      const double age = sim.now() - v.view->oldest;
      double err = 0.0;
      std::size_t cnt = 0;
      for (std::size_t i = 0; i < v.view->size(); ++i) {
        const somo::HostTelemetry* tel = v.view->telemetry(i);
        if (tel == nullptr) continue;
        ++cnt;
        const sim::HostStats& truth =
            sim.transport().host_stats(v.view->host(i));
        const double truth_sent = static_cast<double>(truth.sent);
        err += std::abs(static_cast<double>(tel->msgs_sent) - truth_sent) /
               std::max(1.0, truth_sent);
      }
      err = cnt > 0 ? 100.0 * err / static_cast<double>(cnt) : 0.0;
      view_age.push_back(age);
      view_err.push_back(err);
      h_age.Add(age);
      h_err.Add(err);
    }
    const double view_cov = static_cast<double>(view_age.size()) /
                            static_cast<double>(ring.alive_count());
    sim.metrics().gauge("observe.view.coverage").Set(view_cov);

    t.AddRow({sc.name, final.coverage, final.count_err_pct, final.age_ms,
              peak.age_ms, root_stale, view_cov, drop_pct});
    const std::string prefix = sc.name + ".";
    report.AddResult(prefix + "coverage", final.coverage);
    report.AddResult(prefix + "count_error_pct", final.count_err_pct);
    report.AddResult(prefix + "age_error_ms", final.age_ms);
    report.AddResult(prefix + "peak_count_error_pct", peak.count_err_pct);
    report.AddResult(prefix + "peak_age_error_ms", peak.age_ms);
    report.AddResult(prefix + "root_staleness_ms", root_stale);
    report.AddResult(prefix + "drop_pct", drop_pct);
    report.AddResult(prefix + "view_coverage", view_cov);
    report.AddResult(
        prefix + "view_age_p50_ms",
        view_age.empty() ? -1.0 : util::Percentile(view_age, 50));
    report.AddResult(
        prefix + "view_age_p90_ms",
        view_age.empty() ? -1.0 : util::Percentile(view_age, 90));
    report.AddResult(
        prefix + "view_count_err_p90_pct",
        view_err.empty() ? -1.0 : util::Percentile(view_err, 90));

    if (!ts_path.empty()) {
      if (!sampler.WriteCsv(ts_path)) {
        std::printf("error: cannot write timeseries to %s\n",
                    ts_path.c_str());
        return 1;
      }
      report.AddTimeseries(sc.name, ts_path, sampler.rows(),
                           sampler.total_rows());
    }
    somo.Stop();
    hb.Stop();
  }
  std::printf("%s", t.ToText(3).c_str());
  if (!ts_dir.empty())
    std::printf("timeseries CSVs -> %s/observe_<scenario>.csv\n",
                ts_dir.c_str());
  if (!sims.empty()) report.AttachMetrics(&sims.back()->metrics());
  return FinishReport(report, report_path);
}

// The closed monitor→react loop: can the *in-band* disseminated SOMO view,
// not the simulator's ground truth, drive membership healing — and how far
// behind ground truth does it run?
//
// Per fault scenario, two arms over identical seeds:
//   truth   heartbeats auto-repair (Ring::DetectFailure on timeout) and a
//           failure observer rebuilds the SOMO tree — the conventional
//           out-of-band reactor.
//   inband  heartbeats run as pure sensors (auto_repair off): timeouts only
//           feed the per-node suspect sets riding the telemetry. Repair is
//           triggered solely by alert rules over one observer node's copy
//           of the disseminated newscast; on a stale-view fire the reactor
//           direct-probes the stale members ("contacting the nodes reveals
//           the truth"), evicts the ones that do not answer, and rebuilds
//           the tree. Probes answered by live members count as
//           false_detects.
//
// The injected failure is the owner of one SOMO leaf: its death silences a
// whole gather subtree, so the victims' reports pin the view's staleness —
// exactly the signal the "view.stale" rule watches. Detection latency is
// measured within-run (heartbeat observers fire in sensor mode too), and
// the stale threshold is derived from the tree: one dissemination period
// (depth+2 reporting cycles) past the heartbeat timeout.
int CmdAlert(util::FlagParser& flags) {
  const std::string preset_name =
      flags.GetString("preset", "1200",
                      "topology preset (1200|10k|50k|100k|250k)");
  net::OracleOptions oracle_opts = OracleFlagOptions(flags);
  const auto seed =
      static_cast<std::uint64_t>(flags.GetInt("seed", 1, "experiment seed"));
  const auto fanout =
      static_cast<std::size_t>(flags.GetInt("fanout", 8, "SOMO fanout k"));
  const double interval =
      flags.GetDouble("interval-ms", 1000.0, "SOMO reporting cycle T");
  const double horizon =
      flags.GetDouble("horizon-ms", 60000.0, "simulated time per run");
  const double loss = flags.GetDouble(
      "loss", 0.05, "loss probability for the 'loss' scenario");
  const double hb_timeout =
      flags.GetDouble("hb-timeout-ms", 3500.0, "heartbeat failure timeout");
  const std::string scenarios_flag = flags.GetString(
      "scenarios", "none,loss,partition", "comma-separated scenario names");
  const std::string ts_dir = flags.GetString(
      "timeseries-dir", "", "write alert_<scenario>_<arm>.csv event logs");
  const int jobs = flags.GetInt(
      "jobs", 0, "oracle build threads (0 = hardware concurrency)");
  const std::string report_path = ReportPath(flags);

  const std::vector<FaultScenario> scenarios =
      ParseScenarios(scenarios_flag, loss);
  if (!ts_dir.empty() && !util::EnsureDir(ts_dir)) {
    std::printf("error: cannot create --timeseries-dir %s\n", ts_dir.c_str());
    return 1;
  }

  const net::TransitStubParams params =
      net::PresetParams(net::ParseTopologyPreset(preset_name));
  std::printf("generating %s topology (seed %llu) ...\n", preset_name.c_str(),
              static_cast<unsigned long long>(seed));
  util::Rng topo_rng(seed);
  const auto topo = net::GenerateTransitStub(params, topo_rng);
  const std::size_t hosts = topo.host_count();
  util::ThreadPool workers(jobs < 0 ? 1 : static_cast<std::size_t>(jobs));
  oracle_opts.pool = &workers;
  const net::LatencyOracle oracle(topo, oracle_opts);

  obs::RunReport report("alert");
  report.set_seed(seed);
  report.AddConfig("preset", preset_name);
  report.AddConfig("oracle",
                   oracle.kind() == net::OracleKind::kFlat ? "flat" : "hier");
  report.AddConfig("fanout", static_cast<std::int64_t>(fanout));
  report.AddConfig("interval_ms", interval);
  report.AddConfig("horizon_ms", horizon);
  report.AddConfig("loss", loss);
  report.AddConfig("hb_timeout_ms", hb_timeout);
  report.AddConfig("scenarios", scenarios_flag);

  struct ArmResult {
    double hb_detect = -1.0;     // heartbeat first times out the victim
    double alert_detect = -1.0;  // "view.stale" first fires
    double suspect_detect = -1.0;
    std::size_t stale_fires = 0;
    std::size_t suspect_fires = 0;
    std::size_t false_detects = 0;  // stale members probed alive
    std::size_t repaired = 0;       // stale members evicted (dead)
    std::size_t rebuilds = 0;
    double leafset_repairs = 0.0;
    double end_alive_stale = -1.0;  // RootAliveStalenessMs at the horizon
    std::size_t somo_msgs = 0;
    std::size_t somo_bytes = 0;
    std::size_t hb_false_susp = 0;
    std::size_t tree_depth = 0;
  };

  std::vector<std::unique_ptr<sim::Simulation>> sims;
  util::Table t({"scenario", "arm", "hb_detect", "alert_detect", "delta",
                 "fires", "false_det", "repaired", "end_stale_ms"});
  bool wrote_period = false;

  for (const FaultScenario& sc : scenarios) {
    for (const bool inband : {false, true}) {
      const std::string arm = inband ? "inband" : "truth";
      // Both arms run the same seed: identical timer phases and fault
      // schedule, so the only divergence is who drives the repair.
      sims.push_back(std::make_unique<sim::Simulation>(seed));
      sim::Simulation& sim = *sims.back();
      sim.EnableMetrics();
      sim.transport().EnablePerHostStats(hosts);
      sim.transport().faults().loss_probability = sc.loss;

      dht::Ring ring(32, &oracle);
      const dht::NodeIndex first = ring.JoinBatchHashed(0, hosts);
      P2P_CHECK(first == 0 && ring.size() == hosts);
      ring.set_metrics(&sim.metrics());

      dht::HeartbeatConfig hb_cfg;
      hb_cfg.suspect_alive = true;
      hb_cfg.timeout_ms = hb_timeout;
      hb_cfg.auto_repair = !inband;
      dht::HeartbeatProtocol hb(sim, ring, hb_cfg);

      somo::SomoConfig cfg;
      cfg.fanout = fanout;
      cfg.report_interval_ms = interval;
      cfg.disseminate = true;
      somo::SomoProtocol somo(sim, ring, cfg, [&](dht::NodeIndex n) {
        somo::NodeReport r;
        r.node = n;
        r.host = ring.node(n).host();
        r.generated_at = sim.now();
        const sim::HostStats& hs = sim.transport().host_stats(r.host);
        r.telemetry.msgs_sent = hs.sent;
        r.telemetry.msgs_delivered = hs.delivered;
        r.telemetry.msgs_dropped = hs.dropped;
        r.telemetry.bytes_sent = hs.bytes;
        r.telemetry.suspects = hb.suspected_count(n);
        r.telemetry.sampled_at = sim.now();
        return r;
      });

      // Cast: root owner; an observer holding a disseminated copy; a
      // victim owning the smallest SOMO leaf. Observer and victim sit
      // outside the partition block [0, hosts/8) so the partition scenario
      // degrades their *view*, not their connectivity.
      const somo::LogicalTree& tree = somo.tree();
      const dht::NodeIndex root_owner = tree.node(tree.root()).owner;
      const std::size_t block_hi = hosts / 8;
      dht::NodeIndex observer = dht::kNoNode;
      for (dht::NodeIndex n = 0; n < ring.size(); ++n) {
        if (ring.node(n).host() < block_hi || n == root_owner) continue;
        observer = n;
        break;
      }
      dht::NodeIndex victim = dht::kNoNode;
      std::size_t victim_leaf_size = static_cast<std::size_t>(-1);
      for (const somo::LogicalIndex l : tree.leaves()) {
        const somo::LogicalNode& ln = tree.node(l);
        if (ln.owner == root_owner || ln.owner == observer) continue;
        if (ring.node(ln.owner).host() < block_hi) continue;
        if (ln.reported.empty() || ln.reported.size() >= victim_leaf_size)
          continue;
        victim_leaf_size = ln.reported.size();
        victim = ln.owner;
      }
      P2P_CHECK(observer != dht::kNoNode && victim != dht::kNoNode);

      // Rules over the observer's in-band copy of the newscast.
      obs::AlertEngine engine;
      const double diss_period = (static_cast<double>(tree.depth()) + 2.0) *
                                 interval;
      const double stale_threshold = hb_timeout + diss_period;
      obs::AlertRule stale;
      stale.name = "view.stale";
      stale.threshold = stale_threshold;
      // Half a cycle of debounce: one confirming evaluation. A full cycle
      // would push in-band detection beyond the dissemination-period bound
      // the experiment is out to demonstrate.
      stale.debounce_ms = interval / 2.0;
      stale.clear_ms = interval;
      stale.probe = [&somo, observer] {
        const double v = somo.ViewStalenessMs(observer);
        return std::isfinite(v) ? v : 0.0;  // no view yet: nothing to alert
      };
      const std::size_t stale_rule = engine.AddRule(std::move(stale));
      obs::AlertRule susp;
      susp.name = "suspect.rate";
      susp.threshold = 1.0;  // mean suspects per reported member
      susp.debounce_ms = interval;
      susp.clear_ms = interval;
      susp.probe = [&somo, observer] {
        const somo::SomoProtocol::NodeView& v = somo.ViewAt(observer);
        if (!v.valid() || v.view->empty()) return 0.0;
        double total = 0.0;
        for (std::size_t i = 0; i < v.view->size(); ++i) {
          if (const auto* tel = v.view->telemetry(i))
            total += static_cast<double>(tel->suspects);
        }
        return total / static_cast<double>(v.view->size());
      };
      const std::size_t susp_rule = engine.AddRule(std::move(susp));

      ArmResult res;
      res.tree_depth = tree.depth();
      hb.AddFailureObserver([&res, &somo, victim, inband](
                                dht::NodeIndex, dht::NodeIndex dead,
                                sim::Time when) {
        if (dead == victim && res.hb_detect < 0.0) res.hb_detect = when;
        if (!inband) {
          // Truth arm reactor: membership already healed by auto-repair;
          // re-derive the gather tree (fires once per dead node).
          somo.Rebuild();
          ++res.rebuilds;
        }
      });
      std::vector<char> evicted(ring.size(), 0);
      std::vector<char> seen(ring.size(), 0);  // ever in the observer's view
      if (inband) {
        // Shared reactor: suspects are members whose report aged past the
        // threshold, plus members the view has *lost* (a rebuilt tree
        // drops a dead machine's cached report entirely, so absence —
        // against the membership the newscast itself taught the observer —
        // is the other staleness signal). Each suspect gets one direct
        // probe ("contacting the nodes reveals the truth"): unanswered ⇒
        // evict + leafset repair, answered ⇒ false detect. Either way the
        // gather tree is re-derived.
        const auto probe_and_repair = [&] {
          const somo::SomoProtocol::NodeView& v = somo.ViewAt(observer);
          if (!v.valid()) return;
          std::vector<char> current(ring.size(), 0);
          std::vector<dht::NodeIndex> suspects;
          for (std::size_t i = 0; i < v.view->size(); ++i) {
            const dht::NodeIndex n = v.view->node(i);
            if (n >= ring.size()) continue;
            current[n] = 1;
            seen[n] = 1;
            if (sim.now() - v.view->generated_at(i) > stale_threshold)
              suspects.push_back(n);
          }
          for (dht::NodeIndex n = 0; n < ring.size(); ++n) {
            if (seen[n] && !current[n]) suspects.push_back(n);
          }
          for (const dht::NodeIndex n : suspects) {
            if (evicted[n]) continue;
            if (!ring.node(n).alive()) {
              evicted[n] = 1;
              ring.DetectFailure(n);
              ++res.repaired;
              sim.metrics().counter("alert.repairs").Inc();
            } else {
              ++res.false_detects;
              sim.metrics().counter("alert.false_detects").Inc();
            }
          }
          somo.Rebuild();
          ++res.rebuilds;
          sim.metrics().counter("alert.rebuilds").Inc();
        };
        engine.OnFire(stale_rule,
                      [probe_and_repair](const obs::AlertEvent&) {
                        probe_and_repair();
                      });
        engine.OnFire(susp_rule,
                      [probe_and_repair](const obs::AlertEvent&) {
                        probe_and_repair();
                      });
      }

      hb.Start();
      somo.Start();
      sim.Every(interval / 2.0, interval / 2.0,
                [&engine, &sim] { engine.Evaluate(sim.now()); });

      const double t_crash = horizon / 3.0;
      sim.At(t_crash, [&ring, victim] { ring.Fail(victim); });
      if (sc.partition) {
        std::vector<std::size_t> block;
        for (std::size_t h = 0; h < block_hi; ++h) {
          if (h == ring.node(root_owner).host()) continue;
          block.push_back(h);
        }
        sim.At(t_crash,
               [&sim, block] { sim.transport().Partition(block); });
        sim.At(2.0 * horizon / 3.0,
               [&sim] { sim.transport().HealPartitions(); });
      }

      sim.RunUntil(horizon);

      res.alert_detect = engine.first_fired_at(stale_rule);
      res.suspect_detect = engine.first_fired_at(susp_rule);
      res.stale_fires = engine.fire_count(stale_rule);
      res.suspect_fires = engine.fire_count(susp_rule);
      res.leafset_repairs = sim.metrics().Value("dht.leafset.repairs");
      const double alive_stale = somo.RootAliveStalenessMs();
      res.end_alive_stale = std::isfinite(alive_stale) ? alive_stale : -1.0;
      res.somo_msgs = somo.messages_sent();
      res.somo_bytes = somo.bytes_sent();
      res.hb_false_susp = hb.false_suspicions();
      // Missed repair: the injected failure was never acted on — the truth
      // arm's heartbeat never timed the victim out, or the in-band arm's
      // reactor never evicted it.
      const bool missed =
          inband ? evicted[victim] == 0 : res.hb_detect < 0.0;
      somo.Stop();
      hb.Stop();

      const double delta =
          res.hb_detect >= 0.0 && res.alert_detect >= 0.0
              ? res.alert_detect - res.hb_detect
              : -1.0;
      t.AddRow({sc.name, arm, res.hb_detect, res.alert_detect, delta,
                static_cast<long long>(res.stale_fires + res.suspect_fires),
                static_cast<long long>(res.false_detects),
                static_cast<long long>(res.repaired), res.end_alive_stale});

      if (!wrote_period) {
        // Identical across scenarios and arms (same membership, same tree).
        report.AddResult("tree_depth", static_cast<double>(res.tree_depth));
        report.AddResult("dissemination_period_ms", diss_period);
        report.AddResult("stale_threshold_ms", stale_threshold);
        wrote_period = true;
      }
      const std::string prefix = sc.name + "." + arm + ".";
      report.AddResult(prefix + "hb_detect_ms", res.hb_detect);
      report.AddResult(prefix + "alert_detect_ms", res.alert_detect);
      report.AddResult(prefix + "detect_delta_ms", delta);
      report.AddResult(prefix + "suspect_detect_ms", res.suspect_detect);
      report.AddResult(prefix + "stale_fires",
                       static_cast<double>(res.stale_fires));
      report.AddResult(prefix + "suspect_fires",
                       static_cast<double>(res.suspect_fires));
      report.AddResult(prefix + "false_detects",
                       static_cast<double>(res.false_detects));
      report.AddResult(prefix + "missed_repairs", missed ? 1.0 : 0.0);
      report.AddResult(prefix + "repaired",
                       static_cast<double>(res.repaired));
      report.AddResult(prefix + "rebuilds",
                       static_cast<double>(res.rebuilds));
      report.AddResult(prefix + "leafset_repairs", res.leafset_repairs);
      report.AddResult(prefix + "end_alive_staleness_ms",
                       res.end_alive_stale);
      report.AddResult(prefix + "somo_messages",
                       static_cast<double>(res.somo_msgs));
      report.AddResult(prefix + "somo_bytes",
                       static_cast<double>(res.somo_bytes));
      report.AddResult(prefix + "hb_false_suspicions",
                       static_cast<double>(res.hb_false_susp));
      report.AddAlerts(sc.name + "." + arm, engine);

      if (!ts_dir.empty()) {
        const std::string csv_path =
            ts_dir + "/alert_" + sc.name + "_" + arm + ".csv";
        if (!engine.WriteCsv(csv_path)) {
          std::printf("error: cannot write alert log to %s\n",
                      csv_path.c_str());
          return 1;
        }
        report.AddTimeseries(sc.name + "." + arm + ".alerts", csv_path,
                             engine.events().size(),
                             engine.events().size() + engine.dropped_events());
      }
    }
  }
  std::printf("%s", t.ToText(1).c_str());
  if (!ts_dir.empty())
    std::printf("alert event CSVs -> %s/alert_<scenario>_<arm>.csv\n",
                ts_dir.c_str());
  if (!sims.empty()) report.AttachMetrics(&sims.back()->metrics());
  return FinishReport(report, report_path);
}

}  // namespace

int main(int argc, char** argv) {
  util::FlagParser flags(argc, argv);
  if (flags.positional().empty()) return Usage();
  const std::string cmd = flags.positional()[0];
  try {
    int rc;
    if (cmd == "plan") {
      rc = CmdPlan(flags);
    } else if (cmd == "multi") {
      rc = CmdMulti(flags);
    } else if (cmd == "somo") {
      rc = CmdSomo(flags);
    } else if (cmd == "somo-loss") {
      rc = CmdSomoLoss(flags);
    } else if (cmd == "hb-jitter") {
      rc = CmdHbJitter(flags);
    } else if (cmd == "topo") {
      rc = CmdTopo(flags);
    } else if (cmd == "fullstack") {
      rc = CmdFullstack(flags);
    } else if (cmd == "compare") {
      rc = CmdCompare(flags);
    } else if (cmd == "observe") {
      rc = CmdObserve(flags);
    } else if (cmd == "alert") {
      rc = CmdAlert(flags);
    } else {
      std::printf("unknown command '%s'\n", cmd.c_str());
      return Usage();
    }
    for (const auto& f : flags.UnknownFlags())
      std::printf("warning: unknown flag --%s ignored\n%s", f.c_str(),
                  flags.Help().c_str());
    return rc;
  } catch (const util::CheckError& e) {
    std::printf("error: %s\n%s", e.what(), flags.Help().c_str());
    return 1;
  }
}
