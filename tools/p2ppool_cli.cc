// p2ppool_cli — drive the library's experiments from the command line.
//
//   p2ppool_cli plan  --group 20 --strategy leafset+adj --seed 1
//   p2ppool_cli multi --sessions 30 --members 20 --sweeps 2
//   p2ppool_cli somo  --nodes 256 --fanout 8 --interval-ms 5000 --sync
//   p2ppool_cli somo-loss --loss 0,0.1,0.3 --fail 1 --redundant
//   p2ppool_cli hb-jitter --jitter 0,500,2000,4000
//   p2ppool_cli topo  --hosts 1200 --seed 7
//
// Every command prints an aligned table; run without arguments for usage.
#include <cstdio>
#include <string>
#include <vector>

#include "alm/bounds.h"
#include "alm/critical.h"
#include "dht/heartbeat.h"
#include "pool/multi_session_sim.h"
#include "pool/resource_pool.h"
#include "sim/simulation.h"
#include "sim/trace.h"
#include "sim/transport.h"
#include "somo/somo.h"
#include "util/csv.h"
#include "util/flags.h"

namespace {

using namespace p2p;

int Usage() {
  std::printf(
      "usage: p2ppool_cli <command> [flags]\n"
      "commands:\n"
      "  plan       plan one ALM session on a paper-sized pool\n"
      "  multi      run the market-driven multi-session experiment\n"
      "  somo       run the SOMO gather protocol and report latency/overhead\n"
      "  somo-loss  sweep bus loss rates: SOMO root staleness vs loss\n"
      "  hb-jitter  sweep bus jitter: heartbeat false-positive rate\n"
      "  topo       generate a transit-stub topology and print its stats\n");
  return 2;
}

// "0,0.05,0.1" → {0.0, 0.05, 0.1}.
std::vector<double> ParseDoubleList(const std::string& s) {
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::string item =
        s.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!item.empty()) out.push_back(std::stod(item));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (out.empty()) throw util::CheckError("empty list '" + s + "'");
  return out;
}

alm::Strategy ParseStrategy(const std::string& s) {
  if (s == "amcast") return alm::Strategy::kAmcast;
  if (s == "amcast+adj") return alm::Strategy::kAmcastAdjust;
  if (s == "critical") return alm::Strategy::kCritical;
  if (s == "critical+adj") return alm::Strategy::kCriticalAdjust;
  if (s == "leafset") return alm::Strategy::kLeafset;
  if (s == "leafset+adj") return alm::Strategy::kLeafsetAdjust;
  throw util::CheckError("unknown strategy '" + s +
                         "' (amcast|amcast+adj|critical|critical+adj|"
                         "leafset|leafset+adj)");
}

int CmdPlan(util::FlagParser& flags) {
  const auto group = static_cast<std::size_t>(
      flags.GetInt("group", 20, "session size incl. root"));
  const auto seed = static_cast<std::uint64_t>(
      flags.GetInt("seed", 1, "pool + sampling seed"));
  const std::string strategy_name =
      flags.GetString("strategy", "leafset+adj", "planning strategy");
  const double radius =
      flags.GetDouble("radius", 100.0, "helper radius R (ms)");
  const double stream =
      flags.GetDouble("stream-kbps", 0.0, "per-link stream rate (0=off)");

  std::printf("building pool (seed %llu) ...\n",
              static_cast<unsigned long long>(seed));
  pool::PoolConfig cfg;
  cfg.seed = seed;
  pool::ResourcePool rp(cfg);

  util::Rng rng(seed ^ 0xfeed);
  const auto idx = rng.SampleIndices(rp.size(), group);
  alm::PlanInput in;
  in.degree_bounds = rp.degree_bounds();
  if (stream > 0.0) {
    for (std::size_t v = 0; v < rp.size(); ++v) {
      const double up = rp.bandwidths().host(v).up_kbps;
      const int cap = static_cast<int>(up / stream) + (v == idx[0] ? 0 : 1);
      in.degree_bounds[v] = std::min(in.degree_bounds[v], cap);
    }
  }
  in.root = idx[0];
  in.members.assign(idx.begin() + 1, idx.end());
  std::vector<char> is_member(rp.size(), 0);
  for (const auto v : idx) is_member[v] = 1;
  for (std::size_t v = 0; v < rp.size(); ++v) {
    if (!is_member[v] && in.degree_bounds[v] >= 4)
      in.helper_candidates.push_back(v);
  }
  in.true_latency = rp.TrueLatencyFn();
  in.estimated_latency = rp.EstimatedLatencyFn();
  in.amcast.helper_radius = radius;

  const alm::Strategy strategy = ParseStrategy(strategy_name);
  const double base = PlanSession(in, alm::Strategy::kAmcast).height_true;
  const auto r = PlanSession(in, strategy);
  const double ideal =
      alm::IdealHeight(in.root, in.members, in.true_latency);

  util::Table t({"metric", "value"});
  t.AddRow({std::string("strategy"), strategy_name});
  t.AddRow({std::string("group size"), static_cast<long long>(group)});
  t.AddRow({std::string("AMCast baseline height (ms)"), base});
  t.AddRow({std::string("planned height (ms)"), r.height_true});
  t.AddRow({std::string("improvement"), alm::Improvement(base, r.height_true)});
  t.AddRow({std::string("bound (ideal star)"), alm::Improvement(base, ideal)});
  t.AddRow({std::string("helpers used"),
            static_cast<long long>(r.helpers_used)});
  std::printf("%s", t.ToText(3).c_str());
  return 0;
}

int CmdMulti(util::FlagParser& flags) {
  pool::MultiSessionParams params;
  params.session_count = static_cast<std::size_t>(
      flags.GetInt("sessions", 30, "concurrent sessions"));
  params.members_per_session = static_cast<std::size_t>(
      flags.GetInt("members", 20, "members per session"));
  params.rescheduling_sweeps = static_cast<std::size_t>(
      flags.GetInt("sweeps", 2, "market rescheduling sweeps"));
  params.seed = static_cast<std::uint64_t>(
      flags.GetInt("seed", 42, "experiment seed"));
  params.compute_upper_bound =
      flags.GetBool("bounds", true, "compute per-session bounds");
  const int jobs = flags.GetInt(
      "jobs", 0, "threads for per-session bounds (0 = hardware concurrency)");

  std::printf("building pool ...\n");
  pool::PoolConfig cfg;
  cfg.seed = params.seed;
  pool::ResourcePool rp(cfg);
  util::ThreadPool workers(jobs < 0 ? 1 : static_cast<std::size_t>(jobs));
  params.workers = &workers;
  const auto result = RunMultiSessionExperiment(rp, params);

  util::Table t({"priority", "sessions", "improvement", "helpers"});
  for (int p = 1; p <= 3; ++p) {
    const auto& cls = result.by_priority[static_cast<std::size_t>(p)];
    t.AddRow({static_cast<long long>(p),
              static_cast<long long>(cls.sessions),
              cls.improvement.mean(), cls.helpers_used.mean()});
  }
  std::printf("%s", t.ToText(3).c_str());
  if (params.compute_upper_bound) {
    std::printf("bounds: lower %.3f (AMCast+adj) / upper %.3f "
                "(Leafset+adj solo)\n",
                result.lower_bound_improvement.mean(),
                result.upper_bound_improvement.mean());
  }
  std::printf("pool utilisation %.2f, %zu reschedules, %zu preemptions\n",
              result.pool_utilisation, result.reschedules,
              result.preemptions);
  return 0;
}

int CmdSomo(util::FlagParser& flags) {
  const auto nodes =
      static_cast<std::size_t>(flags.GetInt("nodes", 256, "ring size"));
  const auto fanout =
      static_cast<std::size_t>(flags.GetInt("fanout", 8, "SOMO fanout k"));
  const double interval =
      flags.GetDouble("interval-ms", 5000.0, "reporting cycle T");
  const bool sync = flags.GetBool("sync", false, "synchronised gather");
  const bool disseminate =
      flags.GetBool("disseminate", false, "broadcast the view back down");
  const bool redundant =
      flags.GetBool("redundant", false, "parent-sibling detour links");
  const double horizon =
      flags.GetDouble("horizon-ms", 120000.0, "simulated time");
  const std::string trace_path = flags.GetString(
      "trace", "", "write a p2ptrace v1 dump of all bus traffic to FILE");
  const auto trace_cap = static_cast<std::size_t>(flags.GetInt(
      "trace-cap", 1 << 16, "trace ring capacity (oldest overwritten)"));

  sim::Simulation sim(nodes);
  dht::Ring ring(16);
  sim::TraceSink trace(trace_cap);
  if (!trace_path.empty()) {
    trace.set_clock([&sim] { return sim.now(); });
    sim.transport().set_trace(&trace);
    ring.set_trace_sink(&trace);  // per-hop records for overlay lookups
  }
  for (std::size_t i = 0; i < nodes; ++i) ring.JoinHashed(i);
  ring.StabilizeAll();
  somo::SomoConfig cfg;
  cfg.fanout = fanout;
  cfg.report_interval_ms = interval;
  cfg.synchronized_gather = sync;
  cfg.disseminate = disseminate;
  cfg.redundant_links = redundant;
  somo::SomoProtocol somo(sim, ring, cfg, [&](dht::NodeIndex n) {
    somo::NodeReport r;
    r.node = n;
    r.host = ring.node(n).host();
    r.generated_at = sim.now();
    return r;
  });
  somo.Start();
  sim.RunUntil(horizon);

  util::Table t({"metric", "value"});
  t.AddRow({std::string("nodes"), static_cast<long long>(nodes)});
  t.AddRow({std::string("fanout"), static_cast<long long>(fanout)});
  t.AddRow({std::string("tree depth"),
            static_cast<long long>(somo.tree().depth())});
  t.AddRow({std::string("logical nodes"),
            static_cast<long long>(somo.tree().size())});
  t.AddRow({std::string("gathers completed"),
            static_cast<long long>(somo.gathers_completed())});
  t.AddRow({std::string("root staleness (ms)"), somo.RootStalenessMs()});
  t.AddRow({std::string("messages"),
            static_cast<long long>(somo.messages_sent())});
  t.AddRow({std::string("bytes/node/cycle"),
            static_cast<double>(somo.bytes_sent()) /
                static_cast<double>(nodes) /
                (horizon / interval)});
  if (disseminate) {
    t.AddRow({std::string("nodes with newscast"),
              static_cast<long long>(somo.nodes_with_view())});
  }
  std::printf("%s", t.ToText(1).c_str());
  if (!trace_path.empty()) {
    // One overlay query at the horizon interleaves routing-hop records
    // with the protocol traffic the trace already holds.
    (void)somo.QueryFromNode(0);
    std::FILE* f = std::fopen(trace_path.c_str(), "w");
    if (f == nullptr || !trace.WriteText(f)) {
      std::printf("error: cannot write trace to %s\n", trace_path.c_str());
      if (f != nullptr) std::fclose(f);
      return 1;
    }
    std::fclose(f);
    std::printf("trace: %zu records held (%zu total) -> %s\n", trace.size(),
                trace.total_records(), trace_path.c_str());
  }
  return 0;
}

// Deterministic fault experiment (§3.2 robustness): sweep the bus loss
// rate and report how stale the SOMO root view gets. With --fail > 0 that
// many internal logical-node owners crash a third of the way in, WITHOUT
// failure detection or tree rebuild — pair with --redundant to watch the
// parent-sibling detour links hold freshness together.
int CmdSomoLoss(util::FlagParser& flags) {
  const auto nodes =
      static_cast<std::size_t>(flags.GetInt("nodes", 128, "ring size"));
  const auto fanout =
      static_cast<std::size_t>(flags.GetInt("fanout", 4, "SOMO fanout k"));
  const double interval =
      flags.GetDouble("interval-ms", 500.0, "reporting cycle T");
  const bool redundant =
      flags.GetBool("redundant", false, "parent-sibling detour links");
  const auto fail = static_cast<std::size_t>(flags.GetInt(
      "fail", 0, "internal owners crashed at horizon/3 (no rebuild)"));
  const double horizon =
      flags.GetDouble("horizon-ms", 60000.0, "simulated time per loss level");
  const auto seed =
      static_cast<std::uint64_t>(flags.GetInt("seed", 1, "simulation seed"));
  const auto losses = ParseDoubleList(flags.GetString(
      "loss", "0,0.05,0.1,0.2,0.3", "comma-separated loss probabilities"));

  // alive_stale_ms ignores crashed machines' lingering final reports (they
  // persist in cached aggregates until a rebuild), so it isolates how well
  // gathering tracks the surviving membership.
  util::Table t({"loss", "alive_stale_ms", "complete", "somo_drop%",
                 "redundant_pushes"});
  for (const double loss : losses) {
    sim::Simulation sim(seed);
    dht::Ring ring(16);
    for (std::size_t i = 0; i < nodes; ++i) ring.JoinHashed(i);
    ring.StabilizeAll();
    sim.transport().faults().loss_probability = loss;
    somo::SomoConfig cfg;
    cfg.fanout = fanout;
    cfg.report_interval_ms = interval;
    cfg.redundant_links = redundant;
    somo::SomoProtocol somo(sim, ring, cfg, [&](dht::NodeIndex n) {
      somo::NodeReport r;
      r.node = n;
      r.host = ring.node(n).host();
      r.generated_at = sim.now();
      return r;
    });
    somo.Start();
    sim.RunUntil(horizon / 3.0);
    std::size_t failed = 0;
    const auto& tree = somo.tree();
    for (somo::LogicalIndex l = 0; l < tree.size() && failed < fail; ++l) {
      const auto& ln = tree.node(l);
      if (ln.is_leaf() || ln.is_root()) continue;
      if (ln.owner == tree.node(tree.root()).owner) continue;
      if (!ring.node(ln.owner).alive()) continue;
      ring.Fail(ln.owner);
      ++failed;
    }
    sim.RunUntil(horizon);
    const auto st = sim.transport().stats().protocol(sim::Protocol::kSomo);
    const double drop_pct =
        st.sent == 0 ? 0.0
                     : 100.0 * static_cast<double>(st.dropped) /
                           static_cast<double>(st.sent);
    t.AddRow({loss, somo.RootAliveStalenessMs(),
              std::string(somo.RootViewComplete() ? "yes" : "no"), drop_pct,
              static_cast<long long>(somo.redundant_pushes())});
  }
  std::printf("%s", t.ToText(3).c_str());
  return 0;
}

// Deterministic fault experiment (§3.1/§4): sweep the bus delay jitter and
// report the heartbeat failure detector's false-positive rate in
// suspect_alive mode. Nobody actually dies; every suspicion is the
// detector being starved by jitter (and --loss adds message loss on top).
int CmdHbJitter(util::FlagParser& flags) {
  const auto nodes =
      static_cast<std::size_t>(flags.GetInt("nodes", 64, "ring size"));
  const double period =
      flags.GetDouble("period-ms", 1000.0, "heartbeat period");
  const double timeout =
      flags.GetDouble("timeout-ms", 2500.0, "suspicion timeout");
  const double loss =
      flags.GetDouble("loss", 0.0, "bus loss probability on top of jitter");
  const double horizon =
      flags.GetDouble("horizon-ms", 120000.0, "simulated time per level");
  const auto seed =
      static_cast<std::uint64_t>(flags.GetInt("seed", 1, "simulation seed"));
  const auto jitters = ParseDoubleList(flags.GetString(
      "jitter", "0,500,1000,2000,4000", "comma-separated jitter bounds (ms)"));

  util::Table t({"jitter_ms", "delivered", "false_pos", "fp/node/min"});
  for (const double jitter : jitters) {
    sim::Simulation sim(seed);
    dht::Ring ring(8);
    for (std::size_t i = 0; i < nodes; ++i) ring.JoinHashed(i);
    ring.StabilizeAll();
    sim.transport().faults().jitter_ms = jitter;
    sim.transport().faults().loss_probability = loss;
    dht::HeartbeatConfig cfg;
    cfg.period_ms = period;
    cfg.timeout_ms = timeout;
    cfg.suspect_alive = true;
    dht::HeartbeatProtocol hb(sim, ring, cfg);
    hb.Start();
    sim.RunUntil(horizon);
    const double node_minutes =
        static_cast<double>(nodes) * horizon / 60000.0;
    t.AddRow({jitter, static_cast<long long>(hb.heartbeats_delivered()),
              static_cast<long long>(hb.false_suspicions()),
              static_cast<double>(hb.false_suspicions()) / node_minutes});
  }
  std::printf("%s", t.ToText(3).c_str());
  return 0;
}

int CmdTopo(util::FlagParser& flags) {
  net::TransitStubParams params;
  params.end_hosts = static_cast<std::size_t>(
      flags.GetInt("hosts", 1200, "end systems"));
  const auto seed =
      static_cast<std::uint64_t>(flags.GetInt("seed", 7, "topology seed"));
  util::Rng rng(seed);
  const auto topo = net::GenerateTransitStub(params, rng);
  const net::LatencyOracle oracle(topo);

  util::Rng prng(seed ^ 0x777);
  std::vector<double> lat;
  for (int i = 0; i < 5000; ++i) {
    const auto a = prng.NextBounded(topo.host_count());
    const auto b = prng.NextBounded(topo.host_count());
    if (a != b) lat.push_back(oracle.Latency(a, b));
  }
  util::Table t({"metric", "value"});
  t.AddRow({std::string("routers"),
            static_cast<long long>(topo.router_count())});
  t.AddRow({std::string("transit routers"),
            static_cast<long long>(params.total_transit_routers())});
  t.AddRow({std::string("end hosts"),
            static_cast<long long>(topo.host_count())});
  t.AddRow({std::string("router edges"),
            static_cast<long long>(topo.routers.edge_count())});
  t.AddRow({std::string("latency p10 (ms)"), util::Percentile(lat, 10)});
  t.AddRow({std::string("latency p50 (ms)"), util::Percentile(lat, 50)});
  t.AddRow({std::string("latency p90 (ms)"), util::Percentile(lat, 90)});
  std::printf("%s", t.ToText(1).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::FlagParser flags(argc, argv);
  if (flags.positional().empty()) return Usage();
  const std::string cmd = flags.positional()[0];
  try {
    int rc;
    if (cmd == "plan") {
      rc = CmdPlan(flags);
    } else if (cmd == "multi") {
      rc = CmdMulti(flags);
    } else if (cmd == "somo") {
      rc = CmdSomo(flags);
    } else if (cmd == "somo-loss") {
      rc = CmdSomoLoss(flags);
    } else if (cmd == "hb-jitter") {
      rc = CmdHbJitter(flags);
    } else if (cmd == "topo") {
      rc = CmdTopo(flags);
    } else {
      std::printf("unknown command '%s'\n", cmd.c_str());
      return Usage();
    }
    for (const auto& f : flags.UnknownFlags())
      std::printf("warning: unknown flag --%s ignored\n%s", f.c_str(),
                  flags.Help().c_str());
    return rc;
  } catch (const util::CheckError& e) {
    std::printf("error: %s\n%s", e.what(), flags.Help().c_str());
    return 1;
  }
}
