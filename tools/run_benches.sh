#!/usr/bin/env bash
# Build the Release tree and run the ALM planning bench-regression harness.
#
# Writes BENCH_alm.json (google-benchmark JSON) at the repo root: every
# BM_* family runs the new heap+matrix planner AND the retained reference
# implementation on identical instances, so the per-size real_time ratio
# BM_AmcastPlanReference/N : BM_AmcastPlan/N is the planning-path speedup.
#
# Also writes BENCH_metrics_snapshot.json — a p2pmetrics/v1 registry
# snapshot from a short instrumented workload — and checks the metrics
# overhead pairs (BM_TransportThroughputMetrics vs BM_TransportThroughput,
# BM_PlanSessionMetrics vs BM_PlanSession, BM_SomoGatherAlerts vs
# BM_SomoGather) stay under 5%.
#
# Usage: tools/run_benches.sh [extra google-benchmark flags...]
set -euo pipefail

repo_root=$(cd -- "$(dirname -- "${BASH_SOURCE[0]}")/.." && pwd)
cd "$repo_root"

cmake --preset release
cmake --build --preset release -j "$(nproc)" \
  --target bench_to_json bench_micro bench_kernel bench_net

# Snapshot the committed BENCH_alm.json (if any) before overwriting it:
# the old rows are the baseline for the planner-interface regression gate
# (BM_PlanSession must stay within 1.1x — the Planner virtualisation tax).
alm_baseline=""
if [[ -f "$repo_root/BENCH_alm.json" ]]; then
  alm_baseline=$(mktemp)
  cp "$repo_root/BENCH_alm.json" "$alm_baseline"
fi

./build-release/bench/bench_to_json \
  --benchmark_out="$repo_root/BENCH_alm.json" \
  --benchmark_out_format=json \
  --benchmark_min_time=0.2 \
  "$@"

echo "wrote $repo_root/BENCH_alm.json"
if command -v python3 >/dev/null 2>&1; then
  python3 "$repo_root/tools/check_bench_scale.py" \
    "$repo_root/BENCH_alm.json" ${alm_baseline:+"$alm_baseline"} \
    || echo "WARNING: BM_PlanSession above 1.1x baseline — inspect BENCH_alm.json"
else
  echo "python3 not found; skipping planner regression check"
fi
if [[ -n "$alm_baseline" ]]; then rm -f "$alm_baseline"; fi

# Metrics-overhead regression gate (<5%): a focused re-run of the
# instrumented/bare twins with repetitions, compared on median cpu_time
# (single-shot comparisons are dominated by scheduler noise). Repetitions
# are randomly interleaved so slow machine drift hits both twins equally
# instead of biasing whichever runs second. Warn-only:
# noise on loaded machines should not fail the whole bench run.
./build-release/bench/bench_to_json \
  --benchmark_filter='BM_TransportThroughput(Metrics)?/|BM_PlanSession(Metrics)?/|BM_SomoGather(Alerts)?/' \
  --benchmark_out="$repo_root/BENCH_obs_overhead.json" \
  --benchmark_out_format=json \
  --benchmark_min_time=0.5 \
  --benchmark_repetitions=5 \
  --benchmark_enable_random_interleaving=true \
  --benchmark_report_aggregates_only=true
echo "wrote $repo_root/BENCH_obs_overhead.json"
if command -v python3 >/dev/null 2>&1; then
  python3 "$repo_root/tools/check_bench_overhead.py" \
    "$repo_root/BENCH_obs_overhead.json" \
    || echo "WARNING: metrics overhead above 5% — inspect BENCH_obs_overhead.json"
else
  echo "python3 not found; skipping metrics-overhead check"
fi

# Kernel scale sweep: event-loop ns/event at 1.2k/5k/10k hosts under the
# timing wheel, the retained heap backend, and a copy of the pre-wheel
# queue. Gated (warn-only) on the >=3x legacy:wheel speedup at 10k hosts,
# flat wheel memory, ns/event regression vs the committed baseline,
# (PR 9) the per-host protocol memory rows: <= 4096 B/host and >= 2x
# below the pre-SoA layouts at 10k hosts (--max-bytes-per-host /
# --min-host-mem-reduction), and (PR 10) the run-phase budget — serial
# critical_ns_per_event <= 160 at the largest sharded sweep
# (--max-ns-per-event) — plus the wide-area lookahead-extraction rows:
# >= 1.5x fewer lockstep windows than the fixed 56 ms schedule
# (--min-window-reduction).
baseline=""
if [[ -f "$repo_root/BENCH_kernel.json" ]]; then
  baseline=$(mktemp)
  cp "$repo_root/BENCH_kernel.json" "$baseline"
fi
./build-release/bench/bench_kernel --reps 5 \
  --json "$repo_root/BENCH_kernel.json"
echo "wrote $repo_root/BENCH_kernel.json"
if command -v python3 >/dev/null 2>&1; then
  python3 "$repo_root/tools/check_bench_scale.py" \
    "$repo_root/BENCH_kernel.json" ${baseline:+"$baseline"} \
    --max-ns-per-event 160 --min-window-reduction 1.5 \
    || echo "WARNING: kernel scale sweep below target — inspect BENCH_kernel.json"
else
  echo "python3 not found; skipping kernel scale check"
fi
if [[ -n "$baseline" ]]; then rm -f "$baseline"; fi

# Network substrate sweep: LatencyOracle build/query/memory at the
# topology presets, flat vs hierarchical. Gated (warn-only) on the >=5x
# hier memory reduction and <=2x query ratio at the 10k+ presets, plus
# (PR 9) the substrate setup rows: topology + pooled hier build + DHT
# batch join within --max-setup-seconds (120 s) and >= 3x faster than
# the replayed pre-SoA dense prefix fill at 50k (--min-setup-speedup).
./build-release/bench/bench_net --reps 3 \
  --json "$repo_root/BENCH_net.json"
echo "wrote $repo_root/BENCH_net.json"
if command -v python3 >/dev/null 2>&1; then
  python3 "$repo_root/tools/check_bench_scale.py" \
    "$repo_root/BENCH_net.json" \
    || echo "WARNING: network substrate sweep below target — inspect BENCH_net.json"
else
  echo "python3 not found; skipping network substrate check"
fi
