#!/usr/bin/env bash
# Build the Release tree and run the ALM planning bench-regression harness.
#
# Writes BENCH_alm.json (google-benchmark JSON) at the repo root: every
# BM_* family runs the new heap+matrix planner AND the retained reference
# implementation on identical instances, so the per-size real_time ratio
# BM_AmcastPlanReference/N : BM_AmcastPlan/N is the planning-path speedup.
#
# Usage: tools/run_benches.sh [extra google-benchmark flags...]
set -euo pipefail

repo_root=$(cd -- "$(dirname -- "${BASH_SOURCE[0]}")/.." && pwd)
cd "$repo_root"

cmake --preset release
cmake --build --preset release -j "$(nproc)" --target bench_to_json bench_micro

./build-release/bench/bench_to_json \
  --benchmark_out="$repo_root/BENCH_alm.json" \
  --benchmark_out_format=json \
  --benchmark_min_time=0.2 \
  "$@"

echo "wrote $repo_root/BENCH_alm.json"
