#!/usr/bin/env python3
"""Validate p2preport/v1 run reports (p2ppool_cli --report output).

Hand-rolled checker mirroring tools/report_schema.json — the container has
no jsonschema package, and the schema is small enough that an explicit
walk is clearer anyway. Exits 0 when every file passes, 1 otherwise.

Usage: validate_report.py report.json [more.json ...]
"""

import json
import sys


def _err(path, msg, errors):
    errors.append(f"{path}: {msg}")


def validate_metrics(m, path, errors):
    if m is None:
        return
    if not isinstance(m, dict):
        _err(path, "metrics must be an object or null", errors)
        return
    if m.get("schema") != "p2pmetrics/v1":
        _err(path, f"metrics.schema is {m.get('schema')!r}, "
                   "expected 'p2pmetrics/v1'", errors)
    for section in ("counters", "gauges", "histograms"):
        sec = m.get(section)
        if not isinstance(sec, dict):
            _err(path, f"metrics.{section} missing or not an object", errors)
            continue
        if section == "histograms":
            for name, h in sec.items():
                if not isinstance(h, dict):
                    _err(path, f"histogram {name!r} is not an object", errors)
                    continue
                for field in ("count", "min", "max", "mean", "sum",
                              "p50", "p90", "p99"):
                    v = h.get(field)
                    if not (v is None and field != "count"
                            or isinstance(v, (int, float))):
                        _err(path, f"histogram {name!r}.{field} "
                                   f"is {type(v).__name__}", errors)
        else:
            for name, v in sec.items():
                if not isinstance(v, (int, float)):
                    _err(path, f"{section}[{name!r}] is not a number", errors)


def validate_alerts(alerts, path, errors):
    if alerts is None:
        return  # section is optional: omitted when no engine was attached
    if not isinstance(alerts, dict):
        _err(path, "alerts is not an object", errors)
        return
    for name, a in alerts.items():
        if not isinstance(a, dict):
            _err(path, f"alerts[{name!r}] is not an object", errors)
            continue
        for field in ("fires", "clears", "dropped", "evaluations"):
            v = a.get(field)
            if not isinstance(v, int) or isinstance(v, bool) or v < 0:
                _err(path, f"alerts[{name!r}].{field} missing or not a "
                           "non-negative integer", errors)
        events = a.get("events")
        if not isinstance(events, list):
            _err(path, f"alerts[{name!r}].events missing or not an array",
                 errors)
            continue
        prev_t = None
        for i, ev in enumerate(events):
            if not isinstance(ev, dict):
                _err(path, f"alerts[{name!r}].events[{i}] is not an object",
                     errors)
                continue
            t = ev.get("t_ms")
            if not isinstance(t, (int, float)) or isinstance(t, bool):
                _err(path, f"alerts[{name!r}].events[{i}].t_ms is not a "
                           "number", errors)
            elif prev_t is not None and t < prev_t:
                _err(path, f"alerts[{name!r}].events[{i}] out of order "
                           f"({t} < {prev_t})", errors)
            else:
                prev_t = t
            if not isinstance(ev.get("rule"), str) or not ev.get("rule"):
                _err(path, f"alerts[{name!r}].events[{i}].rule missing or "
                           "empty", errors)
            if ev.get("kind") not in ("fire", "clear"):
                _err(path, f"alerts[{name!r}].events[{i}].kind is "
                           f"{ev.get('kind')!r}, expected 'fire'|'clear'",
                     errors)
            v = ev.get("value")
            if v is not None and (not isinstance(v, (int, float))
                                  or isinstance(v, bool)):
                _err(path, f"alerts[{name!r}].events[{i}].value is not a "
                           "number or null", errors)


def validate_report(doc, path, errors):
    if not isinstance(doc, dict):
        _err(path, "top level is not an object", errors)
        return
    if doc.get("schema") != "p2preport/v1":
        _err(path, f"schema is {doc.get('schema')!r}, "
                   "expected 'p2preport/v1'", errors)
    if not isinstance(doc.get("experiment"), str) or not doc.get("experiment"):
        _err(path, "experiment missing or empty", errors)
    seed = doc.get("seed")
    if not isinstance(seed, int) or isinstance(seed, bool) or seed < 0:
        _err(path, "seed missing or not a non-negative integer", errors)

    config = doc.get("config")
    if not isinstance(config, dict):
        _err(path, "config missing or not an object", errors)
    else:
        for k, v in config.items():
            if not isinstance(v, str):
                _err(path, f"config[{k!r}] is not a string "
                           "(values are stringified)", errors)

    results = doc.get("results")
    if not isinstance(results, dict):
        _err(path, "results missing or not an object", errors)
    else:
        for k, v in results.items():
            # Non-finite results serialize as null by design.
            if v is not None and not isinstance(v, (int, float)):
                _err(path, f"results[{k!r}] is not a number or null", errors)

    validate_metrics(doc.get("metrics"), path, errors)
    validate_alerts(doc.get("alerts"), path, errors)

    ts = doc.get("timeseries", [])
    if not isinstance(ts, list):
        _err(path, "timeseries is not an array", errors)
    else:
        for i, ref in enumerate(ts):
            if not isinstance(ref, dict):
                _err(path, f"timeseries[{i}] is not an object", errors)
                continue
            for field, typ in (("name", str), ("path", str),
                               ("rows", int), ("total_rows", int)):
                if not isinstance(ref.get(field), typ):
                    _err(path, f"timeseries[{i}].{field} missing or not "
                               f"{typ.__name__}", errors)


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    errors = []
    for path in sys.argv[1:]:
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            _err(path, f"cannot parse: {e}", errors)
            continue
        validate_report(doc, path, errors)
    if errors:
        for e in errors:
            print(f"validate_report: {e}", file=sys.stderr)
        return 1
    print(f"validate_report: {len(sys.argv) - 1} report(s) OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
