#!/usr/bin/env python3
"""Diff two p2preport/v1 run reports with per-result tolerances.

Same-seed runs of every experiment are deterministic, so the default
comparison is exact on everything except wall-clock sections: the
`profile` block of a spliced metrics snapshot (and any `*_ms` result
whose name marks it as a timing) is skipped. Use --rtol / --atol to
loosen the numeric comparison globally, or --tolerance KEY=RTOL to
loosen a single result key (e.g. cross-platform libm drift in a height
statistic).

Compared, in order:
  schema, experiment, seed        exact
  config                          exact string map
  results                         same key set; numbers within tolerance
  metrics.counters/gauges         same key set; numbers within tolerance
  metrics.histograms              count exact; min/max/mean/sum/p* within
                                  tolerance
  alerts                          exact: counts AND the full event log,
                                  including t_ms (virtual time — this is
                                  where same-seed timing determinism is
                                  enforced, since result keys ending in
                                  _ms are skipped as wall-clock timings)
  timeseries                      name and total_rows per entry
  metrics.profile                 ignored (wall clock)

Exit 0 when the reports agree, 1 otherwise, 2 on malformed input.

Usage: compare_reports.py A.json B.json
           [--rtol 0.0] [--atol 0.0] [--tolerance KEY=RTOL ...]
"""

import argparse
import json
import math
import sys


class Differ:
    def __init__(self, rtol, atol, per_key):
        self.rtol = rtol
        self.atol = atol
        self.per_key = per_key
        self.diffs = []

    def close(self, a, b, key):
        if a is None or b is None:
            return a is b
        if math.isnan(a) and math.isnan(b):
            return True
        rtol = self.per_key.get(key, self.rtol)
        return abs(a - b) <= self.atol + rtol * max(abs(a), abs(b))

    def report(self, path, a, b):
        self.diffs.append(f"  {path}: {a!r} != {b!r}")

    def exact(self, path, a, b):
        if a != b:
            self.report(path, a, b)

    def numbers(self, path, a, b, skip_timings=False):
        """Compare two {name: number-or-null} maps."""
        for key in sorted(set(a) | set(b)):
            if key not in a or key not in b:
                self.report(f"{path}.{key}", a.get(key, "<absent>"),
                            b.get(key, "<absent>"))
                continue
            if skip_timings and key.endswith("_ms"):
                continue
            if not self.close(a[key], b[key], key):
                self.report(f"{path}.{key}", a[key], b[key])


def compare(left, right, differ):
    for field in ("schema", "experiment", "seed"):
        differ.exact(field, left.get(field), right.get(field))
    differ.exact("config", left.get("config", {}), right.get("config", {}))

    differ.numbers("results", left.get("results", {}),
                   right.get("results", {}), skip_timings=True)

    ml, mr = left.get("metrics"), right.get("metrics")
    if (ml is None) != (mr is None):
        differ.report("metrics", "present" if ml else None,
                      "present" if mr else None)
    elif ml is not None:
        differ.numbers("metrics.counters", ml.get("counters", {}),
                       mr.get("counters", {}))
        differ.numbers("metrics.gauges", ml.get("gauges", {}),
                       mr.get("gauges", {}))
        hl, hr = ml.get("histograms", {}), mr.get("histograms", {})
        for name in sorted(set(hl) | set(hr)):
            if name not in hl or name not in hr:
                differ.report(f"metrics.histograms.{name}",
                              "present" if name in hl else "<absent>",
                              "present" if name in hr else "<absent>")
                continue
            a, b = hl[name], hr[name]
            differ.exact(f"metrics.histograms.{name}.count",
                         a.get("count"), b.get("count"))
            for stat in ("min", "max", "mean", "sum", "p50", "p90", "p99"):
                if not differ.close(a.get(stat), b.get(stat), name):
                    differ.report(f"metrics.histograms.{name}.{stat}",
                                  a.get(stat), b.get(stat))

    al, ar = left.get("alerts", {}), right.get("alerts", {})
    for name in sorted(set(al) | set(ar)):
        if name not in al or name not in ar:
            differ.report(f"alerts.{name}",
                          "present" if name in al else "<absent>",
                          "present" if name in ar else "<absent>")
            continue
        a, b = al[name], ar[name]
        for field in ("fires", "clears", "dropped", "evaluations"):
            differ.exact(f"alerts.{name}.{field}", a.get(field), b.get(field))
        ea, eb = a.get("events", []), b.get("events", [])
        if len(ea) != len(eb):
            differ.report(f"alerts.{name}.events (length)", len(ea), len(eb))
            continue
        for i, (va, vb) in enumerate(zip(ea, eb)):
            # Alert events are virtual-time transitions: byte-identical
            # across same-seed runs, t_ms included.
            differ.exact(f"alerts.{name}.events[{i}]", va, vb)

    tl = {t["name"]: t for t in left.get("timeseries", [])}
    tr = {t["name"]: t for t in right.get("timeseries", [])}
    for name in sorted(set(tl) | set(tr)):
        if name not in tl or name not in tr:
            differ.report(f"timeseries.{name}",
                          "present" if name in tl else "<absent>",
                          "present" if name in tr else "<absent>")
            continue
        differ.exact(f"timeseries.{name}.total_rows",
                     tl[name].get("total_rows"), tr[name].get("total_rows"))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("left")
    parser.add_argument("right")
    parser.add_argument("--rtol", type=float, default=0.0)
    parser.add_argument("--atol", type=float, default=0.0)
    parser.add_argument("--tolerance", action="append", default=[],
                        metavar="KEY=RTOL",
                        help="per-result-key relative tolerance override")
    args = parser.parse_args()

    per_key = {}
    for spec in args.tolerance:
        key, _, val = spec.partition("=")
        if not val:
            print(f"bad --tolerance {spec!r} (want KEY=RTOL)",
                  file=sys.stderr)
            return 2
        per_key[key] = float(val)

    reports = []
    for path in (args.left, args.right):
        try:
            with open(path, encoding="utf-8") as f:
                data = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"{path}: {e}", file=sys.stderr)
            return 2
        if data.get("schema") != "p2preport/v1":
            print(f"{path}: not a p2preport/v1 file", file=sys.stderr)
            return 2
        reports.append(data)

    differ = Differ(args.rtol, args.atol, per_key)
    compare(reports[0], reports[1], differ)

    if differ.diffs:
        print(f"DIFF  {args.left} vs {args.right}:")
        for line in differ.diffs:
            print(line)
        return 1
    print(f"  ok  {args.left} == {args.right}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
