// Randomised-operation fuzzing of the DegreeRegistry against a simple
// reference model, plus market-level conservation properties.
#include <gtest/gtest.h>

#include <map>
#include <tuple>
#include <vector>

#include "pool/degree_table.h"
#include "util/rng.h"

namespace p2p::pool {
namespace {

// Reference model: the same semantics, implemented naively.
class ModelRegistry {
 public:
  explicit ModelRegistry(std::vector<int> bounds)
      : bounds_(std::move(bounds)), slots_(bounds_.size()) {}

  struct Slot {
    alm::SessionId session;
    int priority;
    bool member;
  };

  bool Claim(std::size_t node, alm::SessionId s, int prio, bool member,
             alm::SessionId* victim) {
    auto& v = slots_[node];
    if (static_cast<int>(v.size()) < bounds_[node]) {
      v.push_back({s, prio, member});
      return true;
    }
    int weakest = -1;
    for (std::size_t i = 0; i < v.size(); ++i) {
      const bool preemptible =
          v[i].priority > prio ||
          (v[i].priority == prio && member && !v[i].member);
      if (!preemptible) continue;
      if (weakest < 0 ||
          v[i].priority > v[static_cast<std::size_t>(weakest)].priority ||
          (v[i].priority == v[static_cast<std::size_t>(weakest)].priority &&
           !v[i].member && v[static_cast<std::size_t>(weakest)].member)) {
        weakest = static_cast<int>(i);
      }
    }
    if (weakest < 0) return false;
    *victim = v[static_cast<std::size_t>(weakest)].session;
    v[static_cast<std::size_t>(weakest)] = {s, prio, member};
    return true;
  }

  int Release(std::size_t node, alm::SessionId s) {
    auto& v = slots_[node];
    const auto it = std::remove_if(
        v.begin(), v.end(), [s](const Slot& x) { return x.session == s; });
    const int n = static_cast<int>(v.end() - it);
    v.erase(it, v.end());
    return n;
  }

  int Held(std::size_t node, alm::SessionId s) const {
    int n = 0;
    for (const auto& x : slots_[node]) n += x.session == s;
    return n;
  }

  std::size_t Used(std::size_t node) const { return slots_[node].size(); }

 private:
  std::vector<int> bounds_;
  std::vector<std::vector<Slot>> slots_;
};

class RegistryFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RegistryFuzz, MatchesReferenceModel) {
  util::Rng rng(GetParam());
  std::vector<int> bounds;
  for (int i = 0; i < 12; ++i)
    bounds.push_back(static_cast<int>(rng.UniformInt(0, 5)));
  DegreeRegistry real(bounds);
  ModelRegistry model(bounds);

  for (int step = 0; step < 600; ++step) {
    const std::size_t node = rng.NextBounded(bounds.size());
    const alm::SessionId session =
        static_cast<alm::SessionId>(rng.UniformInt(1, 6));
    if (rng.Bernoulli(0.7)) {
      const int prio = static_cast<int>(rng.UniformInt(1, 3));
      const bool member = rng.Bernoulli(0.3);
      alm::SessionId model_victim = somo::kNoSession;
      const bool model_ok =
          model.Claim(node, session, prio, member, &model_victim);
      const ClaimResult r = real.Claim(node, session, prio, member);
      ASSERT_EQ(r.ok, model_ok) << "step " << step;
      if (r.preemption) {
        EXPECT_EQ(r.preempted, model_victim);
      }
    } else {
      const int real_n = real.Release(node, session);
      const int model_n = model.Release(node, session);
      ASSERT_EQ(real_n, model_n) << "step " << step;
    }
    // Cross-check state.
    for (std::size_t n = 0; n < bounds.size(); ++n) {
      ASSERT_EQ(static_cast<std::size_t>(real.table(n).used()),
                model.Used(n));
      for (alm::SessionId s = 1; s <= 6; ++s)
        ASSERT_EQ(real.HeldBy(n, s), model.Held(n, s));
    }
    real.CheckInvariants();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegistryFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 31337));

// ---- conservation properties ------------------------------------------

TEST(RegistryConservation, UsedNeverExceedsCapacity) {
  util::Rng rng(9);
  DegreeRegistry reg({3, 3, 3, 3});
  for (int i = 0; i < 200; ++i) {
    reg.Claim(rng.NextBounded(4),
              static_cast<alm::SessionId>(rng.UniformInt(1, 4)),
              static_cast<int>(rng.UniformInt(1, 3)), rng.Bernoulli(0.5));
    EXPECT_LE(reg.TotalUsed(), reg.TotalCapacity());
    reg.CheckInvariants();
  }
}

TEST(RegistryConservation, ReleaseSessionZeroesItsFootprint) {
  util::Rng rng(10);
  DegreeRegistry reg(std::vector<int>(8, 4));
  for (int i = 0; i < 100; ++i) {
    reg.Claim(rng.NextBounded(8),
              static_cast<alm::SessionId>(rng.UniformInt(1, 3)),
              static_cast<int>(rng.UniformInt(1, 3)), false);
  }
  reg.ReleaseSession(2);
  for (std::size_t n = 0; n < 8; ++n) EXPECT_EQ(reg.HeldBy(n, 2), 0);
  reg.CheckInvariants();
}

}  // namespace
}  // namespace p2p::pool
