#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <string>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/scope_timer.h"
#include "obs/timeseries.h"
#include "util/check.h"

namespace p2p::obs {
namespace {

std::string ReadAll(std::FILE* f) {
  std::rewind(f);
  std::string out;
  char buf[512];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  return out;
}

// ------------------------------------------------------------- primitives --

TEST(Metrics, CounterAccumulates) {
  Counter c;
  EXPECT_DOUBLE_EQ(c.value(), 0.0);
  c.Inc();
  c.Inc(2.5);
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
  c.Set(10.0);
  EXPECT_DOUBLE_EQ(c.value(), 10.0);
}

TEST(Metrics, GaugeKeepsLastValue) {
  Gauge g;
  g.Set(7.0);
  g.Set(3.0);
  g.Add(1.0);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
}

TEST(Metrics, HistogramExactMoments) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_DOUBLE_EQ(h.Percentile(50.0), 0.0);
  for (const double v : {4.0, 1.0, 16.0, 2.0}) h.Add(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 23.0);
  EXPECT_DOUBLE_EQ(h.mean(), 5.75);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 16.0);
}

TEST(Metrics, HistogramPercentileWithinBucketError) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Add(static_cast<double>(i));
  // Log-bucketed with kSubBuckets per octave: quantile estimates carry at
  // most one bucket width (~9% relative) of error, clamped to [min, max].
  EXPECT_NEAR(h.Percentile(50.0), 500.0, 500.0 * 0.15);
  EXPECT_NEAR(h.Percentile(90.0), 900.0, 900.0 * 0.15);
  EXPECT_GE(h.Percentile(0.0), h.min());
  EXPECT_DOUBLE_EQ(h.Percentile(100.0), h.max());
}

TEST(Metrics, HistogramNonpositiveSamplesCounted) {
  Histogram h;
  h.Add(0.0);
  h.Add(-3.0);
  h.Add(8.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.min(), -3.0);
  EXPECT_DOUBLE_EQ(h.max(), 8.0);
  EXPECT_DOUBLE_EQ(h.sum(), 5.0);
}

// --------------------------------------------------------------- registry --

TEST(Metrics, RegistryFindOrCreateReturnsStableRefs) {
  MetricsRegistry reg;
  Counter& c1 = reg.counter("a.b");
  c1.Inc();
  Counter& c2 = reg.counter("a.b");
  EXPECT_EQ(&c1, &c2);
  EXPECT_DOUBLE_EQ(c2.value(), 1.0);
}

TEST(Metrics, ValueCounterShadowsGauge) {
  MetricsRegistry reg;
  reg.gauge("x").Set(5.0);
  EXPECT_DOUBLE_EQ(reg.Value("x"), 5.0);
  reg.counter("x").Inc(2.0);
  EXPECT_DOUBLE_EQ(reg.Value("x"), 2.0);  // counter wins
  EXPECT_DOUBLE_EQ(reg.Value("absent"), 0.0);
}

TEST(Metrics, SnapshotIsDeterministic) {
  const auto build = [] {
    MetricsRegistry reg;
    reg.counter("z.count").Inc(3.0);
    reg.counter("a.count").Inc();
    reg.gauge("mid.gauge").Set(1.25);
    for (int i = 1; i <= 100; ++i)
      reg.histogram("h").Add(static_cast<double>(i));
    return reg.SnapshotJson();
  };
  const std::string a = build();
  EXPECT_EQ(a, build());  // byte-identical
  // Sections present, sorted names, schema tag.
  EXPECT_NE(a.find("\"schema\":\"p2pmetrics/v1\""), std::string::npos);
  EXPECT_LT(a.find("a.count"), a.find("z.count"));
}

TEST(Metrics, SnapshotExcludesProfileByDefault) {
  MetricsRegistry reg;
  reg.counter("deterministic").Inc();
  reg.profile("wallclock_ms").Add(12.0);
  const std::string without = reg.SnapshotJson(false);
  const std::string with = reg.SnapshotJson(true);
  EXPECT_EQ(without.find("wallclock_ms"), std::string::npos);
  EXPECT_NE(with.find("wallclock_ms"), std::string::npos);
}

TEST(Metrics, ResetClearsEverything) {
  MetricsRegistry reg;
  reg.counter("c").Inc();
  reg.gauge("g").Set(2.0);
  reg.histogram("h").Add(1.0);
  reg.Reset();
  EXPECT_DOUBLE_EQ(reg.counter("c").value(), 0.0);
  EXPECT_DOUBLE_EQ(reg.gauge("g").value(), 0.0);
  EXPECT_TRUE(reg.histogram("h").empty());
}

// ------------------------------------------------------------- scope timer --

TEST(ScopeTimer, RecordsIntoProfileHistogram) {
  MetricsRegistry reg;
  Histogram& h = reg.profile("scope_ms");
  { ScopeTimer t(&h); }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.min(), 0.0);
}

TEST(ScopeTimer, NullTargetIsDisabled) {
  ScopeTimer t(nullptr);  // must not crash
}

// ------------------------------------------------------------ json writer --

TEST(Json, FormatNumberStableRendering) {
  EXPECT_EQ(JsonWriter::FormatNumber(5.0), "5");
  EXPECT_EQ(JsonWriter::FormatNumber(-3.0), "-3");
  EXPECT_EQ(JsonWriter::FormatNumber(0.5), "0.5");
  EXPECT_EQ(JsonWriter::FormatNumber(std::numeric_limits<double>::infinity()),
            "null");
  EXPECT_EQ(JsonWriter::FormatNumber(std::nan("")), "null");
}

TEST(Json, WriterEmitsWellFormedObject) {
  JsonWriter w;
  w.BeginObject();
  w.Key("name").String("a\"b");
  w.Key("n").Number(2.0);
  w.Key("list").BeginArray().Int(-1).Bool(true).Null().EndArray();
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"name\":\"a\\\"b\",\"n\":2,\"list\":[-1,true,null]}");
}

// -------------------------------------------------------------- timeseries --

TEST(Timeseries, SamplesProbesPerRow) {
  TimeseriesSampler s;
  double v = 1.0;
  s.AddProbe("v", [&] { return v; });
  s.AddProbe("twice", [&] { return 2.0 * v; });
  s.Sample(10.0);
  v = 3.0;
  s.Sample(20.0);
  const auto rows = s.Snapshot();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_DOUBLE_EQ(rows[0].time_ms, 10.0);
  EXPECT_DOUBLE_EQ(rows[0].values[0], 1.0);
  EXPECT_DOUBLE_EQ(rows[1].values[1], 6.0);
}

TEST(Timeseries, BoundedRingKeepsNewestRows) {
  TimeseriesSampler s(2);
  s.AddProbe("t", [] { return 0.0; });
  s.Sample(1.0);
  s.Sample(2.0);
  s.Sample(3.0);
  EXPECT_EQ(s.rows(), 2u);
  EXPECT_EQ(s.total_rows(), 3u);
  const auto rows = s.Snapshot();
  EXPECT_DOUBLE_EQ(rows.front().time_ms, 2.0);
  EXPECT_DOUBLE_EQ(rows.back().time_ms, 3.0);
}

TEST(Timeseries, DecimationSpansTheWholeRunAtPowerOfTwoStride) {
  TimeseriesSampler s(8, FillPolicy::kDecimate);
  s.AddProbe("t", [] { return 0.0; });
  for (int i = 0; i < 100; ++i) s.Sample(static_cast<double>(i));
  EXPECT_EQ(s.total_rows(), 100u);
  EXPECT_LE(s.rows(), 8u);
  // Stride grows by halving: a power of two.
  EXPECT_EQ(s.stride() & (s.stride() - 1), 0u);
  const auto rows = s.Snapshot();
  ASSERT_FALSE(rows.empty());
  // Kept rows are exactly the samples at multiples of the final stride —
  // uniformly spaced, anchored at the first sample, reaching the tail.
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_DOUBLE_EQ(rows[i].time_ms,
                     static_cast<double>(i * s.stride()));
  }
  EXPECT_DOUBLE_EQ(rows.front().time_ms, 0.0);
  EXPECT_GT(rows.back().time_ms, 100.0 - 2.0 * s.stride());
}

TEST(Timeseries, DecimationNeverHalvesUnderCapacity) {
  TimeseriesSampler s(16, FillPolicy::kDecimate);
  s.AddProbe("t", [] { return 0.0; });
  for (int i = 0; i < 16; ++i) s.Sample(static_cast<double>(i));
  // Exactly full: still full resolution (halving happens on the next
  // sample, not when the buffer merely fills).
  EXPECT_EQ(s.rows(), 16u);
  EXPECT_EQ(s.stride(), 1u);
  s.Sample(16.0);
  EXPECT_EQ(s.stride(), 2u);
  // Halving dropped the 8 odd-index rows; sample 16 (a stride multiple)
  // was then kept.
  EXPECT_EQ(s.rows(), 9u);
  EXPECT_DOUBLE_EQ(s.Snapshot().back().time_ms, 16.0);
}

TEST(Timeseries, DecimationRejectsCapacityOne) {
  EXPECT_THROW(TimeseriesSampler(1, FillPolicy::kDecimate),
               util::CheckError);
}

TEST(Timeseries, CsvHeaderAndDeterministicNumbers) {
  TimeseriesSampler s;
  s.AddProbe("load", [] { return 0.5; });
  s.Sample(100.0);
  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  ASSERT_TRUE(s.WriteCsv(tmp));
  EXPECT_EQ(ReadAll(tmp), "time_ms,load\n100,0.5\n");
  std::fclose(tmp);
}

// -------------------------------------------------------------- run report --

TEST(RunReport, EmitsSchemaAndSections) {
  RunReport report("demo");
  report.set_seed(9);
  report.AddConfig("nodes", static_cast<std::int64_t>(64));
  report.AddConfig("loss", 0.25);
  report.AddConfig("mode", "fast");
  report.AddResult("height_ms", 120.5);
  report.AddResult("bad", std::numeric_limits<double>::quiet_NaN());
  report.AddTimeseries("main", "out.csv", 10, 12);
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"schema\":\"p2preport/v1\""), std::string::npos);
  EXPECT_NE(json.find("\"experiment\":\"demo\""), std::string::npos);
  EXPECT_NE(json.find("\"seed\":9"), std::string::npos);
  EXPECT_NE(json.find("\"nodes\":\"64\""), std::string::npos);
  EXPECT_NE(json.find("\"height_ms\":120.5"), std::string::npos);
  EXPECT_NE(json.find("\"bad\":null"), std::string::npos);  // NaN -> null
  EXPECT_NE(json.find("\"metrics\":null"), std::string::npos);
  EXPECT_NE(json.find("\"total_rows\":12"), std::string::npos);
}

TEST(RunReport, SplicesAttachedRegistrySnapshot) {
  MetricsRegistry reg;
  reg.counter("demo.count").Inc(4.0);
  RunReport report("demo");
  report.AttachMetrics(&reg, /*include_profile=*/false);
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"schema\":\"p2pmetrics/v1\""), std::string::npos);
  EXPECT_NE(json.find("\"demo.count\":4"), std::string::npos);
}

}  // namespace
}  // namespace p2p::obs
