#include <gtest/gtest.h>

#include "bwest/estimator.h"
#include "bwest/packet_pair.h"
#include "test_support.h"
#include "util/stats.h"

namespace p2p::bwest {
namespace {

net::BandwidthModel MakeModel(std::size_t hosts, std::uint64_t seed = 1,
                              double jitter = 0.15) {
  util::Rng rng(seed);
  return net::BandwidthModel(net::GnutellaAccessClasses(), hosts, rng,
                             jitter);
}

// ------------------------------------------------------------ PacketPair --

TEST(PacketPair, NoiselessProbeRecoversBottleneckExactly) {
  auto model = MakeModel(20);
  util::Rng rng(2);
  PacketPairProbe probe(model, PacketPairOptions{}, rng);
  for (std::size_t a = 0; a < 20; ++a)
    for (std::size_t b = 0; b < 20; ++b) {
      if (a == b) continue;
      EXPECT_NEAR(probe.MeasureKbps(a, b), model.PathBottleneckKbps(a, b),
                  1e-6);
    }
}

TEST(PacketPair, DispersionMatchesBandwidthFormula) {
  auto model = MakeModel(5);
  util::Rng rng(3);
  PacketPairOptions opt;
  opt.packet_bytes = 1500.0;
  PacketPairProbe probe(model, opt, rng);
  // 1500 bytes = 12000 bits; at B kbps the dispersion is 12000/B ms.
  const double b01 = model.PathBottleneckKbps(0, 1);
  EXPECT_NEAR(probe.IdealDispersionMs(0, 1), 12000.0 / b01, 1e-9);
}

TEST(PacketPair, NoisyProbeStaysWithinNoiseBand) {
  auto model = MakeModel(10);
  util::Rng rng(4);
  PacketPairOptions opt;
  opt.dispersion_noise = 0.2;
  PacketPairProbe probe(model, opt, rng);
  for (int i = 0; i < 500; ++i) {
    const double truth = model.PathBottleneckKbps(1, 2);
    const double m = probe.MeasureKbps(1, 2);
    EXPECT_GE(m, truth / 1.2 - 1e-6);
    EXPECT_LE(m, truth / 0.8 + 1e-6);
  }
}

TEST(PacketPair, ProbeCounterIncrements) {
  auto model = MakeModel(5);
  util::Rng rng(5);
  PacketPairProbe probe(model, PacketPairOptions{}, rng);
  probe.MeasureKbps(0, 1);
  probe.MeasureKbps(1, 0);
  EXPECT_EQ(probe.probes_sent(), 2u);
}

TEST(PacketPair, InvalidOptionsRejected) {
  auto model = MakeModel(5);
  util::Rng rng(6);
  PacketPairOptions bad;
  bad.packet_bytes = 0.0;
  EXPECT_THROW(PacketPairProbe(model, bad, rng), util::CheckError);
  bad.packet_bytes = 1500.0;
  bad.dispersion_noise = 1.0;
  EXPECT_THROW(PacketPairProbe(model, bad, rng), util::CheckError);
}

// ------------------------------------------------------------- Estimator --

struct EstimatorFixture {
  net::TransitStubTopology topo;
  net::LatencyOracle oracle;
  net::BandwidthModel model;
  dht::Ring ring;

  explicit EstimatorFixture(std::size_t hosts, std::size_t leafset,
                            std::uint64_t seed = 9)
      : topo([&] {
          util::Rng rng(seed);
          return net::GenerateTransitStub(
              p2p::testing::SmallTopologyParams(hosts), rng);
        }()),
        oracle(topo),
        model(MakeModel(hosts, seed + 1)),
        ring(leafset, &oracle) {
    for (std::size_t h = 0; h < hosts; ++h) ring.JoinHashed(h);
    ring.StabilizeAll();
  }
};

TEST(Estimator, EstimatesNeverExceedTrueUplink) {
  EstimatorFixture f(100, 16);
  util::Rng rng(7);
  BandwidthEstimator est(f.ring, f.model, PacketPairOptions{}, rng);
  est.EstimateAll();
  for (std::size_t n = 0; n < 100; ++n) {
    // max over min(up(n), down(m)) ≤ up(n): the estimator can only
    // underestimate (with noiseless probes).
    EXPECT_LE(est.estimate(n).up_kbps, est.TrueUpKbps(n) + 1e-6);
    EXPECT_LE(est.estimate(n).down_kbps, est.TrueDownKbps(n) + 1e-6);
  }
}

TEST(Estimator, LargerLeafsetGivesBetterUplinkEstimate) {
  // Paper Figure 5: average relative error decreases with leafset size.
  auto mean_err = [](std::size_t leafset) {
    EstimatorFixture f(120, leafset);
    util::Rng rng(8);
    BandwidthEstimator est(f.ring, f.model, PacketPairOptions{}, rng);
    est.EstimateAll();
    util::Accumulator acc;
    for (std::size_t n = 0; n < 120; ++n)
      acc.Add(est.UpRelativeError(n));
    return acc.mean();
  };
  const double e4 = mean_err(4);
  const double e32 = mean_err(32);
  EXPECT_LE(e32, e4 + 1e-9);
  EXPECT_LT(e32, 0.05);  // near-exact at leafset 32, as the paper reports
}

TEST(Estimator, UplinkMoreAccurateThanDownlink) {
  // §4.2: most hosts' downlink exceeds most others' uplink, so uplink
  // estimation saturates at the true value while downlink can fall short.
  EstimatorFixture f(150, 32);
  util::Rng rng(9);
  BandwidthEstimator est(f.ring, f.model, PacketPairOptions{}, rng);
  est.EstimateAll();
  util::Accumulator up, down;
  for (std::size_t n = 0; n < 150; ++n) {
    up.Add(est.UpRelativeError(n));
    down.Add(est.DownRelativeError(n));
  }
  EXPECT_LE(up.mean(), down.mean() + 1e-9);
}

TEST(Estimator, RankingAccuracyHighAtLeafset32) {
  EstimatorFixture f(100, 32);
  util::Rng rng(10);
  BandwidthEstimator est(f.ring, f.model, PacketPairOptions{}, rng);
  est.EstimateAll();
  EXPECT_GT(est.UpRankingAccuracy(), 0.95);
}

TEST(Estimator, ErrorWithoutSamplesThrows) {
  EstimatorFixture f(20, 4);
  util::Rng rng(11);
  BandwidthEstimator est(f.ring, f.model, PacketPairOptions{}, rng);
  EXPECT_THROW(est.UpRelativeError(0), util::CheckError);
}

TEST(Estimator, EventDrivenMatchesSynchronousShape) {
  EstimatorFixture f(64, 16);
  sim::Simulation sim(12);
  dht::HeartbeatProtocol hb(sim, f.ring);
  util::Rng rng(13);
  BandwidthEstimator est(f.ring, f.model, PacketPairOptions{}, rng);
  est.AttachTo(hb);
  hb.Start();
  sim.RunUntil(10000.0);
  util::Accumulator up;
  for (std::size_t n = 0; n < 64; ++n) {
    ASSERT_GT(est.estimate(n).up_samples, 0u);
    up.Add(est.UpRelativeError(n));
  }
  EXPECT_LT(up.mean(), 0.15);
}

}  // namespace
}  // namespace p2p::bwest
