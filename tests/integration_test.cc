// End-to-end tests across the whole stack: the p2p::Pool facade, the
// paper-sized pool, and the live SOMO + measurement protocols running
// together over the simulated network (the LiquidEye scenario).
#include <gtest/gtest.h>

#include <memory>

#include "alm/bounds.h"
#include "alm/critical.h"
#include "core/pool_api.h"
#include "dht/heartbeat.h"
#include "somo/somo.h"
#include "test_support.h"
#include "util/rng.h"

namespace p2p {
namespace {

PoolOptions SmallOptions(std::uint64_t seed = 5) {
  PoolOptions opts;
  opts.config = testing::SmallPoolConfig(120, seed);
  return opts;
}

TEST(PoolApi, QuickstartFlow) {
  Pool pool(SmallOptions());
  EXPECT_EQ(pool.size(), 120u);
  std::vector<std::size_t> members;
  for (std::size_t i = 1; i <= 9; ++i) members.push_back(i * 11);
  const auto id = pool.CreateSession(7, members, /*priority=*/1);
  EXPECT_TRUE(pool.session(id).scheduled());
  EXPECT_GE(pool.SessionImprovement(id), -0.05);
  pool.EndSession(id);
  EXPECT_EQ(pool.resources().registry().TotalUsed(), 0u);
}

TEST(PoolApi, ConcurrentSessionsAndSweep) {
  Pool pool(SmallOptions(8));
  std::vector<alm::SessionId> ids;
  for (std::size_t s = 0; s < 5; ++s) {
    std::vector<std::size_t> members;
    for (std::size_t k = 1; k < 10; ++k) members.push_back(s * 10 + k);
    ids.push_back(pool.CreateSession(s * 10, members,
                                     1 + static_cast<int>(s % 3)));
  }
  for (const auto id : ids) EXPECT_TRUE(pool.session(id).scheduled());
  pool.EndSession(ids[0]);
  pool.EndSession(ids[1]);
  pool.RunMarketSweep();
  for (std::size_t i = 2; i < ids.size(); ++i)
    EXPECT_TRUE(pool.session(ids[i]).scheduled());
  for (std::size_t i = 2; i < ids.size(); ++i) pool.EndSession(ids[i]);
  EXPECT_EQ(pool.resources().registry().TotalUsed(), 0u);
}

TEST(PaperPool, Figure8ShapeHoldsOnPaperTopology) {
  // Full 1200-host paper configuration, one session of 20: the ordering
  // AMCast ≥ Leafset ≥ ... and bound sanity from Figure 8.
  pool::PoolConfig cfg;  // paper defaults
  cfg.seed = 99;
  pool::ResourcePool rp(cfg);
  util::Rng rng(3);
  const auto idx = rng.SampleIndices(rp.size(), 20);
  alm::PlanInput in;
  in.degree_bounds = rp.degree_bounds();
  in.root = idx[0];
  in.members.assign(idx.begin() + 1, idx.end());
  for (std::size_t v = 0; v < rp.size(); ++v) {
    if (std::find(idx.begin(), idx.end(), v) == idx.end() &&
        rp.degree_bound(v) >= 4)
      in.helper_candidates.push_back(v);
  }
  in.true_latency = rp.TrueLatencyFn();
  in.estimated_latency = rp.EstimatedLatencyFn();

  const double base = PlanSession(in, alm::Strategy::kAmcast).height_true;
  const double crit_adj =
      PlanSession(in, alm::Strategy::kCriticalAdjust).height_true;
  const double leaf_adj =
      PlanSession(in, alm::Strategy::kLeafsetAdjust).height_true;
  const double ideal =
      alm::IdealHeight(in.root, in.members, in.true_latency);

  EXPECT_LT(crit_adj, base);               // helpers + adjust always win
  EXPECT_LT(leaf_adj, base);               // even with estimated latency
  EXPECT_GE(crit_adj, ideal - 1e-9);       // nothing beats the star bound
  // Critical+adj should land near the bound (paper: ~40 % vs 41 % bound).
  EXPECT_GT(alm::Improvement(base, crit_adj), 0.15);
}

TEST(LiquidEye, SomoViewSurvivesNodeFailure) {
  // The §3.2 LiquidEye experiment: heartbeats + SOMO over the simulated
  // network; unplug a machine; the global view regenerates after a short
  // jitter.
  auto& rp = testing::SharedSmallPool();
  // Work on a private ring so the shared pool stays pristine.
  sim::Simulation sim(42);
  dht::Ring ring(16, &rp.oracle());
  for (std::size_t h = 0; h < 100; ++h) ring.JoinHashed(h);
  ring.StabilizeAll();

  dht::HeartbeatConfig hcfg;
  hcfg.period_ms = 1000.0;
  hcfg.timeout_ms = 3500.0;
  dht::HeartbeatProtocol hb(sim, ring, hcfg);

  somo::SomoConfig scfg;
  scfg.fanout = 8;
  scfg.report_interval_ms = 5000.0;  // the paper's 5 s cycle
  somo::SomoProtocol somo(sim, ring, scfg, [&](dht::NodeIndex n) {
    somo::NodeReport r;
    r.node = n;
    r.host = ring.node(n).host();
    r.generated_at = sim.now();
    return r;
  });
  // Failure detection triggers SOMO self-repair, as in the real system.
  hb.AddFailureObserver(
      [&](dht::NodeIndex, dht::NodeIndex, sim::Time) { somo.Rebuild(); });

  hb.Start();
  somo.Start();
  sim.RunUntil(60000.0);
  ASSERT_TRUE(somo.RootViewComplete());

  const dht::NodeIndex victim = 55;
  ring.Fail(victim);
  sim.RunUntil(sim.now() + 60000.0);
  EXPECT_GE(hb.failures_detected(), 1u);
  EXPECT_TRUE(somo.RootViewComplete());
  EXPECT_EQ(somo.RootReport().size(), 99u);
}

TEST(Determinism, SamePoolSeedSameResults) {
  pool::PoolConfig cfg = testing::SmallPoolConfig(80, 123);
  pool::ResourcePool a(cfg);
  pool::ResourcePool b(cfg);
  EXPECT_EQ(a.degree_bounds(), b.degree_bounds());
  for (std::size_t i = 0; i < 80; i += 7)
    for (std::size_t j = 0; j < 80; j += 11) {
      if (i == j) continue;
      EXPECT_DOUBLE_EQ(a.TrueLatency(i, j), b.TrueLatency(i, j));
      EXPECT_DOUBLE_EQ(a.EstimatedLatency(i, j), b.EstimatedLatency(i, j));
    }
}

TEST(Determinism, MultiSessionExperimentIsReproducible) {
  auto& rp = testing::SharedSmallPool();
  pool::MultiSessionParams params;
  params.session_count = 5;
  params.members_per_session = 10;
  params.seed = 13;
  params.compute_upper_bound = false;
  const auto r1 = RunMultiSessionExperiment(rp, params);
  const auto r2 = RunMultiSessionExperiment(rp, params);
  for (int p = 1; p <= 3; ++p) {
    const auto& a = r1.by_priority[static_cast<std::size_t>(p)];
    const auto& b = r2.by_priority[static_cast<std::size_t>(p)];
    EXPECT_EQ(a.sessions, b.sessions);
    EXPECT_DOUBLE_EQ(a.improvement.mean(), b.improvement.mean());
  }
}

}  // namespace
}  // namespace p2p
