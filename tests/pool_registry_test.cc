#include <gtest/gtest.h>

#include "pool/degree_table.h"
#include "util/check.h"

namespace p2p::pool {
namespace {

TEST(DegreeRegistry, FreeSlotsClaimedFirst) {
  DegreeRegistry reg({3});
  const auto r = reg.Claim(0, /*session=*/1, /*priority=*/2, false);
  EXPECT_TRUE(r.ok);
  EXPECT_FALSE(r.preemption);
  EXPECT_EQ(reg.table(0).used(), 1);
  EXPECT_EQ(reg.HeldBy(0, 1), 1);
}

TEST(DegreeRegistry, ClaimFailsWhenFullOfEqualOrHigherPriority) {
  DegreeRegistry reg({2});
  EXPECT_TRUE(reg.Claim(0, 1, 1, false).ok);
  EXPECT_TRUE(reg.Claim(0, 2, 2, false).ok);
  // Priority 2 helper cannot displace priority 1 or another priority 2.
  const auto r = reg.Claim(0, 3, 2, false);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(reg.table(0).used(), 2);
}

TEST(DegreeRegistry, LowerPriorityPreempted) {
  DegreeRegistry reg({1});
  EXPECT_TRUE(reg.Claim(0, 1, 3, false).ok);
  const auto r = reg.Claim(0, 2, 1, false);
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.preemption);
  EXPECT_EQ(r.preempted, 1);
  EXPECT_EQ(reg.HeldBy(0, 1), 0);
  EXPECT_EQ(reg.HeldBy(0, 2), 1);
}

TEST(DegreeRegistry, WeakestSlotPreemptedFirst) {
  DegreeRegistry reg({2});
  reg.Claim(0, 1, 2, false);
  reg.Claim(0, 2, 3, false);  // weaker
  const auto r = reg.Claim(0, 3, 1, false);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.preempted, 2);  // the priority-3 slot went first
}

TEST(DegreeRegistry, MemberClaimBeatsEqualPriorityHelper) {
  // The guarantee behind the paper's lower bound: a session's own member
  // claim (priority 1, member) displaces another session's priority-1
  // helper claim.
  DegreeRegistry reg({1});
  EXPECT_TRUE(reg.Claim(0, 1, 1, /*is_member=*/false).ok);
  const auto r = reg.Claim(0, 2, 1, /*is_member=*/true);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.preempted, 1);
}

TEST(DegreeRegistry, MemberClaimDoesNotBeatMemberClaim) {
  DegreeRegistry reg({1});
  EXPECT_TRUE(reg.Claim(0, 1, 1, true).ok);
  EXPECT_FALSE(reg.Claim(0, 2, 1, true).ok);
}

TEST(DegreeRegistry, HelperNeverPreemptsEqualPriorityMember) {
  DegreeRegistry reg({1});
  EXPECT_TRUE(reg.Claim(0, 1, 2, true).ok);
  EXPECT_FALSE(reg.Claim(0, 2, 2, false).ok);
  // But a strictly higher priority helper does.
  EXPECT_TRUE(reg.Claim(0, 3, 1, false).ok);
}

TEST(DegreeRegistry, AvailableForMatchesClaimability) {
  DegreeRegistry reg({4});
  reg.Claim(0, 1, 1, false);
  reg.Claim(0, 2, 2, false);
  reg.Claim(0, 3, 3, false);
  // 1 free + preemptible by priority.
  EXPECT_EQ(reg.AvailableFor(0, 1, false), 3);  // free + p2 + p3
  EXPECT_EQ(reg.AvailableFor(0, 2, false), 2);  // free + p3
  EXPECT_EQ(reg.AvailableFor(0, 3, false), 1);  // free only
  EXPECT_EQ(reg.AvailableFor(0, 1, true), 4);   // member: everything
}

TEST(DegreeRegistry, ReleaseByNode) {
  DegreeRegistry reg({4});
  reg.Claim(0, 7, 1, false);
  reg.Claim(0, 7, 1, false);
  reg.Claim(0, 8, 2, false);
  EXPECT_EQ(reg.Release(0, 7), 2);
  EXPECT_EQ(reg.table(0).used(), 1);
  EXPECT_EQ(reg.Release(0, 7), 0);
}

TEST(DegreeRegistry, ReleaseSessionAcrossNodes) {
  DegreeRegistry reg({2, 2, 2});
  reg.Claim(0, 5, 1, false);
  reg.Claim(2, 5, 1, false);
  reg.Claim(1, 6, 1, false);
  const auto affected = reg.ReleaseSession(5);
  EXPECT_EQ(affected, (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(reg.TotalUsed(), 1u);
}

TEST(DegreeRegistry, TotalsAndInvariants) {
  DegreeRegistry reg({2, 3});
  EXPECT_EQ(reg.TotalCapacity(), 5u);
  reg.Claim(0, 1, 1, false);
  reg.Claim(1, 1, 2, true);
  EXPECT_EQ(reg.TotalUsed(), 2u);
  reg.CheckInvariants();
}

TEST(DegreeRegistry, ZeroBoundNodeUnclaimable) {
  DegreeRegistry reg({0});
  EXPECT_FALSE(reg.Claim(0, 1, 1, true).ok);
  EXPECT_EQ(reg.AvailableFor(0, 1, true), 0);
}

TEST(DegreeRegistry, TableViewMirrorsSlots) {
  DegreeRegistry reg({3});
  reg.Claim(0, 4, 2, false);
  reg.Claim(0, 9, 3, false);
  const auto& t = reg.table(0);
  EXPECT_EQ(t.total, 3);
  ASSERT_EQ(t.taken.size(), 2u);
  EXPECT_EQ(t.HeldBy(4), 1);
  EXPECT_EQ(t.UsedAt(3), 1);
  EXPECT_EQ(t.AvailableFor(1), 3);
}

}  // namespace
}  // namespace p2p::pool
