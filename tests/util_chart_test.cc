#include <gtest/gtest.h>

#include "util/ascii_chart.h"
#include "util/check.h"

namespace p2p::util {
namespace {

TEST(AsciiChart, RendersMarkersAndLegend) {
  ChartSeries s;
  s.name = "line";
  for (int i = 0; i <= 10; ++i)
    s.points.emplace_back(i, i);
  const std::string out = RenderAsciiChart({s});
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find("*=line"), std::string::npos);
  EXPECT_NE(out.find('+'), std::string::npos);  // axis corner
}

TEST(AsciiChart, MultipleSeriesGetDistinctMarkers) {
  ChartSeries a{"a", {{0, 0}, {1, 1}}};
  ChartSeries b{"b", {{0, 1}, {1, 0}}};
  const std::string out = RenderAsciiChart({a, b});
  EXPECT_NE(out.find("*=a"), std::string::npos);
  EXPECT_NE(out.find("o=b"), std::string::npos);
}

TEST(AsciiChart, FixedYRangeClampsPoints) {
  ChartSeries s{"s", {{0, -5}, {1, 5}}};
  ChartOptions opt;
  opt.y_min = 0.0;
  opt.y_max = 1.0;
  // Should not throw; out-of-range points clamp to the border rows.
  const std::string out = RenderAsciiChart({s}, opt);
  EXPECT_FALSE(out.empty());
}

TEST(AsciiChart, EmptySeriesListRejected) {
  EXPECT_THROW(RenderAsciiChart({}), CheckError);
}

TEST(AsciiChart, NoPointsRejected) {
  ChartSeries s{"empty", {}};
  EXPECT_THROW(RenderAsciiChart({s}), CheckError);
}

TEST(AsciiChart, TinyDimensionsRejected) {
  ChartSeries s{"s", {{0, 0}}};
  ChartOptions opt;
  opt.width = 2;
  EXPECT_THROW(RenderAsciiChart({s}, opt), CheckError);
}

TEST(AsciiChart, SinglePointDoesNotDivideByZero) {
  ChartSeries s{"dot", {{3.0, 7.0}}};
  const std::string out = RenderAsciiChart({s});
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(AsciiChart, LineCountMatchesGeometry) {
  ChartSeries s{"s", {{0, 0}, {1, 1}}};
  ChartOptions opt;
  opt.height = 10;
  const std::string out = RenderAsciiChart({s}, opt);
  // height rows + axis + x labels + legend = height + 3 newline-terminated
  // lines.
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(out.begin(), out.end(), '\n')),
            opt.height + 3);
}

}  // namespace
}  // namespace p2p::util
