#include <gtest/gtest.h>

#include <set>

#include "dht/ring.h"
#include "util/check.h"
#include "util/rng.h"

namespace p2p::dht {
namespace {

Ring MakeRing(std::size_t n, std::size_t leafset = 8) {
  Ring ring(leafset);
  for (std::size_t i = 0; i < n; ++i) ring.JoinHashed(i);
  return ring;
}

TEST(Ring, LeafsetSizeMustBeEven) {
  EXPECT_THROW(Ring(3), util::CheckError);
  EXPECT_THROW(Ring(0), util::CheckError);
}

TEST(Ring, JoinAssignsSequentialIndices) {
  Ring ring(4);
  EXPECT_EQ(ring.JoinHashed(10), 0u);
  EXPECT_EQ(ring.JoinHashed(11), 1u);
  EXPECT_EQ(ring.alive_count(), 2u);
}

TEST(Ring, DuplicateIdRejected) {
  Ring ring(4);
  ring.Join(0, 12345);
  EXPECT_THROW(ring.Join(1, 12345), util::CheckError);
}

TEST(Ring, InvariantsHoldAfterJoins) {
  auto ring = MakeRing(50);
  ring.CheckInvariants();
}

TEST(Ring, SortedAliveIsSortedAndComplete) {
  auto ring = MakeRing(30);
  const auto sorted = ring.SortedAlive();
  EXPECT_EQ(sorted.size(), 30u);
  for (std::size_t i = 1; i < sorted.size(); ++i)
    EXPECT_LT(ring.node(sorted[i - 1]).id(), ring.node(sorted[i]).id());
}

TEST(Ring, ResponsibleForOwnIdIsSelf) {
  auto ring = MakeRing(40);
  for (const NodeIndex n : ring.SortedAlive())
    EXPECT_EQ(ring.ResponsibleFor(ring.node(n).id()), n);
}

TEST(Ring, ResponsibleForMatchesZoneDefinition) {
  // zone(x) = (pred, x]: every key in that arc must resolve to x.
  auto ring = MakeRing(20);
  const auto sorted = ring.SortedAlive();
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const NodeId prev =
        ring.node(sorted[(i + sorted.size() - 1) % sorted.size()]).id();
    const NodeId own = ring.node(sorted[i]).id();
    const NodeId midpoint = prev + ClockwiseDistance(prev, own) / 2 + 1;
    EXPECT_EQ(ring.ResponsibleFor(midpoint), sorted[i]);
  }
}

TEST(Ring, RouteReachesResponsibleNode) {
  auto ring = MakeRing(100, 16);
  ring.StabilizeAll();
  util::Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const NodeId key = rng();
    const NodeIndex from = rng.NextBounded(ring.size());
    const RouteResult r = ring.Route(from, key);
    EXPECT_TRUE(r.success);
    EXPECT_EQ(r.destination, ring.ResponsibleFor(key));
  }
}

TEST(Ring, RouteHopCountIsLogarithmic) {
  auto ring = MakeRing(256, 16);
  ring.StabilizeAll();
  util::Rng rng(6);
  double total_hops = 0;
  const int kTrials = 300;
  for (int i = 0; i < kTrials; ++i) {
    const RouteResult r =
        ring.Route(rng.NextBounded(ring.size()), rng());
    EXPECT_TRUE(r.success);
    total_hops += static_cast<double>(r.hops);
  }
  // log2(256) = 8; greedy Chord-style routing averages ~log2(N)/2.
  EXPECT_LT(total_hops / kTrials, 8.0);
}

TEST(Ring, RouteFromOwnerIsZeroHops) {
  auto ring = MakeRing(10);
  const NodeId key = 777;
  const NodeIndex owner = ring.ResponsibleFor(key);
  const RouteResult r = ring.Route(owner, key);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.hops, 0u);
}

TEST(Ring, LeaveRemovesFromNeighbours) {
  auto ring = MakeRing(20);
  const auto sorted = ring.SortedAlive();
  const NodeIndex victim = sorted[5];
  const NodeId victim_id = ring.node(victim).id();
  ring.Leave(victim);
  EXPECT_EQ(ring.alive_count(), 19u);
  for (const NodeIndex n : ring.SortedAlive())
    EXPECT_FALSE(ring.node(n).leafset().Contains(victim_id));
  ring.CheckInvariants();
}

TEST(Ring, FailedNodeStaysInTablesUntilDetection) {
  auto ring = MakeRing(20);
  const auto sorted = ring.SortedAlive();
  const NodeIndex victim = sorted[3];
  const NodeId victim_id = ring.node(victim).id();
  // The victim's ring neighbours hold it in their leafsets.
  const NodeIndex succ = sorted[4];
  EXPECT_TRUE(ring.node(succ).leafset().Contains(victim_id));
  ring.Fail(victim);
  EXPECT_TRUE(ring.node(succ).leafset().Contains(victim_id));  // stale
  ring.DetectFailure(victim);
  EXPECT_FALSE(ring.node(succ).leafset().Contains(victim_id));
  ring.CheckInvariants();
}

TEST(Ring, RoutingSurvivesUndetectedFailures) {
  auto ring = MakeRing(100, 16);
  ring.StabilizeAll();
  util::Rng rng(7);
  // Crash 10 nodes without detection: stale entries remain.
  for (int i = 0; i < 10; ++i) {
    const auto alive = ring.SortedAlive();
    ring.Fail(alive[rng.NextBounded(alive.size())]);
  }
  for (int i = 0; i < 100; ++i) {
    const auto alive = ring.SortedAlive();
    const NodeIndex from = alive[rng.NextBounded(alive.size())];
    const RouteResult r = ring.Route(from, rng());
    EXPECT_TRUE(r.success);
  }
}

TEST(Ring, DoubleFailRejected) {
  auto ring = MakeRing(10);
  ring.Fail(0);
  EXPECT_THROW(ring.Fail(0), util::CheckError);
}

TEST(Ring, JoinAfterFailuresKeepsInvariants) {
  auto ring = MakeRing(30);
  ring.Fail(2);
  ring.DetectFailure(2);
  ring.Fail(7);
  ring.DetectFailure(7);
  for (std::size_t i = 0; i < 10; ++i) ring.JoinHashed(100 + i);
  ring.StabilizeAll();
  ring.CheckInvariants();
}

TEST(Ring, SwapNodeIdsExchangesIdsAndRepairs) {
  auto ring = MakeRing(25);
  const NodeId id_a = ring.node(3).id();
  const NodeId id_b = ring.node(9).id();
  ring.SwapNodeIds(3, 9);
  EXPECT_EQ(ring.node(3).id(), id_b);
  EXPECT_EQ(ring.node(9).id(), id_a);
  ring.CheckInvariants();
  // The responsible node for the old ids follows the swap.
  EXPECT_EQ(ring.ResponsibleFor(id_a), 9u);
  EXPECT_EQ(ring.ResponsibleFor(id_b), 3u);
}

TEST(Ring, SwapWithSelfIsNoop) {
  auto ring = MakeRing(10);
  const NodeId id = ring.node(4).id();
  ring.SwapNodeIds(4, 4);
  EXPECT_EQ(ring.node(4).id(), id);
}

TEST(Ring, RouteAccumulatesLatencyWithOracle) {
  // Build a tiny topology-backed ring to exercise the latency path.
  util::Rng rng(11);
  net::TransitStubParams params;
  params.transit_domains = 2;
  params.transit_routers_per_domain = 2;
  params.stub_domains_per_transit_router = 2;
  params.routers_per_stub_domain = 3;
  params.end_hosts = 64;
  const auto topo = net::GenerateTransitStub(params, rng);
  const net::LatencyOracle oracle(topo);
  Ring ring(8, &oracle);
  for (std::size_t h = 0; h < 64; ++h) ring.JoinHashed(h);
  ring.StabilizeAll();
  const RouteResult r = ring.Route(0, ring.node(40).id());
  EXPECT_TRUE(r.success);
  if (r.hops > 0) {
    EXPECT_GT(r.latency_ms, 0.0);
  }
}

TEST(Ring, SingleNodeOwnsEverything) {
  Ring ring(4);
  ring.JoinHashed(0);
  EXPECT_EQ(ring.ResponsibleFor(0), 0u);
  EXPECT_EQ(ring.ResponsibleFor(~0ull), 0u);
  const RouteResult r = ring.Route(0, 12345);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.hops, 0u);
}

TEST(Ring, TwoNodesSplitTheSpace) {
  Ring ring(4);
  const NodeIndex a = ring.JoinHashed(0);
  const NodeIndex b = ring.JoinHashed(1);
  const NodeId ida = ring.node(a).id();
  const NodeId idb = ring.node(b).id();
  EXPECT_EQ(ring.ResponsibleFor(ida), a);
  EXPECT_EQ(ring.ResponsibleFor(idb), b);
  // zone(b) = (id(a), id(b)]: the key right after a's id belongs to b.
  EXPECT_EQ(ring.ResponsibleFor(ida + 1), b);
  ring.CheckInvariants();
}

// Two rings are interchangeable for every consumer we have: same ids/hosts
// per index, same leafsets, same routing decisions.
void ExpectSameEndState(const Ring& a, const Ring& b) {
  ASSERT_EQ(a.size(), b.size());
  a.CheckInvariants();
  b.CheckInvariants();
  for (NodeIndex n = 0; n < a.size(); ++n) {
    EXPECT_EQ(a.node(n).id(), b.node(n).id()) << "node " << n;
    EXPECT_EQ(a.node(n).host(), b.node(n).host());
    const auto ma = a.node(n).leafset().Members();
    const auto mb = b.node(n).leafset().Members();
    ASSERT_EQ(ma.size(), mb.size()) << "node " << n;
    for (std::size_t i = 0; i < ma.size(); ++i) {
      EXPECT_EQ(ma[i].id, mb[i].id);
      EXPECT_EQ(ma[i].node, mb[i].node);
    }
  }
  for (NodeId key : {0ull, 1ull << 40, ~0ull, 0x1234567890abcdefull}) {
    for (NodeIndex from = 0; from < a.size(); from += 7) {
      const RouteResult ra = a.Route(from, key);
      const RouteResult rb = b.Route(from, key);
      EXPECT_EQ(ra.success, rb.success);
      EXPECT_EQ(ra.hops, rb.hops);
      EXPECT_EQ(ra.destination, rb.destination);
    }
  }
}

TEST(Ring, BatchJoinMatchesPerHostJoins) {
  // The setup-time fast path must be behaviour-invisible: JoinBatchHashed
  // lands the exact end state of the per-host JoinHashed loop (same
  // collision probe sequence) followed by one StabilizeAll.
  Ring per_host(8);
  for (std::size_t i = 0; i < 60; ++i) per_host.JoinHashed(i);
  per_host.StabilizeAll();

  Ring batch(8);
  EXPECT_EQ(batch.JoinBatchHashed(0, 60), 0u);
  EXPECT_EQ(batch.alive_count(), 60u);
  ExpectSameEndState(per_host, batch);
}

TEST(Ring, BatchJoinOnPopulatedRingMatches) {
  // Batch-joining into a ring that already has members (a second wave).
  Ring per_host(8);
  for (std::size_t i = 0; i < 10; ++i) per_host.JoinHashed(i);
  per_host.StabilizeAll();
  for (std::size_t i = 10; i < 40; ++i) per_host.JoinHashed(i);
  per_host.StabilizeAll();

  Ring batch(8);
  batch.JoinBatchHashed(0, 10);
  EXPECT_EQ(batch.JoinBatchHashed(10, 30), 10u);
  ExpectSameEndState(per_host, batch);
}

}  // namespace
}  // namespace p2p::dht
