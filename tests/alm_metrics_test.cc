#include <gtest/gtest.h>

#include <cmath>

#include "alm/critical.h"
#include "alm/metrics.h"
#include "test_support.h"
#include "util/rng.h"

namespace p2p::alm {
namespace {

double Line(ParticipantId a, ParticipantId b) {
  return a > b ? static_cast<double>(a - b) : static_cast<double>(b - a);
}

MulticastTree Chain4() {
  MulticastTree t(10);
  t.SetRoot(0);
  t.AddChild(0, 1);
  t.AddChild(1, 2);
  t.AddChild(2, 3);
  return t;
}

TEST(TreeMetrics, ChainValues) {
  const auto m = ComputeTreeMetrics(Chain4(), Line);
  EXPECT_DOUBLE_EQ(m.max_height_ms, 3.0);
  EXPECT_DOUBLE_EQ(m.mean_height_ms, 2.0);  // heights 1, 2, 3
  EXPECT_DOUBLE_EQ(m.total_edge_ms, 3.0);
  EXPECT_DOUBLE_EQ(m.max_link_ms, 1.0);
  EXPECT_EQ(m.max_fanout, 1u);
  EXPECT_EQ(m.depth_hops, 3u);
  EXPECT_NEAR(m.height_stddev_ms, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(m.bottleneck_kbps, 0.0);  // no bandwidth fn
}

TEST(TreeMetrics, StarValues) {
  MulticastTree t(5);
  t.SetRoot(0);
  for (ParticipantId v = 1; v < 5; ++v) t.AddChild(0, v);
  const auto m = ComputeTreeMetrics(t, Line);
  EXPECT_DOUBLE_EQ(m.max_height_ms, 4.0);
  EXPECT_EQ(m.max_fanout, 4u);
  EXPECT_EQ(m.depth_hops, 1u);
  EXPECT_DOUBLE_EQ(m.total_edge_ms, 1.0 + 2.0 + 3.0 + 4.0);
}

TEST(TreeMetrics, BottleneckIsMinOverLinks) {
  auto bw = [](ParticipantId a, ParticipantId b) -> double {
    return 100.0 * static_cast<double>(a + b + 1);
  };
  const auto m = ComputeTreeMetrics(Chain4(), Line, bw);
  // Links: (0,1)=200, (1,2)=400, (2,3)=600.
  EXPECT_DOUBLE_EQ(m.bottleneck_kbps, 200.0);
}

TEST(TreeMetrics, SingletonTree) {
  MulticastTree t(1);
  t.SetRoot(0);
  const auto m = ComputeTreeMetrics(t, Line);
  EXPECT_DOUBLE_EQ(m.max_height_ms, 0.0);
  EXPECT_EQ(m.depth_hops, 0u);
  EXPECT_DOUBLE_EQ(m.bottleneck_kbps, 0.0);
}

TEST(TreeMetrics, ConsistentWithTreeHeightOnRealPlans) {
  auto& pool = p2p::testing::SharedSmallPool();
  util::Rng rng(8);
  const auto idx = rng.SampleIndices(pool.size(), 15);
  PlanInput in;
  in.degree_bounds = pool.degree_bounds();
  in.root = idx[0];
  in.members.assign(idx.begin() + 1, idx.end());
  in.true_latency = pool.TrueLatencyFn();
  const auto r = PlanSession(in, Strategy::kAmcastAdjust);
  const auto m = ComputeTreeMetrics(r.tree, in.true_latency,
                                    [&](ParticipantId a, ParticipantId b) {
                                      return pool.bandwidths()
                                          .PathBottleneckKbps(a, b);
                                    });
  EXPECT_NEAR(m.max_height_ms, r.tree.Height(in.true_latency), 1e-9);
  EXPECT_GT(m.bottleneck_kbps, 0.0);
  EXPECT_LE(m.mean_height_ms, m.max_height_ms);
  EXPECT_LE(m.max_link_ms, m.total_edge_ms + 1e-9);
}

TEST(TreeToDot, ContainsNodesAndEdges) {
  const auto dot = TreeToDot(Chain4(), Line);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("n0 [label=\"0\", shape=doublecircle]"),
            std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("n2 -> n3"), std::string::npos);
}

TEST(TreeToDot, HelpersRenderedAsBoxes) {
  MulticastTree t(3);
  t.SetRoot(0);
  t.AddChild(0, 1);
  t.AddChild(1, 2);
  std::vector<char> helper(3, 0);
  helper[1] = 1;
  const auto dot = TreeToDot(t, Line, helper);
  EXPECT_NE(dot.find("n1 [label=\"1\", shape=box]"), std::string::npos);
}

}  // namespace
}  // namespace p2p::alm
