// Contract tests for the compressed aggregate-report codec (§3.2's
// "40-byte leaf report" budget): seeded randomized round-trips with exact
// integers / bounded-error floats and timestamps, the structural
// EncodedSize == EncodeAggregate().size() guarantee, the per-record byte
// budget on realistic aggregates, canonical re-encode stability, and clean
// rejection of truncated or corrupted input.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "obs/telemetry_codec.h"
#include "somo/report.h"
#include "util/rng.h"

namespace p2p::somo {
namespace {

// Timestamps survive one round of kAgeTickMs quantization (round to
// nearest tick), never more — the delta chains are exact in tick space.
constexpr double kTsTolMs = obs::kAgeTickMs / 2.0 + 1e-9;

void ExpectF16Close(double got, double want) {
  if (std::abs(want) < std::ldexp(1.0, -30)) {
    EXPECT_EQ(got, 0.0) << "subnormal " << want << " must flush to zero";
  } else {
    EXPECT_LE(std::abs(got - want), obs::kF16RelError * std::abs(want))
        << "want " << want << " got " << got;
  }
}

NodeReport RandomReport(util::Rng& rng, dht::NodeIndex node, double now_ms) {
  NodeReport r;
  r.node = node;
  r.host = static_cast<net::HostIdx>(rng.NextBounded(100000));
  r.generated_at = rng.Uniform(0.0, now_ms);
  const std::size_t dim = rng.NextBounded(5);
  for (std::size_t d = 0; d < dim; ++d)
    r.coordinates.push_back(rng.Uniform(-500.0, 500.0));
  r.up_kbps = rng.Uniform(0.0, 1e5);
  r.down_kbps = rng.Uniform(0.0, 1e5);
  r.capacity = rng.Uniform(0.0, 100.0);
  r.degrees.total = static_cast<int>(rng.NextBounded(33));
  const std::size_t used = rng.NextBounded(5);
  for (std::size_t s = 0; s < used; ++s) {
    DegreeSlot slot;
    slot.session = static_cast<SessionId>(rng.NextBounded(1000)) - 1;
    slot.priority = static_cast<int>(
        rng.UniformInt(kHighestPriority, kLowestPriority));
    r.degrees.taken.push_back(slot);
  }
  if (rng.Bernoulli(0.8)) {
    r.telemetry.msgs_sent = rng.NextBounded(1u << 20);
    r.telemetry.msgs_delivered = rng.NextBounded(1u << 20);
    r.telemetry.msgs_dropped = rng.NextBounded(1u << 10);
    r.telemetry.bytes_sent = rng.NextBounded(1u << 28);
    r.telemetry.suspects = rng.NextBounded(8);
    r.telemetry.sampled_at = rng.Uniform(0.0, r.generated_at);
  }
  return r;
}

TEST(ReportCodec, RandomizedRoundTripProperty) {
  util::Rng rng(2024);
  for (int trial = 0; trial < 50; ++trial) {
    AggregateReport agg;
    const std::size_t n = 1 + rng.NextBounded(40);
    const double now_ms = 1000.0 + rng.Uniform(0.0, 1e6);
    for (std::size_t i = 0; i < n; ++i) {
      // Non-monotonic node ids exercise negative zigzag deltas.
      agg.Add(RandomReport(
          rng, static_cast<dht::NodeIndex>(rng.NextBounded(1u << 20)),
          now_ms));
    }

    const std::vector<std::uint8_t> wire = EncodeAggregate(agg);
    EXPECT_EQ(wire.size(), EncodedSize(agg));
    EXPECT_EQ(agg.SerializedBytes(), wire.size());

    AggregateReport dec;
    ASSERT_TRUE(DecodeAggregate(wire.data(), wire.size(), &dec))
        << "trial " << trial;
    ASSERT_EQ(dec.size(), agg.size());
    for (std::size_t i = 0; i < agg.size(); ++i) {
      const NodeReport a = agg.Member(i);
      const NodeReport d = dec.Member(i);
      EXPECT_EQ(d.node, a.node);
      EXPECT_EQ(d.host, a.host);
      EXPECT_NEAR(d.generated_at, a.generated_at, kTsTolMs);
      ASSERT_EQ(d.coordinates.size(), a.coordinates.size());
      for (std::size_t c = 0; c < a.coordinates.size(); ++c)
        ExpectF16Close(d.coordinates[c], a.coordinates[c]);
      ExpectF16Close(d.up_kbps, a.up_kbps);
      ExpectF16Close(d.down_kbps, a.down_kbps);
      ExpectF16Close(d.capacity, a.capacity);
      EXPECT_EQ(d.degrees.total, a.degrees.total);
      ASSERT_EQ(d.degrees.taken.size(), a.degrees.taken.size());
      for (std::size_t s = 0; s < a.degrees.taken.size(); ++s) {
        EXPECT_EQ(d.degrees.taken[s].session, a.degrees.taken[s].session);
        EXPECT_EQ(d.degrees.taken[s].priority, a.degrees.taken[s].priority);
      }
      EXPECT_EQ(d.telemetry.valid(), a.telemetry.valid());
      if (a.telemetry.valid()) {
        EXPECT_EQ(d.telemetry.msgs_sent, a.telemetry.msgs_sent);
        EXPECT_EQ(d.telemetry.msgs_delivered, a.telemetry.msgs_delivered);
        EXPECT_EQ(d.telemetry.msgs_dropped, a.telemetry.msgs_dropped);
        EXPECT_EQ(d.telemetry.bytes_sent, a.telemetry.bytes_sent);
        EXPECT_EQ(d.telemetry.suspects, a.telemetry.suspects);
        EXPECT_NEAR(d.telemetry.sampled_at, a.telemetry.sampled_at, kTsTolMs);
      }
    }
    // Derived freshness window tracks the quantized members.
    EXPECT_NEAR(dec.oldest, agg.oldest, kTsTolMs);
    EXPECT_NEAR(dec.newest, agg.newest, kTsTolMs);
    // The capacity champion travels by node id, immune to F16 ties.
    EXPECT_EQ(dec.best_capacity_node, agg.best_capacity_node);
  }
}

TEST(ReportCodec, CanonicalReEncodeIsByteStable) {
  // Decoding then re-encoding must reproduce the same bytes: quantized
  // ticks and F16 values are fixed points of their own codecs. This is
  // what makes forwarded (decode→merge-less→re-encode) aggregates cheap
  // to reason about in the determinism gate.
  util::Rng rng(7);
  AggregateReport agg;
  for (std::size_t i = 0; i < 25; ++i)
    agg.Add(RandomReport(rng, static_cast<dht::NodeIndex>(i * 37 % 101),
                         50000.0));
  const std::vector<std::uint8_t> once = EncodeAggregate(agg);
  EXPECT_EQ(EncodeAggregate(agg), once);  // deterministic
  AggregateReport dec;
  ASSERT_TRUE(DecodeAggregate(once.data(), once.size(), &dec));
  EXPECT_EQ(EncodeAggregate(dec), once);
}

TEST(ReportCodec, EmptyAggregateRoundTrips) {
  AggregateReport agg;
  const std::vector<std::uint8_t> wire = EncodeAggregate(agg);
  EXPECT_EQ(wire.size(), EncodedSize(agg));
  EXPECT_LE(wire.size(), kReportHeaderBytes);
  AggregateReport dec;
  dec.Add(NodeReport{});  // stale contents must be replaced
  ASSERT_TRUE(DecodeAggregate(wire.data(), wire.size(), &dec));
  EXPECT_TRUE(dec.empty());
}

TEST(ReportCodec, RealisticAggregateFitsTheBudget) {
  // A gather-tree aggregate as the live pool produces it: clustered node
  // ids, correlated hosts, fresh reports, 3-d coordinates, bandwidths and
  // telemetry counters of similar magnitude across machines. The measured
  // encoding must fit §3.2's budget: kReportHeaderBytes of fixed cost plus
  // kPerRecordBytes per member.
  util::Rng rng(11);
  AggregateReport agg;
  const double now_ms = 3600.0 * 1000.0;
  for (std::size_t i = 0; i < 64; ++i) {
    NodeReport r;
    r.node = static_cast<dht::NodeIndex>(1000 + i);
    r.host = static_cast<net::HostIdx>(1000 + i);
    r.generated_at = now_ms - rng.Uniform(0.0, 5000.0);
    for (int d = 0; d < 3; ++d)
      r.coordinates.push_back(rng.Uniform(-200.0, 200.0));
    r.up_kbps = rng.Uniform(500.0, 5000.0);
    r.down_kbps = rng.Uniform(500.0, 20000.0);
    r.capacity = rng.Uniform(0.5, 2.0);
    r.degrees.total = 8;
    for (int s = 0; s < 2; ++s)
      r.degrees.taken.push_back(
          DegreeSlot{static_cast<SessionId>(s), kHighestPriority + s});
    r.telemetry.msgs_sent = 10000 + rng.NextBounded(2000);
    r.telemetry.msgs_delivered = 9500 + rng.NextBounded(2000);
    r.telemetry.msgs_dropped = rng.NextBounded(50);
    r.telemetry.bytes_sent = 1000000 + rng.NextBounded(300000);
    r.telemetry.suspects = rng.NextBounded(3);
    r.telemetry.sampled_at = r.generated_at - rng.Uniform(0.0, 1000.0);
    agg.Add(r);
  }
  const std::size_t bytes = agg.SerializedBytes();
  EXPECT_LE(bytes, kReportHeaderBytes + agg.size() * kPerRecordBytes)
      << "avg " << static_cast<double>(bytes) / agg.size()
      << " bytes/record over " << agg.size() << " records";
  EXPECT_GT(bytes, 0u);
}

TEST(ReportCodec, RejectsTruncatedInput) {
  util::Rng rng(3);
  AggregateReport agg;
  for (std::size_t i = 0; i < 8; ++i)
    agg.Add(RandomReport(rng, static_cast<dht::NodeIndex>(i), 10000.0));
  const std::vector<std::uint8_t> wire = EncodeAggregate(agg);
  AggregateReport dec;
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(DecodeAggregate(wire.data(), len, &dec))
        << "prefix " << len << " of " << wire.size();
  }
  // Trailing garbage is rejected too (the decoder demands AtEnd).
  std::vector<std::uint8_t> padded = wire;
  padded.push_back(0x00);
  EXPECT_FALSE(DecodeAggregate(padded.data(), padded.size(), &dec));
}

TEST(ReportCodec, RejectsBadVersionAndGarbage) {
  AggregateReport dec;
  const std::uint8_t wrong_version[] = {0x02, 0x00};
  EXPECT_FALSE(DecodeAggregate(wrong_version, sizeof(wrong_version), &dec));
  // Claimed member count far beyond what the buffer could hold.
  const std::uint8_t huge_count[] = {0x01, 0xff, 0xff, 0x7f};
  EXPECT_FALSE(DecodeAggregate(huge_count, sizeof(huge_count), &dec));
  EXPECT_FALSE(DecodeAggregate(nullptr, 0, &dec));
}

}  // namespace
}  // namespace p2p::somo
