// Satellite (c) of the observability PR: two same-seed runs of a fully
// instrumented, fault-injected simulation must produce byte-identical
// metrics snapshots and byte-identical timeseries CSVs. This is the
// property that makes snapshots diffable across PRs — any hidden
// wall-clock or RNG leakage into the `metrics` section breaks it.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <utility>

#include "dht/heartbeat.h"
#include "dht/ring.h"
#include "obs/timeseries.h"
#include "sim/simulation.h"
#include "sim/transport.h"
#include "somo/somo.h"

namespace p2p {
namespace {

std::string ReadAll(std::FILE* f) {
  std::rewind(f);
  std::string out;
  char buf[512];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  return out;
}

// One instrumented run: ring + heartbeat + SOMO over a lossy transport,
// sampled every second. Returns the deterministic snapshot and the CSV.
std::pair<std::string, std::string> InstrumentedRun(std::uint64_t seed) {
  sim::Simulation sim(seed);
  sim.EnableMetrics();
  sim.transport().EnablePerHostStats(24);
  sim.transport().faults().loss_probability = 0.2;
  sim.transport().faults().jitter_ms = 10.0;

  dht::Ring ring(16);
  for (std::size_t i = 0; i < 24; ++i) ring.JoinHashed(i);
  ring.StabilizeAll();
  ring.set_metrics(&sim.metrics());

  dht::HeartbeatConfig hb_cfg;
  hb_cfg.suspect_alive = true;
  dht::HeartbeatProtocol hb(sim, ring, hb_cfg);
  hb.Start();

  somo::SomoConfig cfg;
  cfg.fanout = 4;
  cfg.report_interval_ms = 1000.0;
  somo::SomoProtocol somo(sim, ring, cfg, [&](dht::NodeIndex n) {
    somo::NodeReport r;
    r.node = n;
    r.host = ring.node(n).host();
    r.generated_at = sim.now();
    const sim::HostStats& hs = sim.transport().host_stats(r.host);
    r.telemetry.msgs_sent = hs.sent;
    r.telemetry.msgs_delivered = hs.delivered;
    r.telemetry.msgs_dropped = hs.dropped;
    r.telemetry.bytes_sent = hs.bytes;
    r.telemetry.sampled_at = sim.now();
    return r;
  });
  somo.Start();

  obs::TimeseriesSampler sampler;
  sampler.AddProbe("somo_messages",
                   [&] { return sim.metrics().Value("somo.messages"); });
  sampler.AddProbe("hb_sent",
                   [&] { return sim.metrics().Value("dht.heartbeat.sent"); });
  sampler.AddProbe("inflight", [&] {
    return static_cast<double>(sim.transport().inflight_messages());
  });
  sim.Every(1000.0, 1000.0, [&] { sampler.Sample(sim.now()); });

  sim.RunUntil(15000.0);
  somo.Stop();
  hb.Stop();

  std::FILE* tmp = std::tmpfile();
  EXPECT_NE(tmp, nullptr);
  EXPECT_TRUE(sampler.WriteCsv(tmp));
  std::string csv = ReadAll(tmp);
  std::fclose(tmp);
  return {sim.metrics().SnapshotJson(/*include_profile=*/false),
          std::move(csv)};
}

TEST(ObsDeterminism, SameSeedByteIdenticalSnapshotAndTimeseries) {
  const auto [snap_a, csv_a] = InstrumentedRun(7);
  const auto [snap_b, csv_b] = InstrumentedRun(7);
  EXPECT_EQ(snap_a, snap_b);
  EXPECT_EQ(csv_a, csv_b);
  // The run actually exercised the instrumentation.
  EXPECT_NE(snap_a.find("somo.messages"), std::string::npos);
  EXPECT_NE(snap_a.find("dht.heartbeat.sent"), std::string::npos);
  EXPECT_NE(snap_a.find("transport.heartbeat.dropped.loss"),
            std::string::npos);
  EXPECT_NE(csv_a.find("somo_messages"), std::string::npos);
}

TEST(ObsDeterminism, DifferentSeedsDiverge) {
  // Sanity check that the equality above is not vacuous: a different seed
  // reshuffles the loss pattern and with it the counters.
  const auto [snap_a, csv_a] = InstrumentedRun(7);
  const auto [snap_b, csv_b] = InstrumentedRun(8);
  EXPECT_NE(snap_a, snap_b);
}

// Decimating-sampler variant: a small-capacity kDecimate sampler over a
// seeded lossy run, sampled far past capacity so the stride halves several
// times. Decimation is pure stride arithmetic (no RNG), so same-seed runs
// must keep the same rows with the same bytes.
std::string DecimatedRun(std::uint64_t seed) {
  sim::Simulation sim(seed);
  sim.EnableMetrics();
  sim.transport().faults().loss_probability = 0.1;
  sim.transport().faults().jitter_ms = 5.0;

  dht::Ring ring(8);
  for (std::size_t i = 0; i < 16; ++i) ring.JoinHashed(i);
  ring.StabilizeAll();
  dht::HeartbeatProtocol hb(sim, ring);
  hb.Start();

  obs::TimeseriesSampler sampler(16, obs::FillPolicy::kDecimate);
  sampler.AddProbe("hb_sent", [&] {
    return sim.metrics().Value("dht.heartbeat.sent");
  });
  sim.Every(100.0, 100.0, [&] { sampler.Sample(sim.now()); });
  sim.RunUntil(20000.0);  // 200 samples through a 16-row buffer

  EXPECT_GT(sampler.stride(), 1u);
  EXPECT_LE(sampler.rows(), 16u);
  EXPECT_EQ(sampler.total_rows(), 200u);
  std::FILE* tmp = std::tmpfile();
  EXPECT_NE(tmp, nullptr);
  EXPECT_TRUE(sampler.WriteCsv(tmp));
  std::string csv = ReadAll(tmp);
  std::fclose(tmp);
  // The retained rows span the whole run, start and tail included.
  EXPECT_NE(csv.find("\n100,"), std::string::npos);
  return csv;
}

TEST(ObsDeterminism, DecimatedTimeseriesIsByteIdentical) {
  const std::string a = DecimatedRun(7);
  const std::string b = DecimatedRun(7);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, DecimatedRun(9));
}

}  // namespace
}  // namespace p2p
