#include <gtest/gtest.h>

#include "dht/leafset.h"

namespace p2p::dht {
namespace {

TEST(Leafset, InsertKeepsRClosestPerSide) {
  Leafset ls(/*owner=*/100, /*r=*/2);
  ls.Insert(110, 1);
  ls.Insert(120, 2);
  ls.Insert(105, 3);  // closer successor than 120
  ASSERT_EQ(ls.successors().size(), 2u);
  EXPECT_EQ(ls.successors()[0].id, 105u);
  EXPECT_EQ(ls.successors()[1].id, 110u);
}

TEST(Leafset, OwnerIsNeverInserted) {
  Leafset ls(100, 2);
  EXPECT_FALSE(ls.Insert(100, 0));
  EXPECT_EQ(ls.size(), 0u);
}

TEST(Leafset, SameNodeAppearsOnBothSidesInTinyRings) {
  // With two nodes, each is the other's successor AND predecessor.
  Leafset ls(100, 2);
  ls.Insert(200, 1);
  EXPECT_EQ(ls.successor(), 1u);
  EXPECT_EQ(ls.predecessor(), 1u);
  EXPECT_EQ(ls.Members().size(), 1u);  // deduplicated view
}

TEST(Leafset, RemoveDropsBothSides) {
  Leafset ls(100, 2);
  ls.Insert(200, 1);
  EXPECT_TRUE(ls.Remove(200));
  EXPECT_EQ(ls.size(), 0u);
  EXPECT_FALSE(ls.Remove(200));
}

TEST(Leafset, PredecessorOrderingIsCounterClockwise) {
  Leafset ls(100, 3);
  ls.Insert(90, 1);
  ls.Insert(80, 2);
  ls.Insert(95, 3);
  ASSERT_EQ(ls.predecessors().size(), 3u);
  EXPECT_EQ(ls.predecessors()[0].id, 95u);  // nearest first
  EXPECT_EQ(ls.predecessors()[1].id, 90u);
  EXPECT_EQ(ls.predecessors()[2].id, 80u);
}

TEST(Leafset, ContainsAndRefresh) {
  Leafset ls(0, 2);
  ls.Insert(10, 1);
  EXPECT_TRUE(ls.Contains(10));
  ls.Insert(10, 99);  // refresh node index
  EXPECT_EQ(ls.successors()[0].node, 99u);
}

TEST(Leafset, ClosestToPicksBestProgress) {
  Leafset ls(0, 3);
  ls.Insert(10, 1);
  ls.Insert(20, 2);
  ls.Insert(30, 3);
  EXPECT_EQ(ls.ClosestTo(25), 2u);   // 20 is closest without overshoot
  EXPECT_EQ(ls.ClosestTo(30), 3u);   // exact member
  EXPECT_EQ(ls.ClosestTo(5), kNoNode);  // no member in (0, 5]
}

TEST(Leafset, CoversArcBetweenFarthestMembers) {
  Leafset ls(100, 2);
  ls.Insert(110, 1);
  ls.Insert(120, 2);
  ls.Insert(90, 3);
  ls.Insert(80, 4);
  EXPECT_TRUE(ls.Covers(115));
  EXPECT_TRUE(ls.Covers(85));
  EXPECT_TRUE(ls.Covers(100));
  EXPECT_FALSE(ls.Covers(500));
}

TEST(Leafset, WrapAroundZeroInsertsCorrectSides) {
  const NodeId owner = 5;
  Leafset ls(owner, 2);
  ls.Insert(~0ull - 3, 1);  // just behind 0 → close predecessor
  ls.Insert(10, 2);
  EXPECT_EQ(ls.predecessor(), 1u);
  EXPECT_EQ(ls.successor(), 2u);
}

TEST(Leafset, ClearEmptiesBothSides) {
  Leafset ls(0, 2);
  ls.Insert(1, 1);
  ls.Insert(2, 2);
  ls.Clear();
  EXPECT_EQ(ls.size(), 0u);
  EXPECT_EQ(ls.successor(), kNoNode);
}

}  // namespace
}  // namespace p2p::dht
