// Retained pre-SoA SOMO implementation — see somo_map_ref.h. The function
// bodies below are the pre-refactor src/somo/report.cc and src/somo/somo.cc
// verbatim (namespace and #include lines aside); resist "improving" them,
// their only job is to behave exactly like the code they replaced.
#include "reference/somo_map_ref.h"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "obs/telemetry_codec.h"
#include "util/check.h"

namespace p2p::somoref {

using somo::DegreeSlot;
using somo::HostTelemetry;
using somo::kNoLogical;
using somo::kReportHeaderBytes;

void AggregateReport::Add(NodeReport r) {
  oldest = std::min(oldest, r.generated_at);
  newest = std::max(newest, r.generated_at);
  if (r.capacity > best_capacity) {
    best_capacity = r.capacity;
    best_capacity_node = r.node;
  }
  members.push_back(std::move(r));
}

void AggregateReport::Merge(const AggregateReport& other) {
  if (other.empty()) return;
  oldest = std::min(oldest, other.oldest);
  newest = std::max(newest, other.newest);
  if (other.best_capacity > best_capacity) {
    best_capacity = other.best_capacity;
    best_capacity_node = other.best_capacity_node;
  }
  members.insert(members.end(), other.members.begin(), other.members.end());
}

void AggregateReport::MergeKeepFreshest(const AggregateReport& other) {
  if (other.empty()) return;
  // Index existing members; replace with fresher duplicates, append new.
  std::unordered_map<dht::NodeIndex, std::size_t> index;
  index.reserve(members.size());
  for (std::size_t i = 0; i < members.size(); ++i)
    index.emplace(members[i].node, i);
  for (const NodeReport& r : other.members) {
    const auto it = index.find(r.node);
    if (it == index.end()) {
      index.emplace(r.node, members.size());
      members.push_back(r);
    } else if (r.generated_at > members[it->second].generated_at) {
      members[it->second] = r;
    }
  }
  oldest = std::numeric_limits<double>::infinity();
  newest = -std::numeric_limits<double>::infinity();
  best_capacity = -std::numeric_limits<double>::infinity();
  best_capacity_node = dht::kNoNode;
  for (const NodeReport& r : members) {
    oldest = std::min(oldest, r.generated_at);
    newest = std::max(newest, r.generated_at);
    if (r.capacity > best_capacity) {
      best_capacity = r.capacity;
      best_capacity_node = r.node;
    }
  }
}

void AggregateReport::Clear() {
  members.clear();
  oldest = std::numeric_limits<double>::infinity();
  newest = -std::numeric_limits<double>::infinity();
  best_capacity = -std::numeric_limits<double>::infinity();
  best_capacity_node = dht::kNoNode;
}

std::size_t AggregateReport::MemoryBytes() const {
  std::size_t heap = members.capacity() * sizeof(NodeReport);
  for (const NodeReport& r : members) {
    heap += r.coordinates.capacity() * sizeof(double);
    heap += r.degrees.taken.capacity() * sizeof(DegreeSlot);
  }
  return sizeof(*this) + heap;
}

namespace {

constexpr std::uint8_t kWireVersion = 1;
constexpr std::uint8_t kTelemetryValid = 0x01;

inline std::int64_t AsI64(std::size_t v) { return static_cast<std::int64_t>(v); }

template <typename Sink>
void EncodeTo(const AggregateReport& agg, Sink& sink) {
  sink.Byte(kWireVersion);
  sink.Varint(agg.members.size());
  if (agg.members.empty()) return;
  const std::uint64_t base = obs::QuantizeTicks(agg.newest);
  sink.Varint(base);
  sink.Varint(agg.best_capacity_node == dht::kNoNode
                  ? 0
                  : static_cast<std::uint64_t>(agg.best_capacity_node) + 1);
  std::int64_t prev_node = 0;
  HostTelemetry prev_tel;
  for (const NodeReport& r : agg.members) {
    const std::int64_t node = AsI64(r.node);
    sink.Zigzag(node - prev_node);
    prev_node = node;
    sink.Zigzag(static_cast<std::int64_t>(r.host) - node);
    const std::uint64_t gen = obs::QuantizeTicks(r.generated_at);
    P2P_DCHECK(gen <= base);
    sink.Varint(base - gen);
    sink.Varint(r.coordinates.size());
    for (const double c : r.coordinates) sink.F16(c);
    sink.F16(r.up_kbps);
    sink.F16(r.down_kbps);
    sink.F16(r.capacity);
    sink.Zigzag(r.degrees.total);
    sink.Varint(r.degrees.taken.size());
    for (const DegreeSlot& s : r.degrees.taken) {
      sink.Varint((static_cast<std::uint64_t>(s.session + 1) << 2) |
                  static_cast<std::uint64_t>(s.priority & 3));
    }
    if (!r.telemetry.valid()) {
      sink.Byte(0);
      continue;
    }
    sink.Byte(kTelemetryValid);
    sink.Zigzag(static_cast<std::int64_t>(gen) -
                static_cast<std::int64_t>(obs::QuantizeTicks(r.telemetry.sampled_at)));
    sink.Zigzag(AsI64(r.telemetry.msgs_sent) - AsI64(prev_tel.msgs_sent));
    sink.Zigzag(AsI64(r.telemetry.msgs_delivered) -
                AsI64(prev_tel.msgs_delivered));
    sink.Zigzag(AsI64(r.telemetry.msgs_dropped) -
                AsI64(prev_tel.msgs_dropped));
    sink.Zigzag(AsI64(r.telemetry.bytes_sent) - AsI64(prev_tel.bytes_sent));
    sink.Zigzag(AsI64(r.telemetry.suspects) - AsI64(prev_tel.suspects));
    prev_tel = r.telemetry;
  }
}

}  // namespace

std::vector<std::uint8_t> EncodeAggregate(const AggregateReport& agg) {
  obs::WireWriter w;
  EncodeTo(agg, w);
  return w.Take();
}

std::size_t EncodedSize(const AggregateReport& agg) {
  obs::WireCounter c;
  EncodeTo(agg, c);
  return c.size();
}

std::size_t AggregateReport::SerializedBytes() const {
  return EncodedSize(*this);
}

SomoProtocol::SomoProtocol(sim::Simulation& sim, dht::Ring& ring,
                           SomoConfig config, ReportProvider provider)
    : sim_(sim), ring_(ring), config_(config), provider_(std::move(provider)) {
  P2P_CHECK(config_.report_interval_ms > 0.0);
  P2P_CHECK(provider_ != nullptr);
  sim_.transport().set_default_delay_ms(config_.default_hop_delay_ms);
  if (ring_.oracle() != nullptr) sim_.transport().set_oracle(ring_.oracle());
  tree_ = std::make_unique<LogicalTree>(ring_, config_.fanout);
  state_.resize(tree_->size());
  for (LogicalIndex l = 0; l < tree_->size(); ++l)
    state_[l].from_children.resize(tree_->node(l).children.size());
  auto& reg = sim_.metrics();
  m_gathers_ = &reg.counter("somo.gathers");
  m_messages_ = &reg.counter("somo.messages");
  m_bytes_ = &reg.counter("somo.bytes");
  m_redundant_ = &reg.counter("somo.redundant_pushes");
  m_root_staleness_ = &reg.gauge("somo.root.staleness_ms");
  m_root_members_ = &reg.gauge("somo.root.members");
  m_gather_latency_ = &reg.histogram("somo.gather.latency_ms");
  m_report_age_ = &reg.histogram("somo.report.age_ms");
}

bool SomoProtocol::SendBetween(dht::NodeIndex from, dht::NodeIndex to,
                               SomoMessageKind kind, std::size_t bytes,
                               sim::Transport::DeliverFn deliver) {
  ++messages_;
  bytes_ += bytes;
  m_messages_->Inc();
  m_bytes_->Inc(static_cast<double>(bytes));
  sim::Message msg;
  msg.src_host = ring_.node(from).host();
  msg.dst_host = ring_.node(to).host();
  msg.protocol = sim::Protocol::kSomo;
  msg.kind = kind;
  msg.bytes = bytes;
  return sim_.transport().Send(msg, std::move(deliver));
}

void SomoProtocol::Start() {
  P2P_CHECK_MSG(!running_, "SOMO already running");
  running_ = true;
  ScheduleLogicalTimers();
}

void SomoProtocol::Stop() {
  running_ = false;
  for (auto& t : timers_) sim::Simulation::CancelPeriodic(t);
  timers_.clear();
}

void SomoProtocol::ScheduleLogicalTimers() {
  for (auto& t : timers_) sim::Simulation::CancelPeriodic(t);
  timers_.clear();
  if (config_.synchronized_gather) {
    timers_.push_back(sim_.Every(config_.report_interval_ms, 0.0,
                                 [this] { StartSyncGather(); }));
    return;
  }
  timers_.reserve(tree_->size());
  for (LogicalIndex l = 0; l < tree_->size(); ++l) {
    const sim::Time phase =
        sim_.rng().Uniform(0.0, config_.report_interval_ms);
    timers_.push_back(sim_.Every(config_.report_interval_ms, phase,
                                 [this, l] { FireLogical(l); }));
  }
}

AggregateReport SomoProtocol::ComputeAggregate(LogicalIndex l) const {
  const LogicalNode& ln = tree_->node(l);
  AggregateReport agg;
  if (ln.is_leaf()) {
    if (ring_.node(ln.owner).alive()) {
      for (const dht::NodeIndex n : ln.reported) {
        if (ring_.node(n).alive()) agg.Add(provider_(n));
      }
    }
    return agg;
  }
  for (const auto& child_agg : state_[l].from_children)
    agg.MergeKeepFreshest(child_agg);
  for (const auto& [src, adopted_agg] : state_[l].adopted)
    agg.MergeKeepFreshest(adopted_agg);
  return agg;
}

void SomoProtocol::FireLogical(LogicalIndex l) {
  if (!running_) return;
  if (l >= tree_->size()) return;
  const LogicalNode& ln = tree_->node(l);
  if (!ring_.node(ln.owner).alive()) return;
  state_[l].own = ComputeAggregate(l);
  if (ln.is_root()) {
    root_view_ = state_[l].own;
    if (!root_view_.empty()) {
      ++gathers_completed_;
      m_gathers_->Inc();
      RecordRootMetrics(0);
      OnRootViewRefreshed();
    }
    return;
  }
  PushToParent(l);
}

void SomoProtocol::PushToParent(LogicalIndex l) {
  const LogicalNode& ln = tree_->node(l);
  const LogicalIndex parent = ln.parent;
  const LogicalNode& pn = tree_->node(parent);

  if (config_.redundant_links && !ring_.node(pn.owner).alive() &&
      !pn.is_root()) {
    const LogicalNode& gp = tree_->node(pn.parent);
    std::vector<LogicalIndex> uncles;
    for (const LogicalIndex u : gp.children) {
      if (u != parent && ring_.node(tree_->node(u).owner).alive())
        uncles.push_back(u);
    }
    if (!uncles.empty()) {
      const LogicalIndex uncle =
          uncles[sim_.rng().NextBounded(uncles.size())];
      ++redundant_pushes_;
      m_redundant_->Inc();
      AggregateReport payload = state_[l].own;
      const std::size_t wire = payload.SerializedBytes();
      SendBetween(ln.owner, tree_->node(uncle).owner, somo::kMsgRedundantPush,
                  wire, [this, uncle, l, payload = std::move(payload)] {
                    if (!running_ || uncle >= state_.size()) return;
                    state_[uncle].adopted[l] = payload;
                  });
      return;
    }
  }

  std::size_t slot = 0;
  for (; slot < pn.children.size(); ++slot) {
    if (pn.children[slot] == l) break;
  }
  P2P_CHECK(slot < pn.children.size());
  AggregateReport payload = state_[l].own;
  const std::size_t wire = payload.SerializedBytes();
  SendBetween(ln.owner, pn.owner, somo::kMsgPush, wire,
              [this, parent, slot, l, payload = std::move(payload)] {
                ReceivePush(parent, slot, l, payload);
              });
}

void SomoProtocol::ReceivePush(LogicalIndex parent, std::size_t slot,
                               LogicalIndex from,
                               const AggregateReport& payload) {
  if (!running_) return;
  if (parent >= state_.size()) return;
  if (slot >= state_[parent].from_children.size()) return;
  state_[parent].from_children[slot] = payload;
  state_[parent].adopted.erase(from);
}

void SomoProtocol::StartSyncGather() {
  if (!running_) return;
  const std::uint64_t round = ++sync_round_counter_;
  sync_started_[round] = sim_.now();
  SyncDescend(tree_->root(), sim_.now(), round);
}

void SomoProtocol::SyncDescend(LogicalIndex l, sim::Time arrival,
                               std::uint64_t round) {
  const LogicalNode& ln = tree_->node(l);
  if (ln.is_leaf()) {
    AggregateReport agg;
    if (ring_.node(ln.owner).alive()) {
      for (const dht::NodeIndex n : ln.reported) {
        if (ring_.node(n).alive()) agg.Add(provider_(n));
      }
    }
    const LogicalIndex parent = ln.parent;
    if (parent == kNoLogical) {
      sim_.At(arrival, [this, round, agg = std::move(agg)] {
        root_view_ = agg;
        ++gathers_completed_;
        m_gathers_->Inc();
        RecordRootMetrics(round);
        OnRootViewRefreshed();
      });
      return;
    }
    const std::size_t wire = agg.SerializedBytes();
    SendBetween(ln.owner, tree_->node(parent).owner, somo::kMsgSyncReply, wire,
                [this, parent, round, agg = std::move(agg)] {
                  SyncReplyArrived(parent, agg, round);
                });
    return;
  }
  state_[l].sync[round] = PendingGather{ln.children.size(), {}};
  for (const LogicalIndex c : ln.children) {
    SendBetween(ln.owner, tree_->node(c).owner, somo::kMsgSyncCall,
                kReportHeaderBytes, [this, c, round] {
                  if (!running_) return;
                  if (c >= tree_->size()) return;
                  SyncDescend(c, sim_.now(), round);
                });
  }
}

void SomoProtocol::SyncReplyArrived(LogicalIndex l,
                                    const AggregateReport& child_agg,
                                    std::uint64_t round) {
  if (!running_ || l >= state_.size()) return;
  LogicalState& st = state_[l];
  const auto it = st.sync.find(round);
  if (it == st.sync.end()) return;
  it->second.agg.Merge(child_agg);
  P2P_DCHECK(it->second.pending > 0);
  if (--it->second.pending > 0) return;
  AggregateReport complete = std::move(it->second.agg);
  st.sync.erase(it);
  const LogicalNode& ln = tree_->node(l);
  if (ln.is_root()) {
    root_view_ = std::move(complete);
    ++gathers_completed_;
    m_gathers_->Inc();
    RecordRootMetrics(round);
    OnRootViewRefreshed();
    return;
  }
  const LogicalIndex parent = ln.parent;
  const std::size_t wire = complete.SerializedBytes();
  SendBetween(ln.owner, tree_->node(parent).owner, somo::kMsgSyncReply, wire,
              [this, parent, round, payload = std::move(complete)] {
                SyncReplyArrived(parent, payload, round);
              });
}

void SomoProtocol::RecordRootMetrics(std::uint64_t round) {
  const sim::Time now = sim_.now();
  m_root_members_->Set(static_cast<double>(root_view_.size()));
  if (!root_view_.empty()) m_root_staleness_->Set(now - root_view_.oldest);
  for (const auto& r : root_view_.members)
    m_report_age_->Add(now - r.generated_at);
  if (round != 0) {
    const auto it = sync_started_.find(round);
    if (it != sync_started_.end()) {
      m_gather_latency_->Add(now - it->second);
      sync_started_.erase(it);
    }
  }
  std::vector<double> level_age;
  for (LogicalIndex l = 0; l < tree_->size(); ++l) {
    const AggregateReport& agg = state_[l].own;
    if (agg.empty()) continue;
    const std::size_t level = tree_->node(l).level;
    if (level_age.size() <= level) level_age.resize(level + 1, -1.0);
    level_age[level] = std::max(level_age[level], now - agg.oldest);
  }
  for (std::size_t k = 0; k < level_age.size(); ++k) {
    if (level_age[k] < 0.0) continue;
    sim_.metrics()
        .gauge("somo.level" + std::to_string(k) + ".age_ms")
        .Set(level_age[k]);
  }
}

void SomoProtocol::OnRootViewRefreshed() {
  if (!config_.disseminate) return;
  auto snapshot = std::make_shared<const AggregateReport>(root_view_);
  const std::size_t wire = snapshot->SerializedBytes();
  Disseminate(tree_->root(), std::move(snapshot), wire, sim_.now());
}

void SomoProtocol::Disseminate(LogicalIndex l,
                               std::shared_ptr<const AggregateReport> view,
                               std::size_t wire, sim::Time arrival) {
  if (node_views_.size() < ring_.size()) node_views_.resize(ring_.size());
  const LogicalNode& ln = tree_->node(l);
  auto adopt = [this, view](dht::NodeIndex n) {
    if (n >= node_views_.size()) return;
    const sim::Time when = sim_.now();
    if (node_views_[n].received_at >= when && node_views_[n].valid())
      return;
    node_views_[n] = NodeView{view, when};
  };
  sim_.At(arrival, [adopt, owner = ln.owner] { adopt(owner); });
  if (ln.is_leaf()) {
    for (const dht::NodeIndex n : ln.reported) {
      if (n == ln.owner || !ring_.node(n).alive()) continue;
      SendBetween(ln.owner, n, somo::kMsgDisseminate, wire,
                  [adopt, n] { adopt(n); });
    }
    return;
  }
  for (const LogicalIndex c : ln.children) {
    SendBetween(ln.owner, tree_->node(c).owner, somo::kMsgDisseminate, wire,
                [this, c, view, wire] {
                  if (!running_ || c >= tree_->size()) return;
                  Disseminate(c, view, wire, sim_.now());
                });
  }
}

const SomoProtocol::NodeView& SomoProtocol::ViewAt(dht::NodeIndex n) const {
  static const NodeView kEmpty;
  if (n >= node_views_.size()) return kEmpty;
  return node_views_[n];
}

double SomoProtocol::ViewStalenessMs(dht::NodeIndex n) const {
  const NodeView& v = ViewAt(n);
  if (!v.valid() || v.view->empty())
    return std::numeric_limits<double>::infinity();
  return sim_.now() - v.view->oldest;
}

std::size_t SomoProtocol::nodes_with_view() const {
  std::size_t n = 0;
  for (const auto& v : node_views_) n += v.valid();
  return n;
}

void SomoProtocol::Rebuild() {
  tree_ = std::make_unique<LogicalTree>(ring_, config_.fanout);
  state_.assign(tree_->size(), LogicalState{});
  for (LogicalIndex l = 0; l < tree_->size(); ++l)
    state_[l].from_children.resize(tree_->node(l).children.size());
  if (running_) ScheduleLogicalTimers();
}

double SomoProtocol::RootStalenessMs() const {
  if (root_view_.empty())
    return std::numeric_limits<double>::infinity();
  return sim_.now() - root_view_.oldest;
}

double SomoProtocol::RootAliveStalenessMs() const {
  sim::Time oldest = std::numeric_limits<double>::infinity();
  for (const auto& r : root_view_.members) {
    if (r.node >= ring_.size() || !ring_.node(r.node).alive()) continue;
    oldest = std::min(oldest, r.generated_at);
  }
  if (oldest == std::numeric_limits<double>::infinity())
    return std::numeric_limits<double>::infinity();
  return sim_.now() - oldest;
}

bool SomoProtocol::RootViewComplete() const {
  if (root_view_.empty()) return false;
  std::vector<char> seen(ring_.size(), 0);
  for (const auto& r : root_view_.members) {
    if (r.node < seen.size()) seen[r.node] = 1;
  }
  for (const dht::NodeIndex n : ring_.SortedAlive()) {
    if (!seen[n]) return false;
  }
  return true;
}

}  // namespace p2p::somoref
