// Retained pre-SoA SOMO implementation (PR 9), kept verbatim for the
// differential test the way PR 4 retained the reference scheduler and PR 7
// the old PlanSession: `somoref::SomoProtocol` is the map-based protocol —
// array-of-structs AggregateReport (std::vector<NodeReport> members),
// unordered_map adopted/sync tables — exactly as it shipped before the
// struct-of-arrays refactor. tests/somo_soa_differential_test.cc runs it
// against the production protocol on identical seeded simulations and pins
// event logs, wire bytes and metric snapshots.
//
// Shared leaf types (NodeReport, DegreeTable, HostTelemetry, SomoConfig,
// SomoMessageKind, LogicalTree) are reused from src/somo — only the
// aggregate container and the protocol, the things the refactor touched,
// are duplicated here.
#pragma once

#include <functional>
#include <limits>
#include <memory>
#include <unordered_map>
#include <vector>

#include "dht/ring.h"
#include "sim/simulation.h"
#include "somo/logical_tree.h"
#include "somo/somo.h"

namespace p2p::somoref {

using somo::LogicalIndex;
using somo::LogicalNode;
using somo::LogicalTree;
using somo::NodeReport;
using somo::SomoConfig;
using somo::SomoMessageKind;

// Array-of-structs aggregate, as before the SoA refactor.
struct AggregateReport {
  std::vector<NodeReport> members;
  sim::Time oldest = std::numeric_limits<double>::infinity();
  sim::Time newest = -std::numeric_limits<double>::infinity();
  dht::NodeIndex best_capacity_node = dht::kNoNode;
  double best_capacity = -std::numeric_limits<double>::infinity();

  bool empty() const { return members.empty(); }
  std::size_t size() const { return members.size(); }

  void Add(NodeReport r);
  void Merge(const AggregateReport& other);
  void MergeKeepFreshest(const AggregateReport& other);
  void Clear();
  std::size_t SerializedBytes() const;

  // Pre-SoA in-memory footprint of this aggregate (AoS layout): the
  // recorded baseline the PR 9 memory-regression test compares against.
  std::size_t MemoryBytes() const;
};

std::vector<std::uint8_t> EncodeAggregate(const AggregateReport& agg);
std::size_t EncodedSize(const AggregateReport& agg);

// Verbatim pre-SoA protocol (modulo the AggregateReport type).
class SomoProtocol {
 public:
  using ReportProvider = std::function<NodeReport(dht::NodeIndex)>;

  SomoProtocol(sim::Simulation& sim, dht::Ring& ring, SomoConfig config,
               ReportProvider provider);

  void Start();
  void Stop();
  void Rebuild();

  void ReceivePush(LogicalIndex parent, std::size_t slot, LogicalIndex from,
                   const AggregateReport& payload);

  const LogicalTree& tree() const { return *tree_; }
  const SomoConfig& config() const { return config_; }
  const AggregateReport& RootReport() const { return root_view_; }
  double RootStalenessMs() const;
  double RootAliveStalenessMs() const;
  bool RootViewComplete() const;

  struct NodeView {
    std::shared_ptr<const AggregateReport> view;
    sim::Time received_at = -1.0;
    bool valid() const { return view != nullptr; }
  };
  const NodeView& ViewAt(dht::NodeIndex n) const;
  double ViewStalenessMs(dht::NodeIndex n) const;
  std::size_t nodes_with_view() const;

  std::size_t gathers_completed() const { return gathers_completed_; }
  std::size_t messages_sent() const { return messages_; }
  std::size_t bytes_sent() const { return bytes_; }
  std::size_t redundant_pushes() const { return redundant_pushes_; }

 private:
  void ScheduleLogicalTimers();
  void FireLogical(LogicalIndex l);
  void PushToParent(LogicalIndex l);
  AggregateReport ComputeAggregate(LogicalIndex l) const;
  void OnRootViewRefreshed();
  void Disseminate(LogicalIndex l, std::shared_ptr<const AggregateReport> view,
                   std::size_t wire, sim::Time arrival);
  void StartSyncGather();
  void SyncDescend(LogicalIndex l, sim::Time arrival, std::uint64_t round);
  void SyncReplyArrived(LogicalIndex l, const AggregateReport& child_agg,
                        std::uint64_t round);
  void RecordRootMetrics(std::uint64_t round);
  bool SendBetween(dht::NodeIndex from, dht::NodeIndex to,
                   SomoMessageKind kind, std::size_t bytes,
                   sim::Transport::DeliverFn deliver);

  sim::Simulation& sim_;
  dht::Ring& ring_;
  SomoConfig config_;
  ReportProvider provider_;
  std::unique_ptr<LogicalTree> tree_;
  bool running_ = false;

  struct PendingGather {
    std::size_t pending = 0;
    AggregateReport agg;
  };
  struct LogicalState {
    AggregateReport own;
    std::vector<AggregateReport> from_children;
    std::unordered_map<LogicalIndex, AggregateReport> adopted;
    std::unordered_map<std::uint64_t, PendingGather> sync;  // by round
  };
  std::vector<LogicalState> state_;
  std::vector<sim::Simulation::PeriodicToken> timers_;
  AggregateReport root_view_;
  std::vector<NodeView> node_views_;

  std::size_t gathers_completed_ = 0;
  std::size_t messages_ = 0;
  std::size_t bytes_ = 0;
  std::size_t redundant_pushes_ = 0;
  std::uint64_t sync_round_counter_ = 0;

  obs::Counter* m_gathers_;
  obs::Counter* m_messages_;
  obs::Counter* m_bytes_;
  obs::Counter* m_redundant_;
  obs::Gauge* m_root_staleness_;
  obs::Gauge* m_root_members_;
  obs::Histogram* m_gather_latency_;
  obs::Histogram* m_report_age_;
  std::unordered_map<std::uint64_t, sim::Time> sync_started_;
};

}  // namespace p2p::somoref
