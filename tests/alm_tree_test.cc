#include <gtest/gtest.h>

#include "alm/tree.h"
#include "util/check.h"

namespace p2p::alm {
namespace {

// Simple latency: |a − b| (participants on a line).
double Line(ParticipantId a, ParticipantId b) {
  return a > b ? static_cast<double>(a - b) : static_cast<double>(b - a);
}

MulticastTree Chain4() {
  // 0 → 1 → 2 → 3
  MulticastTree t(10);
  t.SetRoot(0);
  t.AddChild(0, 1);
  t.AddChild(1, 2);
  t.AddChild(2, 3);
  return t;
}

TEST(MulticastTree, SetRootOnce) {
  MulticastTree t(5);
  t.SetRoot(2);
  EXPECT_EQ(t.root(), 2u);
  EXPECT_TRUE(t.Contains(2));
  EXPECT_THROW(t.SetRoot(3), util::CheckError);
}

TEST(MulticastTree, AddChildTracksStructure) {
  auto t = Chain4();
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.parent(1), 0u);
  EXPECT_EQ(t.parent(0), kNoParticipant);  // root has no parent
  EXPECT_EQ(t.children(1), (std::vector<ParticipantId>{2}));
  EXPECT_TRUE(t.IsLeaf(3));
  EXPECT_FALSE(t.IsLeaf(1));
}

TEST(MulticastTree, DegreeCountsIncidentEdges) {
  auto t = Chain4();
  EXPECT_EQ(t.Degree(0), 1);  // root: one child, no parent edge
  EXPECT_EQ(t.Degree(1), 2);  // parent + one child
  EXPECT_EQ(t.Degree(3), 1);  // leaf
}

TEST(MulticastTree, AddExistingNodeRejected) {
  auto t = Chain4();
  EXPECT_THROW(t.AddChild(0, 2), util::CheckError);
  EXPECT_THROW(t.AddChild(7, 8), util::CheckError);  // parent not in tree
}

TEST(MulticastTree, InSubtree) {
  auto t = Chain4();
  EXPECT_TRUE(t.InSubtree(3, 1));
  EXPECT_TRUE(t.InSubtree(3, 3));
  EXPECT_FALSE(t.InSubtree(1, 3));
  EXPECT_TRUE(t.InSubtree(3, 0));  // root is everyone's ancestor
}

TEST(MulticastTree, HeightsAccumulateLatency) {
  auto t = Chain4();
  const auto h = t.ComputeHeights(Line);
  EXPECT_DOUBLE_EQ(h[0], 0.0);
  EXPECT_DOUBLE_EQ(h[1], 1.0);
  EXPECT_DOUBLE_EQ(h[2], 2.0);
  EXPECT_DOUBLE_EQ(h[3], 3.0);
  EXPECT_DOUBLE_EQ(t.Height(Line), 3.0);
}

TEST(MulticastTree, ReparentMovesSubtree) {
  auto t = Chain4();
  t.Reparent(2, 0);  // 2 (and child 3) now hang off the root
  EXPECT_EQ(t.parent(2), 0u);
  const auto h = t.ComputeHeights(Line);
  EXPECT_DOUBLE_EQ(h[2], 2.0);
  EXPECT_DOUBLE_EQ(h[3], 3.0);
  t.Validate(std::vector<int>(10, 9));
}

TEST(MulticastTree, ReparentUnderDescendantRejected) {
  auto t = Chain4();
  EXPECT_THROW(t.Reparent(1, 3), util::CheckError);
  EXPECT_THROW(t.Reparent(0, 1), util::CheckError);  // cannot move the root
}

TEST(MulticastTree, SwapPositionsOfLeaves) {
  MulticastTree t(10);
  t.SetRoot(0);
  t.AddChild(0, 1);
  t.AddChild(0, 2);
  t.AddChild(1, 3);
  t.AddChild(2, 4);
  t.SwapPositions(3, 4);
  EXPECT_EQ(t.parent(3), 2u);
  EXPECT_EQ(t.parent(4), 1u);
  t.Validate(std::vector<int>(10, 9));
}

TEST(MulticastTree, SwapPositionsOfSiblingsIsStructurallyIdentical) {
  MulticastTree t(10);
  t.SetRoot(0);
  t.AddChild(0, 1);
  t.AddChild(0, 2);
  t.SwapPositions(1, 2);
  EXPECT_EQ(t.parent(1), 0u);
  EXPECT_EQ(t.parent(2), 0u);
  t.Validate(std::vector<int>(10, 9));
}

TEST(MulticastTree, SwapPositionsWithChildrenTransfersThem) {
  MulticastTree t(10);
  t.SetRoot(0);
  t.AddChild(0, 1);
  t.AddChild(0, 2);
  t.AddChild(1, 3);  // 1 has a child, 2 is a leaf
  t.SwapPositions(1, 2);
  EXPECT_EQ(t.parent(3), 2u);  // 3 followed the position, not the node
  EXPECT_TRUE(t.IsLeaf(1));
  t.Validate(std::vector<int>(10, 9));
}

TEST(MulticastTree, SwapParentChildRejected) {
  auto t = Chain4();
  EXPECT_THROW(t.SwapPositions(1, 2), util::CheckError);
}

TEST(MulticastTree, SwapSubtreesExchangesParentEdgesOnly) {
  MulticastTree t(10);
  t.SetRoot(0);
  t.AddChild(0, 1);
  t.AddChild(0, 2);
  t.AddChild(1, 3);
  t.AddChild(2, 4);
  t.SwapSubtrees(3, 4);
  EXPECT_EQ(t.parent(3), 2u);
  EXPECT_EQ(t.parent(4), 1u);
  t.Validate(std::vector<int>(10, 9));
}

TEST(MulticastTree, SwapSubtreesKeepsChildren) {
  MulticastTree t(10);
  t.SetRoot(0);
  t.AddChild(0, 1);
  t.AddChild(0, 2);
  t.AddChild(1, 3);
  t.AddChild(3, 5);  // subtree under 3
  t.AddChild(2, 4);
  t.SwapSubtrees(3, 4);
  EXPECT_EQ(t.parent(5), 3u);  // 5 moved with its subtree root
  EXPECT_EQ(t.parent(3), 2u);
  t.Validate(std::vector<int>(10, 9));
}

TEST(MulticastTree, SwapSubtreesAncestorRejected) {
  auto t = Chain4();
  EXPECT_THROW(t.SwapSubtrees(1, 3), util::CheckError);
}

TEST(MulticastTree, ValidateCatchesDegreeViolation) {
  MulticastTree t(5);
  t.SetRoot(0);
  t.AddChild(0, 1);
  t.AddChild(0, 2);
  std::vector<int> bounds(5, 9);
  bounds[0] = 1;  // root already has 2 children
  EXPECT_THROW(t.Validate(bounds), util::CheckError);
}

TEST(MulticastTree, HeightOfSingletonIsZero) {
  MulticastTree t(3);
  t.SetRoot(1);
  EXPECT_DOUBLE_EQ(t.Height(Line), 0.0);
}

}  // namespace
}  // namespace p2p::alm
