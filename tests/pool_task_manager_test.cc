#include <gtest/gtest.h>

#include <algorithm>

#include "pool/task_manager.h"
#include "test_support.h"
#include "util/rng.h"

namespace p2p::pool {
namespace {

alm::SessionSpec MakeSpec(ResourcePool& pool, alm::SessionId id, int priority,
                          std::uint64_t seed, std::size_t group = 12) {
  util::Rng rng(seed);
  const auto idx = rng.SampleIndices(pool.size(), group);
  alm::SessionSpec spec;
  spec.id = id;
  spec.priority = priority;
  spec.root = idx[0];
  spec.members.assign(idx.begin() + 1, idx.end());
  return spec;
}

TEST(TaskManager, ScheduleReservesTreeDegrees) {
  auto& pool = p2p::testing::SharedSmallPool();
  TaskManager tm(pool, MakeSpec(pool, 1, 1, 100), TaskManagerOptions{});
  const auto out = tm.Schedule();
  EXPECT_TRUE(out.ok);
  ASSERT_TRUE(tm.scheduled());
  const auto* tree = tm.current_tree();
  ASSERT_NE(tree, nullptr);
  for (const auto v : tree->members()) {
    EXPECT_EQ(pool.registry().HeldBy(v, 1), tree->Degree(v))
        << "node " << v;
  }
  tm.Teardown();
  EXPECT_EQ(pool.registry().TotalUsed(), 0u);
}

TEST(TaskManager, RescheduleReleasesOldClaims) {
  auto& pool = p2p::testing::SharedSmallPool();
  TaskManager tm(pool, MakeSpec(pool, 2, 1, 101), TaskManagerOptions{});
  tm.Schedule();
  const std::size_t used_once = pool.registry().TotalUsed();
  tm.Schedule();  // replan: must not leak the previous reservation
  EXPECT_EQ(pool.registry().TotalUsed(), used_once);
  tm.Teardown();
  EXPECT_EQ(pool.registry().TotalUsed(), 0u);
}

TEST(TaskManager, ImprovementAgainstOwnBaseline) {
  auto& pool = p2p::testing::SharedSmallPool();
  TaskManager tm(pool, MakeSpec(pool, 3, 1, 102), TaskManagerOptions{});
  tm.Schedule();
  const double baseline = tm.AmcastBaselineHeight();
  EXPECT_GT(baseline, 0.0);
  // Leafset+adjust with the whole pool free should beat plain AMCast.
  EXPECT_GE(tm.CurrentImprovement(), 0.0);
  EXPECT_DOUBLE_EQ(tm.CurrentImprovement(),
                   (baseline - tm.current_height()) / baseline);
  tm.Teardown();
}

// Non-overlapping member block (the paper's multi-session assumption).
alm::SessionSpec BlockSpec(ResourcePool& pool, alm::SessionId id,
                           int priority, std::size_t block,
                           std::size_t group = 12) {
  alm::SessionSpec spec;
  spec.id = id;
  spec.priority = priority;
  const std::size_t base = (block * group) % pool.size();
  spec.root = base;
  for (std::size_t k = 1; k < group; ++k)
    spec.members.push_back((base + k) % pool.size());
  return spec;
}

TEST(TaskManager, HighPriorityPreemptsLowPriorityHelpers) {
  auto& pool = p2p::testing::SharedSmallPool();
  // A low-priority session grabs helpers first.
  TaskManager low(pool, BlockSpec(pool, 10, 3, 0), TaskManagerOptions{});
  low.Schedule();
  // A high-priority session in an adjacent block competes for the same
  // high-degree helpers.
  TaskManager high(pool, BlockSpec(pool, 11, 1, 1), TaskManagerOptions{});
  const auto out = high.Schedule();
  EXPECT_TRUE(out.ok);
  // The only possible victim is session 10.
  for (const auto victim : out.preempted) EXPECT_EQ(victim, 10);
  // The victim can always reschedule (members-only plan is guaranteed).
  const auto retry = low.Schedule();
  EXPECT_TRUE(retry.ok);
  low.Teardown();
  high.Teardown();
  EXPECT_EQ(pool.registry().TotalUsed(), 0u);
}

TEST(TaskManager, MembersAlwaysSchedulableUnderContention) {
  auto& pool = p2p::testing::SharedSmallPool();
  // Fill the pool with several priority-1 sessions on disjoint blocks.
  std::vector<std::unique_ptr<TaskManager>> tms;
  for (int s = 0; s < 4; ++s) {
    tms.push_back(std::make_unique<TaskManager>(
        pool, BlockSpec(pool, 20 + s, 1, static_cast<std::size_t>(s)),
        TaskManagerOptions{}));
    EXPECT_TRUE(tms.back()->Schedule().ok);
  }
  // A late, lowest-priority session must still get a valid plan (its
  // members-only AMCast fallback is guaranteed).
  TaskManager late(pool, BlockSpec(pool, 30, 3, 5), TaskManagerOptions{});
  const auto out = late.Schedule();
  EXPECT_TRUE(out.ok);
  EXPECT_TRUE(late.scheduled());
  late.Teardown();
  for (auto& tm : tms) tm->Teardown();
  EXPECT_EQ(pool.registry().TotalUsed(), 0u);
}

TEST(TaskManager, OverlappingMembersFailGracefully) {
  auto& pool = p2p::testing::SharedSmallPool();
  // Two sessions share every member: the second may be unable to plan
  // (shared degree), but must fail cleanly rather than crash.
  TaskManager a(pool, MakeSpec(pool, 60, 1, 600), TaskManagerOptions{});
  EXPECT_TRUE(a.Schedule().ok);
  TaskManager b(pool, MakeSpec(pool, 61, 1, 600), TaskManagerOptions{});
  const auto out = b.Schedule();  // same seed → identical member set
  if (!out.ok) {
    EXPECT_FALSE(b.scheduled());
  }
  a.Teardown();
  b.Teardown();
  EXPECT_EQ(pool.registry().TotalUsed(), 0u);
}

TEST(TaskManager, InvalidPriorityRejected) {
  auto& pool = p2p::testing::SharedSmallPool();
  auto spec = MakeSpec(pool, 40, 1, 400);
  spec.priority = 0;
  EXPECT_THROW(TaskManager(pool, spec, TaskManagerOptions{}),
               util::CheckError);
  spec.priority = 4;
  EXPECT_THROW(TaskManager(pool, spec, TaskManagerOptions{}),
               util::CheckError);
}

TEST(TaskManager, CriticalStrategyWorksWithoutEstimates) {
  auto& pool = p2p::testing::SharedSmallPool();
  TaskManagerOptions opt;
  opt.strategy = alm::Strategy::kCriticalAdjust;
  TaskManager tm(pool, MakeSpec(pool, 50, 2, 500), opt);
  const auto out = tm.Schedule();
  EXPECT_TRUE(out.ok);
  EXPECT_GE(tm.CurrentImprovement(), 0.0);
  tm.Teardown();
}

}  // namespace
}  // namespace p2p::pool
