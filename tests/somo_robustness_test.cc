// §3.2 robustness & self-optimisation extras: redundant parent-sibling
// links, the in-band capacity merge-sort + root swap, overhead accounting,
// and the freshest-wins aggregate merge.
#include <gtest/gtest.h>

#include <memory>

#include "dht/ring.h"
#include "sim/simulation.h"
#include "somo/somo.h"

namespace p2p::somo {
namespace {

struct Fixture {
  sim::Simulation sim{55};
  dht::Ring ring{8};

  explicit Fixture(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) ring.JoinHashed(i);
    ring.StabilizeAll();
  }

  std::unique_ptr<SomoProtocol> Make(SomoConfig cfg,
                                     double capacity_of_node_13 = 0.0) {
    return std::make_unique<SomoProtocol>(
        sim, ring, cfg,
        [this, capacity_of_node_13](dht::NodeIndex n) {
          NodeReport r;
          r.node = n;
          r.host = ring.node(n).host();
          r.generated_at = sim.now();
          r.capacity = n == 13 ? capacity_of_node_13 : 1.0;
          return r;
        });
  }
};

// ------------------------------------------------- MergeKeepFreshest --

TEST(AggregateReportDedup, KeepsFreshestPerNode) {
  AggregateReport a, b;
  NodeReport old_r;
  old_r.node = 1;
  old_r.generated_at = 10.0;
  old_r.capacity = 5.0;
  a.Add(old_r);
  NodeReport new_r = old_r;
  new_r.generated_at = 20.0;
  new_r.capacity = 7.0;
  b.Add(new_r);
  NodeReport other;
  other.node = 2;
  other.generated_at = 15.0;
  b.Add(other);

  a.MergeKeepFreshest(b);
  EXPECT_EQ(a.size(), 2u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.node(i) == 1) {
      EXPECT_DOUBLE_EQ(a.generated_at(i), 20.0);
    }
  }
  EXPECT_DOUBLE_EQ(a.oldest, 15.0);
  EXPECT_DOUBLE_EQ(a.newest, 20.0);
  EXPECT_EQ(a.best_capacity_node, 1u);
  EXPECT_DOUBLE_EQ(a.best_capacity, 7.0);
}

TEST(AggregateReportDedup, StaleDuplicateIgnored) {
  AggregateReport a, b;
  NodeReport fresh;
  fresh.node = 1;
  fresh.generated_at = 30.0;
  a.Add(fresh);
  NodeReport stale = fresh;
  stale.generated_at = 5.0;
  b.Add(stale);
  a.MergeKeepFreshest(b);
  EXPECT_EQ(a.size(), 1u);
  EXPECT_DOUBLE_EQ(a.generated_at(0), 30.0);
}

TEST(AggregateReport, CapacityArgmaxMergeSortsUpward) {
  AggregateReport left, right, root;
  NodeReport a;
  a.node = 1;
  a.capacity = 3.0;
  left.Add(a);
  NodeReport b;
  b.node = 2;
  b.capacity = 9.0;
  right.Add(b);
  root.Merge(left);
  root.Merge(right);
  EXPECT_EQ(root.best_capacity_node, 2u);
  EXPECT_DOUBLE_EQ(root.best_capacity, 9.0);
}

TEST(AggregateReport, SerializedBytesIsMeasuredAndWithinBudget) {
  // SerializedBytes is the measured codec output now, not a constant
  // model: it must match EncodedSize exactly and fit the paper's budget.
  AggregateReport a;
  EXPECT_EQ(a.SerializedBytes(), EncodedSize(a));
  EXPECT_LE(a.SerializedBytes(), kReportHeaderBytes);
  NodeReport r;
  r.node = 0;
  a.Add(r);
  EXPECT_EQ(a.SerializedBytes(), EncodedSize(a));
  EXPECT_LE(a.SerializedBytes(), kReportHeaderBytes + kPerRecordBytes);
  EXPECT_GT(a.SerializedBytes(), 0u);
}

// ---------------------------------------------------- redundant links --

TEST(SomoRedundant, GatherSurvivesInternalOwnerDeathWithoutRebuild) {
  Fixture f(60);
  SomoConfig cfg;
  cfg.fanout = 4;
  cfg.report_interval_ms = 500.0;
  cfg.redundant_links = true;
  auto somo = f.Make(cfg);
  somo->Start();
  f.sim.RunUntil(20000.0);
  ASSERT_TRUE(somo->RootViewComplete());

  // Kill the owner of an internal (non-root) logical node WITHOUT
  // detection or rebuild: its children must detour via uncles.
  const auto& tree = somo->tree();
  dht::NodeIndex victim = dht::kNoNode;
  for (LogicalIndex l = 0; l < tree.size(); ++l) {
    const auto& ln = tree.node(l);
    if (!ln.is_leaf() && !ln.is_root() &&
        ln.owner != tree.node(tree.root()).owner) {
      victim = ln.owner;
      break;
    }
  }
  ASSERT_NE(victim, dht::kNoNode);
  f.ring.Fail(victim);
  f.sim.RunUntil(f.sim.now() + 20000.0);
  EXPECT_GT(somo->redundant_pushes(), 0u);
  // Every survivor still represented at the root.
  EXPECT_TRUE(somo->RootViewComplete());
}

TEST(SomoRedundant, WithoutRedundancySameFailureLosesCoverage) {
  Fixture f(60);
  SomoConfig cfg;
  cfg.fanout = 4;
  cfg.report_interval_ms = 500.0;
  cfg.redundant_links = false;
  auto somo = f.Make(cfg);
  somo->Start();
  f.sim.RunUntil(20000.0);
  ASSERT_TRUE(somo->RootViewComplete());
  const auto& tree = somo->tree();
  dht::NodeIndex victim = dht::kNoNode;
  LogicalIndex victim_l = kNoLogical;
  for (LogicalIndex l = 0; l < tree.size(); ++l) {
    const auto& ln = tree.node(l);
    if (!ln.is_leaf() && !ln.is_root() &&
        ln.owner != tree.node(tree.root()).owner) {
      victim = ln.owner;
      victim_l = l;
      break;
    }
  }
  ASSERT_NE(victim, dht::kNoNode);
  // Only meaningful if the victim's subtree covers someone alive besides
  // the victim itself; with fanout 4 over 60 nodes that always holds.
  f.ring.Fail(victim);
  f.sim.RunUntil(f.sim.now() + 20000.0);
  (void)victim_l;
  EXPECT_EQ(somo->redundant_pushes(), 0u);
  // The stale aggregates below the dead owner age; root view keeps the
  // LAST pushed copies, so completeness may persist, but staleness for
  // the orphaned region must grow beyond the usual bound.
  EXPECT_GT(somo->RootStalenessMs(), 10000.0);
}

TEST(SomoRedundant, BytesAccountedForAllTraffic) {
  Fixture f(30);
  SomoConfig cfg;
  cfg.report_interval_ms = 1000.0;
  auto somo = f.Make(cfg);
  somo->Start();
  f.sim.RunUntil(10000.0);
  EXPECT_GT(somo->bytes_sent(), 0u);
  // Every message carries at least the (compressed) encoding's version and
  // count bytes; empty aggregates encode to ~2 bytes, not a 16-byte header.
  EXPECT_GE(somo->bytes_sent(), somo->messages_sent() * 2);
}

// --------------------------------------------- in-band root swap -------

TEST(SomoSelfOptimize, RootSwapFromAggregatedCapacity) {
  Fixture f(40);
  SomoConfig cfg;
  cfg.fanout = 8;
  cfg.report_interval_ms = 500.0;
  auto somo = f.Make(cfg, /*capacity_of_node_13=*/100.0);
  somo->Start();
  f.sim.RunUntil(30000.0);
  ASSERT_TRUE(somo->RootViewComplete());
  ASSERT_EQ(somo->RootReport().best_capacity_node, 13u);

  const dht::NodeIndex new_owner = somo->OptimizeRootFromView();
  EXPECT_EQ(new_owner, 13u);
  EXPECT_EQ(somo->tree().node(somo->tree().root()).owner, 13u);
  f.ring.CheckInvariants();
}

TEST(SomoSelfOptimize, FromViewFailsGracefullyWithoutView) {
  Fixture f(10);
  auto somo = f.Make(SomoConfig{});
  EXPECT_EQ(somo->OptimizeRootFromView(), dht::kNoNode);
}

TEST(SomoSelfOptimize, StaleChampionRejected) {
  Fixture f(30);
  SomoConfig cfg;
  cfg.report_interval_ms = 500.0;
  auto somo = f.Make(cfg, /*capacity_of_node_13=*/100.0);
  somo->Start();
  f.sim.RunUntil(20000.0);
  ASSERT_EQ(somo->RootReport().best_capacity_node, 13u);
  // The champion crashes after being advertised; the swap must refuse.
  f.ring.Fail(13);
  EXPECT_EQ(somo->OptimizeRootFromView(), dht::kNoNode);
}

}  // namespace
}  // namespace p2p::somo
