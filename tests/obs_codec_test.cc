// Telemetry wire primitives: LEB128 varints, zigzag signed mapping, the
// 16-bit minifloat, age-tick quantization, and the writer/counter/reader
// trio. The structural guarantee the aggregate codec leans on — the
// counting sink reports exactly what the writing sink emits — is enforced
// here at the primitive level.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "obs/telemetry_codec.h"
#include "util/rng.h"

namespace p2p::obs {
namespace {

TEST(Zigzag, MapsSignAlternating) {
  EXPECT_EQ(ZigzagEncode(0), 0u);
  EXPECT_EQ(ZigzagEncode(-1), 1u);
  EXPECT_EQ(ZigzagEncode(1), 2u);
  EXPECT_EQ(ZigzagEncode(-2), 3u);
  EXPECT_EQ(ZigzagEncode(2), 4u);
}

TEST(Zigzag, RoundTripsExtremes) {
  const std::int64_t cases[] = {
      0,
      1,
      -1,
      std::numeric_limits<std::int64_t>::max(),
      std::numeric_limits<std::int64_t>::min(),
      std::numeric_limits<std::int64_t>::min() + 1,
  };
  for (const std::int64_t v : cases) {
    EXPECT_EQ(ZigzagDecode(ZigzagEncode(v)), v) << v;
  }
}

TEST(Varint, RoundTripsBoundaries) {
  // Every 7-bit length boundary, plus the 64-bit extremes.
  std::vector<std::uint64_t> cases = {0, 1};
  for (int bits = 7; bits < 64; bits += 7) {
    const std::uint64_t edge = std::uint64_t{1} << bits;
    cases.push_back(edge - 1);
    cases.push_back(edge);
  }
  cases.push_back(std::numeric_limits<std::uint64_t>::max());
  WireWriter w;
  for (const std::uint64_t v : cases) w.Varint(v);
  WireCounter c;
  for (const std::uint64_t v : cases) c.Varint(v);
  EXPECT_EQ(c.size(), w.size());
  WireReader r(w.bytes().data(), w.size());
  for (const std::uint64_t v : cases) {
    EXPECT_EQ(r.Varint(), v);
    EXPECT_TRUE(r.ok());
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(Varint, SmallValuesAreOneByte) {
  for (std::uint64_t v = 0; v < 128; ++v) {
    WireCounter c;
    c.Varint(v);
    EXPECT_EQ(c.size(), 1u) << v;
  }
  WireCounter c;
  c.Varint(128);
  EXPECT_EQ(c.size(), 2u);
}

TEST(F16, ExactOnSpecials) {
  EXPECT_EQ(DecodeF16(EncodeF16(0.0)), 0.0);
  EXPECT_EQ(DecodeF16(EncodeF16(-0.0)), 0.0);
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(DecodeF16(EncodeF16(inf)), inf);
  EXPECT_EQ(DecodeF16(EncodeF16(-inf)), -inf);
  EXPECT_TRUE(std::isnan(
      DecodeF16(EncodeF16(std::numeric_limits<double>::quiet_NaN()))));
}

TEST(F16, RelativeErrorBoundScan) {
  // Sweep magnitudes across the representable range: the decoded value
  // must stay within kF16RelError relative error, both signs.
  util::Rng rng(99);
  for (int e = -28; e <= 30; ++e) {
    for (int i = 0; i < 50; ++i) {
      const double mag = std::ldexp(1.0 + rng.Uniform(0.0, 1.0), e);
      for (const double v : {mag, -mag}) {
        const double d = DecodeF16(EncodeF16(v));
        EXPECT_LE(std::abs(d - v), kF16RelError * std::abs(v))
            << "value " << v << " decoded " << d;
      }
    }
  }
}

TEST(F16, TinyValuesFlushToZero) {
  EXPECT_EQ(DecodeF16(EncodeF16(std::ldexp(1.0, -40))), 0.0);
  EXPECT_EQ(DecodeF16(EncodeF16(-std::ldexp(1.0, -40))), 0.0);
}

TEST(F16, HugeValuesSaturateToInfinity) {
  const double d = DecodeF16(EncodeF16(1e30));
  EXPECT_TRUE(std::isinf(d));
  EXPECT_GT(d, 0.0);
}

TEST(AgeTicks, QuantizationBound) {
  for (const double ms : {0.0, 1.0, 7.9, 16.0, 1234.5, 1e7}) {
    const double back = TicksToMs(QuantizeTicks(ms));
    EXPECT_LE(std::abs(back - ms), kAgeTickMs / 2.0 + 1e-9) << ms;
  }
  // Negative times clamp to tick zero (ages are non-negative by contract).
  EXPECT_EQ(QuantizeTicks(-5.0), 0u);
}

TEST(WireReader, TruncationLatchesNotOk) {
  WireWriter w;
  w.Byte(1);
  w.Varint(1u << 20);  // 3 bytes
  w.F16(3.5);
  ASSERT_EQ(w.size(), 6u);
  // Reading from every strict prefix must fail cleanly, never read past
  // the end, and stay failed (latched) once tripped.
  for (std::size_t len = 0; len < w.size(); ++len) {
    WireReader r(w.bytes().data(), len);
    (void)r.Byte();
    (void)r.Varint();
    (void)r.F16();
    EXPECT_FALSE(r.ok()) << "prefix " << len;
    (void)r.Byte();
    EXPECT_FALSE(r.ok());
  }
  WireReader full(w.bytes().data(), w.size());
  EXPECT_EQ(full.Byte(), 1u);
  EXPECT_EQ(full.Varint(), 1u << 20);
  EXPECT_DOUBLE_EQ(full.F16(), 3.5);
  EXPECT_TRUE(full.ok());
  EXPECT_TRUE(full.AtEnd());
}

TEST(WireReader, OverlongVarintRejected) {
  // 11 continuation bytes: more than a 64-bit varint can ever need.
  std::vector<std::uint8_t> bytes(11, 0x80);
  bytes.push_back(0x01);
  WireReader r(bytes.data(), bytes.size());
  (void)r.Varint();
  EXPECT_FALSE(r.ok());
}

TEST(WireCounter, MatchesWriterOnRandomStreams) {
  util::Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    WireWriter w;
    WireCounter c;
    const int ops = 1 + static_cast<int>(rng.NextBounded(30));
    for (int i = 0; i < ops; ++i) {
      switch (rng.NextBounded(4)) {
        case 0: {
          const auto b = static_cast<std::uint8_t>(rng.NextBounded(256));
          w.Byte(b);
          c.Byte(b);
          break;
        }
        case 1: {
          const std::uint64_t v = rng() >> rng.NextBounded(64);
          w.Varint(v);
          c.Varint(v);
          break;
        }
        case 2: {
          const auto v = static_cast<std::int64_t>(rng());
          w.Zigzag(v);
          c.Zigzag(v);
          break;
        }
        default: {
          const double v = rng.Uniform(-1e6, 1e6);
          w.F16(v);
          c.F16(v);
          break;
        }
      }
    }
    EXPECT_EQ(c.size(), w.size()) << "trial " << trial;
  }
}

}  // namespace
}  // namespace p2p::obs
