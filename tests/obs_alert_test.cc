// AlertEngine semantics: threshold direction, debounce across Evaluate
// calls, hysteresis (clear_threshold / clear_ms), the bounded drop-oldest
// event log, reaction ordering, registry probes, and the deterministic
// CSV / run-report renderings the determinism gate depends on.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/alert.h"
#include "obs/metrics.h"
#include "obs/run_report.h"

namespace p2p::obs {
namespace {

// A rule whose probe reads a mutable local — the unit-test stand-in for a
// disseminated-view or registry probe.
struct ProbeRule {
  double value = 0.0;
  std::function<double()> probe() {
    return [this] { return value; };
  }
};

TEST(AlertEngine, FiresAboveAndBelow) {
  AlertEngine eng;
  ProbeRule hi, lo;
  AlertRule above;
  above.name = "hi";
  above.probe = hi.probe();
  above.threshold = 10.0;
  above.fire_above = true;
  AlertRule below;
  below.name = "lo";
  below.probe = lo.probe();
  below.threshold = 2.0;
  below.fire_above = false;
  const std::size_t r_hi = eng.AddRule(above);
  const std::size_t r_lo = eng.AddRule(below);

  hi.value = 10.0;  // not a breach: must be strictly above
  lo.value = 2.0;   // not a breach: must be strictly below
  eng.Evaluate(0.0);
  EXPECT_FALSE(eng.active(r_hi));
  EXPECT_FALSE(eng.active(r_lo));

  hi.value = 10.5;
  lo.value = 1.5;
  eng.Evaluate(100.0);
  EXPECT_TRUE(eng.active(r_hi));
  EXPECT_TRUE(eng.active(r_lo));
  EXPECT_EQ(eng.fires(), 2u);
  EXPECT_DOUBLE_EQ(eng.first_fired_at(r_hi), 100.0);
  EXPECT_DOUBLE_EQ(eng.last_value(r_lo), 1.5);
}

TEST(AlertEngine, DebounceRequiresSustainedBreach) {
  AlertEngine eng;
  ProbeRule p;
  AlertRule r;
  r.name = "debounced";
  r.probe = p.probe();
  r.threshold = 1.0;
  r.debounce_ms = 500.0;
  const std::size_t idx = eng.AddRule(r);

  p.value = 2.0;
  eng.Evaluate(0.0);  // breach starts
  EXPECT_FALSE(eng.active(idx));
  eng.Evaluate(400.0);  // held 400 < 500
  EXPECT_FALSE(eng.active(idx));
  p.value = 0.0;
  eng.Evaluate(450.0);  // breach interrupted: debounce window resets
  p.value = 2.0;
  eng.Evaluate(500.0);  // new breach starts here
  eng.Evaluate(900.0);  // held 400 < 500 since the reset
  EXPECT_FALSE(eng.active(idx));
  eng.Evaluate(1000.0);  // held 500 — fires
  EXPECT_TRUE(eng.active(idx));
  EXPECT_EQ(eng.fire_count(idx), 1u);
  EXPECT_DOUBLE_EQ(eng.first_fired_at(idx), 1000.0);
  // No refire while active.
  eng.Evaluate(2000.0);
  EXPECT_EQ(eng.fire_count(idx), 1u);
}

TEST(AlertEngine, HysteresisClearThresholdAndClearMs) {
  AlertEngine eng;
  ProbeRule p;
  AlertRule r;
  r.name = "hyst";
  r.probe = p.probe();
  r.threshold = 10.0;
  r.clear_threshold = 5.0;  // must drop below 5 to begin clearing
  r.clear_ms = 300.0;
  const std::size_t idx = eng.AddRule(r);

  p.value = 12.0;
  eng.Evaluate(0.0);
  ASSERT_TRUE(eng.active(idx));
  p.value = 7.0;  // below threshold but above clear_threshold: stays active
  eng.Evaluate(100.0);
  EXPECT_TRUE(eng.active(idx));
  p.value = 4.0;
  eng.Evaluate(200.0);  // clearing window starts
  EXPECT_TRUE(eng.active(idx));
  eng.Evaluate(400.0);  // held 200 < 300
  EXPECT_TRUE(eng.active(idx));
  eng.Evaluate(500.0);  // held 300 — clears
  EXPECT_FALSE(eng.active(idx));
  EXPECT_EQ(eng.clears(), 1u);
  // Re-breach after clearing fires again.
  p.value = 12.0;
  eng.Evaluate(600.0);
  EXPECT_TRUE(eng.active(idx));
  EXPECT_EQ(eng.fire_count(idx), 2u);
  EXPECT_DOUBLE_EQ(eng.first_fired_at(idx), 0.0);  // first fire, not last
}

TEST(AlertEngine, NaNClearThresholdFallsBackToThreshold) {
  AlertEngine eng;
  ProbeRule p;
  AlertRule r;
  r.name = "noclearthresh";
  r.probe = p.probe();
  r.threshold = 10.0;
  const std::size_t idx = eng.AddRule(r);
  p.value = 11.0;
  eng.Evaluate(0.0);
  ASSERT_TRUE(eng.active(idx));
  p.value = 9.0;  // below threshold (the fallback clear threshold), clear_ms 0
  eng.Evaluate(100.0);
  EXPECT_FALSE(eng.active(idx));
}

TEST(AlertEngine, ReactionsRunInOrderAfterLogging) {
  AlertEngine eng;
  ProbeRule p;
  AlertRule r;
  r.name = "react";
  r.probe = p.probe();
  r.threshold = 1.0;
  const std::size_t idx = eng.AddRule(r);
  std::vector<std::string> order;
  eng.OnFire(idx, [&](const AlertEvent& ev) {
    EXPECT_EQ(ev.kind, AlertEvent::kFire);
    // The event is logged before reactions run.
    EXPECT_FALSE(eng.events().empty());
    order.push_back("fire1");
  });
  eng.OnFire(idx, [&](const AlertEvent&) { order.push_back("fire2"); });
  eng.OnClear(idx, [&](const AlertEvent& ev) {
    EXPECT_EQ(ev.kind, AlertEvent::kClear);
    order.push_back("clear");
  });

  p.value = 2.0;
  eng.Evaluate(0.0);
  p.value = 0.0;
  eng.Evaluate(100.0);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "fire1");
  EXPECT_EQ(order[1], "fire2");
  EXPECT_EQ(order[2], "clear");
}

TEST(AlertEngine, BoundedLogDropsOldestAndCounts) {
  AlertEngine eng(/*log_capacity=*/4);
  ProbeRule p;
  AlertRule r;
  r.name = "noisy";
  r.probe = p.probe();
  r.threshold = 1.0;
  eng.AddRule(r);
  // 6 fire/clear pairs = 12 events; capacity 4 keeps the newest 4.
  for (int i = 0; i < 6; ++i) {
    p.value = 2.0;
    eng.Evaluate(i * 100.0);
    p.value = 0.0;
    eng.Evaluate(i * 100.0 + 50.0);
  }
  EXPECT_EQ(eng.events().size(), 4u);
  EXPECT_EQ(eng.dropped_events(), 8u);
  EXPECT_EQ(eng.fires(), 6u);
  EXPECT_EQ(eng.clears(), 6u);
  // Oldest first, and the retained window is the newest transitions.
  EXPECT_DOUBLE_EQ(eng.events().front().time_ms, 400.0);
  EXPECT_DOUBLE_EQ(eng.events().back().time_ms, 550.0);
}

TEST(AlertEngine, RegistryProbeReadsCountersAndGauges) {
  MetricsRegistry reg;
  AlertEngine eng;
  AlertRule r;
  r.name = "reg";
  r.probe = MakeRegistryProbe(reg, "dht.leafset.repairs");
  r.threshold = 2.0;
  const std::size_t idx = eng.AddRule(r);
  eng.Evaluate(0.0);  // absent metric reads 0.0
  EXPECT_FALSE(eng.active(idx));
  reg.counter("dht.leafset.repairs").Inc(3.0);
  eng.Evaluate(100.0);
  EXPECT_TRUE(eng.active(idx));
  EXPECT_DOUBLE_EQ(eng.last_value(idx), 3.0);
}

TEST(AlertEngine, WriteCsvIsDeterministic) {
  auto run = [](const std::string& path) {
    AlertEngine eng;
    ProbeRule p;
    AlertRule r;
    r.name = "csv";
    r.probe = p.probe();
    r.threshold = 1.0;
    eng.AddRule(r);
    p.value = 1.5;
    eng.Evaluate(10.0);
    p.value = 0.5;
    eng.Evaluate(20.0);
    EXPECT_TRUE(eng.WriteCsv(path));
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  };
  const std::string a = run("alert_det_a.csv");
  const std::string b = run("alert_det_b.csv");
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  // Header plus one line per event.
  EXPECT_NE(a.find("time_ms,rule,kind,value"), std::string::npos);
  EXPECT_NE(a.find("fire"), std::string::npos);
  EXPECT_NE(a.find("clear"), std::string::npos);
  std::remove("alert_det_a.csv");
  std::remove("alert_det_b.csv");
}

TEST(AlertEngine, RunReportAlertsSection) {
  auto make_json = [] {
    AlertEngine eng;
    ProbeRule p;
    AlertRule r;
    r.name = "view.stale";
    r.probe = p.probe();
    r.threshold = 1.0;
    eng.AddRule(r);
    p.value = 2.0;
    eng.Evaluate(1000.0);
    p.value = 0.0;
    eng.Evaluate(2000.0);
    RunReport report("alert_test");
    report.set_seed(7);
    report.AddAlerts("none.inband", eng);
    return report.ToJson();
  };
  const std::string json = make_json();
  EXPECT_NE(json.find("\"alerts\""), std::string::npos);
  EXPECT_NE(json.find("\"none.inband\""), std::string::npos);
  EXPECT_NE(json.find("\"view.stale\""), std::string::npos);
  EXPECT_NE(json.find("\"fires\""), std::string::npos);
  EXPECT_NE(json.find("\"evaluations\""), std::string::npos);
  // Byte-identical across same-input constructions.
  EXPECT_EQ(json, make_json());
  // Engines with an empty log still serialize (fires: 0, events: []).
  AlertEngine empty;
  RunReport r2("alert_test");
  r2.AddAlerts("quiet", empty);
  const std::string j2 = r2.ToJson();
  EXPECT_NE(j2.find("\"quiet\""), std::string::npos);
}

}  // namespace
}  // namespace p2p::obs
