#include <gtest/gtest.h>

#include "dht/prefix_table.h"
#include "dht/maintenance.h"
#include "dht/ring.h"
#include "util/rng.h"

namespace p2p::dht {
namespace {

// ----------------------------------------------------------- PrefixTable --

TEST(PrefixTable, DigitExtraction) {
  PrefixTable t(0, /*bits_per_digit=*/4);
  const NodeId id = 0xABCDEF0123456789ull;
  EXPECT_EQ(t.DigitOf(id, 0), 0xAu);
  EXPECT_EQ(t.DigitOf(id, 1), 0xBu);
  EXPECT_EQ(t.DigitOf(id, 15), 0x9u);
  EXPECT_EQ(t.digits(), 16u);
  EXPECT_EQ(t.columns(), 16u);
}

TEST(PrefixTable, SharedPrefixDigits) {
  PrefixTable t(0xAB00000000000000ull);
  EXPECT_EQ(t.SharedPrefixDigits(0xAB00000000000000ull,
                                 0xABFF000000000000ull),
            2u);
  EXPECT_EQ(t.SharedPrefixDigits(0x1234ull, 0x1234ull), 16u);
  EXPECT_EQ(t.SharedPrefixDigits(0x8000000000000000ull, 0), 0u);
}

TEST(PrefixTable, OfferPlacesByPrefixRow) {
  const NodeId owner = 0xA000000000000000ull;
  PrefixTable t(owner);
  // Differs in digit 0 → row 0, column B.
  EXPECT_TRUE(t.Offer(0xB000000000000000ull, 1));
  EXPECT_EQ(t.At(0, 0xB).node, 1u);
  // Shares 1 digit, differs in digit 1 → row 1, column 5.
  EXPECT_TRUE(t.Offer(0xA500000000000000ull, 2));
  EXPECT_EQ(t.At(1, 0x5).node, 2u);
  EXPECT_EQ(t.filled_entries(), 2u);
}

TEST(PrefixTable, FirstComePlacementKeepsExisting) {
  PrefixTable t(0);
  EXPECT_TRUE(t.Offer(0xB000000000000000ull, 1));
  EXPECT_FALSE(t.Offer(0xBF00000000000000ull, 2));  // same row 0 col B
  EXPECT_EQ(t.At(0, 0xB).node, 1u);
}

TEST(PrefixTable, OwnerNeverPlaced) {
  PrefixTable t(42);
  EXPECT_FALSE(t.Offer(42, 7));
  EXPECT_EQ(t.filled_entries(), 0u);
}

TEST(PrefixTable, EntryForRoutesToDigitFix) {
  const NodeId owner = 0xA000000000000000ull;
  PrefixTable t(owner);
  t.Offer(0xB300000000000000ull, 1);
  // Key starting with B: row 0, column B.
  EXPECT_EQ(t.EntryFor(0xBEEF000000000000ull).node, 1u);
  // Key starting with C: empty slot.
  EXPECT_EQ(t.EntryFor(0xC000000000000000ull).node, kNoNode);
  // Key == owner id: no hop needed.
  EXPECT_EQ(t.EntryFor(owner).node, kNoNode);
}

TEST(PrefixTable, InvalidateRemovesEverywhere) {
  PrefixTable t(0);
  t.Offer(0xB000000000000000ull, 5);
  t.Offer(0x0B00000000000000ull, 5);
  EXPECT_EQ(t.filled_entries(), 2u);
  t.Invalidate(5);
  EXPECT_EQ(t.filled_entries(), 0u);
}

TEST(PrefixTable, InvalidBitsRejected) {
  EXPECT_THROW(PrefixTable(0, 0), util::CheckError);
  EXPECT_THROW(PrefixTable(0, 5), util::CheckError);  // 5 does not divide 64
  EXPECT_THROW(PrefixTable(0, 9), util::CheckError);
}

// ------------------------------------------------------- Pastry routing --

Ring MakePastryRing(std::size_t n) {
  Ring ring(16, nullptr, RoutingGeometry::kPastryPrefix);
  for (std::size_t i = 0; i < n; ++i) ring.JoinHashed(i);
  ring.StabilizeAll();
  return ring;
}

TEST(PastryRouting, ReachesResponsibleNode) {
  auto ring = MakePastryRing(200);
  util::Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const NodeId key = rng();
    const RouteResult r = ring.Route(rng.NextBounded(ring.size()), key);
    ASSERT_TRUE(r.success);
    EXPECT_EQ(r.destination, ring.ResponsibleFor(key));
  }
}

TEST(PastryRouting, HopCountLogarithmicWithSteeperBase) {
  // b=4 → log16(N) digit fixes; for 512 nodes that is ~2.25 + last mile.
  auto ring = MakePastryRing(512);
  util::Rng rng(5);
  double hops = 0;
  const int kTrials = 300;
  for (int i = 0; i < kTrials; ++i) {
    const auto r = ring.Route(rng.NextBounded(ring.size()), rng());
    EXPECT_TRUE(r.success);
    hops += static_cast<double>(r.hops);
  }
  EXPECT_LT(hops / kTrials, 5.0);
}

TEST(PastryRouting, PrefixBeatsChordHopCountAtScale) {
  Ring chord(16, nullptr, RoutingGeometry::kChordFingers);
  Ring pastry(16, nullptr, RoutingGeometry::kPastryPrefix);
  for (std::size_t i = 0; i < 1024; ++i) {
    chord.JoinHashed(i);
    pastry.JoinHashed(i);
  }
  chord.StabilizeAll();
  pastry.StabilizeAll();
  auto mean_hops = [](Ring& ring) {
    util::Rng rng(7);
    double hops = 0;
    for (int i = 0; i < 300; ++i)
      hops += static_cast<double>(
          ring.Route(rng.NextBounded(ring.size()), rng()).hops);
    return hops / 300.0;
  };
  // log16 vs log2-ish bases: prefix should not lose.
  EXPECT_LE(mean_hops(pastry), mean_hops(chord) + 0.5);
}

TEST(PastryRouting, SurvivesDetectedFailures) {
  auto ring = MakePastryRing(150);
  util::Rng rng(9);
  for (int i = 0; i < 30; ++i) {
    const auto alive = ring.SortedAlive();
    const NodeIndex victim = alive[rng.NextBounded(alive.size())];
    ring.Fail(victim);
    ring.DetectFailure(victim);
  }
  for (int i = 0; i < 100; ++i) {
    const NodeId key = rng();
    const auto alive = ring.SortedAlive();
    const auto r = ring.Route(alive[rng.NextBounded(alive.size())], key);
    EXPECT_TRUE(r.success);
    EXPECT_EQ(r.destination, ring.ResponsibleFor(key));
  }
}

TEST(PastryRouting, MaintenanceLearnsFromLookups) {
  // After churn, new nodes are absent from old prefix tables; lookup
  // traffic via MaintenanceProtocol should (re)populate slots.
  auto ring = MakePastryRing(100);
  for (std::size_t i = 0; i < 30; ++i) ring.JoinHashed(500 + i);
  std::size_t filled_before = 0;
  for (const NodeIndex n : ring.SortedAlive())
    filled_before += ring.node(n).prefix().filled_entries();
  sim::Simulation sim(11);
  MaintenanceProtocol maint(sim, ring);
  maint.Start();
  sim.RunUntil(20000.0);
  std::size_t filled_after = 0;
  for (const NodeIndex n : ring.SortedAlive())
    filled_after += ring.node(n).prefix().filled_entries();
  EXPECT_GE(filled_after, filled_before);
}

}  // namespace
}  // namespace p2p::dht
