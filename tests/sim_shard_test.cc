// Sharded-kernel tests (all suites prefixed "Shard" so the ThreadSanitizer
// stage in tools/run_tests.sh can select them with --gtest_filter=Shard*):
//  * ShardSeed stream splitting (serial identity at one shard),
//  * net::PlanShards placement properties and the structural lookahead,
//  * mailbox exchange in the canonical (time, src_shard, seq) order and the
//    per-message lookahead CHECK,
//  * the 1-shard differential against the serial kernel (event count,
//    metrics snapshot, trace bytes — the SchedulerAB methodology),
//  * same-seed multi-shard byte-identity, independent of the thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "dht/heartbeat.h"
#include "dht/ring.h"
#include "net/shard_plan.h"
#include "net/transit_stub.h"
#include "obs/metrics.h"
#include "sim/sharded.h"
#include "sim/simulation.h"
#include "sim/trace.h"
#include "sim/transport.h"
#include "somo/somo.h"
#include "test_support.h"
#include "util/check.h"
#include "util/rng.h"

namespace p2p::sim {
namespace {

// ------------------------------------------------------------ ShardSeed --

TEST(ShardSeed, OneShardRunsOnTheMasterSeed) {
  // The serial-equivalence contract: a 1-shard ShardedSimulation must draw
  // the exact RNG stream of Simulation(seed).
  for (std::uint64_t seed : {0ULL, 1ULL, 321ULL, 0xdeadbeefULL}) {
    EXPECT_EQ(ShardSeed(seed, 0, 1), seed);
  }
}

TEST(ShardSeed, SplitsDistinctStreams) {
  const std::uint64_t seed = 4242;
  std::set<std::uint64_t> seen;
  for (std::size_t s = 0; s < 8; ++s) {
    seen.insert(ShardSeed(seed, s, 8));
  }
  EXPECT_EQ(seen.size(), 8u);
  // The split also keys on the shard count, so resharding reshuffles every
  // stream instead of giving shard 0 the same history at every count.
  EXPECT_NE(ShardSeed(seed, 1, 2), ShardSeed(seed, 1, 4));
}

// ------------------------------------------------------------ ShardPlan --

net::TransitStubTopology SmallTopo() {
  util::Rng rng(99);
  return net::GenerateTransitStub(p2p::testing::SmallTopologyParams(), rng);
}

TEST(ShardPlan, LookaheadIsTheStructuralBound) {
  const net::TransitStubTopology topo = SmallTopo();
  // 2 * (last_hop_min_ms + stub_transit_link_ms) = 2 * (3 + 25).
  EXPECT_DOUBLE_EQ(net::ShardLookaheadMs(topo.params), 56.0);
  EXPECT_DOUBLE_EQ(net::PlanShards(topo, 1).lookahead_ms, 56.0);
  EXPECT_DOUBLE_EQ(net::PlanShards(topo, 4).lookahead_ms, 56.0);
}

TEST(ShardPlan, PartitionsAlongWholeStubDomains) {
  const net::TransitStubTopology topo = SmallTopo();
  const net::ShardPlan plan = net::PlanShards(topo, 4);
  ASSERT_EQ(plan.shard_of_host.size(), topo.host_count());
  // Every host of a stub domain lands on the same shard — the property the
  // lookahead bound rests on (any cross-shard path crosses two
  // stub-transit links).
  std::vector<int> domain_shard(topo.params.total_stub_domains(), -1);
  for (std::size_t h = 0; h < topo.host_count(); ++h) {
    const std::size_t d = topo.domain_of[topo.host_router[h]];
    const int s = static_cast<int>(plan.shard_of_host[h]);
    if (domain_shard[d] < 0) domain_shard[d] = s;
    EXPECT_EQ(domain_shard[d], s) << "host " << h << " splits domain " << d;
  }
}

TEST(ShardPlan, CoversAllHostsAndBalances) {
  const net::TransitStubTopology topo = SmallTopo();
  const net::ShardPlan plan = net::PlanShards(topo, 4);
  ASSERT_EQ(plan.hosts_per_shard.size(), 4u);
  std::size_t total = 0;
  std::vector<std::size_t> counted(4, 0);
  for (std::uint32_t s : plan.shard_of_host) {
    ASSERT_LT(s, 4u);
    ++counted[s];
  }
  std::size_t largest_domain = 0;
  std::vector<std::size_t> domain_hosts(topo.params.total_stub_domains(), 0);
  for (std::size_t h = 0; h < topo.host_count(); ++h) {
    const std::size_t d = topo.domain_of[topo.host_router[h]];
    largest_domain = std::max(largest_domain, ++domain_hosts[d]);
  }
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(plan.hosts_per_shard[s], counted[s]);
    total += plan.hosts_per_shard[s];
    EXPECT_GT(plan.hosts_per_shard[s], 0u);
  }
  EXPECT_EQ(total, topo.host_count());
  // Greedy bin-packing of whole domains balances to within one domain.
  const auto [lo, hi] = std::minmax_element(plan.hosts_per_shard.begin(),
                                            plan.hosts_per_shard.end());
  EXPECT_LE(*hi - *lo, largest_domain);
}

TEST(ShardPlan, IsDeterministic) {
  const net::TransitStubTopology topo = SmallTopo();
  const net::ShardPlan a = net::PlanShards(topo, 6);
  const net::ShardPlan b = net::PlanShards(topo, 6);
  EXPECT_EQ(a.shard_of_host, b.shard_of_host);
  EXPECT_EQ(a.hosts_per_shard, b.hosts_per_shard);
}

TEST(ShardPlan, RejectsMoreShardsThanPopulatedDomains) {
  const net::TransitStubTopology topo = SmallTopo();
  EXPECT_THROW(net::PlanShards(topo, topo.host_count() + 1),
               util::CheckError);
}

// --------------------------------------------------------- ShardMailbox --

TEST(ShardMailbox, DrainsInCanonicalOrder) {
  ShardedOptions opts;
  opts.shards = 3;
  opts.lookahead_ms = 10.0;
  opts.seed = 7;
  opts.threads = 1;
  ShardedSimulation ssim(opts);

  // Post cross-shard events in scrambled call order; the exchange must
  // deliver them in (time, src_shard, per-src send order), independent of
  // who posted first.
  std::vector<int> order;
  const auto tag = [&order](int t) {
    return [&order, t] { order.push_back(t); };
  };
  ssim.Post(2, 0, 15.0, tag(20));
  ssim.Post(0, 0, 25.0, tag(3));
  ssim.Post(1, 0, 15.0, tag(10));
  ssim.Post(0, 0, 15.0, tag(1));
  ssim.Post(0, 0, 15.0, tag(2));
  ssim.Post(2, 0, 25.0, tag(23));

  EXPECT_EQ(ssim.RunUntil(40.0), 6u);
  const std::vector<int> want = {1, 2, 10, 20, 3, 23};
  EXPECT_EQ(order, want);
  EXPECT_EQ(ssim.cross_shard_messages(), 6u);
  EXPECT_GE(ssim.windows(), 1u);
  EXPECT_DOUBLE_EQ(ssim.now(), 40.0);
}

TEST(ShardMailbox, ChecksTheLookaheadContract) {
  // A cross-shard transport send whose delay undershoots the lookahead is
  // a correctness bug (it would land inside the receiver's current
  // window); the kernel rejects it loudly instead of delivering late.
  ShardedOptions opts;
  opts.shards = 2;
  opts.lookahead_ms = 10.0;
  opts.threads = 1;
  ShardedSimulation ssim(opts);
  ssim.SetHostShards({0, 1});

  ssim.shard(0).At(5.0, [&ssim] {
    Message m;
    m.src_host = 0;
    m.dst_host = 1;
    m.bytes = 8;
    Transport::SendOptions so;
    so.delay_override_ms = 1.0;  // deliver at 6 < window end 10
    ssim.shard(0).transport().Send(m, [] {}, so);
  });
  EXPECT_THROW(ssim.RunUntil(20.0), util::CheckError);
}

TEST(ShardMailbox, AcceptsDelaysAtTheBound) {
  ShardedOptions opts;
  opts.shards = 2;
  opts.lookahead_ms = 10.0;
  opts.threads = 1;
  ShardedSimulation ssim(opts);
  ssim.SetHostShards({0, 1});

  bool delivered = false;
  ssim.shard(0).At(0.0, [&ssim, &delivered] {
    Message m;
    m.src_host = 0;
    m.dst_host = 1;
    m.bytes = 8;
    Transport::SendOptions so;
    so.delay_override_ms = 10.0;  // deliver exactly at the window end
    ssim.shard(0).transport().Send(m, [&delivered] { delivered = true; }, so);
  });
  ssim.RunUntil(30.0);
  EXPECT_TRUE(delivered);
  EXPECT_EQ(ssim.cross_shard_messages(), 1u);
  // The receiving shard accounted the delivery.
  EXPECT_EQ(ssim.MergedTransportStats().Total().delivered, 1u);
  EXPECT_EQ(ssim.MergedTransportStats().Total().sent, 1u);
}

// -------------------------------------------------- ShardSerialIdentity --

struct StackRunLog {
  std::string metrics_json;
  std::string trace_text;
  std::size_t fired = 0;
};

std::string ReadAll(std::FILE* f) {
  std::rewind(f);
  std::string out;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  return out;
}

// The SchedulerAB protocol-stack workload, restricted to the
// shard-compatible configuration (unsynchronised SOMO gather, no
// dissemination): DHT heartbeats + SOMO over the shared transport with
// jitter fault injection. `sharded` runs it on a 1-shard ShardedSimulation
// with BindShard wired (the bound single-instance path must equal the
// unbound serial path byte for byte).
StackRunLog RunStack(bool sharded) {
  constexpr std::uint64_t kSeed = 321;
  constexpr std::size_t kHosts = 24;
  StackRunLog log;

  std::unique_ptr<ShardedSimulation> ssim;
  std::unique_ptr<Simulation> serial;
  if (sharded) {
    ShardedOptions opts;
    opts.shards = 1;
    opts.seed = kSeed;
    ssim = std::make_unique<ShardedSimulation>(opts);
    ssim->SetHostShards(std::vector<std::uint32_t>(kHosts, 0));
  } else {
    serial = std::make_unique<Simulation>(kSeed);
  }
  Simulation& sim = sharded ? ssim->shard(0) : *serial;
  sim.EnableMetrics();
  TraceSink trace;
  sim.transport().set_trace(&trace);
  sim.transport().faults().jitter_ms = 2.0;

  dht::Ring ring(8);
  for (std::size_t i = 0; i < kHosts; ++i) ring.JoinHashed(i);
  ring.StabilizeAll();

  dht::HeartbeatProtocol hb(sim, ring);
  somo::SomoConfig cfg;
  cfg.fanout = 4;
  cfg.report_interval_ms = 1000.0;
  somo::SomoProtocol somo(sim, ring, cfg, [&](dht::NodeIndex n) {
    somo::NodeReport r;
    r.node = n;
    r.host = ring.node(n).host();
    r.generated_at = sim.now();
    r.degrees.total = 4;
    return r;
  });
  if (sharded) {
    hb.BindShard(0, &ssim->host_shards(), {&hb});
    somo.BindShard(0, &ssim->host_shards(), {&somo});
  }
  hb.Start();
  somo.Start();

  log.fired = sharded ? ssim->RunUntil(15000.0)
                      : (sim.RunUntil(15000.0), sim.fired_events());
  log.metrics_json = sim.metrics().SnapshotJson();

  std::FILE* f = std::tmpfile();
  P2P_CHECK(f != nullptr);
  trace.WriteText(f);
  log.trace_text = ReadAll(f);
  std::fclose(f);
  return log;
}

TEST(ShardSerialIdentity, OneShardMatchesSerialKernelByteForByte) {
  const StackRunLog serial = RunStack(/*sharded=*/false);
  const StackRunLog one_shard = RunStack(/*sharded=*/true);
  EXPECT_GT(serial.fired, 0u);
  EXPECT_EQ(serial.fired, one_shard.fired);
  EXPECT_EQ(serial.metrics_json, one_shard.metrics_json);
  EXPECT_EQ(serial.trace_text, one_shard.trace_text);
  // Non-vacuous: the stack actually ran.
  EXPECT_NE(serial.metrics_json.find("dht.heartbeat.sent"), std::string::npos);
  EXPECT_NE(serial.metrics_json.find("somo.messages"), std::string::npos);
}

// ------------------------------------------------------ ShardDeterminism --

struct ShardedRunLog {
  std::string merged_json;
  std::vector<std::string> shard_json;
  std::size_t fired = 0;
  std::size_t windows = 0;
  std::size_t cross = 0;
};

// A bound two-shard protocol run over a synthetic host split. The
// lookahead (10 ms) underruns every oracle-less delay in play (heartbeat
// fallback 50 ms, SOMO hop 200 ms; jitter only adds), so the contract
// holds without a topology.
ShardedRunLog RunTwoShards(std::uint64_t seed, std::size_t threads) {
  constexpr std::size_t kHosts = 24;
  ShardedRunLog log;

  ShardedOptions opts;
  opts.shards = 2;
  opts.lookahead_ms = 10.0;
  opts.seed = seed;
  opts.threads = threads;
  ShardedSimulation ssim(opts);
  std::vector<std::uint32_t> shard_of_host(kHosts);
  for (std::size_t h = 0; h < kHosts; ++h)
    shard_of_host[h] = static_cast<std::uint32_t>(h % 2);
  ssim.SetHostShards(std::move(shard_of_host));

  dht::Ring ring(8);
  for (std::size_t i = 0; i < kHosts; ++i) ring.JoinHashed(i);
  ring.StabilizeAll();

  std::vector<std::unique_ptr<dht::HeartbeatProtocol>> hbs;
  std::vector<std::unique_ptr<somo::SomoProtocol>> somos;
  for (std::size_t s = 0; s < 2; ++s) {
    Simulation& ssh = ssim.shard(s);
    ssh.EnableMetrics();
    ssh.transport().faults().jitter_ms = 2.0;
    hbs.push_back(std::make_unique<dht::HeartbeatProtocol>(ssh, ring));
    somo::SomoConfig cfg;
    cfg.fanout = 4;
    cfg.report_interval_ms = 1000.0;
    somos.push_back(std::make_unique<somo::SomoProtocol>(
        ssh, ring, cfg, [&ring, &ssh](dht::NodeIndex n) {
          somo::NodeReport r;
          r.node = n;
          r.host = ring.node(n).host();
          r.generated_at = ssh.now();
          r.degrees.total = 4;
          return r;
        }));
  }
  for (std::size_t s = 0; s < 2; ++s) {
    hbs[s]->BindShard(static_cast<std::uint32_t>(s), &ssim.host_shards(),
                      {hbs[0].get(), hbs[1].get()});
    somos[s]->BindShard(static_cast<std::uint32_t>(s), &ssim.host_shards(),
                        {somos[0].get(), somos[1].get()});
  }
  for (auto& hb : hbs) hb->Start();
  for (auto& somo : somos) somo->Start();

  log.fired = ssim.RunUntil(15000.0);
  log.windows = ssim.windows();
  log.cross = ssim.cross_shard_messages();
  obs::MetricsRegistry merged;
  ssim.MergeMetrics(merged);
  log.merged_json = merged.SnapshotJson();
  for (std::size_t s = 0; s < 2; ++s)
    log.shard_json.push_back(ssim.shard(s).metrics().SnapshotJson());
  return log;
}

TEST(ShardDeterminism, SameSeedIsByteIdenticalAcrossThreadCounts) {
  const ShardedRunLog a = RunTwoShards(99, /*threads=*/1);
  const ShardedRunLog b = RunTwoShards(99, /*threads=*/2);
  const ShardedRunLog c = RunTwoShards(99, /*threads=*/2);
  // The run exercised the barrier for real.
  EXPECT_GT(a.cross, 0u);
  EXPECT_GT(a.windows, 100u);  // 15000 ms / 10 ms windows, minus idle skip
  // Thread schedule is unobservable: serialised and threaded runs agree...
  EXPECT_EQ(a.fired, b.fired);
  EXPECT_EQ(a.windows, b.windows);
  EXPECT_EQ(a.cross, b.cross);
  EXPECT_EQ(a.merged_json, b.merged_json);
  EXPECT_EQ(a.shard_json, b.shard_json);
  // ...and so do two threaded runs.
  EXPECT_EQ(b.fired, c.fired);
  EXPECT_EQ(b.merged_json, c.merged_json);
  EXPECT_EQ(b.shard_json, c.shard_json);
  EXPECT_NE(a.merged_json.find("dht.heartbeat.delivered"), std::string::npos);
  EXPECT_NE(a.merged_json.find("somo.messages"), std::string::npos);
}

TEST(ShardDeterminism, DifferentSeedsDiverge) {
  // Guard against vacuous equality above: reseeding reshuffles jitter and
  // timer phases, which must show up in the merged counters.
  const ShardedRunLog a = RunTwoShards(99, /*threads=*/1);
  const ShardedRunLog b = RunTwoShards(100, /*threads=*/1);
  EXPECT_NE(a.merged_json, b.merged_json);
}

}  // namespace
}  // namespace p2p::sim
