// Sharded-kernel tests (all suites prefixed "Shard" so the ThreadSanitizer
// stage in tools/run_tests.sh can select them with --gtest_filter=Shard*):
//  * ShardSeed stream splitting (serial identity at one shard),
//  * net::PlanShards placement properties and the structural lookahead,
//  * mailbox exchange in the canonical (time, src_shard, seq) order and the
//    per-message lookahead CHECK,
//  * the 1-shard differential against the serial kernel (event count,
//    metrics snapshot, trace bytes — the SchedulerAB methodology),
//  * same-seed multi-shard byte-identity, independent of the thread count,
//  * the coalesced-vs-per-message exchange differential and its edge cases
//    (empty outboxes, one active pair, everything in one window),
//  * per-pair lookahead matrices: byte-identity against the fixed-window
//    baseline with fewer barriers, per-message rejection of unsound
//    entries, and ExtractLookahead's exactness/soundness against the
//    brute-force oracle minimum on randomized multihomed topologies.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "dht/heartbeat.h"
#include "dht/ring.h"
#include "net/latency_oracle.h"
#include "net/shard_plan.h"
#include "net/transit_stub.h"
#include "obs/metrics.h"
#include "sim/sharded.h"
#include "sim/simulation.h"
#include "sim/trace.h"
#include "sim/transport.h"
#include "somo/somo.h"
#include "test_support.h"
#include "util/check.h"
#include "util/rng.h"

namespace p2p::sim {
namespace {

// ------------------------------------------------------------ ShardSeed --

TEST(ShardSeed, OneShardRunsOnTheMasterSeed) {
  // The serial-equivalence contract: a 1-shard ShardedSimulation must draw
  // the exact RNG stream of Simulation(seed).
  for (std::uint64_t seed : {0ULL, 1ULL, 321ULL, 0xdeadbeefULL}) {
    EXPECT_EQ(ShardSeed(seed, 0, 1), seed);
  }
}

TEST(ShardSeed, SplitsDistinctStreams) {
  const std::uint64_t seed = 4242;
  std::set<std::uint64_t> seen;
  for (std::size_t s = 0; s < 8; ++s) {
    seen.insert(ShardSeed(seed, s, 8));
  }
  EXPECT_EQ(seen.size(), 8u);
  // The split also keys on the shard count, so resharding reshuffles every
  // stream instead of giving shard 0 the same history at every count.
  EXPECT_NE(ShardSeed(seed, 1, 2), ShardSeed(seed, 1, 4));
}

// ------------------------------------------------------------ ShardPlan --

net::TransitStubTopology SmallTopo() {
  util::Rng rng(99);
  return net::GenerateTransitStub(p2p::testing::SmallTopologyParams(), rng);
}

TEST(ShardPlan, LookaheadIsTheStructuralBound) {
  const net::TransitStubTopology topo = SmallTopo();
  // 2 * (last_hop_min_ms + stub_transit_link_ms) = 2 * (3 + 25).
  EXPECT_DOUBLE_EQ(net::ShardLookaheadMs(topo.params), 56.0);
  EXPECT_DOUBLE_EQ(net::PlanShards(topo, 1).lookahead_ms, 56.0);
  EXPECT_DOUBLE_EQ(net::PlanShards(topo, 4).lookahead_ms, 56.0);
}

TEST(ShardPlan, PartitionsAlongWholeStubDomains) {
  const net::TransitStubTopology topo = SmallTopo();
  const net::ShardPlan plan = net::PlanShards(topo, 4);
  ASSERT_EQ(plan.shard_of_host.size(), topo.host_count());
  // Every host of a stub domain lands on the same shard — the property the
  // lookahead bound rests on (any cross-shard path crosses two
  // stub-transit links).
  std::vector<int> domain_shard(topo.params.total_stub_domains(), -1);
  for (std::size_t h = 0; h < topo.host_count(); ++h) {
    const std::size_t d = topo.domain_of[topo.host_router[h]];
    const int s = static_cast<int>(plan.shard_of_host[h]);
    if (domain_shard[d] < 0) domain_shard[d] = s;
    EXPECT_EQ(domain_shard[d], s) << "host " << h << " splits domain " << d;
  }
}

TEST(ShardPlan, CoversAllHostsAndBalances) {
  const net::TransitStubTopology topo = SmallTopo();
  const net::ShardPlan plan = net::PlanShards(topo, 4);
  ASSERT_EQ(plan.hosts_per_shard.size(), 4u);
  std::size_t total = 0;
  std::vector<std::size_t> counted(4, 0);
  for (std::uint32_t s : plan.shard_of_host) {
    ASSERT_LT(s, 4u);
    ++counted[s];
  }
  std::size_t largest_domain = 0;
  std::vector<std::size_t> domain_hosts(topo.params.total_stub_domains(), 0);
  for (std::size_t h = 0; h < topo.host_count(); ++h) {
    const std::size_t d = topo.domain_of[topo.host_router[h]];
    largest_domain = std::max(largest_domain, ++domain_hosts[d]);
  }
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(plan.hosts_per_shard[s], counted[s]);
    total += plan.hosts_per_shard[s];
    EXPECT_GT(plan.hosts_per_shard[s], 0u);
  }
  EXPECT_EQ(total, topo.host_count());
  // Greedy bin-packing of whole domains balances to within one domain.
  const auto [lo, hi] = std::minmax_element(plan.hosts_per_shard.begin(),
                                            plan.hosts_per_shard.end());
  EXPECT_LE(*hi - *lo, largest_domain);
}

TEST(ShardPlan, IsDeterministic) {
  const net::TransitStubTopology topo = SmallTopo();
  const net::ShardPlan a = net::PlanShards(topo, 6);
  const net::ShardPlan b = net::PlanShards(topo, 6);
  EXPECT_EQ(a.shard_of_host, b.shard_of_host);
  EXPECT_EQ(a.hosts_per_shard, b.hosts_per_shard);
}

TEST(ShardPlan, RejectsMoreShardsThanPopulatedDomains) {
  const net::TransitStubTopology topo = SmallTopo();
  EXPECT_THROW(net::PlanShards(topo, topo.host_count() + 1),
               util::CheckError);
}

// --------------------------------------------------------- ShardMailbox --

TEST(ShardMailbox, DrainsInCanonicalOrder) {
  ShardedOptions opts;
  opts.shards = 3;
  opts.lookahead_ms = 10.0;
  opts.seed = 7;
  opts.threads = 1;
  ShardedSimulation ssim(opts);

  // Post cross-shard events in scrambled call order; the exchange must
  // deliver them in (time, src_shard, per-src send order), independent of
  // who posted first.
  std::vector<int> order;
  const auto tag = [&order](int t) {
    return [&order, t] { order.push_back(t); };
  };
  ssim.Post(2, 0, 15.0, tag(20));
  ssim.Post(0, 0, 25.0, tag(3));
  ssim.Post(1, 0, 15.0, tag(10));
  ssim.Post(0, 0, 15.0, tag(1));
  ssim.Post(0, 0, 15.0, tag(2));
  ssim.Post(2, 0, 25.0, tag(23));

  EXPECT_EQ(ssim.RunUntil(40.0), 6u);
  const std::vector<int> want = {1, 2, 10, 20, 3, 23};
  EXPECT_EQ(order, want);
  EXPECT_EQ(ssim.cross_shard_messages(), 6u);
  EXPECT_GE(ssim.windows(), 1u);
  EXPECT_DOUBLE_EQ(ssim.now(), 40.0);
}

TEST(ShardMailbox, ChecksTheLookaheadContract) {
  // A cross-shard transport send whose delay undershoots the lookahead is
  // a correctness bug (it would land inside the receiver's current
  // window); the kernel rejects it loudly instead of delivering late.
  ShardedOptions opts;
  opts.shards = 2;
  opts.lookahead_ms = 10.0;
  opts.threads = 1;
  ShardedSimulation ssim(opts);
  ssim.SetHostShards({0, 1});

  ssim.shard(0).At(5.0, [&ssim] {
    Message m;
    m.src_host = 0;
    m.dst_host = 1;
    m.bytes = 8;
    Transport::SendOptions so;
    so.delay_override_ms = 1.0;  // deliver at 6 < window end 10
    ssim.shard(0).transport().Send(m, [] {}, so);
  });
  EXPECT_THROW(ssim.RunUntil(20.0), util::CheckError);
}

TEST(ShardMailbox, AcceptsDelaysAtTheBound) {
  ShardedOptions opts;
  opts.shards = 2;
  opts.lookahead_ms = 10.0;
  opts.threads = 1;
  ShardedSimulation ssim(opts);
  ssim.SetHostShards({0, 1});

  bool delivered = false;
  ssim.shard(0).At(0.0, [&ssim, &delivered] {
    Message m;
    m.src_host = 0;
    m.dst_host = 1;
    m.bytes = 8;
    Transport::SendOptions so;
    so.delay_override_ms = 10.0;  // deliver exactly at the window end
    ssim.shard(0).transport().Send(m, [&delivered] { delivered = true; }, so);
  });
  ssim.RunUntil(30.0);
  EXPECT_TRUE(delivered);
  EXPECT_EQ(ssim.cross_shard_messages(), 1u);
  // The receiving shard accounted the delivery.
  EXPECT_EQ(ssim.MergedTransportStats().Total().delivered, 1u);
  EXPECT_EQ(ssim.MergedTransportStats().Total().sent, 1u);
}

// -------------------------------------------------- ShardSerialIdentity --

struct StackRunLog {
  std::string metrics_json;
  std::string trace_text;
  std::size_t fired = 0;
};

std::string ReadAll(std::FILE* f) {
  std::rewind(f);
  std::string out;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  return out;
}

// The SchedulerAB protocol-stack workload, restricted to the
// shard-compatible configuration (unsynchronised SOMO gather, no
// dissemination): DHT heartbeats + SOMO over the shared transport with
// jitter fault injection. `sharded` runs it on a 1-shard ShardedSimulation
// with BindShard wired (the bound single-instance path must equal the
// unbound serial path byte for byte).
StackRunLog RunStack(bool sharded) {
  constexpr std::uint64_t kSeed = 321;
  constexpr std::size_t kHosts = 24;
  StackRunLog log;

  std::unique_ptr<ShardedSimulation> ssim;
  std::unique_ptr<Simulation> serial;
  if (sharded) {
    ShardedOptions opts;
    opts.shards = 1;
    opts.seed = kSeed;
    ssim = std::make_unique<ShardedSimulation>(opts);
    ssim->SetHostShards(std::vector<std::uint32_t>(kHosts, 0));
  } else {
    serial = std::make_unique<Simulation>(kSeed);
  }
  Simulation& sim = sharded ? ssim->shard(0) : *serial;
  sim.EnableMetrics();
  TraceSink trace;
  sim.transport().set_trace(&trace);
  sim.transport().faults().jitter_ms = 2.0;

  dht::Ring ring(8);
  for (std::size_t i = 0; i < kHosts; ++i) ring.JoinHashed(i);
  ring.StabilizeAll();

  dht::HeartbeatProtocol hb(sim, ring);
  somo::SomoConfig cfg;
  cfg.fanout = 4;
  cfg.report_interval_ms = 1000.0;
  somo::SomoProtocol somo(sim, ring, cfg, [&](dht::NodeIndex n) {
    somo::NodeReport r;
    r.node = n;
    r.host = ring.node(n).host();
    r.generated_at = sim.now();
    r.degrees.total = 4;
    return r;
  });
  if (sharded) {
    hb.BindShard(0, &ssim->host_shards(), {&hb});
    somo.BindShard(0, &ssim->host_shards(), {&somo});
  }
  hb.Start();
  somo.Start();

  log.fired = sharded ? ssim->RunUntil(15000.0)
                      : (sim.RunUntil(15000.0), sim.fired_events());
  log.metrics_json = sim.metrics().SnapshotJson();

  std::FILE* f = std::tmpfile();
  P2P_CHECK(f != nullptr);
  trace.WriteText(f);
  log.trace_text = ReadAll(f);
  std::fclose(f);
  return log;
}

TEST(ShardSerialIdentity, OneShardMatchesSerialKernelByteForByte) {
  const StackRunLog serial = RunStack(/*sharded=*/false);
  const StackRunLog one_shard = RunStack(/*sharded=*/true);
  EXPECT_GT(serial.fired, 0u);
  EXPECT_EQ(serial.fired, one_shard.fired);
  EXPECT_EQ(serial.metrics_json, one_shard.metrics_json);
  EXPECT_EQ(serial.trace_text, one_shard.trace_text);
  // Non-vacuous: the stack actually ran.
  EXPECT_NE(serial.metrics_json.find("dht.heartbeat.sent"), std::string::npos);
  EXPECT_NE(serial.metrics_json.find("somo.messages"), std::string::npos);
}

// ------------------------------------------------------ ShardDeterminism --

struct ShardedRunLog {
  std::string merged_json;
  std::vector<std::string> shard_json;
  std::size_t fired = 0;
  std::size_t windows = 0;
  std::size_t cross = 0;
};

// A bound two-shard protocol run over a synthetic host split. The
// lookahead (10 ms) underruns every oracle-less delay in play (heartbeat
// fallback 50 ms, SOMO hop 200 ms; jitter only adds), so the contract
// holds without a topology — as does any `matrix` (2x2 per-pair
// lookahead; empty = the uniform 10 ms path) whose entries stay below
// the 50 ms heartbeat floor.
ShardedRunLog RunTwoShards(std::uint64_t seed, std::size_t threads,
                           bool coalesced = true,
                           std::vector<double> matrix = {}) {
  constexpr std::size_t kHosts = 24;
  ShardedRunLog log;

  ShardedOptions opts;
  opts.shards = 2;
  opts.lookahead_ms = 10.0;
  opts.lookahead_matrix = std::move(matrix);
  opts.seed = seed;
  opts.threads = threads;
  opts.coalesced_exchange = coalesced;
  ShardedSimulation ssim(opts);
  std::vector<std::uint32_t> shard_of_host(kHosts);
  for (std::size_t h = 0; h < kHosts; ++h)
    shard_of_host[h] = static_cast<std::uint32_t>(h % 2);
  ssim.SetHostShards(std::move(shard_of_host));

  dht::Ring ring(8);
  for (std::size_t i = 0; i < kHosts; ++i) ring.JoinHashed(i);
  ring.StabilizeAll();

  std::vector<std::unique_ptr<dht::HeartbeatProtocol>> hbs;
  std::vector<std::unique_ptr<somo::SomoProtocol>> somos;
  for (std::size_t s = 0; s < 2; ++s) {
    Simulation& ssh = ssim.shard(s);
    ssh.EnableMetrics();
    ssh.transport().faults().jitter_ms = 2.0;
    hbs.push_back(std::make_unique<dht::HeartbeatProtocol>(ssh, ring));
    somo::SomoConfig cfg;
    cfg.fanout = 4;
    cfg.report_interval_ms = 1000.0;
    somos.push_back(std::make_unique<somo::SomoProtocol>(
        ssh, ring, cfg, [&ring, &ssh](dht::NodeIndex n) {
          somo::NodeReport r;
          r.node = n;
          r.host = ring.node(n).host();
          r.generated_at = ssh.now();
          r.degrees.total = 4;
          return r;
        }));
  }
  for (std::size_t s = 0; s < 2; ++s) {
    hbs[s]->BindShard(static_cast<std::uint32_t>(s), &ssim.host_shards(),
                      {hbs[0].get(), hbs[1].get()});
    somos[s]->BindShard(static_cast<std::uint32_t>(s), &ssim.host_shards(),
                        {somos[0].get(), somos[1].get()});
  }
  for (auto& hb : hbs) hb->Start();
  for (auto& somo : somos) somo->Start();

  log.fired = ssim.RunUntil(15000.0);
  log.windows = ssim.windows();
  log.cross = ssim.cross_shard_messages();
  obs::MetricsRegistry merged;
  ssim.MergeMetrics(merged);
  log.merged_json = merged.SnapshotJson();
  for (std::size_t s = 0; s < 2; ++s)
    log.shard_json.push_back(ssim.shard(s).metrics().SnapshotJson());
  return log;
}

TEST(ShardDeterminism, SameSeedIsByteIdenticalAcrossThreadCounts) {
  const ShardedRunLog a = RunTwoShards(99, /*threads=*/1);
  const ShardedRunLog b = RunTwoShards(99, /*threads=*/2);
  const ShardedRunLog c = RunTwoShards(99, /*threads=*/2);
  const ShardedRunLog d = RunTwoShards(99, /*threads=*/8);
  // The run exercised the barrier for real.
  EXPECT_GT(a.cross, 0u);
  EXPECT_GT(a.windows, 100u);  // 15000 ms / 10 ms windows, minus idle skip
  // Thread schedule is unobservable: serialised and threaded runs agree...
  EXPECT_EQ(a.fired, b.fired);
  EXPECT_EQ(a.windows, b.windows);
  EXPECT_EQ(a.cross, b.cross);
  EXPECT_EQ(a.merged_json, b.merged_json);
  EXPECT_EQ(a.shard_json, b.shard_json);
  // ...and so do two threaded runs...
  EXPECT_EQ(b.fired, c.fired);
  EXPECT_EQ(b.merged_json, c.merged_json);
  EXPECT_EQ(b.shard_json, c.shard_json);
  // ...and an oversubscribed run (more threads than shards or cores).
  EXPECT_EQ(a.fired, d.fired);
  EXPECT_EQ(a.merged_json, d.merged_json);
  EXPECT_EQ(a.shard_json, d.shard_json);
  EXPECT_NE(a.merged_json.find("dht.heartbeat.delivered"), std::string::npos);
  EXPECT_NE(a.merged_json.find("somo.messages"), std::string::npos);
}

TEST(ShardDeterminism, DifferentSeedsDiverge) {
  // Guard against vacuous equality above: reseeding reshuffles jitter and
  // timer phases, which must show up in the merged counters.
  const ShardedRunLog a = RunTwoShards(99, /*threads=*/1);
  const ShardedRunLog b = RunTwoShards(100, /*threads=*/1);
  EXPECT_NE(a.merged_json, b.merged_json);
}

// -------------------------------------------------------- ShardExchange --

TEST(ShardExchange, PerMessagePathMatchesCoalescedByteForByte) {
  // The retained concatenate+stable_sort drain and the coalesced SoA
  // k-way-merge drain must produce identical schedules — every counter,
  // every window, every delivery.
  const ShardedRunLog coalesced =
      RunTwoShards(99, /*threads=*/2, /*coalesced=*/true);
  const ShardedRunLog per_message =
      RunTwoShards(99, /*threads=*/2, /*coalesced=*/false);
  EXPECT_GT(coalesced.cross, 0u);
  EXPECT_EQ(coalesced.fired, per_message.fired);
  EXPECT_EQ(coalesced.windows, per_message.windows);
  EXPECT_EQ(coalesced.cross, per_message.cross);
  EXPECT_EQ(coalesced.merged_json, per_message.merged_json);
  EXPECT_EQ(coalesced.shard_json, per_message.shard_json);
}

TEST(ShardExchange, LocalOnlyWindowsExchangeNothing) {
  // Every outbox column stays empty: the barrier must cope with windows
  // that move no messages at all and still advance virtual time.
  ShardedOptions opts;
  opts.shards = 3;
  opts.lookahead_ms = 10.0;
  opts.seed = 11;
  opts.threads = 2;
  ShardedSimulation ssim(opts);
  std::size_t fired[3] = {0, 0, 0};
  for (std::size_t s = 0; s < 3; ++s) {
    for (int k = 0; k < 10; ++k) {
      ssim.shard(s).At(5.0 + 10.0 * k, [&fired, s] { ++fired[s]; });
    }
  }
  EXPECT_EQ(ssim.RunUntil(200.0), 30u);
  EXPECT_EQ(ssim.cross_shard_messages(), 0u);
  EXPECT_GE(ssim.windows(), 1u);
  for (std::size_t s = 0; s < 3; ++s) EXPECT_EQ(fired[s], 10u);
}

TEST(ShardExchange, SingleActivePairDrainsSorted) {
  // Only one (src, dst) column ever fills; posts arrive time-descending
  // and must still deliver ascending.
  ShardedOptions opts;
  opts.shards = 4;
  opts.lookahead_ms = 10.0;
  opts.seed = 12;
  opts.threads = 2;
  ShardedSimulation ssim(opts);
  std::vector<int> order;
  const auto tag = [&order](int t) {
    return [&order, t] { order.push_back(t); };
  };
  for (int k = 9; k >= 0; --k) {
    ssim.Post(2, 1, 15.0 + 10.0 * k, tag(k));
  }
  EXPECT_EQ(ssim.RunUntil(150.0), 10u);
  EXPECT_EQ(ssim.cross_shard_messages(), 10u);
  const std::vector<int> want = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  EXPECT_EQ(order, want);
}

TEST(ShardExchange, AllMessagesInOneWindowDrainInCanonicalOrder) {
  // Both senders dump everything into the same lockstep window, with a
  // deliberate cross-source tie at every delivery time: the merge must
  // order ties by src shard, then per-src send order — one window, one
  // barrier, 32 messages.
  ShardedOptions opts;
  opts.shards = 2;
  opts.lookahead_ms = 1000.0;
  opts.seed = 13;
  opts.threads = 1;
  ShardedSimulation ssim(opts);
  std::vector<int> order;
  const auto tag = [&order](int t) {
    return [&order, t] { order.push_back(t); };
  };
  for (int k = 0; k < 16; ++k) {
    const int slot = (k * 5) % 16;  // scrambled emission order
    const double t = 1100.0 + 50.0 * slot;
    ssim.Post(1, 0, t, tag(1000 + slot));
    ssim.Post(0, 0, t, tag(slot));  // same time: src 0 must precede src 1
  }
  EXPECT_EQ(ssim.RunUntil(2000.0), 32u);
  ASSERT_EQ(order.size(), 32u);
  for (int slot = 0; slot < 16; ++slot) {
    EXPECT_EQ(order[2 * slot], slot);
    EXPECT_EQ(order[2 * slot + 1], 1000 + slot);
  }
}

// ------------------------------------------------- ShardLookaheadMatrix --

TEST(ShardLookaheadMatrix, MatrixRunMatchesFixedRunWithFewerWindows) {
  // A sound non-uniform matrix (every entry under the 50 ms heartbeat
  // floor) must reproduce the fixed-lookahead schedule byte for byte while
  // advancing in fewer, larger windows — the tentpole's whole point.
  const ShardedRunLog fixed = RunTwoShards(99, /*threads=*/2);
  const ShardedRunLog matrix =
      RunTwoShards(99, /*threads=*/2, /*coalesced=*/true, {0.0, 30.0, 15.0, 0.0});
  EXPECT_EQ(fixed.fired, matrix.fired);
  EXPECT_EQ(fixed.cross, matrix.cross);
  EXPECT_EQ(fixed.merged_json, matrix.merged_json);
  EXPECT_EQ(fixed.shard_json, matrix.shard_json);
  // >= 1.5x fewer barriers (the bounded-lag recurrence alternates 15/30 ms
  // advances against the uniform 10 ms).
  EXPECT_LE(matrix.windows * 3, fixed.windows * 2);
}

TEST(ShardLookaheadMatrix, UnsoundMatrixEntryIsRejectedPerMessage) {
  // An overclaimed pair bound (60 ms > the true 50 ms heartbeat delay)
  // must trip the per-message extraction validation, not deliver late.
  EXPECT_THROW(
      RunTwoShards(99, /*threads=*/1, /*coalesced=*/true, {0.0, 60.0, 60.0, 0.0}),
      util::CheckError);
}

TEST(ShardLookaheadMatrix, RejectsMalformedMatrices) {
  ShardedOptions opts;
  opts.shards = 2;
  opts.lookahead_ms = 10.0;
  opts.lookahead_matrix = {0.0, 10.0, 10.0};  // 3 cells for 2 shards
  EXPECT_THROW(ShardedSimulation{opts}, util::CheckError);
  opts.lookahead_matrix = {0.0, 10.0, 0.0, 0.0};  // zero off-diagonal
  EXPECT_THROW(ShardedSimulation{opts}, util::CheckError);
}

// --------------------------------------------- ShardLookaheadExtraction --

net::TransitStubTopology MultihomedTopo(std::uint64_t seed,
                                        std::size_t hosts = 120) {
  net::TransitStubParams p = p2p::testing::SmallTopologyParams(hosts);
  // Multi-homed stub domains give every domain up to two gateways — the
  // configuration that makes the extraction's gateway reduction earn its
  // keep (and the one the 10k+ presets run with).
  p.stub_multihome_prob = 0.5;
  util::Rng rng(seed);
  return net::GenerateTransitStub(p, rng);
}

TEST(ShardLookaheadExtraction, MatchesBruteForceOnSmallTopology) {
  const net::TransitStubTopology topo = MultihomedTopo(301);
  const net::LatencyOracle oracle(topo);
  net::ShardPlan plan = net::PlanShards(topo, 3);
  net::ExtractLookahead(topo, oracle, plan);
  ASSERT_EQ(plan.lookahead_matrix.size(), 9u);

  // The gateway reduction claims exactness: matrix[i][j] == min over
  // cross-shard host pairs of oracle latency (floored at the structural
  // bound). Check against the O(hosts^2) brute force.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> brute(9, kInf);
  for (std::size_t a = 0; a < topo.host_count(); ++a) {
    for (std::size_t b = 0; b < topo.host_count(); ++b) {
      const std::uint32_t sa = plan.shard_of_host[a];
      const std::uint32_t sb = plan.shard_of_host[b];
      if (sa == sb) continue;
      double& cell = brute[sa * 3 + sb];
      cell = std::min(cell, oracle.Latency(a, b));
    }
  }
  double min_off_diag = kInf;
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      if (i == j) continue;
      const double expect = std::max(brute[i * 3 + j], plan.lookahead_ms);
      EXPECT_NEAR(plan.PairLookaheadMs(i, j), expect, 1e-9)
          << "pair (" << i << "," << j << ")";
      min_off_diag = std::min(min_off_diag, plan.PairLookaheadMs(i, j));
    }
  }
  EXPECT_DOUBLE_EQ(plan.extracted_lookahead_ms, min_off_diag);
  EXPECT_GE(plan.extracted_lookahead_ms, plan.lookahead_ms);
}

TEST(ShardLookaheadExtraction, SoundForRandomizedMultihomedPresets) {
  // The property the kernel's per-message CHECK rests on: for every
  // topology seed and shard count, each matrix entry is a lower bound on
  // every cross-shard host-pair latency the oracle can produce.
  for (const std::uint64_t seed : {401ULL, 402ULL, 403ULL}) {
    const net::TransitStubTopology topo = MultihomedTopo(seed, 90);
    const net::LatencyOracle oracle(topo);
    for (const std::size_t shards : {2UL, 4UL}) {
      net::ShardPlan plan = net::PlanShards(topo, shards);
      net::ExtractLookahead(topo, oracle, plan);
      for (std::size_t a = 0; a < topo.host_count(); ++a) {
        for (std::size_t b = 0; b < topo.host_count(); ++b) {
          const std::uint32_t sa = plan.shard_of_host[a];
          const std::uint32_t sb = plan.shard_of_host[b];
          if (sa == sb) continue;
          ASSERT_LE(plan.PairLookaheadMs(sa, sb),
                    oracle.Latency(a, b) + 1e-9)
              << "seed " << seed << " shards " << shards << " hosts " << a
              << "->" << b;
        }
      }
      // And it never loosens the structural bound.
      EXPECT_GE(plan.extracted_lookahead_ms, plan.lookahead_ms);
    }
  }
}

}  // namespace
}  // namespace p2p::sim
