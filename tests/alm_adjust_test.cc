#include <gtest/gtest.h>

#include <cmath>

#include "alm/adjust.h"
#include "alm/amcast.h"
#include "test_support.h"
#include "util/rng.h"

namespace p2p::alm {
namespace {

double Line(ParticipantId a, ParticipantId b) {
  return a > b ? static_cast<double>(a - b) : static_cast<double>(b - a);
}

TEST(Adjust, NeverIncreasesHeight) {
  auto& pool = p2p::testing::SharedSmallPool();
  util::Rng rng(3);
  for (int trial = 0; trial < 5; ++trial) {
    const auto idx = rng.SampleIndices(pool.size(), 18);
    AmcastInput in;
    in.degree_bounds = pool.degree_bounds();
    in.root = idx[0];
    in.members.assign(idx.begin() + 1, idx.end());
    auto r = BuildAmcastTree(in, pool.TrueLatencyFn());
    const double before = r.tree.Height(pool.TrueLatencyFn());
    const auto stats =
        AdjustTree(r.tree, in.degree_bounds, pool.TrueLatencyFn());
    EXPECT_LE(stats.final_height, before + 1e-9);
    EXPECT_DOUBLE_EQ(stats.initial_height, before);
    r.tree.Validate(in.degree_bounds);
  }
}

TEST(Adjust, ReparentMoveFixesObviousMistake) {
  // 0 → 1 → 2: node 2 would be better directly under the root.
  MulticastTree t(3);
  t.SetRoot(0);
  t.AddChild(0, 1);
  t.AddChild(1, 2);
  auto latency = [](ParticipantId a, ParticipantId b) -> double {
    if (a > b) std::swap(a, b);
    if (a == 0 && b == 1) return 10.0;
    if (a == 1 && b == 2) return 10.0;
    return 5.0;  // 0 ↔ 2 direct is cheap
  };
  const std::vector<int> bounds{3, 3, 3};
  const auto stats = AdjustTree(t, bounds, latency);
  EXPECT_GE(stats.reparent_moves, 1u);
  EXPECT_EQ(t.parent(2), 0u);
  EXPECT_DOUBLE_EQ(stats.final_height, 10.0);
}

TEST(Adjust, LeafSwapUsedWhenDegreesBlockReparent) {
  // Root (bound 1) — 1 — {2, 3}: highest node 3 cannot reparent anywhere
  // (everyone full), but swapping two leaves can pay off.
  auto latency = [](ParticipantId a, ParticipantId b) -> double {
    if (a > b) std::swap(a, b);
    // positions: 0 at 0, 1 at 10, 2 at 11, 3 at 30.
    auto pos = [](ParticipantId v) {
      switch (v) {
        case 0: return 0.0;
        case 1: return 10.0;
        case 2: return 11.0;
        default: return 30.0;
      }
    };
    return std::abs(pos(a) - pos(b));
  };
  MulticastTree t(4);
  t.SetRoot(0);
  t.AddChild(0, 1);
  t.AddChild(1, 2);
  t.AddChild(2, 3);
  const std::vector<int> bounds{1, 2, 2, 2};
  const double before = t.Height(latency);
  AdjustTree(t, bounds, latency);
  EXPECT_LE(t.Height(latency), before);
  t.Validate(bounds);
}

TEST(Adjust, RespectsDisabledMoves) {
  auto& pool = p2p::testing::SharedSmallPool();
  util::Rng rng(5);
  const auto idx = rng.SampleIndices(pool.size(), 16);
  AmcastInput in;
  in.degree_bounds = pool.degree_bounds();
  in.root = idx[0];
  in.members.assign(idx.begin() + 1, idx.end());
  auto r = BuildAmcastTree(in, pool.TrueLatencyFn());
  AdjustOptions opt;
  opt.enable_reparent = false;
  opt.enable_leaf_swap = false;
  opt.enable_subtree_swap = false;
  const auto stats =
      AdjustTree(r.tree, in.degree_bounds, pool.TrueLatencyFn(), opt);
  EXPECT_EQ(stats.total_moves(), 0u);
  EXPECT_DOUBLE_EQ(stats.initial_height, stats.final_height);
}

TEST(Adjust, MoveBudgetRespected) {
  auto& pool = p2p::testing::SharedSmallPool();
  util::Rng rng(7);
  const auto idx = rng.SampleIndices(pool.size(), 20);
  AmcastInput in;
  in.degree_bounds = pool.degree_bounds();
  in.root = idx[0];
  in.members.assign(idx.begin() + 1, idx.end());
  auto r = BuildAmcastTree(in, pool.TrueLatencyFn());
  AdjustOptions opt;
  opt.max_moves = 1;
  const auto stats =
      AdjustTree(r.tree, in.degree_bounds, pool.TrueLatencyFn(), opt);
  EXPECT_LE(stats.total_moves(), 1u);
}

TEST(Adjust, SingletonTreeIsStable) {
  MulticastTree t(1);
  t.SetRoot(0);
  const auto stats = AdjustTree(t, {5}, Line);
  EXPECT_EQ(stats.total_moves(), 0u);
}

TEST(Adjust, StarIsAlreadyOptimal) {
  MulticastTree t(5);
  t.SetRoot(0);
  for (ParticipantId v = 1; v < 5; ++v) t.AddChild(0, v);
  const std::vector<int> bounds(5, 9);
  const auto stats = AdjustTree(t, bounds, Line);
  EXPECT_EQ(stats.total_moves(), 0u);
  EXPECT_DOUBLE_EQ(stats.final_height, 4.0);
}

TEST(Adjust, DegreeBoundsHoldAfterManyRandomAdjusts) {
  auto& pool = p2p::testing::SharedSmallPool();
  util::Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 8 + rng.NextBounded(20);
    const auto idx = rng.SampleIndices(pool.size(), n);
    AmcastInput in;
    in.degree_bounds = pool.degree_bounds();
    in.root = idx[0];
    in.members.assign(idx.begin() + 1, idx.end());
    auto r = BuildAmcastTree(in, pool.TrueLatencyFn());
    AdjustTree(r.tree, in.degree_bounds, pool.TrueLatencyFn());
    r.tree.Validate(in.degree_bounds);
    EXPECT_EQ(r.tree.size(), n);
  }
}

}  // namespace
}  // namespace p2p::alm
