#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <thread>

#include "util/check.h"
#include "util/csv.h"
#include "util/histogram.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace p2p::util {
namespace {

// ---------------------------------------------------------------- check --

TEST(Check, PassingCheckDoesNothing) { P2P_CHECK(1 + 1 == 2); }

TEST(Check, FailingCheckThrowsCheckError) {
  EXPECT_THROW(P2P_CHECK(false), CheckError);
}

TEST(Check, MessageIncludesExpressionAndDetail) {
  try {
    P2P_CHECK_MSG(2 > 3, "because " << 42);
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("2 > 3"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("because 42"), std::string::npos);
  }
}

// ------------------------------------------------------------------ rng --

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Rng, SubstreamsAreIndependentAndDeterministic) {
  Rng base(7);
  Rng s1 = base.Substream(1);
  Rng s2 = base.Substream(2);
  Rng s1again = base.Substream(1);
  EXPECT_EQ(s1(), s1again());
  EXPECT_NE(s1(), s2());
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRespectsRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Uniform(3.0, 8.0);
    EXPECT_GE(x, 3.0);
    EXPECT_LT(x, 8.0);
  }
}

TEST(Rng, NextBoundedCoversRangeUniformly) {
  Rng rng(9);
  std::array<int, 10> counts{};
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBounded(10)];
  for (const int c : counts) {
    EXPECT_GT(c, kDraws / 10 * 0.9);
    EXPECT_LT(c, kDraws / 10 * 1.1);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_TRUE(seen.count(-2));
  EXPECT_TRUE(seen.count(2));
}

TEST(Rng, NormalHasRequestedMoments) {
  Rng rng(13);
  Accumulator acc;
  for (int i = 0; i < 50000; ++i) acc.Add(rng.Normal(10.0, 2.0));
  EXPECT_NEAR(acc.mean(), 10.0, 0.05);
  EXPECT_NEAR(acc.stddev(), 2.0, 0.05);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(17);
  Accumulator acc;
  for (int i = 0; i < 50000; ++i) acc.Add(rng.Exponential(0.25));
  EXPECT_NEAR(acc.mean(), 4.0, 0.1);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, ShufflePermutesAllElements) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(v);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
  Rng rng(29);
  const auto s = rng.SampleIndices(50, 10);
  EXPECT_EQ(s.size(), 10u);
  std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 10u);
  for (const auto i : s) EXPECT_LT(i, 50u);
}

TEST(Rng, SampleIndicesFullSet) {
  Rng rng(31);
  const auto s = rng.SampleIndices(5, 5);
  std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 5u);
}

TEST(Rng, Mix64IsDeterministic) { EXPECT_EQ(Mix64(42), Mix64(42)); }

// ---------------------------------------------------------------- stats --

TEST(Accumulator, EmptyIsZero) {
  Accumulator a;
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.variance(), 0.0);
}

TEST(Accumulator, MeanAndVariance) {
  Accumulator a;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.Add(x);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_NEAR(a.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
  EXPECT_DOUBLE_EQ(a.sum(), 40.0);
}

TEST(Accumulator, MergeMatchesSequential) {
  Accumulator a, b, all;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10;
    (i < 40 ? a : b).Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Accumulator, MergeWithEmpty) {
  Accumulator a, empty;
  a.Add(1.0);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50), 25.0);
  EXPECT_DOUBLE_EQ(Median(xs), 25.0);
}

TEST(Stats, PercentileSingleElement) {
  const std::vector<double> xs{7.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, 37.0), 7.0);
}

TEST(Stats, EmpiricalCdfEvalAndQuantile) {
  EmpiricalCdf cdf({3.0, 1.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.Eval(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.Eval(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.Eval(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.Eval(100), 1.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(1.0), 4.0);
}

// ------------------------------------------------------------ histogram --

TEST(Histogram, BinsAndCumulative) {
  Histogram h(0.0, 10.0, 5);
  for (double x = 0.5; x < 10; x += 1.0) h.Add(x);  // 2 per bin
  EXPECT_EQ(h.total(), 10u);
  for (std::size_t b = 0; b < 5; ++b) EXPECT_EQ(h.count(b), 2u);
  EXPECT_DOUBLE_EQ(h.CumulativeFraction(4), 1.0);
  EXPECT_DOUBLE_EQ(h.CumulativeFraction(0), 0.2);
}

TEST(Histogram, OutOfRangeGoesToOverflow) {
  Histogram h(0.0, 1.0, 2);
  h.Add(-0.5);
  h.Add(1.5);
  h.Add(0.5);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
}

// ------------------------------------------------------------------ csv --

TEST(Table, TextRenderingAligns) {
  Table t({"name", "value"});
  t.AddRow({std::string("a"), 1.5});
  t.AddRow({std::string("bb"), 10.25});
  const std::string text = t.ToText(2);
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("1.50"), std::string::npos);
  EXPECT_NE(text.find("10.25"), std::string::npos);
}

TEST(Table, CsvRendering) {
  Table t({"x", "y"});
  t.AddRow({static_cast<long long>(3), 2.5});
  EXPECT_EQ(t.ToCsv(1), "x,y\n3,2.5\n");
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.AddRow({1.0}), CheckError);
}

TEST(Table, WriteCsvRoundTripsThroughFile) {
  Table t({"k", "v"});
  t.AddRow({std::string("alpha"), 1.25});
  const std::string path = ::testing::TempDir() + "/p2p_table_test.csv";
  ASSERT_TRUE(t.WriteCsv(path, 2));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "k,v");
  EXPECT_EQ(line2, "alpha,1.25");
  std::remove(path.c_str());
}

TEST(Table, WriteCsvFailsOnBadPath) {
  Table t({"a"});
  EXPECT_FALSE(t.WriteCsv("/nonexistent-dir-zzz/file.csv"));
}

TEST(EnsureDir, CreatesNestedDirectoriesAndIsIdempotent) {
  const std::string base = ::testing::TempDir() + "/p2p_ensure_dir_test";
  std::filesystem::remove_all(base);
  const std::string nested = base + "/a/b/c";
  EXPECT_TRUE(EnsureDir(nested));
  EXPECT_TRUE(std::filesystem::is_directory(nested));
  EXPECT_TRUE(EnsureDir(nested));  // already exists: still fine
  // The created directory is actually usable for CSVs.
  Table t({"x"});
  t.AddRow({1.0});
  EXPECT_TRUE(t.WriteCsv(nested + "/out.csv"));
  std::filesystem::remove_all(base);
}

TEST(EnsureDir, FailsOnEmptyAndOnFileInTheWay) {
  EXPECT_FALSE(EnsureDir(""));
  const std::string file = ::testing::TempDir() + "/p2p_ensure_dir_file";
  std::filesystem::remove_all(file);
  std::ofstream(file) << "not a directory";
  EXPECT_FALSE(EnsureDir(file));           // exists but is a file
  EXPECT_FALSE(EnsureDir(file + "/sub"));  // parent is a file
  std::filesystem::remove_all(file);
}

// ---------------------------------------------------------- thread pool --

TEST(ThreadPool, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto f = pool.Submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto f = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForRunsAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.ParallelFor(100, [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesFirstError) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(10,
                                [](std::size_t i) {
                                  if (i == 5) throw std::runtime_error("x");
                                }),
               std::runtime_error);
}

TEST(ThreadPool, DefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

}  // namespace
}  // namespace p2p::util
