#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"
#include "sim/simulation.h"
#include "util/check.h"

namespace p2p::sim {
namespace {

// ----------------------------------------------------------- EventQueue --

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.Schedule(3.0, [&] { fired.push_back(3); });
  q.Schedule(1.0, [&] { fired.push_back(1); });
  q.Schedule(2.0, [&] { fired.push_back(2); });
  while (!q.empty()) q.Pop().cb();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakFifo) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i)
    q.Schedule(1.0, [&fired, i] { fired.push_back(i); });
  while (!q.empty()) q.Pop().cb();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.Schedule(1.0, [&] { ran = true; });
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.Cancel(id));  // double-cancel reports false
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelledHeadIsSkipped) {
  EventQueue q;
  std::vector<int> fired;
  const EventId first = q.Schedule(1.0, [&] { fired.push_back(1); });
  q.Schedule(2.0, [&] { fired.push_back(2); });
  q.Cancel(first);
  EXPECT_DOUBLE_EQ(q.PeekTime(), 2.0);
  q.Pop().cb();
  EXPECT_EQ(fired, std::vector<int>{2});
}

TEST(EventQueue, PopOnEmptyThrows) {
  EventQueue q;
  EXPECT_THROW(q.Pop(), util::CheckError);
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  const EventId a = q.Schedule(1.0, [] {});
  q.Schedule(2.0, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.Cancel(a);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, CompactionBoundsHeapFootprint) {
  // A rearmed-timer workload: every scheduled event is cancelled and
  // replaced. Without compaction the heap keeps every cancelled entry
  // until it surfaces at the top, so the footprint grows with the number
  // of cancellations instead of the number of live events.
  EventQueue q;
  constexpr std::size_t kTimers = 16;
  std::vector<EventId> pending;
  for (std::size_t i = 0; i < kTimers; ++i)
    pending.push_back(q.Schedule(1e6 + static_cast<double>(i), [] {}));
  for (int round = 0; round < 1000; ++round) {
    for (std::size_t i = 0; i < kTimers; ++i) {
      ASSERT_TRUE(q.Cancel(pending[i]));
      pending[i] =
          q.Schedule(1e6 + static_cast<double>(round * 100 + i), [] {});
    }
    ASSERT_EQ(q.size(), kTimers);
    ASSERT_LE(q.heap_footprint(), 2 * kTimers + 1);
  }
  // The queue still works: a fresh early event fires first.
  bool early_fired = false;
  q.Schedule(0.5, [&] { early_fired = true; });
  q.Pop().cb();
  EXPECT_TRUE(early_fired);
  EXPECT_EQ(q.size(), kTimers);
}

// ----------------------------------------------------------- Simulation --

TEST(Simulation, ClockAdvancesWithEvents) {
  Simulation sim;
  double seen = -1.0;
  sim.At(5.0, [&] { seen = sim.now(); });
  sim.Run();
  EXPECT_DOUBLE_EQ(seen, 5.0);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulation, AfterSchedulesRelative) {
  Simulation sim;
  std::vector<double> times;
  sim.At(10.0, [&] {
    sim.After(2.5, [&] { times.push_back(sim.now()); });
  });
  sim.Run();
  ASSERT_EQ(times.size(), 1u);
  EXPECT_DOUBLE_EQ(times[0], 12.5);
}

TEST(Simulation, SchedulingInPastThrows) {
  Simulation sim;
  sim.At(5.0, [&] {
    EXPECT_THROW(sim.At(1.0, [] {}), util::CheckError);
  });
  sim.Run();
}

TEST(Simulation, RunUntilStopsAtBoundaryInclusive) {
  Simulation sim;
  int fired = 0;
  sim.At(1.0, [&] { ++fired; });
  sim.At(2.0, [&] { ++fired; });
  sim.At(3.0, [&] { ++fired; });
  sim.RunUntil(2.0);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  sim.RunUntil(10.0);
  EXPECT_EQ(fired, 3);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);  // clock advances to the boundary
}

TEST(Simulation, RunHonoursMaxEvents) {
  Simulation sim;
  // Self-rescheduling event would run forever without the backstop.
  std::function<void()> reschedule = [&] { sim.After(1.0, reschedule); };
  sim.After(1.0, reschedule);
  const std::size_t n = sim.Run(50);
  EXPECT_EQ(n, 50u);
}

TEST(Simulation, PeriodicFiresAtFixedInterval) {
  Simulation sim;
  std::vector<double> times;
  sim.Every(10.0, 5.0, [&] { times.push_back(sim.now()); });
  sim.RunUntil(36.0);
  EXPECT_EQ(times, (std::vector<double>{5.0, 15.0, 25.0, 35.0}));
}

TEST(Simulation, CancelPeriodicStopsFutureFirings) {
  Simulation sim;
  int count = 0;
  auto token = sim.Every(1.0, 0.0, [&] { ++count; });
  sim.RunUntil(3.5);
  EXPECT_EQ(count, 4);  // t = 0,1,2,3
  Simulation::CancelPeriodic(token);
  sim.RunUntil(10.0);
  EXPECT_EQ(count, 4);
}

TEST(Simulation, PeriodicCanCancelItselfFromCallback) {
  Simulation sim;
  int count = 0;
  Simulation::PeriodicToken token;
  token = sim.Every(1.0, 0.0, [&] {
    if (++count == 3) Simulation::CancelPeriodic(token);
  });
  sim.RunUntil(100.0);
  EXPECT_EQ(count, 3);
}

TEST(Simulation, CancelPendingEvent) {
  Simulation sim;
  bool ran = false;
  const EventId id = sim.At(1.0, [&] { ran = true; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.Run();
  EXPECT_FALSE(ran);
}

TEST(Simulation, FiredEventsCounter) {
  Simulation sim;
  for (int i = 0; i < 7; ++i) sim.At(i, [] {});
  sim.Run();
  EXPECT_EQ(sim.fired_events(), 7u);
}

TEST(Simulation, RngIsDeterministicPerSeed) {
  Simulation a(99), b(99);
  EXPECT_EQ(a.rng()(), b.rng()());
}

// Events scheduled at identical times from within callbacks preserve
// causal (FIFO) order — the property the SOMO sync-gather relies on.
TEST(Simulation, NestedSchedulingKeepsDeterministicOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.At(1.0, [&] {
    sim.At(2.0, [&] { order.push_back(1); });
    sim.At(2.0, [&] { order.push_back(2); });
  });
  sim.At(2.0, [&] { order.push_back(0); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

}  // namespace
}  // namespace p2p::sim
