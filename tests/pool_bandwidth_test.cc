// Bandwidth-constrained scheduling: the stream_kbps option caps each
// node's usable child degree by its estimated uplink (the reason the
// Figure-7 SOMO report carries bandwidth at all).
#include <gtest/gtest.h>

#include "pool/task_manager.h"
#include "test_support.h"
#include "util/rng.h"

namespace p2p::pool {
namespace {

alm::SessionSpec Spec(ResourcePool& pool, alm::SessionId id,
                      std::uint64_t seed, std::size_t group = 10) {
  util::Rng rng(seed);
  auto idx = rng.SampleIndices(pool.size(), group);
  // Root at the best-uplinked member: a modem root cannot source a stream
  // to anyone, which would make every rate-constrained case trivially
  // infeasible instead of exercising the capping logic.
  std::size_t best = 0;
  for (std::size_t i = 1; i < idx.size(); ++i) {
    if (pool.bandwidths().host(idx[i]).up_kbps >
        pool.bandwidths().host(idx[best]).up_kbps)
      best = i;
  }
  std::swap(idx[0], idx[best]);
  alm::SessionSpec spec;
  spec.id = id;
  spec.priority = 1;
  spec.root = idx[0];
  spec.members.assign(idx.begin() + 1, idx.end());
  return spec;
}

TEST(BandwidthScheduling, UnconstrainedWhenRateIsZero) {
  auto& pool = p2p::testing::SharedSmallPool();
  TaskManagerOptions opt;
  opt.stream_kbps = 0.0;
  TaskManager tm(pool, Spec(pool, 1, 50), opt);
  EXPECT_TRUE(tm.Schedule().ok);
  tm.Teardown();
}

TEST(BandwidthScheduling, TreeRespectsUplinkCaps) {
  auto& pool = p2p::testing::SharedSmallPool();
  TaskManagerOptions opt;
  opt.stream_kbps = 300.0;  // a typical video stream
  TaskManager tm(pool, Spec(pool, 2, 51), opt);
  const auto out = tm.Schedule();
  if (!out.ok) GTEST_SKIP() << "session infeasible at this rate";
  const auto* tree = tm.current_tree();
  for (const auto v : tree->members()) {
    const int children = static_cast<int>(tree->children(v).size());
    const auto& est = pool.bandwidth_estimates().estimate(v);
    const double up =
        est.up_samples > 0 ? est.up_kbps : pool.bandwidths().host(v).up_kbps;
    EXPECT_LE(children, static_cast<int>(up / opt.stream_kbps))
        << "node " << v << " fans out beyond its uplink";
  }
  tm.Teardown();
  EXPECT_EQ(pool.registry().TotalUsed(), 0u);
}

TEST(BandwidthScheduling, HigherRateNeverImprovesHeight) {
  auto& pool = p2p::testing::SharedSmallPool();
  auto height_at = [&](double rate) -> double {
    TaskManagerOptions opt;
    opt.stream_kbps = rate;
    TaskManager tm(pool, Spec(pool, 3, 52), opt);
    const auto out = tm.Schedule();
    const double h = out.ok ? tm.current_height() : -1.0;
    tm.Teardown();
    return h;
  };
  const double h_low = height_at(100.0);
  const double h_high = height_at(800.0);
  ASSERT_GT(h_low, 0.0);
  if (h_high > 0.0) {
    // Tighter fan-out caps can only lengthen (or keep) the tree.
    EXPECT_GE(h_high + 1e-9, h_low);
  }
}

TEST(BandwidthScheduling, AbsurdRateFailsGracefully) {
  auto& pool = p2p::testing::SharedSmallPool();
  TaskManagerOptions opt;
  opt.stream_kbps = 1e9;  // nobody can source even one stream
  TaskManager tm(pool, Spec(pool, 4, 53), opt);
  const auto out = tm.Schedule();
  EXPECT_FALSE(out.ok);
  EXPECT_FALSE(tm.scheduled());
  EXPECT_EQ(pool.registry().TotalUsed(), 0u);
}

TEST(BandwidthScheduling, ThinUplinkMembersBecomeLeaves) {
  auto& pool = p2p::testing::SharedSmallPool();
  TaskManagerOptions opt;
  opt.stream_kbps = 500.0;
  TaskManager tm(pool, Spec(pool, 5, 54, 12), opt);
  const auto out = tm.Schedule();
  if (!out.ok) GTEST_SKIP() << "infeasible at this rate";
  const auto* tree = tm.current_tree();
  for (const auto v : tree->members()) {
    const auto& est = pool.bandwidth_estimates().estimate(v);
    const double up =
        est.up_samples > 0 ? est.up_kbps : pool.bandwidths().host(v).up_kbps;
    if (up < opt.stream_kbps) {
      EXPECT_TRUE(tree->IsLeaf(v))
          << "node " << v << " cannot source a stream but has children";
    }
  }
  tm.Teardown();
}

}  // namespace
}  // namespace p2p::pool
