#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "obs/trace_reader.h"
#include "sim/trace.h"

namespace p2p::obs {
namespace {

std::FILE* TmpWithContent(const std::string& content) {
  std::FILE* f = std::tmpfile();
  EXPECT_NE(f, nullptr);
  std::fwrite(content.data(), 1, content.size(), f);
  std::rewind(f);
  return f;
}

TEST(TraceReader, ParseProtocolRoundTripsEveryName) {
  for (std::size_t i = 0; i < sim::kProtocolCount; ++i) {
    const auto p = static_cast<sim::Protocol>(i);
    sim::Protocol parsed;
    ASSERT_TRUE(ParseProtocol(sim::ProtocolName(p), &parsed));
    EXPECT_EQ(parsed, p);
  }
  sim::Protocol parsed;
  EXPECT_FALSE(ParseProtocol("nonsense", &parsed));
}

// The satellite guarantee: whatever TraceSink::WriteText emits, ReadTrace
// parses back bit-for-bit — including the v2 drop-cause column.
TEST(TraceReader, WriteTextReadTraceRoundTrip) {
  sim::TraceSink sink;
  sim::TraceRecord a;
  a.time_ms = 12.5;
  a.src_host = 3;
  a.dst_host = 9;
  a.protocol = sim::Protocol::kSomo;
  a.kind = 2;
  a.bytes = 640;
  sink.Append(a);
  sim::TraceRecord b;
  b.time_ms = 99.25;
  b.src_host = 1;
  b.dst_host = 2;
  b.protocol = sim::Protocol::kHeartbeat;
  b.bytes = 40;
  b.dropped = true;
  b.cause = sim::DropCause::kLoss;
  sink.Append(b);
  sim::TraceRecord c = b;
  c.cause = sim::DropCause::kPartition;
  sink.Append(c);

  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  ASSERT_TRUE(sink.WriteText(tmp));
  std::rewind(tmp);

  TraceFile parsed;
  std::string error;
  ASSERT_TRUE(ReadTrace(tmp, &parsed, &error)) << error;
  std::fclose(tmp);

  EXPECT_EQ(parsed.version, 2);
  EXPECT_FALSE(parsed.truncated());
  ASSERT_EQ(parsed.records.size(), 3u);
  EXPECT_DOUBLE_EQ(parsed.records[0].time_ms, 12.5);
  EXPECT_EQ(parsed.records[0].src_host, 3u);
  EXPECT_EQ(parsed.records[0].dst_host, 9u);
  EXPECT_EQ(parsed.records[0].protocol, sim::Protocol::kSomo);
  EXPECT_EQ(parsed.records[0].kind, 2u);
  EXPECT_EQ(parsed.records[0].bytes, 640u);
  EXPECT_FALSE(parsed.records[0].dropped);
  EXPECT_EQ(parsed.records[0].cause, sim::DropCause::kNone);
  EXPECT_TRUE(parsed.records[1].dropped);
  EXPECT_EQ(parsed.records[1].cause, sim::DropCause::kLoss);
  EXPECT_EQ(parsed.records[2].cause, sim::DropCause::kPartition);
}

// Pre-cause dumps stay readable: 7 columns, every cause reads as kNone.
TEST(TraceReader, ReadsLegacyV1Format) {
  std::FILE* f = TmpWithContent(
      "p2ptrace v1 2 5\n"
      "1.000000 0 1 somo 0 64 0\n"
      "2.000000 1 2 bwest 3 1500 1\n");
  TraceFile parsed;
  std::string error;
  ASSERT_TRUE(ReadTrace(f, &parsed, &error)) << error;
  std::fclose(f);
  EXPECT_EQ(parsed.version, 1);
  EXPECT_EQ(parsed.held, 2u);
  EXPECT_EQ(parsed.total, 5u);
  EXPECT_TRUE(parsed.truncated());  // the ring overwrote 3 records
  ASSERT_EQ(parsed.records.size(), 2u);
  EXPECT_TRUE(parsed.records[1].dropped);
  EXPECT_EQ(parsed.records[0].cause, sim::DropCause::kNone);
  EXPECT_EQ(parsed.records[1].cause, sim::DropCause::kNone);
}

TEST(TraceReader, RejectsMalformedInput) {
  const struct {
    const char* content;
    const char* why;
  } cases[] = {
      {"", "empty"},
      {"not a trace\n", "bad header"},
      {"p2ptrace v3 0 0\n", "unknown version"},
      {"p2ptrace v2 1 1\n1.0 0 1 somo 0 64 0\n", "v2 row missing cause"},
      {"p2ptrace v2 1 1\n1.0 0 1 warp 0 64 0 0\n", "unknown protocol"},
      {"p2ptrace v2 1 1\n1.0 0 1 somo 0 64 0 9\n", "unknown cause"},
      {"p2ptrace v2 2 2\n1.0 0 1 somo 0 64 0 0\n", "count mismatch"},
  };
  for (const auto& c : cases) {
    std::FILE* f = TmpWithContent(c.content);
    TraceFile parsed;
    std::string error;
    EXPECT_FALSE(ReadTrace(f, &parsed, &error)) << c.why;
    EXPECT_FALSE(error.empty()) << c.why;
    std::fclose(f);
  }
}

TEST(TraceReader, ReadTraceFileReportsMissingPath) {
  TraceFile parsed;
  std::string error;
  EXPECT_FALSE(ReadTraceFile("/nonexistent/trace.txt", &parsed, &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace p2p::obs
