#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "dht/ring.h"
#include "sim/simulation.h"
#include "somo/somo.h"

namespace p2p::somo {
namespace {

struct Fixture {
  sim::Simulation sim{77};
  dht::Ring ring{8};

  explicit Fixture(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) ring.JoinHashed(i);
    ring.StabilizeAll();
  }

  std::unique_ptr<SomoProtocol> Make(SomoConfig cfg) {
    cfg.disseminate = true;
    return std::make_unique<SomoProtocol>(
        sim, ring, cfg, [this](dht::NodeIndex n) {
          NodeReport r;
          r.node = n;
          r.host = ring.node(n).host();
          r.generated_at = sim.now();
          return r;
        });
  }
};

TEST(SomoDisseminate, EveryNodeReceivesTheNewscast) {
  Fixture f(50);
  SomoConfig cfg;
  cfg.fanout = 4;
  cfg.report_interval_ms = 1000.0;
  auto somo = f.Make(cfg);
  somo->Start();
  // Gather needs ~depth intervals, dissemination one more sweep.
  f.sim.RunUntil(
      (somo->tree().depth() + 3) * cfg.report_interval_ms + 2000.0);
  EXPECT_EQ(somo->nodes_with_view(), 50u);
  for (const dht::NodeIndex n : f.ring.SortedAlive()) {
    const auto& v = somo->ViewAt(n);
    ASSERT_TRUE(v.valid());
    EXPECT_FALSE(v.view->empty());
  }
}

TEST(SomoDisseminate, ViewStalenessBounded) {
  Fixture f(64);
  SomoConfig cfg;
  cfg.fanout = 8;
  cfg.report_interval_ms = 500.0;
  auto somo = f.Make(cfg);
  somo->Start();
  f.sim.RunUntil(30000.0);
  // Staleness at any node ≤ gather bound + one dissemination sweep:
  // roughly 2·(depth+1)·T plus hop slack.
  const double bound =
      2.0 * (static_cast<double>(somo->tree().depth()) + 1.0) *
          cfg.report_interval_ms +
      2000.0;
  for (const dht::NodeIndex n : f.ring.SortedAlive()) {
    EXPECT_LT(somo->ViewStalenessMs(n), bound) << "node " << n;
  }
}

TEST(SomoDisseminate, SyncGatherDisseminatesToo) {
  Fixture f(40);
  SomoConfig cfg;
  cfg.fanout = 8;
  cfg.report_interval_ms = 5000.0;
  cfg.synchronized_gather = true;
  auto somo = f.Make(cfg);
  somo->Start();
  f.sim.RunUntil(15000.0);
  EXPECT_EQ(somo->nodes_with_view(), 40u);
}

TEST(SomoDisseminate, DisabledByDefault) {
  Fixture f(20);
  SomoConfig cfg;
  cfg.report_interval_ms = 500.0;
  cfg.disseminate = false;
  SomoProtocol somo(f.sim, f.ring, cfg, [&](dht::NodeIndex n) {
    NodeReport r;
    r.node = n;
    r.generated_at = f.sim.now();
    return r;
  });
  somo.Start();
  f.sim.RunUntil(20000.0);
  EXPECT_EQ(somo.nodes_with_view(), 0u);
  EXPECT_TRUE(std::isinf(somo.ViewStalenessMs(0)));
}

TEST(SomoDisseminate, FresherCopyWins) {
  Fixture f(30);
  SomoConfig cfg;
  cfg.fanout = 4;
  cfg.report_interval_ms = 400.0;
  auto somo = f.Make(cfg);
  somo->Start();
  f.sim.RunUntil(20000.0);
  // After many cycles, each node's copy must be recent (not the first one
  // ever received).
  for (const dht::NodeIndex n : f.ring.SortedAlive()) {
    EXPECT_GT(somo->ViewAt(n).received_at, 10000.0) << "node " << n;
  }
}

}  // namespace
}  // namespace p2p::somo
