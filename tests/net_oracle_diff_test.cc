// Differential tests pinning the hierarchical latency oracle to the flat
// all-pairs Dijkstra oracle (the reference). Same spirit as the PR 4
// scheduler A/B tests: randomized topologies across many seeds, exact
// agreement required. Multi-homing is turned up well past the preset level
// so the gateway-pair minimisation (not just the single-gateway fast path)
// is exercised.
#include <gtest/gtest.h>

#include <cstdint>

#include "net/latency_oracle.h"
#include "net/transit_stub.h"
#include "test_support.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace p2p {
namespace {

// Varied small shapes so domain sizes, gateway counts and transit meshes
// all change from seed to seed.
net::TransitStubParams VariedParams(std::uint64_t seed) {
  net::TransitStubParams p;
  p.transit_domains = 2 + seed % 2;
  p.transit_routers_per_domain = 2 + seed % 3;
  p.stub_domains_per_transit_router = 1 + seed % 3;
  p.routers_per_stub_domain = 3 + seed % 4;
  p.stub_multihome_prob = 0.4;
  p.end_hosts = 80;
  return p;
}

TEST(OracleDiff, HierarchicalMatchesFlatAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    util::Rng rng_flat(seed), rng_hier(seed);
    const net::TransitStubTopology topo_f =
        net::GenerateTransitStub(VariedParams(seed), rng_flat);
    const net::TransitStubTopology topo_h =
        net::GenerateTransitStub(VariedParams(seed), rng_hier);
    const net::LatencyOracle flat(topo_f);
    const net::LatencyOracle hier(
        topo_h, net::OracleOptions{.kind = net::OracleKind::kHierarchical});
    ASSERT_EQ(hier.kind(), net::OracleKind::kHierarchical);
    EXPECT_GT(hier.stub_domain_count(), 0u) << "seed " << seed;
    EXPECT_GE(hier.gateway_count(), hier.stub_domain_count()) << "seed " << seed;
    const std::size_t n = topo_f.router_count();
    for (net::NodeIdx a = 0; a < n; ++a) {
      for (net::NodeIdx b = a; b < n; ++b) {
        ASSERT_NEAR(hier.RouterDistance(a, b), flat.RouterDistance(a, b), 1e-9)
            << "seed " << seed << " routers " << a << "," << b;
      }
    }
    for (std::size_t a = 0; a < topo_f.host_count(); a += 7) {
      for (std::size_t b = a; b < topo_f.host_count(); b += 11) {
        ASSERT_NEAR(hier.Latency(a, b), flat.Latency(a, b), 1e-9)
            << "seed " << seed << " hosts " << a << "," << b;
      }
    }
  }
}

TEST(OracleDiff, ParallelHierarchicalMatchesSequential) {
  util::Rng rng_a(99), rng_b(99);
  const net::TransitStubParams params = VariedParams(99);
  const net::TransitStubTopology topo_a = net::GenerateTransitStub(params, rng_a);
  const net::TransitStubTopology topo_b = net::GenerateTransitStub(params, rng_b);
  util::ThreadPool pool(4);
  const net::LatencyOracle seq(
      topo_a, net::OracleOptions{.kind = net::OracleKind::kHierarchical});
  const net::LatencyOracle par(
      topo_b, net::OracleOptions{.kind = net::OracleKind::kHierarchical,
                                 .pool = &pool});
  const std::size_t n = topo_a.router_count();
  for (net::NodeIdx a = 0; a < n; ++a)
    for (net::NodeIdx b = a; b < n; ++b)
      ASSERT_EQ(par.RouterDistance(a, b), seq.RouterDistance(a, b))
          << a << "," << b;
}

TEST(OracleDiff, FloatStorageWithinMilliTolerance) {
  for (std::uint64_t seed : {3u, 11u, 19u}) {
    util::Rng rng_d(seed), rng_f(seed), rng_hf(seed);
    const net::TransitStubParams params = VariedParams(seed);
    const net::TransitStubTopology topo_d =
        net::GenerateTransitStub(params, rng_d);
    const net::TransitStubTopology topo_f =
        net::GenerateTransitStub(params, rng_f);
    const net::TransitStubTopology topo_hf =
        net::GenerateTransitStub(params, rng_hf);
    const net::LatencyOracle ref(topo_d);
    const net::LatencyOracle flat_f32(
        topo_f, net::OracleOptions{.precision = net::OraclePrecision::kF32});
    const net::LatencyOracle hier_f32(
        topo_hf, net::OracleOptions{.kind = net::OracleKind::kHierarchical,
                                    .precision = net::OraclePrecision::kF32});
    EXPECT_TRUE(flat_f32.uses_float_storage());
    EXPECT_LT(flat_f32.MemoryBytes(), ref.MemoryBytes());
    const std::size_t n = topo_d.router_count();
    for (net::NodeIdx a = 0; a < n; ++a) {
      for (net::NodeIdx b = a; b < n; ++b) {
        const double want = ref.RouterDistance(a, b);
        ASSERT_NEAR(flat_f32.RouterDistance(a, b), want, 1e-3) << a << "," << b;
        ASSERT_NEAR(hier_f32.RouterDistance(a, b), want, 1e-3) << a << "," << b;
      }
    }
  }
}

TEST(OracleDiff, HierarchicalUsesFarLessMemoryOnPaperShape) {
  util::Rng rng_f(7), rng_h(7);
  net::TransitStubParams params;  // paper shape: 600 routers
  params.end_hosts = 200;
  const net::TransitStubTopology topo_f = net::GenerateTransitStub(params, rng_f);
  const net::TransitStubTopology topo_h = net::GenerateTransitStub(params, rng_h);
  const net::LatencyOracle flat(topo_f);
  const net::LatencyOracle hier(
      topo_h, net::OracleOptions{.kind = net::OracleKind::kHierarchical});
  // 600 routers flat ≈ 1.4 MB of triangle; the core is 24 transit + 72
  // gateways. The tentpole's ≥5x floor at the 10k preset is bench-gated;
  // here we just pin the order-of-magnitude win on the paper shape too.
  EXPECT_LT(hier.MemoryBytes() * 5, flat.MemoryBytes());
  EXPECT_EQ(hier.core_node_count(),
            params.total_transit_routers() + hier.gateway_count());
  EXPECT_EQ(hier.stub_domain_count(), params.total_stub_domains());
}

TEST(OracleDiff, BuildRecordsMetrics) {
  util::Rng rng(5);
  const net::TransitStubTopology topo =
      net::GenerateTransitStub(testing::SmallTopologyParams(), rng);
  obs::MetricsRegistry metrics;
  const net::LatencyOracle hier(
      topo, net::OracleOptions{.kind = net::OracleKind::kHierarchical,
                               .metrics = &metrics});
  EXPECT_EQ(metrics.Value("net.oracle.kind"), 1.0);
  EXPECT_EQ(metrics.Value("net.oracle.routers"),
            static_cast<double>(topo.router_count()));
  EXPECT_EQ(metrics.Value("net.oracle.stub_domains"),
            static_cast<double>(hier.stub_domain_count()));
  EXPECT_EQ(metrics.Value("net.oracle.bytes"),
            static_cast<double>(hier.MemoryBytes()));
  EXPECT_FALSE(metrics.profiles().empty());
}

}  // namespace
}  // namespace p2p
