#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "dht/churn.h"
#include "dht/heartbeat.h"
#include "dht/ring.h"
#include "sim/simulation.h"

namespace p2p::dht {
namespace {

struct HeartbeatFixture {
  sim::Simulation sim{123};
  Ring ring{8};

  explicit HeartbeatFixture(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) ring.JoinHashed(i);
    ring.StabilizeAll();
  }
};

TEST(Heartbeat, TimeoutMustExceedPeriod) {
  HeartbeatFixture f(4);
  HeartbeatConfig cfg;
  cfg.period_ms = 1000;
  cfg.timeout_ms = 500;
  EXPECT_THROW(HeartbeatProtocol(f.sim, f.ring, cfg), util::CheckError);
}

TEST(Heartbeat, DeliversToAllLeafsetMembers) {
  HeartbeatFixture f(10);
  HeartbeatProtocol hb(f.sim, f.ring);
  hb.Start();
  f.sim.RunUntil(3000.0);
  EXPECT_GT(hb.heartbeats_sent(), 0u);
  EXPECT_GT(hb.heartbeats_delivered(), 0u);
  // Without failures every sent heartbeat is eventually delivered; allow
  // the in-flight tail at the horizon.
  EXPECT_GE(hb.heartbeats_sent(), hb.heartbeats_delivered());
}

TEST(Heartbeat, ObserverSeesSendAndReceiveTimes) {
  HeartbeatFixture f(6);
  HeartbeatProtocol hb(f.sim, f.ring);
  int count = 0;
  hb.AddObserver([&](NodeIndex from, NodeIndex to, sim::Time send_t,
                     sim::Time recv_t) {
    EXPECT_NE(from, to);
    EXPECT_GE(recv_t, send_t);
    ++count;
  });
  hb.Start();
  f.sim.RunUntil(2500.0);
  EXPECT_GT(count, 0);
}

TEST(Heartbeat, DetectsCrashedNodeWithinTimeout) {
  HeartbeatFixture f(16);
  HeartbeatConfig cfg;
  cfg.period_ms = 500.0;
  cfg.timeout_ms = 1600.0;
  HeartbeatProtocol hb(f.sim, f.ring, cfg);
  NodeIndex dead = kNoNode;
  sim::Time detected_at = -1.0;
  hb.AddFailureObserver([&](NodeIndex, NodeIndex d, sim::Time when) {
    dead = d;
    detected_at = when;
  });
  hb.Start();
  f.sim.RunUntil(2000.0);
  f.ring.Fail(3);
  f.sim.RunUntil(8000.0);
  EXPECT_EQ(dead, 3u);
  EXPECT_EQ(hb.failures_detected(), 1u);
  // Detection no earlier than the timeout after the crash, and not much
  // later than timeout + one period of checking slack.
  EXPECT_GE(detected_at, 2000.0 + 0.0);
  EXPECT_LE(detected_at, 2000.0 + cfg.timeout_ms + 2 * cfg.period_ms);
  // Ring-wide cleanup happened.
  for (const NodeIndex n : f.ring.SortedAlive())
    EXPECT_FALSE(f.ring.node(n).leafset().Contains(f.ring.node(3).id()));
}

TEST(Heartbeat, EachFailureDetectedOnce) {
  HeartbeatFixture f(20);
  HeartbeatConfig cfg;
  cfg.period_ms = 400.0;
  cfg.timeout_ms = 1300.0;
  HeartbeatProtocol hb(f.sim, f.ring, cfg);
  int notifications = 0;
  hb.AddFailureObserver(
      [&](NodeIndex, NodeIndex, sim::Time) { ++notifications; });
  hb.Start();
  f.sim.RunUntil(1000.0);
  f.ring.Fail(2);
  f.ring.Fail(9);
  f.sim.RunUntil(10000.0);
  EXPECT_EQ(notifications, 2);
  EXPECT_EQ(hb.failures_detected(), 2u);
}

TEST(Heartbeat, SensorModeObservesWithoutRepairing) {
  // auto_repair=false turns the detector into a pure sensor: timeouts
  // still count, fire observers, and populate the per-node suspect sets
  // that flow into in-band telemetry — but nobody calls DetectFailure, so
  // the dead member stays in its neighbours' leafsets until an external
  // reactor (the alert loop) evicts it.
  HeartbeatFixture f(16);
  HeartbeatConfig cfg;
  cfg.period_ms = 500.0;
  cfg.timeout_ms = 1600.0;
  cfg.suspect_alive = true;
  cfg.auto_repair = false;
  HeartbeatProtocol hb(f.sim, f.ring, cfg);
  NodeIndex dead = kNoNode;
  hb.AddFailureObserver(
      [&](NodeIndex, NodeIndex d, sim::Time) { dead = d; });
  hb.Start();
  f.sim.RunUntil(2000.0);
  f.ring.Fail(3);
  f.sim.RunUntil(8000.0);
  EXPECT_EQ(dead, 3u);
  EXPECT_EQ(hb.failures_detected(), 1u);
  // No ring-wide cleanup: the victim is still in leafsets, only suspected.
  std::size_t holders = 0, suspectors = 0;
  for (const NodeIndex n : f.ring.SortedAlive()) {
    if (f.ring.node(n).leafset().Contains(f.ring.node(3).id())) ++holders;
    if (hb.suspected_count(n) > 0) ++suspectors;
  }
  EXPECT_GT(holders, 0u);
  EXPECT_GT(suspectors, 0u);
  // The external reactor's move: evict, then nobody holds the victim.
  f.ring.DetectFailure(3);
  for (const NodeIndex n : f.ring.SortedAlive())
    EXPECT_FALSE(f.ring.node(n).leafset().Contains(f.ring.node(3).id()));
}

TEST(Heartbeat, StopCancelsFutureBeats) {
  HeartbeatFixture f(8);
  HeartbeatProtocol hb(f.sim, f.ring);
  hb.Start();
  f.sim.RunUntil(1500.0);
  const std::size_t sent = hb.heartbeats_sent();
  hb.Stop();
  f.sim.RunUntil(10000.0);
  EXPECT_EQ(hb.heartbeats_sent(), sent);
}

TEST(Heartbeat, JoinedNodeStartsBeating) {
  HeartbeatFixture f(8);
  HeartbeatProtocol hb(f.sim, f.ring);
  hb.Start();
  f.sim.RunUntil(1000.0);
  const NodeIndex n = f.ring.JoinHashed(99);
  hb.OnNodeJoined(n);
  std::size_t from_new = 0;
  hb.AddObserver([&](NodeIndex from, NodeIndex, sim::Time, sim::Time) {
    if (from == n) ++from_new;
  });
  f.sim.RunUntil(4000.0);
  EXPECT_GT(from_new, 0u);
}

// Batched beat walker (HeartbeatConfig::batch_beats): one self-rescheduling
// event sweeps the phase-sorted beat row. The pin: every observable — the
// full delivery trace with timestamps, the failure trace, every counter —
// is byte-identical to the per-node-timer path, through a crash, a
// mid-run join, and several beat cycles.
TEST(Heartbeat, BatchedBeatsMatchPerNodeTimersByteForByte) {
  struct Trace {
    std::vector<std::tuple<NodeIndex, NodeIndex, sim::Time, sim::Time>> beats;
    std::vector<std::tuple<NodeIndex, NodeIndex, sim::Time>> failures;
    std::size_t sent = 0, delivered = 0, detected = 0;
  };
  const auto run = [](bool batch) {
    Trace t;
    HeartbeatFixture f(24);
    HeartbeatConfig cfg;
    cfg.period_ms = 500.0;
    cfg.timeout_ms = 1600.0;
    cfg.batch_beats = batch;
    HeartbeatProtocol hb(f.sim, f.ring, cfg);
    hb.AddObserver([&](NodeIndex from, NodeIndex to, sim::Time s,
                       sim::Time r) { t.beats.emplace_back(from, to, s, r); });
    hb.AddFailureObserver([&](NodeIndex det, NodeIndex dead, sim::Time when) {
      t.failures.emplace_back(det, dead, when);
    });
    hb.Start();
    f.sim.RunUntil(1200.0);
    const NodeIndex joiner = f.ring.JoinHashed(99);
    hb.OnNodeJoined(joiner);
    f.sim.RunUntil(2000.0);
    f.ring.Fail(3);
    f.sim.RunUntil(8000.0);
    t.sent = hb.heartbeats_sent();
    t.delivered = hb.heartbeats_delivered();
    t.detected = hb.failures_detected();
    return t;
  };
  const Trace a = run(false);
  const Trace b = run(true);
  EXPECT_GT(a.beats.size(), 0u);
  EXPECT_EQ(a.beats, b.beats);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.sent, b.sent);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.detected, b.detected);
}

// Stop() must silence the walker path just like it cancels per-node timers.
TEST(Heartbeat, StopCancelsBatchedWalker) {
  HeartbeatFixture f(8);
  HeartbeatProtocol hb(f.sim, f.ring);  // batch_beats defaults on
  hb.Start();
  f.sim.RunUntil(1500.0);
  const std::size_t sent = hb.heartbeats_sent();
  hb.Stop();
  f.sim.RunUntil(10000.0);
  EXPECT_EQ(hb.heartbeats_sent(), sent);
}

// ---------------------------------------------------------------- Churn --

TEST(Churn, JoinsAndFailuresOccurAtConfiguredRates) {
  HeartbeatFixture f(30);
  ChurnProcess::Config cfg;
  cfg.mean_join_interval_ms = 500.0;
  cfg.mean_fail_interval_ms = 500.0;
  for (std::size_t h = 100; h < 200; ++h) cfg.join_hosts.push_back(h);
  ChurnProcess churn(f.sim, f.ring, cfg);
  churn.Start();
  f.sim.RunUntil(20000.0);
  churn.Stop();
  // ~40 of each expected; allow wide tolerance.
  EXPECT_GT(churn.joins(), 15u);
  EXPECT_GT(churn.failures(), 15u);
  f.ring.StabilizeAll();
  f.ring.CheckInvariants();
}

TEST(Churn, NeverFailsBelowMinAlive) {
  HeartbeatFixture f(6);
  ChurnProcess::Config cfg;
  cfg.mean_fail_interval_ms = 10.0;  // aggressive
  cfg.min_alive = 4;
  ChurnProcess churn(f.sim, f.ring, cfg);
  churn.Start();
  f.sim.RunUntil(5000.0);
  EXPECT_GE(f.ring.alive_count(), 4u);
}

TEST(Churn, CallbacksFire) {
  HeartbeatFixture f(10);
  ChurnProcess::Config cfg;
  cfg.mean_join_interval_ms = 200.0;
  cfg.join_hosts = {50, 51, 52};
  ChurnProcess churn(f.sim, f.ring, cfg);
  int joined = 0;
  churn.on_join = [&](NodeIndex) { ++joined; };
  churn.Start();
  f.sim.RunUntil(5000.0);
  EXPECT_GT(joined, 0);
  EXPECT_EQ(static_cast<std::size_t>(joined), churn.joins());
}

}  // namespace
}  // namespace p2p::dht
