// Randomized equivalence: the heap-based fast path of BuildAmcastTree must
// reproduce the retained linear-scan reference implementation exactly —
// same tree, same height, same helper count — across many seeded
// instances, with and without helper splicing. Plus unit tests for the
// LatencyMatrix view both paths share.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "alm/amcast.h"
#include "alm/latency_matrix.h"
#include "util/rng.h"

namespace p2p::alm {
namespace {

// Symmetric pseudo-random latency in [1, 101), 0 on the diagonal. Stateless
// so the reference and fast path see bit-identical inputs.
LatencyFn HashLatency(std::uint64_t seed) {
  return [seed](ParticipantId a, ParticipantId b) {
    if (a == b) return 0.0;
    if (a > b) std::swap(a, b);
    const std::uint64_t h =
        util::Mix64(seed ^ (static_cast<std::uint64_t>(a) * 1000003ULL + b));
    return 1.0 + static_cast<double>(h % 10000) / 100.0;
  };
}

struct Instance {
  AmcastInput input;
  AmcastOptions options;
  LatencyFn latency;
};

Instance MakeInstance(std::uint64_t seed, bool with_helpers) {
  util::Rng rng(seed);
  Instance inst;
  const std::size_t members =
      static_cast<std::size_t>(rng.UniformInt(3, 40));
  const std::size_t helpers =
      with_helpers ? static_cast<std::size_t>(rng.UniformInt(5, 60)) : 0;
  const std::size_t space = members + helpers + 1;

  inst.input.degree_bounds.resize(space);
  // Bounds ≥ 2 keep every instance feasible (total free degree can only
  // grow as nodes attach).
  for (auto& d : inst.input.degree_bounds)
    d = static_cast<int>(rng.UniformInt(2, 6));

  std::vector<ParticipantId> ids(space);
  for (ParticipantId v = 0; v < space; ++v) ids[v] = v;
  rng.Shuffle(ids);
  inst.input.root = ids[0];
  for (std::size_t k = 1; k <= members; ++k)
    inst.input.members.push_back(ids[k]);
  for (std::size_t k = members + 1; k < space; ++k)
    inst.input.helper_candidates.push_back(ids[k]);

  if (with_helpers) {
    inst.options.selection = (seed % 2 == 0)
                                 ? HelperSelection::kMinimaxHeuristic
                                 : HelperSelection::kNearestToParent;
    inst.options.helper_radius = rng.Uniform(20.0, 120.0);
    inst.options.helper_min_degree = static_cast<int>(rng.UniformInt(2, 4));
  }
  inst.latency = HashLatency(seed * 0x9e3779b97f4a7c15ULL + 1);
  return inst;
}

void ExpectIdenticalResults(const AmcastResult& fast,
                            const AmcastResult& ref) {
  ASSERT_DOUBLE_EQ(fast.height, ref.height);
  ASSERT_EQ(fast.helpers_used, ref.helpers_used);
  ASSERT_EQ(fast.tree.members(), ref.tree.members());
  for (const ParticipantId v : ref.tree.members())
    ASSERT_EQ(fast.tree.parent(v), ref.tree.parent(v)) << "node " << v;
}

TEST(AmcastEquivalence, MatchesReferenceWithoutHelpers) {
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    SCOPED_TRACE(seed);
    const Instance inst = MakeInstance(seed, /*with_helpers=*/false);
    const auto ref =
        BuildAmcastTreeReference(inst.input, inst.latency, inst.options);
    const auto fast = BuildAmcastTree(inst.input, inst.latency, inst.options);
    ExpectIdenticalResults(fast, ref);
  }
}

TEST(AmcastEquivalence, MatchesReferenceWithHelpers) {
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    SCOPED_TRACE(seed);
    const Instance inst = MakeInstance(seed, /*with_helpers=*/true);
    const auto ref =
        BuildAmcastTreeReference(inst.input, inst.latency, inst.options);
    const auto fast = BuildAmcastTree(inst.input, inst.latency, inst.options);
    ExpectIdenticalResults(fast, ref);
  }
}

TEST(AmcastEquivalence, MatchesReferenceThroughPrebuiltMatrix) {
  // The matrix overload (what PlanSession uses) must agree too.
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    SCOPED_TRACE(seed);
    const Instance inst = MakeInstance(seed, /*with_helpers=*/true);
    std::vector<ParticipantId> core;
    core.push_back(inst.input.root);
    core.insert(core.end(), inst.input.members.begin(),
                inst.input.members.end());
    const LatencyMatrix matrix(inst.input.degree_bounds.size(), core,
                               inst.input.helper_candidates, inst.latency);
    const auto ref =
        BuildAmcastTreeReference(inst.input, inst.latency, inst.options);
    const auto fast = BuildAmcastTree(inst.input, matrix, inst.options);
    ExpectIdenticalResults(fast, ref);
  }
}

// ---------------------------------------------------------- LatencyMatrix --

TEST(LatencyMatrix, ServesExactFnValuesForCorePairs) {
  const LatencyFn fn = HashLatency(7);
  const std::vector<ParticipantId> ids = {4, 9, 2, 17};
  const LatencyMatrix m(20, ids, fn);
  EXPECT_EQ(m.size(), 4u);
  EXPECT_EQ(m.core_size(), 4u);
  for (const ParticipantId a : ids)
    for (const ParticipantId b : ids) {
      EXPECT_DOUBLE_EQ(m(a, b), fn(a, b)) << a << "," << b;
      EXPECT_DOUBLE_EQ(m(a, b), m(b, a));
    }
}

TEST(LatencyMatrix, CollapsesDuplicates) {
  const LatencyFn fn = HashLatency(11);
  const LatencyMatrix m(10, {3, 5, 3, 5, 3}, fn);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_TRUE(m.Covers(3));
  EXPECT_TRUE(m.Covers(5));
  EXPECT_FALSE(m.Covers(4));
  EXPECT_DOUBLE_EQ(m(3, 5), fn(3, 5));
}

TEST(LatencyMatrix, SatelliteTierCoversCoreFacingPairsAndFallsBack) {
  const LatencyFn fn = HashLatency(13);
  const std::vector<ParticipantId> core = {0, 1, 2};
  const std::vector<ParticipantId> sats = {7, 8};
  const LatencyMatrix m(10, core, sats, fn);
  EXPECT_EQ(m.core_size(), 3u);
  EXPECT_EQ(m.size(), 5u);
  // Core↔satellite pairs are precomputed; satellite↔satellite queries go
  // through the retained fn. Either way the values match fn exactly.
  for (const ParticipantId a : {0u, 1u, 2u, 7u, 8u})
    for (const ParticipantId b : {0u, 1u, 2u, 7u, 8u})
      EXPECT_DOUBLE_EQ(m(a, b), fn(a, b)) << a << "," << b;
}

TEST(LatencyMatrix, SatelliteDuplicatedAsCoreStaysCore) {
  const LatencyFn fn = HashLatency(17);
  const LatencyMatrix m(10, {0, 1}, {1, 5}, fn);
  EXPECT_EQ(m.core_size(), 2u);
  EXPECT_EQ(m.size(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 5), fn(1, 5));
}

TEST(LatencyMatrix, DiagonalIsZero) {
  const LatencyFn always_one = [](ParticipantId, ParticipantId) {
    return 1.0;
  };
  const LatencyMatrix m(4, {0, 1, 2}, always_one);
  EXPECT_DOUBLE_EQ(m(2, 2), 0.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 1.0);
}

TEST(LatencyMatrix, AsFnDelegates) {
  const LatencyFn fn = HashLatency(23);
  const LatencyMatrix m(8, {1, 3, 6}, fn);
  const LatencyFn view = m.AsFn();
  EXPECT_DOUBLE_EQ(view(1, 6), fn(1, 6));
}

}  // namespace
}  // namespace p2p::alm
