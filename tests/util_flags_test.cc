#include <gtest/gtest.h>

#include <vector>

#include "util/check.h"
#include "util/flags.h"

namespace p2p::util {
namespace {

FlagParser Make(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return FlagParser(static_cast<int>(args.size()), args.data());
}

TEST(Flags, EqualsForm) {
  auto f = Make({"--name=val", "--n=42", "--x=2.5"});
  EXPECT_EQ(f.GetString("name", ""), "val");
  EXPECT_EQ(f.GetInt("n", 0), 42);
  EXPECT_DOUBLE_EQ(f.GetDouble("x", 0.0), 2.5);
}

TEST(Flags, SpaceForm) {
  auto f = Make({"--name", "val", "--n", "7"});
  EXPECT_EQ(f.GetString("name", ""), "val");
  EXPECT_EQ(f.GetInt("n", 0), 7);
}

TEST(Flags, DefaultsWhenAbsent) {
  auto f = Make({});
  EXPECT_EQ(f.GetString("s", "fallback"), "fallback");
  EXPECT_EQ(f.GetInt("i", -3), -3);
  EXPECT_DOUBLE_EQ(f.GetDouble("d", 1.5), 1.5);
  EXPECT_TRUE(f.GetBool("b", true));
  EXPECT_FALSE(f.Has("s"));
}

TEST(Flags, BooleanForms) {
  auto f = Make({"--on", "--yes=true", "--no=false", "--off", "0"});
  EXPECT_TRUE(f.GetBool("on", false));
  EXPECT_TRUE(f.GetBool("yes", false));
  EXPECT_FALSE(f.GetBool("no", true));
  EXPECT_FALSE(f.GetBool("off", true));  // "--off 0"
}

TEST(Flags, PositionalArguments) {
  auto f = Make({"cmd", "--k=1", "extra"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "cmd");
  EXPECT_EQ(f.positional()[1], "extra");
}

TEST(Flags, BadIntThrows) {
  auto f = Make({"--n=abc"});
  EXPECT_THROW(f.GetInt("n", 0), CheckError);
}

TEST(Flags, BadDoubleThrows) {
  auto f = Make({"--x=zzz"});
  EXPECT_THROW(f.GetDouble("x", 0.0), CheckError);
}

TEST(Flags, BadBoolThrows) {
  auto f = Make({"--b=maybe"});
  EXPECT_THROW(f.GetBool("b", false), CheckError);
}

TEST(Flags, UnknownFlagDetection) {
  auto f = Make({"--known=1", "--mystery=2"});
  f.GetInt("known", 0);
  const auto unknown = f.UnknownFlags();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "mystery");
}

TEST(Flags, HelpListsRegistrations) {
  auto f = Make({});
  f.GetInt("alpha", 5, "the alpha knob");
  f.GetString("beta", "x");
  const std::string help = f.Help();
  EXPECT_NE(help.find("--alpha"), std::string::npos);
  EXPECT_NE(help.find("the alpha knob"), std::string::npos);
  EXPECT_NE(help.find("--beta"), std::string::npos);
}

TEST(Flags, NegativeNumbersAsValues) {
  auto f = Make({"--n=-5", "--d=-2.5"});
  EXPECT_EQ(f.GetInt("n", 0), -5);
  EXPECT_DOUBLE_EQ(f.GetDouble("d", 0.0), -2.5);
}

TEST(Flags, ProgramName) {
  auto f = Make({});
  EXPECT_EQ(f.program(), "prog");
}

}  // namespace
}  // namespace p2p::util
