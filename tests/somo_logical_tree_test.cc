#include <gtest/gtest.h>

#include <algorithm>

#include "dht/ring.h"
#include "somo/logical_tree.h"
#include "util/check.h"

namespace p2p::somo {
namespace {

dht::Ring MakeRing(std::size_t n) {
  dht::Ring ring(8);
  for (std::size_t i = 0; i < n; ++i) ring.JoinHashed(i);
  return ring;
}

TEST(LogicalTree, FanoutMustBeAtLeastTwo) {
  auto ring = MakeRing(4);
  EXPECT_THROW(LogicalTree(ring, 1), util::CheckError);
}

TEST(LogicalTree, EmptyRingRejected) {
  dht::Ring ring(4);
  EXPECT_THROW(LogicalTree(ring, 8), util::CheckError);
}

TEST(LogicalTree, SingleNodeIsRootLeaf) {
  auto ring = MakeRing(1);
  const LogicalTree tree(ring, 8);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_TRUE(tree.node(tree.root()).is_leaf());
  EXPECT_TRUE(tree.node(tree.root()).is_root());
  EXPECT_EQ(tree.node(tree.root()).owner, 0u);
  tree.CheckInvariants(ring);
}

TEST(LogicalTree, CenterOfFormula) {
  EXPECT_DOUBLE_EQ(LogicalTree::CenterOf(0, 0, 8), 0.5);
  EXPECT_DOUBLE_EQ(LogicalTree::CenterOf(1, 0, 2), 0.25);
  EXPECT_DOUBLE_EQ(LogicalTree::CenterOf(1, 1, 2), 0.75);
  EXPECT_DOUBLE_EQ(LogicalTree::CenterOf(2, 3, 2), 0.875);
}

TEST(LogicalTree, RootSitsAtMidSpace) {
  auto ring = MakeRing(32);
  const LogicalTree tree(ring, 8);
  EXPECT_NEAR(tree.node(tree.root()).center, 0.5, 1e-12);
  // The root's owner is the node responsible for the 0.5 point.
  EXPECT_EQ(tree.node(tree.root()).owner,
            ring.ResponsibleFor(dht::IdFromUnit(0.5)));
}

TEST(LogicalTree, InvariantsAcrossSizesAndFanouts) {
  for (const std::size_t n : {2u, 3u, 7u, 16u, 64u, 200u}) {
    auto ring = MakeRing(n);
    for (const std::size_t k : {2u, 4u, 8u}) {
      const LogicalTree tree(ring, k);
      SCOPED_TRACE(::testing::Message() << "n=" << n << " k=" << k);
      tree.CheckInvariants(ring);
    }
  }
}

TEST(LogicalTree, DepthIsLogarithmic) {
  auto ring = MakeRing(256);
  const LogicalTree tree(ring, 8);
  // log8(256) ≈ 2.67; closest-pair id gaps force roughly the square
  // (≈ 2·log_k N) in the worst case, plus one for the root level.
  EXPECT_LE(tree.depth(), 8u);
  EXPECT_GE(tree.depth(), 2u);
}

TEST(LogicalTree, HigherFanoutGivesShallowerTree) {
  auto ring = MakeRing(128);
  const LogicalTree t2(ring, 2);
  const LogicalTree t8(ring, 8);
  EXPECT_LT(t8.depth(), t2.depth());
}

TEST(LogicalTree, EveryAliveNodeHasAReporter) {
  auto ring = MakeRing(60);
  const LogicalTree tree(ring, 4);
  for (const dht::NodeIndex n : ring.SortedAlive()) {
    const LogicalIndex rep = tree.ReporterOf(n);
    ASSERT_NE(rep, kNoLogical);
    EXPECT_TRUE(tree.node(rep).is_leaf());
    const auto& lst = tree.node(rep).reported;
    EXPECT_NE(std::find(lst.begin(), lst.end(), n), lst.end());
  }
}

TEST(LogicalTree, RepresentationIsHighestHostedNode) {
  auto ring = MakeRing(40);
  const LogicalTree tree(ring, 4);
  for (const dht::NodeIndex n : ring.SortedAlive()) {
    const LogicalIndex rep = tree.RepresentationOf(n);
    for (const LogicalIndex l : tree.HostedBy(n))
      EXPECT_LE(tree.node(rep).level, tree.node(l).level);
  }
}

TEST(LogicalTree, InternalNodesHaveChildren) {
  auto ring = MakeRing(50);
  const LogicalTree tree(ring, 8);
  std::size_t leaves = 0;
  for (LogicalIndex i = 0; i < tree.size(); ++i) {
    const auto& ln = tree.node(i);
    if (ln.is_leaf()) {
      ++leaves;
    } else {
      EXPECT_GE(ln.children.size(), 1u);
      EXPECT_LE(ln.children.size(), 8u);
    }
  }
  EXPECT_EQ(leaves, tree.leaves().size());
}

TEST(LogicalTree, LeafCountIsLinearInRingSize) {
  // Each leaf region lies inside one zone; number of leaves is O(N·k).
  auto ring = MakeRing(100);
  const LogicalTree tree(ring, 8);
  EXPECT_GE(tree.leaves().size(), 100u);
  EXPECT_LE(tree.leaves().size(), 100u * 16u);
}

TEST(LogicalTree, RebuildAfterMembershipChange) {
  auto ring = MakeRing(30);
  ring.Fail(5);
  ring.DetectFailure(5);
  ring.JoinHashed(200);
  const LogicalTree tree(ring, 8);
  tree.CheckInvariants(ring);
  // The failed node owns nothing.
  EXPECT_TRUE(tree.HostedBy(5).empty());
}

}  // namespace
}  // namespace p2p::somo
