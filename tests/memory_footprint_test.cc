// PR 9 memory-footprint regression pins. The struct-of-arrays refactor
// must keep per-host protocol state at least 2x below the pre-SoA layouts
// at the 10k preset scale, per ISSUE 9's acceptance criteria:
//
//   * somo::AggregateReport — SoA columns + pooled variable-length
//     payloads vs. the retained map/AoS reference implementation
//     (tests/reference/somo_map_ref.h), whose MemoryBytes() IS the
//     recorded pre-SoA baseline, computed over identical member sets.
//
//   * dht::Ring routing state — lazy prefix rows + run-length fingers
//     vs. the seed's dense layouts, recorded here as constants measured
//     from the seed headers: a dense Pastry table allocated
//     16 rows x 16 cols x sizeof(LeafsetEntry) = 4096 B per node
//     up front, and the Chord finger table held a 64-entry inline
//     std::array (1024 B per node), both regardless of fill.
//
// If either bound regresses, a change re-densified a hot table — fix the
// layout, do not relax the constants.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>

#include "dht/leafset.h"
#include "dht/ring.h"
#include "reference/somo_map_ref.h"
#include "somo/report.h"

namespace p2p {
namespace {

constexpr std::size_t kHosts = 10000;  // the 10k preset's end-system count

// Same deterministic report shape the differential test uses: coords,
// degree slots and telemetry on interleaved subsets so the pools carry a
// realistic mix of present and absent payloads.
somo::NodeReport MakeReport(std::size_t n) {
  somo::NodeReport r;
  r.node = static_cast<dht::NodeIndex>(n);
  r.host = static_cast<net::HostIdx>(n);
  r.generated_at = static_cast<double>(n) * 0.25;
  r.up_kbps = 100.0 + static_cast<double>(n % 37) * 12.5;
  r.down_kbps = 500.0 + static_cast<double>(n % 53) * 7.25;
  r.capacity = static_cast<double>((n * 2654435761u) % 1000) / 10.0;
  if (n % 3 != 0) {
    for (std::size_t d = 0; d < 2 + n % 3; ++d)
      r.coordinates.push_back(static_cast<double>(n % 101) - 50.0 +
                              static_cast<double>(d));
  }
  r.degrees.total = static_cast<int>(n % 9);
  if (n % 4 == 0) {
    somo::DegreeSlot slot;
    slot.session = static_cast<somo::SessionId>(n % 17);
    slot.priority = somo::kHighestPriority;
    r.degrees.taken.push_back(slot);
  }
  if (n % 2 == 0) {
    r.telemetry.msgs_sent = n * 3 + 1;
    r.telemetry.msgs_delivered = n * 3;
    r.telemetry.bytes_sent = n * 1500;
    r.telemetry.suspects = n % 2;
    r.telemetry.sampled_at = r.generated_at;
  }
  return r;
}

TEST(MemoryFootprint, AggregateReportBeatsAoSBaseline) {
  somo::AggregateReport soa;
  somoref::AggregateReport ref;
  for (std::size_t n = 0; n < kHosts; ++n) {
    const somo::NodeReport r = MakeReport(n);
    soa.Add(r);
    ref.Add(r);
  }
  ASSERT_EQ(soa.size(), kHosts);
  ASSERT_EQ(ref.size(), kHosts);

  // The column layout's fixed cost is ~60 B/record vs the AoS record's
  // ~150 B + per-record heap; with this payload mix (2/3 carry coords,
  // 1/2 telemetry) the measured ratio is 1.63x — the floor below leaves
  // margin for allocator/platform drift, not for layout regressions.
  const std::size_t soa_bytes = soa.MemoryBytes();
  const std::size_t ref_bytes = ref.MemoryBytes();
  EXPECT_LE(soa_bytes * 3, ref_bytes * 2)
      << "SoA aggregate " << soa_bytes << " B is not 1.5x below the AoS "
      << "baseline " << ref_bytes << " B at " << kHosts << " members";

  // Both encode the identical wire image, so the saving is layout-only.
  EXPECT_EQ(somo::EncodeAggregate(soa), somoref::EncodeAggregate(ref));
}

TEST(MemoryFootprint, RingRoutingStateAtLeastHalvesDenseBaseline) {
  // Recorded pre-SoA constants (see the header comment): the seed
  // allocated these per node at construction, independent of fill.
  constexpr std::size_t kDensePrefixBytes =
      16 * 16 * sizeof(dht::LeafsetEntry);            // 4096 B dense table
  constexpr std::size_t kInlineFingerBytes =
      64 * sizeof(dht::LeafsetEntry);                 // 1024 B inline array
  constexpr std::size_t kPreSoaPerHost =
      kDensePrefixBytes + kInlineFingerBytes;         // 5120 B / host

  dht::Ring ring(16);
  for (std::size_t h = 0; h < kHosts; ++h) ring.JoinHashed(h);
  ring.StabilizeAll();

  const std::size_t per_host = ring.MemoryBytes() / kHosts;
  EXPECT_LE(per_host * 2, kPreSoaPerHost)
      << "ring routing state " << per_host << " B/host is not 2x below "
      << "the dense pre-SoA layout's " << kPreSoaPerHost << " B/host";
}

TEST(MemoryFootprint, BytesPerHostAtLeastHalvesPreSoaTotal) {
  // The ISSUE 9 acceptance gate, end to end: the mem.bytes_per_host
  // gauge's dominant terms (ring routing state + a full root aggregate)
  // must come out >= 2x below the same state in the pre-SoA layouts —
  // dense prefix/finger tables per node plus the AoS aggregate. The
  // pre-SoA ring figure reuses the measured ring and swaps the two
  // refactored tables for their recorded dense constants, so leafsets
  // and Node bookkeeping (unchanged by the PR) cancel out of nothing.
  constexpr std::size_t kDenseTablesPerNode =
      (16 * 16 + 64) * sizeof(dht::LeafsetEntry);

  dht::Ring ring(16);
  for (std::size_t h = 0; h < kHosts; ++h) ring.JoinHashed(h);
  ring.StabilizeAll();

  std::size_t soa_tables = 0;
  for (dht::NodeIndex n = 0; n < ring.size(); ++n)
    soa_tables += ring.node(n).prefix().HeapBytes() +
                  ring.node(n).fingers().HeapBytes();
  const std::size_t ring_bytes = ring.MemoryBytes();
  const std::size_t presoa_ring_bytes =
      ring_bytes - soa_tables + kHosts * kDenseTablesPerNode;

  somo::AggregateReport soa;
  somoref::AggregateReport ref;
  for (std::size_t n = 0; n < kHosts; ++n) {
    const somo::NodeReport r = MakeReport(n);
    soa.Add(r);
    ref.Add(r);
  }

  const double bytes_per_host =
      static_cast<double>(ring_bytes + soa.MemoryBytes()) / kHosts;
  const double presoa_per_host =
      static_cast<double>(presoa_ring_bytes + ref.MemoryBytes()) / kHosts;
  EXPECT_LE(bytes_per_host * 2.0, presoa_per_host)
      << "per-host protocol state " << bytes_per_host << " B is not 2x "
      << "below the pre-SoA layouts' " << presoa_per_host << " B";
}

}  // namespace
}  // namespace p2p
