#include <gtest/gtest.h>

#include <cmath>

#include "alm/amcast.h"
#include "alm/bounds.h"
#include "alm/critical.h"
#include "test_support.h"
#include "util/check.h"
#include "util/rng.h"

namespace p2p::alm {
namespace {

// Participants on a line; latency = |a − b|.
double Line(ParticipantId a, ParticipantId b) {
  return a > b ? static_cast<double>(a - b) : static_cast<double>(b - a);
}

TEST(Amcast, StarWhenRootHasDegree) {
  // Root 0 with enough degree takes everyone directly.
  AmcastInput in;
  in.degree_bounds = {9, 2, 2, 2};
  in.root = 0;
  in.members = {1, 2, 3};
  const auto r = BuildAmcastTree(in, Line);
  EXPECT_DOUBLE_EQ(r.height, 3.0);  // farthest member
  for (const ParticipantId v : in.members)
    EXPECT_EQ(r.tree.parent(v), 0u);
  r.tree.Validate(in.degree_bounds);
}

TEST(Amcast, RespectsDegreeBounds) {
  AmcastInput in;
  in.degree_bounds = std::vector<int>(30, 2);  // everyone degree 2: a path
  in.root = 0;
  for (ParticipantId v = 1; v < 30; ++v) in.members.push_back(v);
  const auto r = BuildAmcastTree(in, Line);
  r.tree.Validate(in.degree_bounds);
  // Root degree ≤ 2, internal nodes ≤ 2 (1 child max).
  EXPECT_LE(r.tree.children(0).size(), 2u);
}

TEST(Amcast, GreedyAddsClosestFirst) {
  AmcastInput in;
  in.degree_bounds = {9, 9, 9, 9};
  in.root = 0;
  in.members = {3, 1, 2};
  const auto r = BuildAmcastTree(in, Line);
  // Insertion order is by tentative height: members_ = {0, 1, 2, 3}.
  EXPECT_EQ(r.tree.members(),
            (std::vector<ParticipantId>{0, 1, 2, 3}));
}

TEST(Amcast, AllMembersIncludedExactlyOnce) {
  util::Rng rng(3);
  AmcastInput in;
  in.degree_bounds = std::vector<int>(50, 3);
  in.root = 7;
  for (ParticipantId v = 0; v < 50; ++v)
    if (v != 7) in.members.push_back(v);
  auto latency = [&](ParticipantId a, ParticipantId b) {
    return 1.0 + static_cast<double>(util::Mix64(a * 1000 + b) % 100) +
           (a > b ? Line(a, b) : Line(b, a)) * 0.0;
  };
  // Symmetrise.
  auto sym = [&](ParticipantId a, ParticipantId b) {
    return a < b ? latency(a, b) : latency(b, a);
  };
  const auto r = BuildAmcastTree(in, sym);
  EXPECT_EQ(r.tree.size(), 50u);
  r.tree.Validate(in.degree_bounds);
}

TEST(Amcast, InvalidInputsRejected) {
  AmcastInput in;
  in.degree_bounds = {2, 2};
  in.root = 5;  // out of range
  EXPECT_THROW(BuildAmcastTree(in, Line), util::CheckError);
}

TEST(Amcast, InfeasibleDegreesDetected) {
  AmcastInput in;
  in.degree_bounds = {1, 1, 1};  // root fills after one child
  in.root = 0;
  in.members = {1, 2};
  EXPECT_THROW(BuildAmcastTree(in, Line), util::CheckError);
}

// ----------------------------------------------------- helper recruiting --

TEST(Amcast, HelperSplicedWhenParentNearlyFull) {
  // Root 0 (bound 2), members 1–4 all 100 ms from the root and 50 ms from
  // each other, helper 5 sixty ms from the root but only 10 ms from every
  // member — the Figure-1 scenario: a high-degree nearby peer turns a deep
  // member-only tree into a shallow one.
  AmcastInput in;
  in.degree_bounds = {2, 2, 2, 2, 2, 6};
  in.root = 0;
  in.members = {1, 2, 3, 4};
  in.helper_candidates = {5};
  auto latency = [](ParticipantId a, ParticipantId b) -> double {
    if (a == b) return 0.0;
    if (a > b) std::swap(a, b);
    if (b == 5) return a == 0 ? 60.0 : 10.0;  // helper edges
    if (a == 0) return 100.0;                 // root ↔ member
    return 50.0;                              // member ↔ member
  };
  AmcastOptions opt;
  opt.selection = HelperSelection::kMinimaxHeuristic;
  opt.helper_radius = 100.0;
  const auto r = BuildAmcastTree(in, latency, opt);
  EXPECT_EQ(r.helpers_used, 1u);
  EXPECT_TRUE(r.tree.Contains(5));
  r.tree.Validate(in.degree_bounds);
  // Member-only baseline is forced to chain members at 150 ms height; the
  // helper plan fans them out of node 5 at 100 ms.
  const auto base = BuildAmcastTree(in, latency, AmcastOptions{});
  EXPECT_DOUBLE_EQ(base.height, 150.0);
  EXPECT_DOUBLE_EQ(r.height, 100.0);
}

TEST(Amcast, HelperOutsideRadiusIgnored) {
  AmcastInput in;
  in.degree_bounds = std::vector<int>(12, 2);
  in.degree_bounds[10] = 9;
  in.root = 0;
  in.members = {1, 2, 3};
  in.helper_candidates = {10};
  auto latency = [](ParticipantId a, ParticipantId b) {
    auto pos = [](ParticipantId v) {
      return v == 10 ? 1000.0 : static_cast<double>(v);
    };
    return std::abs(pos(a) - pos(b));
  };
  AmcastOptions opt;
  opt.selection = HelperSelection::kMinimaxHeuristic;
  opt.helper_radius = 100.0;  // condition 3 excludes the distant helper
  const auto r = BuildAmcastTree(in, latency, opt);
  EXPECT_EQ(r.helpers_used, 0u);
  EXPECT_FALSE(r.tree.Contains(10));
}

TEST(Amcast, HelperWithLowDegreeIgnored) {
  AmcastInput in;
  in.degree_bounds = std::vector<int>(12, 2);
  in.degree_bounds[10] = 3;  // below the ≥4 requirement (condition 2)
  in.root = 0;
  in.members = {1, 2, 3};
  in.helper_candidates = {10};
  AmcastOptions opt;
  opt.selection = HelperSelection::kMinimaxHeuristic;
  opt.helper_radius = 1000.0;
  const auto r = BuildAmcastTree(in, Line, opt);
  EXPECT_EQ(r.helpers_used, 0u);
}

TEST(Amcast, NearestToParentSelectionWorks) {
  AmcastInput in;
  in.degree_bounds = std::vector<int>(20, 2);
  in.degree_bounds[15] = 6;
  in.degree_bounds[16] = 6;
  in.root = 0;
  in.members = {1, 2, 3, 4};
  in.helper_candidates = {15, 16};
  auto latency = [](ParticipantId a, ParticipantId b) {
    auto pos = [](ParticipantId v) {
      if (v == 15) return 0.4;   // nearest to root
      if (v == 16) return 2.5;
      return static_cast<double>(v);
    };
    return std::abs(pos(a) - pos(b));
  };
  AmcastOptions opt;
  opt.selection = HelperSelection::kNearestToParent;
  opt.helper_radius = 10.0;
  const auto r = BuildAmcastTree(in, latency, opt);
  EXPECT_GE(r.helpers_used, 1u);
  EXPECT_TRUE(r.tree.Contains(15));
}

TEST(Amcast, FeasibilityRescueIgnoresRadiusWhenCapacityRunsOut) {
  // Root bound 2, every member leaf-only (bound 1): without helpers the
  // tree exhausts after two attachments. The only helper sits far outside
  // the radius — the rescue must recruit it anyway.
  AmcastInput in;
  in.degree_bounds = {2, 1, 1, 1, 1, 9};
  in.root = 0;
  in.members = {1, 2, 3, 4};
  in.helper_candidates = {5};
  auto latency = [](ParticipantId a, ParticipantId b) -> double {
    if (a == b) return 0.0;
    if (a > b) std::swap(a, b);
    if (b == 5) return 500.0;  // helper is FAR away
    return 10.0;
  };
  AmcastOptions opt;
  opt.selection = HelperSelection::kMinimaxHeuristic;
  opt.helper_radius = 100.0;  // excludes the helper for ordinary splices
  const auto r = BuildAmcastTree(in, latency, opt);
  EXPECT_EQ(r.helpers_used, 1u);
  EXPECT_TRUE(r.tree.Contains(5));
  EXPECT_EQ(r.tree.size(), 6u);
  r.tree.Validate(in.degree_bounds);
}

TEST(Amcast, LeafOnlyMembersTrulyInfeasibleWithoutHelpers) {
  AmcastInput in;
  in.degree_bounds = {2, 1, 1, 1, 1};
  in.root = 0;
  in.members = {1, 2, 3, 4};
  EXPECT_THROW(BuildAmcastTree(in, Line), util::CheckError);
}

TEST(Amcast, HelpersNeverUsedWithoutSelection) {
  AmcastInput in;
  in.degree_bounds = std::vector<int>(10, 2);
  in.degree_bounds[9] = 9;
  in.root = 0;
  in.members = {1, 2, 3};
  in.helper_candidates = {9};
  const auto r = BuildAmcastTree(in, Line, AmcastOptions{});  // kNone
  EXPECT_EQ(r.helpers_used, 0u);
}

// ---------------------------------------------------------------- bounds --

TEST(Bounds, IdealHeightIsFarthestMember) {
  EXPECT_DOUBLE_EQ(IdealHeight(0, {1, 5, 3}, Line), 5.0);
  EXPECT_DOUBLE_EQ(IdealHeight(0, {}, Line), 0.0);
}

TEST(Bounds, ImprovementDefinition) {
  EXPECT_DOUBLE_EQ(Improvement(100.0, 70.0), 0.3);
  EXPECT_DOUBLE_EQ(Improvement(100.0, 100.0), 0.0);
  EXPECT_LT(Improvement(100.0, 120.0), 0.0);
  EXPECT_THROW(Improvement(0.0, 1.0), util::CheckError);
}

TEST(Bounds, TreeHeightNeverBeatsIdeal) {
  auto& pool = p2p::testing::SharedSmallPool();
  util::Rng rng(5);
  const auto members_idx = rng.SampleIndices(pool.size(), 15);
  const ParticipantId root = members_idx[0];
  std::vector<ParticipantId> members(members_idx.begin() + 1,
                                     members_idx.end());
  AmcastInput in;
  in.degree_bounds = pool.degree_bounds();
  in.root = root;
  in.members = members;
  const auto r = BuildAmcastTree(in, pool.TrueLatencyFn());
  EXPECT_GE(r.height,
            IdealHeight(root, members, pool.TrueLatencyFn()) - 1e-9);
}

// ----------------------------------------------------- strategy wrapper --

TEST(PlanSession, CriticalBeatsAmcastOnRealPool) {
  auto& pool = p2p::testing::SharedSmallPool();
  util::Rng rng(6);
  const auto idx = rng.SampleIndices(pool.size(), 20);
  PlanInput in;
  in.degree_bounds = pool.degree_bounds();
  in.root = idx[0];
  in.members.assign(idx.begin() + 1, idx.end());
  for (std::size_t v = 0; v < pool.size(); ++v) {
    if (std::find(idx.begin(), idx.end(), v) == idx.end() &&
        pool.degree_bound(v) >= 4)
      in.helper_candidates.push_back(v);
  }
  in.true_latency = pool.TrueLatencyFn();
  in.estimated_latency = pool.EstimatedLatencyFn();

  const double base = PlanSession(in, Strategy::kAmcast).height_true;
  const double critical = PlanSession(in, Strategy::kCritical).height_true;
  const double critical_adj =
      PlanSession(in, Strategy::kCriticalAdjust).height_true;
  EXPECT_LE(critical, base + 1e-9);
  EXPECT_LE(critical_adj, critical + 1e-9);
}

TEST(PlanSession, LeafsetRequiresEstimates) {
  auto& pool = p2p::testing::SharedSmallPool();
  PlanInput in;
  in.degree_bounds = pool.degree_bounds();
  in.root = 0;
  in.members = {1, 2};
  in.true_latency = pool.TrueLatencyFn();
  EXPECT_THROW(PlanSession(in, Strategy::kLeafset), util::CheckError);
}

TEST(PlanSession, StrategyNamesAndFlags) {
  EXPECT_EQ(StrategyName(Strategy::kAmcast), "AMCast");
  EXPECT_EQ(StrategyName(Strategy::kLeafsetAdjust), "Leafset+adj");
  EXPECT_FALSE(StrategyUsesHelpers(Strategy::kAmcastAdjust));
  EXPECT_TRUE(StrategyUsesHelpers(Strategy::kLeafset));
  EXPECT_TRUE(StrategyUsesAdjust(Strategy::kCriticalAdjust));
  EXPECT_FALSE(StrategyUsesEstimates(Strategy::kCritical));
  EXPECT_TRUE(StrategyUsesEstimates(Strategy::kLeafsetAdjust));
}

TEST(PlanSession, ValidatedTreesForAllStrategies) {
  auto& pool = p2p::testing::SharedSmallPool();
  util::Rng rng(7);
  const auto idx = rng.SampleIndices(pool.size(), 12);
  PlanInput in;
  in.degree_bounds = pool.degree_bounds();
  in.root = idx[0];
  in.members.assign(idx.begin() + 1, idx.end());
  for (std::size_t v = 0; v < pool.size(); ++v) {
    if (std::find(idx.begin(), idx.end(), v) == idx.end() &&
        pool.degree_bound(v) >= 4)
      in.helper_candidates.push_back(v);
  }
  in.true_latency = pool.TrueLatencyFn();
  in.estimated_latency = pool.EstimatedLatencyFn();
  for (const Strategy s :
       {Strategy::kAmcast, Strategy::kAmcastAdjust, Strategy::kCritical,
        Strategy::kCriticalAdjust, Strategy::kLeafset,
        Strategy::kLeafsetAdjust}) {
    SCOPED_TRACE(StrategyName(s));
    const auto r = PlanSession(in, s);
    r.tree.Validate(in.degree_bounds);
    EXPECT_EQ(r.tree.size(), 12u + r.helpers_used);
  }
}

}  // namespace
}  // namespace p2p::alm
