// Property-based sweeps over the DHT layer: ring invariants, routing
// correctness, and zone coverage across sizes, leafset widths and seeds
// (TEST_P / INSTANTIATE_TEST_SUITE_P).
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "dht/ring.h"
#include "util/rng.h"

namespace p2p::dht {
namespace {

// (ring size, leafset size, seed, routing geometry)
using RingParam =
    std::tuple<std::size_t, std::size_t, std::uint64_t, RoutingGeometry>;

class RingProperty : public ::testing::TestWithParam<RingParam> {
 protected:
  void SetUp() override {
    const auto [n, leafset, seed, geometry] = GetParam();
    ring_ = std::make_unique<Ring>(leafset, nullptr, geometry);
    for (std::size_t i = 0; i < n; ++i)
      ring_->JoinHashed(i, /*salt=*/seed & 0xff);
    ring_->StabilizeAll();
  }
  std::unique_ptr<Ring> ring_;
};

TEST_P(RingProperty, InvariantsHold) { ring_->CheckInvariants(); }

TEST_P(RingProperty, ZonesPartitionTheSpace) {
  // Every key resolves to exactly one node, and that node's zone
  // definition (pred, id] contains the key.
  util::Rng rng(std::get<2>(GetParam()) ^ 0xabc);
  const auto sorted = ring_->SortedAlive();
  for (int i = 0; i < 100; ++i) {
    const NodeId key = rng();
    const NodeIndex owner = ring_->ResponsibleFor(key);
    const auto it = std::find(sorted.begin(), sorted.end(), owner);
    ASSERT_NE(it, sorted.end());
    const std::size_t pos = static_cast<std::size_t>(it - sorted.begin());
    const NodeId pred =
        ring_->node(sorted[(pos + sorted.size() - 1) % sorted.size()]).id();
    EXPECT_TRUE(sorted.size() == 1 ||
                InArc(pred, key, ring_->node(owner).id()));
  }
}

TEST_P(RingProperty, RoutingAlwaysReachesResponsible) {
  util::Rng rng(std::get<2>(GetParam()) ^ 0xdef);
  for (int i = 0; i < 50; ++i) {
    const NodeId key = rng();
    const NodeIndex from = rng.NextBounded(ring_->size());
    const RouteResult r = ring_->Route(from, key);
    ASSERT_TRUE(r.success);
    EXPECT_EQ(r.destination, ring_->ResponsibleFor(key));
  }
}

TEST_P(RingProperty, RoutingSurvivesQuarterFailuresAfterDetection) {
  // A quarter of the ring crashes and each failure is detected (leafset
  // repair). Routing must then succeed at EVERY leafset size — undetected
  // failures with tiny leafsets can legitimately strand a lookup (all of
  // a node's neighbours dead), which is what failure detection exists
  // for; that scenario is covered separately at realistic leafset sizes.
  util::Rng rng(std::get<2>(GetParam()) ^ 0x123);
  const std::size_t kill = ring_->alive_count() / 4;
  for (std::size_t i = 0; i < kill; ++i) {
    const auto alive = ring_->SortedAlive();
    if (alive.size() <= 2) break;
    const NodeIndex victim = alive[rng.NextBounded(alive.size())];
    ring_->Fail(victim);
    ring_->DetectFailure(victim);
  }
  for (int i = 0; i < 30; ++i) {
    const NodeId key = rng();
    const auto alive = ring_->SortedAlive();
    const RouteResult r =
        ring_->Route(alive[rng.NextBounded(alive.size())], key);
    EXPECT_TRUE(r.success);
    EXPECT_EQ(r.destination, ring_->ResponsibleFor(key));
  }
}

TEST_P(RingProperty, LeafsetsMirrorEachOther) {
  // If y is in x's successor set at distance k ≤ r, then x is in y's
  // predecessor set (converged rings are symmetric).
  for (const NodeIndex n : ring_->SortedAlive()) {
    for (const auto& e : ring_->node(n).leafset().successors()) {
      EXPECT_TRUE(
          ring_->node(e.node).leafset().Contains(ring_->node(n).id()))
          << "asymmetric leafset between " << n << " and " << e.node;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RingProperty,
    ::testing::Combine(::testing::Values(2, 5, 16, 64, 150),
                       ::testing::Values(4, 8, 32),
                       ::testing::Values(1, 99),
                       ::testing::Values(RoutingGeometry::kChordFingers,
                                         RoutingGeometry::kPastryPrefix)),
    [](const ::testing::TestParamInfo<RingParam>& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_ls" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param)) +
             (std::get<3>(info.param) == RoutingGeometry::kChordFingers
                  ? "_chord"
                  : "_pastry");
    });

}  // namespace
}  // namespace p2p::dht
