#include <gtest/gtest.h>

#include <vector>

#include "net/graph.h"
#include "net/latency_oracle.h"
#include "net/transit_stub.h"
#include "sim/simulation.h"
#include "sim/trace.h"
#include "sim/transport.h"
#include "util/rng.h"

namespace p2p::sim {
namespace {

Message Msg(std::size_t src, std::size_t dst,
            Protocol proto = Protocol::kOther, std::size_t bytes = 100) {
  Message m;
  m.src_host = src;
  m.dst_host = dst;
  m.protocol = proto;
  m.bytes = bytes;
  return m;
}

// ------------------------------------------------------------ delay model --

TEST(Transport, SameHostDeliversImmediately) {
  Simulation sim;
  double delivered_at = -1.0;
  sim.transport().Send(Msg(3, 3), [&] { delivered_at = sim.now(); });
  sim.Run();
  EXPECT_DOUBLE_EQ(delivered_at, 0.0);
}

TEST(Transport, BusDefaultDelayAppliesWithoutOracle) {
  Simulation sim;
  sim.transport().set_default_delay_ms(75.0);
  double delivered_at = -1.0;
  sim.transport().Send(Msg(0, 1), [&] { delivered_at = sim.now(); });
  sim.Run();
  EXPECT_DOUBLE_EQ(delivered_at, 75.0);
}

TEST(Transport, PerSendFallbackBeatsBusDefault) {
  Simulation sim;
  double delivered_at = -1.0;
  SendOptions opts;
  opts.fallback_delay_ms = 10.0;
  sim.transport().Send(Msg(0, 1), [&] { delivered_at = sim.now(); }, opts);
  sim.Run();
  EXPECT_DOUBLE_EQ(delivered_at, 10.0);
}

TEST(Transport, DelayOverrideBeatsEverything) {
  Simulation sim;
  double delivered_at = -1.0;
  SendOptions opts;
  opts.fallback_delay_ms = 10.0;
  opts.delay_override_ms = 3.5;
  sim.transport().Send(Msg(0, 1), [&] { delivered_at = sim.now(); }, opts);
  sim.Run();
  EXPECT_DOUBLE_EQ(delivered_at, 3.5);
}

TEST(Transport, OracleProvidesHostToHostDelay) {
  util::Rng rng(11);
  net::TransitStubParams params;
  params.transit_domains = 2;
  params.transit_routers_per_domain = 2;
  params.stub_domains_per_transit_router = 2;
  params.routers_per_stub_domain = 3;
  params.end_hosts = 16;
  const auto topo = net::GenerateTransitStub(params, rng);
  const net::LatencyOracle oracle(topo);

  Simulation sim;
  sim.transport().set_oracle(&oracle);
  double delivered_at = -1.0;
  sim.transport().Send(Msg(2, 9), [&] { delivered_at = sim.now(); });
  sim.Run();
  EXPECT_DOUBLE_EQ(delivered_at, oracle.Latency(2, 9));
  EXPECT_DOUBLE_EQ(sim.transport().BaseDelayMs(2, 9), oracle.Latency(2, 9));
  EXPECT_DOUBLE_EQ(sim.transport().BaseDelayMs(9, 9), 0.0);
}

// ---------------------------------------------------------- deterministic --

TEST(Transport, EqualDelaySendsDeliverFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    sim.transport().Send(Msg(0, 1), [&order, i] { order.push_back(i); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Transport, FaultFreeSendConsumesNoRng) {
  // The acid test of the refactor: with faults off, routing traffic through
  // the bus must leave the simulation's RNG stream untouched, so seeded
  // runs that predate the transport are bit-identical.
  Simulation a(42), b(42);
  for (int i = 0; i < 10; ++i)
    a.transport().Send(Msg(0, 1, Protocol::kHeartbeat), [] {});
  a.Run();
  EXPECT_EQ(a.rng()(), b.rng()());
}

// --------------------------------------------------------- fault injection --

TEST(Transport, TotalLossDropsEverything) {
  Simulation sim;
  sim.transport().faults().loss_probability = 1.0;
  bool ran = false;
  const bool admitted = sim.transport().Send(Msg(0, 1), [&] { ran = true; });
  sim.Run();
  EXPECT_FALSE(admitted);
  EXPECT_FALSE(ran);
  const auto total = sim.transport().stats().Total();
  EXPECT_EQ(total.sent, 1u);
  EXPECT_EQ(total.dropped, 1u);
  EXPECT_EQ(total.delivered, 0u);
}

TEST(Transport, LossIsDeterministicPerSeed) {
  const auto drop_pattern = [](std::uint64_t seed) {
    Simulation sim(seed);
    sim.transport().faults().loss_probability = 0.5;
    std::vector<bool> admitted;
    for (int i = 0; i < 64; ++i)
      admitted.push_back(sim.transport().Send(Msg(0, 1), [] {}));
    return admitted;
  };
  EXPECT_EQ(drop_pattern(7), drop_pattern(7));
  EXPECT_NE(drop_pattern(7), drop_pattern(8));  // and seed-dependent
}

TEST(Transport, JitterStretchesButNeverShrinksDelay) {
  Simulation sim(5);
  sim.transport().set_default_delay_ms(20.0);
  sim.transport().faults().jitter_ms = 30.0;
  std::vector<double> arrivals;
  for (int i = 0; i < 32; ++i)
    sim.transport().Send(Msg(0, 1), [&] { arrivals.push_back(sim.now()); });
  sim.Run();
  ASSERT_EQ(arrivals.size(), 32u);
  bool spread = false;
  for (const double t : arrivals) {
    EXPECT_GE(t, 20.0);
    EXPECT_LT(t, 50.0);
    if (t != arrivals.front()) spread = true;
  }
  EXPECT_TRUE(spread);  // jitter actually varies per message
}

TEST(Transport, PerLinkLossOverridesGlobal) {
  Simulation sim;
  sim.transport().SetLinkLoss(0, 1, 1.0);  // directed
  EXPECT_FALSE(sim.transport().Send(Msg(0, 1), [] {}));
  EXPECT_TRUE(sim.transport().Send(Msg(1, 0), [] {}));  // reverse unaffected
  sim.transport().ClearLinkLoss();
  EXPECT_TRUE(sim.transport().Send(Msg(0, 1), [] {}));
}

TEST(Transport, PartitionIsolatesHostSet) {
  Simulation sim;
  sim.transport().Partition({0, 1});
  EXPECT_TRUE(sim.transport().Partitioned(0, 2));
  EXPECT_FALSE(sim.transport().Partitioned(0, 1));  // inside the set
  EXPECT_FALSE(sim.transport().Partitioned(2, 3));  // outside the set
  EXPECT_FALSE(sim.transport().Send(Msg(0, 2), [] {}));
  EXPECT_FALSE(sim.transport().Send(Msg(2, 1), [] {}));
  EXPECT_TRUE(sim.transport().Send(Msg(0, 1), [] {}));
  EXPECT_TRUE(sim.transport().Send(Msg(2, 3), [] {}));
  sim.transport().HealPartitions();
  EXPECT_TRUE(sim.transport().Send(Msg(0, 2), [] {}));
}

// ----------------------------------------------------- drop-cause accounting --

TEST(Transport, LossDropAccountedAsLossCause) {
  Simulation sim;
  TraceSink trace;
  sim.transport().set_trace(&trace);
  sim.transport().faults().loss_probability = 1.0;
  EXPECT_FALSE(sim.transport().Send(Msg(0, 1), [] {}));
  const auto total = sim.transport().stats().Total();
  EXPECT_EQ(total.dropped, 1u);
  EXPECT_EQ(total.dropped_loss, 1u);
  EXPECT_EQ(total.dropped_partition, 0u);
  const auto records = trace.Snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(records[0].dropped);
  EXPECT_EQ(records[0].cause, DropCause::kLoss);
}

TEST(Transport, PartitionDropAccountedAsPartitionCause) {
  Simulation sim;
  TraceSink trace;
  sim.transport().set_trace(&trace);
  // Loss maxed out too: partition is checked first, so the cause must
  // still read kPartition (and the loss RNG must not even be consulted).
  sim.transport().faults().loss_probability = 1.0;
  sim.transport().Partition({0});
  EXPECT_FALSE(sim.transport().Send(Msg(0, 1), [] {}));
  const auto total = sim.transport().stats().Total();
  EXPECT_EQ(total.dropped, 1u);
  EXPECT_EQ(total.dropped_partition, 1u);
  EXPECT_EQ(total.dropped_loss, 0u);
  const auto records = trace.Snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].cause, DropCause::kPartition);
}

TEST(Transport, CauseSplitSumsToTotalDropped) {
  Simulation sim(17);
  sim.transport().faults().loss_probability = 0.4;
  sim.transport().Partition({5});
  for (int i = 0; i < 100; ++i) sim.transport().Send(Msg(0, 1), [] {});
  for (int i = 0; i < 20; ++i) sim.transport().Send(Msg(5, 1), [] {});
  sim.Run();
  const auto total = sim.transport().stats().Total();
  EXPECT_EQ(total.dropped, total.dropped_loss + total.dropped_partition);
  EXPECT_GT(total.dropped_loss, 0u);
  EXPECT_EQ(total.dropped_partition, 20u);  // every partitioned send
}

// ----------------------------------------------------------------- metrics --

TEST(Transport, EnableMetricsPopulatesRegistry) {
  Simulation sim;
  sim.EnableMetrics();
  sim.transport().faults().loss_probability = 1.0;
  sim.transport().Send(Msg(0, 1, Protocol::kHeartbeat, 200), [] {});
  sim.transport().faults().loss_probability = 0.0;
  sim.transport().Send(Msg(0, 1, Protocol::kHeartbeat, 200), [] {});
  sim.transport().Partition({0});
  sim.transport().Send(Msg(0, 1, Protocol::kSomo, 64), [] {});
  sim.transport().HealPartitions();
  sim.Run();
  auto& m = sim.metrics();
  EXPECT_DOUBLE_EQ(m.Value("transport.heartbeat.sent"), 2.0);
  EXPECT_DOUBLE_EQ(m.Value("transport.heartbeat.delivered"), 1.0);
  EXPECT_DOUBLE_EQ(m.Value("transport.heartbeat.dropped.loss"), 1.0);
  EXPECT_DOUBLE_EQ(m.Value("transport.heartbeat.bytes"), 400.0);
  EXPECT_DOUBLE_EQ(m.Value("transport.somo.dropped.partition"), 1.0);
  // Everything in flight has drained.
  EXPECT_DOUBLE_EQ(m.Value("transport.inflight.messages"), 0.0);
  EXPECT_DOUBLE_EQ(m.Value("transport.inflight.bytes"), 0.0);
}

TEST(Transport, InflightGaugesTrackQueuedMessages) {
  Simulation sim;
  sim.EnableMetrics();
  sim.transport().set_default_delay_ms(50.0);
  sim.transport().Send(Msg(0, 1, Protocol::kOther, 300), [] {});
  sim.transport().Send(Msg(1, 2, Protocol::kOther, 200), [] {});
  EXPECT_DOUBLE_EQ(sim.metrics().Value("transport.inflight.messages"), 2.0);
  EXPECT_DOUBLE_EQ(sim.metrics().Value("transport.inflight.bytes"), 500.0);
  sim.Run();
  EXPECT_DOUBLE_EQ(sim.metrics().Value("transport.inflight.messages"), 0.0);
}

TEST(Transport, EnableMetricsConsumesNoRng) {
  // Instrumentation must never touch the seeded RNG stream: a run with
  // metrics on is bit-identical to the same seed with metrics off.
  Simulation a(42), b(42);
  a.EnableMetrics();
  for (int i = 0; i < 10; ++i) {
    a.transport().Send(Msg(0, 1, Protocol::kSomo), [] {});
    b.transport().Send(Msg(0, 1, Protocol::kSomo), [] {});
  }
  a.Run();
  b.Run();
  EXPECT_EQ(a.rng()(), b.rng()());
}

// ------------------------------------------------------------- accounting --

TEST(Transport, CountersSplitByProtocol) {
  Simulation sim;
  sim.transport().Send(Msg(0, 1, Protocol::kHeartbeat, 1500), [] {});
  sim.transport().Send(Msg(0, 1, Protocol::kHeartbeat, 1500), [] {});
  sim.transport().Send(Msg(0, 1, Protocol::kSomo, 64), [] {});
  sim.Run();
  const auto stats = sim.transport().stats();
  EXPECT_EQ(stats.protocol(Protocol::kHeartbeat).sent, 2u);
  EXPECT_EQ(stats.protocol(Protocol::kHeartbeat).delivered, 2u);
  EXPECT_EQ(stats.protocol(Protocol::kHeartbeat).bytes, 3000u);
  EXPECT_EQ(stats.protocol(Protocol::kSomo).sent, 1u);
  EXPECT_EQ(stats.protocol(Protocol::kSomo).bytes, 64u);
  EXPECT_EQ(stats.protocol(Protocol::kMaintenance).sent, 0u);
  const auto total = stats.Total();
  EXPECT_EQ(total.sent, 3u);
  EXPECT_EQ(total.bytes, 3064u);
  sim.transport().ResetStats();
  EXPECT_EQ(sim.transport().stats().Total().sent, 0u);
}

TEST(Transport, SentSplitsIntoDeliveredPlusDropped) {
  Simulation sim(3);
  sim.transport().faults().loss_probability = 0.3;
  for (int i = 0; i < 200; ++i) sim.transport().Send(Msg(0, 1), [] {});
  sim.Run();
  const auto total = sim.transport().stats().Total();
  EXPECT_EQ(total.sent, 200u);
  EXPECT_EQ(total.delivered + total.dropped, 200u);
  EXPECT_GT(total.dropped, 0u);
  EXPECT_GT(total.delivered, 0u);
}

TEST(Transport, InlineDeliveryRunsInsideSend) {
  Simulation sim;
  bool ran = false;
  SendOptions opts;
  opts.inline_delivery = true;
  sim.transport().Send(Msg(0, 1), [&] { ran = true; }, opts);
  EXPECT_TRUE(ran);  // before Run()
  EXPECT_EQ(sim.transport().stats().Total().delivered, 1u);
}

// ---------------------------------------------------------------- tracing --

TEST(Transport, TraceRecordsSendsAndDrops) {
  Simulation sim;
  TraceSink trace;
  sim.transport().set_trace(&trace);
  sim.transport().SetLinkLoss(0, 2, 1.0);
  sim.transport().Send(Msg(0, 1, Protocol::kHeartbeat, 1500), [] {});
  sim.transport().Send(Msg(0, 2, Protocol::kSomo, 64), [] {});
  sim.Run();
  const auto records = trace.Snapshot();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].protocol, Protocol::kHeartbeat);
  EXPECT_FALSE(records[0].dropped);
  EXPECT_EQ(records[0].bytes, 1500u);
  EXPECT_EQ(records[1].protocol, Protocol::kSomo);
  EXPECT_TRUE(records[1].dropped);
  EXPECT_DOUBLE_EQ(records[0].time_ms, 0.0);  // stamped at send time
}

TEST(TraceSink, BoundedCapacityKeepsNewestRecords) {
  TraceSink trace(4);
  for (std::size_t i = 0; i < 10; ++i) {
    TraceRecord r;
    r.kind = static_cast<std::uint16_t>(i);
    trace.Append(r);
  }
  EXPECT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace.total_records(), 10u);  // truncation is detectable
  const auto records = trace.Snapshot();
  ASSERT_EQ(records.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(records[i].kind, 6u + i);
}

TEST(TraceSink, WriteTextEmitsHeaderAndRows) {
  TraceSink trace;
  TraceRecord r;
  r.time_ms = 1.5;
  r.src_host = 3;
  r.dst_host = 4;
  r.protocol = Protocol::kBwest;
  r.bytes = 3000;
  trace.Append(r);
  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  ASSERT_TRUE(trace.WriteText(tmp));
  std::rewind(tmp);
  char line[256];
  ASSERT_NE(std::fgets(line, sizeof line, tmp), nullptr);
  EXPECT_EQ(std::string(line), "p2ptrace v2 1 1\n");
  ASSERT_NE(std::fgets(line, sizeof line, tmp), nullptr);
  EXPECT_EQ(std::string(line), "1.500000 3 4 bwest 0 3000 0 0\n");
  std::fclose(tmp);
}

// ------------------------------------------------- per-host stats (lazy) --

TEST(Transport, PerHostStatsAllocateLazily) {
  Simulation sim;
  Transport& tp = sim.transport();

  // Off by default: no table, and traffic does not allocate one. The
  // first send grows the pooled in-flight slab, so warm it before taking
  // the baseline — the deltas below then isolate the per-host table.
  EXPECT_FALSE(tp.per_host_enabled());
  tp.Send(Msg(0, 1), [] {});
  sim.Run();
  const std::size_t before = tp.MemoryBytes();
  tp.Send(Msg(0, 1), [] {});
  sim.Run();
  EXPECT_FALSE(tp.per_host_enabled());
  EXPECT_EQ(tp.MemoryBytes(), before);

  // Enabling sizes the table to the host count and starts counting — but
  // only from that point on: the pre-enable send above is not back-filled.
  tp.EnablePerHostStats(4);
  EXPECT_TRUE(tp.per_host_enabled());
  EXPECT_GE(tp.MemoryBytes(), before + 4 * sizeof(HostStats));
  EXPECT_EQ(tp.host_stats(0).sent, 0u);

  tp.Send(Msg(0, 2, Protocol::kSomo, 250), [] {});
  sim.Run();
  EXPECT_EQ(tp.host_stats(0).sent, 1u);
  EXPECT_EQ(tp.host_stats(0).delivered, 1u);
  EXPECT_EQ(tp.host_stats(0).bytes, 250u);
  EXPECT_EQ(tp.host_stats(2).sent, 0u);  // accounting is per SOURCE host
}

TEST(Transport, PerHostStatsNeverShrinkAndIgnoreOutOfRangeHosts) {
  Simulation sim;
  Transport& tp = sim.transport();
  tp.Send(Msg(0, 1), [] {});  // warm the pooled in-flight slab
  sim.Run();
  tp.EnablePerHostStats(8);
  const std::size_t sized = tp.MemoryBytes();
  tp.EnablePerHostStats(2);  // re-enable with fewer hosts must not shrink
  EXPECT_EQ(tp.MemoryBytes(), sized);

  // A send from a host beyond the table is delivered but uncounted rather
  // than crashing or growing the table.
  tp.Send(Msg(100, 1), [] {});
  sim.Run();
  EXPECT_EQ(tp.MemoryBytes(), sized);
  EXPECT_EQ(tp.stats().Total().delivered, 2u);
  EXPECT_EQ(tp.host_stats(0).sent, 0u);  // pre-enable send not back-filled
}

}  // namespace
}  // namespace p2p::sim
