// Kernel-scale scheduler tests: the timing-wheel backend against the
// retained binary-heap reference (randomized differential + cascade
// boundaries), the InlineFn small-buffer callable, first-class periodic
// timers, and end-to-end A/B determinism of full protocol runs across the
// two scheduler backends.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "dht/heartbeat.h"
#include "dht/ring.h"
#include "sim/event_queue.h"
#include "sim/simulation.h"
#include "sim/trace.h"
#include "sim/transport.h"
#include "somo/somo.h"
#include "util/check.h"
#include "util/inline_fn.h"
#include "util/rng.h"

namespace p2p::sim {
namespace {

// ------------------------------------------------------------- InlineFn --

TEST(InlineFn, SmallCapturesStayInline) {
  int hits = 0;
  int* p = &hits;
  std::uint64_t a = 1, b = 2, c = 3, d = 4;  // 40 bytes with the pointer
  util::InlineFn fn([p, a, b, c, d] { *p += static_cast<int>(a + b + c + d); });
  EXPECT_TRUE(fn.stored_inline());
  fn();
  EXPECT_EQ(hits, 10);
}

TEST(InlineFn, LargeCapturesFallBackToHeap) {
  std::vector<int> payload(64, 7);
  int sum = 0;
  std::array<std::uint64_t, 8> big{};  // 64 bytes > kInlineBytes
  util::InlineFn fn([&sum, payload, big] {
    for (int v : payload) sum += v;
    sum += static_cast<int>(big[0]);
  });
  EXPECT_FALSE(fn.stored_inline());
  fn();
  EXPECT_EQ(sum, 64 * 7);
}

TEST(InlineFn, MoveTransfersOwnershipExactlyOnce) {
  auto counter = std::make_shared<int>(0);
  util::InlineFn fn([counter] { ++*counter; });
  EXPECT_EQ(counter.use_count(), 2);
  util::InlineFn moved(std::move(fn));
  EXPECT_FALSE(static_cast<bool>(fn));  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(static_cast<bool>(moved));
  EXPECT_EQ(counter.use_count(), 2);
  moved();
  EXPECT_EQ(*counter, 1);
  moved = nullptr;
  EXPECT_EQ(counter.use_count(), 1);  // destructor ran
}

TEST(InlineFn, InvokingEmptyThrows) {
  util::InlineFn fn;
  EXPECT_THROW(fn(), util::CheckError);
  util::InlineFn null_fn(nullptr);
  EXPECT_THROW(null_fn(), util::CheckError);
}

TEST(InlineFn, MoveAssignDestroysPreviousTarget) {
  auto first = std::make_shared<int>(0);
  auto second = std::make_shared<int>(0);
  util::InlineFn fn([first] { ++*first; });
  fn = util::InlineFn([second] { ++*second; });
  EXPECT_EQ(first.use_count(), 1);  // old callable destroyed
  fn();
  EXPECT_EQ(*second, 1);
}

// ------------------------------------------- Schedule argument hardening --

TEST(EventQueueKernel, RejectsNonFiniteTimes) {
  for (const SchedulerKind kind :
       {SchedulerKind::kTimingWheel, SchedulerKind::kBinaryHeap}) {
    EventQueue q(kind);
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_THROW(q.Schedule(nan, [] {}), util::CheckError);
    EXPECT_THROW(q.Schedule(inf, [] {}), util::CheckError);
    EXPECT_THROW(q.Schedule(-inf, [] {}), util::CheckError);
    EXPECT_THROW(q.Schedule(-1.0, [] {}), util::CheckError);
    EXPECT_THROW(q.SchedulePeriodic(nan, 10.0, [] {}), util::CheckError);
    EXPECT_THROW(q.SchedulePeriodic(0.0, 0.0, [] {}), util::CheckError);
    EXPECT_THROW(q.SchedulePeriodic(0.0, -5.0, [] {}), util::CheckError);
    EXPECT_THROW(q.SchedulePeriodic(0.0, inf, [] {}), util::CheckError);
    EXPECT_TRUE(q.empty()) << "rejected schedules must not leak events";
    EXPECT_EQ(q.heap_footprint(), 0u);
  }
}

TEST(EventQueueKernel, RearmRejectsNonFiniteTimes) {
  EventQueue q;
  const EventId id = q.Schedule(5.0, [] {});
  EXPECT_THROW(q.Rearm(id, std::numeric_limits<double>::quiet_NaN()),
               util::CheckError);
  EXPECT_THROW(q.Rearm(id, -2.0), util::CheckError);
  EXPECT_TRUE(q.Rearm(id, 7.0));
  EXPECT_DOUBLE_EQ(q.PeekTime(), 7.0);
}

// -------------------------------------------------- wheel cascade bounds --

// Times straddling every wheel-level boundary (level 0 holds 256 one-ms
// ticks, level 1 256-ms buckets, level 2 65,536-ms buckets, ~4.66 h
// horizon, then the overflow heap) must still pop in exact (time, seq)
// order.
TEST(EventQueueKernel, CascadeBoundaryTimesPopInOrder) {
  for (const SchedulerKind kind :
       {SchedulerKind::kTimingWheel, SchedulerKind::kBinaryHeap}) {
    EventQueue q(kind);
    const std::vector<double> times = {
        0.0,        0.25,        255.0,       255.999,     256.0,
        256.001,    511.5,       512.0,       65535.5,     65536.0,
        65536.25,   131071.9,    131072.0,    16777215.9,  16777216.0,
        16777217.5, 33554432.0,  1.0e8,       4.2e9,       1.0e12,
        5.0e15,     1.0e16,      1.0e16,      9.0e17};
    // Schedule in a scrambled order so placement exercises every level.
    std::vector<std::size_t> order(times.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    util::Rng rng(7);
    rng.Shuffle(order);
    std::vector<double> popped;
    for (const std::size_t i : order) {
      q.Schedule(times[i], [] {});
    }
    while (!q.empty()) {
      EXPECT_DOUBLE_EQ(q.PeekTime(), q.PeekTime());
      auto fired = q.Pop();
      popped.push_back(fired.time);
    }
    std::vector<double> expected = times;
    std::sort(expected.begin(), expected.end());
    ASSERT_EQ(popped.size(), expected.size()) << "kind=" << static_cast<int>(kind);
    for (std::size_t i = 0; i < popped.size(); ++i)
      EXPECT_DOUBLE_EQ(popped[i], expected[i]) << "i=" << i;
  }
}

TEST(EventQueueKernel, SameTickBurstKeepsFifoOrder) {
  for (const SchedulerKind kind :
       {SchedulerKind::kTimingWheel, SchedulerKind::kBinaryHeap}) {
    EventQueue q(kind);
    std::vector<int> log;
    // 100 events at the same sub-millisecond time: FIFO by seq.
    for (int i = 0; i < 100; ++i) {
      q.Schedule(1000.5, [&log, i] { log.push_back(i); });
    }
    while (!q.empty()) q.Pop().cb();
    ASSERT_EQ(log.size(), 100u);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(log[i], i);
  }
}

// Events scheduled at the tick currently being served must pop before
// later entries of the same tick — the due-list insert path.
TEST(EventQueueKernel, ArrivalsDuringServedTickSlotInByTime) {
  for (const SchedulerKind kind :
       {SchedulerKind::kTimingWheel, SchedulerKind::kBinaryHeap}) {
    EventQueue q(kind);
    q.Schedule(100.2, [] {});
    q.Schedule(100.8, [] {});
    auto first = q.Pop();
    EXPECT_DOUBLE_EQ(first.time, 100.2);
    // Same tick (100), between the two pending times.
    q.Schedule(100.5, [] {});
    // Same tick, same time as a pending event: FIFO puts it after.
    q.Schedule(100.8, [] {});
    EXPECT_DOUBLE_EQ(q.Pop().time, 100.5);
    EXPECT_DOUBLE_EQ(q.Pop().time, 100.8);
    EXPECT_DOUBLE_EQ(q.Pop().time, 100.8);
    EXPECT_TRUE(q.empty());
  }
}

// ------------------------------------------------------ periodic timers --

TEST(EventQueueKernel, PeriodicFiresAndRearmsInPlace) {
  for (const SchedulerKind kind :
       {SchedulerKind::kTimingWheel, SchedulerKind::kBinaryHeap}) {
    EventQueue q(kind);
    int fires = 0;
    const EventId id = q.SchedulePeriodic(10.0, 25.0, [&fires] { ++fires; });
    std::vector<double> fire_times;
    for (int i = 0; i < 4; ++i) {
      auto fired = q.Pop();
      ASSERT_TRUE(fired.is_periodic());
      EXPECT_EQ(fired.id, id);
      fire_times.push_back(fired.time);
      (*fired.periodic)();
      EXPECT_TRUE(q.FinishPeriodic(fired.id));
    }
    EXPECT_EQ(fires, 4);
    EXPECT_EQ(q.size(), 1u) << "one record for the timer's whole lifetime";
    const std::vector<double> want = {10.0, 35.0, 60.0, 85.0};
    for (std::size_t i = 0; i < want.size(); ++i)
      EXPECT_DOUBLE_EQ(fire_times[i], want[i]);
    EXPECT_TRUE(q.Cancel(id));
    EXPECT_TRUE(q.empty());
  }
}

TEST(EventQueueKernel, RearmMovesDeadlineWithoutCancel) {
  EventQueue q;
  int fired = 0;
  const EventId id = q.Schedule(500.0, [&fired] { ++fired; });
  EXPECT_TRUE(q.Rearm(id, 50.0));
  q.Schedule(100.0, [] {});
  auto f = q.Pop();
  EXPECT_DOUBLE_EQ(f.time, 50.0);
  EXPECT_EQ(f.id, id);
  f.cb();
  EXPECT_EQ(fired, 1);
  // The id died with the firing.
  EXPECT_FALSE(q.Rearm(id, 700.0));
  EXPECT_FALSE(q.Cancel(id));
}

TEST(EventQueueKernel, RearmFromInsidePeriodicCallbackOverridesPeriod) {
  EventQueue q;
  const EventId id = q.SchedulePeriodic(10.0, 100.0, [] {});
  auto f = q.Pop();
  (*f.periodic)();
  EXPECT_TRUE(q.Rearm(id, 17.0));  // instead of 10 + 100
  EXPECT_TRUE(q.FinishPeriodic(id));
  EXPECT_DOUBLE_EQ(q.PeekTime(), 17.0);
  auto g = q.Pop();
  (*g.periodic)();
  EXPECT_TRUE(q.FinishPeriodic(id));
  EXPECT_DOUBLE_EQ(q.PeekTime(), 117.0) << "period resumes after the rearm";
}

TEST(EventQueueKernel, CancelInsidePeriodicCallbackStopsTimer) {
  EventQueue q;
  EventId id = kInvalidEventId;
  int fires = 0;
  id = q.SchedulePeriodic(5.0, 5.0, [&] {
    ++fires;
    if (fires == 3) {
      EXPECT_TRUE(q.Cancel(id));
    }
  });
  std::size_t steps = 0;
  while (!q.empty() && steps < 100) {
    auto f = q.Pop();
    if (f.is_periodic()) {
      (*f.periodic)();
      q.FinishPeriodic(f.id);
    } else {
      f.cb();
    }
    ++steps;
  }
  EXPECT_EQ(fires, 3);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueKernel, StaleIdsNeverCancelTheSlotsNextTenant) {
  EventQueue q;
  const EventId a = q.Schedule(1.0, [] {});
  q.Pop().cb();  // slot freed, generation bumped
  const EventId b = q.Schedule(2.0, [] {});
  EXPECT_NE(a, b);
  EXPECT_FALSE(q.Cancel(a)) << "stale id must not hit the reused slot";
  EXPECT_EQ(q.size(), 1u);
  EXPECT_TRUE(q.Cancel(b));
}

// -------------------------------------------- randomized differential --

// The wheel and the reference heap must agree on every observable: pop
// order, event ids, Cancel/Rearm return values, sizes. Drives both through
// an identical randomized schedule/cancel/rearm/pop workload, including
// same-tick bursts, far-future times beyond the wheel horizon, periodic
// timers, and pops interleaved with mutation.
TEST(EventQueueKernel, RandomizedDifferentialWheelVsHeap) {
  EventQueue wheel(SchedulerKind::kTimingWheel);
  EventQueue heap(SchedulerKind::kBinaryHeap);
  util::Rng rng(0xC0FFEE);
  double now = 0.0;
  std::vector<EventId> live;       // same for both queues by construction
  std::vector<EventId> periodics;  // subset of live needing FinishPeriodic

  const auto random_delay = [&]() -> double {
    switch (rng.UniformInt(0, 4)) {
      case 0:
        return rng.Uniform(0.0, 2.0);        // same/next tick
      case 1:
        return rng.Uniform(0.0, 300.0);      // level 0/1
      case 2:
        return rng.Uniform(0.0, 70000.0);    // level 1/2
      case 3:
        return rng.Uniform(0.0, 2.0e7);      // level 2 + overflow
      default:
        return 1.0e16 + rng.Uniform(0.0, 1.0);  // beyond-horizon sentinel
    }
  };

  for (int step = 0; step < 20000; ++step) {
    const int op = static_cast<int>(rng.UniformInt(0, 9));
    if (op <= 3) {  // schedule one-shot
      const double t = now + random_delay();
      const EventId wid = wheel.Schedule(t, [] {});
      const EventId hid = heap.Schedule(t, [] {});
      ASSERT_EQ(wid, hid);
      live.push_back(wid);
    } else if (op == 4) {  // schedule periodic
      const double t = now + rng.Uniform(0.0, 5000.0);
      const double period = rng.Uniform(0.5, 10000.0);
      const EventId wid = wheel.SchedulePeriodic(t, period, [] {});
      const EventId hid = heap.SchedulePeriodic(t, period, [] {});
      ASSERT_EQ(wid, hid);
      live.push_back(wid);
      periodics.push_back(wid);
    } else if (op == 5 && !live.empty()) {  // cancel (possibly stale id)
      const std::size_t k =
          static_cast<std::size_t>(rng.UniformInt(0, live.size() - 1));
      const EventId id = live[k];
      const bool wc = wheel.Cancel(id);
      const bool hc = heap.Cancel(id);
      ASSERT_EQ(wc, hc);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(k));
      std::erase(periodics, id);
    } else if (op == 6 && !live.empty()) {  // rearm (possibly stale id)
      const std::size_t k =
          static_cast<std::size_t>(rng.UniformInt(0, live.size() - 1));
      const double t = now + random_delay();
      ASSERT_EQ(wheel.Rearm(live[k], t), heap.Rearm(live[k], t));
    } else {  // pop a few events
      const int pops = static_cast<int>(rng.UniformInt(1, 4));
      for (int p = 0; p < pops && !wheel.empty(); ++p) {
        ASSERT_FALSE(heap.empty());
        ASSERT_DOUBLE_EQ(wheel.PeekTime(), heap.PeekTime());
        auto wf = wheel.Pop();
        auto hf = heap.Pop();
        ASSERT_DOUBLE_EQ(wf.time, hf.time);
        ASSERT_EQ(wf.id, hf.id);
        ASSERT_EQ(wf.is_periodic(), hf.is_periodic());
        ASSERT_GE(wf.time, now);
        now = wf.time;
        if (wf.is_periodic()) {
          ASSERT_EQ(wheel.FinishPeriodic(wf.id), heap.FinishPeriodic(hf.id));
        } else {
          std::erase(live, wf.id);
        }
      }
    }
    ASSERT_EQ(wheel.size(), heap.size());
  }

  // Stop periodic timers so the drain below terminates.
  for (const EventId id : periodics) {
    ASSERT_EQ(wheel.Cancel(id), heap.Cancel(id));
  }
  while (!wheel.empty()) {
    ASSERT_FALSE(heap.empty());
    auto wf = wheel.Pop();
    auto hf = heap.Pop();
    ASSERT_DOUBLE_EQ(wf.time, hf.time);
    ASSERT_EQ(wf.id, hf.id);
  }
  EXPECT_TRUE(heap.empty());
}

// Eager cancellation in wheel buckets must keep the footprint bound that
// the reference heap achieves by compaction.
TEST(EventQueueKernel, WheelFootprintStaysBoundedUnderChurn) {
  EventQueue q(SchedulerKind::kTimingWheel);
  util::Rng rng(99);
  std::vector<EventId> ids;
  for (int round = 0; round < 200; ++round) {
    for (int i = 0; i < 64; ++i) {
      ids.push_back(q.Schedule(rng.Uniform(0.0, 3.0e7), [] {}));
    }
    rng.Shuffle(ids);
    while (ids.size() > 16) {
      q.Cancel(ids.back());
      ids.pop_back();
    }
    ASSERT_LE(q.heap_footprint(), 2 * q.size() + 1);
  }
}

// ------------------------------------------------- Simulation-level A/B --

struct SimRunLog {
  std::vector<double> events;  // interleaved (tag, virtual time) stream
  std::string metrics_json;
  std::string trace_text;
  std::size_t fired = 0;
};

// A protocol-shaped workload on the raw Simulation API: periodic timers
// with distinct phases, self-rescheduling one-shots, transport traffic
// with loss + jitter fault injection (consuming RNG), and a mid-run
// CancelPeriodic. Everything observable is logged.
SimRunLog RunKernelWorkload(SchedulerKind kind) {
  SimRunLog log;
  Simulation sim(4242, kind);
  sim.EnableMetrics();
  TraceSink trace;
  sim.transport().set_trace(&trace);
  sim.transport().faults().loss_probability = 0.05;
  sim.transport().faults().jitter_ms = 3.0;

  std::vector<Simulation::PeriodicToken> timers;
  for (int i = 0; i < 8; ++i) {
    const double period = 40.0 + 13.0 * i;
    const double phase = sim.rng().Uniform(0.0, period);
    timers.push_back(sim.Every(period, phase, [&log, &sim, i] {
      log.events.push_back(100.0 + i);
      log.events.push_back(sim.now());
      Message m;
      m.src_host = static_cast<std::size_t>(i);
      m.dst_host = static_cast<std::size_t>((i + 1) % 8);
      m.protocol = Protocol::kOther;
      m.bytes = 64;
      sim.transport().Send(m, [&log, &sim] {
        log.events.push_back(1.0);
        log.events.push_back(sim.now());
      });
    }));
  }
  // Self-rescheduling chain with RNG-dependent gaps.
  struct Chain {
    Simulation& sim;
    SimRunLog& log;
    void operator()() {
      log.events.push_back(2.0);
      log.events.push_back(sim.now());
      if (sim.now() < 4500.0) sim.After(sim.rng().Uniform(1.0, 90.0), Chain{sim, log});
    }
  };
  sim.After(5.0, Chain{sim, log});
  // Stop half the periodic timers mid-run.
  sim.At(2500.0, [&timers] {
    for (std::size_t i = 0; i < timers.size(); i += 2)
      Simulation::CancelPeriodic(timers[i]);
  });

  sim.RunUntil(5000.0);
  log.fired = sim.fired_events();
  log.metrics_json = sim.metrics().SnapshotJson();

  std::FILE* f = std::tmpfile();
  P2P_CHECK(f != nullptr);
  trace.WriteText(f);
  std::rewind(f);
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
    log.trace_text.append(buf, n);
  std::fclose(f);
  return log;
}

TEST(SchedulerAB, KernelWorkloadIsByteIdenticalAcrossBackends) {
  const SimRunLog wheel = RunKernelWorkload(SchedulerKind::kTimingWheel);
  const SimRunLog heap = RunKernelWorkload(SchedulerKind::kBinaryHeap);
  EXPECT_EQ(wheel.fired, heap.fired);
  ASSERT_EQ(wheel.events.size(), heap.events.size());
  for (std::size_t i = 0; i < wheel.events.size(); ++i)
    ASSERT_DOUBLE_EQ(wheel.events[i], heap.events[i]) << "i=" << i;
  EXPECT_EQ(wheel.metrics_json, heap.metrics_json);
  EXPECT_EQ(wheel.trace_text, heap.trace_text);
}

// Full protocol stack A/B: DHT heartbeats + SOMO gather/disseminate over
// the shared transport. Same seed, different scheduler backend — metric
// snapshots and traces must match byte for byte.
struct StackRunLog {
  std::string metrics_json;
  std::string trace_text;
  std::size_t fired = 0;
};

StackRunLog RunProtocolStack(SchedulerKind kind) {
  StackRunLog log;
  Simulation sim(321, kind);
  sim.EnableMetrics();
  TraceSink trace;
  sim.transport().set_trace(&trace);
  sim.transport().faults().jitter_ms = 2.0;

  dht::Ring ring(8);
  for (std::size_t i = 0; i < 24; ++i) ring.JoinHashed(i);
  ring.StabilizeAll();

  dht::HeartbeatProtocol hb(sim, ring);
  hb.Start();

  somo::SomoConfig cfg;
  cfg.report_interval_ms = 1000.0;
  cfg.disseminate = true;
  somo::SomoProtocol somo(sim, ring, cfg, [&](dht::NodeIndex n) {
    somo::NodeReport r;
    r.node = n;
    r.host = ring.node(n).host();
    r.generated_at = sim.now();
    r.degrees.total = 4;
    return r;
  });
  somo.Start();

  sim.RunUntil(15000.0);
  log.fired = sim.fired_events();
  log.metrics_json = sim.metrics().SnapshotJson();

  std::FILE* f = std::tmpfile();
  P2P_CHECK(f != nullptr);
  trace.WriteText(f);
  std::rewind(f);
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
    log.trace_text.append(buf, n);
  std::fclose(f);
  return log;
}

TEST(SchedulerAB, ProtocolStackIsByteIdenticalAcrossBackends) {
  const StackRunLog wheel = RunProtocolStack(SchedulerKind::kTimingWheel);
  const StackRunLog heap = RunProtocolStack(SchedulerKind::kBinaryHeap);
  EXPECT_EQ(wheel.fired, heap.fired);
  EXPECT_EQ(wheel.metrics_json, heap.metrics_json);
  EXPECT_EQ(wheel.trace_text, heap.trace_text);
}

// ------------------------------------------------- PopAllUpTo batching --

using FireEntry = std::pair<Time, int>;

// A one-shot whose callback logs and reschedules itself `depth` more
// times, 0.25 ms apart — chains that must fire inside the same batched
// drain that started them.
void ScheduleChain(EventQueue& q, Time t, int depth,
                   std::vector<FireEntry>* log, int tag) {
  q.Schedule(t, [&q, t, depth, log, tag] {
    log->push_back({t, tag});
    if (depth > 0) ScheduleChain(q, t + 0.25, depth - 1, log, tag + 1000);
  });
}

// Mixed workload driven either by the classic peek/pop/FinishPeriodic loop
// or by PopAllUpTo, across several windows (including an empty one and a
// boundary-exact event). Returns the (time, tag) firing log, which must be
// identical across drivers and backends.
std::vector<FireEntry> DriveBatchWorkload(SchedulerKind kind, bool batched) {
  EventQueue q(kind);
  std::vector<FireEntry> log;
  util::Rng rng(2026);
  // Victims for mid-window cancel/rearm exercised below.
  auto victims = std::make_unique<std::vector<EventId>>();
  for (int i = 0; i < 400; ++i) {
    const double t = rng.Uniform(0.0, 5000.0);
    if (i % 7 == 0) {
      q.SchedulePeriodic(t, rng.Uniform(1.0, 400.0),
                         [&log, i] { log.push_back({-1.0, i}); });
    } else if (i % 5 == 0) {
      ScheduleChain(q, t, 3, &log, i);
    } else {
      q.Schedule(t, [&log, i, t] { log.push_back({t, i}); });
    }
  }
  for (int k = 0; k < 20; ++k) {
    victims->push_back(q.Schedule(
        2000.0 + 40.0 * k, [&log, k] { log.push_back({0.0, 9000 + k}); }));
  }
  for (int k = 0; k < 10; ++k) {
    // Cancellers fire inside window 1 and mutate window-2 state: even
    // victims die, odd victims move to the tail of window 3.
    q.Schedule(1000.0 + 50.0 * k, [&q, v = victims.get(), k] {
      q.Cancel((*v)[2 * k]);
      q.Rearm((*v)[2 * k + 1], 4000.0 + k);
    });
  }
  q.Schedule(1500.0, [&log] { log.push_back({1500.0, 777}); });  // boundary
  const auto drive = [&](Time t_end) {
    if (batched) {
      q.PopAllUpTo(t_end, [&](EventQueue::Fired& f) {
        if (f.is_periodic()) {
          (*f.periodic)();
        } else {
          f.cb();
        }
      });
    } else {
      while (!q.empty() && q.PeekTime() <= t_end) {
        auto f = q.Pop();
        if (f.is_periodic()) {
          (*f.periodic)();
          q.FinishPeriodic(f.id);
        } else {
          f.cb();
        }
      }
    }
  };
  drive(1500.0);
  drive(1500.0);  // empty window: nothing left at or before 1500
  drive(5200.0);
  return log;
}

TEST(EventQueueKernel, PopAllUpToMatchesStepLoopOnBothBackends) {
  const auto step_wheel = DriveBatchWorkload(SchedulerKind::kTimingWheel, false);
  const auto batch_wheel = DriveBatchWorkload(SchedulerKind::kTimingWheel, true);
  const auto step_heap = DriveBatchWorkload(SchedulerKind::kBinaryHeap, false);
  const auto batch_heap = DriveBatchWorkload(SchedulerKind::kBinaryHeap, true);
  EXPECT_FALSE(step_wheel.empty());
  EXPECT_EQ(step_wheel, batch_wheel);
  EXPECT_EQ(step_wheel, step_heap);
  EXPECT_EQ(step_wheel, batch_heap);
}

TEST(EventQueueKernel, PopAllUpToReportsPeriodicsAndRearmsThem) {
  EventQueue q(SchedulerKind::kTimingWheel);
  int fired = 0;
  const EventId id = q.SchedulePeriodic(10.0, 100.0, [&fired] { ++fired; });
  q.PopAllUpTo(500.0, [&](EventQueue::Fired& f) {
    ASSERT_TRUE(f.is_periodic());
    ASSERT_EQ(f.id, id);
    (*f.periodic)();
  });
  EXPECT_EQ(fired, 5);  // 10, 110, 210, 310, 410
  EXPECT_EQ(q.size(), 1u);  // still armed for 510
  EXPECT_TRUE(q.Cancel(id));
}

// ------------------------------------------------------------ slab trim --

TEST(EventQueueKernel, SlabTrimsAfterBurstDrains) {
  EventQueue q(SchedulerKind::kTimingWheel);
  constexpr std::size_t kBurst = 50000;
  for (std::size_t i = 0; i < kBurst; ++i) {
    q.Schedule(static_cast<Time>(i + 1), [] {});
  }
  EXPECT_GE(q.slab_high_water(), kBurst);
  EXPECT_GE(q.slab_capacity(), kBurst);
  std::size_t drained = 0;
  q.PopAllUpTo(static_cast<Time>(kBurst + 1), [&](EventQueue::Fired& f) {
    (*f.periodic)();  // invoke-in-place: every batched firing presents here
    ++drained;
  });
  EXPECT_EQ(drained, kBurst);
  // The burst is gone: the slab must have given the memory back (trailing
  // free records trimmed), while the high-water mark still records the
  // burst for observability.
  EXPECT_LE(q.slab_capacity(), 2048u);
  EXPECT_GE(q.slab_high_water(), kBurst);
}

TEST(EventQueueKernel, LongRunFootprintStaysBoundedAcrossBursts) {
  // Repeated burst/drain cycles through a Simulation must not ratchet the
  // slab: capacity after each drain stays near the trim floor and the
  // deterministic gauges expose both numbers.
  Simulation sim(7);
  for (int cycle = 0; cycle < 3; ++cycle) {
    const Time base = sim.now();
    for (int i = 0; i < 20000; ++i) {
      sim.At(base + 1.0 + i * 0.01, [] {});
    }
    sim.RunUntil(base + 300.0);
    EXPECT_LE(sim.metrics().Value("kernel.slab_slots"), 2048.0)
        << "cycle " << cycle;
    EXPECT_GE(sim.metrics().Value("kernel.slab_hwm"), 20000.0);
  }
}

TEST(EventQueueKernel, StaleIdAfterTrimCannotCancelRegrownSlot) {
  EventQueue q(SchedulerKind::kTimingWheel);
  constexpr std::size_t kCount = 6000;
  std::vector<EventId> first;
  first.reserve(kCount);
  for (std::size_t i = 0; i < kCount; ++i) {
    first.push_back(q.Schedule(static_cast<Time>(i + 1), [] {}));
  }
  q.PopAllUpTo(static_cast<Time>(kCount + 1), [](EventQueue::Fired& f) {
    (*f.periodic)();  // invoke-in-place: every batched firing presents here
  });
  ASSERT_LT(q.slab_capacity(), kCount);  // the tail was trimmed
  // Regrow past the trimmed indices: every new id must differ from every
  // pre-trim id, and the stale ids must not cancel the new tenants.
  std::vector<EventId> second;
  second.reserve(kCount);
  for (std::size_t i = 0; i < kCount; ++i) {
    second.push_back(q.Schedule(static_cast<Time>(i + 1), [] {}));
  }
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_NE(first[i], second[i]) << i;
  }
  for (const EventId stale : first) {
    EXPECT_FALSE(q.Cancel(stale));
  }
  EXPECT_EQ(q.size(), kCount);  // nothing live was harmed
  for (const EventId id : second) {
    EXPECT_TRUE(q.Cancel(id));
  }
}

}  // namespace
}  // namespace p2p::sim
