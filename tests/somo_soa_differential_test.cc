// Differential pin for the PR 9 struct-of-arrays refactor: the production
// SomoProtocol (SoA AggregateReport columns, sorted-vector adopted/sync
// tables) against the retained map-based implementation
// (reference/somo_map_ref.h) on identical seeded simulations at the
// paper's 1200-host scale. For every gather discipline whose record order
// the refactor preserves (unsync, synchronized, disseminate) the two runs
// must agree EXACTLY: message/byte event totals, encoded root-view wire
// bytes at several checkpoints, staleness figures, and the somo.* metric
// snapshot. The redundant-links config intentionally changed adopted-table
// iteration order (sorted by logical index vs. hash order), so it is
// compared semantically: same member sets, same message totals, same
// coverage — not byte-for-byte.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "dht/ring.h"
#include "reference/somo_map_ref.h"
#include "sim/simulation.h"
#include "somo/somo.h"

namespace p2p::somo {
namespace {

constexpr std::size_t kHosts = 1200;  // the paper's §5.2 end-system count
constexpr std::uint64_t kSeed = 77;
constexpr double kInterval = 500.0;
constexpr double kHorizon = 12000.0;
constexpr double kCheckpointEvery = 4000.0;

// Deterministic per-node report exercising every SoA column: coordinates
// (variable width), bandwidths, capacity, degree slots and telemetry on a
// subset of nodes so both absent-payload paths are covered.
NodeReport MakeReport(const dht::Ring& ring, dht::NodeIndex n, double now) {
  NodeReport r;
  r.node = n;
  r.host = ring.node(n).host();
  r.generated_at = now;
  r.up_kbps = 100.0 + static_cast<double>(n % 37) * 12.5;
  r.down_kbps = 500.0 + static_cast<double>(n % 53) * 7.25;
  r.capacity = static_cast<double>((n * 2654435761u) % 1000) / 10.0;
  if (n % 3 != 0) {
    for (std::size_t d = 0; d < 2 + n % 3; ++d)
      r.coordinates.push_back(static_cast<double>(n % 101) - 50.0 +
                              static_cast<double>(d));
  }
  r.degrees.total = static_cast<int>(n % 9);
  if (n % 4 == 0) {
    DegreeSlot slot;
    slot.session = static_cast<SessionId>(n % 17);
    slot.priority = kHighestPriority;
    r.degrees.taken.push_back(slot);
  }
  if (n % 2 == 0) {
    r.telemetry.msgs_sent = n * 3 + 1;
    r.telemetry.msgs_delivered = n * 3;
    r.telemetry.bytes_sent = n * 1500;
    r.telemetry.suspects = n % 2;
    r.telemetry.sampled_at = now;
  }
  return r;
}

struct RunObservation {
  // Cumulative (messages, bytes, gathers) at each checkpoint — the
  // protocol's externally visible event log in summary form.
  std::vector<std::array<std::size_t, 3>> event_log;
  // Encoded root view at each checkpoint (wire bytes).
  std::vector<std::vector<std::uint8_t>> root_wires;
  // Sorted member node ids of the final root view (semantic comparison).
  std::vector<dht::NodeIndex> final_members;
  double root_staleness = 0.0;
  double alive_staleness = 0.0;
  bool complete = false;
  std::size_t nodes_with_view = 0;
  std::string metrics_json;  // deterministic somo.*-bearing snapshot
};

// Shared ring construction so both protocols see identical membership.
// (The ring is deterministic for a fixed seed path: JoinHashed in host
// order + one StabilizeAll.)
template <typename Protocol, typename Aggregate,
          std::vector<std::uint8_t> (*Encode)(const Aggregate&)>
RunObservation RunProtocol(SomoConfig cfg, bool kill_internal_owner = false) {
  sim::Simulation sim(kSeed);
  dht::Ring ring(16);
  for (std::size_t h = 0; h < kHosts; ++h) ring.JoinHashed(h);
  ring.StabilizeAll();

  Protocol somo(sim, ring, cfg, [&ring, &sim](dht::NodeIndex n) {
    return MakeReport(ring, n, sim.now());
  });
  somo.Start();

  if (kill_internal_owner) {
    // Crash the owner of one internal logical node mid-run WITHOUT a
    // rebuild, forcing the redundant detour path through the adopted
    // tables (the part of the refactor whose iteration order changed).
    // The logical tree is a pure function of membership, so both
    // protocols pick the same victim.
    const auto& tree = somo.tree();
    dht::NodeIndex victim = dht::kNoNode;
    for (LogicalIndex l = 0; l < tree.size(); ++l) {
      const auto& ln = tree.node(l);
      if (!ln.is_leaf() && !ln.is_root() &&
          ln.owner != tree.node(tree.root()).owner) {
        victim = ln.owner;
        break;
      }
    }
    EXPECT_NE(victim, dht::kNoNode);
    sim.At(kHorizon / 2.0, [&ring, victim] { ring.Fail(victim); });
  }

  RunObservation out;
  for (double t = kCheckpointEvery; t <= kHorizon; t += kCheckpointEvery) {
    sim.RunUntil(t);
    out.event_log.push_back(
        {somo.messages_sent(), somo.bytes_sent(), somo.gathers_completed()});
    out.root_wires.push_back(Encode(somo.RootReport()));
  }

  const Aggregate& root = somo.RootReport();
  for (std::size_t i = 0; i < root.size(); ++i) {
    if constexpr (std::is_same_v<Aggregate, AggregateReport>) {
      out.final_members.push_back(root.node(i));
    } else {
      out.final_members.push_back(root.members[i].node);
    }
  }
  std::sort(out.final_members.begin(), out.final_members.end());
  out.root_staleness = somo.RootStalenessMs();
  out.alive_staleness = somo.RootAliveStalenessMs();
  out.complete = somo.RootViewComplete();
  out.nodes_with_view = somo.nodes_with_view();
  out.metrics_json = sim.metrics().SnapshotJson();
  somo.Stop();
  return out;
}

RunObservation RunSoA(SomoConfig cfg, bool kill_internal_owner = false) {
  return RunProtocol<SomoProtocol, AggregateReport, &EncodeAggregate>(
      cfg, kill_internal_owner);
}
RunObservation RunRef(SomoConfig cfg, bool kill_internal_owner = false) {
  return RunProtocol<somoref::SomoProtocol, somoref::AggregateReport,
                     &somoref::EncodeAggregate>(cfg, kill_internal_owner);
}

void ExpectExactMatch(const RunObservation& soa, const RunObservation& ref) {
  ASSERT_EQ(soa.event_log.size(), ref.event_log.size());
  for (std::size_t c = 0; c < soa.event_log.size(); ++c) {
    EXPECT_EQ(soa.event_log[c][0], ref.event_log[c][0])
        << "messages diverge at checkpoint " << c;
    EXPECT_EQ(soa.event_log[c][1], ref.event_log[c][1])
        << "bytes diverge at checkpoint " << c;
    EXPECT_EQ(soa.event_log[c][2], ref.event_log[c][2])
        << "gathers diverge at checkpoint " << c;
    EXPECT_EQ(soa.root_wires[c], ref.root_wires[c])
        << "root view wire bytes diverge at checkpoint " << c;
  }
  EXPECT_EQ(soa.final_members, ref.final_members);
  EXPECT_DOUBLE_EQ(soa.root_staleness, ref.root_staleness);
  EXPECT_DOUBLE_EQ(soa.alive_staleness, ref.alive_staleness);
  EXPECT_EQ(soa.complete, ref.complete);
  EXPECT_EQ(soa.nodes_with_view, ref.nodes_with_view);
  EXPECT_EQ(soa.metrics_json, ref.metrics_json);
}

TEST(SomoSoaDifferential, UnsyncGatherMatchesMapReference) {
  SomoConfig cfg;
  cfg.fanout = 8;
  cfg.report_interval_ms = kInterval;
  ExpectExactMatch(RunSoA(cfg), RunRef(cfg));
}

TEST(SomoSoaDifferential, SynchronizedGatherMatchesMapReference) {
  SomoConfig cfg;
  cfg.fanout = 8;
  cfg.report_interval_ms = kInterval;
  cfg.synchronized_gather = true;
  ExpectExactMatch(RunSoA(cfg), RunRef(cfg));
}

TEST(SomoSoaDifferential, DisseminateMatchesMapReference) {
  SomoConfig cfg;
  cfg.fanout = 8;
  cfg.report_interval_ms = kInterval;
  cfg.disseminate = true;
  ExpectExactMatch(RunSoA(cfg), RunRef(cfg));
}

TEST(SomoSoaDifferential, RedundantLinksMatchSemantically) {
  // The SoA adopted table iterates sorted by logical index where the old
  // hash map had pointer-ish order, so redundant-detour aggregates may
  // concatenate members differently — the VIEW must still be the same set
  // with the same coverage and message totals.
  SomoConfig cfg;
  cfg.fanout = 4;
  cfg.report_interval_ms = kInterval;
  cfg.redundant_links = true;
  const RunObservation soa = RunSoA(cfg, /*kill_internal_owner=*/true);
  const RunObservation ref = RunRef(cfg, /*kill_internal_owner=*/true);
  ASSERT_EQ(soa.event_log.size(), ref.event_log.size());
  for (std::size_t c = 0; c < soa.event_log.size(); ++c) {
    EXPECT_EQ(soa.event_log[c][0], ref.event_log[c][0])
        << "messages diverge at checkpoint " << c;
    EXPECT_EQ(soa.event_log[c][2], ref.event_log[c][2])
        << "gathers diverge at checkpoint " << c;
  }
  EXPECT_EQ(soa.final_members, ref.final_members);
  EXPECT_EQ(soa.complete, ref.complete);
  EXPECT_EQ(soa.nodes_with_view, ref.nodes_with_view);
  EXPECT_DOUBLE_EQ(soa.root_staleness, ref.root_staleness);
}

}  // namespace
}  // namespace p2p::somo
