// Planner-interface tests, in three layers:
//
//   1. Shim equivalence: a verbatim copy of the pre-interface PlanSession
//      implementation is retained here as the reference; for every Strategy
//      the PlanSession shim AND the registry-created planner must reproduce
//      its PlanResult exactly — including the metric-registry snapshot
//      bytes — so routing the six paper strategies through alm::Planner is
//      provably a pure refactor.
//   2. Conformance battery: every planner the registry knows (tree, mesh,
//      the six strategy spellings, and whatever gets registered later) is
//      run through one parameterized suite: determinism across repeats,
//      all-members-covered, root-is-source, degree-table respected, and a
//      Repair() that reconnects exactly the survivors.
//   3. Registry/options plumbing: factory lookups, duplicate registration,
//      the planner_metrics opt-in namespace, and the option-cube mapping.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "alm/critical.h"
#include "alm/latency_matrix.h"
#include "alm/mesh.h"
#include "obs/metrics.h"
#include "obs/scope_timer.h"
#include "util/check.h"
#include "util/rng.h"

namespace p2p::alm {
namespace {

// Symmetric pseudo-random latency in [1, 101), 0 on the diagonal (same
// shape as alm_equivalence_test.cc).
LatencyFn HashLatency(std::uint64_t seed) {
  return [seed](ParticipantId a, ParticipantId b) {
    if (a == b) return 0.0;
    if (a > b) std::swap(a, b);
    const std::uint64_t h =
        util::Mix64(seed ^ (static_cast<std::uint64_t>(a) * 1000003ULL + b));
    return 1.0 + static_cast<double>(h % 10000) / 100.0;
  };
}

PlanInput MakeInput(std::uint64_t seed, std::size_t min_members = 3) {
  util::Rng rng(seed);
  PlanInput in;
  const auto members = static_cast<std::size_t>(
      rng.UniformInt(static_cast<std::int64_t>(min_members), 40));
  const auto helpers = static_cast<std::size_t>(rng.UniformInt(5, 60));
  const std::size_t space = members + helpers + 1;

  in.degree_bounds.resize(space);
  for (auto& d : in.degree_bounds)
    d = static_cast<int>(rng.UniformInt(2, 6));

  std::vector<ParticipantId> ids(space);
  for (ParticipantId v = 0; v < space; ++v) ids[v] = v;
  rng.Shuffle(ids);
  in.root = ids[0];
  for (std::size_t k = 1; k <= members; ++k) in.members.push_back(ids[k]);
  for (std::size_t k = members + 1; k < space; ++k)
    in.helper_candidates.push_back(ids[k]);

  in.true_latency = HashLatency(seed * 0x9e3779b97f4a7c15ULL + 1);
  // A plausible-but-wrong estimate (what coordinates would produce).
  in.estimated_latency = HashLatency(seed * 0x9e3779b97f4a7c15ULL + 2);
  in.amcast.helper_radius = rng.Uniform(20.0, 120.0);
  return in;
}

// ---------------------------------------------------------------------------
// Verbatim copy of the pre-interface alm/critical.cc PlanSession body. Do
// not "improve" it: its only job is to pin the refactored path to the old
// behavior bit for bit, metric emission included.
PlanResult PlanSessionReference(const PlanInput& input, Strategy strategy) {
  obs::ScopeTimer plan_timer(
      input.metrics != nullptr ? &input.metrics->profile("alm.plan_ms")
                               : nullptr);
  P2P_CHECK_MSG(input.true_latency != nullptr || input.oracle != nullptr,
                "PlanSession needs a true latency fn or an oracle");
  P2P_CHECK_MSG(!StrategyUsesEstimates(strategy) ||
                    input.estimated_latency != nullptr,
                "Leafset strategies need an estimated latency");
  const net::LatencyOracle* oracle = input.oracle;
  LatencyFn truth = input.true_latency;
  if (truth == nullptr) {
    truth = [oracle](ParticipantId a, ParticipantId b) {
      return oracle->Latency(a, b);
    };
  }

  LatencyFn planning = truth;
  if (StrategyUsesEstimates(strategy)) {
    std::vector<char> is_member(input.degree_bounds.size(), 0);
    is_member[input.root] = 1;
    for (const ParticipantId m : input.members) is_member[m] = 1;
    planning = [is_member = std::move(is_member), truth,
                est = input.estimated_latency](ParticipantId a,
                                               ParticipantId b) {
      return (is_member[a] && is_member[b]) ? truth(a, b) : est(a, b);
    };
  }

  AmcastInput ain;
  ain.degree_bounds = input.degree_bounds;
  ain.root = input.root;
  ain.members = input.members;
  if (StrategyUsesHelpers(strategy))
    ain.helper_candidates = input.helper_candidates;

  AmcastOptions aopt = input.amcast;
  aopt.selection = StrategyUsesHelpers(strategy)
                       ? (input.amcast.selection == HelperSelection::kNone
                              ? HelperSelection::kMinimaxHeuristic
                              : input.amcast.selection)
                       : HelperSelection::kNone;

  std::vector<ParticipantId> core_ids;
  core_ids.reserve(1 + ain.members.size());
  core_ids.push_back(ain.root);
  core_ids.insert(core_ids.end(), ain.members.begin(), ain.members.end());
  const bool oracle_direct =
      oracle != nullptr && input.true_latency == nullptr &&
      !StrategyUsesEstimates(strategy);
  const std::vector<ParticipantId> satellite_ids =
      aopt.selection != HelperSelection::kNone ? ain.helper_candidates
                                               : std::vector<ParticipantId>{};
  const LatencyMatrix planning_matrix =
      oracle_direct ? LatencyMatrix(input.degree_bounds.size(), core_ids,
                                    satellite_ids, *oracle)
                    : LatencyMatrix(input.degree_bounds.size(), core_ids,
                                    satellite_ids, planning);

  AmcastResult built = BuildAmcastTree(ain, planning_matrix, aopt);

  PlanResult result{std::move(built.tree), 0.0, 0.0, built.helpers_used,
                    {}, 0};
  if (StrategyUsesAdjust(strategy)) {
    const LatencyMatrix true_matrix =
        oracle != nullptr && input.true_latency == nullptr
            ? LatencyMatrix(input.degree_bounds.size(), result.tree.members(),
                            *oracle)
            : LatencyMatrix(input.degree_bounds.size(), result.tree.members(),
                            truth);
    result.adjust_stats = AdjustTree(result.tree, input.degree_bounds,
                                     true_matrix, input.adjust);
    result.height_true = result.tree.Height(true_matrix);
  } else {
    result.height_true = result.tree.Height(truth);
  }
  result.height_planning = result.tree.Height(planning_matrix);
  if (input.metrics != nullptr) {
    input.metrics->counter("alm.sessions.planned").Inc();
    if (StrategyUsesAdjust(strategy))
      input.metrics->counter("alm.sessions.adjusted").Inc();
    input.metrics->histogram("alm.plan.height_ms").Add(result.height_true);
    input.metrics->histogram("alm.plan.helpers")
        .Add(static_cast<double>(result.helpers_used));
  }
  return result;
}
// ---------------------------------------------------------------------------

constexpr Strategy kAllStrategies[] = {
    Strategy::kAmcast,   Strategy::kAmcastAdjust,  Strategy::kCritical,
    Strategy::kCriticalAdjust, Strategy::kLeafset, Strategy::kLeafsetAdjust,
};

const char* RegistrySpelling(Strategy s) {
  switch (s) {
    case Strategy::kAmcast: return "amcast";
    case Strategy::kAmcastAdjust: return "amcast+adj";
    case Strategy::kCritical: return "critical";
    case Strategy::kCriticalAdjust: return "critical+adj";
    case Strategy::kLeafset: return "leafset";
    case Strategy::kLeafsetAdjust: return "leafset+adj";
  }
  return "?";
}

// Exact equality throughout — the contract is byte-identical, not "close".
void ExpectIdenticalPlans(const PlanResult& a, const PlanResult& b) {
  ASSERT_EQ(a.height_true, b.height_true);
  ASSERT_EQ(a.height_planning, b.height_planning);
  ASSERT_EQ(a.helpers_used, b.helpers_used);
  ASSERT_EQ(a.maintenance_messages, b.maintenance_messages);
  ASSERT_EQ(a.adjust_stats.reparent_moves, b.adjust_stats.reparent_moves);
  ASSERT_EQ(a.adjust_stats.leaf_swaps, b.adjust_stats.leaf_swaps);
  ASSERT_EQ(a.adjust_stats.subtree_swaps, b.adjust_stats.subtree_swaps);
  ASSERT_EQ(a.tree.members(), b.tree.members());
  for (const ParticipantId v : a.tree.members())
    ASSERT_EQ(a.tree.parent(v), b.tree.parent(v)) << "node " << v;
}

TEST(PlannerShim, AllStrategiesByteIdenticalToPreInterfacePlanSession) {
  for (const Strategy s : kAllStrategies) {
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
      SCOPED_TRACE(StrategyName(s) + " seed " + std::to_string(seed));
      const PlanInput base = MakeInput(seed);

      obs::MetricsRegistry ref_reg, shim_reg, factory_reg;
      PlanInput ref_in = base;
      ref_in.metrics = &ref_reg;
      const PlanResult ref = PlanSessionReference(ref_in, s);

      PlanInput shim_in = base;
      shim_in.metrics = &shim_reg;
      const PlanResult shim = PlanSession(shim_in, s);

      PlanInput factory_in = base;
      factory_in.metrics = &factory_reg;
      const PlanResult factory =
          CreatePlanner(RegistrySpelling(s))->Plan(factory_in);

      ExpectIdenticalPlans(shim, ref);
      ExpectIdenticalPlans(factory, ref);
      // Metric snapshots too: same counters, same histogram buckets, same
      // bytes. (planner_metrics defaults off, so the legacy namespace is
      // all there is.)
      EXPECT_EQ(shim_reg.SnapshotJson(), ref_reg.SnapshotJson());
      EXPECT_EQ(factory_reg.SnapshotJson(), ref_reg.SnapshotJson());
    }
  }
}

TEST(PlannerOptions, StrategyMapsToOptionCubeCorner) {
  for (const Strategy s : kAllStrategies) {
    const TreePlannerOptions opt = OptionsForStrategy(s);
    EXPECT_EQ(opt.use_helpers, StrategyUsesHelpers(s)) << StrategyName(s);
    EXPECT_EQ(opt.use_adjust, StrategyUsesAdjust(s)) << StrategyName(s);
    EXPECT_EQ(opt.use_estimates, StrategyUsesEstimates(s))
        << StrategyName(s);
    TreePlanner planner(opt);
    EXPECT_EQ(planner.NeedsEstimates(), StrategyUsesEstimates(s));
    EXPECT_EQ(planner.name(), "tree");
  }
}

TEST(PlannerRegistry, BuiltinsPresentAndUnknownThrows) {
  auto& reg = PlannerRegistry::Instance();
  EXPECT_TRUE(reg.Contains("tree"));
  EXPECT_TRUE(reg.Contains("mesh"));
  for (const Strategy s : kAllStrategies)
    EXPECT_TRUE(reg.Contains(RegistrySpelling(s))) << RegistrySpelling(s);
  EXPECT_FALSE(reg.Contains("no-such-planner"));
  EXPECT_THROW(reg.Create("no-such-planner"), util::CheckError);
  EXPECT_EQ(reg.Create("mesh")->name(), "mesh");
  const auto names = reg.Names();
  EXPECT_GE(names.size(), 8u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(PlannerRegistry, RegisterExtendsAndRejectsDuplicates) {
  auto& reg = PlannerRegistry::Instance();
  if (!reg.Contains("test-tree-alias")) {
    reg.Register("test-tree-alias",
                 [] { return std::make_unique<TreePlanner>(); });
  }
  EXPECT_TRUE(reg.Contains("test-tree-alias"));
  EXPECT_EQ(reg.Create("test-tree-alias")->name(), "tree");
  EXPECT_THROW(reg.Register("test-tree-alias",
                            [] { return std::make_unique<TreePlanner>(); }),
               util::CheckError);
  EXPECT_THROW(
      reg.Register("tree", [] { return std::make_unique<TreePlanner>(); }),
      util::CheckError);
}

TEST(PlannerMetrics, OptInNamespaceRecordedOnlyWhenRequested) {
  PlanInput in = MakeInput(5);
  obs::MetricsRegistry quiet, loud;

  in.metrics = &quiet;
  in.planner_metrics = false;
  TreePlanner().Plan(in);
  EXPECT_EQ(quiet.SnapshotJson().find("alm.planner."), std::string::npos);

  in.metrics = &loud;
  in.planner_metrics = true;
  TreePlanner().Plan(in);
  EXPECT_EQ(loud.Value("alm.planner.tree.plans"), 1.0);
  MeshPlanner().Plan(in);
  EXPECT_EQ(loud.Value("alm.planner.mesh.plans"), 1.0);
  EXPECT_GT(loud.Value("alm.planner.mesh.maintenance_msgs"), 0.0);
}

TEST(PlannerMaxFanout, CountsWidestNode) {
  MulticastTree tree(5);
  tree.SetRoot(0);
  tree.AddChild(0, 1);
  tree.AddChild(0, 2);
  tree.AddChild(0, 3);
  tree.AddChild(1, 4);
  EXPECT_EQ(MaxFanout(tree), 3u);
}

TEST(SessionSpecAllMembers, AppendVariantMatchesAndAppends) {
  SessionSpec spec;
  spec.root = 7;
  spec.members = {3, 9, 1};
  EXPECT_EQ(spec.AllMembers(),
            (std::vector<ParticipantId>{7, 3, 9, 1}));
  std::vector<ParticipantId> scratch{42};
  spec.AppendAllMembers(scratch);
  EXPECT_EQ(scratch, (std::vector<ParticipantId>{42, 7, 3, 9, 1}));
}

// ------------------------------------------------- conformance battery --

class PlannerConformance : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<Planner> Make() const { return CreatePlanner(GetParam()); }
};

TEST_P(PlannerConformance, DeterministicAcrossRepeatsAndInstances) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE(seed);
    const PlanInput in = MakeInput(seed);
    const PlanResult a = Make()->Plan(in);
    const PlanResult b = Make()->Plan(in);
    ExpectIdenticalPlans(a, b);
  }
}

TEST_P(PlannerConformance, CoversAllMembersWithRootAsSource) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE(seed);
    const PlanInput in = MakeInput(seed);
    const PlanResult r = Make()->Plan(in);
    EXPECT_EQ(r.tree.root(), in.root);
    ASSERT_TRUE(r.tree.Contains(in.root));
    for (const ParticipantId m : in.members)
      EXPECT_TRUE(r.tree.Contains(m)) << "member " << m;
    EXPECT_GE(r.tree.size(), 1 + in.members.size());
    EXPECT_GT(r.height_true, 0.0);
  }
}

TEST_P(PlannerConformance, RespectsDegreeTable) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE(seed);
    const PlanInput in = MakeInput(seed);
    const PlanResult r = Make()->Plan(in);
    // Validate = structural invariants + per-node degree vs the table.
    ASSERT_NO_THROW(r.tree.Validate(in.degree_bounds));
    for (const ParticipantId v : r.tree.members())
      EXPECT_LE(r.tree.Degree(v), in.degree_bounds[v]) << "node " << v;
  }
}

TEST_P(PlannerConformance, RepairReconnectsExactlyTheSurvivors) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    SCOPED_TRACE(seed);
    const PlanInput in = MakeInput(seed, /*min_members=*/8);
    // Fail a deterministic sample of members (never the root).
    const std::vector<ParticipantId> failed = {in.members[1], in.members[4],
                                               in.members[6]};
    const RepairOutcome out = Make()->Repair(in, failed);
    const RepairOutcome again = Make()->Repair(in, failed);
    ExpectIdenticalPlans(out.plan, again.plan);
    EXPECT_EQ(out.disrupted, again.disrupted);
    EXPECT_EQ(out.repair_messages, again.repair_messages);
    EXPECT_EQ(out.repair_latency_ms, again.repair_latency_ms);

    EXPECT_EQ(out.plan.tree.root(), in.root);
    for (const ParticipantId f : failed)
      EXPECT_FALSE(out.plan.tree.Contains(f)) << "failed node " << f;
    for (const ParticipantId m : in.members) {
      const bool is_failed =
          std::find(failed.begin(), failed.end(), m) != failed.end();
      if (!is_failed) {
        EXPECT_TRUE(out.plan.tree.Contains(m)) << "survivor " << m;
      }
    }
    ASSERT_NO_THROW(out.plan.tree.Validate(in.degree_bounds));
    EXPECT_LE(out.disrupted, in.members.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllRegistered, PlannerConformance,
    ::testing::ValuesIn(PlannerRegistry::Instance().Names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (auto& c : name)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      return name;
    });

// ------------------------------------------------------- mesh specifics --

TEST(MeshPlanner, PaysMaintenanceAndUsesNoHelpers) {
  const PlanInput in = MakeInput(11);
  MeshPlanner mesh;
  const PlanResult r = mesh.Plan(in);
  EXPECT_GT(r.maintenance_messages, in.members.size());  // joins + probes
  EXPECT_EQ(r.helpers_used, 0u);
  EXPECT_EQ(r.height_planning, r.height_true);  // plans on truth
}

TEST(MeshPlanner, RefinementLowersOrKeepsHeight) {
  // More refinement rounds must not make the extracted tree worse on
  // average; check a mild aggregate over seeds (individual instances may
  // tie — refinement only rewires when strictly better).
  double rough_total = 0.0, refined_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const PlanInput in = MakeInput(seed);
    MeshOptions rough;
    rough.refine_rounds = 0;
    MeshOptions refined;
    refined.refine_rounds = 24;
    rough_total += MeshPlanner(rough).Plan(in).height_true;
    refined_total += MeshPlanner(refined).Plan(in).height_true;
  }
  EXPECT_LT(refined_total, rough_total);
}

TEST(MeshPlanner, SingleMemberSessionIsRootOnlyPlusOne) {
  PlanInput in;
  in.degree_bounds = {2, 2};
  in.root = 0;
  in.members = {1};
  in.true_latency = HashLatency(3);
  const PlanResult r = MeshPlanner().Plan(in);
  EXPECT_EQ(r.tree.size(), 2u);
  EXPECT_EQ(r.tree.parent(1), 0u);
}

TEST(MeshPlanner, InfeasibleDegreeOneEverywhereThrows) {
  PlanInput in;
  in.degree_bounds = {1, 1, 1, 1};
  in.root = 0;
  in.members = {1, 2, 3};
  in.true_latency = HashLatency(4);
  EXPECT_THROW(MeshPlanner().Plan(in), util::CheckError);
}

}  // namespace
}  // namespace p2p::alm
