#include <gtest/gtest.h>

#include <cmath>

#include "alm/critical.h"
#include "alm/dynamic.h"
#include "test_support.h"
#include "util/rng.h"

namespace p2p::alm {
namespace {

// Fixture: plan a session on the shared pool and wrap it dynamically.
struct DynFixture {
  pool::ResourcePool& pool;
  std::vector<ParticipantId> members;  // incl. root at [0]
  std::vector<ParticipantId> outsiders;
  DynamicSession session;

  static DynamicSession MakeSession(pool::ResourcePool& pool,
                                    const std::vector<ParticipantId>& ids,
                                    bool with_helpers,
                                    DynamicSessionOptions opts) {
    PlanInput in;
    in.degree_bounds = pool.degree_bounds();
    in.root = ids[0];
    in.members.assign(ids.begin() + 1, ids.end());
    if (with_helpers) {
      for (std::size_t v = 0; v < pool.size(); ++v) {
        if (std::find(ids.begin(), ids.end(), v) == ids.end() &&
            pool.degree_bound(v) >= 4)
          in.helper_candidates.push_back(v);
      }
    }
    in.true_latency = pool.TrueLatencyFn();
    auto plan = PlanSession(in, with_helpers ? Strategy::kCriticalAdjust
                                             : Strategy::kAmcastAdjust);
    // Collect the helpers actually in the tree.
    std::vector<ParticipantId> helpers;
    for (const ParticipantId v : plan.tree.members()) {
      if (std::find(ids.begin(), ids.end(), v) == ids.end())
        helpers.push_back(v);
    }
    return DynamicSession(std::move(plan.tree), pool.degree_bounds(),
                          helpers, pool.TrueLatencyFn(), opts);
  }

  explicit DynFixture(std::uint64_t seed, bool with_helpers = false,
                      DynamicSessionOptions opts = {})
      : pool(p2p::testing::SharedSmallPool()),
        members([&] {
          util::Rng rng(seed);
          const auto idx = rng.SampleIndices(pool.size(), 12);
          return std::vector<ParticipantId>(idx.begin(), idx.end());
        }()),
        outsiders([&] {
          std::vector<ParticipantId> out;
          for (std::size_t v = 0; v < pool.size() && out.size() < 30; ++v) {
            if (std::find(members.begin(), members.end(), v) ==
                members.end())
              out.push_back(v);
          }
          return out;
        }()),
        session(MakeSession(pool, members, with_helpers, opts)) {}
};

TEST(DynamicSession, JoinAttachesUnderFeasibleParent) {
  DynFixture f(1);
  const ParticipantId newcomer = f.outsiders[0];
  const std::size_t before = f.session.tree().size();
  EXPECT_TRUE(f.session.Join(newcomer));
  EXPECT_EQ(f.session.tree().size(), before + 1);
  EXPECT_TRUE(f.session.tree().Contains(newcomer));
  f.session.tree().Validate(f.pool.degree_bounds());
}

TEST(DynamicSession, DoubleJoinRejected) {
  DynFixture f(2);
  const ParticipantId v = f.outsiders[0];
  ASSERT_TRUE(f.session.Join(v));
  EXPECT_THROW(f.session.Join(v), util::CheckError);
}

TEST(DynamicSession, LeafLeaveShrinksTree) {
  DynFixture f(3);
  // Find a leaf that is not the root.
  ParticipantId leaf = kNoParticipant;
  for (const ParticipantId v : f.session.tree().members()) {
    if (v != f.session.tree().root() && f.session.tree().IsLeaf(v)) {
      leaf = v;
      break;
    }
  }
  ASSERT_NE(leaf, kNoParticipant);
  const std::size_t before = f.session.tree().size();
  EXPECT_TRUE(f.session.Leave(leaf));
  EXPECT_EQ(f.session.tree().size(), before - 1);
  EXPECT_FALSE(f.session.tree().Contains(leaf));
  f.session.tree().Validate(f.pool.degree_bounds());
}

TEST(DynamicSession, InteriorLeaveRehomesChildren) {
  DynFixture f(4);
  // Find an interior non-root node.
  ParticipantId interior = kNoParticipant;
  for (const ParticipantId v : f.session.tree().members()) {
    if (v != f.session.tree().root() && !f.session.tree().IsLeaf(v)) {
      interior = v;
      break;
    }
  }
  ASSERT_NE(interior, kNoParticipant);
  const auto kids = f.session.tree().children(interior);
  EXPECT_TRUE(f.session.Leave(interior));
  for (const ParticipantId c : kids)
    EXPECT_TRUE(f.session.tree().Contains(c));
  f.session.tree().Validate(f.pool.degree_bounds());
}

TEST(DynamicSession, RootCannotLeave) {
  DynFixture f(5);
  EXPECT_THROW(f.session.Leave(f.session.tree().root()),
               util::CheckError);
}

TEST(DynamicSession, HelperRecruitedOnCriticalJoin) {
  // Build the Figure-1 scenario and join a member when the root is about
  // to fill: the helper must be spliced.
  MulticastTree t(6);
  t.SetRoot(0);
  t.AddChild(0, 1);  // root bound 2 → one free degree left
  auto latency = [](ParticipantId a, ParticipantId b) -> double {
    if (a == b) return 0.0;
    if (a > b) std::swap(a, b);
    if (b == 5) return a == 0 ? 60.0 : 10.0;
    if (a == 0) return 100.0;
    return 50.0;
  };
  DynamicSessionOptions opts;
  opts.amcast.selection = HelperSelection::kMinimaxHeuristic;
  opts.amcast.helper_radius = 100.0;
  opts.adjust_after_change = false;
  DynamicSession session(std::move(t), {2, 2, 2, 2, 2, 6}, {}, latency,
                         opts);
  EXPECT_TRUE(session.Join(2, /*helper_candidates=*/{5}));
  EXPECT_EQ(session.helpers_recruited(), 1u);
  EXPECT_TRUE(session.tree().Contains(5));
  EXPECT_TRUE(session.IsHelper(5));
  // 2 hangs under the helper, not the root.
  EXPECT_EQ(session.tree().parent(2), 5u);
}

TEST(DynamicSession, ChildlessHelperPrunedAfterLeave) {
  // root — helper — member: when the member leaves, the helper serves
  // nobody and must be pruned.
  MulticastTree t(6);
  t.SetRoot(0);
  t.AddChild(0, 5);
  t.AddChild(5, 2);
  auto latency = [](ParticipantId a, ParticipantId b) -> double {
    return a == b ? 0.0 : 10.0;
  };
  DynamicSessionOptions opts;
  opts.adjust_after_change = false;
  DynamicSession session(std::move(t), std::vector<int>(6, 4), {5},
                         latency, opts);
  EXPECT_EQ(session.helpers_in_tree(), 1u);
  EXPECT_TRUE(session.Leave(2));
  EXPECT_EQ(session.helpers_pruned(), 1u);
  EXPECT_FALSE(session.tree().Contains(5));
  EXPECT_EQ(session.tree().size(), 1u);  // only the root remains
}

TEST(DynamicSession, RandomChurnKeepsInvariants) {
  DynFixture f(6, /*with_helpers=*/true);
  util::Rng rng(66);
  std::vector<ParticipantId> joinable = f.outsiders;
  std::vector<ParticipantId> in_session(f.members.begin() + 1,
                                        f.members.end());
  for (int step = 0; step < 40; ++step) {
    const bool do_join =
        in_session.size() < 4 ||
        (rng.Bernoulli(0.5) && !joinable.empty());
    if (do_join && !joinable.empty()) {
      const std::size_t pick = rng.NextBounded(joinable.size());
      const ParticipantId v = joinable[pick];
      if (f.session.Join(v)) {
        in_session.push_back(v);
        joinable.erase(joinable.begin() + static_cast<std::ptrdiff_t>(pick));
      }
    } else if (!in_session.empty()) {
      const std::size_t pick = rng.NextBounded(in_session.size());
      const ParticipantId v = in_session[pick];
      if (f.session.tree().Contains(v) && f.session.Leave(v)) {
        in_session.erase(in_session.begin() +
                         static_cast<std::ptrdiff_t>(pick));
        joinable.push_back(v);
      }
    }
    f.session.tree().Validate(f.pool.degree_bounds());
  }
  EXPECT_GT(f.session.joins(), 0u);
  EXPECT_GT(f.session.leaves(), 0u);
}

TEST(DynamicSession, AdjustAfterChangeImprovesOrKeepsHeight) {
  DynamicSessionOptions with;
  with.adjust_after_change = true;
  DynamicSessionOptions without;
  without.adjust_after_change = false;
  DynFixture fa(7, false, with);
  DynFixture fb(7, false, without);
  for (int k = 0; k < 5; ++k) {
    ASSERT_TRUE(fa.session.Join(fa.outsiders[static_cast<std::size_t>(k)]));
    ASSERT_TRUE(fb.session.Join(fb.outsiders[static_cast<std::size_t>(k)]));
  }
  EXPECT_LE(fa.session.Height(), fb.session.Height() + 1e-9);
}

}  // namespace
}  // namespace p2p::alm
