#include <gtest/gtest.h>

#include "dht/kv_store.h"
#include "util/rng.h"

namespace p2p::dht {
namespace {

Ring MakeRing(std::size_t n) {
  Ring ring(16);
  for (std::size_t i = 0; i < n; ++i) ring.JoinHashed(i);
  ring.StabilizeAll();
  return ring;
}

TEST(KvStore, PutGetRoundTrip) {
  auto ring = MakeRing(40);
  KvStore kv(ring, 3);
  const auto put = kv.Put(0, 12345, "hello");
  EXPECT_TRUE(put.ok);
  EXPECT_EQ(put.copies_stored, 3u);
  const auto got = kv.Get(7, 12345);
  EXPECT_TRUE(got.found);
  EXPECT_EQ(got.value, "hello");
  EXPECT_FALSE(got.from_replica);
  kv.CheckInvariants();
}

TEST(KvStore, MissingKeyNotFound) {
  auto ring = MakeRing(20);
  KvStore kv(ring);
  EXPECT_FALSE(kv.Get(0, 999).found);
}

TEST(KvStore, OverwriteReplacesValue) {
  auto ring = MakeRing(20);
  KvStore kv(ring);
  kv.Put(0, 1, "a");
  kv.Put(1, 1, "b");
  EXPECT_EQ(kv.Get(2, 1).value, "b");
  EXPECT_EQ(kv.total_keys(), 1u);
  kv.CheckInvariants();
}

TEST(KvStore, EraseRemovesAllCopies) {
  auto ring = MakeRing(20);
  KvStore kv(ring, 3);
  kv.Put(0, 42, "x");
  EXPECT_TRUE(kv.Erase(1, 42));
  EXPECT_FALSE(kv.Get(0, 42).found);
  EXPECT_EQ(kv.CopiesOf(42), 0u);
  EXPECT_FALSE(kv.Erase(1, 42));
}

TEST(KvStore, ReplicasPlacedOnSuccessors) {
  auto ring = MakeRing(30);
  KvStore kv(ring, 3);
  const NodeId key = 777;
  kv.Put(0, key, "v");
  const NodeIndex primary = ring.ResponsibleFor(key);
  const auto sorted = ring.SortedAlive();
  const auto it = std::find(sorted.begin(), sorted.end(), primary);
  const std::size_t pos = static_cast<std::size_t>(it - sorted.begin());
  for (std::size_t k = 0; k < 3; ++k) {
    const NodeIndex expect = sorted[(pos + k) % sorted.size()];
    EXPECT_GT(kv.StoredOn(expect), 0u) << "replica " << k;
  }
}

TEST(KvStore, SurvivesPrimaryFailureAfterRepair) {
  auto ring = MakeRing(30);
  KvStore kv(ring, 3);
  util::Rng rng(3);
  std::vector<NodeId> keys;
  for (int i = 0; i < 50; ++i) {
    keys.push_back(rng());
    kv.Put(0, keys.back(), "value" + std::to_string(i));
  }
  // Kill the primary of the first key.
  const NodeIndex victim = ring.ResponsibleFor(keys[0]);
  ring.Fail(victim);
  ring.DetectFailure(victim);
  kv.RepairReplicas();
  kv.CheckInvariants();
  for (int i = 0; i < 50; ++i) {
    const auto alive = ring.SortedAlive();
    const auto got = kv.Get(alive[0], keys[static_cast<std::size_t>(i)]);
    EXPECT_TRUE(got.found) << "key " << i;
    EXPECT_EQ(got.value, "value" + std::to_string(i));
  }
}

TEST(KvStore, RepairAfterJoinMovesPrimary) {
  auto ring = MakeRing(20);
  KvStore kv(ring, 2);
  util::Rng rng(5);
  std::vector<NodeId> keys;
  for (int i = 0; i < 30; ++i) {
    keys.push_back(rng());
    kv.Put(0, keys.back(), "v");
  }
  // New joiners take over some zones; before repair their stores are
  // empty (reads fall back to replicas), after repair invariants hold.
  for (std::size_t i = 0; i < 5; ++i) ring.JoinHashed(100 + i);
  for (const NodeId key : keys) EXPECT_TRUE(kv.Get(0, key).found);
  kv.RepairReplicas();
  kv.CheckInvariants();
  for (const NodeId key : keys) {
    const auto got = kv.Get(0, key);
    EXPECT_TRUE(got.found);
    EXPECT_FALSE(got.from_replica);  // primary serves again
  }
}

TEST(KvStore, MassFailureWithinReplicationFactorLosesNothing) {
  auto ring = MakeRing(60);
  KvStore kv(ring, 4);
  util::Rng rng(7);
  std::vector<NodeId> keys;
  for (int i = 0; i < 100; ++i) {
    keys.push_back(rng());
    kv.Put(0, keys.back(), std::to_string(i));
  }
  // Fail 3 RANDOM nodes (< replication factor 4): with repair after each
  // detection, nothing is lost.
  for (int f = 0; f < 3; ++f) {
    const auto alive = ring.SortedAlive();
    const NodeIndex victim = alive[rng.NextBounded(alive.size())];
    ring.Fail(victim);
    ring.DetectFailure(victim);
    kv.RepairReplicas();
  }
  kv.CheckInvariants();
  std::size_t found = 0;
  for (const NodeId key : keys) found += kv.Get(0, key).found;
  EXPECT_EQ(found, keys.size());
}

TEST(KvStore, ReplicaCountCappedByRingSize) {
  Ring ring(4);
  ring.JoinHashed(0);
  ring.JoinHashed(1);
  KvStore kv(ring, 5);
  const auto put = kv.Put(0, 1, "v");
  EXPECT_TRUE(put.ok);
  EXPECT_EQ(put.copies_stored, 2u);  // only two nodes exist
  kv.CheckInvariants();
}

}  // namespace
}  // namespace p2p::dht
