#include <gtest/gtest.h>

#include <memory>

#include "obs/metrics.h"
#include "pool/market.h"
#include "pool/multi_session_sim.h"
#include "test_support.h"
#include "util/rng.h"

namespace p2p::pool {
namespace {

alm::SessionSpec DisjointSpec(ResourcePool& pool, alm::SessionId id,
                              int priority, std::size_t block,
                              std::size_t group = 10) {
  // Deterministic non-overlapping member blocks.
  alm::SessionSpec spec;
  spec.id = id;
  spec.priority = priority;
  const std::size_t base = block * group;
  spec.root = base % pool.size();
  for (std::size_t k = 1; k < group; ++k)
    spec.members.push_back((base + k) % pool.size());
  return spec;
}

TEST(Market, AddAndRemoveSessions) {
  auto& pool = p2p::testing::SharedSmallPool();
  MarketScheduler market(pool, TaskManagerOptions{});
  market.AddSession(DisjointSpec(pool, 1, 1, 0));
  market.AddSession(DisjointSpec(pool, 2, 2, 1));
  EXPECT_EQ(market.session_count(), 2u);
  EXPECT_TRUE(market.session(1).scheduled());
  EXPECT_TRUE(market.session(2).scheduled());
  market.RemoveSession(1);
  market.RemoveSession(2);
  EXPECT_EQ(market.session_count(), 0u);
  EXPECT_EQ(pool.registry().TotalUsed(), 0u);
}

TEST(Market, DuplicateSessionIdRejected) {
  auto& pool = p2p::testing::SharedSmallPool();
  MarketScheduler market(pool, TaskManagerOptions{});
  market.AddSession(DisjointSpec(pool, 1, 1, 0));
  EXPECT_THROW(market.AddSession(DisjointSpec(pool, 1, 2, 1)),
               util::CheckError);
  market.RemoveSession(1);
}

TEST(Market, UnknownSessionRejected) {
  auto& pool = p2p::testing::SharedSmallPool();
  MarketScheduler market(pool, TaskManagerOptions{});
  EXPECT_THROW(market.session(99), util::CheckError);
  EXPECT_THROW(market.RemoveSession(99), util::CheckError);
}

TEST(Market, PreemptionCascadeKeepsEveryoneScheduled) {
  auto& pool = p2p::testing::SharedSmallPool();
  MarketScheduler market(pool, TaskManagerOptions{});
  // Saturate: 12 sessions of 10 on a 120-host pool, mixed priorities.
  util::Rng rng(9);
  for (alm::SessionId id = 1; id <= 12; ++id) {
    const int prio = 1 + static_cast<int>(rng.NextBounded(3));
    market.AddSession(
        DisjointSpec(pool, id, prio, static_cast<std::size_t>(id - 1)));
  }
  for (alm::SessionId id = 1; id <= 12; ++id)
    EXPECT_TRUE(market.session(id).scheduled()) << "session " << id;
  pool.registry().CheckInvariants();
  for (alm::SessionId id = 1; id <= 12; ++id) market.RemoveSession(id);
  EXPECT_EQ(pool.registry().TotalUsed(), 0u);
}

TEST(Market, SweepImprovesOrKeepsAfterDepartures) {
  auto& pool = p2p::testing::SharedSmallPool();
  MarketScheduler market(pool, TaskManagerOptions{});
  util::Rng rng(10);
  for (alm::SessionId id = 1; id <= 8; ++id) {
    market.AddSession(DisjointSpec(
        pool, id, 1 + static_cast<int>(rng.NextBounded(3)),
        static_cast<std::size_t>(id - 1)));
  }
  // Remove half, freeing resources.
  for (alm::SessionId id = 1; id <= 4; ++id) market.RemoveSession(id);
  std::vector<double> before;
  for (alm::SessionId id = 5; id <= 8; ++id)
    before.push_back(market.session(id).CurrentImprovement());
  market.ReschedulingSweep(rng);
  for (alm::SessionId id = 5; id <= 8; ++id) {
    // After picking up freed resources the plan should not be much worse
    // (it can wiggle slightly because estimates drive planning).
    EXPECT_GE(market.session(id).CurrentImprovement(),
              before[static_cast<std::size_t>(id - 5)] - 0.15);
  }
  for (alm::SessionId id = 5; id <= 8; ++id) market.RemoveSession(id);
  EXPECT_EQ(pool.registry().TotalUsed(), 0u);
}

TEST(Market, StatsCountersAdvance) {
  auto& pool = p2p::testing::SharedSmallPool();
  MarketScheduler market(pool, TaskManagerOptions{});
  market.AddSession(DisjointSpec(pool, 1, 1, 0));
  EXPECT_GE(market.total_reschedules(), 1u);
  market.RemoveSession(1);
}

// --------------------------------------------- multi-session experiment --

TEST(MultiSession, ExperimentRunsAndDrainsRegistry) {
  auto& pool = p2p::testing::SharedSmallPool();
  MultiSessionParams params;
  params.session_count = 6;
  params.members_per_session = 10;
  params.rescheduling_sweeps = 1;
  params.seed = 77;
  params.compute_upper_bound = false;
  const auto result = RunMultiSessionExperiment(pool, params);
  EXPECT_EQ(pool.registry().TotalUsed(), 0u);
  std::size_t sessions = 0;
  for (int p = 1; p <= 3; ++p)
    sessions += result.by_priority[static_cast<std::size_t>(p)].sessions;
  EXPECT_EQ(sessions, 6u);
  EXPECT_GT(result.pool_utilisation, 0.0);
  EXPECT_LE(result.pool_utilisation, 1.0);
  EXPECT_FALSE(result.lower_bound_improvement.empty());
}

TEST(MultiSession, ParallelBoundsMatchSequential) {
  // The per-session bound computations fan out over params.workers; the
  // folded statistics must be identical to a sequential run.
  auto& pool = p2p::testing::SharedSmallPool();
  MultiSessionParams params;
  params.session_count = 5;
  params.members_per_session = 10;
  params.rescheduling_sweeps = 1;
  params.seed = 99;
  params.compute_upper_bound = true;
  const auto sequential = RunMultiSessionExperiment(pool, params);
  util::ThreadPool workers(4);
  params.workers = &workers;
  const auto parallel = RunMultiSessionExperiment(pool, params);
  EXPECT_EQ(parallel.lower_bound_improvement.mean(),
            sequential.lower_bound_improvement.mean());
  EXPECT_EQ(parallel.upper_bound_improvement.mean(),
            sequential.upper_bound_improvement.mean());
  for (int p = 1; p <= 3; ++p) {
    const auto& a = parallel.by_priority[static_cast<std::size_t>(p)];
    const auto& b = sequential.by_priority[static_cast<std::size_t>(p)];
    EXPECT_EQ(a.sessions, b.sessions);
    if (!a.improvement.empty()) {
      EXPECT_EQ(a.improvement.mean(), b.improvement.mean());
    }
  }
  EXPECT_EQ(pool.registry().TotalUsed(), 0u);
}

TEST(MultiSession, ParallelMetricsSnapshotMatchesSequential) {
  // Planning instruments per-session registry shards that are merged in
  // spec order after the fan-out, so the metrics snapshot must be
  // byte-identical whether or not a worker pool is attached.
  auto& pool = p2p::testing::SharedSmallPool();
  MultiSessionParams params;
  params.session_count = 5;
  params.members_per_session = 10;
  params.rescheduling_sweeps = 1;
  params.seed = 99;
  params.compute_upper_bound = true;

  obs::MetricsRegistry sequential;
  params.metrics = &sequential;
  RunMultiSessionExperiment(pool, params);

  obs::MetricsRegistry parallel;
  util::ThreadPool workers(4);
  params.metrics = &parallel;
  params.workers = &workers;
  RunMultiSessionExperiment(pool, params);

  EXPECT_GT(sequential.Value("pool.bounds.sessions"), 0.0);
  EXPECT_GT(sequential.Value("pool.bounds.helper_candidates"), 0.0);
  // Profiles hold wall-clock timings, so compare the deterministic
  // sections only (SnapshotJson excludes profiles by default).
  EXPECT_EQ(parallel.SnapshotJson(), sequential.SnapshotJson());
}

TEST(MultiSession, TooManySessionsRejected) {
  auto& pool = p2p::testing::SharedSmallPool();
  MultiSessionParams params;
  params.session_count = 100;  // 100 × 10 > 120 hosts
  params.members_per_session = 10;
  EXPECT_THROW(RunMultiSessionExperiment(pool, params), util::CheckError);
}

TEST(MultiSession, ImprovementsWithinTheoreticalBounds) {
  auto& pool = p2p::testing::SharedSmallPool();
  MultiSessionParams params;
  params.session_count = 4;
  params.members_per_session = 10;
  params.rescheduling_sweeps = 2;
  params.seed = 31;
  params.compute_upper_bound = true;
  const auto result = RunMultiSessionExperiment(pool, params);
  // Mean improvement of every priority class should be sane: no worse
  // than a modest negative wiggle and no better than the solo upper bound
  // plus slack (estimates make individual sessions noisy).
  const double ub = result.upper_bound_improvement.mean();
  for (int p = 1; p <= 3; ++p) {
    const auto& cls = result.by_priority[static_cast<std::size_t>(p)];
    if (cls.sessions == 0) continue;
    EXPECT_GE(cls.improvement.mean(), -0.1);
    EXPECT_LE(cls.improvement.mean(), ub + 0.15);
  }
}

}  // namespace
}  // namespace p2p::pool
