// Property sweeps over the SOMO logical tree: structural invariants for
// every (ring size, fanout, seed) combination, plus the size/depth bounds
// the latency analysis depends on.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "dht/ring.h"
#include "somo/logical_tree.h"

namespace p2p::somo {
namespace {

using TreeParam = std::tuple<std::size_t, std::size_t, std::uint64_t>;

class LogicalTreeProperty : public ::testing::TestWithParam<TreeParam> {
 protected:
  void SetUp() override {
    const auto [n, fanout, seed] = GetParam();
    ring_ = std::make_unique<dht::Ring>(8);
    for (std::size_t i = 0; i < n; ++i)
      ring_->JoinHashed(i, /*salt=*/seed & 0xff);
    tree_ = std::make_unique<LogicalTree>(*ring_, fanout);
  }
  std::unique_ptr<dht::Ring> ring_;
  std::unique_ptr<LogicalTree> tree_;
};

TEST_P(LogicalTreeProperty, StructuralInvariants) {
  tree_->CheckInvariants(*ring_);
}

TEST_P(LogicalTreeProperty, SizeIsLinearInRingSize) {
  const auto [n, fanout, seed] = GetParam();
  (void)seed;
  // Each split is forced by a distinct zone boundary; with k-ary splits
  // the internal-node count is O(N · 64/log2 k) in the adversarial worst
  // case but O(N) in expectation. Assert a generous linear bound.
  EXPECT_LE(tree_->size(), 8 * n * fanout + 16);
}

TEST_P(LogicalTreeProperty, DepthWithinTwiceLogBound) {
  const auto [n, fanout, seed] = GetParam();
  (void)seed;
  const double logk =
      std::log(static_cast<double>(n)) / std::log(static_cast<double>(fanout));
  // Closest-pair gaps cost about another log_k(N); +3 covers rounding and
  // the root level.
  EXPECT_LE(static_cast<double>(tree_->depth()), 2.0 * logk + 3.0);
}

TEST_P(LogicalTreeProperty, CentersAreSelfComputable) {
  for (LogicalIndex i = 0; i < tree_->size(); ++i) {
    const auto& ln = tree_->node(i);
    EXPECT_NEAR(ln.center,
                LogicalTree::CenterOf(ln.level, ln.index, tree_->fanout()),
                1.0 / static_cast<double>(tree_->fanout()))
        << "logical node " << i;
  }
}

TEST_P(LogicalTreeProperty, ChildIndicesFollowKaryNumbering) {
  for (LogicalIndex i = 0; i < tree_->size(); ++i) {
    const auto& ln = tree_->node(i);
    for (const LogicalIndex c : ln.children) {
      EXPECT_EQ(tree_->node(c).index / tree_->fanout(), ln.index);
    }
  }
}

TEST_P(LogicalTreeProperty, OwnersAreAlive) {
  for (LogicalIndex i = 0; i < tree_->size(); ++i)
    EXPECT_TRUE(ring_->node(tree_->node(i).owner).alive());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LogicalTreeProperty,
    ::testing::Combine(::testing::Values(1, 3, 10, 50, 200),
                       ::testing::Values(2, 4, 8, 16),
                       ::testing::Values(7, 77)),
    [](const ::testing::TestParamInfo<TreeParam>& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_k" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace p2p::somo
