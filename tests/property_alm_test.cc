// Property sweeps over the ALM planner: for random metric-ish latency
// spaces, degree distributions, group sizes and strategies — trees are
// always valid, degree-bounded, no worse than planned, and bounded below
// by the ideal star.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "alm/bounds.h"
#include "alm/critical.h"
#include "util/rng.h"

namespace p2p::alm {
namespace {

// Synthetic participant space: random points in a 2-D box, Euclidean
// latency (a clean metric — triangle inequality holds exactly).
struct Space {
  std::vector<std::pair<double, double>> pos;
  std::vector<int> bounds;

  Space(std::size_t n, std::uint64_t seed, int min_deg, int max_deg) {
    util::Rng rng(seed);
    pos.reserve(n);
    bounds.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      pos.emplace_back(rng.Uniform(0.0, 500.0), rng.Uniform(0.0, 500.0));
      bounds.push_back(
          static_cast<int>(rng.UniformInt(min_deg, max_deg)));
    }
  }

  LatencyFn Latency() const {
    return [this](ParticipantId a, ParticipantId b) {
      const double dx = pos[a].first - pos[b].first;
      const double dy = pos[a].second - pos[b].second;
      return std::sqrt(dx * dx + dy * dy) + (a == b ? 0.0 : 1.0);
    };
  }
};

// (participants, group size, seed)
using AlmParam = std::tuple<std::size_t, std::size_t, std::uint64_t>;

class AlmProperty : public ::testing::TestWithParam<AlmParam> {
 protected:
  void SetUp() override {
    const auto [n, group, seed] = GetParam();
    space_ = std::make_unique<Space>(n, seed, 2, 6);
    util::Rng rng(seed ^ 0x999);
    const auto idx = rng.SampleIndices(n, group);
    input_.degree_bounds = space_->bounds;
    input_.root = idx[0];
    input_.members.assign(idx.begin() + 1, idx.end());
    for (std::size_t v = 0; v < n; ++v) {
      if (std::find(idx.begin(), idx.end(), v) == idx.end() &&
          space_->bounds[v] >= 4)
        input_.helper_candidates.push_back(v);
    }
    input_.true_latency = space_->Latency();
    // "Estimates": the true latency perturbed ±25 % deterministically.
    input_.estimated_latency = [lat = space_->Latency()](ParticipantId a,
                                                         ParticipantId b) {
      const double f =
          0.75 + 0.5 * (static_cast<double>(util::Mix64(a * 7919 + b) %
                                            1000) /
                        1000.0);
      return lat(a, b) * f;
    };
  }
  std::unique_ptr<Space> space_;
  PlanInput input_;
};

TEST_P(AlmProperty, EveryStrategyYieldsValidBoundedTree) {
  for (const Strategy s :
       {Strategy::kAmcast, Strategy::kAmcastAdjust, Strategy::kCritical,
        Strategy::kCriticalAdjust, Strategy::kLeafset,
        Strategy::kLeafsetAdjust}) {
    SCOPED_TRACE(StrategyName(s));
    const auto r = PlanSession(input_, s);
    r.tree.Validate(input_.degree_bounds);
    EXPECT_EQ(r.tree.size(), input_.members.size() + 1 + r.helpers_used);
    EXPECT_EQ(r.tree.root(), input_.root);
  }
}

TEST_P(AlmProperty, HeightsBoundedBelowByIdealStar) {
  const double ideal =
      IdealHeight(input_.root, input_.members, input_.true_latency);
  for (const Strategy s :
       {Strategy::kAmcast, Strategy::kCriticalAdjust,
        Strategy::kLeafsetAdjust}) {
    const auto r = PlanSession(input_, s);
    // Helpers can relay but never beat direct root→member delivery in a
    // metric space (triangle inequality).
    EXPECT_GE(r.height_true, ideal - 1e-6) << StrategyName(s);
  }
}

TEST_P(AlmProperty, AdjustNeverHurtsPlannedHeight) {
  const auto raw = PlanSession(input_, Strategy::kCritical);
  const auto adj = PlanSession(input_, Strategy::kCriticalAdjust);
  EXPECT_LE(adj.height_true, raw.height_true + 1e-9);
}

TEST_P(AlmProperty, HelperRecruitmentStaysSane) {
  // Greedy splicing is a heuristic and can lose to plain AMCast on
  // individual instances; the properties that must ALWAYS hold are that
  // it never explodes the tree and never recruits more helpers than
  // members (each splice accompanies exactly one member attachment).
  const auto base = PlanSession(input_, Strategy::kAmcast);
  const auto crit = PlanSession(input_, Strategy::kCritical);
  EXPECT_LE(crit.height_true, base.height_true * 1.5 + 1e-9);
  EXPECT_LE(crit.helpers_used, input_.members.size());
  // And with adjustment on top, the helper plan is competitive with the
  // adjusted baseline.
  const auto base_adj = PlanSession(input_, Strategy::kAmcastAdjust);
  const auto crit_adj = PlanSession(input_, Strategy::kCriticalAdjust);
  EXPECT_LE(crit_adj.height_true, base_adj.height_true * 1.25 + 1e-9);
}

TEST_P(AlmProperty, DeterministicForSameInput) {
  const auto a = PlanSession(input_, Strategy::kLeafsetAdjust);
  const auto b = PlanSession(input_, Strategy::kLeafsetAdjust);
  EXPECT_DOUBLE_EQ(a.height_true, b.height_true);
  EXPECT_EQ(a.helpers_used, b.helpers_used);
  EXPECT_EQ(a.tree.members(), b.tree.members());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AlmProperty,
    ::testing::Combine(::testing::Values(60, 200),
                       ::testing::Values(5, 15, 40),
                       ::testing::Values(11, 42, 360)),
    [](const ::testing::TestParamInfo<AlmParam>& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_g" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

// ---- degree-distribution sweep -----------------------------------------

class DegreeDistProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DegreeDistProperty, FeasibleWheneverMinDegreeIsTwo) {
  const auto [min_deg, max_deg] = GetParam();
  Space space(80, 5, min_deg, max_deg);
  util::Rng rng(6);
  const auto idx = rng.SampleIndices(80, 25);
  AmcastInput in;
  in.degree_bounds = space.bounds;
  in.root = idx[0];
  in.members.assign(idx.begin() + 1, idx.end());
  const auto r = BuildAmcastTree(in, space.Latency());
  r.tree.Validate(in.degree_bounds);
  EXPECT_EQ(r.tree.size(), 25u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DegreeDistProperty,
                         ::testing::Values(std::make_tuple(2, 2),
                                           std::make_tuple(2, 9),
                                           std::make_tuple(3, 5),
                                           std::make_tuple(9, 9)));

}  // namespace
}  // namespace p2p::alm
