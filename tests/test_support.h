// Shared fixtures and helpers for the test suite: small (fast) topologies,
// pre-built pools, and common assertions.
#pragma once

#include <gtest/gtest.h>

#include "net/latency_oracle.h"
#include "net/transit_stub.h"
#include "pool/resource_pool.h"

namespace p2p::testing {

// A small transit-stub configuration: 2×3 transit routers, 2 stub domains
// of 4 routers per transit router → 6 + 48 = 54 routers, `hosts` end
// systems. Fast to generate and Dijkstra.
inline net::TransitStubParams SmallTopologyParams(std::size_t hosts = 120) {
  net::TransitStubParams p;
  p.transit_domains = 2;
  p.transit_routers_per_domain = 3;
  p.stub_domains_per_transit_router = 2;
  p.routers_per_stub_domain = 4;
  p.end_hosts = hosts;
  return p;
}

inline pool::PoolConfig SmallPoolConfig(std::size_t hosts = 120,
                                        std::uint64_t seed = 17) {
  pool::PoolConfig cfg;
  cfg.topology = SmallTopologyParams(hosts);
  cfg.seed = seed;
  cfg.coord_rounds = 4;
  cfg.coord_nm_iterations = 60;
  return cfg;
}

// Pool construction dominates many tests' runtime; share one lazily-built
// pool per test binary. Tests that claim registry degrees must release
// them (RunMultiSessionExperiment already drains on exit).
inline pool::ResourcePool& SharedSmallPool() {
  static pool::ResourcePool* pool =
      new pool::ResourcePool(SmallPoolConfig());
  return *pool;
}

}  // namespace p2p::testing
