// The closed monitor→react loop in miniature (the `alert` experiment's
// mechanics at unit scale): heartbeat runs as a pure sensor
// (auto_repair=false), SOMO disseminates the global view, and an
// AlertEngine rule over one observer's *in-band copy* of that view drives
// probe-and-evict repair when a crashed leaf owner pins view staleness.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "dht/heartbeat.h"
#include "dht/ring.h"
#include "obs/alert.h"
#include "sim/simulation.h"
#include "somo/somo.h"

namespace p2p::somo {
namespace {

constexpr double kInterval = 500.0;    // SOMO reporting cycle T
constexpr double kHbTimeout = 3500.0;
constexpr double kCrashAt = 15000.0;
constexpr double kHorizon = 60000.0;

// One full in-band loop over a 64-node ring. Mirrors CmdAlert's wiring:
// stale threshold = hb timeout + (depth+2)·T, debounce T/2, ∞ probe → 0,
// suspects = aged-past-threshold members ∪ seen-but-vanished members, one
// direct probe each (dead ⇒ evict, alive ⇒ false detect), then Rebuild.
struct LoopRun {
  double hb_detect = -1.0;
  double alert_detect = -1.0;
  double diss_period = 0.0;
  std::size_t fires = 0;
  std::size_t repaired = 0;
  std::size_t false_detects = 0;
  bool victim_evicted = false;
  std::vector<obs::AlertEvent> events;
};

LoopRun RunLoop(std::uint64_t seed, bool crash) {
  sim::Simulation sim(seed);
  dht::Ring ring(8);
  for (std::size_t i = 0; i < 64; ++i) ring.JoinHashed(i);
  ring.StabilizeAll();

  dht::HeartbeatConfig hb_cfg;
  hb_cfg.suspect_alive = true;
  hb_cfg.timeout_ms = kHbTimeout;
  hb_cfg.auto_repair = false;  // sensor only: repair is the alert's job
  dht::HeartbeatProtocol hb(sim, ring, hb_cfg);

  SomoConfig cfg;
  cfg.fanout = 4;
  cfg.report_interval_ms = kInterval;
  cfg.disseminate = true;
  SomoProtocol somo(sim, ring, cfg, [&](dht::NodeIndex n) {
    NodeReport r;
    r.node = n;
    r.host = ring.node(n).host();
    r.generated_at = sim.now();
    r.telemetry.suspects = hb.suspected_count(n);
    r.telemetry.sampled_at = sim.now();
    return r;
  });

  const LogicalTree& tree = somo.tree();
  const dht::NodeIndex root_owner = tree.node(tree.root()).owner;
  dht::NodeIndex observer = dht::kNoNode;
  for (dht::NodeIndex n = 0; n < ring.size(); ++n) {
    if (n == root_owner) continue;
    observer = n;
    break;
  }
  dht::NodeIndex victim = dht::kNoNode;
  std::size_t victim_leaf_size = static_cast<std::size_t>(-1);
  for (const LogicalIndex l : tree.leaves()) {
    const LogicalNode& ln = tree.node(l);
    if (ln.owner == root_owner || ln.owner == observer) continue;
    if (ln.reported.empty() || ln.reported.size() >= victim_leaf_size)
      continue;
    victim_leaf_size = ln.reported.size();
    victim = ln.owner;
  }
  EXPECT_NE(observer, dht::kNoNode);
  EXPECT_NE(victim, dht::kNoNode);

  LoopRun out;
  out.diss_period = (static_cast<double>(tree.depth()) + 2.0) * kInterval;
  const double stale_threshold = kHbTimeout + out.diss_period;

  obs::AlertEngine engine;
  obs::AlertRule stale;
  stale.name = "view.stale";
  stale.threshold = stale_threshold;
  stale.debounce_ms = kInterval / 2.0;
  stale.clear_ms = kInterval;
  stale.probe = [&somo, observer] {
    const double v = somo.ViewStalenessMs(observer);
    return std::isfinite(v) ? v : 0.0;
  };
  const std::size_t stale_rule = engine.AddRule(std::move(stale));

  hb.AddFailureObserver(
      [&out, victim](dht::NodeIndex, dht::NodeIndex dead, sim::Time when) {
        if (dead == victim && out.hb_detect < 0.0) out.hb_detect = when;
      });

  std::vector<char> evicted(ring.size(), 0);
  std::vector<char> seen(ring.size(), 0);
  engine.OnFire(stale_rule, [&](const obs::AlertEvent&) {
    const SomoProtocol::NodeView& v = somo.ViewAt(observer);
    if (!v.valid()) return;
    std::vector<char> current(ring.size(), 0);
    std::vector<dht::NodeIndex> suspects;
    for (std::size_t i = 0; i < v.view->size(); ++i) {
      const dht::NodeIndex n = v.view->node(i);
      if (n >= ring.size()) continue;
      current[n] = 1;
      seen[n] = 1;
      if (sim.now() - v.view->generated_at(i) > stale_threshold)
        suspects.push_back(n);
    }
    for (dht::NodeIndex n = 0; n < ring.size(); ++n) {
      if (seen[n] && !current[n]) suspects.push_back(n);
    }
    for (const dht::NodeIndex n : suspects) {
      if (evicted[n]) continue;
      if (!ring.node(n).alive()) {
        evicted[n] = 1;
        ring.DetectFailure(n);
        ++out.repaired;
      } else {
        ++out.false_detects;
      }
    }
    somo.Rebuild();
  });

  hb.Start();
  somo.Start();
  sim.Every(kInterval / 2.0, kInterval / 2.0,
            [&engine, &sim] { engine.Evaluate(sim.now()); });
  if (crash) {
    sim.At(kCrashAt, [&ring, victim] { ring.Fail(victim); });
  }
  sim.RunUntil(kHorizon);

  out.alert_detect = engine.first_fired_at(stale_rule);
  out.fires = engine.fire_count(stale_rule);
  out.victim_evicted = evicted[victim] != 0;
  out.events = engine.events();
  somo.Stop();
  hb.Stop();
  return out;
}

TEST(SomoAlertLoop, InBandViewDrivesEvictionOfCrashedLeafOwner) {
  const LoopRun run = RunLoop(42, /*crash=*/true);
  // The sensor heartbeat noticed the silence...
  ASSERT_GE(run.hb_detect, kCrashAt);
  // ...but membership repair came solely from the alert reaction.
  EXPECT_TRUE(run.victim_evicted);
  EXPECT_GE(run.repaired, 1u);
  ASSERT_GE(run.fires, 1u);
  // Nothing fired before the fault existed.
  EXPECT_GT(run.alert_detect, kCrashAt);
  // Detection bound: staleness crosses threshold ≈ crash + threshold, so
  // relative to the heartbeat (≈ crash + timeout − one heartbeat period)
  // the in-band path lags by at most the dissemination period plus one
  // debounce + one evaluation step (T/2 each) plus that heartbeat period.
  EXPECT_LE(run.alert_detect,
            run.hb_detect + run.diss_period + kInterval + 1000.0);
}

TEST(SomoAlertLoop, NoFaultTwinStaysQuiet) {
  const LoopRun run = RunLoop(42, /*crash=*/false);
  EXPECT_EQ(run.fires, 0u);
  EXPECT_EQ(run.repaired, 0u);
  EXPECT_EQ(run.false_detects, 0u);
  EXPECT_TRUE(run.events.empty());
  EXPECT_LT(run.alert_detect, 0.0);  // never fired
}

TEST(SomoAlertLoop, SameSeedYieldsIdenticalEventLogs) {
  const LoopRun a = RunLoop(42, /*crash=*/true);
  const LoopRun b = RunLoop(42, /*crash=*/true);
  EXPECT_EQ(a.hb_detect, b.hb_detect);
  EXPECT_EQ(a.alert_detect, b.alert_detect);
  EXPECT_EQ(a.repaired, b.repaired);
  EXPECT_EQ(a.false_detects, b.false_detects);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].time_ms, b.events[i].time_ms);
    EXPECT_EQ(a.events[i].rule, b.events[i].rule);
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].value, b.events[i].value);
  }
  // A different seed shifts timer phases; the loop still detects/repairs.
  const LoopRun c = RunLoop(43, /*crash=*/true);
  EXPECT_TRUE(c.victim_evicted);
}

}  // namespace
}  // namespace p2p::somo
