#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "dht/heartbeat.h"
#include "dht/ring.h"
#include "sim/simulation.h"
#include "somo/somo.h"
#include "util/check.h"

namespace p2p::somo {
namespace {

NodeReport BasicReport(sim::Simulation& sim, const dht::Ring& ring,
                       dht::NodeIndex n) {
  NodeReport r;
  r.node = n;
  r.host = ring.node(n).host();
  r.generated_at = sim.now();
  r.degrees.total = 4;
  return r;
}

struct SomoFixture {
  sim::Simulation sim{21};
  dht::Ring ring{8};

  explicit SomoFixture(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) ring.JoinHashed(i);
    ring.StabilizeAll();
  }

  // SomoProtocol holds references and is immovable; hand out a pointer.
  std::unique_ptr<SomoProtocol> MakeProtocol(SomoConfig cfg) {
    return std::make_unique<SomoProtocol>(
        sim, ring, cfg,
        [this](dht::NodeIndex n) { return BasicReport(sim, ring, n); });
  }
};

// -------------------------------------------------------- AggregateReport --

TEST(AggregateReport, AddAndMergeTrackFreshness) {
  AggregateReport a;
  NodeReport r1;
  r1.node = 1;
  r1.generated_at = 10.0;
  a.Add(r1);
  NodeReport r2;
  r2.node = 2;
  r2.generated_at = 5.0;
  a.Add(r2);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_DOUBLE_EQ(a.oldest, 5.0);
  EXPECT_DOUBLE_EQ(a.newest, 10.0);

  AggregateReport b;
  NodeReport r3;
  r3.node = 3;
  r3.generated_at = 20.0;
  b.Add(r3);
  a.Merge(b);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_DOUBLE_EQ(a.newest, 20.0);
}

TEST(AggregateReport, MergeEmptyIsNoop) {
  AggregateReport a, empty;
  NodeReport r;
  r.generated_at = 1.0;
  a.Add(r);
  a.Merge(empty);
  EXPECT_EQ(a.size(), 1u);
  EXPECT_DOUBLE_EQ(a.oldest, 1.0);
}

// ------------------------------------------------------------ DegreeTable --

TEST(DegreeTable, AvailabilityAccounting) {
  DegreeTable t;
  t.total = 4;
  t.taken.push_back({7, 2});   // session 7 at priority 2
  t.taken.push_back({9, 3});   // session 9 at priority 3
  EXPECT_EQ(t.used(), 2);
  EXPECT_EQ(t.free(), 2);
  EXPECT_EQ(t.AvailableFor(1), 4);  // can preempt both
  EXPECT_EQ(t.AvailableFor(2), 3);  // can preempt priority 3 only
  EXPECT_EQ(t.AvailableFor(3), 2);  // free only
  EXPECT_EQ(t.UsedAt(2), 1);
  EXPECT_EQ(t.HeldBy(9), 1);
}

// ----------------------------------------------- unsynchronised gathering --

TEST(SomoProtocol, UnsyncGatherReachesCompleteRootView) {
  SomoFixture f(40);
  SomoConfig cfg;
  cfg.fanout = 4;
  cfg.report_interval_ms = 1000.0;
  auto somo = f.MakeProtocol(cfg);
  somo->Start();
  // depth·T suffices for data to climb the whole hierarchy.
  const double horizon =
      (somo->tree().depth() + 2) * cfg.report_interval_ms + 1000.0;
  f.sim.RunUntil(horizon);
  EXPECT_TRUE(somo->RootViewComplete());
  EXPECT_EQ(somo->RootReport().size(), 40u);
}

TEST(SomoProtocol, UnsyncStalenessBoundedByDepthTimesInterval) {
  SomoFixture f(64);
  SomoConfig cfg;
  cfg.fanout = 8;
  cfg.report_interval_ms = 500.0;
  auto somo = f.MakeProtocol(cfg);
  somo->Start();
  f.sim.RunUntil(20000.0);
  ASSERT_TRUE(somo->RootViewComplete());
  // Paper bound: log_k(N)·T (+ slack for transmission delays).
  const double bound =
      (static_cast<double>(somo->tree().depth()) + 1.0) *
          cfg.report_interval_ms +
      1000.0;
  EXPECT_LE(somo->RootStalenessMs(), bound);
}

TEST(SomoProtocol, StalenessInfiniteBeforeFirstGather) {
  SomoFixture f(10);
  auto somo = f.MakeProtocol(SomoConfig{});
  EXPECT_TRUE(std::isinf(somo->RootStalenessMs()));
  EXPECT_FALSE(somo->RootViewComplete());
}

// ------------------------------------------------- synchronised gathering --

TEST(SomoProtocol, SyncGatherCompletesWithinOneInterval) {
  SomoFixture f(50);
  SomoConfig cfg;
  cfg.fanout = 8;
  cfg.report_interval_ms = 5000.0;
  cfg.synchronized_gather = true;
  auto somo = f.MakeProtocol(cfg);
  somo->Start();
  f.sim.RunUntil(cfg.report_interval_ms - 1.0);  // within the first cycle
  EXPECT_TRUE(somo->RootViewComplete());
  // Synchronised staleness ≈ 2·t_hop·depth, far below T.
  EXPECT_LT(somo->RootStalenessMs(), cfg.report_interval_ms);
}

TEST(SomoProtocol, SyncGatherCountsRounds) {
  SomoFixture f(30);
  SomoConfig cfg;
  cfg.synchronized_gather = true;
  cfg.report_interval_ms = 1000.0;
  auto somo = f.MakeProtocol(cfg);
  somo->Start();
  // Each cascade needs ~2·depth·hop ≈ 1.2–1.6 s; rounds fire every 1 s and
  // overlap, completing independently.
  f.sim.RunUntil(8000.0);
  EXPECT_GE(somo->gathers_completed(), 6u);
}

// ------------------------------------------------------------ self-repair --

TEST(SomoProtocol, RebuildAfterFailureRestoresCompleteView) {
  SomoFixture f(40);
  SomoConfig cfg;
  cfg.fanout = 4;
  cfg.report_interval_ms = 500.0;
  auto somo = f.MakeProtocol(cfg);
  somo->Start();
  f.sim.RunUntil(15000.0);
  ASSERT_TRUE(somo->RootViewComplete());

  // Crash three nodes (including, possibly, SOMO internal-node owners).
  for (const dht::NodeIndex victim : {3u, 17u, 29u}) {
    f.ring.Fail(victim);
    f.ring.DetectFailure(victim);
  }
  somo->Rebuild();
  f.sim.RunUntil(f.sim.now() + 15000.0);
  EXPECT_TRUE(somo->RootViewComplete());
  EXPECT_EQ(somo->RootReport().size(), 37u);
}

TEST(SomoProtocol, QueryFromNodeRoutesToRootOwner) {
  SomoFixture f(60);
  SomoConfig cfg;
  auto somo = f.MakeProtocol(cfg);
  somo->Start();
  f.sim.RunUntil(30000.0);
  const auto qr = somo->QueryFromNode(7);
  EXPECT_TRUE(qr.route.success);
  EXPECT_EQ(qr.route.destination, somo->tree().node(somo->tree().root()).owner);
  EXPECT_FALSE(qr.view->empty());
}

TEST(SomoProtocol, OptimizeRootMovesRootToMostCapableNode) {
  SomoFixture f(30);
  SomoConfig cfg;
  auto somo = f.MakeProtocol(cfg);
  // Capacity: node 13 is the beefiest machine.
  const dht::NodeIndex new_root = somo->OptimizeRoot(
      [](dht::NodeIndex n) { return n == 13 ? 100.0 : 1.0; });
  EXPECT_EQ(new_root, 13u);
  EXPECT_EQ(somo->tree().node(somo->tree().root()).owner, 13u);
  f.ring.CheckInvariants();
}

TEST(SomoProtocol, OptimizeRootIsNoopWhenAlreadyOptimal) {
  SomoFixture f(20);
  auto somo = f.MakeProtocol(SomoConfig{});
  const dht::NodeIndex owner = somo->tree().node(somo->tree().root()).owner;
  const dht::NodeIndex after = somo->OptimizeRoot(
      [owner](dht::NodeIndex n) { return n == owner ? 10.0 : 1.0; });
  EXPECT_EQ(after, owner);
}

TEST(SomoProtocol, StopSilencesTimers) {
  SomoFixture f(20);
  SomoConfig cfg;
  cfg.report_interval_ms = 100.0;
  auto somo = f.MakeProtocol(cfg);
  somo->Start();
  f.sim.RunUntil(2000.0);
  somo->Stop();
  const std::size_t msgs = somo->messages_sent();
  f.sim.RunUntil(10000.0);
  EXPECT_EQ(somo->messages_sent(), msgs);
}

}  // namespace
}  // namespace p2p::somo
