#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "net/bandwidth_model.h"
#include "net/graph.h"
#include "net/latency_oracle.h"
#include "net/transit_stub.h"
#include "test_support.h"
#include "util/check.h"
#include "util/stats.h"

namespace p2p::net {
namespace {

// ---------------------------------------------------------------- Graph --

TEST(Graph, AddNodesAndEdges) {
  Graph g(3);
  g.AddEdge(0, 1, 2.0);
  g.AddEdge(1, 2, 3.0);
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));  // undirected
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_EQ(g.Degree(1), 2u);
}

TEST(Graph, SelfLoopRejected) {
  Graph g(2);
  EXPECT_THROW(g.AddEdge(1, 1, 1.0), util::CheckError);
}

TEST(Graph, NonPositiveWeightRejected) {
  Graph g(2);
  EXPECT_THROW(g.AddEdge(0, 1, 0.0), util::CheckError);
  EXPECT_THROW(g.AddEdge(0, 1, -1.0), util::CheckError);
}

TEST(Graph, DijkstraLineGraph) {
  Graph g(4);
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(1, 2, 2.0);
  g.AddEdge(2, 3, 4.0);
  const auto d = g.Dijkstra(0);
  EXPECT_DOUBLE_EQ(d[0], 0.0);
  EXPECT_DOUBLE_EQ(d[1], 1.0);
  EXPECT_DOUBLE_EQ(d[2], 3.0);
  EXPECT_DOUBLE_EQ(d[3], 7.0);
}

TEST(Graph, DijkstraPrefersShorterMultiHopPath) {
  Graph g(3);
  g.AddEdge(0, 2, 10.0);
  g.AddEdge(0, 1, 2.0);
  g.AddEdge(1, 2, 3.0);
  EXPECT_DOUBLE_EQ(g.Dijkstra(0)[2], 5.0);
}

TEST(Graph, DijkstraUnreachableIsInfinite) {
  Graph g(3);
  g.AddEdge(0, 1, 1.0);
  EXPECT_EQ(g.Dijkstra(0)[2], kInfLatency);
  EXPECT_FALSE(g.IsConnected());
}

TEST(Graph, EmptyGraphIsConnected) {
  Graph g;
  EXPECT_TRUE(g.IsConnected());
}

TEST(Graph, DijkstraSymmetricDistances) {
  util::Rng rng(3);
  Graph g(20);
  // Random connected graph.
  for (NodeIdx i = 1; i < 20; ++i)
    g.AddEdge(i, rng.NextBounded(i), rng.Uniform(1.0, 10.0));
  for (int e = 0; e < 15; ++e) {
    const NodeIdx a = rng.NextBounded(20), b = rng.NextBounded(20);
    if (a != b && !g.HasEdge(a, b)) g.AddEdge(a, b, rng.Uniform(1.0, 10.0));
  }
  const auto d0 = g.Dijkstra(7);
  for (NodeIdx v = 0; v < 20; ++v)
    EXPECT_DOUBLE_EQ(g.Dijkstra(v)[7], d0[v]);
}

// ---------------------------------------------------------- TransitStub --

class TransitStubTest : public ::testing::Test {
 protected:
  static TransitStubTopology Paper() {
    util::Rng rng(42);
    return GenerateTransitStub(TransitStubParams{}, rng);
  }
};

TEST_F(TransitStubTest, PaperShape600Routers1200Hosts) {
  const auto topo = Paper();
  EXPECT_EQ(topo.router_count(), 600u);
  EXPECT_EQ(topo.params.total_transit_routers(), 24u);
  EXPECT_EQ(topo.params.total_stub_routers(), 576u);
  EXPECT_EQ(topo.host_count(), 1200u);
}

TEST_F(TransitStubTest, TransitFlagMatchesLayout) {
  const auto topo = Paper();
  for (std::size_t r = 0; r < topo.router_count(); ++r)
    EXPECT_EQ(topo.is_transit[r], r < 24u);
}

TEST_F(TransitStubTest, RouterGraphIsConnected) {
  EXPECT_TRUE(Paper().routers.IsConnected());
}

TEST_F(TransitStubTest, HostsAttachToStubRoutersOnly) {
  const auto topo = Paper();
  for (const NodeIdx r : topo.host_router) {
    EXPECT_GE(r, 24u);
    EXPECT_LT(r, 600u);
  }
}

TEST_F(TransitStubTest, LastHopWithinConfiguredRange) {
  const auto topo = Paper();
  for (const double ms : topo.host_last_hop_ms) {
    EXPECT_GE(ms, 3.0);
    EXPECT_LT(ms, 8.0);
  }
}

TEST_F(TransitStubTest, LinkLatenciesComeFromTheThreeClasses) {
  const auto topo = Paper();
  std::set<double> latencies;
  for (NodeIdx v = 0; v < topo.router_count(); ++v)
    for (const auto& [to, w] : topo.routers.Neighbors(v)) {
      (void)to;
      latencies.insert(w);
    }
  EXPECT_EQ(latencies, (std::set<double>{10.0, 25.0, 100.0}));
}

TEST_F(TransitStubTest, StubDomainsAttachViaOne25msLink) {
  const auto topo = Paper();
  // Every transit router has exactly 3 stub-domain attachment links.
  for (NodeIdx t = 0; t < 24; ++t) {
    std::size_t attach = 0;
    for (const auto& [to, w] : topo.routers.Neighbors(t)) {
      (void)to;
      if (w == 25.0) ++attach;
    }
    EXPECT_EQ(attach, 3u) << "transit router " << t;
  }
}

TEST_F(TransitStubTest, DeterministicForSameSeed) {
  util::Rng r1(7), r2(7);
  const auto a = GenerateTransitStub(TransitStubParams{}, r1);
  const auto b = GenerateTransitStub(TransitStubParams{}, r2);
  EXPECT_EQ(a.host_router, b.host_router);
  EXPECT_EQ(a.routers.edge_count(), b.routers.edge_count());
}

TEST_F(TransitStubTest, SmallConfigurationWorks) {
  util::Rng rng(5);
  const auto topo =
      GenerateTransitStub(p2p::testing::SmallTopologyParams(60), rng);
  EXPECT_EQ(topo.router_count(), 6u + 48u);
  EXPECT_EQ(topo.host_count(), 60u);
  EXPECT_TRUE(topo.routers.IsConnected());
}

// -------------------------------------------------------- LatencyOracle --

TEST(LatencyOracle, SymmetricPositiveZeroDiagonal) {
  util::Rng rng(9);
  const auto topo =
      GenerateTransitStub(p2p::testing::SmallTopologyParams(80), rng);
  const LatencyOracle oracle(topo);
  for (HostIdx a = 0; a < 80; a += 7) {
    EXPECT_DOUBLE_EQ(oracle.Latency(a, a), 0.0);
    for (HostIdx b = 0; b < 80; b += 11) {
      if (a == b) continue;
      EXPECT_DOUBLE_EQ(oracle.Latency(a, b), oracle.Latency(b, a));
      EXPECT_GT(oracle.Latency(a, b), 0.0);
    }
  }
}

TEST(LatencyOracle, TriangleInequalityOverRouterCore) {
  // Router-level distances are shortest paths, hence metric.
  util::Rng rng(9);
  const auto topo =
      GenerateTransitStub(p2p::testing::SmallTopologyParams(40), rng);
  const LatencyOracle oracle(topo);
  for (NodeIdx a = 0; a < 20; ++a)
    for (NodeIdx b = 0; b < 20; ++b)
      for (NodeIdx c = 0; c < 20; ++c) {
        EXPECT_LE(oracle.RouterDistance(a, c),
                  oracle.RouterDistance(a, b) + oracle.RouterDistance(b, c) +
                      1e-9);
      }
}

TEST(LatencyOracle, ParallelBuildMatchesSequential) {
  util::Rng r1(13), r2(13);
  const auto t1 =
      GenerateTransitStub(p2p::testing::SmallTopologyParams(50), r1);
  const auto t2 =
      GenerateTransitStub(p2p::testing::SmallTopologyParams(50), r2);
  util::ThreadPool pool(4);
  const LatencyOracle seq(t1);
  const LatencyOracle par(t2, &pool);
  for (HostIdx a = 0; a < 50; a += 3)
    for (HostIdx b = 0; b < 50; b += 5)
      EXPECT_DOUBLE_EQ(seq.Latency(a, b), par.Latency(a, b));
}

TEST(LatencyOracle, SameStubPairsAreCloserThanCrossTransit) {
  // Statistical sanity: hosts on the same stub router should usually be
  // much closer than hosts in different transit domains.
  util::Rng rng(21);
  const auto topo = GenerateTransitStub(TransitStubParams{}, rng);
  const LatencyOracle oracle(topo);
  double same_router = 0.0;
  int same_count = 0;
  for (HostIdx a = 0; a < topo.host_count() && same_count < 50; ++a)
    for (HostIdx b = a + 1; b < topo.host_count() && same_count < 50; ++b)
      if (topo.host_router[a] == topo.host_router[b]) {
        same_router += oracle.Latency(a, b);
        ++same_count;
      }
  ASSERT_GT(same_count, 0);
  EXPECT_LT(same_router / same_count, 20.0);  // two last hops only
}

// ----------------------------------------------------- Topology presets --

// Gateways (stub routers with a direct transit attachment) per stub
// domain. The hierarchical oracle's correctness rests on every stub
// domain reaching the core through at least one of these.
std::vector<int> GatewaysPerStubDomain(const TransitStubTopology& topo) {
  std::vector<int> count(topo.params.total_stub_domains(), 0);
  for (NodeIdx r = 0; r < topo.router_count(); ++r) {
    if (topo.is_transit[r]) continue;
    for (const auto& [to, w] : topo.routers.Neighbors(r)) {
      (void)w;
      if (topo.is_transit[to]) {
        ++count[topo.domain_of[r]];
        break;
      }
    }
  }
  return count;
}

class PresetTest : public ::testing::TestWithParam<TopologyPreset> {
 protected:
  static TransitStubTopology Generate(std::uint64_t seed = 42) {
    util::Rng rng(seed);
    return GenerateTransitStub(PresetParams(GetParam()), rng);
  }
};

TEST_P(PresetTest, ShapeMatchesPresetParams) {
  const auto topo = Generate();
  EXPECT_EQ(topo.router_count(), topo.params.total_routers());
  EXPECT_EQ(topo.host_count(), topo.params.end_hosts);
  for (std::size_t r = 0; r < topo.router_count(); ++r)
    EXPECT_EQ(topo.is_transit[r], r < topo.params.total_transit_routers());
}

TEST_P(PresetTest, RouterGraphIsConnected) {
  EXPECT_TRUE(Generate().routers.IsConnected());
}

TEST_P(PresetTest, EveryStubDomainHasATransitGateway) {
  const auto topo = Generate();
  const auto gateways = GatewaysPerStubDomain(topo);
  for (std::size_t d = 0; d < gateways.size(); ++d)
    EXPECT_GE(gateways[d], 1) << "stub domain " << d;
}

TEST_P(PresetTest, LinkLatenciesComeFromTheThreeClasses) {
  const auto topo = Generate();
  std::set<double> latencies;
  for (NodeIdx v = 0; v < topo.router_count(); ++v)
    for (const auto& [to, w] : topo.routers.Neighbors(v)) {
      (void)to;
      latencies.insert(w);
    }
  EXPECT_EQ(latencies, (std::set<double>{10.0, 25.0, 100.0}));
}

TEST_P(PresetTest, HostsAttachToStubRoutersWithinLastHopRange) {
  const auto topo = Generate();
  const std::size_t transit = topo.params.total_transit_routers();
  for (const NodeIdx r : topo.host_router) {
    EXPECT_GE(r, transit);
    EXPECT_LT(r, topo.router_count());
  }
  for (const double ms : topo.host_last_hop_ms) {
    EXPECT_GE(ms, topo.params.last_hop_min_ms);
    EXPECT_LT(ms, topo.params.last_hop_max_ms);
  }
}

TEST_P(PresetTest, DeterministicRegeneration) {
  const auto a = Generate(7);
  const auto b = Generate(7);
  EXPECT_EQ(a.host_router, b.host_router);
  EXPECT_EQ(a.host_last_hop_ms, b.host_last_hop_ms);
  EXPECT_EQ(a.domain_of, b.domain_of);
  ASSERT_EQ(a.routers.edge_count(), b.routers.edge_count());
  for (NodeIdx v = 0; v < a.router_count(); ++v) {
    const auto na = a.routers.Neighbors(v);
    const auto nb = b.routers.Neighbors(v);
    ASSERT_EQ(na.size(), nb.size());
    for (std::size_t i = 0; i < na.size(); ++i) {
      EXPECT_EQ(na[i].to, nb[i].to);
      EXPECT_EQ(na[i].weight, nb[i].weight);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllPresets, PresetTest,
                         ::testing::Values(TopologyPreset::kPaper1200,
                                           TopologyPreset::kHosts10k,
                                           TopologyPreset::kHosts50k),
                         [](const auto& info) {
                           return std::string(
                               TopologyPresetName(info.param));
                         });

TEST(TopologyPreset, ParseNamesRoundTrip) {
  EXPECT_EQ(ParseTopologyPreset("1200"), TopologyPreset::kPaper1200);
  EXPECT_EQ(ParseTopologyPreset("paper"), TopologyPreset::kPaper1200);
  EXPECT_EQ(ParseTopologyPreset("10k"), TopologyPreset::kHosts10k);
  EXPECT_EQ(ParseTopologyPreset("10000"), TopologyPreset::kHosts10k);
  EXPECT_EQ(ParseTopologyPreset("50k"), TopologyPreset::kHosts50k);
  EXPECT_EQ(ParseTopologyPreset("50000"), TopologyPreset::kHosts50k);
  EXPECT_THROW(ParseTopologyPreset("2M"), util::CheckError);
  for (const auto p :
       {TopologyPreset::kPaper1200, TopologyPreset::kHosts10k,
        TopologyPreset::kHosts50k})
    EXPECT_EQ(ParseTopologyPreset(TopologyPresetName(p)), p);
}

TEST(TopologyPreset, ScaledPresetsAreMultihomed) {
  // ~30% of the 10k preset's stub domains draw a second transit link, so
  // the gateway-pair minimisation in the hierarchical oracle is actually
  // exercised (the paper preset stays single-homed).
  util::Rng rng(42);
  const auto topo = GenerateTransitStub(
      PresetParams(TopologyPreset::kHosts10k), rng);
  const auto gateways = GatewaysPerStubDomain(topo);
  const auto multihomed = static_cast<std::size_t>(
      std::count_if(gateways.begin(), gateways.end(),
                    [](int g) { return g >= 2; }));
  EXPECT_GT(multihomed, gateways.size() / 10);
  EXPECT_LT(multihomed, gateways.size() / 2);
}

// ------------------------------------------------------- BandwidthModel --

TEST(BandwidthModel, FractionsMustSumToOne) {
  util::Rng rng(1);
  std::vector<AccessClass> bad{{"a", 0.5, 100, 100}};
  EXPECT_THROW(BandwidthModel(bad, 10, rng), util::CheckError);
}

TEST(BandwidthModel, HostsDrawnFromClassesWithJitter) {
  util::Rng rng(2);
  const BandwidthModel m(1000, rng);
  for (std::size_t h = 0; h < m.host_count(); ++h) {
    const auto& hw = m.host(h);
    EXPECT_GT(hw.up_kbps, 0.0);
    EXPECT_GT(hw.down_kbps, 0.0);
  }
}

TEST(BandwidthModel, ClassMixRoughlyMatchesFractions) {
  util::Rng rng(3);
  const BandwidthModel m(20000, rng);
  // Count hosts whose uplink is in the modem band (33.6 ± 15 %).
  int modem = 0;
  for (std::size_t h = 0; h < m.host_count(); ++h) {
    if (m.host(h).up_kbps < 33.6 * 1.16) ++modem;
  }
  EXPECT_NEAR(modem / 20000.0, 0.08, 0.02);
}

TEST(BandwidthModel, AsymmetryPropertyHolds) {
  // §4.2's key property: most hosts' downlink exceeds most other hosts'
  // uplink. Check the medians.
  util::Rng rng(4);
  const BandwidthModel m(5000, rng);
  std::vector<double> up, down;
  for (std::size_t h = 0; h < m.host_count(); ++h) {
    up.push_back(m.host(h).up_kbps);
    down.push_back(m.host(h).down_kbps);
  }
  EXPECT_GT(util::Median(down), util::Median(up));
}

TEST(BandwidthModel, PathBottleneckIsMinOfUpAndDown) {
  util::Rng rng(5);
  const BandwidthModel m(10, rng);
  for (std::size_t a = 0; a < 10; ++a)
    for (std::size_t b = 0; b < 10; ++b) {
      if (a == b) continue;
      EXPECT_DOUBLE_EQ(m.PathBottleneckKbps(a, b),
                       std::min(m.host(a).up_kbps, m.host(b).down_kbps));
    }
}

TEST(BandwidthModel, SelfPathRejected) {
  util::Rng rng(6);
  const BandwidthModel m(5, rng);
  EXPECT_THROW(m.PathBottleneckKbps(2, 2), util::CheckError);
}

}  // namespace
}  // namespace p2p::net
