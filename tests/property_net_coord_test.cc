// Property sweeps over the network substrate and coordinate systems:
// topology-shape invariants across generator parameters, and embedding
// sanity across dimensions and leafset sizes.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "coord/leafset_coords.h"
#include "dht/ring.h"
#include "net/latency_oracle.h"
#include "net/transit_stub.h"
#include "util/stats.h"

namespace p2p {
namespace {

// ---- transit-stub generator sweep ---------------------------------------

// (transit domains, routers/domain, stub domains/router, routers/stub,
//  hosts, seed)
using TopoParam =
    std::tuple<std::size_t, std::size_t, std::size_t, std::size_t,
               std::size_t, std::uint64_t>;

class TopologyProperty : public ::testing::TestWithParam<TopoParam> {
 protected:
  net::TransitStubTopology Generate() const {
    const auto [td, trd, sdr, rsd, hosts, seed] = GetParam();
    net::TransitStubParams p;
    p.transit_domains = td;
    p.transit_routers_per_domain = trd;
    p.stub_domains_per_transit_router = sdr;
    p.routers_per_stub_domain = rsd;
    p.end_hosts = hosts;
    util::Rng rng(seed);
    return net::GenerateTransitStub(p, rng);
  }
};

TEST_P(TopologyProperty, ShapeMatchesParameters) {
  const auto topo = Generate();
  const auto& p = topo.params;
  EXPECT_EQ(topo.router_count(), p.total_routers());
  EXPECT_EQ(topo.host_count(), p.end_hosts);
  std::size_t transit = 0;
  for (const bool t : topo.is_transit) transit += t;
  EXPECT_EQ(transit, p.total_transit_routers());
}

TEST_P(TopologyProperty, AlwaysConnected) {
  EXPECT_TRUE(Generate().routers.IsConnected());
}

TEST_P(TopologyProperty, OracleIsMetricOverRouters) {
  const auto topo = Generate();
  const net::LatencyOracle oracle(topo);
  util::Rng rng(99);
  for (int i = 0; i < 40; ++i) {
    const auto a = rng.NextBounded(topo.router_count());
    const auto b = rng.NextBounded(topo.router_count());
    const auto c = rng.NextBounded(topo.router_count());
    EXPECT_LE(oracle.RouterDistance(a, c),
              oracle.RouterDistance(a, b) + oracle.RouterDistance(b, c) +
                  1e-9);
    EXPECT_DOUBLE_EQ(oracle.RouterDistance(a, b),
                     oracle.RouterDistance(b, a));
  }
}

TEST_P(TopologyProperty, HostLatencyDecomposition) {
  const auto topo = Generate();
  const net::LatencyOracle oracle(topo);
  util::Rng rng(7);
  for (int i = 0; i < 30; ++i) {
    const auto a = rng.NextBounded(topo.host_count());
    const auto b = rng.NextBounded(topo.host_count());
    if (a == b) continue;
    EXPECT_NEAR(oracle.Latency(a, b),
                topo.host_last_hop_ms[a] +
                    oracle.RouterDistance(topo.host_router[a],
                                          topo.host_router[b]) +
                    topo.host_last_hop_ms[b],
                1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TopologyProperty,
    ::testing::Values(
        TopoParam{1, 1, 1, 1, 4, 1},     // degenerate minimum
        TopoParam{1, 4, 2, 3, 40, 2},    // single transit domain
        TopoParam{2, 3, 2, 4, 80, 3},    // the test-suite default
        TopoParam{4, 6, 3, 8, 300, 4},   // the paper's shape, fewer hosts
        TopoParam{8, 2, 1, 2, 64, 5}),   // many small domains
    [](const ::testing::TestParamInfo<TopoParam>& info) {
      return "td" + std::to_string(std::get<0>(info.param)) + "x" +
             std::to_string(std::get<1>(info.param)) + "_sd" +
             std::to_string(std::get<2>(info.param)) + "x" +
             std::to_string(std::get<3>(info.param)) + "_h" +
             std::to_string(std::get<4>(info.param));
    });

// ---- coordinate-system sweep --------------------------------------------

// (dimensions, leafset size)
using CoordParam = std::tuple<std::size_t, std::size_t>;

class CoordProperty : public ::testing::TestWithParam<CoordParam> {};

TEST_P(CoordProperty, EmbeddingBeatsNaiveConstantPredictor) {
  const auto [dims, leafset] = GetParam();
  util::Rng topo_rng(31);
  net::TransitStubParams p;
  p.transit_domains = 2;
  p.transit_routers_per_domain = 3;
  p.stub_domains_per_transit_router = 2;
  p.routers_per_stub_domain = 4;
  p.end_hosts = 100;
  const auto topo = net::GenerateTransitStub(p, topo_rng);
  const net::LatencyOracle oracle(topo);
  dht::Ring ring(leafset, &oracle);
  for (std::size_t h = 0; h < 100; ++h) ring.JoinHashed(h);
  ring.StabilizeAll();

  coord::LeafsetCoordOptions copt;
  copt.dimensions = dims;
  copt.nm.max_iterations = 60;
  util::Rng crng(32);
  coord::LeafsetCoordSystem cs(ring, copt, crng);
  cs.RunRounds(4);

  // Baseline: always predict the global mean latency.
  util::Rng prng(33);
  util::Accumulator lat;
  for (int i = 0; i < 1000; ++i) {
    const auto a = prng.NextBounded(100);
    const auto b = prng.NextBounded(100);
    if (a != b) lat.Add(oracle.Latency(a, b));
  }
  const double mean_lat = lat.mean();
  util::Accumulator model_err, naive_err;
  util::Rng prng2(34);
  for (int i = 0; i < 1000; ++i) {
    const auto a = prng2.NextBounded(100);
    const auto b = prng2.NextBounded(100);
    if (a == b) continue;
    const double truth = oracle.Latency(a, b);
    model_err.Add(std::abs(cs.Predict(a, b) - truth) / truth);
    naive_err.Add(std::abs(mean_lat - truth) / truth);
  }
  EXPECT_LT(model_err.mean(), naive_err.mean())
      << "dims=" << dims << " leafset=" << leafset;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CoordProperty,
    ::testing::Combine(::testing::Values(2, 3, 5, 8),
                       ::testing::Values(8, 16, 32)),
    [](const ::testing::TestParamInfo<CoordParam>& info) {
      return "d" + std::to_string(std::get<0>(info.param)) + "_ls" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace p2p
