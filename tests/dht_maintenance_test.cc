#include <gtest/gtest.h>

#include "dht/maintenance.h"
#include "dht/ring.h"
#include "sim/simulation.h"
#include "util/rng.h"

namespace p2p::dht {
namespace {

// Fraction of finger entries matching the oracle responsible node.
double FingerAccuracy(const Ring& ring) {
  std::size_t correct = 0, total = 0;
  for (const NodeIndex n : ring.SortedAlive()) {
    const Node& x = ring.node(n);
    for (std::size_t i = 0; i < FingerTable::kBits; ++i) {
      const auto& e = x.fingers().finger(i);
      if (e.node == kNoNode) continue;
      ++total;
      if (e.node == ring.ResponsibleFor(x.fingers().TargetKey(i)))
        ++correct;
    }
  }
  return total == 0 ? 0.0
                    : static_cast<double>(correct) /
                          static_cast<double>(total);
}

TEST(Maintenance, RefreshesConvergeAfterChurn) {
  sim::Simulation sim(3);
  Ring ring(16);
  for (std::size_t i = 0; i < 128; ++i) ring.JoinHashed(i);
  ring.StabilizeAll();
  // Churn: fail 20, join 20 — fingers now stale everywhere.
  util::Rng rng(4);
  for (int i = 0; i < 20; ++i) {
    const auto alive = ring.SortedAlive();
    const NodeIndex victim = alive[rng.NextBounded(alive.size())];
    ring.Fail(victim);
    ring.DetectFailure(victim);
  }
  for (std::size_t i = 0; i < 20; ++i) ring.JoinHashed(500 + i);

  const double before = FingerAccuracy(ring);
  MaintenanceConfig cfg;
  cfg.period_ms = 500.0;
  cfg.fingers_per_round = 8;
  MaintenanceProtocol maint(sim, ring, cfg);
  maint.Start();
  // Enough rounds for each node to cover most of its 64 entries.
  sim.RunUntil(20000.0);
  maint.Stop();
  const double after = FingerAccuracy(ring);
  EXPECT_GT(maint.refreshes(), 1000u);
  EXPECT_GE(after, before);
  EXPECT_GT(after, 0.95);
}

TEST(Maintenance, RoutingStaysCorrectUnderMaintenance) {
  sim::Simulation sim(5);
  Ring ring(16);
  for (std::size_t i = 0; i < 100; ++i) ring.JoinHashed(i);
  ring.StabilizeAll();
  MaintenanceProtocol maint(sim, ring);
  maint.Start();
  sim.RunUntil(5000.0);
  util::Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    const NodeId key = rng();
    const auto r = ring.Route(rng.NextBounded(ring.size()), key);
    EXPECT_TRUE(r.success);
    EXPECT_EQ(r.destination, ring.ResponsibleFor(key));
  }
}

TEST(Maintenance, StopHaltsRefreshes) {
  sim::Simulation sim(7);
  Ring ring(8);
  for (std::size_t i = 0; i < 20; ++i) ring.JoinHashed(i);
  MaintenanceProtocol maint(sim, ring);
  maint.Start();
  sim.RunUntil(5000.0);
  maint.Stop();
  const std::size_t n = maint.refreshes();
  sim.RunUntil(20000.0);
  EXPECT_EQ(maint.refreshes(), n);
}

TEST(Maintenance, JoinedNodeGetsMaintained) {
  sim::Simulation sim(9);
  Ring ring(8);
  for (std::size_t i = 0; i < 30; ++i) ring.JoinHashed(i);
  ring.StabilizeAll();
  MaintenanceProtocol maint(sim, ring);
  maint.Start();
  sim.RunUntil(1000.0);
  const NodeIndex n = ring.JoinHashed(999);
  maint.OnNodeJoined(n);
  const std::size_t before = maint.refreshes();
  sim.RunUntil(10000.0);
  EXPECT_GT(maint.refreshes(), before);
}

}  // namespace
}  // namespace p2p::dht
