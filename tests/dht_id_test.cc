#include <gtest/gtest.h>

#include "dht/id.h"

namespace p2p::dht {
namespace {

TEST(Id, ClockwiseDistanceWraps) {
  EXPECT_EQ(ClockwiseDistance(10, 15), 5u);
  EXPECT_EQ(ClockwiseDistance(15, 10), ~0ull - 4);  // the long way round
  EXPECT_EQ(ClockwiseDistance(7, 7), 0u);
}

TEST(Id, RingDistanceIsMinOfBothDirections) {
  EXPECT_EQ(RingDistance(10, 15), 5u);
  EXPECT_EQ(RingDistance(15, 10), 5u);
  EXPECT_EQ(RingDistance(0, ~0ull), 1u);  // adjacent across the wrap
}

TEST(Id, InArcBasic) {
  EXPECT_TRUE(InArc(10, 15, 20));
  EXPECT_TRUE(InArc(10, 20, 20));   // inclusive right end
  EXPECT_FALSE(InArc(10, 10, 20));  // exclusive left end
  EXPECT_FALSE(InArc(10, 25, 20));
}

TEST(Id, InArcWrapsAroundZero) {
  const NodeId hi = ~0ull - 5;
  EXPECT_TRUE(InArc(hi, 2, 10));
  EXPECT_TRUE(InArc(hi, ~0ull, 10));
  EXPECT_FALSE(InArc(hi, 11, 10));
}

TEST(Id, DegenerateArcCoversWholeRing) {
  EXPECT_TRUE(InArc(5, 123456, 5));
  EXPECT_TRUE(InArc(5, 5, 5));
}

TEST(Id, UnitConversionRoundTrips) {
  for (const double u : {0.0, 0.25, 0.5, 0.75, 0.999}) {
    EXPECT_NEAR(UnitFromId(IdFromUnit(u)), u, 1e-12);
  }
}

TEST(Id, UnitConversionWrapsOutOfRange) {
  EXPECT_EQ(IdFromUnit(1.0), IdFromUnit(0.0));
  EXPECT_EQ(IdFromUnit(1.25), IdFromUnit(0.25));
  EXPECT_EQ(IdFromUnit(-0.25), IdFromUnit(0.75));
}

TEST(Id, HalfPointIsMidRing) {
  EXPECT_EQ(IdFromUnit(0.5), 1ull << 63);
}

TEST(Id, HashIsDeterministicAndSpreads) {
  EXPECT_EQ(HashHostToId(1), HashHostToId(1));
  // Consecutive host numbers land far apart (avalanche).
  EXPECT_GT(RingDistance(HashHostToId(1), HashHostToId(2)), 1ull << 40);
}

}  // namespace
}  // namespace p2p::dht
