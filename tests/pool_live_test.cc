#include <gtest/gtest.h>

#include "pool/live_pool.h"
#include "test_support.h"

namespace p2p::pool {
namespace {

TEST(LivePool, ExperimentSchedulesEverySessionAndDrains) {
  auto& pool = p2p::testing::SharedSmallPool();
  LiveExperimentParams params;
  params.session_count = 6;
  params.members_per_session = 10;
  params.somo.report_interval_ms = 2000.0;
  params.somo.fanout = 8;
  params.seed = 9;
  const auto result = RunStalenessExperiment(pool, params);
  EXPECT_EQ(result.scheduled_sessions, 6u);
  EXPECT_GT(result.somo_messages, 0u);
  EXPECT_EQ(pool.registry().TotalUsed(), 0u);
}

TEST(LivePool, StaleViewsCauseOnlyBoundedDamage) {
  auto& pool = p2p::testing::SharedSmallPool();
  auto run = [&](double interval) {
    LiveExperimentParams params;
    params.session_count = 8;
    params.members_per_session = 10;
    params.somo.report_interval_ms = interval;
    params.seed = 21;
    return RunStalenessExperiment(pool, params);
  };
  const auto fresh = run(1000.0);
  const auto stale = run(30000.0);
  // Both settle to positive mean improvement; staleness costs conflicts,
  // not correctness.
  EXPECT_GT(fresh.improvement.mean(), 0.0);
  EXPECT_GT(stale.improvement.mean(), 0.0);
  EXPECT_GT(stale.mean_view_staleness_ms,
            fresh.mean_view_staleness_ms);
}

TEST(LivePool, ScheduleFromExplicitSnapshot) {
  // Unit-level: a TaskManager planning from a fabricated stale view that
  // over-promises a node's availability must roll back cleanly.
  auto& pool = p2p::testing::SharedSmallPool();
  alm::SessionSpec spec;
  spec.id = 1;
  spec.priority = 2;
  spec.root = 0;
  for (std::size_t k = 1; k < 10; ++k) spec.members.push_back(k);
  TaskManager tm(pool, spec, TaskManagerOptions{});

  // Fabricate a view where every non-member node advertises full
  // availability — but first, exhaust a few high-degree nodes in the
  // live registry so the view lies.
  somo::AggregateReport view;
  for (std::size_t v = 0; v < pool.size(); ++v) {
    somo::NodeReport r;
    r.node = v;
    r.host = v;
    r.generated_at = 0.0;
    r.degrees.total = pool.degree_bound(v);
    view.Add(r);
  }
  std::size_t poisoned = 0;
  for (std::size_t v = 10; v < pool.size() && poisoned < 40; ++v) {
    if (pool.degree_bound(v) >= 4) {
      for (int k = 0; k < pool.degree_bound(v); ++k)
        pool.registry().Claim(v, /*session=*/99, /*priority=*/1, false);
      ++poisoned;
    }
  }
  const auto out = tm.Schedule(&view);
  // Either the plan avoided the poisoned nodes (ok) or it hit one and
  // rolled back reporting the conflict; both leave state consistent.
  if (!out.ok) {
    EXPECT_TRUE(out.stale_conflict);
    EXPECT_FALSE(tm.scheduled());
    // No partial reservation left behind.
    for (std::size_t v = 0; v < pool.size(); ++v)
      EXPECT_EQ(pool.registry().HeldBy(v, spec.id), 0);
  }
  tm.Teardown();
  pool.registry().ReleaseSession(99);
  EXPECT_EQ(pool.registry().TotalUsed(), 0u);
}

TEST(LivePool, EmptyViewMeansNoHelpers) {
  auto& pool = p2p::testing::SharedSmallPool();
  alm::SessionSpec spec;
  spec.id = 2;
  spec.priority = 1;
  spec.root = 50;
  for (std::size_t k = 1; k < 8; ++k) spec.members.push_back(50 + k);
  TaskManager tm(pool, spec, TaskManagerOptions{});
  somo::AggregateReport empty_view;
  somo::NodeReport stub;  // view mentions only one irrelevant node
  stub.node = 0;
  stub.degrees.total = 0;
  empty_view.Add(stub);
  const auto out = tm.Schedule(&empty_view);
  // Members are planned from live truth, so the session still runs — just
  // without helpers (nobody else is advertised).
  EXPECT_TRUE(out.ok);
  EXPECT_EQ(tm.current_helpers(), 0u);
  tm.Teardown();
  EXPECT_EQ(pool.registry().TotalUsed(), 0u);
}

TEST(LivePool, DeterministicForSeed) {
  auto& pool = p2p::testing::SharedSmallPool();
  LiveExperimentParams params;
  params.session_count = 5;
  params.members_per_session = 10;
  params.seed = 33;
  const auto a = RunStalenessExperiment(pool, params);
  const auto b = RunStalenessExperiment(pool, params);
  EXPECT_DOUBLE_EQ(a.improvement.mean(), b.improvement.mean());
  EXPECT_EQ(a.stale_conflicts, b.stale_conflicts);
}

}  // namespace
}  // namespace p2p::pool
