#include <gtest/gtest.h>

#include <cmath>

#include "coord/gnp.h"
#include "coord/leafset_coords.h"
#include "coord/nelder_mead.h"
#include "coord/vec.h"
#include "test_support.h"
#include "util/stats.h"

namespace p2p::coord {
namespace {

// ------------------------------------------------------------------ vec --

TEST(Vec, DistanceAndArithmetic) {
  const Vec a{0.0, 3.0};
  const Vec b{4.0, 0.0};
  EXPECT_DOUBLE_EQ(Distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(SquaredDistance(a, b), 25.0);
  EXPECT_EQ(Add(a, b), (Vec{4.0, 3.0}));
  EXPECT_EQ(Sub(a, b), (Vec{-4.0, 3.0}));
  EXPECT_EQ(Scale(a, 2.0), (Vec{0.0, 6.0}));
}

TEST(Vec, LerpEndpointsAndMidpoint) {
  const Vec a{0.0, 0.0};
  const Vec b{10.0, 20.0};
  EXPECT_EQ(Lerp(a, b, 0.0), a);
  EXPECT_EQ(Lerp(a, b, 1.0), b);
  EXPECT_EQ(Lerp(a, b, 0.5), (Vec{5.0, 10.0}));
}

// ---------------------------------------------------------- Nelder–Mead --

TEST(NelderMead, MinimizesQuadraticBowl) {
  auto f = [](const Vec& x) {
    return (x[0] - 3.0) * (x[0] - 3.0) + (x[1] + 2.0) * (x[1] + 2.0);
  };
  Vec x{0.0, 0.0};
  NelderMeadOptions opt;
  opt.max_iterations = 500;
  const auto r = Minimize(f, x, opt);
  EXPECT_NEAR(x[0], 3.0, 1e-3);
  EXPECT_NEAR(x[1], -2.0, 1e-3);
  EXPECT_LT(r.best_value, 1e-6);
}

TEST(NelderMead, MinimizesRosenbrock2d) {
  auto f = [](const Vec& x) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    return a * a + 100.0 * b * b;
  };
  Vec x{-1.2, 1.0};
  NelderMeadOptions opt;
  opt.max_iterations = 5000;
  opt.initial_step = 0.5;
  opt.f_tolerance = 1e-14;
  Minimize(f, x, opt);
  EXPECT_NEAR(x[0], 1.0, 0.05);
  EXPECT_NEAR(x[1], 1.0, 0.1);
}

TEST(NelderMead, HandlesNonSmoothL1Objective) {
  auto f = [](const Vec& x) {
    return std::abs(x[0] - 5.0) + std::abs(x[1] - 7.0);
  };
  Vec x{0.0, 0.0};
  NelderMeadOptions opt;
  opt.max_iterations = 1000;
  Minimize(f, x, opt);
  EXPECT_NEAR(x[0], 5.0, 0.05);
  EXPECT_NEAR(x[1], 7.0, 0.05);
}

TEST(NelderMead, RespectsIterationBudget) {
  auto f = [](const Vec& x) { return x[0] * x[0]; };
  Vec x{100.0};
  NelderMeadOptions opt;
  opt.max_iterations = 3;
  const auto r = Minimize(f, x, opt);
  EXPECT_LE(r.iterations, 3u);
}

TEST(NelderMead, EmptyStartThrows) {
  Vec x;
  EXPECT_THROW(Minimize([](const Vec&) { return 0.0; }, x),
               util::CheckError);
}

TEST(NelderMead, ConvergedFlagSetOnEasyProblem) {
  auto f = [](const Vec& x) { return x[0] * x[0]; };
  Vec x{1.0};
  NelderMeadOptions opt;
  opt.max_iterations = 10000;
  const auto r = Minimize(f, x, opt);
  EXPECT_TRUE(r.converged);
}

// ------------------------------------------------------------------ GNP --

class GnpTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    util::Rng rng(77);
    topo_ = new net::TransitStubTopology(net::GenerateTransitStub(
        p2p::testing::SmallTopologyParams(150), rng));
    oracle_ = new net::LatencyOracle(*topo_);
  }
  static void TearDownTestSuite() {
    delete oracle_;
    delete topo_;
    oracle_ = nullptr;
    topo_ = nullptr;
  }
  static std::vector<net::HostIdx> AllHosts() {
    std::vector<net::HostIdx> hosts(topo_->host_count());
    for (std::size_t i = 0; i < hosts.size(); ++i) hosts[i] = i;
    return hosts;
  }
  static net::TransitStubTopology* topo_;
  static net::LatencyOracle* oracle_;
};
net::TransitStubTopology* GnpTest::topo_ = nullptr;
net::LatencyOracle* GnpTest::oracle_ = nullptr;

TEST_F(GnpTest, RequiresEnoughLandmarks) {
  util::Rng rng(1);
  GnpOptions opt;
  opt.dimensions = 5;
  opt.landmark_count = 4;  // < d+1
  EXPECT_THROW(GnpSystem(*oracle_, AllHosts(), opt, rng),
               util::CheckError);
}

TEST_F(GnpTest, LandmarksAreDistinct) {
  util::Rng rng(2);
  GnpOptions opt;
  GnpSystem gnp(*oracle_, AllHosts(), opt, rng);
  auto lm = gnp.landmarks();
  std::sort(lm.begin(), lm.end());
  EXPECT_EQ(std::unique(lm.begin(), lm.end()), lm.end());
  EXPECT_EQ(lm.size(), opt.landmark_count);
}

TEST_F(GnpTest, GreedySelectionSpreadsLandmarks) {
  util::Rng rng(3);
  GnpOptions opt;
  opt.landmark_count = 8;
  GnpSystem gnp(*oracle_, AllHosts(), opt, rng);
  // Pairwise landmark distances should all be non-trivial.
  const auto& lm = gnp.landmarks();
  for (std::size_t i = 0; i < lm.size(); ++i)
    for (std::size_t j = i + 1; j < lm.size(); ++j)
      EXPECT_GT(gnp.Measured(lm[i], lm[j]), 10.0);
}

TEST_F(GnpTest, SolvedEmbeddingHasLowRelativeError) {
  util::Rng rng(4);
  GnpOptions opt;
  opt.landmark_count = 16;
  GnpSystem gnp(*oracle_, AllHosts(), opt, rng);
  gnp.Solve();
  util::Rng prng(5);
  util::Accumulator err;
  for (int i = 0; i < 2000; ++i) {
    const auto a = prng.NextBounded(gnp.host_count());
    const auto b = prng.NextBounded(gnp.host_count());
    if (a == b) continue;
    err.Add(RelativeError(gnp.Predict(a, b), gnp.Measured(a, b)));
  }
  EXPECT_LT(err.mean(), 0.25);
}

TEST_F(GnpTest, MoreLandmarksDoNotHurt) {
  auto run = [&](std::size_t k) {
    util::Rng rng(6);
    GnpOptions opt;
    opt.landmark_count = k;
    GnpSystem gnp(*oracle_, AllHosts(), opt, rng);
    gnp.Solve();
    util::Rng prng(7);
    util::Accumulator err;
    for (int i = 0; i < 1500; ++i) {
      const auto a = prng.NextBounded(gnp.host_count());
      const auto b = prng.NextBounded(gnp.host_count());
      if (a == b) continue;
      err.Add(RelativeError(gnp.Predict(a, b), gnp.Measured(a, b)));
    }
    return err.mean();
  };
  // 32 landmarks should be at least roughly as good as 8 (paper Figure 4:
  // GNP is not very sensitive, so allow generous slack).
  EXPECT_LT(run(32), run(8) + 0.1);
}

TEST(RelativeErrorFn, Definition) {
  EXPECT_DOUBLE_EQ(RelativeError(150.0, 100.0), 0.5);
  EXPECT_DOUBLE_EQ(RelativeError(50.0, 100.0), 0.5);
  EXPECT_THROW(RelativeError(1.0, 0.0), util::CheckError);
}

// --------------------------------------------------------- LeafsetCoord --

TEST(LeafsetCoords, RequiresOracle) {
  dht::Ring ring(8);  // no oracle
  ring.JoinHashed(0);
  util::Rng rng(1);
  EXPECT_THROW(LeafsetCoordSystem(ring, LeafsetCoordOptions{}, rng),
               util::CheckError);
}

TEST(LeafsetCoords, ConvergesCloseToGnpAccuracy) {
  auto& pool = p2p::testing::SharedSmallPool();
  // Pool built coordinates already (4 rounds); measure random-pair error.
  util::Rng prng(8);
  util::Accumulator err;
  for (int i = 0; i < 2000; ++i) {
    const auto a = prng.NextBounded(pool.size());
    const auto b = prng.NextBounded(pool.size());
    if (a == b) continue;
    err.Add(RelativeError(pool.EstimatedLatency(a, b),
                          pool.TrueLatency(a, b)));
  }
  EXPECT_LT(err.mean(), 0.35);
}

TEST(LeafsetCoords, PredictIsSymmetricAndNonNegative) {
  auto& pool = p2p::testing::SharedSmallPool();
  const auto& cs = pool.coords();
  for (std::size_t a = 0; a < 20; ++a)
    for (std::size_t b = 0; b < 20; ++b) {
      EXPECT_DOUBLE_EQ(cs.Predict(a, b), cs.Predict(b, a));
      EXPECT_GE(cs.Predict(a, b), 0.0);
    }
}

TEST(LeafsetCoords, EventDrivenModeConverges) {
  util::Rng trng(31);
  const auto topo =
      net::GenerateTransitStub(p2p::testing::SmallTopologyParams(64), trng);
  const net::LatencyOracle oracle(topo);
  sim::Simulation sim(9);
  dht::Ring ring(16, &oracle);
  for (std::size_t h = 0; h < 64; ++h) ring.JoinHashed(h);
  ring.StabilizeAll();
  dht::HeartbeatProtocol hb(sim, ring);
  LeafsetCoordOptions copt;
  copt.nm.max_iterations = 60;
  util::Rng crng(10);
  LeafsetCoordSystem cs(ring, copt, crng);
  cs.Bootstrap();  // join-time placement
  cs.AttachTo(hb);
  hb.Start();
  sim.RunUntil(30000.0);  // 30 heartbeat rounds
  EXPECT_GT(cs.updates_performed(), 64u);
  util::Rng prng(11);
  util::Accumulator err;
  for (int i = 0; i < 1000; ++i) {
    const auto a = prng.NextBounded(64);
    const auto b = prng.NextBounded(64);
    if (a == b) continue;
    err.Add(RelativeError(cs.Predict(a, b), oracle.Latency(a, b)));
  }
  EXPECT_LT(err.mean(), 0.5);
}

TEST(LeafsetCoords, NoiseDegradesGracefully) {
  util::Rng trng(33);
  const auto topo =
      net::GenerateTransitStub(p2p::testing::SmallTopologyParams(80), trng);
  const net::LatencyOracle oracle(topo);
  dht::Ring ring(16, &oracle);
  for (std::size_t h = 0; h < 80; ++h) ring.JoinHashed(h);
  ring.StabilizeAll();

  auto run = [&](double noise) {
    LeafsetCoordOptions copt;
    copt.measurement_noise = noise;
    copt.nm.max_iterations = 60;
    util::Rng crng(12);
    LeafsetCoordSystem cs(ring, copt, crng);
    cs.RunRounds(4);
    util::Rng prng(13);
    util::Accumulator err;
    for (int i = 0; i < 1000; ++i) {
      const auto a = prng.NextBounded(80);
      const auto b = prng.NextBounded(80);
      if (a == b) continue;
      err.Add(RelativeError(cs.Predict(a, b), oracle.Latency(a, b)));
    }
    return err.mean();
  };
  const double clean = run(0.0);
  const double noisy = run(0.3);
  EXPECT_LT(clean, noisy + 0.25);  // noise should not *improve* much
  EXPECT_LT(noisy, 1.0);           // and the system still works
}

}  // namespace
}  // namespace p2p::coord
