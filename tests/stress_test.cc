// Full-stack stress: every protocol running together over one simulated
// network — heartbeats with failure detection, finger maintenance, SOMO
// gather + dissemination with self-repair, event-driven coordinates,
// packet-pair bandwidth estimation, a replicated KV store, and a churn
// process killing and adding nodes throughout. After the dust settles the
// whole system must be converged and consistent.
#include <gtest/gtest.h>

#include "bwest/estimator.h"
#include "coord/leafset_coords.h"
#include "dht/churn.h"
#include "dht/heartbeat.h"
#include "dht/kv_store.h"
#include "dht/maintenance.h"
#include "net/bandwidth_model.h"
#include "net/latency_oracle.h"
#include "net/transit_stub.h"
#include "sim/simulation.h"
#include "somo/somo.h"
#include "test_support.h"
#include "util/rng.h"
#include "util/stats.h"

namespace p2p {
namespace {

TEST(FullStackStress, EverythingRunsThroughChurnAndConverges) {
  constexpr std::size_t kInitialNodes = 80;
  constexpr double kHorizonMs = 240000.0;  // 4 simulated minutes

  util::Rng topo_rng(1);
  net::TransitStubParams params = testing::SmallTopologyParams(200);
  const auto topo = net::GenerateTransitStub(params, topo_rng);
  const net::LatencyOracle oracle(topo);
  util::Rng bw_rng(2);
  const net::BandwidthModel bandwidths(net::GnutellaAccessClasses(), 200,
                                       bw_rng);

  sim::Simulation sim(3);
  dht::Ring ring(16, &oracle);
  for (std::size_t h = 0; h < kInitialNodes; ++h) ring.JoinHashed(h);
  ring.StabilizeAll();

  // Heartbeats + failure detection.
  dht::HeartbeatConfig hcfg;
  hcfg.period_ms = 1000.0;
  hcfg.timeout_ms = 3500.0;
  dht::HeartbeatProtocol hb(sim, ring, hcfg);

  // Finger maintenance.
  dht::MaintenanceProtocol maint(sim, ring);

  // Coordinates + bandwidth estimation riding the heartbeats.
  coord::LeafsetCoordOptions copt;
  copt.nm.max_iterations = 40;
  util::Rng coord_rng(4);
  coord::LeafsetCoordSystem coords(ring, copt, coord_rng);
  coords.Bootstrap();
  coords.AttachTo(hb);
  util::Rng probe_rng(5);
  bwest::BandwidthEstimator bw(ring, bandwidths, bwest::PacketPairOptions{},
                               probe_rng);
  bw.AttachTo(hb);

  // SOMO with dissemination + redundant links; rebuilt on detection.
  somo::SomoConfig scfg;
  scfg.fanout = 8;
  scfg.report_interval_ms = 5000.0;
  scfg.disseminate = true;
  scfg.redundant_links = true;
  somo::SomoProtocol somo(sim, ring, scfg, [&](dht::NodeIndex n) {
    somo::NodeReport r;
    r.node = n;
    r.host = ring.node(n).host();
    r.generated_at = sim.now();
    const auto& est = bw.estimate(n);
    r.up_kbps = est.up_samples ? est.up_kbps : 0.0;
    return r;
  });
  hb.AddFailureObserver(
      [&](dht::NodeIndex, dht::NodeIndex, sim::Time) { somo.Rebuild(); });

  // Replicated storage, repaired on detection.
  dht::KvStore kv(ring, 4);
  hb.AddFailureObserver(
      [&](dht::NodeIndex, dht::NodeIndex, sim::Time) {
        kv.RepairReplicas();
      });

  // Churn: a join every ~15 s, a crash every ~20 s.
  dht::ChurnProcess::Config ccfg;
  ccfg.mean_join_interval_ms = 15000.0;
  ccfg.mean_fail_interval_ms = 20000.0;
  ccfg.min_alive = 40;
  for (std::size_t h = kInitialNodes; h < 200; ++h)
    ccfg.join_hosts.push_back(h);
  dht::ChurnProcess churn(sim, ring, ccfg, &hb);
  churn.on_join = [&](dht::NodeIndex n) {
    maint.OnNodeJoined(n);
    kv.RepairReplicas();
    somo.Rebuild();
  };

  hb.Start();
  maint.Start();
  somo.Start();
  churn.Start();

  // Seed the store (pre-sized: the bulk load must never rehash mid-run).
  util::Rng key_rng(6);
  kv.Reserve(40);
  std::vector<dht::NodeId> keys;
  for (int i = 0; i < 40; ++i) {
    keys.push_back(key_rng());
    ASSERT_TRUE(kv.Put(0, keys.back(), "v" + std::to_string(i)).ok);
  }

  sim.RunUntil(kHorizonMs);
  churn.Stop();
  EXPECT_GT(churn.joins(), 5u);
  EXPECT_GT(churn.failures(), 4u);

  // Quiesce: let detection and the protocols settle with churn stopped.
  sim.RunUntil(kHorizonMs + 60000.0);

  // 1. Ring healthy: every remaining failure detected, ids routable.
  ring.StabilizeAll();
  ring.CheckInvariants();
  util::Rng route_rng(7);
  for (int i = 0; i < 50; ++i) {
    const auto alive = ring.SortedAlive();
    const auto r =
        ring.Route(alive[route_rng.NextBounded(alive.size())], route_rng());
    EXPECT_TRUE(r.success);
  }

  // 2. SOMO view complete over the final membership after a last repair
  //    pass (a crash in the final heartbeat window may still be pending).
  somo.Rebuild();
  sim.RunUntil(sim.now() + 8 * scfg.report_interval_ms);
  EXPECT_TRUE(somo.RootViewComplete());

  // 3. Every key still readable after churn (≤ replica-factor concurrent
  //    losses between repairs, which the churn rate guarantees here).
  kv.RepairReplicas();
  kv.CheckInvariants();
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const auto alive = ring.SortedAlive();
    EXPECT_TRUE(kv.Get(alive[0], keys[i]).found) << "key " << i;
  }

  // 4. Coordinates converged for surviving nodes.
  util::Accumulator err;
  util::Rng prng(8);
  const auto alive = ring.SortedAlive();
  for (int i = 0; i < 500; ++i) {
    const auto a = alive[prng.NextBounded(alive.size())];
    const auto b = alive[prng.NextBounded(alive.size())];
    if (a == b) continue;
    const double truth = oracle.Latency(ring.node(a).host(),
                                        ring.node(b).host());
    err.Add(std::abs(coords.Predict(a, b) - truth) / truth);
  }
  EXPECT_LT(err.mean(), 0.6);  // churned, event-driven: looser than batch
}

}  // namespace
}  // namespace p2p
