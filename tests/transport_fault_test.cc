// End-to-end fault injection through the transport bus: protocols opt into
// loss / jitter / partitions configured on the bus and must degrade the way
// the paper's robustness arguments predict (§3.2 redundant links, §3.1/§4
// heartbeat failure suspicion).
#include <gtest/gtest.h>

#include <memory>

#include "dht/heartbeat.h"
#include "dht/maintenance.h"
#include "dht/ring.h"
#include "sim/simulation.h"
#include "sim/transport.h"
#include "somo/somo.h"

namespace p2p {
namespace {

struct SomoFixture {
  sim::Simulation sim{77};
  dht::Ring ring{8};

  explicit SomoFixture(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) ring.JoinHashed(i);
    ring.StabilizeAll();
  }

  std::unique_ptr<somo::SomoProtocol> Make(somo::SomoConfig cfg) {
    return std::make_unique<somo::SomoProtocol>(
        sim, ring, cfg, [this](dht::NodeIndex n) {
          somo::NodeReport r;
          r.node = n;
          r.host = ring.node(n).host();
          r.generated_at = sim.now();
          return r;
        });
  }

  // An internal, non-root logical node whose owner differs from the root's.
  dht::NodeIndex InternalOwner(const somo::SomoProtocol& somo) const {
    const auto& tree = somo.tree();
    for (somo::LogicalIndex l = 0; l < tree.size(); ++l) {
      const auto& ln = tree.node(l);
      if (!ln.is_leaf() && !ln.is_root() &&
          ln.owner != tree.node(tree.root()).owner) {
        return ln.owner;
      }
    }
    return dht::kNoNode;
  }
};

// ------------------------------------------------- SOMO gather under loss --

TEST(SomoUnderLoss, UnsyncGatherStillCompletes) {
  SomoFixture f(48);
  f.sim.transport().faults().loss_probability = 0.15;
  somo::SomoConfig cfg;
  cfg.fanout = 4;
  cfg.report_interval_ms = 500.0;
  auto somo = f.Make(cfg);
  somo->Start();
  // Lost pushes are retried on the next interval, so completeness survives
  // moderate loss — the horizon just stretches.
  f.sim.RunUntil(30000.0);
  EXPECT_TRUE(somo->RootViewComplete());
  const auto stats = f.sim.transport().stats();
  EXPECT_GT(stats.protocol(sim::Protocol::kSomo).dropped, 0u);
  EXPECT_GT(stats.protocol(sim::Protocol::kSomo).delivered, 0u);
}

TEST(SomoUnderLoss, RedundantLinksRecoverRootFreshness) {
  SomoFixture f(60);
  f.sim.transport().faults().loss_probability = 0.1;
  somo::SomoConfig cfg;
  cfg.fanout = 4;
  cfg.report_interval_ms = 500.0;
  cfg.redundant_links = true;
  auto somo = f.Make(cfg);
  somo->Start();
  f.sim.RunUntil(30000.0);
  ASSERT_TRUE(somo->RootViewComplete());

  // Crash an internal owner WITHOUT detection or rebuild, while the bus
  // keeps eating 10% of the detour traffic too.
  const dht::NodeIndex victim = f.InternalOwner(*somo);
  ASSERT_NE(victim, dht::kNoNode);
  f.ring.Fail(victim);
  f.sim.RunUntil(f.sim.now() + 20000.0);
  EXPECT_GT(somo->redundant_pushes(), 0u);
  EXPECT_TRUE(somo->RootViewComplete());
  // Freshness recovers: aggregates keep flowing around the dead owner.
  // (Alive-member staleness — the victim's own final report lingers in
  // cached aggregates until a Rebuild, by design.)
  EXPECT_LT(somo->RootAliveStalenessMs(), 10000.0);
}

TEST(SomoUnderLoss, WithoutRedundancyFreshnessDecays) {
  SomoFixture f(60);
  f.sim.transport().faults().loss_probability = 0.1;
  somo::SomoConfig cfg;
  cfg.fanout = 4;
  cfg.report_interval_ms = 500.0;
  cfg.redundant_links = false;
  auto somo = f.Make(cfg);
  somo->Start();
  f.sim.RunUntil(30000.0);
  ASSERT_TRUE(somo->RootViewComplete());
  const dht::NodeIndex victim = f.InternalOwner(*somo);
  ASSERT_NE(victim, dht::kNoNode);
  f.ring.Fail(victim);
  f.sim.RunUntil(f.sim.now() + 20000.0);
  EXPECT_EQ(somo->redundant_pushes(), 0u);
  // The dead owner's whole subtree stops refreshing: even the reports of
  // machines that are still alive go stale.
  EXPECT_GT(somo->RootAliveStalenessMs(), 10000.0);
}

// ------------------------------------------- heartbeat suspicion vs jitter --

struct HeartbeatFixture {
  sim::Simulation sim{13};
  dht::Ring ring{8};

  explicit HeartbeatFixture(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) ring.JoinHashed(i);
    ring.StabilizeAll();
  }
};

TEST(HeartbeatSuspicion, NoFalsePositivesUnderBoundedJitter) {
  HeartbeatFixture f(32);
  dht::HeartbeatConfig cfg;
  cfg.period_ms = 1000.0;
  cfg.timeout_ms = 2500.0;
  cfg.suspect_alive = true;
  // Worst-case inter-arrival gap = period + jitter < timeout, so silence
  // can never look like death.
  f.sim.transport().faults().jitter_ms = 500.0;
  dht::HeartbeatProtocol hb(f.sim, f.ring, cfg);
  hb.Start();
  f.sim.RunUntil(60000.0);
  EXPECT_GT(hb.heartbeats_delivered(), 0u);
  EXPECT_EQ(hb.false_suspicions(), 0u);
  EXPECT_EQ(hb.failures_detected(), 0u);  // nobody actually died
}

TEST(HeartbeatSuspicion, HeavyJitterCausesFalsePositives) {
  HeartbeatFixture f(32);
  dht::HeartbeatConfig cfg;
  cfg.period_ms = 1000.0;
  cfg.timeout_ms = 2500.0;
  cfg.suspect_alive = true;
  // Jitter far beyond the timeout: gaps of up to ~4s between arrivals.
  f.sim.transport().faults().jitter_ms = 4000.0;
  dht::HeartbeatProtocol hb(f.sim, f.ring, cfg);
  std::size_t observed = 0;
  hb.AddSuspicionObserver([&observed](dht::NodeIndex, dht::NodeIndex,
                                      sim::Time, bool was_alive) {
    if (was_alive) ++observed;
  });
  hb.Start();
  f.sim.RunUntil(60000.0);
  EXPECT_GT(hb.false_suspicions(), 0u);
  EXPECT_EQ(hb.false_suspicions(), observed);
  EXPECT_EQ(hb.suspicions(), hb.false_suspicions());  // all-alive ring
  EXPECT_EQ(hb.failures_detected(), 0u);  // suspicion ≠ eviction
}

TEST(HeartbeatSuspicion, PartitionedHostGetsSuspected) {
  HeartbeatFixture f(24);
  dht::HeartbeatConfig cfg;
  cfg.period_ms = 1000.0;
  cfg.timeout_ms = 2500.0;
  cfg.suspect_alive = true;
  dht::HeartbeatProtocol hb(f.sim, f.ring, cfg);
  hb.Start();
  f.sim.RunUntil(10000.0);
  ASSERT_EQ(hb.false_suspicions(), 0u);
  // Cut host 5 off; its neighbours stop hearing from node 5 and suspect
  // it, even though it is alive behind the partition.
  f.sim.transport().Partition({5});
  f.sim.RunUntil(20000.0);
  EXPECT_GT(hb.false_suspicions(), 0u);
  const auto hb_stats =
      f.sim.transport().stats().protocol(sim::Protocol::kHeartbeat);
  EXPECT_GT(hb_stats.dropped, 0u);
}

TEST(HeartbeatSuspicion, RecoveredSuspectIsCleared) {
  HeartbeatFixture f(24);
  dht::HeartbeatConfig cfg;
  cfg.period_ms = 1000.0;
  cfg.timeout_ms = 2500.0;
  cfg.suspect_alive = true;
  dht::HeartbeatProtocol hb(f.sim, f.ring, cfg);
  hb.Start();
  // Warm up before partitioning: suspicion only covers members a detector
  // has heard from at least once.
  f.sim.RunUntil(10000.0);
  f.sim.transport().Partition({5});
  f.sim.RunUntil(20000.0);
  ASSERT_GT(hb.false_suspicions(), 0u);
  const std::size_t during = hb.false_suspicions();
  // Heal; deliveries resume and clear the suspicion, so the count stops
  // growing (each (detector, suspect) pair re-arms only after clearing).
  f.sim.transport().HealPartitions();
  f.sim.RunUntil(f.sim.now() + 5000.0);
  const std::size_t after_heal = hb.false_suspicions();
  f.sim.RunUntil(f.sim.now() + 30000.0);
  EXPECT_EQ(hb.false_suspicions(), after_heal);
  EXPECT_GE(after_heal, during);
}

// --------------------------------------------- maintenance lookups on bus --

TEST(MaintenanceUnderLoss, DroppedLookupsAreCountedNotFatal) {
  HeartbeatFixture f(32);
  f.sim.transport().faults().loss_probability = 0.3;
  dht::MaintenanceProtocol maint(f.sim, f.ring);
  maint.Start();
  f.sim.RunUntil(30000.0);
  EXPECT_GT(maint.refreshes(), 0u);
  EXPECT_GT(maint.dropped_lookups(), 0u);
  EXPECT_LT(maint.dropped_lookups(), maint.refreshes());
  const auto stats =
      f.sim.transport().stats().protocol(sim::Protocol::kMaintenance);
  EXPECT_EQ(stats.sent, maint.refreshes());
  EXPECT_EQ(stats.dropped, maint.dropped_lookups());
}

}  // namespace
}  // namespace p2p
