// Message-trace interface shared by the transport bus and overlay routing.
//
// A TraceSink is a bounded ring buffer of per-message records
// {time, src, dst, protocol, kind, size, dropped}. The Transport appends a
// record for every Send (including fault-injected drops); Ring::Route can
// be pointed at the same sink to interleave per-hop routing records with
// protocol traffic, so one trace stream covers everything a run put on the
// simulated wire. Bounded capacity keeps long runs at a fixed memory cost:
// when full, the oldest records are overwritten and total_records() keeps
// counting, so post-hoc analysis can tell a truncated trace from a short
// one.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <vector>

#include "util/check.h"

namespace p2p::sim {

// Which protocol layer put a message on the bus. Used for per-protocol
// accounting in TransportStats and as the trace stream discriminator.
enum class Protocol : std::uint8_t {
  kHeartbeat = 0,
  kMaintenance = 1,
  kSomo = 2,
  kBwest = 3,
  kRouting = 4,
  kOther = 5,
};
inline constexpr std::size_t kProtocolCount = 6;

inline const char* ProtocolName(Protocol p) {
  switch (p) {
    case Protocol::kHeartbeat: return "heartbeat";
    case Protocol::kMaintenance: return "maintenance";
    case Protocol::kSomo: return "somo";
    case Protocol::kBwest: return "bwest";
    case Protocol::kRouting: return "routing";
    case Protocol::kOther: return "other";
  }
  return "unknown";
}

// Why fault injection killed a message at send time. Loss (global or
// per-link Bernoulli) and partitions are different failures — one is the
// network being lossy, the other being split — so stats and traces keep
// them distinguishable.
enum class DropCause : std::uint8_t {
  kNone = 0,
  kLoss = 1,
  kPartition = 2,
};

inline const char* DropCauseName(DropCause c) {
  switch (c) {
    case DropCause::kNone: return "none";
    case DropCause::kLoss: return "loss";
    case DropCause::kPartition: return "partition";
  }
  return "unknown";
}

struct TraceRecord {
  double time_ms = -1.0;  // -1 when the recorder has no clock
  std::size_t src_host = 0;
  std::size_t dst_host = 0;
  Protocol protocol = Protocol::kOther;
  // Protocol-defined message discriminator (heartbeat beat, SOMO push,
  // routing hop number, ...).
  std::uint16_t kind = 0;
  std::size_t bytes = 0;  // modelled wire size
  bool dropped = false;   // dropped by fault injection at send time
  // Why it was dropped (kNone while dropped == false; v1 traces parsed by
  // obs::ReadTrace report kNone for drops whose cause was not recorded).
  DropCause cause = DropCause::kNone;
};

class TraceSink {
 public:
  explicit TraceSink(std::size_t capacity = 1 << 16) : capacity_(capacity) {
    P2P_CHECK(capacity_ > 0);
  }

  // Optional time source for recorders that have no clock of their own
  // (Ring::Route); the Transport stamps records with sim time directly.
  void set_clock(std::function<double()> clock) { clock_ = std::move(clock); }
  double now() const { return clock_ ? clock_() : -1.0; }

  void Append(const TraceRecord& r) {
    if (ring_.size() < capacity_) {
      ring_.push_back(r);
    } else {
      ring_[total_ % capacity_] = r;
    }
    ++total_;
  }

  std::size_t capacity() const { return capacity_; }
  // Records currently held (<= capacity).
  std::size_t size() const { return ring_.size(); }
  // Records ever appended; > size() means the oldest were overwritten.
  std::size_t total_records() const { return total_; }

  // Held records, oldest first.
  std::vector<TraceRecord> Snapshot() const {
    std::vector<TraceRecord> out;
    out.reserve(ring_.size());
    const std::size_t start = total_ > capacity_ ? total_ % capacity_ : 0;
    for (std::size_t i = 0; i < ring_.size(); ++i)
      out.push_back(ring_[(start + i) % ring_.size()]);
    return out;
  }

  // Plain-text dump, one record per line (obs::ReadTrace parses it back;
  // tools/trace_to_csv converts to CSV):
  //   p2ptrace v2 <held> <total>
  //   <time_ms> <src_host> <dst_host> <protocol> <kind> <bytes> <dropped> <cause>
  // v1 (no trailing <cause> column) is still read by obs::ReadTrace.
  bool WriteText(std::FILE* f) const {
    if (f == nullptr) return false;
    std::fprintf(f, "p2ptrace v2 %zu %zu\n", size(), total_records());
    for (const TraceRecord& r : Snapshot()) {
      std::fprintf(f, "%.6f %zu %zu %s %u %zu %d %u\n", r.time_ms, r.src_host,
                   r.dst_host, ProtocolName(r.protocol),
                   static_cast<unsigned>(r.kind), r.bytes, r.dropped ? 1 : 0,
                   static_cast<unsigned>(r.cause));
    }
    return std::ferror(f) == 0;
  }

 private:
  std::size_t capacity_;
  std::size_t total_ = 0;
  std::vector<TraceRecord> ring_;
  std::function<double()> clock_;
};

}  // namespace p2p::sim
