#include "sim/sharded.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <thread>
#include <utility>

#include "util/check.h"
#include "util/rng.h"

namespace p2p::sim {

namespace {

double ElapsedNs(std::chrono::steady_clock::time_point start) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

std::uint64_t ShardSeed(std::uint64_t seed, std::size_t shard,
                        std::size_t shard_count) {
  // 1-shard runs must draw the exact RNG stream of the serial kernel.
  if (shard_count <= 1) return seed;
  // Mix the shard index and count through SplitMix64 so neighbouring seeds
  // (1, 2, 3, ...) still yield unrelated per-shard streams, and so the same
  // shard index under a different shard count is a different stream.
  std::uint64_t sm = seed ^ util::Mix64(0x9e6c63d0876a3f35ULL +
                                        static_cast<std::uint64_t>(shard_count));
  sm ^= util::Mix64(static_cast<std::uint64_t>(shard) * 0xa0761d6478bd642fULL);
  return util::SplitMix64(sm);
}

// Per-shard Transport hook: forwards remote sends into the owner's
// mailboxes. Lives on the shard whose bus it is installed on; PostRemote
// is called on that shard's thread only. The remote test itself runs
// inside the bus against the immutable (post-SetHostShards) host map —
// set_shard_router hands the map over so local sends on sharded runs pay
// an array load, not a virtual call.
class ShardedSimulation::Router : public ShardRouter {
 public:
  Router(ShardedSimulation& owner, std::uint32_t shard)
      : owner_(owner), shard_(shard) {}

  void PostRemote(const Message& msg, Time deliver_time,
                  util::InlineFn deliver) override {
    owner_.PostRemoteMessage(shard_, msg, deliver_time, std::move(deliver));
  }

 private:
  ShardedSimulation& owner_;
  std::uint32_t shard_;
};

ShardedSimulation::ShardedSimulation(const ShardedOptions& opts)
    : lookahead_ms_(opts.lookahead_ms),
      pair_lookahead_(opts.lookahead_matrix),
      coalesced_(opts.coalesced_exchange) {
  P2P_CHECK_MSG(opts.shards >= 1, "need at least one shard");
  P2P_CHECK_MSG(opts.shards == 1 || opts.lookahead_ms > 0.0,
                "multi-shard runs need a positive lookahead");
  if (!pair_lookahead_.empty()) {
    P2P_CHECK_MSG(pair_lookahead_.size() == opts.shards * opts.shards,
                  "lookahead matrix must be shards x shards (got "
                      << pair_lookahead_.size() << " cells for " << opts.shards
                      << " shards)");
    for (std::size_t i = 0; i < opts.shards; ++i) {
      for (std::size_t j = 0; j < opts.shards; ++j) {
        if (i == j) continue;
        P2P_CHECK_MSG(pair_lookahead_[i * opts.shards + j] > 0.0,
                      "lookahead matrix entry (" << i << "," << j
                                                 << ") must be positive");
      }
    }
  }
  min_lookahead_ms_ = lookahead_ms_;
  if (!pair_lookahead_.empty()) {
    min_lookahead_ms_ = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < opts.shards; ++i)
      for (std::size_t j = 0; j < opts.shards; ++j)
        if (i != j)
          min_lookahead_ms_ =
              std::min(min_lookahead_ms_, pair_lookahead_[i * opts.shards + j]);
    if (opts.shards == 1) min_lookahead_ms_ = lookahead_ms_;
  }
  shards_.reserve(opts.shards);
  for (std::size_t s = 0; s < opts.shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->sim = std::make_unique<Simulation>(
        ShardSeed(opts.seed, s, opts.shards), opts.scheduler);
    shard->outbox.resize(opts.shards);
    shard->outbox_pm.resize(opts.shards);
    shard->staged.resize(opts.shards);
    shard->staged_pm.resize(opts.shards);
    shard->merge_pos.resize(opts.shards, 0);
    shards_.push_back(std::move(shard));
  }
  if (opts.shards > 1) {
    std::size_t threads = opts.threads;
    if (threads == 0) {
      const std::size_t hw = std::thread::hardware_concurrency();
      threads = std::min(opts.shards, hw > 0 ? hw : std::size_t{1});
    }
    pool_ = std::make_unique<util::ThreadPool>(threads);
  }
}

ShardedSimulation::~ShardedSimulation() {
  // Routers point into this object; detach them from the transports before
  // the shards (and their buses) go down, in case a bus outlives us via a
  // caller-held reference during teardown.
  for (auto& shard : shards_) {
    if (shard->router) shard->sim->transport().set_shard_router(nullptr);
  }
}

void ShardedSimulation::SetHostShards(std::vector<std::uint32_t> shard_of_host) {
  P2P_CHECK_MSG(shard_of_host_.empty(), "host shards already installed");
  P2P_CHECK_MSG(windows_ == 0 && now_ == 0.0,
                "install host shards before running");
  for (const std::uint32_t s : shard_of_host)
    P2P_CHECK_MSG(s < shards_.size(), "host mapped to unknown shard " << s);
  shard_of_host_ = std::move(shard_of_host);
  if (shards_.size() == 1) return;  // serial path: no per-send router check
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shards_[s]->router =
        std::make_unique<Router>(*this, static_cast<std::uint32_t>(s));
    shards_[s]->sim->transport().set_shard_router(
        shards_[s]->router.get(), shard_of_host_.data(), shard_of_host_.size(),
        static_cast<std::uint32_t>(s));
  }
}

void ShardedSimulation::Post(std::size_t src, std::size_t dst,
                             Time deliver_time, EventQueue::Callback cb) {
  P2P_CHECK_MSG(src < shards_.size() && dst < shards_.size(),
                "unknown shard in cross-shard post");
  P2P_CHECK_MSG(deliver_time >= shards_[dst]->window_end,
                "cross-shard message undershoots the lookahead barrier: "
                "deliver=" << deliver_time
                           << " window_end=" << shards_[dst]->window_end);
  if (!pair_lookahead_.empty() && src != dst) {
    // With a measured matrix, every delivery also validates the extraction:
    // a message sent now must take at least the pair bound of virtual time.
    // Tolerance covers the different summation orders of the extraction's
    // gateway reduction vs the oracle's per-pair latency.
    const double bound = shards_[src]->sim->now() +
                         pair_lookahead_[src * shards_.size() + dst];
    P2P_CHECK_MSG(deliver_time >= bound - 1e-6,
                  "cross-shard message undershoots the extracted pair bound: "
                  "deliver=" << deliver_time << " src_now="
                             << shards_[src]->sim->now() << " bound=" << bound);
  }
  if (coalesced_) {
    OutColumn& box = shards_[src]->outbox[dst];
    box.deliver.push_back(deliver_time);
    box.cb.push_back(std::move(cb));
  } else {
    shards_[src]->outbox_pm[dst].push_back(Pending{deliver_time, std::move(cb)});
  }
}

void ShardedSimulation::PostRemoteMessage(std::uint32_t src_shard,
                                          const Message& msg,
                                          Time deliver_time,
                                          EventQueue::Callback deliver) {
  const std::uint32_t dst_shard = shard_of_host_[msg.dst_host];
  Transport* bus = &shards_[dst_shard]->sim->transport();
  // The destination bus accounts the delivery when the closure runs —
  // mirroring FinishDelivery on a local scheduled send.
  Post(src_shard, dst_shard, deliver_time,
       [bus, protocol = msg.protocol, src = msg.src_host, bytes = msg.bytes,
        cb = std::move(deliver)]() mutable {
         bus->AccountRemoteDelivery(protocol, src, bytes);
         if (cb) cb();
       });
}

void ShardedSimulation::ExchangeMailboxes() {
  // The barrier does no per-message work: each destination claims the
  // outboxes addressed to it with an O(1) swap (the swapped-out staged box
  // is empty, so outboxes come back cleared with their old staging
  // capacity). The per-message merge/insert happens on the destination
  // shard's own thread at the next window's start (DrainInbox) — work the
  // barrier thread would otherwise serialise.
  const std::size_t n = shards_.size();
  for (std::size_t dst = 0; dst < n; ++dst) {
    for (std::size_t src = 0; src < n; ++src) {
      if (coalesced_) {
        OutColumn& box = shards_[src]->outbox[dst];
        cross_messages_ += box.size();
        std::swap(shards_[dst]->staged[src], box);
      } else {
        auto& box = shards_[src]->outbox_pm[dst];
        cross_messages_ += box.size();
        shards_[dst]->staged_pm[src].swap(box);
      }
    }
  }
}

void ShardedSimulation::SortOutboxes(Shard& shard) const {
  // Each sending shard pre-sorts its own outbox runs inside the window
  // phase (in parallel across shards) so the destination's drain is a pure
  // k-way merge. The sort permutes 4-byte indices on deliver time only —
  // std::stable_sort keeps equal-time sends in send_seq order, and the
  // callbacks themselves never move until the drain consumes them.
  for (OutColumn& box : shard.outbox) {
    const std::size_t n = box.size();
    box.order.resize(n);
    for (std::size_t i = 0; i < n; ++i)
      box.order[i] = static_cast<std::uint32_t>(i);
    if (std::is_sorted(box.deliver.begin(), box.deliver.end())) continue;
    std::stable_sort(box.order.begin(), box.order.end(),
                     [&box](std::uint32_t a, std::uint32_t b) {
                       return box.deliver[a] < box.deliver[b];
                     });
  }
}

void ShardedSimulation::DrainInbox(Shard& shard) const {
  // Canonical (deliver_time, src_shard, send_seq) order. Insertion order
  // fixes this queue's seq tie-breaks independent of the thread schedule —
  // the merge runs on the owning shard's thread, but its inputs and output
  // order are schedule-invariant.
  if (!coalesced_) {
    // Retained per-message path: concatenating the staged boxes in src
    // order puts the scratch in (src_shard, send_seq) order, so a stable
    // sort on time alone finishes the key.
    for (std::size_t src = 0; src < shard.staged_pm.size(); ++src) {
      auto& box = shard.staged_pm[src];
      for (auto& p : box) {
        shard.inbox.push_back(Routed{p.deliver,
                                     static_cast<std::uint32_t>(src),
                                     std::move(p.cb)});
      }
      box.clear();
    }
    std::stable_sort(shard.inbox.begin(), shard.inbox.end(),
                     [](const Routed& a, const Routed& b) {
                       return a.deliver < b.deliver;
                     });
    for (Routed& r : shard.inbox) shard.sim->At(r.deliver, std::move(r.cb));
    shard.inbox.clear();
    return;
  }

  // Coalesced path: each staged[src] run is pre-sorted (SortOutboxes ran on
  // the sender before the barrier), so a k-way merge — strict < on deliver
  // time with the scan in src order breaking ties — emits the canonical
  // order directly. k = shard count, so the linear scan per pop beats a
  // heap for every realistic shard count, and the whole drain does no
  // comparison-sort work over the concatenation.
  const std::size_t n = shard.staged.size();
  std::size_t total = 0;
  for (const OutColumn& box : shard.staged) total += box.size();
  if (total == 0) return;
  std::fill(shard.merge_pos.begin(), shard.merge_pos.end(), 0);
  for (std::size_t done = 0; done < total; ++done) {
    std::size_t best = n;
    Time best_t = 0.0;
    for (std::size_t src = 0; src < n; ++src) {
      const OutColumn& box = shard.staged[src];
      const std::size_t pos = shard.merge_pos[src];
      if (pos >= box.size()) continue;
      const Time t = box.deliver[box.order[pos]];
      if (best == n || t < best_t) {
        best = src;
        best_t = t;
      }
    }
    OutColumn& box = shard.staged[best];
    const std::uint32_t idx = box.order[shard.merge_pos[best]++];
    shard.sim->At(best_t, std::move(box.cb[idx]));
  }
  for (OutColumn& box : shard.staged) box.clear();
}

bool ShardedSimulation::Idle() const {
  for (const auto& shard : shards_) {
    if (shard->sim->pending_events() > 0) return false;
    for (const auto& box : shard->staged)
      if (!box.empty()) return false;
    for (const auto& box : shard->staged_pm)
      if (!box.empty()) return false;
    for (const auto& box : shard->outbox)
      if (!box.empty()) return false;
    for (const auto& box : shard->outbox_pm)
      if (!box.empty()) return false;
  }
  return true;
}

std::size_t ShardedSimulation::RunUntil(Time t_end) {
  P2P_CHECK_MSG(t_end >= now_, "cannot run backwards");
  std::size_t fired_before = 0;
  for (const auto& shard : shards_) fired_before += shard->sim->fired_events();

  if (shards_.size() == 1) {
    // Serial fast path: the single shard IS the serial kernel.
    const auto start = std::chrono::steady_clock::now();
    shards_[0]->sim->RunUntil(t_end);
    critical_ns_ += ElapsedNs(start);
    now_ = t_end;
    shards_[0]->window_end = t_end;
    return shards_[0]->sim->fired_events() - fired_before;
  }

  const std::size_t n = shards_.size();
  std::vector<Time> next_end(n, 0.0);
  while (now_ < t_end && !Idle()) {
    // Bounded-lag window ends: shard j may safely run until the earliest
    // virtual time any other shard could still reach it,
    //   W_j = min(t_end, min over i != j of (C_i + L[i][j])),
    // where C_i is shard i's committed clock (its previous window end).
    // With a uniform lookahead all C_i stay equal and W_j collapses to
    // C + lookahead — the classic fixed window, byte for byte. Monotone:
    // C_j = min_i(C_i' + L[i][j]) over the *previous* clocks <= the same
    // min over the advanced clocks = W_j, so windows never run backwards,
    // and every uncapped shard advances by at least min L per round.
    for (std::size_t j = 0; j < n; ++j) {
      Time w = t_end;
      for (std::size_t i = 0; i < n; ++i) {
        if (i == j) continue;
        w = std::min(w, shards_[i]->window_end + PairLookaheadMs(i, j));
      }
      P2P_CHECK_MSG(w >= shards_[j]->window_end,
                    "window regression on shard " << j);
      next_end[j] = w;
    }
    for (std::size_t j = 0; j < n; ++j) shards_[j]->window_end = next_end[j];

    pool_->ParallelFor(n, [this](std::size_t s) {
      Shard& shard = *shards_[s];
      const auto t0 = std::chrono::steady_clock::now();
      DrainInbox(shard);
      const auto t1 = std::chrono::steady_clock::now();
      shard.sim->RunUntil(shard.window_end);
      const auto t2 = std::chrono::steady_clock::now();
      if (coalesced_) SortOutboxes(shard);
      const auto t3 = std::chrono::steady_clock::now();
      shard.drain_ns = static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count());
      shard.sort_ns = static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t3 - t2)
              .count());
      shard.busy_ns = static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t3 - t0)
              .count());
    });
    double max_busy = 0.0, max_drain = 0.0, max_sort = 0.0, max_run = 0.0;
    for (const auto& shard : shards_) {
      max_busy = std::max(max_busy, shard->busy_ns);
      max_drain = std::max(max_drain, shard->drain_ns);
      max_sort = std::max(max_sort, shard->sort_ns);
      max_run = std::max(max_run,
                         shard->busy_ns - shard->drain_ns - shard->sort_ns);
    }
    const auto xstart = std::chrono::steady_clock::now();
    ExchangeMailboxes();
    const double exchange_ns = ElapsedNs(xstart);
    critical_ns_ += max_busy + exchange_ns;
    // Slowest-shard wall clock per phase, per window (non-deterministic
    // profile section only — see kernel_profile()).
    profile_.profile("shard.drain_ms").Add(max_drain / 1e6);
    profile_.profile("shard.window_ms").Add(max_run / 1e6);
    profile_.profile("shard.sort_ms").Add(max_sort / 1e6);
    profile_.profile("shard.exchange_ms").Add(exchange_ns / 1e6);
    Time min_c = shards_[0]->window_end;
    for (const auto& shard : shards_) min_c = std::min(min_c, shard->window_end);
    now_ = min_c;
    ++windows_;
  }
  if (now_ < t_end) {
    // Everything drained early; fast-forward the clocks without windows.
    for (auto& shard : shards_) shard->sim->RunUntil(t_end);
    now_ = t_end;
  }
  for (auto& shard : shards_) shard->window_end = t_end;

  std::size_t fired_after = 0;
  for (const auto& shard : shards_) fired_after += shard->sim->fired_events();
  return fired_after - fired_before;
}

std::size_t ShardedSimulation::fired_events() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->sim->fired_events();
  return total;
}

void ShardedSimulation::MergeMetrics(obs::MetricsRegistry& out) const {
  for (const auto& shard : shards_) out.MergeFrom(shard->sim->metrics());
  // Barrier wall-clock histograms ride along; they live in the profile
  // section, which deterministic snapshots (SnapshotJson(false)) exclude.
  out.MergeFrom(profile_);
}

TransportStats ShardedSimulation::MergedTransportStats() const {
  TransportStats merged;
  for (const auto& shard : shards_) {
    const TransportStats stats = shard->sim->transport().stats();
    for (std::size_t p = 0; p < kProtocolCount; ++p) {
      auto& m = merged.by_protocol[p];
      const auto& s = stats.by_protocol[p];
      m.sent += s.sent;
      m.delivered += s.delivered;
      m.dropped += s.dropped;
      m.dropped_loss += s.dropped_loss;
      m.dropped_partition += s.dropped_partition;
      m.bytes += s.bytes;
    }
  }
  return merged;
}

}  // namespace p2p::sim
