#include "sim/sharded.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "util/check.h"
#include "util/rng.h"

namespace p2p::sim {

namespace {

double ElapsedNs(std::chrono::steady_clock::time_point start) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

std::uint64_t ShardSeed(std::uint64_t seed, std::size_t shard,
                        std::size_t shard_count) {
  // 1-shard runs must draw the exact RNG stream of the serial kernel.
  if (shard_count <= 1) return seed;
  // Mix the shard index and count through SplitMix64 so neighbouring seeds
  // (1, 2, 3, ...) still yield unrelated per-shard streams, and so the same
  // shard index under a different shard count is a different stream.
  std::uint64_t sm = seed ^ util::Mix64(0x9e6c63d0876a3f35ULL +
                                        static_cast<std::uint64_t>(shard_count));
  sm ^= util::Mix64(static_cast<std::uint64_t>(shard) * 0xa0761d6478bd642fULL);
  return util::SplitMix64(sm);
}

// Per-shard Transport hook: consults the owner's host map and forwards
// remote sends into the owner's mailboxes. Lives on the shard whose bus it
// is installed on; IsRemote is called on that shard's thread only, reading
// the immutable (post-SetHostShards) host map.
class ShardedSimulation::Router : public ShardRouter {
 public:
  Router(ShardedSimulation& owner, std::uint32_t shard)
      : owner_(owner), shard_(shard) {}

  bool IsRemote(std::size_t dst_host) const override {
    return owner_.shard_of_host_[dst_host] != shard_;
  }

  void PostRemote(const Message& msg, Time deliver_time,
                  util::InlineFn deliver) override {
    owner_.PostRemoteMessage(shard_, msg, deliver_time, std::move(deliver));
  }

 private:
  ShardedSimulation& owner_;
  std::uint32_t shard_;
};

ShardedSimulation::ShardedSimulation(const ShardedOptions& opts)
    : lookahead_ms_(opts.lookahead_ms) {
  P2P_CHECK_MSG(opts.shards >= 1, "need at least one shard");
  P2P_CHECK_MSG(opts.shards == 1 || opts.lookahead_ms > 0.0,
                "multi-shard runs need a positive lookahead");
  shards_.reserve(opts.shards);
  for (std::size_t s = 0; s < opts.shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->sim = std::make_unique<Simulation>(
        ShardSeed(opts.seed, s, opts.shards), opts.scheduler);
    shard->outbox.resize(opts.shards);
    shard->staged.resize(opts.shards);
    shards_.push_back(std::move(shard));
  }
  if (opts.shards > 1) {
    std::size_t threads = opts.threads;
    if (threads == 0) {
      const std::size_t hw = std::thread::hardware_concurrency();
      threads = std::min(opts.shards, hw > 0 ? hw : std::size_t{1});
    }
    pool_ = std::make_unique<util::ThreadPool>(threads);
  }
}

ShardedSimulation::~ShardedSimulation() {
  // Routers point into this object; detach them from the transports before
  // the shards (and their buses) go down, in case a bus outlives us via a
  // caller-held reference during teardown.
  for (auto& shard : shards_) {
    if (shard->router) shard->sim->transport().set_shard_router(nullptr);
  }
}

void ShardedSimulation::SetHostShards(std::vector<std::uint32_t> shard_of_host) {
  P2P_CHECK_MSG(shard_of_host_.empty(), "host shards already installed");
  P2P_CHECK_MSG(windows_ == 0 && now_ == 0.0,
                "install host shards before running");
  for (const std::uint32_t s : shard_of_host)
    P2P_CHECK_MSG(s < shards_.size(), "host mapped to unknown shard " << s);
  shard_of_host_ = std::move(shard_of_host);
  if (shards_.size() == 1) return;  // serial path: no per-send router check
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shards_[s]->router =
        std::make_unique<Router>(*this, static_cast<std::uint32_t>(s));
    shards_[s]->sim->transport().set_shard_router(shards_[s]->router.get());
  }
}

void ShardedSimulation::Post(std::size_t src, std::size_t dst,
                             Time deliver_time, EventQueue::Callback cb) {
  P2P_CHECK_MSG(src < shards_.size() && dst < shards_.size(),
                "unknown shard in cross-shard post");
  P2P_CHECK_MSG(deliver_time >= window_end_,
                "cross-shard message undershoots the lookahead barrier: "
                "deliver=" << deliver_time << " window_end=" << window_end_);
  shards_[src]->outbox[dst].push_back(Pending{deliver_time, std::move(cb)});
}

void ShardedSimulation::PostRemoteMessage(std::uint32_t src_shard,
                                          const Message& msg,
                                          Time deliver_time,
                                          EventQueue::Callback deliver) {
  const std::uint32_t dst_shard = shard_of_host_[msg.dst_host];
  Transport* bus = &shards_[dst_shard]->sim->transport();
  // The destination bus accounts the delivery when the closure runs —
  // mirroring FinishDelivery on a local scheduled send.
  Post(src_shard, dst_shard, deliver_time,
       [bus, protocol = msg.protocol, src = msg.src_host, bytes = msg.bytes,
        cb = std::move(deliver)]() mutable {
         bus->AccountRemoteDelivery(protocol, src, bytes);
         if (cb) cb();
       });
}

void ShardedSimulation::ExchangeMailboxes() {
  // The barrier does no per-message work: each destination claims the
  // outboxes addressed to it with an O(1) vector swap (the swapped-out
  // staged box is empty, so outboxes come back cleared with their old
  // staging capacity). The per-message merge/sort/insert happens on the
  // destination shard's own thread at the next window's start (DrainInbox)
  // — work the barrier thread would otherwise serialise.
  const std::size_t n = shards_.size();
  for (std::size_t dst = 0; dst < n; ++dst) {
    for (std::size_t src = 0; src < n; ++src) {
      auto& box = shards_[src]->outbox[dst];
      cross_messages_ += box.size();
      shards_[dst]->staged[src].swap(box);
    }
  }
}

void ShardedSimulation::DrainInbox(Shard& shard) {
  // Canonical (deliver_time, src_shard, send_seq) order: concatenating the
  // staged boxes in src order puts the scratch in (src_shard, send_seq)
  // order, so a stable sort on time alone finishes the key. Insertion
  // order fixes this queue's seq tie-breaks independent of the thread
  // schedule — the merge runs on the owning shard's thread, but its
  // inputs and output order are schedule-invariant.
  for (std::size_t src = 0; src < shard.staged.size(); ++src) {
    auto& box = shard.staged[src];
    for (auto& p : box) {
      shard.inbox.push_back(Routed{p.deliver, static_cast<std::uint32_t>(src),
                                   std::move(p.cb)});
    }
    box.clear();
  }
  std::stable_sort(shard.inbox.begin(), shard.inbox.end(),
                   [](const Routed& a, const Routed& b) {
                     return a.deliver < b.deliver;
                   });
  for (Routed& r : shard.inbox) shard.sim->At(r.deliver, std::move(r.cb));
  shard.inbox.clear();
}

bool ShardedSimulation::Idle() const {
  for (const auto& shard : shards_) {
    if (shard->sim->pending_events() > 0) return false;
    for (const auto& box : shard->staged) {
      if (!box.empty()) return false;
    }
    for (const auto& box : shard->outbox) {
      if (!box.empty()) return false;
    }
  }
  return true;
}

std::size_t ShardedSimulation::RunUntil(Time t_end) {
  P2P_CHECK_MSG(t_end >= now_, "cannot run backwards");
  std::size_t fired_before = 0;
  for (const auto& shard : shards_) fired_before += shard->sim->fired_events();

  if (shards_.size() == 1) {
    // Serial fast path: the single shard IS the serial kernel.
    const auto start = std::chrono::steady_clock::now();
    shards_[0]->sim->RunUntil(t_end);
    critical_ns_ += ElapsedNs(start);
    now_ = t_end;
    return shards_[0]->sim->fired_events() - fired_before;
  }

  const std::size_t n = shards_.size();
  while (now_ < t_end && !Idle()) {
    window_end_ = std::min(now_ + lookahead_ms_, t_end);
    const Time w_end = window_end_;
    pool_->ParallelFor(n, [this, w_end](std::size_t s) {
      const auto start = std::chrono::steady_clock::now();
      DrainInbox(*shards_[s]);
      shards_[s]->sim->RunUntil(w_end);
      shards_[s]->busy_ns = ElapsedNs(start);
    });
    double max_busy = 0.0;
    for (const auto& shard : shards_)
      max_busy = std::max(max_busy, shard->busy_ns);
    const auto xstart = std::chrono::steady_clock::now();
    ExchangeMailboxes();
    critical_ns_ += max_busy + ElapsedNs(xstart);
    now_ = w_end;
    ++windows_;
  }
  if (now_ < t_end) {
    // Everything drained early; fast-forward the clocks without windows.
    for (auto& shard : shards_) shard->sim->RunUntil(t_end);
    now_ = t_end;
  }
  window_end_ = t_end;

  std::size_t fired_after = 0;
  for (const auto& shard : shards_) fired_after += shard->sim->fired_events();
  return fired_after - fired_before;
}

std::size_t ShardedSimulation::fired_events() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->sim->fired_events();
  return total;
}

void ShardedSimulation::MergeMetrics(obs::MetricsRegistry& out) const {
  for (const auto& shard : shards_) out.MergeFrom(shard->sim->metrics());
}

TransportStats ShardedSimulation::MergedTransportStats() const {
  TransportStats merged;
  for (const auto& shard : shards_) {
    const TransportStats stats = shard->sim->transport().stats();
    for (std::size_t p = 0; p < kProtocolCount; ++p) {
      auto& m = merged.by_protocol[p];
      const auto& s = stats.by_protocol[p];
      m.sent += s.sent;
      m.delivered += s.delivered;
      m.dropped += s.dropped;
      m.dropped_loss += s.dropped_loss;
      m.dropped_partition += s.dropped_partition;
      m.bytes += s.bytes;
    }
  }
  return merged;
}

}  // namespace p2p::sim
