// Simulation kernel: owns the virtual clock, the event queue, the per-run
// random stream, and the Transport message bus. Protocol objects (DHT
// heartbeats, SOMO gather, packet-pair probes) send inter-host messages
// through transport(); purely local timers still schedule callbacks
// directly against this kernel.
#pragma once

#include <cstdint>
#include <limits>

#include "obs/metrics.h"
#include "sim/event_queue.h"
#include "sim/transport.h"
#include "util/rng.h"

namespace p2p::sim {

class Simulation {
 public:
  explicit Simulation(std::uint64_t seed = 1,
                      SchedulerKind sched = SchedulerKind::kTimingWheel)
      : queue_(sched), rng_(seed) {
    run_profile_ = &metrics_.profile("event_loop.run_ms");
  }

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  Time now() const { return now_; }
  util::Rng& rng() { return rng_; }

  // The message bus all inter-host protocol traffic goes through.
  Transport& transport() { return transport_; }
  const Transport& transport() const { return transport_; }

  // Per-run metrics registry. Protocol layers instrument through it
  // unconditionally (counter bumps, no RNG — seeded runs stay
  // bit-identical); the transport's hot-path counters are opt-in via
  // EnableMetrics so the bus benchmark can price them.
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  // Wire the transport's per-protocol counters into metrics().
  void EnableMetrics() { transport_.set_metrics(&metrics_); }

  // Schedule at absolute virtual time (>= now).
  EventId At(Time t, EventQueue::Callback cb);
  // Schedule `dt` ms from now (dt >= 0).
  EventId After(Time dt, EventQueue::Callback cb);
  // Schedule a repeating event every `period` ms, first firing after
  // `initial_delay`. Backed by a first-class periodic timer: one event
  // record lives for the timer's whole lifetime and each firing re-arms it
  // in place. Periodic callbacks receive no arguments; to stop from inside
  // the callback, call CancelPeriodic with the returned token.
  struct PeriodicToken {
    EventId id = kInvalidEventId;
    EventQueue* queue = nullptr;
  };
  PeriodicToken Every(Time period, Time initial_delay,
                      EventQueue::Callback cb);
  static void CancelPeriodic(PeriodicToken& token);

  bool Cancel(EventId id) { return queue_.Cancel(id); }
  // Move a pending event's deadline (>= now) in place — the
  // allocation-free replacement for Cancel + At.
  bool Rearm(EventId id, Time t);

  // Run a single event; returns false if the queue was empty.
  bool Step();
  // Run until the queue drains or virtual time would exceed `t_end`.
  // Events at exactly t_end still run. Returns the number of events fired.
  std::size_t RunUntil(Time t_end);
  // Drain the queue completely (use RunUntil for open-ended protocols that
  // reschedule themselves forever). `max_events` is a runaway backstop.
  std::size_t Run(std::size_t max_events =
                      std::numeric_limits<std::size_t>::max());

  std::size_t pending_events() const { return queue_.size(); }
  std::size_t fired_events() const { return fired_; }

 private:
  EventQueue queue_;
  Time now_ = 0.0;
  std::size_t fired_ = 0;
  util::Rng rng_;
  obs::MetricsRegistry metrics_;
  // Wall-clock cost of each RunUntil/Run batch (profile section).
  obs::Histogram* run_profile_ = nullptr;
  Transport transport_{*this};
};

}  // namespace p2p::sim
