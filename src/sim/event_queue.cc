#include "sim/event_queue.h"

#include <algorithm>
#include <utility>

namespace p2p::sim {

EventId EventQueue::Schedule(Time t, Callback cb) {
  P2P_CHECK_MSG(cb != nullptr, "scheduling a null callback");
  const EventId id = next_id_++;
  heap_.push_back(Entry{t, next_seq_++, id});
  std::push_heap(heap_.begin(), heap_.end());
  callbacks_.emplace(id, std::move(cb));
  ++live_count_;
  return id;
}

bool EventQueue::Cancel(EventId id) {
  const auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  --live_count_;
  CompactIfMostlyGarbage();
  return true;
}

void EventQueue::CompactIfMostlyGarbage() {
  // Cancelled entries stay in the heap until they surface; once they
  // outnumber the live ones, filter them out and re-heapify. The rebuild is
  // O(heap) but at least half the entries are discarded, so the cost
  // amortises to O(1) per cancellation and the footprint stays within
  // 2 * live + 1 entries.
  if (heap_.size() - live_count_ <= heap_.size() / 2) return;
  std::erase_if(heap_, [this](const Entry& e) {
    return callbacks_.find(e.id) == callbacks_.end();
  });
  std::make_heap(heap_.begin(), heap_.end());
}

void EventQueue::DropCancelledHead() const {
  // `callbacks_` membership is the liveness test; heap entries whose id was
  // cancelled are garbage and get skipped here.
  while (!heap_.empty() &&
         callbacks_.find(heap_.front().id) == callbacks_.end()) {
    std::pop_heap(heap_.begin(), heap_.end());
    heap_.pop_back();
  }
}

Time EventQueue::PeekTime() const {
  P2P_CHECK(!empty());
  DropCancelledHead();
  return heap_.front().time;
}

EventQueue::Fired EventQueue::Pop() {
  P2P_CHECK(!empty());
  DropCancelledHead();
  const Entry e = heap_.front();
  std::pop_heap(heap_.begin(), heap_.end());
  heap_.pop_back();
  auto it = callbacks_.find(e.id);
  P2P_CHECK(it != callbacks_.end());
  Fired fired{e.time, e.id, std::move(it->second)};
  callbacks_.erase(it);
  --live_count_;
  return fired;
}

}  // namespace p2p::sim
