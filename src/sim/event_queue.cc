#include "sim/event_queue.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <utility>
#include <vector>

namespace p2p::sim {

// ---------------------------------------------------------------------------
// Ordering backends. A backend owns only the ORDER of scheduled slab
// records; the records themselves (time, seq, callback, state) live in the
// facade's slab. Liveness for the lazy structures is resolved through
// OccurrenceLive(slot, seq): a (slot, seq) pair names one occurrence of one
// event, so a stale heap entry can never resurrect a cancelled or re-armed
// record.
// ---------------------------------------------------------------------------

class EventQueue::Backend {
 public:
  explicit Backend(EventQueue& q) : q_(q) {}
  virtual ~Backend() = default;

  Backend(const Backend&) = delete;
  Backend& operator=(const Backend&) = delete;

  // `slot` is kScheduled with its final (time, seq) when Add is called.
  virtual void Add(std::uint32_t slot) = 0;
  // Called while the occurrence named by the backend's entry is already
  // dead (seq bumped or state changed), so lazy backends may compact.
  virtual void Remove(std::uint32_t slot) = 0;
  virtual std::uint32_t PeekMin() = 0;
  virtual std::uint32_t PopMin() = 0;
  virtual std::size_t footprint() const = 0;

  // Batched drain (EventQueue::PopAllUpTo): the generic loop still pays a
  // virtual peek+pop per event — it exists so every backend supports the
  // API; backends with an inline-walkable "next run" structure override it.
  virtual void PopAllUpTo(Time t_end, void* ctx, EventQueue::SinkFn sink) {
    while (!QueueEmpty()) {
      const std::uint32_t slot = PeekMin();
      if (time_of(slot) > t_end) return;
      PopMin();
      Emit(slot, ctx, sink);
    }
  }

 protected:
  // Flat ordering keys — the hot reads of every compare/sort/min scan.
  Time time_of(std::uint32_t slot) const { return q_.keys_[slot].time; }
  std::uint64_t seq_of(std::uint32_t slot) const { return q_.keys_[slot].seq; }
  // The backend's private per-slot location word (wheel: packed bucket
  // index + position). Valid only while the slot is scheduled.
  std::uint64_t& word_of(std::uint32_t slot) { return q_.keys_[slot].backend_word; }
  bool Live(std::uint32_t slot, std::uint64_t seq) const {
    return q_.OccurrenceLive(slot, seq);
  }
  bool QueueEmpty() const { return q_.live_count_ == 0; }
  // Run one popped slot through the sink (fire one-shot / fire + re-arm
  // periodic); the slot must already be detached from the backend.
  void Emit(std::uint32_t slot, void* ctx, EventQueue::SinkFn sink) {
    q_.EmitSlot(slot, ctx, sink);
  }

 private:
  EventQueue& q_;
};

namespace {

// Strict (time, seq) "fires later" order. std::push_heap and friends build
// a max-heap, so heaping with this comparator keeps the earliest entry at
// the front.
template <typename T>
bool FiresLater(const T& a, const T& b) {
  return a.time > b.time || (a.time == b.time && a.seq > b.seq);
}

}  // namespace

// ---------------------------------------------------------------------------
// WheelBackend — hierarchical timing wheel (default).
//
// Three levels of 256 buckets cover ticks (whole milliseconds) relative to
// the wheel clock `current_tick_`:
//
//   level 0: ticks sharing current_tick_ >> 8   (1 ms per bucket)
//   level 1: ticks sharing current_tick_ >> 16  (256 ms per bucket)
//   level 2: ticks sharing current_tick_ >> 24  (65,536 ms per bucket)
//   beyond:  overflow min-heap (lazy cancellation, compacting)
//
// Window alignment gives a total order across the structures: every level-0
// tick precedes every level-1 bucket, which precedes every level-2 bucket,
// which precedes everything in overflow. Advancing therefore never needs a
// global comparison — serve level 0, else cascade the first level-1/2
// bucket down, else jump the clock to the overflow minimum and drain its
// 2^24-tick window back into the wheel. Each entry cascades at most once
// per level, so scheduling is amortized O(1).
//
// Sub-millisecond ordering: the bucket granularity is 1 ms but event times
// are doubles, so serving a tick first moves its bucket into `due_`, sorted
// by exact (time, seq); pops walk `due_` with a cursor. Same-tick events
// scheduled *while the tick is being served* binary-insert at or after the
// cursor (callers never schedule before the last popped time, so the sorted
// order is preserved).
//
// Cancellation in buckets and due_ is eager (per-slot location tracking),
// so only the overflow heap carries garbage — that keeps heap_footprint()
// within the documented 2 * live + 1 bound.
// ---------------------------------------------------------------------------

class EventQueue::WheelBackend final : public EventQueue::Backend {
 public:
  explicit WheelBackend(EventQueue& q) : Backend(q) { occ_.fill(0); }

  void Add(std::uint32_t slot) override {
    Place(slot);
    // Keep the cached minimum correct: a strictly earlier arrival takes
    // over; on a time tie the incumbent wins (its seq is smaller).
    if (cache_ != kNoSlot && time_of(slot) < cache_time_) {
      cache_ = slot;
      cache_time_ = time_of(slot);
    }
  }

  void Remove(std::uint32_t slot) override {
    if (slot == cache_) cache_ = kNoSlot;
    const std::uint64_t w = word_of(slot);
    switch (KindOf(w)) {
      case kInBucket: {
        std::vector<std::uint32_t>& b = buckets_[BucketOf(w)];
        const std::uint32_t pos = PosOf(w);
        b[pos] = b.back();
        word_of(b[pos]) = PackLoc(kInBucket, BucketOf(w), pos);
        b.pop_back();
        --bucket_entries_;
        if (b.empty()) ClearBit(BucketOf(w));
        break;
      }
      case kInDue: {
        due_.erase(due_.begin() + PosOf(w));
        for (std::size_t i = PosOf(w); i < due_.size(); ++i) {
          word_of(due_[i].slot) =
              PackLoc(kInDue, 0, static_cast<std::uint32_t>(i));
        }
        // Cancelling the last pending entry must leave due_ truly empty
        // (not a served prefix with cursor == size): ServeBucketAsDue
        // swaps the next tick's bucket into due_ and relies on it.
        if (due_cursor_ >= due_.size()) {
          due_.clear();
          due_cursor_ = 0;
        }
        break;
      }
      case kInOverflow:
        ++ov_garbage_;
        // Each compaction discards at least half the heap, so the cost
        // amortises to O(1) per cancellation.
        if (ov_garbage_ > overflow_.size() / 2) CompactOverflow();
        break;
      case kNowhere:
        break;
    }
    word_of(slot) = kNowhere;
  }

  std::uint32_t PeekMin() override {
    if (cache_ != kNoSlot) return cache_;
    // Read-only min: the ordered-hierarchy invariant means the earliest
    // entry is in due_, else the first occupied bucket of the lowest
    // occupied level, else the overflow top. No cascading here — peeking
    // must not move the wheel clock, or a later Schedule at a time between
    // now and the peeked event would land behind the clock.
    std::uint32_t best = kNoSlot;
    if (due_cursor_ < due_.size()) {
      best = due_[due_cursor_].slot;
    } else {
      for (int level = 0; level < 3 && best == kNoSlot; ++level) {
        const int idx = FindFirst(level);
        if (idx >= 0) best = MinOfBucket(buckets_[level * 256 + idx]);
      }
      if (best == kNoSlot) {
        DropOverflowGarbage();
        P2P_CHECK(!overflow_.empty());
        best = overflow_.front().slot;
      }
    }
    cache_ = best;
    cache_time_ = time_of(best);
    return best;
  }

  std::uint32_t PopMin() override {
    cache_ = kNoSlot;
    for (;;) {
      if (due_cursor_ < due_.size()) {
        const std::uint32_t slot = due_[due_cursor_++].slot;
        word_of(slot) = kNowhere;
        if (due_cursor_ == due_.size()) {
          due_.clear();
          due_cursor_ = 0;
        }
        return slot;
      }
      const int i0 = FindFirst(0);
      if (i0 >= 0) {
        current_tick_ = (current_tick_ & ~0xffull) |
                        static_cast<std::uint64_t>(i0);
        ServeBucketAsDue(i0);
        continue;
      }
      const int j1 = FindFirst(1);
      if (j1 >= 0) {
        current_tick_ = (current_tick_ & ~0xffffull) |
                        (static_cast<std::uint64_t>(j1) << 8);
        CascadeBucket(256 + j1);
        continue;
      }
      const int j2 = FindFirst(2);
      if (j2 >= 0) {
        current_tick_ = (current_tick_ & ~0xffffffull) |
                        (static_cast<std::uint64_t>(j2) << 16);
        CascadeBucket(512 + j2);
        continue;
      }
      // Wheel empty: jump the clock to the overflow minimum and pull
      // everything in its 2^24-tick window back into the wheel. Safe
      // because all wheel windows are empty and overflow entries are the
      // only events left.
      DropOverflowGarbage();
      P2P_CHECK(!overflow_.empty());
      current_tick_ = TickOf(overflow_.front().time);
      while (!overflow_.empty()) {
        const OvItem top = overflow_.front();
        if (!Live(top.slot, top.seq)) {
          PopOverflowTop();
          --ov_garbage_;
          continue;
        }
        if ((TickOf(top.time) >> 24) != (current_tick_ >> 24)) break;
        PopOverflowTop();
        Place(top.slot);
      }
    }
  }

  std::size_t footprint() const override {
    return bucket_entries_ + (due_.size() - due_cursor_) + overflow_.size();
  }

  // Batched drain: walk the due-run cursor inline — no virtual peek/pop
  // per event — falling back to PeekMin/PopMin (devirtualised: this class
  // is final) only when the wheel has to advance or cascade. Sink
  // callbacks may schedule, cancel, or re-arm freely: the inner loop
  // re-reads due_/due_cursor_ after every emit, and InsertDue/Remove keep
  // the served prefix invariant.
  void PopAllUpTo(Time t_end, void* ctx, EventQueue::SinkFn sink) override {
    while (!QueueEmpty()) {
      while (due_cursor_ < due_.size()) {
        const DueItem& it = due_[due_cursor_];
        if (it.time > t_end) return;
        const std::uint32_t slot = it.slot;
        if (slot == cache_) cache_ = kNoSlot;
        ++due_cursor_;
        word_of(slot) = kNowhere;
        if (due_cursor_ == due_.size()) {
          due_.clear();
          due_cursor_ = 0;
        }
        Emit(slot, ctx, sink);
      }
      if (QueueEmpty()) return;
      const std::uint32_t slot = PeekMin();
      if (time_of(slot) > t_end) return;
      PopMin();  // advances the wheel clock / cascades, then pops `slot`
      Emit(slot, ctx, sink);
    }
  }

 private:
  // Per-slot location, packed into the Key record's backend_word so it
  // travels on the cache line the queue already touches: bits 0-7 kind,
  // 8-23 global bucket index (level * 256 + slot), 32-63 position within
  // the bucket vector or due_. kNowhere is 0 — a freshly allocated key
  // word reads as "not placed".
  enum LocKind : std::uint8_t { kNowhere, kInBucket, kInDue, kInOverflow };
  static LocKind KindOf(std::uint64_t w) {
    return static_cast<LocKind>(w & 0xff);
  }
  static std::uint16_t BucketOf(std::uint64_t w) {
    return static_cast<std::uint16_t>((w >> 8) & 0xffff);
  }
  static std::uint32_t PosOf(std::uint64_t w) {
    return static_cast<std::uint32_t>(w >> 32);
  }
  static std::uint64_t PackLoc(LocKind kind, std::uint16_t bucket,
                               std::uint64_t pos) {
    return static_cast<std::uint64_t>(kind) |
           (static_cast<std::uint64_t>(bucket) << 8) | (pos << 32);
  }
  struct OvItem {
    Time time;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  // Dense due-run entry: the ordering keys ride alongside the slot so the
  // per-tick sort and the pop scan read contiguous 24-byte records instead
  // of gathering time_/seq_ at random slab indices per comparison.
  using DueItem = OvItem;

  // Casting a double >= 2^63 to uint64 is UB; times this far out (~127
  // millennia of simulated ms) collapse into one sentinel tick and order
  // purely by exact (time, seq) in the due list.
  static constexpr std::uint64_t kHugeTick = std::uint64_t{1} << 62;
  static std::uint64_t TickOf(Time t) {
    if (t >= 4.0e15) return kHugeTick;
    return static_cast<std::uint64_t>(t);
  }

  void Place(std::uint32_t slot) {
    const Time t = time_of(slot);
    const std::uint64_t tick = TickOf(t);
    if (tick <= current_tick_) {
      // The tick being served right now (or the sentinel tick).
      InsertDue(slot);
      return;
    }
    int bucket = -1;
    if ((tick >> 8) == (current_tick_ >> 8)) {
      bucket = static_cast<int>(tick & 0xff);
    } else if ((tick >> 16) == (current_tick_ >> 16)) {
      bucket = 256 + static_cast<int>((tick >> 8) & 0xff);
    } else if ((tick >> 24) == (current_tick_ >> 24)) {
      bucket = 512 + static_cast<int>((tick >> 16) & 0xff);
    }
    if (bucket < 0) {
      overflow_.push_back(OvItem{t, seq_of(slot), slot});
      std::push_heap(overflow_.begin(), overflow_.end(), FiresLater<OvItem>);
      word_of(slot) = kInOverflow;
      return;
    }
    std::vector<std::uint32_t>& b = buckets_[bucket];
    word_of(slot) = PackLoc(kInBucket, static_cast<std::uint16_t>(bucket),
                            b.size());
    b.push_back(slot);
    ++bucket_entries_;
    SetBit(bucket);
  }

  void InsertDue(std::uint32_t slot) {
    const Time st = time_of(slot);
    const std::uint64_t ss = seq_of(slot);
    // Binary insert by (time, seq), clamped to at or after the cursor so
    // already-served positions are never disturbed.
    std::size_t lo = due_cursor_;
    std::size_t hi = due_.size();
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      const DueItem& m = due_[mid];
      if (m.time < st || (m.time == st && m.seq < ss)) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    due_.insert(due_.begin() + lo, DueItem{st, ss, slot});
    for (std::size_t i = lo; i < due_.size(); ++i) {
      word_of(due_[i].slot) =
          PackLoc(kInDue, 0, static_cast<std::uint32_t>(i));
    }
  }

  // Level-0 bucket `idx` holds exactly one tick; move it into due_ sorted
  // by exact (time, seq).
  void ServeBucketAsDue(int idx) {
    std::vector<std::uint32_t>& b = buckets_[idx];
    // due_ is empty and cursor 0 whenever the wheel advances; gather the
    // bucket's keys into dense records so the sort never leaves the run.
    due_.clear();
    due_.reserve(b.size());
    for (const std::uint32_t slot : b) {
      due_.push_back(DueItem{time_of(slot), seq_of(slot), slot});
    }
    bucket_entries_ -= b.size();
    b.clear();
    ClearBit(idx);
    std::sort(due_.begin(), due_.end(),
              [](const DueItem& x, const DueItem& y) {
                return x.time < y.time || (x.time == y.time && x.seq < y.seq);
              });
    due_cursor_ = 0;
    for (std::size_t i = 0; i < due_.size(); ++i) {
      word_of(due_[i].slot) =
          PackLoc(kInDue, 0, static_cast<std::uint32_t>(i));
    }
  }

  // Re-place every entry of a level-1/2 bucket after the clock advanced to
  // its base tick; entries land one level down (or in due_ for the base
  // tick itself).
  void CascadeBucket(int idx) {
    std::vector<std::uint32_t>& b = buckets_[idx];
    scratch_.clear();
    scratch_.swap(b);
    bucket_entries_ -= scratch_.size();
    ClearBit(idx);
    for (const std::uint32_t slot : scratch_) Place(slot);
  }

  std::uint32_t MinOfBucket(const std::vector<std::uint32_t>& b) const {
    std::uint32_t best = kNoSlot;
    for (const std::uint32_t slot : b) {
      if (best == kNoSlot) {
        best = slot;
        continue;
      }
      const Time ts = time_of(slot);
      const Time tb = time_of(best);
      if (ts < tb || (ts == tb && seq_of(slot) < seq_of(best))) best = slot;
    }
    return best;
  }

  void SetBit(int bucket) {
    occ_[static_cast<std::size_t>(bucket) >> 6] |=
        std::uint64_t{1} << (bucket & 63);
  }
  void ClearBit(int bucket) {
    occ_[static_cast<std::size_t>(bucket) >> 6] &=
        ~(std::uint64_t{1} << (bucket & 63));
  }
  // First occupied bucket of `level`, as an intra-level index, or -1.
  int FindFirst(int level) const {
    for (int w = 0; w < 4; ++w) {
      const std::uint64_t word = occ_[level * 4 + w];
      if (word != 0) return w * 64 + std::countr_zero(word);
    }
    return -1;
  }

  void PopOverflowTop() {
    std::pop_heap(overflow_.begin(), overflow_.end(), FiresLater<OvItem>);
    overflow_.pop_back();
  }
  void DropOverflowGarbage() {
    while (!overflow_.empty() &&
           !Live(overflow_.front().slot, overflow_.front().seq)) {
      PopOverflowTop();
      --ov_garbage_;
    }
  }
  void CompactOverflow() {
    std::erase_if(overflow_, [this](const OvItem& it) {
      return !Live(it.slot, it.seq);
    });
    std::make_heap(overflow_.begin(), overflow_.end(), FiresLater<OvItem>);
    ov_garbage_ = 0;
  }

  std::uint64_t current_tick_ = 0;
  std::array<std::vector<std::uint32_t>, 768> buckets_;
  std::array<std::uint64_t, 12> occ_;  // 256-bit occupancy bitmap per level
  std::size_t bucket_entries_ = 0;
  std::vector<DueItem> due_;  // current tick, sorted by (time, seq)
  std::size_t due_cursor_ = 0;
  std::vector<OvItem> overflow_;  // beyond-horizon min-heap (lazy cancel)
  std::size_t ov_garbage_ = 0;
  std::vector<std::uint32_t> scratch_;
  // Cached result of PeekMin, invalidated by pops and by removal of the
  // cached slot; keeps RunUntil's peek-then-pop loop O(1) per event.
  std::uint32_t cache_ = kNoSlot;
  Time cache_time_ = 0.0;
};

// ---------------------------------------------------------------------------
// HeapBackend — the retained reference implementation: a flat binary
// min-heap with lazy cancellation. Cancelled entries stay until they
// surface; once they outnumber the live ones, a filter-and-reheapify pass
// discards them — O(heap), but at least half the entries go, so the cost
// amortises to O(1) per cancellation and the footprint stays within
// 2 * live + 1 entries.
// ---------------------------------------------------------------------------

class EventQueue::HeapBackend final : public EventQueue::Backend {
 public:
  explicit HeapBackend(EventQueue& q) : Backend(q) {}

  void Add(std::uint32_t slot) override {
    items_.push_back(Item{time_of(slot), seq_of(slot), slot});
    std::push_heap(items_.begin(), items_.end(), FiresLater<Item>);
  }

  void Remove(std::uint32_t) override {
    ++garbage_;
    if (garbage_ <= items_.size() / 2) return;
    std::erase_if(items_, [this](const Item& it) {
      return !Live(it.slot, it.seq);
    });
    std::make_heap(items_.begin(), items_.end(), FiresLater<Item>);
    garbage_ = 0;
  }

  std::uint32_t PeekMin() override {
    DropGarbageHead();
    return items_.front().slot;
  }

  std::uint32_t PopMin() override {
    DropGarbageHead();
    const std::uint32_t slot = items_.front().slot;
    std::pop_heap(items_.begin(), items_.end(), FiresLater<Item>);
    items_.pop_back();
    return slot;
  }

  std::size_t footprint() const override { return items_.size(); }

 private:
  struct Item {
    Time time;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  void DropGarbageHead() {
    while (!items_.empty() &&
           !Live(items_.front().slot, items_.front().seq)) {
      std::pop_heap(items_.begin(), items_.end(), FiresLater<Item>);
      items_.pop_back();
      --garbage_;
    }
  }

  std::vector<Item> items_;
  std::size_t garbage_ = 0;
};

// ---------------------------------------------------------------------------
// Facade
// ---------------------------------------------------------------------------

EventQueue::EventQueue(SchedulerKind kind) : kind_(kind) {
  if (kind_ == SchedulerKind::kTimingWheel) {
    backend_ = std::make_unique<WheelBackend>(*this);
  } else {
    backend_ = std::make_unique<HeapBackend>(*this);
  }
}

EventQueue::~EventQueue() = default;

void EventQueue::CheckTime(Time t) {
  P2P_CHECK_MSG(std::isfinite(t), "non-finite event time " << t);
  P2P_CHECK_MSG(t >= 0.0, "negative event time " << t);
}

std::uint32_t EventQueue::AllocSlot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = static_cast<std::uint32_t>(keys_[slot].backend_word);
    return slot;
  }
  P2P_CHECK_MSG(slab_.size() < kNoSlot, "event slab exhausted");
  slab_.emplace_back();
  keys_.push_back(Key{});
  const std::uint32_t slot = static_cast<std::uint32_t>(slab_.size() - 1);
  // A record regrowing at a trimmed index resumes the retired generation:
  // ids issued to the pre-trim tenant must not name the new tenant.
  if (slot < retired_gen_.size()) keys_[slot].gen = retired_gen_[slot];
  slab_hwm_ = std::max(slab_hwm_, slab_.size());
  return slot;
}

void EventQueue::FreeSlot(std::uint32_t slot) {
  Slot& s = slab_[slot];
  s.fn = nullptr;
  s.period = -1.0;
  Key& k = keys_[slot];
  k.state = static_cast<std::uint8_t>(State::kFree);  // clears rearmed
  ++k.gen;  // invalidates every outstanding id for this slot
  k.backend_word = free_head_;  // freelist link while free
  free_head_ = slot;
  // Attempt a trim only after at least slab/4 frees since the last check,
  // keeping the O(slab) freelist rebuild amortised O(1) per free.
  if (++frees_since_trim_ >= kMinTrimSlots &&
      frees_since_trim_ * 4 >= slab_.size()) {
    MaybeTrimSlab();
  }
}

void EventQueue::MaybeTrimSlab() {
  frees_since_trim_ = 0;
  // Trim only when the slab is mostly dead air after a burst (mass join,
  // churn storm) drained: at least 4x over-provisioned and big enough to
  // matter. The rate limit in FreeSlot amortises the freelist rebuild to
  // O(1) per free.
  if (slab_.size() < kMinTrimSlots || live_count_ * 4 > slab_.size()) return;
  const std::size_t floor =
      std::max<std::size_t>(kMinTrimSlots, live_count_ * 2);
  bool trimmed = false;
  while (slab_.size() > floor &&
         state(static_cast<std::uint32_t>(slab_.size() - 1)) == State::kFree) {
    const std::size_t idx = slab_.size() - 1;
    if (retired_gen_.size() <= idx) retired_gen_.resize(idx + 1, 0);
    retired_gen_[idx] = keys_[idx].gen;
    slab_.pop_back();  // deque: surviving records do not move
    keys_.pop_back();
    trimmed = true;
  }
  if (!trimmed) return;
  // The freelist chain threads through the popped records; rebuild it from
  // the survivors. Backends may still hold lazy (slot, seq) entries for
  // trimmed indices — OccurrenceLive bound-checks against slab_.size(), so
  // they read as garbage and compact away.
  free_head_ = kNoSlot;
  for (std::size_t i = slab_.size(); i-- > 0;) {
    if (state(static_cast<std::uint32_t>(i)) == State::kFree) {
      keys_[i].backend_word = free_head_;
      free_head_ = static_cast<std::uint32_t>(i);
    }
  }
}

std::uint32_t EventQueue::SlotOf(EventId id) const {
  const std::uint64_t low = id & 0xffffffffull;
  if (low == 0) return kNoSlot;
  const std::uint32_t slot = static_cast<std::uint32_t>(low - 1);
  if (slot >= slab_.size()) return kNoSlot;
  if (keys_[slot].gen != static_cast<std::uint32_t>(id >> 32)) return kNoSlot;
  return slot;
}

void EventQueue::BackendAdd(std::uint32_t slot) {
  if (kind_ == SchedulerKind::kTimingWheel) {
    static_cast<WheelBackend*>(backend_.get())->Add(slot);
  } else {
    backend_->Add(slot);
  }
}

EventId EventQueue::Schedule(Time t, Callback cb) {
  P2P_CHECK_MSG(static_cast<bool>(cb), "scheduling a null callback");
  CheckTime(t);
  const std::uint32_t slot = AllocSlot();
  Slot& s = slab_[slot];
  s.fn = std::move(cb);
  keys_[slot].time = t;
  s.period = -1.0;
  keys_[slot].seq = next_seq_++;
  set_state(slot, State::kScheduled);
  BackendAdd(slot);
  ++live_count_;
  return IdOf(slot);
}

EventId EventQueue::SchedulePeriodic(Time first, Time period, Callback cb) {
  P2P_CHECK_MSG(static_cast<bool>(cb), "scheduling a null callback");
  CheckTime(first);
  P2P_CHECK_MSG(std::isfinite(period) && period > 0.0,
                "periodic timer needs a positive period, got " << period);
  const std::uint32_t slot = AllocSlot();
  Slot& s = slab_[slot];
  s.fn = std::move(cb);
  keys_[slot].time = first;
  s.period = period;
  keys_[slot].seq = next_seq_++;
  set_state(slot, State::kScheduled);
  BackendAdd(slot);
  ++live_count_;
  return IdOf(slot);
}

bool EventQueue::Cancel(EventId id) {
  const std::uint32_t slot = SlotOf(id);
  if (slot == kNoSlot) return false;
  Slot& s = slab_[slot];
  switch (state(slot)) {
    case State::kScheduled:
      // Kill the occurrence before telling the backend, so lazy backends
      // see it as garbage if they compact inside Remove.
      set_state(slot, State::kStopped);
      backend_->Remove(slot);
      --live_count_;
      FreeSlot(slot);
      return true;
    case State::kFiring:
      // A one-shot firing in place (batched drain) already left the live
      // count and frees itself when the callback returns — same answer a
      // Pop()-style driver gives for the already-recycled record.
      if (s.period < 0.0) return false;
      // Periodic cancelled from inside its own callback; FinishPeriodic
      // frees the record once the callback returns.
      set_state(slot, State::kStopped);
      --live_count_;
      return true;
    case State::kStopped:
    case State::kFree:
      return false;
  }
  return false;
}

bool EventQueue::Rearm(EventId id, Time t) {
  const std::uint32_t slot = SlotOf(id);
  if (slot == kNoSlot) return false;
  CheckTime(t);
  Slot& s = slab_[slot];
  switch (state(slot)) {
    case State::kScheduled:
      // Fresh seq first: the backend's old entry must already read as dead
      // when Remove runs, in case a lazy backend compacts.
      keys_[slot].seq = next_seq_++;
      keys_[slot].time = t;
      backend_->Remove(slot);
      BackendAdd(slot);
      return true;
    case State::kFiring:
      // A firing one-shot reads as already fired (see Cancel above).
      if (s.period < 0.0) return false;
      // From inside the periodic's own callback: override the upcoming
      // deadline + period re-arm.
      keys_[slot].time = t;
      set_rearmed_while_firing(slot, true);
      return true;
    case State::kStopped:
    case State::kFree:
      return false;
  }
  return false;
}

Time EventQueue::PeekTime() const {
  P2P_CHECK(!empty());
  return keys_[backend_->PeekMin()].time;
}

EventQueue::Fired EventQueue::Pop() {
  P2P_CHECK(!empty());
  const std::uint32_t slot = backend_->PopMin();
  Slot& s = slab_[slot];
  Fired fired;
  fired.time = keys_[slot].time;
  fired.id = IdOf(slot);
  if (s.period < 0.0) {
    fired.cb = std::move(s.fn);
    --live_count_;
    FreeSlot(slot);
  } else {
    // Periodic: the record survives the firing; the driver runs *periodic
    // through the slab (stable storage) and then calls FinishPeriodic.
    set_state(slot, State::kFiring);
    fired.periodic = &s.fn;
  }
  return fired;
}

bool EventQueue::FinishPeriodic(EventId id) {
  const std::uint32_t slot = SlotOf(id);
  P2P_CHECK_MSG(slot != kNoSlot, "FinishPeriodic on an unknown event id");
  Slot& s = slab_[slot];
  if (state(slot) == State::kStopped) {
    FreeSlot(slot);
    return false;
  }
  P2P_CHECK_MSG(state(slot) == State::kFiring,
                "FinishPeriodic on an event that is not firing");
  // Deadline accumulates from the scheduled time, not from `now`, so
  // periodic timers do not drift. Seq is consumed *after* the callback ran
  // (the caller invokes the callback between Pop and FinishPeriodic),
  // matching the order a cancel-and-reschedule implementation would
  // consume it — same-seed runs stay byte-identical across the migration.
  Key& k = keys_[slot];
  if ((k.state & kRearmedBit) == 0) k.time += s.period;
  k.state = static_cast<std::uint8_t>(State::kScheduled);  // clears rearmed
  k.seq = next_seq_++;
  BackendAdd(slot);
  return true;
}

void EventQueue::EmitSlot(std::uint32_t slot, void* ctx, SinkFn sink) {
  Slot& s = slab_[slot];
  Fired fired;
  fired.time = keys_[slot].time;
  fired.id = IdOf(slot);
  set_state(slot, State::kFiring);
  fired.periodic = &s.fn;
  if (s.period < 0.0) {
    // One-shots fire in place too on the batched path: the callback runs
    // straight out of the slab (stable deque storage) instead of paying a
    // 64-byte move into Fired, and the record is recycled after it
    // returns. Cancel/Rearm treat a firing one-shot as already gone
    // (period < 0 in the kFiring branches), exactly as if the record had
    // been freed before the callback like Pop() does, so the two drivers
    // stay observationally identical.
    --live_count_;
    sink(ctx, fired);
    FreeSlot(slot);
  } else {
    sink(ctx, fired);
    FinishPeriodic(fired.id);
  }
}

void EventQueue::PopAllUpTo(Time t_end, void* ctx, SinkFn sink) {
  CheckTime(t_end);
  backend_->PopAllUpTo(t_end, ctx, sink);
}

bool EventQueue::OccurrenceLive(std::uint32_t slot, std::uint64_t seq) const {
  return slot < slab_.size() && state(slot) == State::kScheduled &&
         keys_[slot].seq == seq;
}

std::size_t EventQueue::heap_footprint() const {
  return backend_->footprint();
}

}  // namespace p2p::sim
