#include "sim/event_queue.h"

#include <utility>

namespace p2p::sim {

EventId EventQueue::Schedule(Time t, Callback cb) {
  P2P_CHECK_MSG(cb != nullptr, "scheduling a null callback");
  const EventId id = next_id_++;
  heap_.push(Entry{t, next_seq_++, id});
  callbacks_.emplace(id, std::move(cb));
  ++live_count_;
  return id;
}

bool EventQueue::Cancel(EventId id) {
  const auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  --live_count_;
  return true;
}

void EventQueue::DropCancelledHead() const {
  // `callbacks_` membership is the liveness test; heap entries whose id was
  // cancelled are garbage and get skipped here.
  while (!heap_.empty() &&
         callbacks_.find(heap_.top().id) == callbacks_.end()) {
    heap_.pop();
  }
}

Time EventQueue::PeekTime() const {
  P2P_CHECK(!empty());
  DropCancelledHead();
  return heap_.top().time;
}

EventQueue::Fired EventQueue::Pop() {
  P2P_CHECK(!empty());
  DropCancelledHead();
  const Entry e = heap_.top();
  heap_.pop();
  auto it = callbacks_.find(e.id);
  P2P_CHECK(it != callbacks_.end());
  Fired fired{e.time, e.id, std::move(it->second)};
  callbacks_.erase(it);
  --live_count_;
  return fired;
}

}  // namespace p2p::sim
