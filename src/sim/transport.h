// Unified simulated transport: the one message bus every protocol layer
// sends through (DHT heartbeats, maintenance lookups, SOMO gather and
// dissemination, packet-pair probes).
//
// Delivery delay comes from the net::LatencyOracle when one is configured,
// falling back to a per-send or bus-wide default; delivery order is the
// event queue's deterministic (time, seq) order, so with fault injection
// disabled routing traffic through the bus is bit-identical to the
// protocols scheduling their own delayed callbacks. The bus adds three
// things the per-protocol schedulers could not offer:
//   * a FaultInjector — per-link loss probability, delay jitter and
//     host-set partitions, all drawn from the simulation's deterministic
//     RNG stream (and consuming none of it while disabled, so seeded runs
//     are unchanged until a scenario opts in);
//   * per-protocol accounting (messages, simulated bytes, drops) via a
//     TransportStats snapshot;
//   * an optional bounded TraceSink recording every send for post-hoc
//     analysis (tools/trace_to_csv).
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/latency_oracle.h"
#include "obs/metrics.h"
#include "sim/event_queue.h"
#include "sim/trace.h"
#include "util/inline_fn.h"

namespace p2p::sim {

class Simulation;

// A typed inter-host message. Protocols address by host (the transport
// models the wire, not the overlay); the payload itself stays in the
// sender's closure — the simulation shares memory, only timing and loss
// are modelled.
struct Message {
  std::size_t src_host = 0;
  std::size_t dst_host = 0;
  Protocol protocol = Protocol::kOther;
  std::uint16_t kind = 0;  // protocol-defined discriminator (see TraceRecord)
  std::size_t bytes = 0;   // modelled wire size
};

// Bus-wide fault knobs. All default to "off"; while off the transport
// consumes no RNG, keeping pre-fault seeded runs bit-identical.
struct FaultConfig {
  // Probability each message is dropped at send time (per-link overrides
  // via Transport::SetLinkLoss take precedence).
  double loss_probability = 0.0;
  // Extra delivery delay, uniform in [0, jitter_ms), added per message.
  double jitter_ms = 0.0;
};

struct ProtocolStats {
  std::size_t sent = 0;       // admitted to the bus (includes drops)
  std::size_t delivered = 0;  // delivery callback actually ran
  std::size_t dropped = 0;    // killed by fault injection at send time
  // Drop breakdown by cause; dropped == dropped_loss + dropped_partition.
  std::size_t dropped_loss = 0;
  std::size_t dropped_partition = 0;
  std::size_t bytes = 0;      // modelled wire bytes of all sends
};

struct TransportStats {
  std::array<ProtocolStats, kProtocolCount> by_protocol;

  const ProtocolStats& protocol(Protocol p) const {
    return by_protocol[static_cast<std::size_t>(p)];
  }
  ProtocolStats Total() const {
    ProtocolStats t;
    for (const auto& s : by_protocol) {
      t.sent += s.sent;
      t.delivered += s.delivered;
      t.dropped += s.dropped;
      t.dropped_loss += s.dropped_loss;
      t.dropped_partition += s.dropped_partition;
      t.bytes += s.bytes;
    }
    return t;
  }
};

// Per-source-host accounting, enabled on demand (observe experiments): the
// ground truth each host's in-band SOMO telemetry is compared against.
struct HostStats {
  std::size_t sent = 0;
  std::size_t delivered = 0;  // deliveries of this host's sends
  std::size_t dropped = 0;
  std::size_t bytes = 0;
};

// Namespace-scope (not nested in Transport) so it can serve as a defaulted
// argument — GCC rejects brace-defaulting a nested aggregate with default
// member initializers inside its enclosing class.
struct SendOptions {
  // Delay when no oracle is configured and src != dst; < 0 means use the
  // bus default. Lets protocols keep their historical oracle-less delays
  // (heartbeat 50 ms vs SOMO hop 200 ms) without private delay paths.
  double fallback_delay_ms = -1.0;
  // Explicit base delay (>= 0) overriding the oracle/fallback entirely —
  // for traffic whose path cost was computed elsewhere (a multi-hop
  // overlay lookup's accumulated route latency). Jitter still applies.
  double delay_override_ms = -1.0;
  // Run the delivery callback inside Send() instead of scheduling an
  // event. For measurements that piggyback on already-delivered traffic
  // (packet-pair probes): loss/partition/accounting still apply, timing
  // is the caller's problem.
  bool inline_delivery = false;
};

// Cross-shard routing hook for sharded runs (sim/sharded.h installs one
// per shard). When a send's destination host lives on another shard, the
// delivery closure cannot be scheduled on the local event queue — it must
// travel through the owning ShardedSimulation's mailboxes and land on the
// destination shard at the next lookahead barrier. The transport computes
// faults, delay and tracing exactly as for a local send, then hands the
// resolved (message, absolute delivery time, closure) to the router.
class ShardRouter {
 public:
  virtual ~ShardRouter() = default;
  // Enqueue `deliver` for the destination shard at absolute `deliver_time`
  // (>= the end of the current lockstep window — checked by the kernel).
  // The remote test itself is NOT virtual: the bus reads the owner's
  // immutable host->shard map directly (set_shard_router hands it over),
  // so every local send on a sharded run pays one array load instead of a
  // virtual IsRemote call — only genuinely remote sends reach this hook.
  virtual void PostRemote(const Message& msg, Time deliver_time,
                          util::InlineFn deliver) = 0;
};

class Transport {
 public:
  // Move-only small-buffer callable: protocol delivery closures up to 48
  // bytes of captures schedule with zero allocation (see util/inline_fn.h).
  using DeliverFn = util::InlineFn;
  using SendOptions = sim::SendOptions;

  explicit Transport(Simulation& sim) : sim_(sim) {}

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  // --- delay model --------------------------------------------------------

  void set_oracle(const net::LatencyOracle* oracle) { oracle_ = oracle; }
  const net::LatencyOracle* oracle() const { return oracle_; }

  // Oracle-less one-way delay between distinct hosts. SOMO's deprecated
  // SomoConfig::default_hop_delay_ms forwards here.
  void set_default_delay_ms(double ms) { default_delay_ms_ = ms; }
  double default_delay_ms() const { return default_delay_ms_; }

  // Base one-way delay src → dst (no jitter): 0 for src == dst, else the
  // oracle latency, else `fallback` (when >= 0), else the bus default.
  double BaseDelayMs(std::size_t src, std::size_t dst,
                     double fallback = -1.0) const;

  // --- fault injection ----------------------------------------------------

  FaultConfig& faults() { return faults_; }
  const FaultConfig& faults() const { return faults_; }

  // Per-link (directed) loss probability, overriding the global one.
  void SetLinkLoss(std::size_t src, std::size_t dst, double p);
  // Both directions at once.
  void SetLinkLossBoth(std::size_t a, std::size_t b, double p);
  void ClearLinkLoss() { link_loss_.clear(); }

  // Isolate a host set: messages with exactly one endpoint inside any
  // partitioned set are dropped (traffic within a set, and among the
  // remainder, flows normally). Multiple sets may coexist.
  void Partition(std::vector<std::size_t> hosts);
  void HealPartitions() { partitions_.clear(); }
  bool Partitioned(std::size_t a, std::size_t b) const;

  // --- tracing ------------------------------------------------------------

  void set_trace(TraceSink* sink) { trace_ = sink; }
  TraceSink* trace() const { return trace_; }

  // --- metrics ------------------------------------------------------------

  // Attach a registry: per-protocol transport.* counters (sent, delivered,
  // dropped by cause, bytes) plus in-flight gauges are updated on every
  // send. Opt-in so the no-metrics hot path stays one null check; the
  // handles are resolved once here, not per message (the <5% overhead
  // budget is bench-enforced, BM_TransportThroughputMetrics).
  void set_metrics(obs::MetricsRegistry* registry);
  obs::MetricsRegistry* metrics() const { return metrics_; }

  // Per-source-host accounting for hosts [0, host_count). Cheap (vector
  // index per send); off until enabled.
  void EnablePerHostStats(std::size_t host_count);
  bool per_host_enabled() const { return !host_stats_.empty(); }
  const HostStats& host_stats(std::size_t host) const {
    return host_stats_.at(host);
  }

  // Messages scheduled on the bus whose delivery callback has not run yet
  // (inline deliveries never count). The queue-depth/in-flight-bytes load
  // signal the timeseries sampler records.
  std::size_t inflight_messages() const { return inflight_msgs_; }
  std::size_t inflight_bytes() const { return inflight_bytes_; }

  // --- sharding -----------------------------------------------------------

  // Route sends to remote hosts through `router` instead of the local
  // event queue. `shard_of_host` (host -> owning shard, immutable while
  // installed) and `own_shard` devirtualize the per-send remote test; a
  // host index at or past `host_count` is treated as local. Null router
  // (the default) keeps every delivery local.
  void set_shard_router(ShardRouter* router,
                        const std::uint32_t* shard_of_host = nullptr,
                        std::size_t host_count = 0,
                        std::uint32_t own_shard = 0) {
    router_ = router;
    shard_of_host_map_ = router == nullptr ? nullptr : shard_of_host;
    shard_host_count_ = router == nullptr ? 0 : host_count;
    own_shard_ = own_shard;
    P2P_CHECK_MSG(router_ == nullptr || shard_of_host_map_ != nullptr,
                  "a shard router needs the host -> shard map");
  }
  ShardRouter* shard_router() const { return router_; }

  // Account a cross-shard message's arrival on this (destination) shard's
  // bus: the sending shard counted sent/bytes/drops, the receiving shard
  // counts the delivery. Called by the sharded kernel's mailbox drain.
  void AccountRemoteDelivery(Protocol protocol, std::size_t src,
                             std::size_t bytes) {
    FinishDelivery(protocol, src, bytes, /*was_scheduled=*/false);
  }

  // --- sending ------------------------------------------------------------

  // Admit `msg` to the bus. Returns false when fault injection dropped it
  // (the delivery callback will never run); otherwise schedules `deliver`
  // at now + base delay + jitter (or runs it inline, see SendOptions). A
  // send whose destination a shard router marks remote is handed to the
  // router with the same accounting/trace treatment.
  bool Send(const Message& msg, DeliverFn deliver, SendOptions opts = {});

  TransportStats stats() const { return stats_; }
  void ResetStats() { stats_ = TransportStats{}; }

  // Resident bytes of the bus's tables: per-host stats (zero until
  // EnablePerHostStats), the in-flight slab, link-loss overrides and
  // partition sets, plus this object. Feeds the mem.bytes_per_host gauge.
  std::size_t MemoryBytes() const;

 private:
  static std::uint64_t LinkKey(std::size_t src, std::size_t dst) {
    return (static_cast<std::uint64_t>(src) << 32) ^
           static_cast<std::uint64_t>(dst);
  }
  double LossFor(std::size_t src, std::size_t dst) const;
  void FinishDelivery(Protocol protocol, std::size_t src, std::size_t bytes,
                      bool was_scheduled);
  void DeliverScheduled(std::uint32_t idx);

  // Scheduled deliveries park their callback + accounting fields in this
  // freelist-recycled slab so the event closure is just [this, idx] — 16
  // bytes, always inline in the event record, even when the protocol's own
  // delivery closure needs the heap. std::deque: records must not move
  // while a delivery callback sends more messages.
  struct Inflight {
    DeliverFn cb;
    Protocol protocol = Protocol::kOther;
    std::size_t src = 0;
    std::size_t bytes = 0;
    std::uint32_t next_free = kNoInflight;
  };
  static constexpr std::uint32_t kNoInflight = 0xffffffffu;

  // Registry handles cached at set_metrics time, one set per protocol.
  struct ProtoMetricHandles {
    obs::Counter* sent = nullptr;
    obs::Counter* delivered = nullptr;
    obs::Counter* dropped_loss = nullptr;
    obs::Counter* dropped_partition = nullptr;
    obs::Counter* bytes = nullptr;
  };

  Simulation& sim_;
  ShardRouter* router_ = nullptr;
  // Devirtualized remote test (see set_shard_router).
  const std::uint32_t* shard_of_host_map_ = nullptr;
  std::size_t shard_host_count_ = 0;
  std::uint32_t own_shard_ = 0;
  const net::LatencyOracle* oracle_ = nullptr;
  // Matches HeartbeatConfig's historical oracle-less delay.
  double default_delay_ms_ = 50.0;
  FaultConfig faults_;
  std::unordered_map<std::uint64_t, double> link_loss_;
  std::vector<std::unordered_set<std::size_t>> partitions_;
  TraceSink* trace_ = nullptr;
  TransportStats stats_;
  std::vector<HostStats> host_stats_;  // empty until EnablePerHostStats
  std::deque<Inflight> inflight_slab_;
  std::uint32_t inflight_free_ = kNoInflight;
  std::size_t inflight_msgs_ = 0;
  std::size_t inflight_bytes_ = 0;
  obs::MetricsRegistry* metrics_ = nullptr;
  std::array<ProtoMetricHandles, kProtocolCount> handles_;
  obs::Gauge* inflight_msgs_gauge_ = nullptr;
  obs::Gauge* inflight_bytes_gauge_ = nullptr;
};

}  // namespace p2p::sim
