#include "sim/transport.h"

#include <string>
#include <utility>

#include "sim/simulation.h"
#include "util/check.h"

namespace p2p::sim {

double Transport::BaseDelayMs(std::size_t src, std::size_t dst,
                              double fallback) const {
  if (src == dst) return 0.0;
  if (oracle_ != nullptr) return oracle_->Latency(src, dst);
  if (fallback >= 0.0) return fallback;
  return default_delay_ms_;
}

void Transport::SetLinkLoss(std::size_t src, std::size_t dst, double p) {
  P2P_CHECK(p >= 0.0 && p <= 1.0);
  P2P_CHECK_MSG(src < (1ULL << 32) && dst < (1ULL << 32),
                "host indices must fit the packed link key");
  link_loss_[LinkKey(src, dst)] = p;
}

void Transport::SetLinkLossBoth(std::size_t a, std::size_t b, double p) {
  SetLinkLoss(a, b, p);
  SetLinkLoss(b, a, p);
}

void Transport::Partition(std::vector<std::size_t> hosts) {
  partitions_.emplace_back(hosts.begin(), hosts.end());
}

bool Transport::Partitioned(std::size_t a, std::size_t b) const {
  for (const auto& set : partitions_) {
    const bool a_in = set.count(a) > 0;
    const bool b_in = set.count(b) > 0;
    if (a_in != b_in) return true;
  }
  return false;
}

double Transport::LossFor(std::size_t src, std::size_t dst) const {
  if (!link_loss_.empty()) {
    const auto it = link_loss_.find(LinkKey(src, dst));
    if (it != link_loss_.end()) return it->second;
  }
  return faults_.loss_probability;
}

void Transport::set_metrics(obs::MetricsRegistry* registry) {
  metrics_ = registry;
  if (registry == nullptr) {
    handles_ = {};
    inflight_msgs_gauge_ = nullptr;
    inflight_bytes_gauge_ = nullptr;
    return;
  }
  for (std::size_t i = 0; i < kProtocolCount; ++i) {
    const std::string prefix =
        std::string("transport.") + ProtocolName(static_cast<Protocol>(i));
    handles_[i].sent = &registry->counter(prefix + ".sent");
    handles_[i].delivered = &registry->counter(prefix + ".delivered");
    handles_[i].dropped_loss = &registry->counter(prefix + ".dropped.loss");
    handles_[i].dropped_partition =
        &registry->counter(prefix + ".dropped.partition");
    handles_[i].bytes = &registry->counter(prefix + ".bytes");
  }
  inflight_msgs_gauge_ = &registry->gauge("transport.inflight.messages");
  inflight_bytes_gauge_ = &registry->gauge("transport.inflight.bytes");
}

void Transport::EnablePerHostStats(std::size_t host_count) {
  if (host_stats_.size() < host_count) host_stats_.resize(host_count);
}

void Transport::FinishDelivery(Protocol protocol, std::size_t src,
                               std::size_t bytes, bool was_scheduled) {
  const auto pi = static_cast<std::size_t>(protocol);
  ++stats_.by_protocol[pi].delivered;
  if (src < host_stats_.size()) ++host_stats_[src].delivered;
  if (was_scheduled) {
    --inflight_msgs_;
    inflight_bytes_ -= bytes;
  }
  if (metrics_ != nullptr) {
    handles_[pi].delivered->Inc();
    inflight_msgs_gauge_->Set(static_cast<double>(inflight_msgs_));
    inflight_bytes_gauge_->Set(static_cast<double>(inflight_bytes_));
  }
}

bool Transport::Send(const Message& msg, DeliverFn deliver,
                     SendOptions opts) {
  const auto pi = static_cast<std::size_t>(msg.protocol);
  auto& ps = stats_.by_protocol[pi];
  ++ps.sent;
  ps.bytes += msg.bytes;
  HostStats* hs = msg.src_host < host_stats_.size()
                      ? &host_stats_[msg.src_host]
                      : nullptr;
  if (hs != nullptr) {
    ++hs->sent;
    hs->bytes += msg.bytes;
  }
  if (metrics_ != nullptr) {
    handles_[pi].sent->Inc();
    handles_[pi].bytes->Inc(static_cast<double>(msg.bytes));
  }

  // Fault decisions, in a fixed order so seeded runs reproduce: partition
  // (no RNG), then loss (one Bernoulli draw only when the link is lossy),
  // then jitter (one uniform draw only when enabled). With every fault off
  // this path consumes no RNG at all.
  DropCause cause = DropCause::kNone;
  if (!partitions_.empty() && Partitioned(msg.src_host, msg.dst_host))
    cause = DropCause::kPartition;
  if (cause == DropCause::kNone) {
    const double loss = LossFor(msg.src_host, msg.dst_host);
    if (loss > 0.0 && sim_.rng().Bernoulli(loss)) cause = DropCause::kLoss;
  }
  const bool dropped = cause != DropCause::kNone;
  double delay = 0.0;
  if (!dropped) {
    delay = opts.delay_override_ms >= 0.0
                ? opts.delay_override_ms
                : BaseDelayMs(msg.src_host, msg.dst_host,
                              opts.fallback_delay_ms);
    if (faults_.jitter_ms > 0.0)
      delay += sim_.rng().Uniform(0.0, faults_.jitter_ms);
  }

  if (trace_ != nullptr) {
    trace_->Append(TraceRecord{sim_.now(), msg.src_host, msg.dst_host,
                               msg.protocol, msg.kind, msg.bytes, dropped,
                               cause});
  }
  if (dropped) {
    ++ps.dropped;
    if (cause == DropCause::kLoss) {
      ++ps.dropped_loss;
    } else {
      ++ps.dropped_partition;
    }
    if (hs != nullptr) ++hs->dropped;
    if (metrics_ != nullptr) {
      (cause == DropCause::kLoss ? handles_[pi].dropped_loss
                                 : handles_[pi].dropped_partition)
          ->Inc();
    }
    return false;
  }
  if (router_ != nullptr && msg.dst_host < shard_host_count_ &&
      shard_of_host_map_[msg.dst_host] != own_shard_) {
    // Cross-shard: the closure is delivered by the destination shard after
    // the next lookahead barrier. It never enters this shard's queue, so
    // the in-flight gauges (a per-shard queue-depth signal) skip it; the
    // destination bus counts the delivery via AccountRemoteDelivery.
    P2P_CHECK_MSG(!opts.inline_delivery,
                  "inline delivery cannot cross shards");
    router_->PostRemote(msg, sim_.now() + delay, std::move(deliver));
    return true;
  }
  if (opts.inline_delivery) {
    FinishDelivery(msg.protocol, msg.src_host, msg.bytes,
                   /*was_scheduled=*/false);
    if (deliver) deliver();
    return true;
  }
  ++inflight_msgs_;
  inflight_bytes_ += msg.bytes;
  if (metrics_ != nullptr) {
    inflight_msgs_gauge_->Set(static_cast<double>(inflight_msgs_));
    inflight_bytes_gauge_->Set(static_cast<double>(inflight_bytes_));
  }
  std::uint32_t idx;
  if (inflight_free_ != kNoInflight) {
    idx = inflight_free_;
    inflight_free_ = inflight_slab_[idx].next_free;
  } else {
    idx = static_cast<std::uint32_t>(inflight_slab_.size());
    inflight_slab_.emplace_back();
  }
  Inflight& rec = inflight_slab_[idx];
  rec.cb = std::move(deliver);
  rec.protocol = msg.protocol;
  rec.src = msg.src_host;
  rec.bytes = msg.bytes;
  sim_.After(delay, [this, idx] { DeliverScheduled(idx); });
  return true;
}

void Transport::DeliverScheduled(std::uint32_t idx) {
  Inflight& rec = inflight_slab_[idx];
  const Protocol protocol = rec.protocol;
  const std::size_t src = rec.src;
  const std::size_t bytes = rec.bytes;
  // Free the record before running the callback: deliveries routinely send
  // follow-up messages, which reuse the slot without growing the slab.
  DeliverFn cb = std::move(rec.cb);
  rec.cb = nullptr;
  rec.next_free = inflight_free_;
  inflight_free_ = idx;
  FinishDelivery(protocol, src, bytes, /*was_scheduled=*/true);
  if (cb) cb();
}

std::size_t Transport::MemoryBytes() const {
  std::size_t bytes = sizeof(*this);
  bytes += host_stats_.capacity() * sizeof(HostStats);
  bytes += inflight_slab_.size() * sizeof(Inflight);
  bytes += link_loss_.bucket_count() * sizeof(void*) +
           link_loss_.size() *
               (sizeof(std::pair<const std::uint64_t, double>) +
                2 * sizeof(void*));
  bytes += partitions_.capacity() * sizeof(std::unordered_set<std::size_t>);
  for (const auto& set : partitions_) {
    bytes += set.bucket_count() * sizeof(void*) +
             set.size() * (sizeof(std::size_t) + 2 * sizeof(void*));
  }
  return bytes;
}

}  // namespace p2p::sim
