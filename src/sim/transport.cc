#include "sim/transport.h"

#include <utility>

#include "sim/simulation.h"
#include "util/check.h"

namespace p2p::sim {

double Transport::BaseDelayMs(std::size_t src, std::size_t dst,
                              double fallback) const {
  if (src == dst) return 0.0;
  if (oracle_ != nullptr) return oracle_->Latency(src, dst);
  if (fallback >= 0.0) return fallback;
  return default_delay_ms_;
}

void Transport::SetLinkLoss(std::size_t src, std::size_t dst, double p) {
  P2P_CHECK(p >= 0.0 && p <= 1.0);
  P2P_CHECK_MSG(src < (1ULL << 32) && dst < (1ULL << 32),
                "host indices must fit the packed link key");
  link_loss_[LinkKey(src, dst)] = p;
}

void Transport::SetLinkLossBoth(std::size_t a, std::size_t b, double p) {
  SetLinkLoss(a, b, p);
  SetLinkLoss(b, a, p);
}

void Transport::Partition(std::vector<std::size_t> hosts) {
  partitions_.emplace_back(hosts.begin(), hosts.end());
}

bool Transport::Partitioned(std::size_t a, std::size_t b) const {
  for (const auto& set : partitions_) {
    const bool a_in = set.count(a) > 0;
    const bool b_in = set.count(b) > 0;
    if (a_in != b_in) return true;
  }
  return false;
}

double Transport::LossFor(std::size_t src, std::size_t dst) const {
  if (!link_loss_.empty()) {
    const auto it = link_loss_.find(LinkKey(src, dst));
    if (it != link_loss_.end()) return it->second;
  }
  return faults_.loss_probability;
}

bool Transport::Send(const Message& msg, DeliverFn deliver,
                     SendOptions opts) {
  auto& ps = stats_.by_protocol[static_cast<std::size_t>(msg.protocol)];
  ++ps.sent;
  ps.bytes += msg.bytes;

  // Fault decisions, in a fixed order so seeded runs reproduce: partition
  // (no RNG), then loss (one Bernoulli draw only when the link is lossy),
  // then jitter (one uniform draw only when enabled). With every fault off
  // this path consumes no RNG at all.
  bool dropped = !partitions_.empty() && Partitioned(msg.src_host, msg.dst_host);
  if (!dropped) {
    const double loss = LossFor(msg.src_host, msg.dst_host);
    if (loss > 0.0 && sim_.rng().Bernoulli(loss)) dropped = true;
  }
  double delay = 0.0;
  if (!dropped) {
    delay = opts.delay_override_ms >= 0.0
                ? opts.delay_override_ms
                : BaseDelayMs(msg.src_host, msg.dst_host,
                              opts.fallback_delay_ms);
    if (faults_.jitter_ms > 0.0)
      delay += sim_.rng().Uniform(0.0, faults_.jitter_ms);
  }

  if (trace_ != nullptr) {
    trace_->Append(TraceRecord{sim_.now(), msg.src_host, msg.dst_host,
                               msg.protocol, msg.kind, msg.bytes, dropped});
  }
  if (dropped) {
    ++ps.dropped;
    return false;
  }
  if (opts.inline_delivery) {
    ++ps.delivered;
    if (deliver) deliver();
    return true;
  }
  sim_.After(delay, [this, protocol = msg.protocol,
                     cb = std::move(deliver)] {
    ++stats_.by_protocol[static_cast<std::size_t>(protocol)].delivered;
    if (cb) cb();
  });
  return true;
}

}  // namespace p2p::sim
