// Discrete-event scheduler: the kernel hot path of every simulation.
//
// Events are (time, seq)-ordered; ties on time break by insertion order
// (seq), which makes simulations deterministic. The public surface is a
// facade over two interchangeable ordering backends:
//
//   * kTimingWheel (default) — a hierarchical timing wheel (Varghese &
//     Lauck): three levels of 256 power-of-two-millisecond buckets
//     (1 ms / 256 ms / 65,536 ms per slot, ~4.7 h horizon), entries
//     cascading down as the clock approaches, with a far-future overflow
//     min-heap beyond the horizon. Schedule/cancel/pop are amortized O(1)
//     for the timer-heavy workloads the protocol stack generates.
//   * kBinaryHeap — the retained reference implementation (std::push_heap
//     over a flat vector, lazy cancellation with compaction). Kept so
//     differential tests can prove the wheel pops the exact same order,
//     and so benches can price the swap.
//
// Both backends order the same slab of event records, so the observable
// behaviour — pop order, ids, callbacks — is identical by construction of
// everything except the ordering data structure itself
// (tests/sim_kernel_test.cc enforces it with randomized differential runs).
//
// Event records live in a slab (stable storage, freelist-recycled) and
// callbacks are util::InlineFn, so steady-state scheduling performs no
// allocation for closures up to 48 bytes. Periodic timers are first-class:
// SchedulePeriodic keeps one record alive across firings and Rearm/
// FinishPeriodic move its deadline in place, replacing the historical
// cancel-and-reschedule churn that heap compaction existed to fight.
//
// Ordering contract (both backends): callers never schedule earlier than
// the time of the last popped event. The owning Simulation enforces
// t >= now; the raw queue CHECKs only t >= 0 and finiteness.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <type_traits>
#include <vector>

#include "util/check.h"
#include "util/inline_fn.h"

namespace p2p::sim {

// Simulated time in milliseconds. All paper parameters (link latencies,
// heartbeat periods, SOMO reporting intervals) are given in ms or s.
using Time = double;

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

enum class SchedulerKind {
  kTimingWheel,  // hierarchical timing wheel + overflow heap (default)
  kBinaryHeap,   // retained reference: binary min-heap
};

class EventQueue {
 public:
  using Callback = util::InlineFn;

  explicit EventQueue(SchedulerKind kind = SchedulerKind::kTimingWheel);
  ~EventQueue();

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  SchedulerKind scheduler() const { return kind_; }

  // Schedule `cb` at absolute time `t` (must be finite, >= 0, and >= the
  // last popped event's time — the owning Simulation enforces the
  // stronger t >= now). Returns an id usable with Cancel()/Rearm().
  EventId Schedule(Time t, Callback cb);

  // First-class periodic timer: fires at `first`, then every `period` ms.
  // The callback is stored once for the timer's whole lifetime; each
  // firing re-arms the same record in place (fresh seq, no reallocation).
  // Cancel(id) stops future firings; Rearm(id, t) moves the next deadline.
  EventId SchedulePeriodic(Time first, Time period, Callback cb);

  // Cancel a pending event (or stop a periodic timer, including from
  // inside its own callback). Returns false if the event already fired,
  // was already cancelled, or never existed.
  bool Cancel(EventId id);

  // Move a pending event's (or a periodic timer's next) deadline to `t`
  // in place: same id, same stored callback, fresh FIFO seq — the
  // allocation-free replacement for Cancel+Schedule. Also valid from
  // inside a periodic timer's own callback (overrides the deadline+period
  // re-arm). Returns false for unknown/already-fired ids.
  bool Rearm(EventId id, Time t);

  bool empty() const { return live_count_ == 0; }
  std::size_t size() const { return live_count_; }

  // Entries currently held by the ordering backend, live or cancelled.
  // Bounded by 2 * size() + 1 (wheel buckets cancel eagerly; only the
  // lazy structures — the reference heap and the wheel's overflow heap —
  // carry garbage, and both compact at the half-full mark).
  std::size_t heap_footprint() const;

  // Time of the earliest live event. Requires !empty().
  Time PeekTime() const;

  // Pop the earliest live event. Requires !empty().
  //
  // One-shot events hand their callback out by move (`cb`). Periodic
  // events instead expose a pointer to the stored callback (`periodic`,
  // stable for the duration of the firing); after running it the driver
  // must call FinishPeriodic(id) to re-arm the timer.
  struct Fired {
    Time time = 0.0;
    EventId id = kInvalidEventId;
    Callback cb;
    Callback* periodic = nullptr;
    bool is_periodic() const { return periodic != nullptr; }
  };
  Fired Pop();

  // Complete a periodic firing: re-arms the timer at deadline + period
  // (or at the Rearm()ed time) unless it was cancelled from inside the
  // callback. Returns true when the timer is live again.
  bool FinishPeriodic(EventId id);

  // Drain every event with time <= t_end into `sink`, in (time, seq)
  // order, with ONE virtual backend call for the whole batch — the wheel
  // backend walks its due-run cursor inline instead of paying a
  // peek+pop virtual round trip per event. EVERY firing — one-shot or
  // periodic — arrives with `periodic` pointing at the stored callback
  // (invoke-in-place: no 64-byte closure move per event); the sink runs
  // it through the pointer and must NOT call FinishPeriodic. One-shot
  // records are recycled after the sink returns (Cancel/Rearm on the
  // firing id report false, as if a Pop() driver had already freed it);
  // periodics are re-armed internally. Events the sink's callbacks
  // schedule at times <= t_end fire within the same drain, exactly as a
  // Pop() loop would.
  using SinkFn = void (*)(void* ctx, Fired& fired);
  void PopAllUpTo(Time t_end, void* ctx, SinkFn sink);

  template <typename F>
  void PopAllUpTo(Time t_end, F&& f) {
    PopAllUpTo(t_end, &f, [](void* ctx, Fired& fired) {
      (*static_cast<std::remove_reference_t<F>*>(ctx))(fired);
    });
  }

  // Liveness test used by the lazy backends: is occurrence `seq` of slab
  // record `slot` still scheduled? (Backend plumbing, not client API.)
  bool OccurrenceLive(std::uint32_t slot, std::uint64_t seq) const;

  // Slab footprint introspection: current record capacity, the most
  // records ever live at once, and the live count. Long simulations with
  // bursty phases (mass joins, churn storms) can watch slab_capacity()
  // fall back toward slab_high_water() / live after the burst drains —
  // FreeSlot opportunistically trims trailing free records.
  std::size_t slab_capacity() const { return slab_.size(); }
  std::size_t slab_high_water() const { return slab_hwm_; }

 private:
  enum class State : std::uint8_t {
    kFree,       // slab record on the freelist
    kScheduled,  // owned by the ordering backend
    kFiring,     // periodic popped, callback running, awaiting FinishPeriodic
    kStopped,    // periodic cancelled while firing; freed by FinishPeriodic
  };

  // Hot-field split, round two. Everything the queue machinery reads
  // about a pending event — ordering keys, generation, lifecycle state,
  // freelist link, and the backend's location word — packs into one
  // 32-byte Key record (keys_ below), two per cache line, so serving a
  // wheel tick or recycling a fired record touches ONE line of metadata
  // instead of gathering time/seq/state/location from four parallel
  // arrays at random slot indices. What remains in the slab record is
  // exactly what the firing itself touches: the callback and its period,
  // packed into a single 64-byte line. Net: one fired one-shot costs two
  // cold lines (key + slab), and everything else it touches rides along
  // for free. The deque keeps callback addresses stable while they run
  // and schedule into a growing slab.
  struct alignas(64) Slot {
    Callback fn;
    Time period = -1.0;  // < 0: one-shot
  };
  static_assert(sizeof(Slot) == 64,
                "event slab record must stay one cache line");

  struct alignas(32) Key {
    Time time = 0.0;
    std::uint64_t seq = 0;
    // While scheduled: the ordering backend's private location word (the
    // wheel packs bucket/position here). While free: the freelist link.
    std::uint64_t backend_word = 0;
    std::uint32_t gen = 0;
    // State enum in the low bits, rearmed-while-firing flag in the top
    // bit (see kRearmedBit).
    std::uint8_t state = 0;
  };
  static_assert(sizeof(Key) == 32,
                "two key records per cache line, never straddling");

  class Backend;
  class WheelBackend;
  class HeapBackend;

  static constexpr std::uint32_t kNoSlot = 0xffffffffu;
  // Slabs below this size are never trimmed — reclaiming a few KB is not
  // worth the freelist rebuild.
  static constexpr std::size_t kMinTrimSlots = 1024;

  // Ids pack (generation, slab index + 1); generation bumps on every free,
  // so a stale id can never cancel the record's next tenant. The +1 keeps
  // kInvalidEventId (0) unreachable.
  EventId IdOf(std::uint32_t slot) const {
    return (static_cast<EventId>(keys_[slot].gen) << 32) |
           (static_cast<EventId>(slot) + 1);
  }

  // Key::state packs the State enum in the low bits and the
  // rearmed-while-firing flag in the top bit, so a firing touches one
  // byte of metadata — in a line it has already pulled in.
  static constexpr std::uint8_t kRearmedBit = 0x80;
  State state(std::uint32_t slot) const {
    return static_cast<State>(keys_[slot].state & ~kRearmedBit);
  }
  void set_state(std::uint32_t slot, State s) {
    keys_[slot].state =
        static_cast<std::uint8_t>(s) | (keys_[slot].state & kRearmedBit);
  }
  bool rearmed_while_firing(std::uint32_t slot) const {
    return (keys_[slot].state & kRearmedBit) != 0;
  }
  void set_rearmed_while_firing(std::uint32_t slot, bool on) {
    if (on) {
      keys_[slot].state |= kRearmedBit;
    } else {
      keys_[slot].state &= static_cast<std::uint8_t>(~kRearmedBit);
    }
  }
  // Returns kNoSlot when the id does not name a current slab record.
  std::uint32_t SlotOf(EventId id) const;

  std::uint32_t AllocSlot();
  void FreeSlot(std::uint32_t slot);
  // backend_->Add devirtualised for the default wheel: Schedule pays this
  // once per event, and the static cast lets Place() inline into the
  // scheduling hot path.
  void BackendAdd(std::uint32_t slot);
  void MaybeTrimSlab();
  // Fire one already-popped slot through a PopAllUpTo sink.
  void EmitSlot(std::uint32_t slot, void* ctx, SinkFn sink);
  static void CheckTime(Time t);

  SchedulerKind kind_;
  // std::deque: callbacks are invoked through pointers into the slab while
  // the callback itself schedules new events (growing the slab), so
  // records must never move.
  std::deque<Slot> slab_;
  // Slot-indexed record metadata (see Key above). Grown in lockstep with
  // slab_; accessed by index only, so vector reallocation on growth is
  // safe.
  std::vector<Key> keys_;
  mutable std::unique_ptr<Backend> backend_;
  std::uint32_t free_head_ = kNoSlot;
  std::uint64_t next_seq_ = 1;
  std::size_t live_count_ = 0;
  std::size_t slab_hwm_ = 0;  // peak slab_.size()
  // Generations of trimmed trailing records, by absolute slot index. A
  // record that regrows at a trimmed index resumes from the retired
  // generation, so ids handed out to the pre-trim tenant still fail
  // SlotOf() against the new tenant.
  std::vector<std::uint32_t> retired_gen_;
  std::size_t frees_since_trim_ = 0;
};

}  // namespace p2p::sim
