// Discrete-event queue: a min-heap of (time, seq) ordered events.
//
// Ties on time break by insertion order (seq), which makes simulations
// deterministic. Events can be cancelled by id; cancelled entries are
// skipped lazily on pop, and the heap is compacted whenever cancelled
// entries outnumber live ones — without this, workloads that cancel most
// of what they schedule (heartbeat timers rearmed on every message) grow
// the heap without bound.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "util/check.h"

namespace p2p::sim {

// Simulated time in milliseconds. All paper parameters (link latencies,
// heartbeat periods, SOMO reporting intervals) are given in ms or s.
using Time = double;

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class EventQueue {
 public:
  using Callback = std::function<void()>;

  // Schedule `cb` at absolute time `t` (must be >= current sim time, which
  // the owning Simulation enforces). Returns an id usable with Cancel().
  EventId Schedule(Time t, Callback cb);

  // Cancel a pending event. Returns false if the event already fired,
  // was already cancelled, or never existed.
  bool Cancel(EventId id);

  bool empty() const { return live_count_ == 0; }
  std::size_t size() const { return live_count_; }

  // Heap entries currently held, live or cancelled. Bounded by
  // 2 * size() + 1 thanks to compaction; exposed for tests.
  std::size_t heap_footprint() const { return heap_.size(); }

  // Time of the earliest live event. Requires !empty().
  Time PeekTime() const;

  // Pop and return the earliest live event. Requires !empty().
  struct Fired {
    Time time;
    EventId id;
    Callback cb;
  };
  Fired Pop();

 private:
  struct Entry {
    Time time;
    std::uint64_t seq;
    EventId id;
    // std::*_heap builds a max-heap; invert for earliest-first, with seq as
    // the FIFO tie-break.
    bool operator<(const Entry& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  void DropCancelledHead() const;
  void CompactIfMostlyGarbage();

  // Callbacks stored out of the heap so Entry stays trivially movable.
  // A plain vector managed with the <algorithm> heap functions (rather
  // than std::priority_queue) so compaction can filter it in place.
  mutable std::vector<Entry> heap_;
  std::unordered_map<EventId, Callback> callbacks_;
  std::uint64_t next_seq_ = 1;
  EventId next_id_ = 1;
  std::size_t live_count_ = 0;
};

}  // namespace p2p::sim
