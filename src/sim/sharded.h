// Sharded deterministic simulation kernel: N per-thread shards, each owning
// its own Simulation (timing-wheel EventQueue, slab, RNG stream, metrics
// registry, Transport bus), advancing in lockstep windows bounded by
// cross-shard lookahead — the classic conservative-lookahead PDES scheme,
// applied across cores.
//
// Correctness argument: the lookahead is a lower bound on cross-shard
// message latency — either the single structural constant `lookahead_ms`
// (net::PlanShards derives it from the transit-stub link classes), or the
// measured per-shard-pair matrix (net::ExtractLookahead). With the matrix,
// each shard j's next window ends at min over senders i of
// (C_i + matrix[i][j]) where C_i is shard i's committed time — the
// bounded-lag recurrence: a message from i sent at t >= C_i arrives at
// >= C_i + matrix[i][j] >= j's window end, never inside j's current
// window. Shards therefore process their windows with no inbound traffic
// to miss; cross-shard sends accumulate in per-(src,dst) mailboxes and are
// exchanged at the barrier. The uniform-lookahead path is the matrix path
// with every entry equal: all window ends coincide and the kernel steps in
// the classic fixed windows (the retained differential baseline).
//
// Determinism contract:
//   * same seed + same shard count -> byte-identical runs, independent of
//     thread schedule. Each shard's event order is (time, seq) within its
//     own queue; mailbox drains insert in the canonical (deliver_time,
//     src_shard, send_seq) order on the owning shard's thread, so queue
//     seqs — and with them every downstream tie-break — are schedule-
//     independent. Shard RNG streams are split deterministically from the
//     master seed (ShardSeed). Window schedules depend only on the
//     lookahead configuration, never on threads.
//   * a 1-shard run IS the serial kernel: RunUntil forwards to the single
//     Simulation (no windows, no barriers), and ShardSeed(seed, 0, 1) ==
//     seed, so the event log matches sim::Simulation byte for byte
//     (tests/sim_shard_test.cc pins it the way the SchedulerAB tests
//     pinned the wheel to the heap).
//
// Exchange barrier: cross-shard sends stage in flat SoA columns — one
// (deliver[], cb[], order[]) column per (src, dst) pair. Each sending
// shard sorts its own columns in parallel before the barrier (a stable
// sort of the u32 `order` permutation on deliver time; the 64-byte
// callbacks never move), the barrier itself claims columns with O(1)
// vector swaps, and DrainInbox k-way merges the pre-sorted runs straight
// into the destination queue — no stable_sort over the concatenation, no
// per-message `Routed` records. The retained per-message path
// (`coalesced_exchange = false`) keeps the old concatenate+stable_sort
// drain for differential tests; both produce byte-identical schedules.
//
// Cross-shard sends route through Transport::ShardRouter: the sending
// shard resolves faults/delay/trace and counts sent/bytes, the receiving
// shard counts the delivery at drain time. Because the simulation shares
// one address space, the closure itself crosses shards; the barrier
// provides the happens-before edge, and protocol closures must only touch
// destination-shard-owned state (HeartbeatProtocol::BindShard and
// SomoProtocol::BindShard construct exactly such closures).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "obs/metrics.h"
#include "sim/simulation.h"
#include "util/thread_pool.h"

namespace p2p::sim {

struct ShardedOptions {
  std::size_t shards = 1;
  // Uniform lockstep window length; must be a lower bound on cross-shard
  // one-way latency (net::ShardPlan::lookahead_ms). Required > 0 when
  // shards > 1. This is the retained fixed-lookahead path.
  double lookahead_ms = 0.0;
  // Optional measured per-pair lookahead (row-major shards x shards;
  // net::ShardPlan::lookahead_matrix). When non-empty, windows advance by
  // the binding constraint min_i (C_i + matrix[i][j]) per shard instead of
  // the uniform worst case. Every off-diagonal entry must be a sound lower
  // bound on that channel's latency and >= lookahead_ms.
  std::vector<double> lookahead_matrix;
  std::uint64_t seed = 1;
  SchedulerKind scheduler = SchedulerKind::kTimingWheel;
  // Worker threads for the window phase; 0 = min(shards, hardware).
  // Results are identical for any value — the barrier design makes the
  // thread schedule unobservable — so benches on small machines can run
  // shards sequentially and still measure the same event streams.
  std::size_t threads = 0;
  // Coalesced SoA exchange (default) vs the retained per-message
  // concatenate+stable_sort path. Schedules are byte-identical either way.
  bool coalesced_exchange = true;
};

// Shard s's RNG seed. Identity for the 1-shard run (serial equivalence);
// SplitMix64-derived, statistically independent streams otherwise.
std::uint64_t ShardSeed(std::uint64_t seed, std::size_t shard,
                        std::size_t shard_count);

class ShardedSimulation {
 public:
  explicit ShardedSimulation(const ShardedOptions& opts);
  ~ShardedSimulation();

  ShardedSimulation(const ShardedSimulation&) = delete;
  ShardedSimulation& operator=(const ShardedSimulation&) = delete;

  std::size_t shard_count() const { return shards_.size(); }
  double lookahead_ms() const { return lookahead_ms_; }
  // Lower bound on the latency of the (src -> dst) cross-shard channel —
  // the matrix entry, or the uniform lookahead when no matrix was given.
  double PairLookaheadMs(std::size_t src, std::size_t dst) const {
    return pair_lookahead_.empty() ? lookahead_ms_
                                   : pair_lookahead_[src * shards_.size() + dst];
  }
  // min over ordered pairs of PairLookaheadMs — the binding window bound.
  double min_lookahead_ms() const { return min_lookahead_ms_; }
  Time now() const { return now_; }

  Simulation& shard(std::size_t s) { return *shards_[s]->sim; }
  const Simulation& shard(std::size_t s) const { return *shards_[s]->sim; }

  // Install the host -> shard map and wire a ShardRouter into every
  // shard's transport (skipped at 1 shard: every host is local and the
  // serial fast path must not pay a per-send virtual call). Call once,
  // before RunUntil.
  void SetHostShards(std::vector<std::uint32_t> shard_of_host);
  std::uint32_t ShardOfHost(std::size_t host) const {
    return shard_of_host_.empty() ? 0 : shard_of_host_.at(host);
  }
  const std::vector<std::uint32_t>& host_shards() const {
    return shard_of_host_;
  }

  // Enqueue `cb` on shard `dst` at absolute virtual time `deliver_time`.
  // Callable from shard `src`'s thread during a window; the callback runs
  // on `dst` after the barrier. CHECKs the lookahead contract
  // (deliver_time >= the destination's current window end, and — with a
  // matrix — >= the sender's clock + the pair bound, which validates the
  // extraction against every observed delivery).
  void Post(std::size_t src, std::size_t dst, Time deliver_time,
            EventQueue::Callback cb);

  // Advance every shard to `t_end` in lockstep windows (or directly, at
  // 1 shard). Returns events fired across all shards during this call.
  std::size_t RunUntil(Time t_end);

  // --- introspection ------------------------------------------------------

  std::size_t fired_events() const;           // total across shards
  std::size_t windows() const { return windows_; }
  std::size_t cross_shard_messages() const { return cross_messages_; }

  // Critical-path wall time: sum over windows of (slowest shard's busy
  // time + barrier exchange time). This is the run's wall time on a
  // machine with >= shard_count() free cores; on smaller machines shards
  // run (partly) sequentially and real wall time approaches the sum of
  // busy times instead. Benches report throughput against this
  // denominator — the design guarantees bit-identical results either way,
  // so the projection prices the algorithm, not the host.
  double critical_path_ns() const { return critical_ns_; }

  // Wall-clock profile of the barrier machinery (ScopeTimer-style
  // histograms, non-deterministic): per window, "shard.drain_ms" /
  // "shard.window_ms" / "shard.sort_ms" record the slowest shard's inbox
  // drain, window advance, and outbox pre-sort, and "shard.exchange_ms"
  // the barrier-thread mailbox swap. Merge into a run report's registry to
  // surface barrier overhead per run without a bench rebuild.
  const obs::MetricsRegistry& kernel_profile() const { return profile_; }

  // Merge every shard's registry into `out` in shard order (the spec
  // order MergeFrom needs for reproducible float sums).
  void MergeMetrics(obs::MetricsRegistry& out) const;
  // Per-protocol bus totals summed across shards. `sent` counts once (on
  // the sending shard) and `delivered` once (on the receiving shard), so
  // the merged totals obey the same sent >= delivered + dropped algebra
  // as a serial run.
  TransportStats MergedTransportStats() const;

 private:
  struct Pending {
    Time deliver = 0.0;
    EventQueue::Callback cb;
  };
  struct Routed {
    Time deliver = 0.0;
    std::uint32_t src_shard = 0;
    EventQueue::Callback cb;
  };
  // One (src, dst) staging column of the coalesced exchange: parallel
  // deliver/cb arrays in append (send_seq) order plus the sorted
  // permutation. Sorting moves 4-byte indices; the callbacks stay put
  // until the drain moves each exactly once into the destination queue.
  struct OutColumn {
    std::vector<Time> deliver;
    std::vector<EventQueue::Callback> cb;
    std::vector<std::uint32_t> order;  // filled by SortOutboxes
    std::size_t size() const { return deliver.size(); }
    bool empty() const { return deliver.empty(); }
    void clear() {
      deliver.clear();
      cb.clear();
      order.clear();
    }
  };
  class Router;
  struct Shard {
    std::unique_ptr<Simulation> sim;
    std::unique_ptr<Router> router;
    // outbox[dst]: sends posted by this shard during the current window,
    // in send order (the canonical seq component). Touched only by this
    // shard's thread inside a window and by the barrier thread outside —
    // the ParallelFor join is the synchronisation point. `outbox` is the
    // coalesced SoA form; `outbox_pm` the retained per-message form.
    std::vector<OutColumn> outbox;
    std::vector<std::vector<Pending>> outbox_pm;
    // staged[src]: cross-shard arrivals from shard `src`, claimed at the
    // barrier by an O(1) swap with src's outbox column (ExchangeMailboxes
    // does no per-message work). This shard's own thread merges the staged
    // runs into canonical order and schedules them onto `sim` at the next
    // window's start (DrainInbox) — both the pre-sort and the queue
    // insertion parallelise instead of serialising on the barrier thread.
    std::vector<OutColumn> staged;
    std::vector<std::vector<Pending>> staged_pm;
    std::vector<Routed> inbox;  // per-message drain scratch (capacity reuse)
    std::vector<std::size_t> merge_pos;  // k-way merge cursors (scratch)
    Time window_end = 0.0;  // end of the window this shard is running/ran
    double busy_ns = 0.0;   // window phase wall time, this window
    double drain_ns = 0.0;  // inbox drain portion of busy_ns
    double sort_ns = 0.0;   // outbox pre-sort portion of busy_ns
  };

  void PostRemoteMessage(std::uint32_t src_shard, const Message& msg,
                         Time deliver_time, EventQueue::Callback deliver);
  void ExchangeMailboxes();
  void DrainInbox(Shard& shard) const;
  void SortOutboxes(Shard& shard) const;
  bool Idle() const;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::uint32_t> shard_of_host_;
  double lookahead_ms_ = 0.0;
  // Row-major per-pair bounds (empty on the uniform path) and their min.
  std::vector<double> pair_lookahead_;
  double min_lookahead_ms_ = 0.0;
  bool coalesced_ = true;
  Time now_ = 0.0;  // min over shards of committed time
  std::size_t windows_ = 0;
  std::size_t cross_messages_ = 0;
  double critical_ns_ = 0.0;
  obs::MetricsRegistry profile_;  // wall-clock barrier profile (see above)
  std::unique_ptr<util::ThreadPool> pool_;  // null at 1 shard
};

}  // namespace p2p::sim
