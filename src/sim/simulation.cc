#include "sim/simulation.h"

#include <utility>

#include "obs/scope_timer.h"

namespace p2p::sim {

EventId Simulation::At(Time t, EventQueue::Callback cb) {
  P2P_CHECK_MSG(t >= now_, "cannot schedule in the past: t=" << t << " now="
                                                             << now_);
  return queue_.Schedule(t, std::move(cb));
}

EventId Simulation::After(Time dt, EventQueue::Callback cb) {
  P2P_CHECK_MSG(dt >= 0.0, "negative delay " << dt);
  return At(now_ + dt, std::move(cb));
}

Simulation::PeriodicToken Simulation::Every(Time period, Time initial_delay,
                                            EventQueue::Callback cb) {
  P2P_CHECK(period > 0.0);
  P2P_CHECK(initial_delay >= 0.0);
  const EventId id =
      queue_.SchedulePeriodic(now_ + initial_delay, period, std::move(cb));
  return PeriodicToken{id, &queue_};
}

void Simulation::CancelPeriodic(PeriodicToken& token) {
  if (token.queue != nullptr) token.queue->Cancel(token.id);
  token.queue = nullptr;
}

bool Simulation::Rearm(EventId id, Time t) {
  P2P_CHECK_MSG(t >= now_, "cannot rearm into the past: t=" << t << " now="
                                                            << now_);
  return queue_.Rearm(id, t);
}

bool Simulation::Step() {
  if (queue_.empty()) return false;
  auto fired = queue_.Pop();
  P2P_DCHECK(fired.time >= now_);
  now_ = fired.time;
  ++fired_;
  if (fired.is_periodic()) {
    (*fired.periodic)();
    queue_.FinishPeriodic(fired.id);
  } else {
    fired.cb();
  }
  return true;
}

std::size_t Simulation::RunUntil(Time t_end) {
  obs::ScopeTimer timer(run_profile_);
  std::size_t n = 0;
  // One batched drain instead of a peek+pop virtual round trip per event;
  // the queue re-arms periodic timers itself on this path.
  queue_.PopAllUpTo(t_end, [&](EventQueue::Fired& fired) {
    P2P_DCHECK(fired.time >= now_);
    now_ = fired.time;
    ++fired_;
    ++n;
    if (fired.is_periodic()) {
      (*fired.periodic)();
    } else {
      fired.cb();
    }
  });
  // Advance the clock to t_end even if no event lands exactly there, so
  // successive RunUntil calls observe monotonically increasing time.
  if (t_end > now_) now_ = t_end;
  // Deterministic slab telemetry: event populations are seed-driven, so
  // these gauges are comparable across same-seed runs.
  metrics_.gauge("kernel.slab_hwm")
      .Set(static_cast<double>(queue_.slab_high_water()));
  metrics_.gauge("kernel.slab_slots")
      .Set(static_cast<double>(queue_.slab_capacity()));
  return n;
}

std::size_t Simulation::Run(std::size_t max_events) {
  obs::ScopeTimer timer(run_profile_);
  std::size_t n = 0;
  while (n < max_events && Step()) ++n;
  return n;
}

}  // namespace p2p::sim
