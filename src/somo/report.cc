#include "somo/report.h"

#include <unordered_map>

#include "obs/telemetry_codec.h"
#include "util/check.h"

namespace p2p::somo {

NodeReport AggregateReport::Member(std::size_t i) const {
  P2P_DCHECK(i < size());
  NodeReport r;
  r.node = node(i);
  r.host = host(i);
  r.generated_at = generated_[i];
  const auto c = coordinates(i);
  r.coordinates.assign(c.begin(), c.end());
  r.up_kbps = up_[i];
  r.down_kbps = down_[i];
  r.degrees.total = deg_total_[i];
  const auto slots = degree_slots(i);
  r.degrees.taken.assign(slots.begin(), slots.end());
  r.capacity = capacity_[i];
  if (const HostTelemetry* t = telemetry(i)) r.telemetry = *t;
  return r;
}

void AggregateReport::Add(const NodeReport& r) {
  oldest = std::min(oldest, r.generated_at);
  newest = std::max(newest, r.generated_at);
  if (r.capacity > best_capacity) {
    best_capacity = r.capacity;
    best_capacity_node = r.node;
  }
  node_.push_back(r.node == dht::kNoNode
                      ? kNone32
                      : static_cast<std::uint32_t>(r.node));
  host_.push_back(static_cast<std::uint32_t>(r.host));
  generated_.push_back(r.generated_at);
  up_.push_back(r.up_kbps);
  down_.push_back(r.down_kbps);
  capacity_.push_back(r.capacity);
  deg_total_.push_back(r.degrees.total);
  coord_off_.push_back(static_cast<std::uint32_t>(coord_pool_.size()));
  coord_dim_.push_back(static_cast<std::uint16_t>(r.coordinates.size()));
  coord_pool_.insert(coord_pool_.end(), r.coordinates.begin(),
                     r.coordinates.end());
  deg_off_.push_back(static_cast<std::uint32_t>(deg_pool_.size()));
  deg_used_.push_back(static_cast<std::uint16_t>(r.degrees.taken.size()));
  deg_pool_.insert(deg_pool_.end(), r.degrees.taken.begin(),
                   r.degrees.taken.end());
  if (r.telemetry.valid()) {
    tel_off_.push_back(static_cast<std::uint32_t>(tel_pool_.size()));
    tel_pool_.push_back(r.telemetry);
  } else {
    tel_off_.push_back(kNone32);
  }
}

void AggregateReport::AppendFrom(const AggregateReport& other,
                                 std::size_t j) {
  node_.push_back(other.node_[j]);
  host_.push_back(other.host_[j]);
  generated_.push_back(other.generated_[j]);
  up_.push_back(other.up_[j]);
  down_.push_back(other.down_[j]);
  capacity_.push_back(other.capacity_[j]);
  deg_total_.push_back(other.deg_total_[j]);
  const auto c = other.coordinates(j);
  coord_off_.push_back(static_cast<std::uint32_t>(coord_pool_.size()));
  coord_dim_.push_back(other.coord_dim_[j]);
  coord_pool_.insert(coord_pool_.end(), c.begin(), c.end());
  const auto slots = other.degree_slots(j);
  deg_off_.push_back(static_cast<std::uint32_t>(deg_pool_.size()));
  deg_used_.push_back(other.deg_used_[j]);
  deg_pool_.insert(deg_pool_.end(), slots.begin(), slots.end());
  if (other.tel_off_[j] == kNone32) {
    tel_off_.push_back(kNone32);
  } else {
    tel_off_.push_back(static_cast<std::uint32_t>(tel_pool_.size()));
    tel_pool_.push_back(other.tel_pool_[other.tel_off_[j]]);
  }
}

void AggregateReport::ReplaceFrom(std::size_t i, const AggregateReport& other,
                                  std::size_t j) {
  node_[i] = other.node_[j];
  host_[i] = other.host_[j];
  generated_[i] = other.generated_[j];
  up_[i] = other.up_[j];
  down_[i] = other.down_[j];
  capacity_[i] = other.capacity_[j];
  deg_total_[i] = other.deg_total_[j];
  const auto c = other.coordinates(j);
  if (other.coord_dim_[j] == coord_dim_[i]) {
    std::copy(c.begin(), c.end(), coord_pool_.begin() + coord_off_[i]);
  } else {
    coord_off_[i] = static_cast<std::uint32_t>(coord_pool_.size());
    coord_dim_[i] = other.coord_dim_[j];
    coord_pool_.insert(coord_pool_.end(), c.begin(), c.end());
  }
  const auto slots = other.degree_slots(j);
  if (other.deg_used_[j] == deg_used_[i]) {
    std::copy(slots.begin(), slots.end(), deg_pool_.begin() + deg_off_[i]);
  } else {
    deg_off_[i] = static_cast<std::uint32_t>(deg_pool_.size());
    deg_used_[i] = other.deg_used_[j];
    deg_pool_.insert(deg_pool_.end(), slots.begin(), slots.end());
  }
  if (other.tel_off_[j] == kNone32) {
    tel_off_[i] = kNone32;
  } else if (tel_off_[i] != kNone32) {
    tel_pool_[tel_off_[i]] = other.tel_pool_[other.tel_off_[j]];
  } else {
    tel_off_[i] = static_cast<std::uint32_t>(tel_pool_.size());
    tel_pool_.push_back(other.tel_pool_[other.tel_off_[j]]);
  }
}

void AggregateReport::Merge(const AggregateReport& other) {
  if (other.empty()) return;
  oldest = std::min(oldest, other.oldest);
  newest = std::max(newest, other.newest);
  if (other.best_capacity > best_capacity) {
    best_capacity = other.best_capacity;
    best_capacity_node = other.best_capacity_node;
  }
  for (std::size_t j = 0; j < other.size(); ++j) AppendFrom(other, j);
}

void AggregateReport::RecomputeExtrema() {
  oldest = std::numeric_limits<double>::infinity();
  newest = -std::numeric_limits<double>::infinity();
  best_capacity = -std::numeric_limits<double>::infinity();
  best_capacity_node = dht::kNoNode;
  for (std::size_t i = 0; i < size(); ++i) {
    oldest = std::min(oldest, generated_[i]);
    newest = std::max(newest, generated_[i]);
    if (capacity_[i] > best_capacity) {
      best_capacity = capacity_[i];
      best_capacity_node = node(i);
    }
  }
}

void AggregateReport::MergeKeepFreshest(const AggregateReport& other) {
  if (other.empty()) return;
  // Index existing members; replace with fresher duplicates, append new.
  std::unordered_map<std::uint32_t, std::size_t> index;
  index.reserve(size() + other.size());
  for (std::size_t i = 0; i < size(); ++i) index.emplace(node_[i], i);
  for (std::size_t j = 0; j < other.size(); ++j) {
    const auto it = index.find(other.node_[j]);
    if (it == index.end()) {
      index.emplace(other.node_[j], size());
      AppendFrom(other, j);
    } else if (other.generated_[j] > generated_[it->second]) {
      ReplaceFrom(it->second, other, j);
    }
  }
  // Recompute freshness window and capacity argmax from scratch (the
  // replaced entries may have carried the old extrema).
  RecomputeExtrema();
}

void AggregateReport::Clear() {
  node_.clear();
  host_.clear();
  generated_.clear();
  up_.clear();
  down_.clear();
  capacity_.clear();
  deg_total_.clear();
  coord_off_.clear();
  coord_dim_.clear();
  coord_pool_.clear();
  deg_off_.clear();
  deg_used_.clear();
  deg_pool_.clear();
  tel_off_.clear();
  tel_pool_.clear();
  oldest = std::numeric_limits<double>::infinity();
  newest = -std::numeric_limits<double>::infinity();
  best_capacity = -std::numeric_limits<double>::infinity();
  best_capacity_node = dht::kNoNode;
}

void AggregateReport::Reserve(std::size_t n, std::size_t coord_dims,
                              std::size_t degree_slots, bool with_telemetry) {
  node_.reserve(n);
  host_.reserve(n);
  generated_.reserve(n);
  up_.reserve(n);
  down_.reserve(n);
  capacity_.reserve(n);
  deg_total_.reserve(n);
  coord_off_.reserve(n);
  coord_dim_.reserve(n);
  coord_pool_.reserve(n * coord_dims);
  deg_off_.reserve(n);
  deg_used_.reserve(n);
  deg_pool_.reserve(n * degree_slots);
  tel_off_.reserve(n);
  if (with_telemetry) tel_pool_.reserve(n);
}

std::size_t AggregateReport::MemoryBytes() const {
  return sizeof(*this) + node_.capacity() * sizeof(std::uint32_t) +
         host_.capacity() * sizeof(std::uint32_t) +
         generated_.capacity() * sizeof(double) +
         up_.capacity() * sizeof(double) + down_.capacity() * sizeof(double) +
         capacity_.capacity() * sizeof(double) +
         deg_total_.capacity() * sizeof(std::int32_t) +
         coord_off_.capacity() * sizeof(std::uint32_t) +
         coord_dim_.capacity() * sizeof(std::uint16_t) +
         coord_pool_.capacity() * sizeof(double) +
         deg_off_.capacity() * sizeof(std::uint32_t) +
         deg_used_.capacity() * sizeof(std::uint16_t) +
         deg_pool_.capacity() * sizeof(DegreeSlot) +
         tel_off_.capacity() * sizeof(std::uint32_t) +
         tel_pool_.capacity() * sizeof(HostTelemetry);
}

namespace {

constexpr std::uint8_t kWireVersion = 1;
constexpr std::uint8_t kTelemetryValid = 0x01;

inline std::int64_t AsI64(std::size_t v) { return static_cast<std::int64_t>(v); }

}  // namespace

// One encoder for both the byte-materialising and the counting sink, so
// EncodedSize and EncodeAggregate can never disagree. Walks the SoA columns
// in record order — the exact sink-call sequence the AoS members loop made,
// so the wire format is unchanged.
template <typename Sink>
void EncodeTo(const AggregateReport& agg, Sink& sink) {
  sink.Byte(kWireVersion);
  sink.Varint(agg.size());
  if (agg.empty()) return;
  const std::uint64_t base = obs::QuantizeTicks(agg.newest);
  sink.Varint(base);
  sink.Varint(agg.best_capacity_node == dht::kNoNode
                  ? 0
                  : static_cast<std::uint64_t>(agg.best_capacity_node) + 1);
  std::int64_t prev_node = 0;
  HostTelemetry prev_tel;  // zero counters: the delta chain's seed
  for (std::size_t i = 0; i < agg.size(); ++i) {
    const std::int64_t node = AsI64(agg.node(i));
    sink.Zigzag(node - prev_node);
    prev_node = node;
    sink.Zigzag(static_cast<std::int64_t>(agg.host(i)) - node);
    const std::uint64_t gen = obs::QuantizeTicks(agg.generated_[i]);
    P2P_DCHECK(gen <= base);
    sink.Varint(base - gen);
    const auto coords = agg.coordinates(i);
    sink.Varint(coords.size());
    for (const double c : coords) sink.F16(c);
    sink.F16(agg.up_[i]);
    sink.F16(agg.down_[i]);
    sink.F16(agg.capacity_[i]);
    sink.Zigzag(agg.deg_total_[i]);
    const auto slots = agg.degree_slots(i);
    sink.Varint(slots.size());
    for (const DegreeSlot& s : slots) {
      P2P_DCHECK(s.session >= -1);
      P2P_DCHECK(s.priority >= 0 && s.priority <= 3);
      sink.Varint((static_cast<std::uint64_t>(s.session + 1) << 2) |
                  static_cast<std::uint64_t>(s.priority & 3));
    }
    const HostTelemetry* tel = agg.telemetry(i);
    if (tel == nullptr) {
      sink.Byte(0);
      continue;
    }
    sink.Byte(kTelemetryValid);
    sink.Zigzag(static_cast<std::int64_t>(gen) -
                static_cast<std::int64_t>(obs::QuantizeTicks(tel->sampled_at)));
    sink.Zigzag(AsI64(tel->msgs_sent) - AsI64(prev_tel.msgs_sent));
    sink.Zigzag(AsI64(tel->msgs_delivered) - AsI64(prev_tel.msgs_delivered));
    sink.Zigzag(AsI64(tel->msgs_dropped) - AsI64(prev_tel.msgs_dropped));
    sink.Zigzag(AsI64(tel->bytes_sent) - AsI64(prev_tel.bytes_sent));
    sink.Zigzag(AsI64(tel->suspects) - AsI64(prev_tel.suspects));
    prev_tel = *tel;
  }
}

std::vector<std::uint8_t> EncodeAggregate(const AggregateReport& agg) {
  obs::WireWriter w;
  EncodeTo(agg, w);
  return w.Take();
}

std::size_t EncodedSize(const AggregateReport& agg) {
  obs::WireCounter c;
  EncodeTo(agg, c);
  return c.size();
}

std::size_t AggregateReport::SerializedBytes() const {
  return EncodedSize(*this);
}

bool DecodeAggregate(const std::uint8_t* data, std::size_t size,
                     AggregateReport* out) {
  P2P_CHECK(out != nullptr);
  out->Clear();
  obs::WireReader r(data, size);
  if (r.Byte() != kWireVersion) return false;
  const std::uint64_t count = r.Varint();
  if (!r.ok()) return false;
  if (count == 0) return r.AtEnd();
  if (count > size) return false;  // each record costs >= 1 byte
  const std::uint64_t base = r.Varint();
  const std::uint64_t best_plus1 = r.Varint();
  std::int64_t prev_node = 0;
  HostTelemetry prev_tel;
  for (std::uint64_t i = 0; i < count && r.ok(); ++i) {
    NodeReport rec;
    prev_node += r.Zigzag();
    rec.node = static_cast<dht::NodeIndex>(prev_node);
    rec.host = static_cast<net::HostIdx>(prev_node + r.Zigzag());
    const std::uint64_t age = r.Varint();
    if (age > base) return false;
    const std::uint64_t gen = base - age;
    rec.generated_at = obs::TicksToMs(gen);
    const std::uint64_t dim = r.Varint();
    if (dim > size) return false;
    rec.coordinates.resize(dim);
    for (std::uint64_t d = 0; d < dim && r.ok(); ++d)
      rec.coordinates[d] = r.F16();
    rec.up_kbps = r.F16();
    rec.down_kbps = r.F16();
    rec.capacity = r.F16();
    rec.degrees.total = static_cast<int>(r.Zigzag());
    const std::uint64_t used = r.Varint();
    if (used > size) return false;
    rec.degrees.taken.resize(used);
    for (std::uint64_t s = 0; s < used && r.ok(); ++s) {
      const std::uint64_t packed = r.Varint();
      rec.degrees.taken[s].session =
          static_cast<SessionId>(packed >> 2) - 1;
      rec.degrees.taken[s].priority = static_cast<int>(packed & 3);
    }
    const std::uint8_t flags = r.Byte();
    if (flags & kTelemetryValid) {
      const std::int64_t sample_delta = r.Zigzag();
      const std::int64_t sampled = static_cast<std::int64_t>(gen) - sample_delta;
      if (sampled < 0) return false;
      rec.telemetry.sampled_at =
          obs::TicksToMs(static_cast<std::uint64_t>(sampled));
      rec.telemetry.msgs_sent =
          static_cast<std::size_t>(AsI64(prev_tel.msgs_sent) + r.Zigzag());
      rec.telemetry.msgs_delivered = static_cast<std::size_t>(
          AsI64(prev_tel.msgs_delivered) + r.Zigzag());
      rec.telemetry.msgs_dropped = static_cast<std::size_t>(
          AsI64(prev_tel.msgs_dropped) + r.Zigzag());
      rec.telemetry.bytes_sent =
          static_cast<std::size_t>(AsI64(prev_tel.bytes_sent) + r.Zigzag());
      rec.telemetry.suspects =
          static_cast<std::size_t>(AsI64(prev_tel.suspects) + r.Zigzag());
      prev_tel = rec.telemetry;
    }
    if (!r.ok()) return false;
    out->Add(rec);
  }
  if (!r.ok() || !r.AtEnd()) return false;
  // Freshness window and best-capacity value are derived state, recomputed
  // by Add from the decoded (quantized) members — but the argmax *node*
  // travels in the header (F16 ties could otherwise elect a different
  // champion than the encoder saw), so re-point it and its value here.
  out->best_capacity = -std::numeric_limits<double>::infinity();
  out->best_capacity_node = dht::kNoNode;
  if (best_plus1 != 0) {
    out->best_capacity_node = static_cast<dht::NodeIndex>(best_plus1 - 1);
    for (std::size_t m = 0; m < out->size(); ++m) {
      if (out->node(m) == out->best_capacity_node) {
        out->best_capacity = out->capacity(m);
        break;
      }
    }
  }
  return true;
}

}  // namespace p2p::somo
