#include "somo/report.h"

#include <unordered_map>

#include "obs/telemetry_codec.h"
#include "util/check.h"

namespace p2p::somo {

void AggregateReport::Add(NodeReport r) {
  oldest = std::min(oldest, r.generated_at);
  newest = std::max(newest, r.generated_at);
  if (r.capacity > best_capacity) {
    best_capacity = r.capacity;
    best_capacity_node = r.node;
  }
  members.push_back(std::move(r));
}

void AggregateReport::Merge(const AggregateReport& other) {
  if (other.empty()) return;
  oldest = std::min(oldest, other.oldest);
  newest = std::max(newest, other.newest);
  if (other.best_capacity > best_capacity) {
    best_capacity = other.best_capacity;
    best_capacity_node = other.best_capacity_node;
  }
  members.insert(members.end(), other.members.begin(), other.members.end());
}

void AggregateReport::MergeKeepFreshest(const AggregateReport& other) {
  if (other.empty()) return;
  // Index existing members; replace with fresher duplicates, append new.
  std::unordered_map<dht::NodeIndex, std::size_t> index;
  index.reserve(members.size());
  for (std::size_t i = 0; i < members.size(); ++i)
    index.emplace(members[i].node, i);
  for (const NodeReport& r : other.members) {
    const auto it = index.find(r.node);
    if (it == index.end()) {
      index.emplace(r.node, members.size());
      members.push_back(r);
    } else if (r.generated_at > members[it->second].generated_at) {
      members[it->second] = r;
    }
  }
  // Recompute freshness window and capacity argmax from scratch (the
  // replaced entries may have carried the old extrema).
  oldest = std::numeric_limits<double>::infinity();
  newest = -std::numeric_limits<double>::infinity();
  best_capacity = -std::numeric_limits<double>::infinity();
  best_capacity_node = dht::kNoNode;
  for (const NodeReport& r : members) {
    oldest = std::min(oldest, r.generated_at);
    newest = std::max(newest, r.generated_at);
    if (r.capacity > best_capacity) {
      best_capacity = r.capacity;
      best_capacity_node = r.node;
    }
  }
}

void AggregateReport::Clear() {
  members.clear();
  oldest = std::numeric_limits<double>::infinity();
  newest = -std::numeric_limits<double>::infinity();
  best_capacity = -std::numeric_limits<double>::infinity();
  best_capacity_node = dht::kNoNode;
}

namespace {

constexpr std::uint8_t kWireVersion = 1;
constexpr std::uint8_t kTelemetryValid = 0x01;

inline std::int64_t AsI64(std::size_t v) { return static_cast<std::int64_t>(v); }

// One encoder for both the byte-materialising and the counting sink, so
// EncodedSize and EncodeAggregate can never disagree.
template <typename Sink>
void EncodeTo(const AggregateReport& agg, Sink& sink) {
  sink.Byte(kWireVersion);
  sink.Varint(agg.members.size());
  if (agg.members.empty()) return;
  const std::uint64_t base = obs::QuantizeTicks(agg.newest);
  sink.Varint(base);
  sink.Varint(agg.best_capacity_node == dht::kNoNode
                  ? 0
                  : static_cast<std::uint64_t>(agg.best_capacity_node) + 1);
  std::int64_t prev_node = 0;
  HostTelemetry prev_tel;  // zero counters: the delta chain's seed
  for (const NodeReport& r : agg.members) {
    const std::int64_t node = AsI64(r.node);
    sink.Zigzag(node - prev_node);
    prev_node = node;
    sink.Zigzag(static_cast<std::int64_t>(r.host) - node);
    const std::uint64_t gen = obs::QuantizeTicks(r.generated_at);
    P2P_DCHECK(gen <= base);
    sink.Varint(base - gen);
    sink.Varint(r.coordinates.size());
    for (const double c : r.coordinates) sink.F16(c);
    sink.F16(r.up_kbps);
    sink.F16(r.down_kbps);
    sink.F16(r.capacity);
    sink.Zigzag(r.degrees.total);
    sink.Varint(r.degrees.taken.size());
    for (const DegreeSlot& s : r.degrees.taken) {
      P2P_DCHECK(s.session >= -1);
      P2P_DCHECK(s.priority >= 0 && s.priority <= 3);
      sink.Varint((static_cast<std::uint64_t>(s.session + 1) << 2) |
                  static_cast<std::uint64_t>(s.priority & 3));
    }
    if (!r.telemetry.valid()) {
      sink.Byte(0);
      continue;
    }
    sink.Byte(kTelemetryValid);
    sink.Zigzag(static_cast<std::int64_t>(gen) -
                static_cast<std::int64_t>(obs::QuantizeTicks(r.telemetry.sampled_at)));
    sink.Zigzag(AsI64(r.telemetry.msgs_sent) - AsI64(prev_tel.msgs_sent));
    sink.Zigzag(AsI64(r.telemetry.msgs_delivered) -
                AsI64(prev_tel.msgs_delivered));
    sink.Zigzag(AsI64(r.telemetry.msgs_dropped) -
                AsI64(prev_tel.msgs_dropped));
    sink.Zigzag(AsI64(r.telemetry.bytes_sent) - AsI64(prev_tel.bytes_sent));
    sink.Zigzag(AsI64(r.telemetry.suspects) - AsI64(prev_tel.suspects));
    prev_tel = r.telemetry;
  }
}

}  // namespace

std::vector<std::uint8_t> EncodeAggregate(const AggregateReport& agg) {
  obs::WireWriter w;
  EncodeTo(agg, w);
  return w.Take();
}

std::size_t EncodedSize(const AggregateReport& agg) {
  obs::WireCounter c;
  EncodeTo(agg, c);
  return c.size();
}

std::size_t AggregateReport::SerializedBytes() const {
  return EncodedSize(*this);
}

bool DecodeAggregate(const std::uint8_t* data, std::size_t size,
                     AggregateReport* out) {
  P2P_CHECK(out != nullptr);
  out->Clear();
  obs::WireReader r(data, size);
  if (r.Byte() != kWireVersion) return false;
  const std::uint64_t count = r.Varint();
  if (!r.ok()) return false;
  if (count == 0) return r.AtEnd();
  if (count > size) return false;  // each record costs >= 1 byte
  const std::uint64_t base = r.Varint();
  const std::uint64_t best_plus1 = r.Varint();
  std::int64_t prev_node = 0;
  HostTelemetry prev_tel;
  out->members.reserve(count);
  for (std::uint64_t i = 0; i < count && r.ok(); ++i) {
    NodeReport rec;
    prev_node += r.Zigzag();
    rec.node = static_cast<dht::NodeIndex>(prev_node);
    rec.host = static_cast<net::HostIdx>(prev_node + r.Zigzag());
    const std::uint64_t age = r.Varint();
    if (age > base) return false;
    const std::uint64_t gen = base - age;
    rec.generated_at = obs::TicksToMs(gen);
    const std::uint64_t dim = r.Varint();
    if (dim > size) return false;
    rec.coordinates.resize(dim);
    for (std::uint64_t d = 0; d < dim && r.ok(); ++d)
      rec.coordinates[d] = r.F16();
    rec.up_kbps = r.F16();
    rec.down_kbps = r.F16();
    rec.capacity = r.F16();
    rec.degrees.total = static_cast<int>(r.Zigzag());
    const std::uint64_t used = r.Varint();
    if (used > size) return false;
    rec.degrees.taken.resize(used);
    for (std::uint64_t s = 0; s < used && r.ok(); ++s) {
      const std::uint64_t packed = r.Varint();
      rec.degrees.taken[s].session =
          static_cast<SessionId>(packed >> 2) - 1;
      rec.degrees.taken[s].priority = static_cast<int>(packed & 3);
    }
    const std::uint8_t flags = r.Byte();
    if (flags & kTelemetryValid) {
      const std::int64_t sample_delta = r.Zigzag();
      const std::int64_t sampled = static_cast<std::int64_t>(gen) - sample_delta;
      if (sampled < 0) return false;
      rec.telemetry.sampled_at =
          obs::TicksToMs(static_cast<std::uint64_t>(sampled));
      rec.telemetry.msgs_sent =
          static_cast<std::size_t>(AsI64(prev_tel.msgs_sent) + r.Zigzag());
      rec.telemetry.msgs_delivered = static_cast<std::size_t>(
          AsI64(prev_tel.msgs_delivered) + r.Zigzag());
      rec.telemetry.msgs_dropped = static_cast<std::size_t>(
          AsI64(prev_tel.msgs_dropped) + r.Zigzag());
      rec.telemetry.bytes_sent =
          static_cast<std::size_t>(AsI64(prev_tel.bytes_sent) + r.Zigzag());
      rec.telemetry.suspects =
          static_cast<std::size_t>(AsI64(prev_tel.suspects) + r.Zigzag());
      prev_tel = rec.telemetry;
    }
    if (!r.ok()) return false;
    out->members.push_back(std::move(rec));
  }
  if (!r.ok() || !r.AtEnd()) return false;
  // Freshness window and capacity argmax are derived state: recompute from
  // the decoded (quantized) members. The argmax *node* travels in the
  // header — F16 ties could otherwise elect a different champion than the
  // encoder saw — and its value is the node's decoded capacity.
  for (const NodeReport& m : out->members) {
    out->oldest = std::min(out->oldest, m.generated_at);
    out->newest = std::max(out->newest, m.generated_at);
  }
  if (best_plus1 != 0) {
    out->best_capacity_node = static_cast<dht::NodeIndex>(best_plus1 - 1);
    for (const NodeReport& m : out->members) {
      if (m.node == out->best_capacity_node) {
        out->best_capacity = m.capacity;
        break;
      }
    }
  }
  return true;
}

}  // namespace p2p::somo

