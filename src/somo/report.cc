#include "somo/report.h"

#include <unordered_map>

namespace p2p::somo {

void AggregateReport::Add(NodeReport r) {
  oldest = std::min(oldest, r.generated_at);
  newest = std::max(newest, r.generated_at);
  if (r.capacity > best_capacity) {
    best_capacity = r.capacity;
    best_capacity_node = r.node;
  }
  members.push_back(std::move(r));
}

void AggregateReport::Merge(const AggregateReport& other) {
  if (other.empty()) return;
  oldest = std::min(oldest, other.oldest);
  newest = std::max(newest, other.newest);
  if (other.best_capacity > best_capacity) {
    best_capacity = other.best_capacity;
    best_capacity_node = other.best_capacity_node;
  }
  members.insert(members.end(), other.members.begin(), other.members.end());
}

void AggregateReport::MergeKeepFreshest(const AggregateReport& other) {
  if (other.empty()) return;
  // Index existing members; replace with fresher duplicates, append new.
  std::unordered_map<dht::NodeIndex, std::size_t> index;
  index.reserve(members.size());
  for (std::size_t i = 0; i < members.size(); ++i)
    index.emplace(members[i].node, i);
  for (const NodeReport& r : other.members) {
    const auto it = index.find(r.node);
    if (it == index.end()) {
      index.emplace(r.node, members.size());
      members.push_back(r);
    } else if (r.generated_at > members[it->second].generated_at) {
      members[it->second] = r;
    }
  }
  // Recompute freshness window and capacity argmax from scratch (the
  // replaced entries may have carried the old extrema).
  oldest = std::numeric_limits<double>::infinity();
  newest = -std::numeric_limits<double>::infinity();
  best_capacity = -std::numeric_limits<double>::infinity();
  best_capacity_node = dht::kNoNode;
  for (const NodeReport& r : members) {
    oldest = std::min(oldest, r.generated_at);
    newest = std::max(newest, r.generated_at);
    if (r.capacity > best_capacity) {
      best_capacity = r.capacity;
      best_capacity_node = r.node;
    }
  }
}

void AggregateReport::Clear() {
  members.clear();
  oldest = std::numeric_limits<double>::infinity();
  newest = -std::numeric_limits<double>::infinity();
  best_capacity = -std::numeric_limits<double>::infinity();
  best_capacity_node = dht::kNoNode;
}

}  // namespace p2p::somo
