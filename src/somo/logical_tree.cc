#include "somo/logical_tree.h"

#include <algorithm>

#include "util/check.h"

namespace p2p::somo {

namespace {
constexpr unsigned __int128 kFullSpace =
    static_cast<unsigned __int128>(1) << 64;
}  // namespace

double LogicalTree::CenterOf(std::size_t level, std::size_t index,
                             std::size_t fanout) {
  // Centre of region [index/k^level, (index+1)/k^level).
  double width = 1.0;
  for (std::size_t i = 0; i < level; ++i) width /= static_cast<double>(fanout);
  return width * (static_cast<double>(index) + 0.5);
}

LogicalTree::LogicalTree(const dht::Ring& ring, std::size_t fanout)
    : fanout_(fanout) {
  P2P_CHECK_MSG(fanout_ >= 2, "SOMO fanout must be at least 2");
  const auto alive = ring.SortedAlive();
  P2P_CHECK_MSG(!alive.empty(), "cannot build SOMO over an empty ring");
  sorted_.reserve(alive.size());
  for (const dht::NodeIndex n : alive)
    sorted_.push_back({ring.node(n).id(), n});
  // SortedAlive is id-sorted already; keep the invariant explicit.
  P2P_DCHECK(std::is_sorted(sorted_.begin(), sorted_.end(),
                            [](const dht::LeafsetEntry& a,
                               const dht::LeafsetEntry& b) {
                              return a.id < b.id;
                            }));
  Build(0, 0, 0, kFullSpace, kNoLogical);
}

dht::NodeIndex LogicalTree::OwnerOf(dht::NodeId key) const {
  // zone(x) = (pred, x]: first id at or clockwise after the key.
  const auto it = std::lower_bound(
      sorted_.begin(), sorted_.end(), key,
      [](const dht::LeafsetEntry& e, dht::NodeId v) { return e.id < v; });
  return it == sorted_.end() ? sorted_.front().node : it->node;
}

dht::NodeId LogicalTree::PredIdOf(std::size_t pos) const {
  return sorted_[(pos + sorted_.size() - 1) % sorted_.size()].id;
}

std::size_t LogicalTree::CountIdsInRegion(
    dht::NodeId lo, unsigned __int128 width) const {
  if (width >= kFullSpace) return sorted_.size();
  // Regions produced by splitting [0, 2^64) never wrap.
  const dht::NodeId hi = lo + static_cast<dht::NodeId>(width - 1);
  const auto first = std::lower_bound(
      sorted_.begin(), sorted_.end(), lo,
      [](const dht::LeafsetEntry& e, dht::NodeId v) { return e.id < v; });
  const auto last = std::upper_bound(
      sorted_.begin(), sorted_.end(), hi,
      [](dht::NodeId v, const dht::LeafsetEntry& e) { return v < e.id; });
  return static_cast<std::size_t>(last - first);
}

std::vector<dht::NodeIndex> LogicalTree::IdsInRegion(
    dht::NodeId lo, unsigned __int128 width) const {
  std::vector<dht::NodeIndex> out;
  if (width >= kFullSpace) {
    for (const auto& e : sorted_) out.push_back(e.node);
    return out;
  }
  const dht::NodeId hi = lo + static_cast<dht::NodeId>(width - 1);
  auto it = std::lower_bound(
      sorted_.begin(), sorted_.end(), lo,
      [](const dht::LeafsetEntry& e, dht::NodeId v) { return e.id < v; });
  for (; it != sorted_.end() && it->id <= hi; ++it) out.push_back(it->node);
  return out;
}

LogicalIndex LogicalTree::Build(std::size_t level, std::size_t index,
                                dht::NodeId region_lo,
                                unsigned __int128 region_width,
                                LogicalIndex parent) {
  P2P_CHECK_MSG(region_width >= 1, "region exhausted at level " << level);
  const dht::NodeId center_id =
      region_lo + static_cast<dht::NodeId>(region_width / 2);
  const dht::NodeIndex owner = OwnerOf(center_id);

  const LogicalIndex me = nodes_.size();
  nodes_.push_back({});
  {
    LogicalNode& ln = nodes_[me];
    ln.level = level;
    ln.index = index;
    ln.center = dht::UnitFromId(center_id);
    ln.region_lo = region_lo;
    ln.region_width = region_width;
    ln.owner = owner;
    ln.parent = parent;
  }
  depth_ = std::max(depth_, level + 1);

  // Leaf test: the region spans at most two zones, i.e. contains at most
  // one node id. (Splitting a region that straddles one zone boundary can
  // never retire the boundary — it is not on the k-ary grid — so recursing
  // past this point would chase it down to single ids.)
  const std::size_t ids_inside = CountIdsInRegion(region_lo, region_width);
  const bool is_leaf =
      region_width <= 1 || ids_inside <= 1 || sorted_.size() == 1;

  if (is_leaf) {
    // This leaf reports the machines whose ids fall inside its region.
    nodes_[me].reported = IdsInRegion(region_lo, region_width);
    leaves_.push_back(me);
    return me;
  }

  // Split the region into `fanout_` near-equal child regions.
  std::vector<LogicalIndex> children;
  children.reserve(fanout_);
  unsigned __int128 consumed = 0;
  for (std::size_t c = 0; c < fanout_; ++c) {
    const unsigned __int128 next_boundary =
        region_width * (c + 1) / fanout_;
    const unsigned __int128 child_width = next_boundary - consumed;
    if (child_width == 0) continue;  // tiny regions: fewer than k children
    const dht::NodeId child_lo =
        region_lo + static_cast<dht::NodeId>(consumed);
    children.push_back(Build(level + 1, index * fanout_ + c, child_lo,
                             child_width, me));
    consumed = next_boundary;
  }
  nodes_[me].children = std::move(children);
  return me;
}

std::vector<LogicalIndex> LogicalTree::HostedBy(dht::NodeIndex n) const {
  std::vector<LogicalIndex> out;
  for (LogicalIndex i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].owner == n) out.push_back(i);
  }
  return out;
}

LogicalIndex LogicalTree::RepresentationOf(dht::NodeIndex n) const {
  LogicalIndex best = kNoLogical;
  for (LogicalIndex i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].owner != n) continue;
    if (best == kNoLogical || nodes_[i].level < nodes_[best].level) best = i;
  }
  return best;
}

LogicalIndex LogicalTree::ReporterOf(dht::NodeIndex n) const {
  for (const LogicalIndex l : leaves_) {
    const auto& rep = nodes_[l].reported;
    if (std::find(rep.begin(), rep.end(), n) != rep.end()) return l;
  }
  return kNoLogical;
}

void LogicalTree::CheckInvariants(const dht::Ring& ring) const {
  P2P_CHECK(!nodes_.empty());
  P2P_CHECK(nodes_[0].is_root());
  // Parent/child link consistency.
  for (LogicalIndex i = 0; i < nodes_.size(); ++i) {
    for (const LogicalIndex c : nodes_[i].children) {
      P2P_CHECK(nodes_[c].parent == i);
      P2P_CHECK(nodes_[c].level == nodes_[i].level + 1);
    }
  }
  // Leaf regions tile the full space in order.
  unsigned __int128 covered = 0;
  dht::NodeId expect_lo = 0;
  for (const LogicalIndex l : leaves_) {
    const LogicalNode& ln = nodes_[l];
    P2P_CHECK_MSG(ln.region_lo == expect_lo, "leaf regions not contiguous");
    covered += ln.region_width;
    expect_lo = ln.region_lo + static_cast<dht::NodeId>(ln.region_width);
  }
  P2P_CHECK_MSG(covered == kFullSpace, "leaf regions do not tile the space");
  // Every alive DHT node is reported by exactly one leaf.
  std::vector<int> reports(ring.size(), 0);
  for (const LogicalIndex l : leaves_) {
    P2P_CHECK_MSG(nodes_[l].reported.size() <= 1 || leaves_.size() == 1,
                  "leaf reports more than one node");
    for (const dht::NodeIndex n : nodes_[l].reported) ++reports[n];
  }
  for (const auto& e : sorted_)
    P2P_CHECK_MSG(reports[e.node] == 1,
                  "alive node " << e.node << " reported " << reports[e.node]
                                << " times");
}

}  // namespace p2p::somo
