#include "somo/somo.h"

#include <algorithm>
#include <memory>
#include <string>

#include "util/check.h"

namespace p2p::somo {

SomoProtocol::SomoProtocol(sim::Simulation& sim, dht::Ring& ring,
                           SomoConfig config, ReportProvider provider)
    : sim_(sim), ring_(ring), config_(config), provider_(std::move(provider)) {
  P2P_CHECK(config_.report_interval_ms > 0.0);
  P2P_CHECK(provider_ != nullptr);
  // The deprecated per-SOMO hop-delay knob becomes the bus-wide oracle-less
  // fallback, so every gather discipline prices hops identically.
  sim_.transport().set_default_delay_ms(config_.default_hop_delay_ms);
  if (ring_.oracle() != nullptr) sim_.transport().set_oracle(ring_.oracle());
  tree_ = std::make_unique<LogicalTree>(ring_, config_.fanout);
  state_.resize(tree_->size());
  for (LogicalIndex l = 0; l < tree_->size(); ++l)
    state_[l].from_children.resize(tree_->node(l).children.size());
  auto& reg = sim_.metrics();
  m_gathers_ = &reg.counter("somo.gathers");
  m_messages_ = &reg.counter("somo.messages");
  m_bytes_ = &reg.counter("somo.bytes");
  m_redundant_ = &reg.counter("somo.redundant_pushes");
  m_root_staleness_ = &reg.gauge("somo.root.staleness_ms");
  m_root_members_ = &reg.gauge("somo.root.members");
  m_gather_latency_ = &reg.histogram("somo.gather.latency_ms");
  m_report_age_ = &reg.histogram("somo.report.age_ms");
}

bool SomoProtocol::SendBetween(dht::NodeIndex from, dht::NodeIndex to,
                               SomoMessageKind kind, std::size_t bytes,
                               sim::Transport::DeliverFn deliver) {
  ++messages_;
  bytes_ += bytes;
  m_messages_->Inc();
  m_bytes_->Inc(static_cast<double>(bytes));
  sim::Message msg;
  msg.src_host = ring_.node(from).host();
  msg.dst_host = ring_.node(to).host();
  msg.protocol = sim::Protocol::kSomo;
  msg.kind = kind;
  msg.bytes = bytes;
  return sim_.transport().Send(msg, std::move(deliver));
}

void SomoProtocol::Start() {
  P2P_CHECK_MSG(!running_, "SOMO already running");
  running_ = true;
  ScheduleLogicalTimers();
}

void SomoProtocol::BindShard(std::uint32_t shard,
                             const std::vector<std::uint32_t>* shard_of_host,
                             std::vector<SomoProtocol*> peers) {
  P2P_CHECK_MSG(!running_, "bind before Start");
  P2P_CHECK(shard_of_host != nullptr);
  P2P_CHECK_MSG(shard < peers.size(), "shard index outside the peer table");
  P2P_CHECK_MSG(peers[shard] == this, "peer table must map this shard here");
  // The synchronised cascade, dissemination and redundant links capture
  // `this` in downward closures that would mutate another shard's state.
  P2P_CHECK_MSG(peers.size() <= 1 || (!config_.synchronized_gather &&
                                      !config_.disseminate &&
                                      !config_.redundant_links),
                "multi-shard SOMO supports the unsynchronised gather only");
  shard_ = shard;
  shard_of_host_ = shard_of_host;
  peers_ = std::move(peers);
}

void SomoProtocol::Stop() {
  running_ = false;
  for (auto& t : timers_) sim::Simulation::CancelPeriodic(t);
  timers_.clear();
}

void SomoProtocol::ScheduleLogicalTimers() {
  for (auto& t : timers_) sim::Simulation::CancelPeriodic(t);
  timers_.clear();
  if (config_.synchronized_gather) {
    // Only the root keeps a timer; everything below reacts to the cascade.
    timers_.push_back(sim_.Every(config_.report_interval_ms, 0.0,
                                 [this] { StartSyncGather(); }));
    return;
  }
  // Unsynchronised: one independent timer per logical node, random phase.
  // A bound instance draws phases only for its own logical nodes — each
  // phase comes from the owner shard's RNG stream, so the draw order is
  // shard-count-dependent but schedule-independent (and identical to the
  // serial order at one shard).
  timers_.reserve(tree_->size());
  for (LogicalIndex l = 0; l < tree_->size(); ++l) {
    if (!OwnsLogical(l)) continue;
    const sim::Time phase =
        sim_.rng().Uniform(0.0, config_.report_interval_ms);
    timers_.push_back(sim_.Every(config_.report_interval_ms, phase,
                                 [this, l] { FireLogical(l); }));
  }
}

AggregateReport SomoProtocol::ComputeAggregate(LogicalIndex l) const {
  const LogicalNode& ln = tree_->node(l);
  AggregateReport agg;
  if (ln.is_leaf()) {
    // A leaf collects the reports of the machines whose ids fall in its
    // region (each alive node is reported by exactly one leaf).
    if (ring_.node(ln.owner).alive()) {
      for (const dht::NodeIndex n : ln.reported) {
        if (ring_.node(n).alive()) agg.Add(provider_(n));
      }
    }
    return agg;
  }
  // Children's aggregates are region-disjoint, but adopted copies (from
  // redundant links) can overlap with a recovered parent path — merge
  // keeping the freshest report per node.
  for (const auto& child_agg : state_[l].from_children)
    agg.MergeKeepFreshest(child_agg);
  for (const auto& [src, adopted_agg] : state_[l].adopted)
    agg.MergeKeepFreshest(adopted_agg);
  return agg;
}

void SomoProtocol::FireLogical(LogicalIndex l) {
  if (!running_) return;
  if (l >= tree_->size()) return;  // tree shrank in a Rebuild
  const LogicalNode& ln = tree_->node(l);
  if (!ring_.node(ln.owner).alive()) return;  // will be repaired by Rebuild
  state_[l].own = ComputeAggregate(l);
  if (ln.is_root()) {
    root_view_ = state_[l].own;
    if (!root_view_.empty()) {
      ++gathers_completed_;
      m_gathers_->Inc();
      RecordRootMetrics(0);
      OnRootViewRefreshed();
    }
    return;
  }
  PushToParent(l);
}

void SomoProtocol::PushToParent(LogicalIndex l) {
  const LogicalNode& ln = tree_->node(l);
  const LogicalIndex parent = ln.parent;
  const LogicalNode& pn = tree_->node(parent);

  // Redundant links (§3.2): a dead parent host would swallow the push;
  // hand the aggregate to a random alive parent-sibling instead, which
  // adopts it into its own upward aggregate.
  if (config_.redundant_links && !ring_.node(pn.owner).alive() &&
      !pn.is_root()) {
    const LogicalNode& gp = tree_->node(pn.parent);
    std::vector<LogicalIndex> uncles;
    for (const LogicalIndex u : gp.children) {
      if (u != parent && ring_.node(tree_->node(u).owner).alive())
        uncles.push_back(u);
    }
    if (!uncles.empty()) {
      const LogicalIndex uncle =
          uncles[sim_.rng().NextBounded(uncles.size())];
      ++redundant_pushes_;
      m_redundant_->Inc();
      AggregateReport payload = state_[l].own;
      const std::size_t wire = payload.SerializedBytes();
      SendBetween(ln.owner, tree_->node(uncle).owner, kMsgRedundantPush,
                  wire, [this, uncle, l, payload = std::move(payload)] {
                    if (!running_ || uncle >= state_.size()) return;
                    state_[uncle].adopted[l] = payload;
                  });
      return;
    }
  }

  // Position of l among its parent's children.
  std::size_t slot = 0;
  for (; slot < pn.children.size(); ++slot) {
    if (pn.children[slot] == l) break;
  }
  P2P_CHECK(slot < pn.children.size());
  AggregateReport payload = state_[l].own;
  const std::size_t wire = payload.SerializedBytes();
  // The parent's owning instance records the push (== this when unbound),
  // so from_children rows are only written on their owner's shard.
  SomoProtocol* target = PeerForLogical(parent);
  SendBetween(ln.owner, pn.owner, kMsgPush, wire,
              [target, parent, slot, l, payload = std::move(payload)] {
                target->ReceivePush(parent, slot, l, payload);
              });
}

void SomoProtocol::ReceivePush(LogicalIndex parent, std::size_t slot,
                               LogicalIndex from,
                               const AggregateReport& payload) {
  if (!running_) return;
  if (parent >= state_.size()) return;
  if (slot >= state_[parent].from_children.size()) return;
  state_[parent].from_children[slot] = payload;
  // A direct push supersedes any adopted detour copy of this child.
  state_[parent].adopted.erase(from);
}

void SomoProtocol::StartSyncGather() {
  if (!running_) return;
  const std::uint64_t round = ++sync_round_counter_;
  sync_started_[round] = sim_.now();
  SyncDescend(tree_->root(), sim_.now(), round);
}

void SomoProtocol::SyncDescend(LogicalIndex l, sim::Time arrival,
                               std::uint64_t round) {
  const LogicalNode& ln = tree_->node(l);
  if (ln.is_leaf()) {
    // Fresh reports travel straight back up.
    AggregateReport agg;
    if (ring_.node(ln.owner).alive()) {
      for (const dht::NodeIndex n : ln.reported) {
        if (ring_.node(n).alive()) agg.Add(provider_(n));
      }
    }
    const LogicalIndex parent = ln.parent;
    if (parent == kNoLogical) {
      // Root is itself a leaf: intra-host hand-off, not bus traffic.
      sim_.At(arrival, [this, round, agg = std::move(agg)] {
        root_view_ = agg;
        ++gathers_completed_;
        m_gathers_->Inc();
        RecordRootMetrics(round);
        OnRootViewRefreshed();
      });
      return;
    }
    const std::size_t wire = agg.SerializedBytes();
    SendBetween(ln.owner, tree_->node(parent).owner, kMsgSyncReply, wire,
                [this, parent, round, agg = std::move(agg)] {
                  SyncReplyArrived(parent, agg, round);
                });
    return;
  }
  state_[l].sync[round] = PendingGather{ln.children.size(), {}};
  for (const LogicalIndex c : ln.children) {
    // The "call for reports" is tiny.
    SendBetween(ln.owner, tree_->node(c).owner, kMsgSyncCall,
                kReportHeaderBytes, [this, c, round] {
                  if (!running_) return;
                  if (c >= tree_->size()) return;  // tree rebuilt meanwhile
                  SyncDescend(c, sim_.now(), round);
                });
  }
}

void SomoProtocol::SyncReplyArrived(LogicalIndex l,
                                    const AggregateReport& child_agg,
                                    std::uint64_t round) {
  if (!running_ || l >= state_.size()) return;
  LogicalState& st = state_[l];
  const auto it = st.sync.find(round);
  if (it == st.sync.end()) return;  // stale round (tree rebuilt, etc.)
  it->second.agg.Merge(child_agg);
  P2P_DCHECK(it->second.pending > 0);
  if (--it->second.pending > 0) return;
  AggregateReport complete = std::move(it->second.agg);
  st.sync.erase(it);
  const LogicalNode& ln = tree_->node(l);
  if (ln.is_root()) {
    root_view_ = std::move(complete);
    ++gathers_completed_;
    m_gathers_->Inc();
    RecordRootMetrics(round);
    OnRootViewRefreshed();
    return;
  }
  const LogicalIndex parent = ln.parent;
  const std::size_t wire = complete.SerializedBytes();
  SendBetween(ln.owner, tree_->node(parent).owner, kMsgSyncReply, wire,
              [this, parent, round, payload = std::move(complete)] {
                SyncReplyArrived(parent, payload, round);
              });
}

void SomoProtocol::RecordRootMetrics(std::uint64_t round) {
  const sim::Time now = sim_.now();
  m_root_members_->Set(static_cast<double>(root_view_.size()));
  if (!root_view_.empty()) m_root_staleness_->Set(now - root_view_.oldest);
  for (const auto& r : root_view_.members)
    m_report_age_->Add(now - r.generated_at);
  if (round != 0) {
    // Synchronized gather: the cascade round-trip, call to complete view.
    const auto it = sync_started_.find(round);
    if (it != sync_started_.end()) {
      m_gather_latency_->Add(now - it->second);
      sync_started_.erase(it);
    }
  }
  // Per-level freshness: the oldest report inside any non-empty aggregate
  // cached at each tree level (unsync gather only — internal caches are the
  // source of the paper's ~log_k(N)·T root-staleness bound, and watching
  // the age climb level by level makes that bound visible).
  std::vector<double> level_age;
  for (LogicalIndex l = 0; l < tree_->size(); ++l) {
    const AggregateReport& agg = state_[l].own;
    if (agg.empty()) continue;
    const std::size_t level = tree_->node(l).level;
    if (level_age.size() <= level) level_age.resize(level + 1, -1.0);
    level_age[level] = std::max(level_age[level], now - agg.oldest);
  }
  for (std::size_t k = 0; k < level_age.size(); ++k) {
    if (level_age[k] < 0.0) continue;
    sim_.metrics()
        .gauge("somo.level" + std::to_string(k) + ".age_ms")
        .Set(level_age[k]);
  }
}

void SomoProtocol::OnRootViewRefreshed() {
  if (!config_.disseminate) return;
  auto snapshot = std::make_shared<const AggregateReport>(root_view_);
  const std::size_t wire = snapshot->SerializedBytes();
  Disseminate(tree_->root(), std::move(snapshot), wire, sim_.now());
}

void SomoProtocol::Disseminate(LogicalIndex l,
                               std::shared_ptr<const AggregateReport> view,
                               std::size_t wire, sim::Time arrival) {
  if (node_views_.size() < ring_.size()) node_views_.resize(ring_.size());
  const LogicalNode& ln = tree_->node(l);
  // A node adopts the copy unless a fresher one already arrived.
  auto adopt = [this, view](dht::NodeIndex n) {
    if (n >= node_views_.size()) return;
    const sim::Time when = sim_.now();
    if (node_views_[n].received_at >= when && node_views_[n].valid())
      return;  // a fresher copy already arrived
    node_views_[n] = NodeView{view, when};
  };
  // The hosting machine's own copy is an intra-host hand-off.
  sim_.At(arrival, [adopt, owner = ln.owner] { adopt(owner); });
  if (ln.is_leaf()) {
    // The machines the leaf reports for hear the newscast from the leaf's
    // owner.
    for (const dht::NodeIndex n : ln.reported) {
      if (n == ln.owner || !ring_.node(n).alive()) continue;
      SendBetween(ln.owner, n, kMsgDisseminate, wire,
                  [adopt, n] { adopt(n); });
    }
    return;
  }
  for (const LogicalIndex c : ln.children) {
    SendBetween(ln.owner, tree_->node(c).owner, kMsgDisseminate, wire,
                [this, c, view, wire] {
                  if (!running_ || c >= tree_->size()) return;
                  Disseminate(c, view, wire, sim_.now());
                });
  }
}

const SomoProtocol::NodeView& SomoProtocol::ViewAt(dht::NodeIndex n) const {
  static const NodeView kEmpty;
  if (n >= node_views_.size()) return kEmpty;
  return node_views_[n];
}

double SomoProtocol::ViewStalenessMs(dht::NodeIndex n) const {
  const NodeView& v = ViewAt(n);
  if (!v.valid() || v.view->empty())
    return std::numeric_limits<double>::infinity();
  return sim_.now() - v.view->oldest;
}

std::size_t SomoProtocol::nodes_with_view() const {
  std::size_t n = 0;
  for (const auto& v : node_views_) n += v.valid();
  return n;
}

void SomoProtocol::Rebuild() {
  // A rebuild changes logical-node ownership; bound instances would need a
  // coordinated re-bind across shards, which nothing drives yet.
  P2P_CHECK_MSG(peers_.size() <= 1,
                "Rebuild is unsupported in multi-shard runs");
  tree_ = std::make_unique<LogicalTree>(ring_, config_.fanout);
  state_.assign(tree_->size(), LogicalState{});
  for (LogicalIndex l = 0; l < tree_->size(); ++l)
    state_[l].from_children.resize(tree_->node(l).children.size());
  if (running_) ScheduleLogicalTimers();
}

double SomoProtocol::RootStalenessMs() const {
  if (root_view_.empty())
    return std::numeric_limits<double>::infinity();
  return sim_.now() - root_view_.oldest;
}

double SomoProtocol::RootAliveStalenessMs() const {
  sim::Time oldest = std::numeric_limits<double>::infinity();
  for (const auto& r : root_view_.members) {
    if (r.node >= ring_.size() || !ring_.node(r.node).alive()) continue;
    oldest = std::min(oldest, r.generated_at);
  }
  if (oldest == std::numeric_limits<double>::infinity())
    return std::numeric_limits<double>::infinity();
  return sim_.now() - oldest;
}

bool SomoProtocol::RootViewComplete() const {
  if (root_view_.empty()) return false;
  std::vector<char> seen(ring_.size(), 0);
  for (const auto& r : root_view_.members) {
    if (r.node < seen.size()) seen[r.node] = 1;
  }
  for (const dht::NodeIndex n : ring_.SortedAlive()) {
    if (!seen[n]) return false;
  }
  return true;
}

SomoProtocol::QueryResult SomoProtocol::QueryFromNode(
    dht::NodeIndex n) const {
  QueryResult qr;
  const dht::NodeIndex root_owner = tree_->node(tree_->root()).owner;
  qr.route = ring_.Route(n, ring_.node(root_owner).id());
  qr.view = &root_view_;
  return qr;
}

dht::NodeIndex SomoProtocol::OptimizeRootFromView() {
  if (root_view_.empty() || root_view_.best_capacity_node == dht::kNoNode)
    return dht::kNoNode;
  const dht::NodeIndex best = root_view_.best_capacity_node;
  if (best >= ring_.size() || !ring_.node(best).alive())
    return dht::kNoNode;  // stale advert: the champion died
  const dht::NodeIndex root_owner = tree_->node(tree_->root()).owner;
  if (best != root_owner) {
    ring_.SwapNodeIds(best, root_owner);
    Rebuild();
  }
  return tree_->node(tree_->root()).owner;
}

dht::NodeIndex SomoProtocol::OptimizeRoot(
    const std::function<double(dht::NodeIndex)>& capacity) {
  // Upward merge-sort through SOMO, condensed: find the most capable alive
  // node, then swap its id with the current root-point owner's.
  const auto alive = ring_.SortedAlive();
  P2P_CHECK(!alive.empty());
  dht::NodeIndex best = alive.front();
  for (const dht::NodeIndex n : alive) {
    if (capacity(n) > capacity(best)) best = n;
  }
  const dht::NodeIndex root_owner = tree_->node(tree_->root()).owner;
  if (best != root_owner) {
    ring_.SwapNodeIds(best, root_owner);
    Rebuild();
  }
  return tree_->node(tree_->root()).owner;
}

}  // namespace p2p::somo
