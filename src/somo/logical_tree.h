// SOMO logical tree (paper §3.2): a fanout-k tree drawn over the DHT's
// logical space [0, 1]. The logical node at (level ℓ, index j) owns region
// [j/k^ℓ, (j+1)/k^ℓ) and sits at the region's centre; the DHT node whose
// zone contains that centre hosts it. Construction is bottom-up in spirit —
// every position is computed independently from (level, index) alone, so
// any brick can derive its own representation and its parent's position
// without coordination.
//
// Expansion stops when a region spans at most two zones (equivalently:
// contains at most one node id). Splitting further would chase the zone
// boundary with ever-smaller regions all the way to single ids — the
// boundary point never aligns with the k-ary grid — so the two-zone rule is
// what bounds the tree at O(N) logical nodes and O(log_k N) depth.
//
// Report responsibility: each leaf reports exactly the DHT nodes whose own
// ids fall inside its region. Ids partition over leaves, so every alive
// node is reported exactly once per gather — no duplicates, no gaps.
#pragma once

#include <cstddef>
#include <vector>

#include "dht/ring.h"

namespace p2p::somo {

using LogicalIndex = std::size_t;
inline constexpr LogicalIndex kNoLogical = static_cast<LogicalIndex>(-1);

struct LogicalNode {
  std::size_t level = 0;
  std::size_t index = 0;  // 0 .. k^level - 1
  double center = 0.5;    // position in [0, 1)
  // Region in id space: [region_lo, region_lo + region_width). Kept in
  // exact integer arithmetic — doubles lose the low id bits at depth.
  dht::NodeId region_lo = 0;
  unsigned __int128 region_width = 0;
  dht::NodeIndex owner = dht::kNoNode;  // hosting DHT node
  LogicalIndex parent = kNoLogical;
  std::vector<LogicalIndex> children;
  // Leaves only: DHT nodes whose ids fall in this region — the machines
  // whose reports this leaf collects.
  std::vector<dht::NodeIndex> reported;

  bool is_leaf() const { return children.empty(); }
  bool is_root() const { return parent == kNoLogical; }
};

class LogicalTree {
 public:
  // Build the tree for the current alive membership of `ring`.
  LogicalTree(const dht::Ring& ring, std::size_t fanout);

  std::size_t fanout() const { return fanout_; }
  std::size_t size() const { return nodes_.size(); }
  const LogicalNode& node(LogicalIndex i) const { return nodes_.at(i); }
  LogicalIndex root() const { return 0; }

  std::size_t depth() const { return depth_; }

  // Leaves in left-to-right (space) order.
  const std::vector<LogicalIndex>& leaves() const { return leaves_; }

  // All logical nodes hosted by DHT node `n` (its chain of representations).
  std::vector<LogicalIndex> HostedBy(dht::NodeIndex n) const;

  // The highest (closest-to-root) logical node hosted by DHT node `n`, or
  // kNoLogical if it hosts none.
  LogicalIndex RepresentationOf(dht::NodeIndex n) const;

  // The unique leaf whose region contains n's id (the leaf that reports
  // n's machine status).
  LogicalIndex ReporterOf(dht::NodeIndex n) const;

  // Centre of logical node (level, index) — the self-computable position.
  static double CenterOf(std::size_t level, std::size_t index,
                         std::size_t fanout);

  // Verifies structural invariants: leaf regions tile [0,1), parent/child
  // links are consistent, every alive DHT node is reported by exactly one
  // leaf.
  void CheckInvariants(const dht::Ring& ring) const;

 private:
  LogicalIndex Build(std::size_t level, std::size_t index,
                     dht::NodeId region_lo, unsigned __int128 region_width,
                     LogicalIndex parent);
  dht::NodeIndex OwnerOf(dht::NodeId key) const;
  // Zone predecessor id of the sorted-position `pos`.
  dht::NodeId PredIdOf(std::size_t pos) const;
  // Node ids falling inside [lo, lo+width): count and listing.
  std::size_t CountIdsInRegion(dht::NodeId lo,
                               unsigned __int128 width) const;
  std::vector<dht::NodeIndex> IdsInRegion(dht::NodeId lo,
                                          unsigned __int128 width) const;

  std::size_t fanout_;
  std::size_t depth_ = 0;
  std::vector<LogicalNode> nodes_;
  std::vector<LogicalIndex> leaves_;
  // Alive membership snapshot (id-sorted) taken at construction.
  std::vector<dht::LeafsetEntry> sorted_;
};

}  // namespace p2p::somo
