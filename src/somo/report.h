// SOMO report schema for scheduling ALM (paper Figures 7 and 9): each node
// publishes its network coordinates, its estimated up/down bottleneck
// bandwidth, and its degree table — total degree plus which sessions (and
// at what priority) currently hold each degree. The aggregate report that
// flows up the SOMO tree is the concatenation of member reports plus
// freshness bookkeeping; the root's aggregate is the "dynamic system status
// database" task managers query.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "coord/vec.h"
#include "dht/leafset.h"
#include "net/transit_stub.h"
#include "sim/event_queue.h"

namespace p2p::somo {

// Paper §5.3: integer priorities 1..3, 1 highest.
inline constexpr int kHighestPriority = 1;
inline constexpr int kLowestPriority = 3;

using SessionId = std::int64_t;
inline constexpr SessionId kNoSession = -1;

// One taken degree: which session holds it and at what (effective) priority.
struct DegreeSlot {
  SessionId session = kNoSession;
  int priority = kLowestPriority;
};

// Figure 9's degree table: a node's total degree bound and its partition
// among active sessions.
struct DegreeTable {
  int total = 0;
  std::vector<DegreeSlot> taken;

  int used() const { return static_cast<int>(taken.size()); }
  int free() const { return total - used(); }

  // Degrees a session of priority `prio` could claim: free degrees plus
  // degrees held at strictly lower priority classes (numerically larger),
  // which it may preempt (paper §5.3: "any resources that are occupied by
  // tasks with lower priorities than L are considered available").
  int AvailableFor(int prio) const {
    int n = free();
    for (const auto& s : taken) {
      if (s.priority > prio) ++n;
    }
    return n;
  }

  // Degrees used by `prio` exactly.
  int UsedAt(int prio) const {
    return static_cast<int>(
        std::count_if(taken.begin(), taken.end(),
                      [prio](const DegreeSlot& s) { return s.priority == prio; }));
  }

  // Degrees held by a given session.
  int HeldBy(SessionId s) const {
    return static_cast<int>(
        std::count_if(taken.begin(), taken.end(),
                      [s](const DegreeSlot& d) { return d.session == s; }));
  }
};

// Wire-size budget (§3.2: "the leaf SOMO report is 40 bytes"): since the
// telemetry codec landed these are *budgets the real encoding must fit*,
// not the sizes themselves — SerializedBytes() measures the actual
// EncodeAggregate output (delta-encoded indices and counters, quantized
// ages, 16-bit floats), and tests/somo_report_codec_test.cc enforces that
// realistic aggregates stay at or under kPerRecordBytes per record and
// kReportHeaderBytes of header. kReportHeaderBytes also still prices the
// tiny synchronized "call for reports" control message.
inline constexpr std::size_t kReportHeaderBytes = 16;
inline constexpr std::size_t kPerRecordBytes = 40;

// In-band self-monitoring (the "SOMO monitors itself" loop): a snapshot of
// the host's own transport counters folded into its NodeReport, so the
// telemetry of the whole system flows up the gather tree alongside the
// scheduling metadata. The root's aggregate then doubles as a monitoring
// database whose accuracy can be compared against the simulator's ground
// truth (Transport::host_stats).
struct HostTelemetry {
  std::size_t msgs_sent = 0;
  std::size_t msgs_delivered = 0;
  std::size_t msgs_dropped = 0;
  std::size_t bytes_sent = 0;
  // Leafset members this host's node currently suspects (heartbeat
  // suspect_alive mode) — the in-band failure signal the alert engine's
  // suspicion-rate rule aggregates over a disseminated view.
  std::size_t suspects = 0;
  sim::Time sampled_at = -1.0;  // < 0 until a sample is taken

  bool valid() const { return sampled_at >= 0.0; }
};

// Per-machine report (Figure 7), stamped with generation time so staleness
// at the root can be measured.
struct NodeReport {
  dht::NodeIndex node = dht::kNoNode;
  net::HostIdx host = 0;
  sim::Time generated_at = 0.0;
  coord::Vec coordinates;
  double up_kbps = 0.0;
  double down_kbps = 0.0;
  DegreeTable degrees;
  // Generic capability metric for the §3.2 root-swap self-optimisation;
  // the maximum is "merge-sorted" upward inside AggregateReport.
  double capacity = 0.0;
  // Self-monitoring counters (invalid unless the provider fills them).
  HostTelemetry telemetry;
};

// Aggregate flowing up the SOMO hierarchy.
//
// Struct-of-arrays storage: member records live in dense per-field columns
// (plus shared pools for the variable-length coordinate/degree/telemetry
// payloads) instead of a vector of 150-byte NodeReport structs, roughly
// halving the resident bytes per represented host across the cached
// aggregates of the gather tree. Record order is preserved exactly as the
// old vector-of-structs kept it, and the wire codec walks records in that
// order — encoded bytes are identical to the AoS layout's (the retained
// pre-SoA implementation in tests/reference/ pins this differentially).
// NodeReport remains the interchange type at the edges: providers hand one
// in via Add, and Member(i) materialises one back out.
class AggregateReport {
 public:
  sim::Time oldest = std::numeric_limits<double>::infinity();
  sim::Time newest = -std::numeric_limits<double>::infinity();
  // Running argmax of member capacity (the upward merge-sort, condensed
  // to the only value the root swap needs).
  dht::NodeIndex best_capacity_node = dht::kNoNode;
  double best_capacity = -std::numeric_limits<double>::infinity();

  bool empty() const { return node_.empty(); }
  std::size_t size() const { return node_.size(); }

  // --- per-record column accessors (i < size()) ---------------------------
  dht::NodeIndex node(std::size_t i) const {
    return node_[i] == kNone32 ? dht::kNoNode
                               : static_cast<dht::NodeIndex>(node_[i]);
  }
  net::HostIdx host(std::size_t i) const {
    return static_cast<net::HostIdx>(host_[i]);
  }
  sim::Time generated_at(std::size_t i) const { return generated_[i]; }
  double up_kbps(std::size_t i) const { return up_[i]; }
  double down_kbps(std::size_t i) const { return down_[i]; }
  double capacity(std::size_t i) const { return capacity_[i]; }
  int degrees_total(std::size_t i) const { return deg_total_[i]; }
  std::span<const double> coordinates(std::size_t i) const {
    return {coord_pool_.data() + coord_off_[i], coord_dim_[i]};
  }
  std::span<const DegreeSlot> degree_slots(std::size_t i) const {
    return {deg_pool_.data() + deg_off_[i], deg_used_[i]};
  }
  // Null when the record carries no (valid) telemetry sample.
  const HostTelemetry* telemetry(std::size_t i) const {
    return tel_off_[i] == kNone32 ? nullptr : &tel_pool_[tel_off_[i]];
  }

  // Materialise record i as a full NodeReport (edge interchange only — hot
  // paths should read the columns directly).
  NodeReport Member(std::size_t i) const;

  void Add(const NodeReport& r);
  void Merge(const AggregateReport& other);
  // Merge keeping only the freshest report per node — used when redundant
  // SOMO links may deliver overlapping aggregates.
  void MergeKeepFreshest(const AggregateReport& other);
  void Clear();

  // Pre-size the columns for n records with the given expected payload
  // shapes (rehash/reallocation audit: bulk builders call this once).
  void Reserve(std::size_t n, std::size_t coord_dims = 0,
               std::size_t degree_slots = 0, bool with_telemetry = false);

  // Measured wire size of this aggregate: EncodedSize(*this). Honest —
  // the overhead accounting charges what EncodeAggregate would emit.
  std::size_t SerializedBytes() const;

  // Resident bytes of this aggregate (columns + pools + this). The SoA
  // counterpart of the retained AoS reference's accounting; the memory
  // regression test compares the two at the 10k preset.
  std::size_t MemoryBytes() const;

 private:
  static constexpr std::uint32_t kNone32 = 0xffffffffu;

  // Append record j of `other` (column-wise copy).
  void AppendFrom(const AggregateReport& other, std::size_t j);
  // Overwrite record i with record j of `other` (fresher duplicate).
  void ReplaceFrom(std::size_t i, const AggregateReport& other,
                   std::size_t j);
  void RecomputeExtrema();

  template <typename Sink>
  friend void EncodeTo(const AggregateReport& agg, Sink& sink);

  // One entry per record, in insertion order (== the old members order).
  std::vector<std::uint32_t> node_;
  std::vector<std::uint32_t> host_;
  std::vector<double> generated_;
  std::vector<double> up_;
  std::vector<double> down_;
  std::vector<double> capacity_;
  std::vector<std::int32_t> deg_total_;
  // Variable-length payloads: (offset, count) per record into shared pools.
  // Replacements reuse the span in place when the shape matches and append
  // otherwise; aggregates are rebuilt every gather round, so abandoned
  // spans never accumulate beyond a round.
  std::vector<std::uint32_t> coord_off_;
  std::vector<std::uint16_t> coord_dim_;
  std::vector<double> coord_pool_;
  std::vector<std::uint32_t> deg_off_;
  std::vector<std::uint16_t> deg_used_;
  std::vector<DegreeSlot> deg_pool_;
  std::vector<std::uint32_t> tel_off_;  // kNone32 = no telemetry
  std::vector<HostTelemetry> tel_pool_;
};

// --- wire codec -----------------------------------------------------------
//
// Compressed aggregate encoding (format documented in docs/OBSERVABILITY.md
// "Telemetry wire format"; primitives in obs/telemetry_codec.h):
//
//   header:  u8 version (=1); varint member count M; if M > 0:
//            varint base ticks (newest, quantized to obs::kAgeTickMs) and
//            varint best-capacity node (+1; 0 = none).
//   record:  node index (zigzag delta vs previous record), host (zigzag
//            delta vs node), report age in ticks vs base (varint),
//            coordinates (varint dim + F16 components), up/down kbps and
//            capacity (F16), degree table (zigzag total, varint used,
//            one varint per slot packing (session+1)<<2 | priority),
//            telemetry flag byte; valid telemetry adds the sample age
//            (zigzag ticks vs the record timestamp) and five counters,
//            each zigzag delta-encoded against the previous record's
//            telemetry.
//
// Round-trip guarantees (test-enforced): integer fields are exact;
// timestamps within obs::kAgeTickMs; F16 fields within obs::kF16RelError
// relative error (values below 2^-30 flush to zero). oldest/newest and the
// best-capacity value are recomputed from the decoded members.

std::vector<std::uint8_t> EncodeAggregate(const AggregateReport& agg);

// Decode into *out (replacing its contents). False on truncated or
// malformed input; *out is unspecified after a failure.
bool DecodeAggregate(const std::uint8_t* data, std::size_t size,
                     AggregateReport* out);

// Exact byte count EncodeAggregate(agg).size() would return, without
// materialising the buffer (same templated encoder, counting sink).
std::size_t EncodedSize(const AggregateReport& agg);

}  // namespace p2p::somo
