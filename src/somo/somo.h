// SOMO protocol (paper §3.2): gathers per-machine reports up a fanout-k
// logical tree mapped onto the DHT, producing the root's "global view".
//
// Two gather disciplines, matching the paper's latency analysis:
//  * Unsynchronised: every logical node runs an independent periodic timer
//    (period T, random phase). Leaves refresh their machine's report;
//    internal nodes merge the child aggregates they have received and push
//    the result to their parent. Freshness at the root is bounded by
//    ~log_k(N)·T.
//  * Synchronised: the root's timer triggers a cascade — the "call for
//    reports" propagates down with per-hop latency, leaves answer with
//    fresh reports, and aggregates flow back up as soon as each parent has
//    heard from all children. Freshness is bounded by ~2·t_hop·log_k(N),
//    i.e. T-dominated in practice.
//
// The tree self-repairs: Rebuild() recomputes the logical tree against
// current ring membership (hooked to failure detection by the harnesses),
// standing in for each brick independently re-deriving its representation.
#pragma once

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "dht/heartbeat.h"
#include "dht/ring.h"
#include "sim/simulation.h"
#include "somo/logical_tree.h"
#include "somo/report.h"

namespace p2p::somo {

struct SomoConfig {
  std::size_t fanout = 8;
  sim::Time report_interval_ms = 5000.0;  // the paper's LiquidEye cycle: 5 s
  bool synchronized_gather = false;
  // DEPRECATED alias: forwarded to Transport::set_default_delay_ms at
  // construction, so the bus prices every oracle-less hop — synchronized
  // and unsynchronized gather alike — with this one number. SOMO no longer
  // keeps a private hop-delay path; prefer configuring the transport
  // directly. (Last SomoProtocol constructed wins if several share a sim.)
  sim::Time default_hop_delay_ms = 200.0;
  // Disseminate each completed root view back down the hierarchy, giving
  // every node a recent copy of the global "newscast" (§3.2: SOMO both
  // gathers AND disseminates metadata in O(log_k N) time). A real
  // deployment would delta-compress the downward copies; the simulation
  // shares one immutable snapshot.
  bool disseminate = false;
  // §3.2: "redundant links should be added to increase the robustness;
  // this can be easily accomplished by letting the representative virtual
  // node connect to a random set of parent siblings." When on, a logical
  // node whose parent's host is dead pushes its aggregate to a random
  // alive parent-sibling instead, so gathering survives internal-node
  // failures even before the tree is rebuilt.
  bool redundant_links = false;
};

// Message kinds SOMO puts on the transport bus (TraceRecord::kind).
enum SomoMessageKind : std::uint16_t {
  kMsgPush = 0,           // unsync child → parent aggregate
  kMsgRedundantPush = 1,  // detour push to a parent-sibling (§3.2)
  kMsgSyncCall = 2,       // synchronized "call for reports", downward
  kMsgSyncReply = 3,      // synchronized aggregate, upward
  kMsgDisseminate = 4,    // root view broadcast, downward
};

class SomoProtocol {
 public:
  // Produces the local machine report for a DHT node (coordinates,
  // bandwidth, degree table come from the measurement/pool layers).
  using ReportProvider = std::function<NodeReport(dht::NodeIndex)>;

  SomoProtocol(sim::Simulation& sim, dht::Ring& ring, SomoConfig config,
               ReportProvider provider);

  void Start();
  void Stop();

  // Recompute the logical tree for current membership (after churn). Child
  // aggregate caches survive where the logical node persists.
  void Rebuild();

  // --- sharding -----------------------------------------------------------

  // Bind this instance to one shard of a sim::ShardedSimulation run (same
  // shape as HeartbeatProtocol::BindShard: one instance per shard over the
  // shared ring, `shard_of_host` owned by the caller). After binding, this
  // instance runs timers only for logical nodes whose owner host it owns,
  // and upward pushes land on the parent's owning instance (ReceivePush),
  // keeping all mutable per-logical-node state shard-local. Multi-shard
  // runs support the unsynchronised gather only: the synchronised cascade,
  // dissemination and redundant links thread `this` through downward
  // closures and are CHECK-rejected.
  void BindShard(std::uint32_t shard,
                 const std::vector<std::uint32_t>* shard_of_host,
                 std::vector<SomoProtocol*> peers);

  // Delivery of a child's upward push: runs on the parent's owning
  // instance (== this instance when unbound).
  void ReceivePush(LogicalIndex parent, std::size_t slot, LogicalIndex from,
                   const AggregateReport& payload);

  const LogicalTree& tree() const { return *tree_; }
  const SomoConfig& config() const { return config_; }

  // The root owner's current global view.
  const AggregateReport& RootReport() const { return root_view_; }

  // now − oldest member report at the root (∞ until the first gather
  // completes, i.e. while some machine has never been represented).
  double RootStalenessMs() const;

  // Same, but only over members that are currently alive. A crashed
  // machine's final report lingers in cached aggregates until a Rebuild,
  // which pins RootStalenessMs to the crash time; this variant measures how
  // well gathering tracks the live membership through failures instead.
  double RootAliveStalenessMs() const;

  // True once the root view contains a report from every alive node.
  bool RootViewComplete() const;

  // Query the global view from an arbitrary node: routes to the root owner
  // over the DHT and returns the routing cost alongside the view.
  struct QueryResult {
    dht::RouteResult route;
    const AggregateReport* view = nullptr;
  };
  QueryResult QueryFromNode(dht::NodeIndex n) const;

  // Dissemination (requires config.disseminate): the latest global view
  // received by DHT node `n`, or null if none arrived yet.
  struct NodeView {
    std::shared_ptr<const AggregateReport> view;
    sim::Time received_at = -1.0;
    bool valid() const { return view != nullptr; }
  };
  const NodeView& ViewAt(dht::NodeIndex n) const;
  // now − the oldest member report in n's copy of the view (∞ if none).
  double ViewStalenessMs(dht::NodeIndex n) const;
  // Nodes holding a valid view.
  std::size_t nodes_with_view() const;

  // §3.2 self-optimisation: swap ids so the node maximising `capacity`
  // hosts the root logical point. Returns the new root owner.
  dht::NodeIndex OptimizeRoot(
      const std::function<double(dht::NodeIndex)>& capacity);

  // The fully in-band variant: the capacity argmax was merge-sorted up the
  // tree inside the aggregates (NodeReport::capacity); swap the root to
  // the advertised best node. Returns the new root owner, or kNoNode when
  // the view is empty or carries no capacities.
  dht::NodeIndex OptimizeRootFromView();

  std::size_t gathers_completed() const { return gathers_completed_; }
  std::size_t messages_sent() const { return messages_; }
  // Modelled wire bytes of all gather/dissemination traffic so far.
  std::size_t bytes_sent() const { return bytes_; }
  std::size_t redundant_pushes() const { return redundant_pushes_; }

 private:
  void ScheduleLogicalTimers();
  void FireLogical(LogicalIndex l);
  void PushToParent(LogicalIndex l);
  AggregateReport ComputeAggregate(LogicalIndex l) const;
  void OnRootViewRefreshed();
  // `wire` is the view's encoded size, measured once per snapshot at the
  // root and carried down — re-measuring per downward hop would cost
  // O(members) per send now that SerializedBytes is a real encoding pass.
  void Disseminate(LogicalIndex l,
                   std::shared_ptr<const AggregateReport> view,
                   std::size_t wire, sim::Time arrival);
  void StartSyncGather();
  void SyncDescend(LogicalIndex l, sim::Time arrival, std::uint64_t round);
  void SyncReplyArrived(LogicalIndex l, const AggregateReport& child_agg,
                        std::uint64_t round);
  // Metrics recorded on every root-view refresh: somo.root.* gauges,
  // somo.report.age_ms member ages, per-level somo.level<k>.age_ms gauges
  // (unsync gather only — sync keeps no per-level caches). For sync rounds
  // `round` keys the start time so somo.gather.latency_ms can be measured.
  void RecordRootMetrics(std::uint64_t round);
  // Inter-host send between two logical-node owners over the bus.
  bool SendBetween(dht::NodeIndex from, dht::NodeIndex to,
                   SomoMessageKind kind, std::size_t bytes,
                   sim::Transport::DeliverFn deliver);

  // True when this instance runs logical node l's timer (always, unbound).
  bool OwnsLogical(LogicalIndex l) const {
    return shard_of_host_ == nullptr ||
           (*shard_of_host_)[ring_.node(tree_->node(l).owner).host()] ==
               shard_;
  }
  // The instance owning logical node l (this, when unbound).
  SomoProtocol* PeerForLogical(LogicalIndex l) {
    if (shard_of_host_ == nullptr) return this;
    return peers_[(*shard_of_host_)[ring_.node(tree_->node(l).owner)
                                        .host()]];
  }

  sim::Simulation& sim_;
  dht::Ring& ring_;
  SomoConfig config_;
  ReportProvider provider_;
  std::unique_ptr<LogicalTree> tree_;
  bool running_ = false;

  // Sharding (empty/null when unbound — see BindShard).
  std::uint32_t shard_ = 0;
  const std::vector<std::uint32_t>* shard_of_host_ = nullptr;
  std::vector<SomoProtocol*> peers_;

  // Per logical node: cached aggregate most recently computed/pushed, and
  // the aggregates received from children (index into children vector).
  // In-flight synchronised gather at one logical node; rounds may overlap
  // when the cascade round-trip exceeds the reporting interval, so each
  // round keeps its own accumulator.
  struct PendingGather {
    std::size_t pending = 0;
    AggregateReport agg;
  };
  // Flat, index-keyed per-logical-node state. The adopted/sync tables used
  // to be unordered_maps; both hold a handful of entries (≤ fanout uncles,
  // ≤ a few overlapping sync rounds), so sorted/linear vectors beat hash
  // tables on both bytes and lookup time — and iteration order becomes
  // deterministic by construction.
  struct AdoptedEntry {
    LogicalIndex from;
    AggregateReport agg;
  };
  struct SyncRound {
    std::uint64_t round;
    PendingGather gather;
  };
  struct LogicalState {
    AggregateReport own;  // leaf: last local report; internal: last merge
    std::vector<AggregateReport> from_children;
    // Aggregates adopted from "nephews" whose parent's host is dead
    // (redundant-links mode), keyed by the pushing logical node; sorted by
    // `from` (ComputeAggregate merges in that order).
    std::vector<AdoptedEntry> adopted;
    std::vector<SyncRound> sync;  // in-flight rounds, insertion order
  };
  std::vector<LogicalState> state_;
  std::vector<sim::Simulation::PeriodicToken> timers_;
  AggregateReport root_view_;
  std::vector<NodeView> node_views_;  // dissemination targets, by NodeIndex

  std::size_t gathers_completed_ = 0;
  std::size_t messages_ = 0;
  std::size_t bytes_ = 0;
  std::size_t redundant_pushes_ = 0;
  std::uint64_t sync_round_counter_ = 0;

  // somo.* instrumentation, cached from the simulation's registry at
  // construction.
  obs::Counter* m_gathers_;
  obs::Counter* m_messages_;
  obs::Counter* m_bytes_;
  obs::Counter* m_redundant_;
  obs::Gauge* m_root_staleness_;
  obs::Gauge* m_root_members_;
  obs::Histogram* m_gather_latency_;  // sync rounds only
  obs::Histogram* m_report_age_;
  // Launch time of each in-flight synchronized round (somo.gather.latency).
  // Few rounds overlap, so a flat vector with linear probes suffices.
  std::vector<std::pair<std::uint64_t, sim::Time>> sync_started_;

 public:
  // Resident bytes of this protocol instance's per-logical-node state
  // (cached aggregates, dissemination views, timers). Feeds the
  // mem.bytes_per_host gauge.
  std::size_t MemoryBytes() const;
};

}  // namespace p2p::somo
