#include "bwest/packet_pair.h"

#include "util/check.h"

namespace p2p::bwest {

PacketPairProbe::PacketPairProbe(const net::BandwidthModel& model,
                                 PacketPairOptions options, util::Rng& rng)
    : model_(model), options_(options), rng_(rng) {
  P2P_CHECK(options_.packet_bytes > 0.0);
  P2P_CHECK(options_.dispersion_noise >= 0.0 &&
            options_.dispersion_noise < 1.0);
}

double PacketPairProbe::IdealDispersionMs(std::size_t from_host,
                                          std::size_t to_host) const {
  const double bottleneck_kbps =
      model_.PathBottleneckKbps(from_host, to_host);
  // S bits / (kbps * 1000 bits/s) seconds → ms. kbps = kilobit/s.
  const double bits = options_.packet_bytes * 8.0;
  return bits / (bottleneck_kbps * 1000.0) * 1000.0;
}

std::optional<double> PacketPairProbe::Probe(std::size_t from_host,
                                             std::size_t to_host) {
  if (transport_ != nullptr) {
    sim::Message msg;
    msg.src_host = from_host;
    msg.dst_host = to_host;
    msg.protocol = sim::Protocol::kBwest;
    msg.bytes = static_cast<std::size_t>(2.0 * options_.packet_bytes);
    sim::SendOptions opts;
    opts.inline_delivery = true;
    if (!transport_->Send(msg, nullptr, opts)) {
      ++probes_;
      ++dropped_;
      if (m_probes_ != nullptr) {
        m_probes_->Inc();
        m_dropped_->Inc();
      }
      return std::nullopt;
    }
  }
  return MeasureKbps(from_host, to_host);
}

void PacketPairProbe::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    m_probes_ = nullptr;
    m_dropped_ = nullptr;
    m_estimate_ = nullptr;
    return;
  }
  m_probes_ = &registry->counter("bwest.probes");
  m_dropped_ = &registry->counter("bwest.probes_dropped");
  m_estimate_ = &registry->histogram("bwest.estimate_kbps");
}

double PacketPairProbe::MeasureKbps(std::size_t from_host,
                                    std::size_t to_host) {
  ++probes_;
  double dispersion_ms = IdealDispersionMs(from_host, to_host);
  if (options_.dispersion_noise > 0.0) {
    dispersion_ms *= rng_.Uniform(1.0 - options_.dispersion_noise,
                                  1.0 + options_.dispersion_noise);
  }
  const double bits = options_.packet_bytes * 8.0;
  const double kbps = bits / (dispersion_ms / 1000.0) / 1000.0;
  if (m_probes_ != nullptr) {
    m_probes_->Inc();
    m_estimate_->Add(kbps);
  }
  return kbps;
}

}  // namespace p2p::bwest
