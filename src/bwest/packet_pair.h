// Packet-pair bottleneck-bandwidth measurement (paper §4.2, after Lai [21]):
// two back-to-back packets of size S traverse the path; the receiver
// measures their dispersion T, which the bottleneck link stretches to
// T = S / bottleneck, and estimates bottleneck = S / T.
//
// The simulated path's true bottleneck follows the paper's last-hop
// assumption: min(uplink(sender), downlink(receiver)). Optional
// cross-traffic noise perturbs the measured dispersion multiplicatively.
#pragma once

#include <optional>

#include "net/bandwidth_model.h"
#include "obs/metrics.h"
#include "sim/transport.h"
#include "util/rng.h"

namespace p2p::bwest {

struct PacketPairOptions {
  double packet_bytes = 1500.0;  // paper: heartbeats padded to ~1.5 KB
  // Relative dispersion jitter from cross traffic: measured T is scaled by
  // a factor uniform in [1-noise, 1+noise]. Cross traffic can only ever
  // *increase* dispersion on real networks, but receiver timestamp
  // quantisation cuts both ways; a symmetric jitter keeps the estimator
  // unbiased, which is what the paper's near-zero error curves assume.
  double dispersion_noise = 0.0;
};

class PacketPairProbe {
 public:
  PacketPairProbe(const net::BandwidthModel& model, PacketPairOptions options,
                  util::Rng& rng);

  // Route standalone probes over the simulation's message bus: each Probe()
  // becomes one kBwest message (the back-to-back pair, delivered inline —
  // dispersion is what's measured, so the pair's own latency is not
  // re-simulated), and fault injection can eat it.
  void BindTransport(sim::Transport* transport) { transport_ = transport; }

  // One standalone probe of the directed path from → to; returns the
  // estimated bottleneck bandwidth in kbps, or nullopt when the transport
  // dropped the pair (only possible once bound to a bus with faults on).
  std::optional<double> Probe(std::size_t from_host, std::size_t to_host);

  // Direct measurement, never touching the bus. For probes piggybacked on
  // a message that is already on the bus (heartbeat padding, §4.2) and for
  // callers outside the event simulation.
  double MeasureKbps(std::size_t from_host, std::size_t to_host);

  // Dispersion (ms) a probe of this path would observe, before noise.
  double IdealDispersionMs(std::size_t from_host, std::size_t to_host) const;

  std::size_t probes_sent() const { return probes_; }
  std::size_t probes_dropped() const { return dropped_; }

  // Optional instrumentation: bwest.probes / bwest.probes_dropped counters
  // and the bwest.estimate_kbps histogram of returned estimates.
  void set_metrics(obs::MetricsRegistry* registry);

 private:
  const net::BandwidthModel& model_;
  PacketPairOptions options_;
  util::Rng& rng_;
  sim::Transport* transport_ = nullptr;
  std::size_t probes_ = 0;
  std::size_t dropped_ = 0;
  obs::Counter* m_probes_ = nullptr;
  obs::Counter* m_dropped_ = nullptr;
  obs::Histogram* m_estimate_ = nullptr;
};

}  // namespace p2p::bwest
