#include "bwest/estimator.h"

#include <algorithm>

#include "util/check.h"

namespace p2p::bwest {

BandwidthEstimator::BandwidthEstimator(const dht::Ring& ring,
                                       const net::BandwidthModel& model,
                                       PacketPairOptions options,
                                       util::Rng& rng)
    : ring_(ring), model_(model), probe_(model, options, rng) {
  estimates_.resize(ring_.size());
}

double BandwidthEstimator::TrueUpKbps(dht::NodeIndex n) const {
  return model_.host(ring_.node(n).host()).up_kbps;
}

double BandwidthEstimator::TrueDownKbps(dht::NodeIndex n) const {
  return model_.host(ring_.node(n).host()).down_kbps;
}

void BandwidthEstimator::FoldProbe(dht::NodeIndex from, dht::NodeIndex to,
                                   double measured) {
  if (estimates_.size() < ring_.size()) estimates_.resize(ring_.size());
  // The measurement bounds the sender's uplink and the receiver's downlink
  // from below; "max of measured bottlenecks" is the paper's estimator.
  auto& up = estimates_[from];
  up.up_kbps = up.up_samples == 0 ? measured : std::max(up.up_kbps, measured);
  ++up.up_samples;
  auto& down = estimates_[to];
  down.down_kbps =
      down.down_samples == 0 ? measured : std::max(down.down_kbps, measured);
  ++down.down_samples;
}

void BandwidthEstimator::EstimateAll() {
  if (estimates_.size() < ring_.size()) estimates_.resize(ring_.size());
  for (const dht::NodeIndex n : ring_.SortedAlive()) {
    for (const auto& e : ring_.node(n).leafset().Members()) {
      if (!ring_.node(e.node).alive()) continue;
      const auto m =
          probe_.Probe(ring_.node(n).host(), ring_.node(e.node).host());
      if (m.has_value()) FoldProbe(n, e.node, *m);
    }
  }
}

void BandwidthEstimator::AttachTo(dht::HeartbeatProtocol& heartbeat) {
  // Direct measurement, not a second bus message: the heartbeat that just
  // arrived IS the padded pair, so its wire bytes (and any loss) were
  // already accounted to kHeartbeat by the transport.
  heartbeat.AddObserver([this](dht::NodeIndex from, dht::NodeIndex to,
                               sim::Time /*send_t*/, sim::Time /*recv_t*/) {
    const double m =
        probe_.MeasureKbps(ring_.node(from).host(), ring_.node(to).host());
    FoldProbe(from, to, m);
  });
}

double BandwidthEstimator::UpRelativeError(dht::NodeIndex n) const {
  const auto& e = estimates_.at(n);
  P2P_CHECK_MSG(e.up_samples > 0, "node " << n << " has no uplink samples");
  const double truth = TrueUpKbps(n);
  return std::abs(e.up_kbps - truth) / truth;
}

double BandwidthEstimator::DownRelativeError(dht::NodeIndex n) const {
  const auto& e = estimates_.at(n);
  P2P_CHECK_MSG(e.down_samples > 0,
                "node " << n << " has no downlink samples");
  const double truth = TrueDownKbps(n);
  return std::abs(e.down_kbps - truth) / truth;
}

double BandwidthEstimator::UpRankingAccuracy() const {
  const auto alive = ring_.SortedAlive();
  std::size_t agree = 0;
  std::size_t total = 0;
  for (std::size_t i = 0; i < alive.size(); ++i) {
    if (estimates_.at(alive[i]).up_samples == 0) continue;
    for (std::size_t j = i + 1; j < alive.size(); ++j) {
      if (estimates_.at(alive[j]).up_samples == 0) continue;
      const double et_i = estimates_[alive[i]].up_kbps;
      const double et_j = estimates_[alive[j]].up_kbps;
      const double tr_i = TrueUpKbps(alive[i]);
      const double tr_j = TrueUpKbps(alive[j]);
      // Count a pair as agreeing when the estimated order matches the true
      // order (ties in either ordering count as agreement).
      const auto sign = [](double x) { return x < 0 ? -1 : (x > 0 ? 1 : 0); };
      if (sign(et_i - et_j) == sign(tr_i - tr_j) || sign(tr_i - tr_j) == 0 ||
          sign(et_i - et_j) == 0) {
        ++agree;
      }
      ++total;
    }
  }
  return total == 0 ? 1.0 : static_cast<double>(agree) /
                                static_cast<double>(total);
}

}  // namespace p2p::bwest
