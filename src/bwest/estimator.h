// Leafset bandwidth estimator (paper §4.2): a node's upstream bottleneck
// bandwidth is estimated as the MAXIMUM of the measured bottlenecks from
// itself to its leafset members (each limited by min(own uplink, member
// downlink)); its downstream estimate is the maximum of the measured
// bottlenecks from the members to itself. With enough leafset members, some
// member's downlink exceeds the node's uplink and the uplink estimate
// becomes exact.
#pragma once

#include <vector>

#include "bwest/packet_pair.h"
#include "dht/heartbeat.h"
#include "dht/ring.h"

namespace p2p::bwest {

struct BandwidthEstimate {
  double up_kbps = 0.0;
  double down_kbps = 0.0;
  std::size_t up_samples = 0;
  std::size_t down_samples = 0;
};

class BandwidthEstimator {
 public:
  BandwidthEstimator(const dht::Ring& ring, const net::BandwidthModel& model,
                     PacketPairOptions options, util::Rng& rng);

  // Route every probe over the message bus (accounting, tracing, and fault
  // injection); a dropped pair simply yields no sample.
  void BindTransport(sim::Transport* transport) {
    probe_.BindTransport(transport);
  }

  // Synchronous mode: every alive node probes every leafset member once in
  // each direction and folds the results in.
  void EstimateAll();

  // Event-driven mode: each heartbeat delivery doubles as a padded
  // back-to-back pair, i.e. one probe of (sender → receiver); the receiver
  // folds the measurement into both its own downlink estimate and (via the
  // piggybacked reply the paper describes) the sender's uplink estimate.
  void AttachTo(dht::HeartbeatProtocol& heartbeat);

  const BandwidthEstimate& estimate(dht::NodeIndex n) const {
    return estimates_.at(n);
  }

  // True capacities of the host behind node n.
  double TrueUpKbps(dht::NodeIndex n) const;
  double TrueDownKbps(dht::NodeIndex n) const;

  // |est − true| / true for the given node (requires ≥1 sample).
  double UpRelativeError(dht::NodeIndex n) const;
  double DownRelativeError(dht::NodeIndex n) const;

  // Fraction of alive-node pairs whose uplink ranking by estimate matches
  // the ranking by true capacity ("the ranking is 100 % correct", §4.2).
  double UpRankingAccuracy() const;

 private:
  void FoldProbe(dht::NodeIndex from, dht::NodeIndex to, double measured);

  const dht::Ring& ring_;
  const net::BandwidthModel& model_;
  PacketPairProbe probe_;
  std::vector<BandwidthEstimate> estimates_;
};

}  // namespace p2p::bwest
