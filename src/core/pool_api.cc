#include "core/pool_api.h"

#include "util/check.h"

namespace p2p {

Pool::Pool(PoolOptions options)
    : options_(std::move(options)),
      threads_(options_.build_threads),
      resources_(options_.config, &threads_),
      market_(resources_, options_.scheduling),
      sweep_rng_(options_.config.seed ^ 0x9e3779b97f4a7c15ULL) {}

alm::SessionId Pool::CreateSession(std::size_t root,
                                   std::vector<std::size_t> members,
                                   int priority) {
  alm::SessionSpec spec;
  spec.id = next_id_++;
  spec.priority = priority;
  spec.root = root;
  spec.members = std::move(members);
  const alm::SessionId id = spec.id;
  market_.AddSession(std::move(spec));
  return id;
}

void Pool::EndSession(alm::SessionId id) { market_.RemoveSession(id); }

void Pool::RunMarketSweep() { market_.ReschedulingSweep(sweep_rng_); }

}  // namespace p2p
