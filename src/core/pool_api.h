// p2p::Pool — the library's front door. Assembles the whole stack (network
// substrate, DHT, coordinates, bandwidth estimation, degree registry,
// market scheduler) behind a handful of calls:
//
//   p2p::Pool pool;                                  // paper-sized pool
//   auto id = pool.CreateSession(root, members, 1);  // plan + reserve
//   double gain = pool.SessionImprovement(id);       // vs AMCast baseline
//   pool.EndSession(id);                             // release resources
//
// Examples/quickstart.cpp walks through this API end to end.
#pragma once

#include <cstddef>
#include <vector>

#include "pool/market.h"
#include "pool/multi_session_sim.h"
#include "pool/resource_pool.h"
#include "util/thread_pool.h"

namespace p2p {

struct PoolOptions {
  pool::PoolConfig config;
  pool::TaskManagerOptions scheduling;
  // Threads for pool construction (0 = hardware concurrency).
  std::size_t build_threads = 0;
};

class Pool {
 public:
  explicit Pool(PoolOptions options = {});

  // Number of end systems in the pool.
  std::size_t size() const { return resources_.size(); }

  // Create, plan and reserve an ALM session. `members` excludes the root;
  // priority 1 (highest) .. 3. Returns the session id.
  alm::SessionId CreateSession(std::size_t root,
                               std::vector<std::size_t> members,
                               int priority = 1);

  // Tear the session down and release its resources.
  void EndSession(alm::SessionId id);

  const pool::TaskManager& session(alm::SessionId id) const {
    return market_.session(id);
  }

  // (H_AMCast − H_session)/H_AMCast for the session's current plan.
  double SessionImprovement(alm::SessionId id) {
    return market_.session(id).CurrentImprovement();
  }

  // One market round: every session re-examines its plan against current
  // availability (call after sessions end to let survivors pick up freed
  // resources).
  void RunMarketSweep();

  pool::ResourcePool& resources() { return resources_; }
  const pool::ResourcePool& resources() const { return resources_; }
  pool::MarketScheduler& market() { return market_; }

 private:
  PoolOptions options_;
  util::ThreadPool threads_;
  pool::ResourcePool resources_;
  pool::MarketScheduler market_;
  util::Rng sweep_rng_;
  alm::SessionId next_id_ = 1;
};

}  // namespace p2p
