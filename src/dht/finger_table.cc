#include "dht/finger_table.h"

#include "util/check.h"

namespace p2p::dht {

namespace {
inline bool SameEntry(const LeafsetEntry& a, const LeafsetEntry& b) {
  return a.id == b.id && a.node == b.node;
}
}  // namespace

std::size_t FingerTable::RunIndexOf(std::size_t i) const {
  P2P_DCHECK(i < kBits);
  // Last run whose first <= i. Runs are few (~log N); scan from the back,
  // which also makes the common sequential-rebuild Set(i) pattern O(1).
  std::size_t k = runs_.size();
  while (runs_[--k].first > i) {
  }
  return k;
}

void FingerTable::CoalesceAt(std::size_t k) {
  if (k == 0 || k >= runs_.size()) return;
  if (SameEntry(runs_[k - 1].entry, runs_[k].entry))
    runs_.erase(runs_.begin() + static_cast<std::ptrdiff_t>(k));
}

void FingerTable::Set(std::size_t i, NodeId id, NodeIndex node) {
  P2P_CHECK(i < kBits);
  std::size_t k = RunIndexOf(i);
  const LeafsetEntry entry{id, node};
  if (SameEntry(runs_[k].entry, entry)) return;
  const std::size_t a = runs_[k].first;
  const std::size_t b = RunEnd(k);
  const LeafsetEntry old = runs_[k].entry;
  // Split [a, b) around i, writing the new entry into a run of its own.
  if (i > a) {
    // Keep [a, i) as the old run; insert [i, …) after it.
    runs_.insert(runs_.begin() + static_cast<std::ptrdiff_t>(k + 1),
                 {static_cast<std::uint8_t>(i), entry});
    ++k;
  } else {
    runs_[k].entry = entry;
  }
  if (i + 1 < b) {
    runs_.insert(runs_.begin() + static_cast<std::ptrdiff_t>(k + 1),
                 {static_cast<std::uint8_t>(i + 1), old});
  }
  // Only the seams around the written run can have become equal.
  CoalesceAt(k + 1);
  CoalesceAt(k);
}

void FingerTable::Invalidate(NodeIndex node) {
  for (std::size_t k = 0; k < runs_.size(); ++k) {
    if (runs_[k].entry.node == node) runs_[k].entry = {0, kNoNode};
  }
  // Invalidation can equalise any neighbouring pair; sweep once.
  for (std::size_t k = 1; k < runs_.size();) {
    if (SameEntry(runs_[k - 1].entry, runs_[k].entry))
      runs_.erase(runs_.begin() + static_cast<std::ptrdiff_t>(k));
    else
      ++k;
  }
}

NodeIndex FingerTable::ClosestPreceding(NodeId key) const {
  // Argmax of clockwise progress over distinct entries — each run's entry
  // need only be considered once.
  NodeIndex best = kNoNode;
  NodeId best_dist = 0;
  for (std::size_t k = runs_.size(); k-- > 0;) {
    const auto& e = runs_[k].entry;
    if (e.node == kNoNode || e.id == owner_) continue;
    // Strictly inside (owner, key): progress without overshoot.
    if (!InArc(owner_, e.id, key) || e.id == key) continue;
    const NodeId progress = ClockwiseDistance(owner_, e.id);
    if (best == kNoNode || progress > best_dist) {
      best = e.node;
      best_dist = progress;
    }
  }
  return best;
}

}  // namespace p2p::dht
