#include "dht/finger_table.h"

namespace p2p::dht {

NodeIndex FingerTable::ClosestPreceding(NodeId key) const {
  NodeIndex best = kNoNode;
  NodeId best_dist = 0;
  for (std::size_t i = kBits; i-- > 0;) {
    const auto& e = entries_[i];
    if (e.node == kNoNode || e.id == owner_) continue;
    // Strictly inside (owner, key): progress without overshoot.
    if (!InArc(owner_, e.id, key) || e.id == key) continue;
    const NodeId progress = ClockwiseDistance(owner_, e.id);
    if (best == kNoNode || progress > best_dist) {
      best = e.node;
      best_dist = progress;
    }
  }
  return best;
}

}  // namespace p2p::dht
