#include "dht/maintenance.h"

#include "util/check.h"

namespace p2p::dht {

MaintenanceProtocol::MaintenanceProtocol(sim::Simulation& sim, Ring& ring,
                                         MaintenanceConfig config)
    : sim_(sim), ring_(ring), config_(config) {
  P2P_CHECK(config_.period_ms > 0.0);
  P2P_CHECK(config_.fingers_per_round > 0);
  auto& reg = sim_.metrics();
  m_refreshes_ = &reg.counter("dht.maintenance.refreshes");
  m_failed_ = &reg.counter("dht.maintenance.failed_lookups");
  m_dropped_ = &reg.counter("dht.maintenance.dropped_lookups");
}

void MaintenanceProtocol::Start() {
  P2P_CHECK(!running_);
  running_ = true;
  if (ring_.oracle() != nullptr) sim_.transport().set_oracle(ring_.oracle());
  tokens_.resize(ring_.size());
  for (NodeIndex n = 0; n < ring_.size(); ++n) {
    if (ring_.node(n).alive()) ScheduleNode(n);
  }
}

void MaintenanceProtocol::Stop() {
  running_ = false;
  for (auto& t : tokens_) sim::Simulation::CancelPeriodic(t);
}

void MaintenanceProtocol::OnNodeJoined(NodeIndex n) {
  if (!running_) return;
  if (tokens_.size() <= n) tokens_.resize(n + 1);
  ScheduleNode(n);
}

void MaintenanceProtocol::ScheduleNode(NodeIndex n) {
  const sim::Time phase = sim_.rng().Uniform(0.0, config_.period_ms);
  tokens_[n] =
      sim_.Every(config_.period_ms, phase, [this, n] { RefreshRound(n); });
}

void MaintenanceProtocol::RefreshRound(NodeIndex n) {
  if (!running_ || !ring_.node(n).alive()) return;
  Node& x = ring_.node(n);
  for (std::size_t k = 0; k < config_.fingers_per_round; ++k) {
    const std::size_t i = sim_.rng().NextBounded(FingerTable::kBits);
    const NodeId key = x.fingers().TargetKey(i);
    // Resolve via an actual overlay lookup using current (possibly stale)
    // tables; a failed lookup leaves the entry for the next round.
    const RouteResult r = ring_.Route(n, key);
    if (!r.success) {
      ++failed_lookups_;
      m_failed_->Inc();
      continue;
    }
    ++refreshes_;
    m_refreshes_->Inc();
    // The lookup's repair traffic rides the bus: the response arrives
    // after the route's accumulated latency, and fault injection can eat
    // it (the entry then stays stale until a later round).
    sim::Message msg;
    msg.src_host = x.host();
    msg.dst_host = ring_.node(r.destination).host();
    msg.protocol = sim::Protocol::kMaintenance;
    msg.bytes = kLookupBytes;
    sim::SendOptions opts;
    opts.delay_override_ms = r.latency_ms;
    const NodeIndex dest = r.destination;
    const bool admitted = sim_.transport().Send(
        msg,
        [this, n, i, dest] {
          if (!running_) return;
          if (!ring_.node(n).alive() || !ring_.node(dest).alive()) return;
          Node& node = ring_.node(n);
          node.fingers().Set(i, ring_.node(dest).id(), dest);
          // Pastry-style tables learn from lookup traffic: offer the
          // resolved node for whatever prefix slot it fits (no-op if
          // already filled).
          node.prefix().Offer(ring_.node(dest).id(), dest);
        },
        opts);
    if (!admitted) {
      ++dropped_lookups_;
      m_dropped_->Inc();
    }
  }
}

}  // namespace p2p::dht
