#include "dht/maintenance.h"

#include "util/check.h"

namespace p2p::dht {

MaintenanceProtocol::MaintenanceProtocol(sim::Simulation& sim, Ring& ring,
                                         MaintenanceConfig config)
    : sim_(sim), ring_(ring), config_(config) {
  P2P_CHECK(config_.period_ms > 0.0);
  P2P_CHECK(config_.fingers_per_round > 0);
}

void MaintenanceProtocol::Start() {
  P2P_CHECK(!running_);
  running_ = true;
  tokens_.resize(ring_.size());
  for (NodeIndex n = 0; n < ring_.size(); ++n) {
    if (ring_.node(n).alive()) ScheduleNode(n);
  }
}

void MaintenanceProtocol::Stop() {
  running_ = false;
  for (auto& t : tokens_) sim::Simulation::CancelPeriodic(t);
}

void MaintenanceProtocol::OnNodeJoined(NodeIndex n) {
  if (!running_) return;
  if (tokens_.size() <= n) tokens_.resize(n + 1);
  ScheduleNode(n);
}

void MaintenanceProtocol::ScheduleNode(NodeIndex n) {
  const sim::Time phase = sim_.rng().Uniform(0.0, config_.period_ms);
  tokens_[n] =
      sim_.Every(config_.period_ms, phase, [this, n] { RefreshRound(n); });
}

void MaintenanceProtocol::RefreshRound(NodeIndex n) {
  if (!running_ || !ring_.node(n).alive()) return;
  Node& x = ring_.node(n);
  for (std::size_t k = 0; k < config_.fingers_per_round; ++k) {
    const std::size_t i = sim_.rng().NextBounded(FingerTable::kBits);
    const NodeId key = x.fingers().TargetKey(i);
    // Resolve via an actual overlay lookup using current (possibly stale)
    // tables; a failed lookup leaves the entry for the next round.
    const RouteResult r = ring_.Route(n, key);
    if (!r.success) {
      ++failed_lookups_;
      continue;
    }
    x.fingers().Set(i, ring_.node(r.destination).id(), r.destination);
    // Pastry-style tables learn from lookup traffic: offer the resolved
    // node for whatever prefix slot it fits (no-op if already filled).
    x.prefix().Offer(ring_.node(r.destination).id(), r.destination);
    ++refreshes_;
  }
}

}  // namespace p2p::dht
