#include "dht/ring.h"

#include <algorithm>
#include <unordered_set>

#include "util/check.h"

namespace p2p::dht {

Ring::Ring(std::size_t leafset_size, const net::LatencyOracle* oracle,
           RoutingGeometry geometry)
    : per_side_(leafset_size / 2), oracle_(oracle), geometry_(geometry) {
  P2P_CHECK_MSG(leafset_size >= 2 && leafset_size % 2 == 0,
                "leafset size must be a positive even number, got "
                    << leafset_size);
}

void Ring::RefreshSorted() const {
  if (!sorted_dirty_) return;
  sorted_.clear();
  sorted_.reserve(alive_count_);
  for (NodeIndex i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].alive()) sorted_.push_back({nodes_[i].id(), i});
  }
  std::sort(sorted_.begin(), sorted_.end(),
            [](const LeafsetEntry& a, const LeafsetEntry& b) {
              return a.id < b.id;
            });
  sorted_dirty_ = false;
}

std::vector<NodeIndex> Ring::SortedAlive() const {
  RefreshSorted();
  std::vector<NodeIndex> out;
  out.reserve(sorted_.size());
  for (const auto& e : sorted_) out.push_back(e.node);
  return out;
}

void Ring::FillLeafsetFromSorted(NodeIndex n) {
  RefreshSorted();
  Node& x = nodes_[n];
  x.leafset().Clear();
  const std::size_t m = sorted_.size();
  if (m <= 1) return;
  // Position of x in the sorted order.
  const auto it = std::lower_bound(
      sorted_.begin(), sorted_.end(), x.id(),
      [](const LeafsetEntry& e, NodeId id) { return e.id < id; });
  P2P_CHECK(it != sorted_.end() && it->id == x.id());
  const std::size_t pos = static_cast<std::size_t>(it - sorted_.begin());
  const std::size_t take = std::min(per_side_, m - 1);
  for (std::size_t k = 1; k <= take; ++k) {
    const auto& s = sorted_[(pos + k) % m];
    const auto& p = sorted_[(pos + m - k) % m];
    x.leafset().Insert(s.id, s.node);
    x.leafset().Insert(p.id, p.node);
  }
}

NodeIndex Ring::Join(net::HostIdx host, NodeId id) {
  RefreshSorted();
  const auto it = std::lower_bound(
      sorted_.begin(), sorted_.end(), id,
      [](const LeafsetEntry& e, NodeId v) { return e.id < v; });
  P2P_CHECK_MSG(it == sorted_.end() || it->id != id,
                "duplicate node id " << id);
  nodes_.emplace_back(id, host, per_side_);
  const NodeIndex n = nodes_.size() - 1;
  ++alive_count_;
  sorted_dirty_ = true;

  // Bring the joiner and the 2r nodes around it to converged leafsets.
  FillLeafsetFromSorted(n);
  for (const auto& e : nodes_[n].leafset().Members())
    FillLeafsetFromSorted(e.node);
  BuildFingers(n);
  BuildPrefixTable(n);
  return n;
}

NodeIndex Ring::JoinHashed(net::HostIdx host, std::uint64_t salt) {
  NodeId id = HashHostToId(static_cast<std::uint64_t>(host) ^ (salt << 32));
  // Resolve the (astronomically unlikely) collision deterministically.
  RefreshSorted();
  while (std::binary_search(sorted_.begin(), sorted_.end(),
                            LeafsetEntry{id, 0},
                            [](const LeafsetEntry& a, const LeafsetEntry& b) {
                              return a.id < b.id;
                            })) {
    id = util::Mix64(id);
  }
  return Join(host, id);
}

NodeIndex Ring::JoinBatchHashed(net::HostIdx first_host, std::size_t count,
                                std::uint64_t salt) {
  P2P_CHECK_MSG(count > 0, "empty batch join");
  RefreshSorted();
  // Collision probing must see pre-existing AND batch-assigned ids, in the
  // same order JoinHashed would (each joiner probes against everyone who
  // joined before it), so both paths assign identical ids.
  std::unordered_set<NodeId> used;
  used.reserve(sorted_.size() + count);
  for (const auto& e : sorted_) used.insert(e.id);
  // First-choice hashes are pure per-host functions: fan the batch out
  // across the pool (identical values under any schedule), then resolve
  // the rare collisions serially in join order so the probe sequence —
  // and therefore every assigned id — matches JoinHashed's exactly.
  std::vector<NodeId> first_choice(count);
  const auto hash_range = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      first_choice[i] = HashHostToId(
          static_cast<std::uint64_t>(first_host + i) ^ (salt << 32));
    }
  };
  if (pool_ != nullptr && count >= 4096) {
    pool_->ParallelForRange(count, 1024, hash_range);
  } else {
    hash_range(0, count);
  }
  const NodeIndex first = nodes_.size();
  nodes_.reserve(nodes_.size() + count);
  for (std::size_t i = 0; i < count; ++i) {
    NodeId id = first_choice[i];
    while (!used.insert(id).second) id = util::Mix64(id);
    nodes_.emplace_back(id, first_host + i, per_side_);
    ++alive_count_;
  }
  sorted_dirty_ = true;
  StabilizeAll();
  return first;
}

void Ring::Leave(NodeIndex n) {
  Node& x = nodes_.at(n);
  P2P_CHECK_MSG(x.alive(), "node " << n << " is not alive");
  x.set_state(NodeState::kLeft);
  --alive_count_;
  sorted_dirty_ = true;
  // Graceful: neighbours drop the node and refill immediately.
  DetectFailure(n);
}

void Ring::Fail(NodeIndex n) {
  Node& x = nodes_.at(n);
  P2P_CHECK_MSG(x.alive(), "node " << n << " is not alive");
  x.set_state(NodeState::kFailed);
  --alive_count_;
  sorted_dirty_ = true;
  // Stale entries remain in neighbours' tables until DetectFailure.
}

void Ring::DetectFailure(NodeIndex n) {
  const NodeId dead_id = nodes_.at(n).id();
  P2P_CHECK(!nodes_[n].alive());
  for (NodeIndex i = 0; i < nodes_.size(); ++i) {
    if (i == n || !nodes_[i].alive()) continue;
    Node& y = nodes_[i];
    y.fingers().Invalidate(n);
    y.prefix().Invalidate(n);
    if (y.leafset().Remove(dead_id)) {
      // Lost a leafset member: refill from converged membership (stands in
      // for the leafset-merge repair exchange of the real protocol).
      FillLeafsetFromSorted(i);
      if (leafset_repairs_ != nullptr) leafset_repairs_->Inc();
    }
  }
}

NodeIndex Ring::ResponsibleFor(NodeId key) const {
  RefreshSorted();
  P2P_CHECK_MSG(!sorted_.empty(), "empty ring");
  // zone(x) = (pred, x]: the responsible node is the first node clockwise
  // at or after the key.
  const auto it = std::lower_bound(
      sorted_.begin(), sorted_.end(), key,
      [](const LeafsetEntry& e, NodeId v) { return e.id < v; });
  return it == sorted_.end() ? sorted_.front().node : it->node;
}

RouteResult Ring::Route(NodeIndex from, NodeId key) const {
  P2P_CHECK(from < nodes_.size());
  P2P_CHECK_MSG(nodes_[from].alive(), "routing from dead node " << from);
  const NodeIndex target = ResponsibleFor(key);
  RouteResult res;
  NodeIndex cur = from;
  NodeIndex last = kNoNode;  // previous hop, for 2-cycle detection
  // Generous hop bound: greedy routing halves the remaining distance per
  // finger hop, then walks at most the leafset span.
  const std::size_t kMaxHops = 2 * FingerTable::kBits + alive_count_;
  while (res.hops <= kMaxHops) {
    if (cur == target) {
      res.destination = cur;
      res.success = true;
      if (route_hops_ != nullptr) {
        route_hops_->Add(static_cast<double>(res.hops));
        if (oracle_ != nullptr) route_latency_->Add(res.latency_ms);
      }
      return res;
    }
    const Node& x = nodes_[cur];
    NodeIndex next = kNoNode;
    // Key's clockwise successor among *alive* leafset members (dead
    // entries may linger until failure detection).
    const NodeIndex alive_succ = [&]() -> NodeIndex {
      NodeIndex best = kNoNode;
      NodeId best_dist = 0;
      for (const auto& e : x.leafset().Members()) {
        if (!nodes_[e.node].alive()) continue;
        const NodeId d = ClockwiseDistance(key, e.id);
        if (best == kNoNode || d < best_dist) {
          best = e.node;
          best_dist = d;
        }
      }
      return best;
    }();
    // Last mile: when the leafset covers the key, the member that is the
    // key's clockwise successor is the responsible node (greedy preceding
    // hops alone would converge on the key's *predecessor* and stall).
    if (x.leafset().Covers(key)) next = alive_succ;
    // Long range: geometry-dependent table lookup.
    if (next == kNoNode) {
      if (geometry_ == RoutingGeometry::kChordFingers) {
        const NodeIndex f = x.fingers().ClosestPreceding(key);
        if (f != kNoNode && nodes_[f].alive()) next = f;
      } else {
        // Pastry: correct the next mismatched digit.
        const LeafsetEntry& e = x.prefix().EntryFor(key);
        if (e.node != kNoNode && nodes_[e.node].alive() && e.node != cur)
          next = e.node;
      }
    }
    // Fall back to any leafset member that makes clockwise progress.
    if (next == kNoNode) {
      const NodeIndex c = x.leafset().ClosestTo(key);
      if (c != kNoNode && nodes_[c].alive()) next = c;
    }
    // Dead-end repair: hop to the key's successor among alive leafset
    // members even without strict progress (mirrors the leafset-repair
    // detour a real implementation takes around stale entries).
    if (next == kNoNode && alive_succ != cur) next = alive_succ;
    // Last resort: walk the ring clockwise via the nearest alive
    // successor-side member. Stale tables can make the greedy step
    // overshoot the responsible node; the walk provably terminates at it
    // (a real implementation reaches the same result through timeout-
    // driven leafset repair and re-routing).
    if ((next == kNoNode || next == last) && res.hops > 0) {
      for (const auto& e : x.leafset().successors()) {
        if (nodes_[e.node].alive() && e.node != last) {
          next = e.node;
          break;
        }
      }
    }
    if (next == kNoNode || next == cur) break;  // stuck: stale tables
    last = cur;
    if (oracle_ != nullptr)
      res.latency_ms += LatencyBetween(cur, next);
    if (trace_ != nullptr) {
      sim::TraceRecord rec;
      rec.time_ms = trace_->now();
      rec.src_host = nodes_[cur].host();
      rec.dst_host = nodes_[next].host();
      rec.protocol = sim::Protocol::kRouting;
      rec.kind = static_cast<std::uint16_t>(res.hops);
      rec.bytes = kRouteHopBytes;
      rec.dropped = false;
      trace_->Append(rec);
    }
    cur = next;
    ++res.hops;
  }
  res.destination = cur;
  res.success = false;
  return res;
}

void Ring::set_metrics(obs::MetricsRegistry* registry) {
  metrics_ = registry;
  if (registry == nullptr) {
    route_hops_ = nullptr;
    route_latency_ = nullptr;
    leafset_repairs_ = nullptr;
    return;
  }
  route_hops_ = &registry->histogram("dht.route.hops");
  route_latency_ = &registry->histogram("dht.route.latency_ms");
  leafset_repairs_ = &registry->counter("dht.leafset.repairs");
}

void Ring::StabilizeAll() {
  // Snapshot the sorted membership once; every per-node rebuild below only
  // reads it (and writes that node's own tables), so the loop is safe to
  // fan out across the pool and lands on identical state either way.
  RefreshSorted();
  const std::size_t m = sorted_.size();
  const auto rebuild = [this](std::size_t begin, std::size_t end) {
    for (std::size_t k = begin; k < end; ++k) {
      const NodeIndex n = sorted_[k].node;
      FillLeafsetFromSorted(n);
      BuildFingers(n);
      BuildPrefixTable(n);
    }
  };
  if (pool_ != nullptr && m >= 2048) {
    pool_->ParallelForRange(m, 512, rebuild);
  } else {
    rebuild(0, m);
  }
}

void Ring::BuildFingers(NodeIndex n) {
  Node& x = nodes_.at(n);
  for (std::size_t i = 0; i < FingerTable::kBits; ++i) {
    const NodeId key = x.fingers().TargetKey(i);
    const NodeIndex r = ResponsibleFor(key);
    x.fingers().Set(i, nodes_[r].id(), r);
  }
}

void Ring::BuildPrefixTable(NodeIndex n) {
  // Equivalent to offering every sorted alive id in ascending order (the
  // historical build): under first-come placement the winner of slot
  // (row, col) is the SMALLEST alive id sharing exactly `row` digits with
  // the owner and carrying digit `col` at position row — i.e. the smallest
  // id in one aligned interval of the ring. One binary search per slot
  // replaces the O(N) offer sweep per node, which was the dominant cost of
  // bulk joins (O(N²) across a bootstrap). dht_prefix_test pins the
  // equivalence against the offer-loop build.
  RefreshSorted();
  Node& x = nodes_.at(n);
  PrefixTable& pt = x.prefix();
  pt.Clear();
  const NodeId owner = x.id();
  const std::size_t bits = pt.bits_per_digit();
  const std::size_t rows = pt.digits();
  const std::size_t cols = pt.columns();
  const auto first_at_or_after = [this](NodeId lo) {
    return std::lower_bound(
        sorted_.begin(), sorted_.end(), lo,
        [](const LeafsetEntry& e, NodeId v) { return e.id < v; });
  };
  for (std::size_t row = 0; row < rows; ++row) {
    // Ids eligible for row `row` or deeper share the owner's first `row`
    // digits — an aligned block. Once the owner is alone in its block, this
    // row and every deeper one stay empty.
    NodeId block_base = 0;
    if (row > 0) {
      const std::size_t shift = 64 - bits * row;
      block_base = (owner >> shift) << shift;
      const NodeId block_end = block_base + (NodeId{1} << shift);  // 0: top
      bool other = false;
      for (auto it = first_at_or_after(block_base);
           it != sorted_.end() && (block_end == 0 || it->id < block_end);
           ++it) {
        if (it->id != owner) {
          other = true;
          break;
        }
      }
      if (!other) break;
    }
    const std::size_t own_digit = pt.DigitOf(owner, row);
    const std::size_t slot_shift = 64 - bits * (row + 1);
    for (std::size_t col = 0; col < cols; ++col) {
      // Ids with digit own_digit here share > row digits: deeper rows.
      if (col == own_digit) continue;
      const NodeId lo = block_base | (static_cast<NodeId>(col) << slot_shift);
      const NodeId hi = lo + (NodeId{1} << slot_shift);  // 0 means wrap: top
      const auto it = first_at_or_after(lo);
      if (it == sorted_.end()) continue;
      if (hi != 0 && it->id >= hi) continue;
      pt.Place(row, col, it->id, it->node);
    }
  }
}

void Ring::SwapNodeIds(NodeIndex a, NodeIndex b) {
  Node& na = nodes_.at(a);
  Node& nb = nodes_.at(b);
  P2P_CHECK_MSG(na.alive() && nb.alive(), "SwapNodeIds needs alive nodes");
  if (a == b) return;
  const NodeId ida = na.id();
  const NodeId idb = nb.id();
  na.ResetRoutingState(idb);
  nb.ResetRoutingState(ida);
  sorted_dirty_ = true;
  // Leafsets referencing either node by its old id must be re-pointed; the
  // set of affected nodes is the union of the 2r-neighbourhoods of both
  // positions, so a full stabilisation is the simple correct repair (ids
  // didn't move for anyone else, so their leafsets come out identical).
  StabilizeAll();
}

std::size_t Ring::MemoryBytes() const {
  std::size_t total = sizeof(*this);
  total += nodes_.capacity() * sizeof(Node);
  for (const Node& x : nodes_) {
    total += x.leafset().HeapBytes();
    total += x.fingers().HeapBytes();
    total += x.prefix().HeapBytes();
  }
  total += sorted_.capacity() * sizeof(LeafsetEntry);
  return total;
}

double Ring::LatencyBetween(NodeIndex a, NodeIndex b) const {
  P2P_CHECK_MSG(oracle_ != nullptr, "ring has no latency oracle");
  return oracle_->Latency(nodes_.at(a).host(), nodes_.at(b).host());
}

void Ring::CheckInvariants() const {
  RefreshSorted();
  // Unique ids.
  for (std::size_t i = 1; i < sorted_.size(); ++i)
    P2P_CHECK_MSG(sorted_[i - 1].id < sorted_[i].id, "duplicate ids");
  // Converged leafsets must match the sorted ring order.
  const std::size_t m = sorted_.size();
  if (m < 2) return;
  for (std::size_t pos = 0; pos < m; ++pos) {
    const Node& x = nodes_[sorted_[pos].node];
    const std::size_t take = std::min(per_side_, m - 1);
    const auto& succ = x.leafset().successors();
    const auto& pred = x.leafset().predecessors();
    P2P_CHECK_MSG(succ.size() == take && pred.size() == take,
                  "leafset of node " << sorted_[pos].node << " not full");
    for (std::size_t k = 1; k <= take; ++k) {
      P2P_CHECK(succ[k - 1].id == sorted_[(pos + k) % m].id);
      P2P_CHECK(pred[k - 1].id == sorted_[(pos + m - k) % m].id);
    }
  }
}

}  // namespace p2p::dht
