#include "dht/ring.h"

#include <algorithm>
#include <unordered_set>

#include "util/check.h"

namespace p2p::dht {

Ring::Ring(std::size_t leafset_size, const net::LatencyOracle* oracle,
           RoutingGeometry geometry)
    : per_side_(leafset_size / 2), oracle_(oracle), geometry_(geometry) {
  P2P_CHECK_MSG(leafset_size >= 2 && leafset_size % 2 == 0,
                "leafset size must be a positive even number, got "
                    << leafset_size);
}

void Ring::RefreshSorted() const {
  if (!sorted_dirty_) return;
  sorted_.clear();
  sorted_.reserve(alive_count_);
  for (NodeIndex i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].alive()) sorted_.push_back({nodes_[i].id(), i});
  }
  std::sort(sorted_.begin(), sorted_.end(),
            [](const LeafsetEntry& a, const LeafsetEntry& b) {
              return a.id < b.id;
            });
  sorted_dirty_ = false;
}

std::vector<NodeIndex> Ring::SortedAlive() const {
  RefreshSorted();
  std::vector<NodeIndex> out;
  out.reserve(sorted_.size());
  for (const auto& e : sorted_) out.push_back(e.node);
  return out;
}

void Ring::FillLeafsetFromSorted(NodeIndex n) {
  RefreshSorted();
  Node& x = nodes_[n];
  x.leafset().Clear();
  const std::size_t m = sorted_.size();
  if (m <= 1) return;
  // Position of x in the sorted order.
  const auto it = std::lower_bound(
      sorted_.begin(), sorted_.end(), x.id(),
      [](const LeafsetEntry& e, NodeId id) { return e.id < id; });
  P2P_CHECK(it != sorted_.end() && it->id == x.id());
  const std::size_t pos = static_cast<std::size_t>(it - sorted_.begin());
  const std::size_t take = std::min(per_side_, m - 1);
  for (std::size_t k = 1; k <= take; ++k) {
    const auto& s = sorted_[(pos + k) % m];
    const auto& p = sorted_[(pos + m - k) % m];
    x.leafset().Insert(s.id, s.node);
    x.leafset().Insert(p.id, p.node);
  }
}

NodeIndex Ring::Join(net::HostIdx host, NodeId id) {
  RefreshSorted();
  const auto it = std::lower_bound(
      sorted_.begin(), sorted_.end(), id,
      [](const LeafsetEntry& e, NodeId v) { return e.id < v; });
  P2P_CHECK_MSG(it == sorted_.end() || it->id != id,
                "duplicate node id " << id);
  nodes_.emplace_back(id, host, per_side_);
  const NodeIndex n = nodes_.size() - 1;
  ++alive_count_;
  sorted_dirty_ = true;

  // Bring the joiner and the 2r nodes around it to converged leafsets.
  FillLeafsetFromSorted(n);
  for (const auto& e : nodes_[n].leafset().Members())
    FillLeafsetFromSorted(e.node);
  BuildFingers(n);
  BuildPrefixTable(n);
  return n;
}

NodeIndex Ring::JoinHashed(net::HostIdx host, std::uint64_t salt) {
  NodeId id = HashHostToId(static_cast<std::uint64_t>(host) ^ (salt << 32));
  // Resolve the (astronomically unlikely) collision deterministically.
  RefreshSorted();
  while (std::binary_search(sorted_.begin(), sorted_.end(),
                            LeafsetEntry{id, 0},
                            [](const LeafsetEntry& a, const LeafsetEntry& b) {
                              return a.id < b.id;
                            })) {
    id = util::Mix64(id);
  }
  return Join(host, id);
}

NodeIndex Ring::JoinBatchHashed(net::HostIdx first_host, std::size_t count,
                                std::uint64_t salt) {
  P2P_CHECK_MSG(count > 0, "empty batch join");
  RefreshSorted();
  // Collision probing must see pre-existing AND batch-assigned ids, in the
  // same order JoinHashed would (each joiner probes against everyone who
  // joined before it), so both paths assign identical ids.
  std::unordered_set<NodeId> used;
  used.reserve(sorted_.size() + count);
  for (const auto& e : sorted_) used.insert(e.id);
  const NodeIndex first = nodes_.size();
  nodes_.reserve(nodes_.size() + count);
  for (std::size_t i = 0; i < count; ++i) {
    const net::HostIdx host = first_host + i;
    NodeId id = HashHostToId(static_cast<std::uint64_t>(host) ^ (salt << 32));
    while (!used.insert(id).second) id = util::Mix64(id);
    nodes_.emplace_back(id, host, per_side_);
    ++alive_count_;
  }
  sorted_dirty_ = true;
  StabilizeAll();
  return first;
}

void Ring::Leave(NodeIndex n) {
  Node& x = nodes_.at(n);
  P2P_CHECK_MSG(x.alive(), "node " << n << " is not alive");
  x.set_state(NodeState::kLeft);
  --alive_count_;
  sorted_dirty_ = true;
  // Graceful: neighbours drop the node and refill immediately.
  DetectFailure(n);
}

void Ring::Fail(NodeIndex n) {
  Node& x = nodes_.at(n);
  P2P_CHECK_MSG(x.alive(), "node " << n << " is not alive");
  x.set_state(NodeState::kFailed);
  --alive_count_;
  sorted_dirty_ = true;
  // Stale entries remain in neighbours' tables until DetectFailure.
}

void Ring::DetectFailure(NodeIndex n) {
  const NodeId dead_id = nodes_.at(n).id();
  P2P_CHECK(!nodes_[n].alive());
  for (NodeIndex i = 0; i < nodes_.size(); ++i) {
    if (i == n || !nodes_[i].alive()) continue;
    Node& y = nodes_[i];
    y.fingers().Invalidate(n);
    y.prefix().Invalidate(n);
    if (y.leafset().Remove(dead_id)) {
      // Lost a leafset member: refill from converged membership (stands in
      // for the leafset-merge repair exchange of the real protocol).
      FillLeafsetFromSorted(i);
      if (leafset_repairs_ != nullptr) leafset_repairs_->Inc();
    }
  }
}

NodeIndex Ring::ResponsibleFor(NodeId key) const {
  RefreshSorted();
  P2P_CHECK_MSG(!sorted_.empty(), "empty ring");
  // zone(x) = (pred, x]: the responsible node is the first node clockwise
  // at or after the key.
  const auto it = std::lower_bound(
      sorted_.begin(), sorted_.end(), key,
      [](const LeafsetEntry& e, NodeId v) { return e.id < v; });
  return it == sorted_.end() ? sorted_.front().node : it->node;
}

RouteResult Ring::Route(NodeIndex from, NodeId key) const {
  P2P_CHECK(from < nodes_.size());
  P2P_CHECK_MSG(nodes_[from].alive(), "routing from dead node " << from);
  const NodeIndex target = ResponsibleFor(key);
  RouteResult res;
  NodeIndex cur = from;
  NodeIndex last = kNoNode;  // previous hop, for 2-cycle detection
  // Generous hop bound: greedy routing halves the remaining distance per
  // finger hop, then walks at most the leafset span.
  const std::size_t kMaxHops = 2 * FingerTable::kBits + alive_count_;
  while (res.hops <= kMaxHops) {
    if (cur == target) {
      res.destination = cur;
      res.success = true;
      if (route_hops_ != nullptr) {
        route_hops_->Add(static_cast<double>(res.hops));
        if (oracle_ != nullptr) route_latency_->Add(res.latency_ms);
      }
      return res;
    }
    const Node& x = nodes_[cur];
    NodeIndex next = kNoNode;
    // Key's clockwise successor among *alive* leafset members (dead
    // entries may linger until failure detection).
    const NodeIndex alive_succ = [&]() -> NodeIndex {
      NodeIndex best = kNoNode;
      NodeId best_dist = 0;
      for (const auto& e : x.leafset().Members()) {
        if (!nodes_[e.node].alive()) continue;
        const NodeId d = ClockwiseDistance(key, e.id);
        if (best == kNoNode || d < best_dist) {
          best = e.node;
          best_dist = d;
        }
      }
      return best;
    }();
    // Last mile: when the leafset covers the key, the member that is the
    // key's clockwise successor is the responsible node (greedy preceding
    // hops alone would converge on the key's *predecessor* and stall).
    if (x.leafset().Covers(key)) next = alive_succ;
    // Long range: geometry-dependent table lookup.
    if (next == kNoNode) {
      if (geometry_ == RoutingGeometry::kChordFingers) {
        const NodeIndex f = x.fingers().ClosestPreceding(key);
        if (f != kNoNode && nodes_[f].alive()) next = f;
      } else {
        // Pastry: correct the next mismatched digit.
        const LeafsetEntry& e = x.prefix().EntryFor(key);
        if (e.node != kNoNode && nodes_[e.node].alive() && e.node != cur)
          next = e.node;
      }
    }
    // Fall back to any leafset member that makes clockwise progress.
    if (next == kNoNode) {
      const NodeIndex c = x.leafset().ClosestTo(key);
      if (c != kNoNode && nodes_[c].alive()) next = c;
    }
    // Dead-end repair: hop to the key's successor among alive leafset
    // members even without strict progress (mirrors the leafset-repair
    // detour a real implementation takes around stale entries).
    if (next == kNoNode && alive_succ != cur) next = alive_succ;
    // Last resort: walk the ring clockwise via the nearest alive
    // successor-side member. Stale tables can make the greedy step
    // overshoot the responsible node; the walk provably terminates at it
    // (a real implementation reaches the same result through timeout-
    // driven leafset repair and re-routing).
    if ((next == kNoNode || next == last) && res.hops > 0) {
      for (const auto& e : x.leafset().successors()) {
        if (nodes_[e.node].alive() && e.node != last) {
          next = e.node;
          break;
        }
      }
    }
    if (next == kNoNode || next == cur) break;  // stuck: stale tables
    last = cur;
    if (oracle_ != nullptr)
      res.latency_ms += LatencyBetween(cur, next);
    if (trace_ != nullptr) {
      sim::TraceRecord rec;
      rec.time_ms = trace_->now();
      rec.src_host = nodes_[cur].host();
      rec.dst_host = nodes_[next].host();
      rec.protocol = sim::Protocol::kRouting;
      rec.kind = static_cast<std::uint16_t>(res.hops);
      rec.bytes = kRouteHopBytes;
      rec.dropped = false;
      trace_->Append(rec);
    }
    cur = next;
    ++res.hops;
  }
  res.destination = cur;
  res.success = false;
  return res;
}

void Ring::set_metrics(obs::MetricsRegistry* registry) {
  metrics_ = registry;
  if (registry == nullptr) {
    route_hops_ = nullptr;
    route_latency_ = nullptr;
    leafset_repairs_ = nullptr;
    return;
  }
  route_hops_ = &registry->histogram("dht.route.hops");
  route_latency_ = &registry->histogram("dht.route.latency_ms");
  leafset_repairs_ = &registry->counter("dht.leafset.repairs");
}

void Ring::StabilizeAll() {
  RefreshSorted();
  for (const auto& e : sorted_) {
    FillLeafsetFromSorted(e.node);
    BuildFingers(e.node);
    BuildPrefixTable(e.node);
  }
}

void Ring::BuildFingers(NodeIndex n) {
  Node& x = nodes_.at(n);
  for (std::size_t i = 0; i < FingerTable::kBits; ++i) {
    const NodeId key = x.fingers().TargetKey(i);
    const NodeIndex r = ResponsibleFor(key);
    x.fingers().Set(i, nodes_[r].id(), r);
  }
}

void Ring::BuildPrefixTable(NodeIndex n) {
  RefreshSorted();
  Node& x = nodes_.at(n);
  x.prefix().Clear();
  for (const auto& e : sorted_) x.prefix().Offer(e.id, e.node);
}

void Ring::SwapNodeIds(NodeIndex a, NodeIndex b) {
  Node& na = nodes_.at(a);
  Node& nb = nodes_.at(b);
  P2P_CHECK_MSG(na.alive() && nb.alive(), "SwapNodeIds needs alive nodes");
  if (a == b) return;
  const NodeId ida = na.id();
  const NodeId idb = nb.id();
  na.ResetRoutingState(idb);
  nb.ResetRoutingState(ida);
  sorted_dirty_ = true;
  // Leafsets referencing either node by its old id must be re-pointed; the
  // set of affected nodes is the union of the 2r-neighbourhoods of both
  // positions, so a full stabilisation is the simple correct repair (ids
  // didn't move for anyone else, so their leafsets come out identical).
  StabilizeAll();
}

double Ring::LatencyBetween(NodeIndex a, NodeIndex b) const {
  P2P_CHECK_MSG(oracle_ != nullptr, "ring has no latency oracle");
  return oracle_->Latency(nodes_.at(a).host(), nodes_.at(b).host());
}

void Ring::CheckInvariants() const {
  RefreshSorted();
  // Unique ids.
  for (std::size_t i = 1; i < sorted_.size(); ++i)
    P2P_CHECK_MSG(sorted_[i - 1].id < sorted_[i].id, "duplicate ids");
  // Converged leafsets must match the sorted ring order.
  const std::size_t m = sorted_.size();
  if (m < 2) return;
  for (std::size_t pos = 0; pos < m; ++pos) {
    const Node& x = nodes_[sorted_[pos].node];
    const std::size_t take = std::min(per_side_, m - 1);
    const auto& succ = x.leafset().successors();
    const auto& pred = x.leafset().predecessors();
    P2P_CHECK_MSG(succ.size() == take && pred.size() == take,
                  "leafset of node " << sorted_[pos].node << " not full");
    for (std::size_t k = 1; k <= take; ++k) {
      P2P_CHECK(succ[k - 1].id == sorted_[(pos + k) % m].id);
      P2P_CHECK(pred[k - 1].id == sorted_[(pos + m - k) % m].id);
    }
  }
}

}  // namespace p2p::dht
