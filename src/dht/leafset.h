// Leafset: the rudimentary routing table of the base ring (paper §3.1) —
// r neighbours to each side of a node, kept sorted by ring proximity.
//
// The leafset is also the substrate for the paper's §4 protocols: nodes
// heartbeat their leafset members, and those interactions yield network
// coordinates and packet-pair bandwidth estimates "for free".
#pragma once

#include <cstddef>
#include <vector>

#include "dht/id.h"

namespace p2p::dht {

// Index of a node within its Ring.
using NodeIndex = std::size_t;
inline constexpr NodeIndex kNoNode = static_cast<NodeIndex>(-1);

struct LeafsetEntry {
  NodeId id;
  NodeIndex node;
};

class Leafset {
 public:
  // `r` neighbours per side (total capacity 2r).
  explicit Leafset(NodeId owner, std::size_t r);

  std::size_t per_side() const { return r_; }
  NodeId owner() const { return owner_; }

  // Insert or refresh a candidate neighbour. Keeps only the r closest on
  // each side. No-op for the owner itself. Returns true if the set changed.
  bool Insert(NodeId id, NodeIndex node);

  // Remove a (failed) member. Returns true if it was present.
  bool Remove(NodeId id);

  void Clear();

  // Successor side: nodes clockwise from the owner, nearest first.
  const std::vector<LeafsetEntry>& successors() const { return succ_; }
  // Predecessor side: nodes counter-clockwise, nearest first.
  const std::vector<LeafsetEntry>& predecessors() const { return pred_; }

  // All members, successors then predecessors (no particular global order).
  std::vector<LeafsetEntry> Members() const;
  std::size_t size() const { return succ_.size() + pred_.size(); }
  bool Contains(NodeId id) const;

  // Immediate successor/predecessor, or kNoNode when the side is empty.
  NodeIndex successor() const { return succ_.empty() ? kNoNode : succ_[0].node; }
  NodeIndex predecessor() const {
    return pred_.empty() ? kNoNode : pred_[0].node;
  }

  // The member whose id is ring-closest to `key` and at or clockwise-before
  // key relative to the owner (routing helper); kNoNode if none better than
  // the owner.
  NodeIndex ClosestTo(NodeId key) const;

  // The member whose id is the first at or clockwise-after `key` — the
  // member that would be responsible for the key under consistent hashing
  // (zone = (pred, id]). kNoNode when the leafset is empty.
  NodeIndex SuccessorOf(NodeId key) const;

  // True iff `key` falls within the leafset's covered arc
  // [farthest predecessor, farthest successor].
  bool Covers(NodeId key) const;

  // Heap bytes held by this leafset (memory accounting; excludes
  // sizeof(*this)).
  std::size_t HeapBytes() const {
    return (succ_.capacity() + pred_.capacity()) * sizeof(LeafsetEntry);
  }

 private:
  NodeId owner_;
  std::size_t r_;
  std::vector<LeafsetEntry> succ_;  // sorted by clockwise distance from owner
  std::vector<LeafsetEntry> pred_;  // sorted by counter-clockwise distance
};

}  // namespace p2p::dht
