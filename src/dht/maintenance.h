// Periodic routing-table maintenance, Chord's fix_fingers style: each node
// refreshes a few finger entries per period by running an actual overlay
// lookup for the finger's target key. Keeps O(log N) routing after churn
// without any global rebuild (Ring::StabilizeAll is the oracle shortcut
// used by harnesses that don't model maintenance time).
#pragma once

#include <vector>

#include "dht/ring.h"
#include "sim/simulation.h"

namespace p2p::dht {

struct MaintenanceConfig {
  sim::Time period_ms = 2000.0;
  // Finger entries each node refreshes per period.
  std::size_t fingers_per_round = 4;
};

// Modelled wire size of one finger-lookup exchange (request + response).
inline constexpr std::size_t kLookupBytes = 64;

class MaintenanceProtocol {
 public:
  MaintenanceProtocol(sim::Simulation& sim, Ring& ring,
                      MaintenanceConfig config = {});

  void Start();
  void Stop();
  void OnNodeJoined(NodeIndex n);

  std::size_t refreshes() const { return refreshes_; }
  std::size_t failed_lookups() const { return failed_lookups_; }
  // Lookups whose response the transport dropped (fault injection); the
  // finger entry stays stale until a later round retries it.
  std::size_t dropped_lookups() const { return dropped_lookups_; }

 private:
  void ScheduleNode(NodeIndex n);
  void RefreshRound(NodeIndex n);

  sim::Simulation& sim_;
  Ring& ring_;
  MaintenanceConfig config_;
  bool running_ = false;
  std::vector<sim::Simulation::PeriodicToken> tokens_;
  // dht.maintenance.* counters, cached from the simulation's registry.
  obs::Counter* m_refreshes_;
  obs::Counter* m_failed_;
  obs::Counter* m_dropped_;
  std::size_t refreshes_ = 0;
  std::size_t failed_lookups_ = 0;
  std::size_t dropped_lookups_ = 0;
};

}  // namespace p2p::dht
