// A DHT node: identifier, hosting end-system, liveness, and its routing
// state (leafset + finger table). Protocol-specific per-node state (network
// coordinates, bandwidth estimates, SOMO reports, degree tables) is owned by
// the respective protocol modules, keyed by NodeIndex — the DHT layer stays
// application-agnostic.
#pragma once

#include "dht/finger_table.h"
#include "dht/id.h"
#include "dht/leafset.h"
#include "dht/prefix_table.h"
#include "net/transit_stub.h"

namespace p2p::dht {

enum class NodeState {
  kAlive,
  kLeft,    // graceful departure: neighbours informed immediately
  kFailed,  // crash: neighbours hold stale entries until detection/repair
};

class Node {
 public:
  Node(NodeId id, net::HostIdx host, std::size_t leafset_per_side)
      : id_(id), host_(host), leafset_(id, leafset_per_side), fingers_(id),
        prefix_(id) {}

  NodeId id() const { return id_; }
  net::HostIdx host() const { return host_; }

  NodeState state() const { return state_; }
  bool alive() const { return state_ == NodeState::kAlive; }
  void set_state(NodeState s) { state_ = s; }

  // Re-key the node to a new id, discarding routing state (used only by
  // Ring::SwapNodeIds for SOMO's root-swap self-optimisation, §3.2: the
  // most capable machine exchanges ids with the holder of the root logical
  // point "without disturbing any other peers").
  void ResetRoutingState(NodeId new_id) {
    const std::size_t r = leafset_.per_side();
    id_ = new_id;
    leafset_ = Leafset(new_id, r);
    fingers_ = FingerTable(new_id);
    prefix_ = PrefixTable(new_id);
  }

  Leafset& leafset() { return leafset_; }
  const Leafset& leafset() const { return leafset_; }

  FingerTable& fingers() { return fingers_; }
  const FingerTable& fingers() const { return fingers_; }

  PrefixTable& prefix() { return prefix_; }
  const PrefixTable& prefix() const { return prefix_; }

 private:
  NodeId id_;
  net::HostIdx host_;
  NodeState state_ = NodeState::kAlive;
  Leafset leafset_;
  FingerTable fingers_;
  PrefixTable prefix_;
};

}  // namespace p2p::dht
