// Pastry/Tapestry-style prefix routing table (paper §3.1 cites both as
// O(log N) designs "built upon the above concept"). Ids are strings of
// 2^b-ary digits (most-significant first); row r holds, for each digit
// value c, a node whose id shares the first r digits with the owner and
// has c as digit r. One hop fixes at least one digit, giving
// O(log_{2^b} N) routing — steeper-base log than Chord fingers.
#pragma once

#include <cstddef>
#include <vector>

#include "dht/id.h"
#include "dht/leafset.h"

namespace p2p::dht {

class PrefixTable {
 public:
  // `bits_per_digit` = b; Pastry's default is 4 (hex digits).
  explicit PrefixTable(NodeId owner, std::size_t bits_per_digit = 4);

  NodeId owner() const { return owner_; }
  std::size_t bits_per_digit() const { return bits_; }
  std::size_t digits() const { return 64 / bits_; }
  std::size_t columns() const { return std::size_t{1} << bits_; }

  // The d-th digit (0 = most significant) of `id`.
  std::size_t DigitOf(NodeId id, std::size_t d) const;

  // Number of leading digits `a` and `b` share.
  std::size_t SharedPrefixDigits(NodeId a, NodeId b) const;

  // Offer a candidate for inclusion; fills the (shared, next-digit) slot
  // if empty (first-come placement, as Pastry's locality-blind baseline).
  // Returns true if the candidate was placed.
  bool Offer(NodeId id, NodeIndex node);

  // Clear all entries (before a rebuild).
  void Clear();

  // Entry for routing `key`: the node at [shared(owner,key)][digit of key],
  // or kNoNode when the slot is empty or key == owner id.
  const LeafsetEntry& EntryFor(NodeId key) const;

  const LeafsetEntry& At(std::size_t row, std::size_t col) const;

  // Remove a failed node everywhere it appears.
  void Invalidate(NodeIndex node);

  std::size_t filled_entries() const { return filled_; }

 private:
  NodeId owner_;
  std::size_t bits_;
  // rows × columns, row-major; empty slots have node == kNoNode.
  std::vector<LeafsetEntry> entries_;
  std::size_t filled_ = 0;

  static const LeafsetEntry kEmpty;
};

}  // namespace p2p::dht
