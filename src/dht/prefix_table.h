// Pastry/Tapestry-style prefix routing table (paper §3.1 cites both as
// O(log N) designs "built upon the above concept"). Ids are strings of
// 2^b-ary digits (most-significant first); row r holds, for each digit
// value c, a node whose id shares the first r digits with the owner and
// has c as digit r. One hop fixes at least one digit, giving
// O(log_{2^b} N) routing — steeper-base log than Chord fingers.
//
// Storage is row-lazy: at pool scale only the first ~log_{2^b} N rows ever
// receive an entry (deeper rows need ids sharing that many digits with the
// owner), so rows are allocated on first Offer into them instead of all
// digits()×columns() slots up front. At 10k–100k hosts that is ~4–5 of 16
// rows, cutting the dominant per-node table from 4 KiB to ~1 KiB.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dht/id.h"
#include "dht/leafset.h"

namespace p2p::dht {

class PrefixTable {
 public:
  // `bits_per_digit` = b; Pastry's default is 4 (hex digits).
  explicit PrefixTable(NodeId owner, std::size_t bits_per_digit = 4);

  NodeId owner() const { return owner_; }
  std::size_t bits_per_digit() const { return bits_; }
  std::size_t digits() const { return 64 / bits_; }
  std::size_t columns() const { return std::size_t{1} << bits_; }

  // The d-th digit (0 = most significant) of `id`.
  std::size_t DigitOf(NodeId id, std::size_t d) const;

  // Number of leading digits `a` and `b` share.
  std::size_t SharedPrefixDigits(NodeId a, NodeId b) const;

  // Offer a candidate for inclusion; fills the (shared, next-digit) slot
  // if empty (first-come placement, as Pastry's locality-blind baseline).
  // Returns true if the candidate was placed.
  bool Offer(NodeId id, NodeIndex node);

  // Direct slot write for bulk builders that already know the winner of
  // (row, col) — e.g. Ring::BuildPrefixTable's sorted-interval fast path.
  // The slot must be empty.
  void Place(std::size_t row, std::size_t col, NodeId id, NodeIndex node);

  // Clear all entries (before a rebuild). Keeps allocated row storage.
  void Clear();

  // Entry for routing `key`: the node at [shared(owner,key)][digit of key],
  // or kNoNode when the slot is empty or key == owner id.
  const LeafsetEntry& EntryFor(NodeId key) const;

  const LeafsetEntry& At(std::size_t row, std::size_t col) const;

  // Remove a failed node everywhere it appears.
  void Invalidate(NodeIndex node);

  std::size_t filled_entries() const { return filled_; }

  // Rows with backing storage (monotone under Offer; reset by nothing —
  // Clear keeps them so rebuilds don't churn the allocator).
  std::size_t allocated_rows() const { return slots_.size() / columns(); }

  // Heap bytes held by this table (SoA/memory accounting; excludes
  // sizeof(*this), which the owner counts).
  std::size_t HeapBytes() const {
    return slots_.capacity() * sizeof(LeafsetEntry) +
           row_off_.capacity() * sizeof(std::uint8_t);
  }

 private:
  static constexpr std::uint8_t kNoRow = 0xff;

  // Backing slots of `row`, allocating on demand when `create`.
  LeafsetEntry* RowSlots(std::size_t row, bool create);
  const LeafsetEntry* RowSlots(std::size_t row) const;

  NodeId owner_;
  std::size_t bits_;
  // row → block index into slots_ (kNoRow = row never touched). Blocks are
  // columns() entries each, allocated in first-touch order.
  std::vector<std::uint8_t> row_off_;
  std::vector<LeafsetEntry> slots_;
  std::size_t filled_ = 0;

  static const LeafsetEntry kEmpty;
};

}  // namespace p2p::dht
