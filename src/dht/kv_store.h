// Replicated key-value storage over the ring — the "documents stored in
// DHT" half of §3.1's virtualised space (resources and entities living
// together). Values live at the key's responsible node plus the next
// `replicas − 1` alive successors; reads fall back to replicas when the
// primary is unreachable; RepairReplicas() restores the replication
// invariant after membership changes (hook it to failure detection).
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "dht/ring.h"

namespace p2p::dht {

class KvStore {
 public:
  // `replicas` total copies per key (1 = primary only).
  KvStore(Ring& ring, std::size_t replicas = 3);

  std::size_t replicas() const { return replicas_; }

  struct PutResult {
    bool ok = false;
    RouteResult route;           // lookup cost from `via` to the primary
    std::size_t copies_stored = 0;
  };
  // Store (routes from `via` to the responsible node, then replicates to
  // its alive successors).
  PutResult Put(NodeIndex via, NodeId key, std::string value);

  struct GetResult {
    bool found = false;
    std::string value;
    RouteResult route;
    bool from_replica = false;  // primary missed; a successor answered
  };
  GetResult Get(NodeIndex via, NodeId key) const;

  // Delete all copies. Returns true if the key existed.
  bool Erase(NodeIndex via, NodeId key);

  // Restore the replication invariant for every known key against current
  // membership (re-replication after failures/joins).
  void RepairReplicas();

  // Copies of `key` currently stored across alive nodes.
  std::size_t CopiesOf(NodeId key) const;
  // Keys stored on node `n`.
  std::size_t StoredOn(NodeIndex n) const;
  std::size_t total_keys() const { return directory_.size(); }

  // Invariant: every known key has min(replicas, alive) copies placed on
  // the responsible node and its immediate alive successors.
  void CheckInvariants() const;

  // Pre-size the directory and every per-node map for `expected_keys`
  // total keys over current membership, so bulk loads never rehash
  // mid-stream. Idempotent; call after membership is settled.
  void Reserve(std::size_t expected_keys);

  // Resident bytes across the directory and all per-node maps (bucket
  // arrays + nodes + out-of-line string payloads) plus this object.
  std::size_t MemoryBytes() const;

 private:
  // The replica set for a key under current membership: responsible node
  // followed by its alive successors (deduplicated), up to `replicas_`.
  std::vector<NodeIndex> ReplicaSet(NodeId key) const;

  Ring& ring_;
  std::size_t replicas_;
  // Per-node storage.
  std::vector<std::unordered_map<NodeId, std::string>> store_;
  // All keys ever written and not erased (the repair worklist).
  std::unordered_map<NodeId, std::string> directory_;
};

}  // namespace p2p::dht
