#include "dht/leafset.h"

#include <algorithm>

#include "util/check.h"

namespace p2p::dht {

Leafset::Leafset(NodeId owner, std::size_t r) : owner_(owner), r_(r) {
  P2P_CHECK(r > 0);
}

bool Leafset::Insert(NodeId id, NodeIndex node) {
  if (id == owner_) return false;
  auto upsert = [&](std::vector<LeafsetEntry>& side, NodeId dist_ref,
                    auto dist_fn) {
    (void)dist_ref;
    // Already present? refresh node index.
    for (auto& e : side) {
      if (e.id == id) {
        e.node = node;
        return false;
      }
    }
    side.push_back({id, node});
    std::sort(side.begin(), side.end(),
              [&](const LeafsetEntry& a, const LeafsetEntry& b) {
                return dist_fn(a.id) < dist_fn(b.id);
              });
    if (side.size() > r_) {
      side.resize(r_);
      // The candidate may have been the one dropped.
      return std::any_of(side.begin(), side.end(),
                         [&](const LeafsetEntry& e) { return e.id == id; });
    }
    return true;
  };
  const bool su = upsert(
      succ_, owner_, [this](NodeId x) { return ClockwiseDistance(owner_, x); });
  const bool pu = upsert(
      pred_, owner_, [this](NodeId x) { return ClockwiseDistance(x, owner_); });
  return su || pu;
}

bool Leafset::Remove(NodeId id) {
  auto drop = [&](std::vector<LeafsetEntry>& side) {
    const auto it =
        std::remove_if(side.begin(), side.end(),
                       [&](const LeafsetEntry& e) { return e.id == id; });
    const bool removed = it != side.end();
    side.erase(it, side.end());
    return removed;
  };
  const bool a = drop(succ_);
  const bool b = drop(pred_);
  return a || b;
}

void Leafset::Clear() {
  succ_.clear();
  pred_.clear();
}

std::vector<LeafsetEntry> Leafset::Members() const {
  std::vector<LeafsetEntry> all;
  all.reserve(succ_.size() + pred_.size());
  all.insert(all.end(), succ_.begin(), succ_.end());
  for (const auto& e : pred_) {
    if (!std::any_of(all.begin(), all.end(),
                     [&](const LeafsetEntry& x) { return x.id == e.id; })) {
      all.push_back(e);
    }
  }
  return all;
}

bool Leafset::Contains(NodeId id) const {
  auto in = [&](const std::vector<LeafsetEntry>& side) {
    return std::any_of(side.begin(), side.end(),
                       [&](const LeafsetEntry& e) { return e.id == id; });
  };
  return in(succ_) || in(pred_);
}

NodeIndex Leafset::ClosestTo(NodeId key) const {
  // Among members whose id is in (owner, key] (i.e. clockwise progress
  // toward the key without overshooting), pick the one closest to key.
  NodeIndex best = kNoNode;
  NodeId best_dist = ClockwiseDistance(owner_, key);
  auto consider = [&](const LeafsetEntry& e) {
    if (!InArc(owner_, e.id, key)) return;
    const NodeId d = ClockwiseDistance(e.id, key);
    if (best == kNoNode || d < best_dist) {
      best = e.node;
      best_dist = d;
    }
  };
  for (const auto& e : succ_) consider(e);
  for (const auto& e : pred_) consider(e);
  return best;
}

NodeIndex Leafset::SuccessorOf(NodeId key) const {
  NodeIndex best = kNoNode;
  NodeId best_dist = 0;
  auto consider = [&](const LeafsetEntry& e) {
    const NodeId d = ClockwiseDistance(key, e.id);  // 0 when e.id == key
    if (best == kNoNode || d < best_dist) {
      best = e.node;
      best_dist = d;
    }
  };
  for (const auto& e : succ_) consider(e);
  for (const auto& e : pred_) consider(e);
  return best;
}

bool Leafset::Covers(NodeId key) const {
  if (succ_.empty() || pred_.empty()) return false;
  const NodeId lo = pred_.back().id;  // farthest counter-clockwise member
  const NodeId hi = succ_.back().id;  // farthest clockwise member
  return InArc(lo, key, hi);
}

}  // namespace p2p::dht
