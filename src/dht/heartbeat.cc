#include "dht/heartbeat.h"

#include <algorithm>

#include "util/check.h"

namespace p2p::dht {

namespace {

using HeardRow = std::vector<std::pair<NodeIndex, sim::Time>>;

// Sorted-row lookups for the flat last_heard_/suspected_ state.
sim::Time* FindHeard(HeardRow& row, NodeIndex m) {
  const auto it = std::lower_bound(
      row.begin(), row.end(), m,
      [](const std::pair<NodeIndex, sim::Time>& p, NodeIndex key) {
        return p.first < key;
      });
  if (it != row.end() && it->first == m) return &it->second;
  return nullptr;
}

void SetHeard(HeardRow& row, NodeIndex m, sim::Time t) {
  const auto it = std::lower_bound(
      row.begin(), row.end(), m,
      [](const std::pair<NodeIndex, sim::Time>& p, NodeIndex key) {
        return p.first < key;
      });
  if (it != row.end() && it->first == m) {
    it->second = t;
  } else {
    row.insert(it, {m, t});
  }
}

// Returns true when `m` was newly inserted.
bool SortedInsert(std::vector<NodeIndex>& set, NodeIndex m) {
  const auto it = std::lower_bound(set.begin(), set.end(), m);
  if (it != set.end() && *it == m) return false;
  set.insert(it, m);
  return true;
}

// Returns true when `m` was present (and removed).
bool SortedErase(std::vector<NodeIndex>& set, NodeIndex m) {
  const auto it = std::lower_bound(set.begin(), set.end(), m);
  if (it == set.end() || *it != m) return false;
  set.erase(it);
  return true;
}

}  // namespace

HeartbeatProtocol::HeartbeatProtocol(sim::Simulation& sim, Ring& ring,
                                     Config config)
    : sim_(sim), ring_(ring), config_(config) {
  P2P_CHECK(config_.period_ms > 0.0);
  P2P_CHECK(config_.timeout_ms > config_.period_ms);
  auto& reg = sim_.metrics();
  m_sent_ = &reg.counter("dht.heartbeat.sent");
  m_delivered_ = &reg.counter("dht.heartbeat.delivered");
  m_failures_ = &reg.counter("dht.heartbeat.failures_detected");
  m_suspicions_ = &reg.counter("dht.heartbeat.suspicions");
  m_false_suspicions_ = &reg.counter("dht.heartbeat.false_suspicions");
  m_suspicion_clears_ = &reg.counter("dht.heartbeat.suspicion_clears");
}

void HeartbeatProtocol::Start() {
  P2P_CHECK_MSG(!running_, "heartbeat protocol already running");
  running_ = true;
  // The bus charges the same host-to-host delays the protocol used to
  // compute itself; keep its oracle in sync with the ring's.
  if (ring_.oracle() != nullptr) sim_.transport().set_oracle(ring_.oracle());
  last_heard_.resize(ring_.size());
  detected_.assign(ring_.size(), 0);
  suspected_.resize(ring_.size());
  tokens_.resize(ring_.size());
  for (NodeIndex n = 0; n < ring_.size(); ++n) {
    if (ring_.node(n).alive() && OwnsNode(n)) SchedulePeriodic(n);
  }
}

void HeartbeatProtocol::BindShard(
    std::uint32_t shard, const std::vector<std::uint32_t>* shard_of_host,
    std::vector<HeartbeatProtocol*> peers) {
  P2P_CHECK_MSG(!running_, "bind before Start");
  P2P_CHECK(shard_of_host != nullptr);
  P2P_CHECK_MSG(shard < peers.size(), "shard index outside the peer table");
  P2P_CHECK_MSG(peers[shard] == this, "peer table must map this shard here");
  shard_ = shard;
  shard_of_host_ = shard_of_host;
  peers_ = std::move(peers);
}

void HeartbeatProtocol::Stop() {
  running_ = false;
  for (auto& t : tokens_) sim::Simulation::CancelPeriodic(t);
  sim_.Cancel(beat_walker_);
  beat_walker_ = sim::kInvalidEventId;
  beat_order_.clear();
  beat_cursor_ = 0;
}

void HeartbeatProtocol::OnNodeJoined(NodeIndex n) {
  if (!running_) return;
  if (last_heard_.size() <= n) {
    last_heard_.resize(n + 1);
    detected_.resize(n + 1, 0);
    suspected_.resize(n + 1);
    tokens_.resize(n + 1);
  }
  if (OwnsNode(n)) SchedulePeriodic(n);
}

void HeartbeatProtocol::SchedulePeriodic(NodeIndex n) {
  // Desynchronise nodes with a random phase within one period. Both paths
  // draw identically, so the rng stream (and everything downstream of it)
  // does not depend on batch_beats.
  const sim::Time phase = sim_.rng().Uniform(0.0, config_.period_ms);
  if (!config_.batch_beats) {
    tokens_[n] = sim_.Every(config_.period_ms, phase, [this, n] { Beat(n); });
    return;
  }
  InsertBeat(sim_.now() + phase, n);
}

void HeartbeatProtocol::InsertBeat(sim::Time first, NodeIndex n) {
  // The row is cyclically ascending: [cursor, end) then [0, cursor). A
  // deadline past the current segment's tail belongs to the wrapped
  // segment (it fires next cycle). Ties insert after existing entries —
  // the per-node timer a joiner would have created carries a younger seq
  // than anything already scheduled at that time.
  const auto fires_no_later = [first](const std::pair<sim::Time, NodeIndex>&
                                          e) { return e.first <= first; };
  std::size_t pos;
  if (beat_cursor_ < beat_order_.size() &&
      first <= beat_order_.back().first) {
    pos = static_cast<std::size_t>(
        std::partition_point(beat_order_.begin() + beat_cursor_,
                             beat_order_.end(), fires_no_later) -
        beat_order_.begin());
    beat_order_.insert(beat_order_.begin() + pos, {first, n});
  } else {
    pos = static_cast<std::size_t>(
        std::partition_point(beat_order_.begin(),
                             beat_order_.begin() + beat_cursor_,
                             fires_no_later) -
        beat_order_.begin());
    beat_order_.insert(beat_order_.begin() + pos, {first, n});
    ++beat_cursor_;  // inserted into the wrapped (next-cycle) segment
  }
  const std::size_t next =
      beat_cursor_ == beat_order_.size() ? 0 : beat_cursor_;
  if (pos != next) return;
  // The new entry is the next to fire: pull the walker's wakeup forward.
  // Rearm reports false when the walker is firing right now (a join from
  // inside the sweep) — BeatSweep reschedules after it drains — and when
  // no walker exists yet (Start), schedule the first one.
  if (beat_walker_ == sim::kInvalidEventId) {
    ScheduleSweep();
  } else {
    sim_.Rearm(beat_walker_, first);
  }
}

void HeartbeatProtocol::BeatSweep() {
  const sim::Time now = sim_.now();
  while (!beat_order_.empty()) {
    if (beat_cursor_ == beat_order_.size()) {
      if (beat_order_.front().first != now) break;
      beat_cursor_ = 0;
    }
    auto& e = beat_order_[beat_cursor_];
    if (e.first != now) break;
    const NodeIndex n = e.second;
    e.first += config_.period_ms;  // same arithmetic as a periodic re-arm
    ++beat_cursor_;
    Beat(n);
  }
  ScheduleSweep();
}

void HeartbeatProtocol::ScheduleSweep() {
  if (beat_order_.empty()) {
    beat_walker_ = sim::kInvalidEventId;
    return;
  }
  const std::size_t next =
      beat_cursor_ == beat_order_.size() ? 0 : beat_cursor_;
  beat_walker_ = sim_.At(beat_order_[next].first, [this] { BeatSweep(); });
}

void HeartbeatProtocol::Beat(NodeIndex n) {
  if (!running_ || !ring_.node(n).alive()) return;
  const sim::Time now = sim_.now();
  for (const auto& e : ring_.node(n).leafset().Members()) {
    ++sent_;
    m_sent_->Inc();
    const NodeIndex to = e.node;
    sim::Message msg;
    msg.src_host = ring_.node(n).host();
    msg.dst_host = ring_.node(to).host();
    msg.protocol = sim::Protocol::kHeartbeat;
    msg.bytes = kHeartbeatBytes;
    sim::SendOptions opts;
    opts.fallback_delay_ms = config_.default_delay_ms;
    // The receiver's owning instance records the delivery: its state rows
    // for `to` are only ever touched on its own shard. `peer == this` when
    // unbound, so the serial path is unchanged.
    HeartbeatProtocol* peer = PeerForNode(to);
    sim_.transport().Send(
        msg, [peer, n, to, now] { peer->Deliver(n, to, now); }, opts);
  }
  CheckTimeouts(n);
}

void HeartbeatProtocol::Deliver(NodeIndex from, NodeIndex to,
                                sim::Time send_time) {
  if (!running_) return;
  // A crashed sender's in-flight messages are dropped (it "stopped
  // responding" at fail time, and Beat checks liveness at send time, so
  // this only filters messages racing a failure).
  if (!ring_.node(from).alive() || !ring_.node(to).alive()) return;
  ++delivered_;
  m_delivered_->Inc();
  SetHeard(last_heard_[to], from, sim_.now());
  // Hearing from a suspect clears the suspicion (it was a false alarm or
  // the network healed).
  if (config_.suspect_alive && SortedErase(suspected_[to], from))
    m_suspicion_clears_->Inc();
  for (const auto& obs : observers_) obs(from, to, send_time, sim_.now());
}

void HeartbeatProtocol::CheckTimeouts(NodeIndex n) {
  const sim::Time now = sim_.now();
  for (const auto& e : ring_.node(n).leafset().Members()) {
    const NodeIndex m = e.node;
    if (ring_.node(m).alive()) {
      // Suspicion (suspect_alive mode): a member we *have* heard from
      // before has gone silent past the timeout. Requiring one prior
      // delivery avoids flagging everyone during start-up warm-up.
      if (!config_.suspect_alive) continue;
      const sim::Time* heard = FindHeard(last_heard_[n], m);
      if (heard == nullptr) continue;
      if (now - *heard < config_.timeout_ms) continue;
      if (!SortedInsert(suspected_[n], m)) continue;  // already suspected
      ++suspicions_;
      ++false_suspicions_;  // m is alive: by definition a false positive
      m_suspicions_->Inc();
      m_false_suspicions_->Inc();
      for (const auto& obs : suspicion_observers_) obs(n, m, now, true);
      continue;
    }
    const sim::Time* found = FindHeard(last_heard_[n], m);
    const sim::Time heard = found == nullptr ? 0.0 : *found;
    if (now - heard < config_.timeout_ms) continue;
    // Sensor mode (auto_repair off): every detector independently marks the
    // silent member in its own suspect set — the dead node never beats
    // again, so the suspicion persists and rides the in-band telemetry
    // until an external reactor repairs membership.
    if (!config_.auto_repair) SortedInsert(suspected_[n], m);
    if (detected_[m]) continue;
    detected_[m] = 1;
    ++failures_detected_;
    m_failures_->Inc();
    if (config_.suspect_alive) {
      // The unified suspicion stream also sees true positives, so
      // false_suspicions() / suspicions() is a meaningful FP rate.
      ++suspicions_;
      m_suspicions_->Inc();
      for (const auto& obs : suspicion_observers_) obs(n, m, now, false);
    }
    if (config_.auto_repair) {
      // Failure detection rewrites shared ring membership (DetectFailure
      // below) and races lazily-sorted ring views; multi-shard runs keep
      // membership frozen during windows, so a detection there is a bug.
      P2P_CHECK_MSG(peers_.size() <= 1,
                    "failure detection is unsupported in multi-shard runs");
      // First detection triggers ring-wide cleanup, standing in for the
      // rapid propagation of the death notice through leafset exchanges.
      ring_.DetectFailure(m);
    }
    for (const auto& obs : failure_observers_) obs(n, m, now);
  }
}

std::size_t HeartbeatProtocol::MemoryBytes() const {
  std::size_t bytes = sizeof(*this);
  bytes += last_heard_.capacity() *
           sizeof(std::vector<std::pair<NodeIndex, sim::Time>>);
  for (const auto& row : last_heard_)
    bytes += row.capacity() * sizeof(std::pair<NodeIndex, sim::Time>);
  bytes += tokens_.capacity() * sizeof(sim::Simulation::PeriodicToken);
  bytes += beat_order_.capacity() * sizeof(std::pair<sim::Time, NodeIndex>);
  bytes += detected_.capacity();
  bytes += suspected_.capacity() * sizeof(std::vector<NodeIndex>);
  for (const auto& row : suspected_)
    bytes += row.capacity() * sizeof(NodeIndex);
  return bytes;
}

}  // namespace p2p::dht
