// Leafset heartbeat protocol (paper §3.1/§4): every node periodically
// heartbeats its leafset members; missed heartbeats drive failure
// detection; the §4 measurement protocols (network coordinates, packet-pair
// bandwidth probing) piggyback on the same messages via observers.
//
// Message delivery runs over the simulation's Transport bus with the
// latency oracle's host-to-host delays, so observers see realistic
// send/receive timestamps — and fault injection (loss, jitter, partitions)
// configured on the bus applies to heartbeats with no protocol changes.
#pragma once

#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "dht/ring.h"
#include "sim/simulation.h"

namespace p2p::dht {

// Namespace-scope (not nested) so it can serve as a defaulted constructor
// argument — GCC rejects brace-defaulting a nested aggregate with default
// member initializers inside its enclosing class.
struct HeartbeatConfig {
  sim::Time period_ms = 1000.0;
  // Declare a member failed after this long without hearing from it.
  sim::Time timeout_ms = 3500.0;
  // Transport fallback one-way delay used when the ring has no latency
  // oracle (passed per send; the bus-wide default stays untouched).
  sim::Time default_delay_ms = 50.0;
  // Failure *suspicion*: also flag members that have been heard from
  // before but have now been silent past timeout_ms, even while they are
  // in fact alive (message loss / jitter makes silence ambiguous). A
  // suspicion of an alive member is a false positive; suspicions clear
  // when the member is heard again. Off by default — the seed behaviour
  // only ever declares genuinely crashed nodes.
  bool suspect_alive = false;
};

// Modelled heartbeat wire size: the paper pads heartbeats to ~1.5 KB so
// they double as packet-pair probes (§4.2).
inline constexpr std::size_t kHeartbeatBytes = 1500;

class HeartbeatProtocol {
 public:
  using Config = HeartbeatConfig;

  // Called on each heartbeat delivery: (sender, receiver, send_t, recv_t).
  using Observer = std::function<void(NodeIndex, NodeIndex, sim::Time,
                                      sim::Time)>;
  // Called when `detector` times out `dead` (fires once per dead node,
  // at first detection).
  using FailureObserver =
      std::function<void(NodeIndex detector, NodeIndex dead, sim::Time when)>;
  // Called when `detector` starts suspecting `suspect` (suspect_alive
  // mode); `was_alive` marks a false positive.
  using SuspicionObserver = std::function<void(
      NodeIndex detector, NodeIndex suspect, sim::Time when, bool was_alive)>;

  HeartbeatProtocol(sim::Simulation& sim, Ring& ring, Config config = {});

  // Begin periodic heartbeating for every currently-alive node. Nodes that
  // join later are picked up via OnNodeJoined.
  void Start();
  void Stop();

  // Register a node that joined after Start().
  void OnNodeJoined(NodeIndex n);

  void AddObserver(Observer obs) { observers_.push_back(std::move(obs)); }
  void AddFailureObserver(FailureObserver obs) {
    failure_observers_.push_back(std::move(obs));
  }
  void AddSuspicionObserver(SuspicionObserver obs) {
    suspicion_observers_.push_back(std::move(obs));
  }

  std::size_t heartbeats_sent() const { return sent_; }
  std::size_t heartbeats_delivered() const { return delivered_; }
  std::size_t failures_detected() const { return failures_detected_; }
  // suspect_alive mode only. Suspicions cover both dead members (true
  // positives, also counted in failures_detected) and alive-but-silent
  // ones; a false suspicion targeted a node that was alive when flagged
  // (message loss or jitter starved the detector).
  std::size_t suspicions() const { return suspicions_; }
  std::size_t false_suspicions() const { return false_suspicions_; }

  sim::Simulation& simulation() { return sim_; }

  const Config& config() const { return config_; }

 private:
  void SchedulePeriodic(NodeIndex n);
  void Beat(NodeIndex n);
  void Deliver(NodeIndex from, NodeIndex to, sim::Time send_time);
  void CheckTimeouts(NodeIndex n);

  sim::Simulation& sim_;
  Ring& ring_;
  Config config_;
  bool running_ = false;

  // last_heard_[n][m] = sim time node n last heard from leafset member m.
  std::vector<std::unordered_map<NodeIndex, sim::Time>> last_heard_;
  std::vector<sim::Simulation::PeriodicToken> tokens_;
  std::vector<char> detected_;  // dead nodes already processed
  // suspected_[n] = members node n currently suspects (suspect_alive mode).
  std::vector<std::unordered_set<NodeIndex>> suspected_;

  std::vector<Observer> observers_;
  std::vector<FailureObserver> failure_observers_;
  std::vector<SuspicionObserver> suspicion_observers_;
  // dht.heartbeat.* counters in the simulation's registry, cached at
  // construction (pointer bumps only on the hot path, no name lookups).
  obs::Counter* m_sent_;
  obs::Counter* m_delivered_;
  obs::Counter* m_failures_;
  obs::Counter* m_suspicions_;
  obs::Counter* m_false_suspicions_;
  obs::Counter* m_suspicion_clears_;
  std::size_t sent_ = 0;
  std::size_t delivered_ = 0;
  std::size_t failures_detected_ = 0;
  std::size_t suspicions_ = 0;
  std::size_t false_suspicions_ = 0;
};

}  // namespace p2p::dht
