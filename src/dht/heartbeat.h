// Leafset heartbeat protocol (paper §3.1/§4): every node periodically
// heartbeats its leafset members; missed heartbeats drive failure
// detection; the §4 measurement protocols (network coordinates, packet-pair
// bandwidth probing) piggyback on the same messages via observers.
//
// Message delivery runs over the simulation's Transport bus with the
// latency oracle's host-to-host delays, so observers see realistic
// send/receive timestamps — and fault injection (loss, jitter, partitions)
// configured on the bus applies to heartbeats with no protocol changes.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "dht/ring.h"
#include "sim/simulation.h"

namespace p2p::dht {

// Namespace-scope (not nested) so it can serve as a defaulted constructor
// argument — GCC rejects brace-defaulting a nested aggregate with default
// member initializers inside its enclosing class.
struct HeartbeatConfig {
  sim::Time period_ms = 1000.0;
  // Declare a member failed after this long without hearing from it.
  sim::Time timeout_ms = 3500.0;
  // Transport fallback one-way delay used when the ring has no latency
  // oracle (passed per send; the bus-wide default stays untouched).
  sim::Time default_delay_ms = 50.0;
  // Failure *suspicion*: also flag members that have been heard from
  // before but have now been silent past timeout_ms, even while they are
  // in fact alive (message loss / jitter makes silence ambiguous). A
  // suspicion of an alive member is a false positive; suspicions clear
  // when the member is heard again. Off by default — the seed behaviour
  // only ever declares genuinely crashed nodes.
  bool suspect_alive = false;
  // When true (default), the first detection of a genuinely dead member
  // triggers ring-wide cleanup (Ring::DetectFailure). Set false to run the
  // detector as a pure sensor: timeouts are still recorded (counters,
  // observers, per-node suspect sets — so the silence shows up in in-band
  // telemetry), but membership repair is left to an external reactor. The
  // in-band alerting experiments use this to make the disseminated SOMO
  // view, not simulator ground truth, the thing that heals the ring.
  bool auto_repair = true;
  // Batch-tick the beat timers (default): every node shares one period, so
  // beats recur in a fixed cyclic order — one self-rescheduling walker
  // event sweeps the phase-sorted beat row and fires each node at exactly
  // the time its own periodic timer would have fired (deadlines accumulate
  // += period per node, matching the event queue's re-arm arithmetic
  // bit-for-bit). The observable stream — beat times, send order, observer
  // callbacks, metrics — is byte-identical to the per-node path (pinned by
  // a differential test); what changes is the event-queue working set: one
  // always-hot walker record instead of N periodic records scattered
  // across the slab, which is where the run-phase profile showed the
  // heartbeat tax at 50k+ hosts. Set false to retain per-node timers.
  bool batch_beats = true;
};

// Modelled heartbeat wire size: the paper pads heartbeats to ~1.5 KB so
// they double as packet-pair probes (§4.2).
inline constexpr std::size_t kHeartbeatBytes = 1500;

class HeartbeatProtocol {
 public:
  using Config = HeartbeatConfig;

  // Called on each heartbeat delivery: (sender, receiver, send_t, recv_t).
  using Observer = std::function<void(NodeIndex, NodeIndex, sim::Time,
                                      sim::Time)>;
  // Called when `detector` times out `dead` (fires once per dead node,
  // at first detection).
  using FailureObserver =
      std::function<void(NodeIndex detector, NodeIndex dead, sim::Time when)>;
  // Called when `detector` starts suspecting `suspect` (suspect_alive
  // mode); `was_alive` marks a false positive.
  using SuspicionObserver = std::function<void(
      NodeIndex detector, NodeIndex suspect, sim::Time when, bool was_alive)>;

  HeartbeatProtocol(sim::Simulation& sim, Ring& ring, Config config = {});

  // Begin periodic heartbeating for every currently-alive node. Nodes that
  // join later are picked up via OnNodeJoined.
  void Start();
  void Stop();

  // Register a node that joined after Start().
  void OnNodeJoined(NodeIndex n);

  // --- sharding -----------------------------------------------------------

  // Bind this instance to one shard of a sim::ShardedSimulation run. Every
  // shard constructs its own HeartbeatProtocol over its own Simulation (and
  // the shared, stabilized Ring); BindShard tells each instance which nodes
  // it owns (`shard_of_host` indexed by ring host, owned by the caller and
  // outliving the protocol) and where its peers live. After binding, Start
  // schedules periodic beats only for owned nodes, and delivery closures
  // target the receiver's owning instance, so all mutable per-node state
  // (last_heard_, suspected_) is touched exclusively by its owner's shard
  // thread. Serial runs never call this; an unbound instance owns every
  // node and delivers to itself — the exact seed code path.
  void BindShard(std::uint32_t shard,
                 const std::vector<std::uint32_t>* shard_of_host,
                 std::vector<HeartbeatProtocol*> peers);

  void AddObserver(Observer obs) { observers_.push_back(std::move(obs)); }
  void AddFailureObserver(FailureObserver obs) {
    failure_observers_.push_back(std::move(obs));
  }
  void AddSuspicionObserver(SuspicionObserver obs) {
    suspicion_observers_.push_back(std::move(obs));
  }

  std::size_t heartbeats_sent() const { return sent_; }
  std::size_t heartbeats_delivered() const { return delivered_; }
  std::size_t failures_detected() const { return failures_detected_; }
  // suspect_alive mode only. Suspicions cover both dead members (true
  // positives, also counted in failures_detected) and alive-but-silent
  // ones; a false suspicion targeted a node that was alive when flagged
  // (message loss or jitter starved the detector).
  std::size_t suspicions() const { return suspicions_; }
  std::size_t false_suspicions() const { return false_suspicions_; }

  // Members node n currently suspects (sorted set size): alive-but-silent
  // members in suspect_alive mode, plus timed-out dead members when
  // auto_repair is off. This is the per-node signal HostTelemetry::suspects
  // carries in-band.
  std::size_t suspected_count(NodeIndex n) const {
    return n < suspected_.size() ? suspected_[n].size() : 0;
  }

  sim::Simulation& simulation() { return sim_; }

  const Config& config() const { return config_; }

  // Resident bytes of the detector's per-node tables (the dense
  // last-heard / suspicion rows) plus this object — feeds the
  // mem.bytes_per_host gauge.
  std::size_t MemoryBytes() const;

 private:
  void SchedulePeriodic(NodeIndex n);
  // Batched beats: insert node n's first deadline into the cyclic beat
  // row, keeping the walker's wakeup aligned with the earliest entry.
  void InsertBeat(sim::Time first, NodeIndex n);
  // Fire every beat whose deadline equals the walker's wakeup time, then
  // reschedule for the next entry.
  void BeatSweep();
  void ScheduleSweep();
  void Beat(NodeIndex n);
  void Deliver(NodeIndex from, NodeIndex to, sim::Time send_time);
  void CheckTimeouts(NodeIndex n);

  // True when this instance schedules node n's timers and receives its
  // heartbeats (always true when unbound).
  bool OwnsNode(NodeIndex n) const {
    return shard_of_host_ == nullptr ||
           (*shard_of_host_)[ring_.node(n).host()] == shard_;
  }
  // The instance owning node n (this, when unbound — the serial path).
  HeartbeatProtocol* PeerForNode(NodeIndex n) {
    if (shard_of_host_ == nullptr) return this;
    return peers_[(*shard_of_host_)[ring_.node(n).host()]];
  }

  sim::Simulation& sim_;
  Ring& ring_;
  Config config_;
  bool running_ = false;

  // Sharding (empty/null when unbound — see BindShard).
  std::uint32_t shard_ = 0;
  const std::vector<std::uint32_t>* shard_of_host_ = nullptr;
  std::vector<HeartbeatProtocol*> peers_;

  // last_heard_[n]: (member, last-heard sim time) sorted by member — a flat
  // struct-of-arrays replacement for the old per-node hash map. Leafsets
  // are small (2L entries), so binary search beats hashing, the rows pack
  // cache-dense at 50k nodes, and iteration order is deterministic.
  std::vector<std::vector<std::pair<NodeIndex, sim::Time>>> last_heard_;
  std::vector<sim::Simulation::PeriodicToken> tokens_;
  // Batched beats (config_.batch_beats): the beat row, cyclically sorted
  // by next deadline — [beat_cursor_, end) then [0, beat_cursor_) is
  // ascending. The sweep advances each fired entry by one period in
  // place, which preserves the ordering (x < y implies x+p <= y+p, and
  // rounding ties keep their row order, matching the per-node timers'
  // seq order).
  std::vector<std::pair<sim::Time, NodeIndex>> beat_order_;
  std::size_t beat_cursor_ = 0;
  sim::EventId beat_walker_ = sim::kInvalidEventId;
  std::vector<char> detected_;  // dead nodes already processed
  // suspected_[n] = members node n currently suspects, sorted
  // (suspect_alive mode).
  std::vector<std::vector<NodeIndex>> suspected_;

  std::vector<Observer> observers_;
  std::vector<FailureObserver> failure_observers_;
  std::vector<SuspicionObserver> suspicion_observers_;
  // dht.heartbeat.* counters in the simulation's registry, cached at
  // construction (pointer bumps only on the hot path, no name lookups).
  obs::Counter* m_sent_;
  obs::Counter* m_delivered_;
  obs::Counter* m_failures_;
  obs::Counter* m_suspicions_;
  obs::Counter* m_false_suspicions_;
  obs::Counter* m_suspicion_clears_;
  std::size_t sent_ = 0;
  std::size_t delivered_ = 0;
  std::size_t failures_detected_ = 0;
  std::size_t suspicions_ = 0;
  std::size_t false_suspicions_ = 0;
};

}  // namespace p2p::dht
