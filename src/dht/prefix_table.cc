#include "dht/prefix_table.h"

#include <algorithm>

#include "util/check.h"

namespace p2p::dht {

const LeafsetEntry PrefixTable::kEmpty{0, kNoNode};

PrefixTable::PrefixTable(NodeId owner, std::size_t bits_per_digit)
    : owner_(owner), bits_(bits_per_digit) {
  P2P_CHECK_MSG(bits_ >= 1 && bits_ <= 8 && 64 % bits_ == 0,
                "bits per digit must divide 64 (got " << bits_ << ")");
  row_off_.assign(digits(), kNoRow);
}

std::size_t PrefixTable::DigitOf(NodeId id, std::size_t d) const {
  P2P_DCHECK(d < digits());
  const std::size_t shift = 64 - bits_ * (d + 1);
  return static_cast<std::size_t>((id >> shift) & (columns() - 1));
}

std::size_t PrefixTable::SharedPrefixDigits(NodeId a, NodeId b) const {
  std::size_t d = 0;
  while (d < digits() && DigitOf(a, d) == DigitOf(b, d)) ++d;
  return d;
}

LeafsetEntry* PrefixTable::RowSlots(std::size_t row, bool create) {
  P2P_DCHECK(row < digits());
  if (row_off_[row] == kNoRow) {
    if (!create) return nullptr;
    const std::size_t block = slots_.size() / columns();
    P2P_DCHECK(block < kNoRow);
    row_off_[row] = static_cast<std::uint8_t>(block);
    slots_.insert(slots_.end(), columns(), kEmpty);
  }
  return slots_.data() + std::size_t{row_off_[row]} * columns();
}

const LeafsetEntry* PrefixTable::RowSlots(std::size_t row) const {
  P2P_DCHECK(row < digits());
  if (row_off_[row] == kNoRow) return nullptr;
  return slots_.data() + std::size_t{row_off_[row]} * columns();
}

bool PrefixTable::Offer(NodeId id, NodeIndex node) {
  if (id == owner_) return false;
  const std::size_t row = SharedPrefixDigits(owner_, id);
  P2P_DCHECK(row < digits());
  const std::size_t col = DigitOf(id, row);
  LeafsetEntry& slot = RowSlots(row, /*create=*/true)[col];
  if (slot.node != kNoNode) return false;
  slot = {id, node};
  ++filled_;
  return true;
}

void PrefixTable::Place(std::size_t row, std::size_t col, NodeId id,
                        NodeIndex node) {
  P2P_DCHECK(row < digits() && col < columns());
  LeafsetEntry& slot = RowSlots(row, /*create=*/true)[col];
  P2P_DCHECK(slot.node == kNoNode);
  slot = {id, node};
  ++filled_;
}

void PrefixTable::Clear() {
  std::fill(slots_.begin(), slots_.end(), kEmpty);
  filled_ = 0;
}

const LeafsetEntry& PrefixTable::EntryFor(NodeId key) const {
  if (key == owner_) return kEmpty;
  const std::size_t row = SharedPrefixDigits(owner_, key);
  if (row >= digits()) return kEmpty;
  const LeafsetEntry* slots = RowSlots(row);
  if (slots == nullptr) return kEmpty;
  return slots[DigitOf(key, row)];
}

const LeafsetEntry& PrefixTable::At(std::size_t row, std::size_t col) const {
  P2P_CHECK(row < digits() && col < columns());
  const LeafsetEntry* slots = RowSlots(row);
  return slots == nullptr ? kEmpty : slots[col];
}

void PrefixTable::Invalidate(NodeIndex node) {
  for (auto& e : slots_) {
    if (e.node == node) {
      e = kEmpty;
      --filled_;
    }
  }
}

}  // namespace p2p::dht
