#include "dht/prefix_table.h"

#include "util/check.h"

namespace p2p::dht {

const LeafsetEntry PrefixTable::kEmpty{0, kNoNode};

PrefixTable::PrefixTable(NodeId owner, std::size_t bits_per_digit)
    : owner_(owner), bits_(bits_per_digit) {
  P2P_CHECK_MSG(bits_ >= 1 && bits_ <= 8 && 64 % bits_ == 0,
                "bits per digit must divide 64 (got " << bits_ << ")");
  entries_.assign(digits() * columns(), kEmpty);
}

std::size_t PrefixTable::DigitOf(NodeId id, std::size_t d) const {
  P2P_DCHECK(d < digits());
  const std::size_t shift = 64 - bits_ * (d + 1);
  return static_cast<std::size_t>((id >> shift) & (columns() - 1));
}

std::size_t PrefixTable::SharedPrefixDigits(NodeId a, NodeId b) const {
  std::size_t d = 0;
  while (d < digits() && DigitOf(a, d) == DigitOf(b, d)) ++d;
  return d;
}

bool PrefixTable::Offer(NodeId id, NodeIndex node) {
  if (id == owner_) return false;
  const std::size_t row = SharedPrefixDigits(owner_, id);
  P2P_DCHECK(row < digits());
  const std::size_t col = DigitOf(id, row);
  LeafsetEntry& slot = entries_[row * columns() + col];
  if (slot.node != kNoNode) return false;
  slot = {id, node};
  ++filled_;
  return true;
}

void PrefixTable::Clear() {
  entries_.assign(digits() * columns(), kEmpty);
  filled_ = 0;
}

const LeafsetEntry& PrefixTable::EntryFor(NodeId key) const {
  if (key == owner_) return kEmpty;
  const std::size_t row = SharedPrefixDigits(owner_, key);
  if (row >= digits()) return kEmpty;
  const std::size_t col = DigitOf(key, row);
  return entries_[row * columns() + col];
}

const LeafsetEntry& PrefixTable::At(std::size_t row, std::size_t col) const {
  P2P_CHECK(row < digits() && col < columns());
  return entries_[row * columns() + col];
}

void PrefixTable::Invalidate(NodeIndex node) {
  for (auto& e : entries_) {
    if (e.node == node) {
      e = kEmpty;
      --filled_;
    }
  }
}

}  // namespace p2p::dht
