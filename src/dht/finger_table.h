// Chord-style finger table: the i-th finger of node x is the node
// responsible for key x + 2^i. Fingers give O(log N) lookup on top of the
// O(N) base ring (paper §3.1: "elaborate algorithms built upon the above
// concept achieve O(logN) performance").
//
// Stored run-length compressed: successive fingers of one node mostly point
// at the same successor (the first ~64 − log2 N targets land in one zone),
// so the 64 logical entries collapse to ~log2 N + 1 runs. The table keeps a
// partition of [0, 64) into maximal runs of equal entries — ~24 B × runs
// instead of a 1 KiB dense array per node.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dht/id.h"
#include "dht/leafset.h"

namespace p2p::dht {

class FingerTable {
 public:
  static constexpr std::size_t kBits = 64;

  explicit FingerTable(NodeId owner) : owner_(owner) { Clear(); }

  NodeId owner() const { return owner_; }

  // Target key of finger i: owner + 2^i (mod 2^64).
  NodeId TargetKey(std::size_t i) const {
    return owner_ + (NodeId{1} << i);
  }

  // Reset all fingers to empty.
  void Clear() {
    runs_.clear();
    runs_.push_back({0, {0, kNoNode}});
  }

  void Set(std::size_t i, NodeId id, NodeIndex node);

  const LeafsetEntry& finger(std::size_t i) const {
    return runs_[RunIndexOf(i)].entry;
  }

  // Remove any fingers pointing at a failed node (they will be refilled on
  // the next rebuild).
  void Invalidate(NodeIndex node);

  // Best next hop toward `key`: the finger with the largest id in the arc
  // (owner, key), i.e. the classic closest-preceding-finger rule. Returns
  // kNoNode when no finger makes progress.
  NodeIndex ClosestPreceding(NodeId key) const;

  // Distinct maximal runs (diagnostics / memory accounting).
  std::size_t run_count() const { return runs_.size(); }

  // Heap bytes held by this table (memory accounting; excludes
  // sizeof(*this)).
  std::size_t HeapBytes() const { return runs_.capacity() * sizeof(Run); }

 private:
  // Run k covers logical fingers [runs_[k].first, runs_[k+1].first) (the
  // last run extends to kBits). runs_ is never empty; runs_[0].first == 0;
  // adjacent runs hold distinct entries.
  struct Run {
    std::uint8_t first;
    LeafsetEntry entry;
  };

  std::size_t RunIndexOf(std::size_t i) const;
  std::size_t RunEnd(std::size_t k) const {
    return k + 1 < runs_.size() ? runs_[k + 1].first : kBits;
  }
  // Merge runs_[k] into its predecessor when their entries are equal.
  void CoalesceAt(std::size_t k);

  NodeId owner_;
  std::vector<Run> runs_;
};

}  // namespace p2p::dht
