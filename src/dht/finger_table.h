// Chord-style finger table: the i-th finger of node x is the node
// responsible for key x + 2^i. Fingers give O(log N) lookup on top of the
// O(N) base ring (paper §3.1: "elaborate algorithms built upon the above
// concept achieve O(logN) performance").
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "dht/id.h"
#include "dht/leafset.h"

namespace p2p::dht {

class FingerTable {
 public:
  static constexpr std::size_t kBits = 64;

  explicit FingerTable(NodeId owner) : owner_(owner) {
    entries_.fill({0, kNoNode});
  }

  NodeId owner() const { return owner_; }

  // Target key of finger i: owner + 2^i (mod 2^64).
  NodeId TargetKey(std::size_t i) const {
    return owner_ + (NodeId{1} << i);
  }

  void Set(std::size_t i, NodeId id, NodeIndex node) {
    entries_.at(i) = {id, node};
  }

  const LeafsetEntry& finger(std::size_t i) const { return entries_.at(i); }

  // Remove any fingers pointing at a failed node (they will be refilled on
  // the next rebuild).
  void Invalidate(NodeIndex node) {
    for (auto& e : entries_) {
      if (e.node == node) e = {0, kNoNode};
    }
  }

  // Best next hop toward `key`: the finger with the largest id in the arc
  // (owner, key), i.e. the classic closest-preceding-finger rule. Returns
  // kNoNode when no finger makes progress.
  NodeIndex ClosestPreceding(NodeId key) const;

 private:
  NodeId owner_;
  std::array<LeafsetEntry, kBits> entries_;
};

}  // namespace p2p::dht
