#include "dht/churn.h"

#include "util/check.h"

namespace p2p::dht {

ChurnProcess::ChurnProcess(sim::Simulation& sim, Ring& ring, Config config,
                           HeartbeatProtocol* heartbeat)
    : sim_(sim), ring_(ring), config_(std::move(config)),
      heartbeat_(heartbeat) {}

void ChurnProcess::Start() {
  P2P_CHECK(!running_);
  running_ = true;
  if (config_.mean_join_interval_ms > 0.0) {
    P2P_CHECK_MSG(!config_.join_hosts.empty(),
                  "join process enabled but no join hosts provided");
    ScheduleJoin();
  }
  if (config_.mean_fail_interval_ms > 0.0) ScheduleFail();
}

void ChurnProcess::Stop() { running_ = false; }

void ChurnProcess::ScheduleJoin() {
  const double dt =
      sim_.rng().Exponential(1.0 / config_.mean_join_interval_ms);
  sim_.After(dt, [this] {
    if (!running_) return;
    const net::HostIdx host =
        config_.join_hosts[next_host_++ % config_.join_hosts.size()];
    const NodeIndex n = ring_.JoinHashed(host, join_salt_++);
    ++joins_;
    if (heartbeat_ != nullptr) heartbeat_->OnNodeJoined(n);
    if (on_join) on_join(n);
    ScheduleJoin();
  });
}

void ChurnProcess::ScheduleFail() {
  const double dt =
      sim_.rng().Exponential(1.0 / config_.mean_fail_interval_ms);
  sim_.After(dt, [this] {
    if (!running_) return;
    if (ring_.alive_count() > config_.min_alive) {
      // Pick a uniformly random alive node to crash.
      const auto alive = ring_.SortedAlive();
      const NodeIndex victim =
          alive[sim_.rng().NextBounded(alive.size())];
      ring_.Fail(victim);
      ++failures_;
      if (on_fail) on_fail(victim);
    }
    ScheduleFail();
  });
}

}  // namespace p2p::dht
