#include "dht/kv_store.h"

#include <algorithm>

#include "util/check.h"

namespace p2p::dht {

KvStore::KvStore(Ring& ring, std::size_t replicas)
    : ring_(ring), replicas_(replicas) {
  P2P_CHECK_MSG(replicas_ >= 1, "need at least one copy");
  store_.resize(ring_.size());
}

std::vector<NodeIndex> KvStore::ReplicaSet(NodeId key) const {
  std::vector<NodeIndex> set;
  const NodeIndex primary = ring_.ResponsibleFor(key);
  set.push_back(primary);
  // Walk the alive ring order clockwise from the primary.
  const auto sorted = ring_.SortedAlive();
  const auto it = std::find(sorted.begin(), sorted.end(), primary);
  P2P_CHECK(it != sorted.end());
  std::size_t pos = static_cast<std::size_t>(it - sorted.begin());
  while (set.size() < std::min(replicas_, sorted.size())) {
    pos = (pos + 1) % sorted.size();
    set.push_back(sorted[pos]);
  }
  return set;
}

KvStore::PutResult KvStore::Put(NodeIndex via, NodeId key,
                                std::string value) {
  PutResult result;
  result.route = ring_.Route(via, key);
  if (!result.route.success) return result;
  if (store_.size() < ring_.size()) store_.resize(ring_.size());
  for (const NodeIndex n : ReplicaSet(key)) {
    store_[n][key] = value;
    ++result.copies_stored;
  }
  directory_[key] = std::move(value);
  result.ok = true;
  return result;
}

KvStore::GetResult KvStore::Get(NodeIndex via, NodeId key) const {
  GetResult result;
  result.route = ring_.Route(via, key);
  if (!result.route.success) return result;
  // Nodes that joined after construction have no storage until the next
  // Put/Repair resizes; treat them as empty.
  auto lookup = [&](NodeIndex n) -> const std::string* {
    if (n >= store_.size()) return nullptr;
    const auto it = store_[n].find(key);
    return it == store_[n].end() ? nullptr : &it->second;
  };
  if (const std::string* hit = lookup(result.route.destination)) {
    result.found = true;
    result.value = *hit;
    return result;
  }
  // Replica fallback: fresh joiners may have displaced the whole nominal
  // replica set without holding data yet, so probe clockwise through the
  // primary's successor span (bounded by the ring's leafset reach — the
  // nodes a real implementation can contact in one step).
  const auto sorted = ring_.SortedAlive();
  const auto it =
      std::find(sorted.begin(), sorted.end(), result.route.destination);
  P2P_CHECK(it != sorted.end());
  std::size_t pos = static_cast<std::size_t>(it - sorted.begin());
  const std::size_t probes =
      std::min(sorted.size(), replicas_ + ring_.per_side());
  for (std::size_t k = 1; k < probes; ++k) {
    pos = (pos + 1) % sorted.size();
    if (const std::string* hit = lookup(sorted[pos])) {
      result.found = true;
      result.value = *hit;
      result.from_replica = true;
      return result;
    }
  }
  return result;
}

bool KvStore::Erase(NodeIndex via, NodeId key) {
  const RouteResult route = ring_.Route(via, key);
  (void)route;
  const bool existed = directory_.erase(key) > 0;
  for (auto& node_store : store_) node_store.erase(key);
  return existed;
}

void KvStore::RepairReplicas() {
  if (store_.size() < ring_.size()) store_.resize(ring_.size());
  // Drop copies from dead nodes; re-place every key on its current
  // replica set (idempotent).
  for (NodeIndex n = 0; n < store_.size(); ++n) {
    if (!ring_.node(n).alive()) store_[n].clear();
  }
  for (const auto& [key, value] : directory_) {
    const auto set = ReplicaSet(key);
    // Remove copies that are no longer in the set.
    for (NodeIndex n = 0; n < store_.size(); ++n) {
      if (std::find(set.begin(), set.end(), n) == set.end())
        store_[n].erase(key);
    }
    for (const NodeIndex n : set) store_[n][key] = value;
  }
}

// Note: CopiesOf and CheckInvariants iterate store_, which only covers
// nodes present at the last resize; unsized joiners hold nothing by
// definition.
std::size_t KvStore::CopiesOf(NodeId key) const {
  std::size_t copies = 0;
  for (NodeIndex n = 0; n < store_.size(); ++n) {
    if (ring_.node(n).alive() && store_[n].count(key)) ++copies;
  }
  return copies;
}

std::size_t KvStore::StoredOn(NodeIndex n) const {
  return store_.at(n).size();
}

void KvStore::CheckInvariants() const {
  for (const auto& [key, value] : directory_) {
    const auto set = ReplicaSet(key);
    for (const NodeIndex n : set) {
      P2P_CHECK_MSG(n < store_.size(), "replica node " << n << " unsized");
      const auto it = store_[n].find(key);
      P2P_CHECK_MSG(it != store_[n].end(),
                    "key missing from replica node " << n);
      P2P_CHECK_MSG(it->second == value, "replica divergence at " << n);
    }
    P2P_CHECK(CopiesOf(key) == set.size());
  }
}

void KvStore::Reserve(std::size_t expected_keys) {
  if (store_.size() < ring_.size()) store_.resize(ring_.size());
  directory_.reserve(expected_keys);
  if (store_.empty()) return;
  // Each key lands on replicas_ nodes; spread evenly with 2x headroom for
  // the hash-placement skew so the per-node maps never rehash mid-load.
  const std::size_t per_node =
      (expected_keys * replicas_ * 2) / store_.size() + 1;
  for (auto& node_store : store_) node_store.reserve(per_node);
}

namespace {
std::size_t MapBytes(const std::unordered_map<NodeId, std::string>& m) {
  // Bucket array + one heap node per element (payload + hash/next links)
  // + out-of-line string storage (SSO-resident values cost nothing extra).
  std::size_t bytes = m.bucket_count() * sizeof(void*);
  bytes += m.size() * (sizeof(std::pair<const NodeId, std::string>) +
                       2 * sizeof(void*));
  for (const auto& [key, value] : m) {
    (void)key;
    if (value.capacity() >= sizeof(std::string)) bytes += value.capacity() + 1;
  }
  return bytes;
}
}  // namespace

std::size_t KvStore::MemoryBytes() const {
  std::size_t bytes = sizeof(*this);
  bytes += store_.capacity() * sizeof(std::unordered_map<NodeId, std::string>);
  for (const auto& node_store : store_) bytes += MapBytes(node_store);
  return bytes + MapBytes(directory_);
}

}  // namespace p2p::dht
