// The base-ring DHT (paper §3.1): consistent-hashing zones, leafsets of r
// neighbours per side, Chord-style fingers for O(log N) routing.
//
// The Ring is a passive structure — it does not schedule events itself.
// Time-driven behaviour (heartbeats, failure detection, repair jitter) is
// layered on top by HeartbeatProtocol; experiment harnesses that don't need
// timing call the synchronous maintenance entry points directly.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "dht/node.h"
#include "net/latency_oracle.h"
#include "obs/metrics.h"
#include "sim/trace.h"
#include "util/thread_pool.h"

namespace p2p::dht {

// Modelled wire size of one overlay routing hop (lookup request forward).
inline constexpr std::size_t kRouteHopBytes = 48;

struct RouteResult {
  NodeIndex destination = kNoNode;
  std::size_t hops = 0;       // overlay hops taken (0 when from owns key)
  double latency_ms = 0.0;    // sum of per-hop latencies (0 without oracle)
  bool success = false;
};

// Long-range routing geometry: Chord-style fingers (keys at power-of-two
// offsets) or Pastry/Tapestry-style prefix correction (2^b-ary digits).
// Both fall back to the leafset for the last mile; the choice only affects
// which long-range table Route() consults (paper §3.1 treats them as
// interchangeable O(log N) designs, which this lets us demonstrate).
enum class RoutingGeometry {
  kChordFingers,
  kPastryPrefix,
};

class Ring {
 public:
  // `leafset_size` is the total leafset capacity (Pastry convention:
  // size 32 means 16 neighbours per side). Oracle may be null; routing then
  // reports hop counts only.
  explicit Ring(std::size_t leafset_size = 32,
                const net::LatencyOracle* oracle = nullptr,
                RoutingGeometry geometry = RoutingGeometry::kChordFingers);

  RoutingGeometry geometry() const { return geometry_; }

  std::size_t leafset_size() const { return 2 * per_side_; }
  std::size_t per_side() const { return per_side_; }

  // --- membership -------------------------------------------------------

  // Join with an explicit id (ids must be unique). Leafsets of the joiner
  // and its 2r ring neighbours are brought to converged state; the joiner's
  // fingers are built. Other nodes' fingers go stale until the next
  // maintenance pass — routing remains correct via leafsets.
  NodeIndex Join(net::HostIdx host, NodeId id);
  // Join with id = hash(host, salt).
  NodeIndex JoinHashed(net::HostIdx host, std::uint64_t salt = 0);

  // Bulk bootstrap: join hosts [first_host, first_host + count) with hashed
  // ids and run ONE stabilisation pass at the end, instead of the per-join
  // incremental leafset repair (which rewrites each joiner's 2r-
  // neighbourhood, touching every node O(r) times across a bootstrap).
  // The end state — ids, leafsets, fingers, prefix tables — is identical
  // to `count` JoinHashed calls followed by StabilizeAll; the collision
  // probe sequence matches JoinHashed's exactly. Returns the index of the
  // first joined node (the batch is contiguous).
  NodeIndex JoinBatchHashed(net::HostIdx first_host, std::size_t count,
                            std::uint64_t salt = 0);

  // Graceful departure: neighbours drop the node immediately.
  void Leave(NodeIndex n);
  // Crash: the node stops responding but neighbours keep stale entries
  // until DetectFailure (heartbeat timeout) or RepairAll.
  void Fail(NodeIndex n);
  // Neighbour-side cleanup after a failure has been detected: removes the
  // dead node from all leafsets/fingers that reference it and refills the
  // affected leafsets.
  void DetectFailure(NodeIndex n);

  // --- lookup & routing ---------------------------------------------------

  // The alive node whose zone (pred, id] contains `key`.
  NodeIndex ResponsibleFor(NodeId key) const;

  // Greedy routing from `from` using fingers + leafset, skipping dead
  // entries. Counts overlay hops; accumulates per-hop latency when an
  // oracle is present.
  RouteResult Route(NodeIndex from, NodeId key) const;

  // --- maintenance --------------------------------------------------------

  // Recompute every alive node's leafset and fingers from the alive set
  // (the state a converged maintenance protocol reaches). With a thread
  // pool attached (set_thread_pool), per-node rebuilds fan out across the
  // pool — each node writes only its own tables against the shared sorted
  // snapshot, so the result is schedule-invariant and identical to the
  // serial pass.
  void StabilizeAll();
  // Rebuild one node's fingers against current membership.
  void BuildFingers(NodeIndex n);
  // Rebuild one node's prefix table against current membership.
  void BuildPrefixTable(NodeIndex n);

  // Exchange the ids of two alive nodes and repair routing state around
  // them (SOMO root-swap self-optimisation, §3.2).
  void SwapNodeIds(NodeIndex a, NodeIndex b);

  // --- accessors ----------------------------------------------------------

  std::size_t size() const { return nodes_.size(); }
  std::size_t alive_count() const { return alive_count_; }

  // Optional worker pool for the bulk paths (StabilizeAll, batch-join
  // hashing). Null (the default) keeps everything on the calling thread;
  // results are byte-identical either way.
  void set_thread_pool(util::ThreadPool* pool) { pool_ = pool; }
  util::ThreadPool* thread_pool() const { return pool_; }

  // Total heap + inline bytes of the ring's routing state: nodes (leafset,
  // fingers, prefix tables) plus the sorted-membership cache. Feeds the
  // mem.bytes_per_host gauge.
  std::size_t MemoryBytes() const;
  Node& node(NodeIndex n) { return nodes_.at(n); }
  const Node& node(NodeIndex n) const { return nodes_.at(n); }
  const net::LatencyOracle* oracle() const { return oracle_; }

  // Optional per-hop route tracing: when set, Route() appends one kRouting
  // record per overlay hop taken (kind = hop ordinal within the route).
  // Timestamps come from the sink's clock — bind it to a simulation for
  // sim time, or leave unbound for -1 stamps on offline lookups.
  void set_trace_sink(sim::TraceSink* sink) { trace_ = sink; }
  sim::TraceSink* trace_sink() const { return trace_; }

  // Optional instrumentation: dht.route.hops / dht.route.latency_ms
  // histograms per Route() call (latency only with an oracle) and the
  // dht.leafset.repairs counter (leafset refills in DetectFailure).
  void set_metrics(obs::MetricsRegistry* registry);
  obs::MetricsRegistry* metrics() const { return metrics_; }

  // Alive node indices sorted by id (ascending).
  std::vector<NodeIndex> SortedAlive() const;

  // Latency between the hosts of two nodes (requires oracle).
  double LatencyBetween(NodeIndex a, NodeIndex b) const;

  // Verify ring invariants (unique ids, leafset symmetry vs sorted order
  // for converged rings). Used by tests; throws CheckError on violation.
  void CheckInvariants() const;

 private:
  void RefreshSorted() const;
  // Converged leafset of node n given the current alive membership.
  void FillLeafsetFromSorted(NodeIndex n);

  std::size_t per_side_;
  util::ThreadPool* pool_ = nullptr;
  const net::LatencyOracle* oracle_;
  sim::TraceSink* trace_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Histogram* route_hops_ = nullptr;
  obs::Histogram* route_latency_ = nullptr;
  obs::Counter* leafset_repairs_ = nullptr;
  RoutingGeometry geometry_;
  std::vector<Node> nodes_;
  std::size_t alive_count_ = 0;
  // Cache of alive (id, index) sorted by id; invalidated on membership
  // change.
  mutable std::vector<LeafsetEntry> sorted_;
  mutable bool sorted_dirty_ = true;
};

}  // namespace p2p::dht
