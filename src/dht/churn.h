// Churn driver: Poisson join and failure processes over a Ring, used by the
// robustness tests and the SOMO self-healing experiment (E8).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "dht/heartbeat.h"
#include "dht/ring.h"
#include "sim/simulation.h"

namespace p2p::dht {

class ChurnProcess {
 public:
  struct Config {
    // Mean inter-arrival times (ms) of the Poisson processes; a rate of 0
    // disables that process.
    double mean_join_interval_ms = 0.0;
    double mean_fail_interval_ms = 0.0;
    // Hosts available for joiners (cycled through round-robin).
    std::vector<net::HostIdx> join_hosts;
    // Never fail below this many alive nodes.
    std::size_t min_alive = 4;
  };

  // `heartbeat` may be null; when present, joiners are registered with it.
  ChurnProcess(sim::Simulation& sim, Ring& ring, Config config,
               HeartbeatProtocol* heartbeat = nullptr);

  void Start();
  void Stop();

  std::size_t joins() const { return joins_; }
  std::size_t failures() const { return failures_; }

  // Invoked after each join/failure with the affected node index.
  std::function<void(NodeIndex)> on_join;
  std::function<void(NodeIndex)> on_fail;

 private:
  void ScheduleJoin();
  void ScheduleFail();

  sim::Simulation& sim_;
  Ring& ring_;
  Config config_;
  HeartbeatProtocol* heartbeat_;
  bool running_ = false;
  std::size_t joins_ = 0;
  std::size_t failures_ = 0;
  std::size_t next_host_ = 0;
  std::uint64_t join_salt_ = 1;
};

}  // namespace p2p::dht
