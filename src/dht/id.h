// DHT identifier space: an unsigned 64-bit ring with consistent-hashing
// zones, zone(x) ≡ (id(pred(x)), id(x)]  (paper §3.1).
//
// SOMO's logical space [0, 1] maps onto the same ring via IdFromUnit, so
// logical tree points and node ids live in one space (the property §3.2 of
// the paper calls "virtualization of a space where both resources and other
// entities live together").
#pragma once

#include <cstdint>

#include "util/rng.h"

namespace p2p::dht {

using NodeId = std::uint64_t;

// Clockwise (forward) distance from a to b on the ring; 0 when a == b.
constexpr NodeId ClockwiseDistance(NodeId a, NodeId b) { return b - a; }

// Minimal ring distance between a and b (either direction).
constexpr NodeId RingDistance(NodeId a, NodeId b) {
  const NodeId d = b - a;
  const NodeId e = a - b;
  return d < e ? d : e;
}

// True iff x lies in the half-open clockwise arc (a, b]. When a == b the
// arc is the entire ring (single-node system owns everything).
constexpr bool InArc(NodeId a, NodeId x, NodeId b) {
  if (a == b) return true;
  return ClockwiseDistance(a, x) != 0 &&
         ClockwiseDistance(a, x) <= ClockwiseDistance(a, b);
}

// Map u in [0, 1] to a ring id (1.0 wraps to 0, matching ring topology).
constexpr NodeId IdFromUnit(double u) {
  // 2^64 as double; values >= 1.0 wrap.
  if (u >= 1.0) u -= 1.0;
  if (u < 0.0) u += 1.0;
  return static_cast<NodeId>(u * 18446744073709551616.0);
}

constexpr double UnitFromId(NodeId id) {
  return static_cast<double>(id) / 18446744073709551616.0;
}

// Deterministic pseudo-random id for a host (MD5-over-IP stand-in, §3.1).
constexpr NodeId HashHostToId(std::uint64_t host_key) {
  return util::Mix64(host_key ^ 0x5bd1e995751e2d43ULL);
}

}  // namespace p2p::dht
