// Dynamic session membership — the extension §5 of the paper flags as
// straightforward ("the algorithm can be extended to accommodate dynamic
// membership as well").
//
// A DynamicSession wraps a planned multicast tree and supports incremental
// Join and Leave without replanning from scratch:
//  * Join attaches the newcomer under its best feasible parent (the same
//    greedy rule AMCast uses), firing the critical-node helper search when
//    that parent is about to spend its last degree.
//  * Leave re-homes the departing node's children greedily (each subtree
//    moves under the best feasible parent outside itself), then prunes
//    helper nodes left without children — helpers only ever exist to
//    serve members.
// After each change an optional local adjustment pass restores tree
// quality.
#pragma once

#include <vector>

#include "alm/adjust.h"
#include "alm/amcast.h"
#include "alm/tree.h"

namespace p2p::alm {

struct DynamicSessionOptions {
  AmcastOptions amcast;  // helper selection knobs for joins
  AdjustOptions adjust;
  bool adjust_after_change = true;
};

class DynamicSession {
 public:
  // `tree` is an already-planned session tree; `helpers_in_tree` lists the
  // tree nodes that are pool helpers (prunable when childless); `latency`
  // is the planning latency.
  DynamicSession(MulticastTree tree, std::vector<int> degree_bounds,
                 std::vector<ParticipantId> helpers_in_tree,
                 LatencyFn latency, DynamicSessionOptions options = {});

  const MulticastTree& tree() const { return tree_; }
  double Height() const { return tree_.Height(latency_); }
  bool IsHelper(ParticipantId v) const { return is_helper_.at(v); }
  std::size_t helpers_in_tree() const;

  // Attach `v` (not currently in the tree). Helper candidates are pool
  // nodes available for recruitment right now. Returns false when no
  // feasible parent exists (every tree node full and no helper applies).
  bool Join(ParticipantId v,
            const std::vector<ParticipantId>& helper_candidates = {});

  // Detach member `v` (not the root). Children are re-homed; childless
  // helpers are pruned transitively. Returns false when some child cannot
  // be re-homed (degree bounds too tight), in which case the tree is
  // unchanged.
  bool Leave(ParticipantId v);

  std::size_t joins() const { return joins_; }
  std::size_t leaves() const { return leaves_; }
  std::size_t helpers_recruited() const { return helpers_recruited_; }
  std::size_t helpers_pruned() const { return helpers_pruned_; }

 private:
  int FreeDegree(ParticipantId v) const;
  // Best feasible parent for `v` by resulting height; `exclude_subtree`
  // (optional) bars parents inside a moving subtree.
  ParticipantId BestParent(ParticipantId v,
                           ParticipantId exclude_subtree) const;
  void PruneChildlessHelpers();
  void MaybeAdjust();

  MulticastTree tree_;
  std::vector<int> degree_bounds_;
  std::vector<char> is_helper_;
  LatencyFn latency_;
  DynamicSessionOptions options_;
  std::size_t joins_ = 0;
  std::size_t leaves_ = 0;
  std::size_t helpers_recruited_ = 0;
  std::size_t helpers_pruned_ = 0;
};

}  // namespace p2p::alm
