#include "alm/latency_matrix.h"

#include <algorithm>

namespace p2p::alm {

template <typename Eval>
void LatencyMatrix::Build(std::size_t participant_space,
                          const std::vector<ParticipantId>& core_ids,
                          const std::vector<ParticipantId>& satellite_ids,
                          const Eval& eval) {
  dense_.assign(participant_space, kAbsent);
  std::vector<ParticipantId> covered;
  covered.reserve(core_ids.size() + satellite_ids.size());
  const auto cover = [&](const std::vector<ParticipantId>& ids) {
    for (const ParticipantId v : ids) {
      P2P_CHECK_MSG(v < participant_space, "id " << v << " out of range");
      if (dense_[v] != kAbsent) continue;  // collapse duplicates
      dense_[v] = static_cast<std::uint32_t>(covered.size());
      covered.push_back(v);
    }
  };
  cover(core_ids);
  core_n_ = static_cast<std::uint32_t>(covered.size());
  cover(satellite_ids);  // a satellite already covered as core stays core
  n_ = covered.size();

  data_.assign(n_ * core_n_, 0.0);
  // Fill the strict lower triangle row by row — every write is sequential —
  // then mirror the core block with a blocked transpose so neither side of
  // the copy strides through cold cache lines.
  for (std::size_t i = 1; i < n_; ++i) {
    double* row = data_.data() + i * core_n_;
    const std::size_t jmax = std::min<std::size_t>(i, core_n_);
    for (std::size_t j = 0; j < jmax; ++j)
      row[j] = eval(covered[i], covered[j]);
  }
  constexpr std::size_t kTile = 32;
  for (std::size_t ib = 0; ib < core_n_; ib += kTile) {
    for (std::size_t jb = 0; jb <= ib; jb += kTile) {
      const std::size_t iend = std::min(ib + kTile, static_cast<std::size_t>(core_n_));
      for (std::size_t i = ib; i < iend; ++i) {
        const std::size_t jend = std::min(jb + kTile, i);
        for (std::size_t j = jb; j < jend; ++j)
          data_[j * core_n_ + i] = data_[i * core_n_ + j];
      }
    }
  }
}

LatencyMatrix::LatencyMatrix(std::size_t participant_space,
                             const std::vector<ParticipantId>& core_ids,
                             const std::vector<ParticipantId>& satellite_ids,
                             const LatencyFn& fn)
    : fn_(fn) {
  P2P_CHECK_MSG(fn != nullptr, "building a LatencyMatrix from a null fn");
  Build(participant_space, core_ids, satellite_ids, fn);
}

LatencyMatrix::LatencyMatrix(std::size_t participant_space,
                             const std::vector<ParticipantId>& core_ids,
                             const std::vector<ParticipantId>& satellite_ids,
                             const net::LatencyOracle& oracle)
    : fn_([&oracle](ParticipantId a, ParticipantId b) {
        return oracle.Latency(a, b);
      }) {
  Build(participant_space, core_ids, satellite_ids,
        [&oracle](ParticipantId a, ParticipantId b) {
          return oracle.Latency(a, b);
        });
}

}  // namespace p2p::alm
