// Multicast tree representation for the degree-bounded minimum-height tree
// (DB-MHT) problem of paper §5.1.
//
// Participants live in a dense index space 0..P-1 (session members plus
// helper candidates); a tree spans a subset of them. "Height" of a node is
// its aggregated latency from the root (Definition 1); the tree's height is
// the maximum over its nodes, attained at some leaf.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace p2p::alm {

using ParticipantId = std::size_t;
inline constexpr ParticipantId kNoParticipant =
    static_cast<ParticipantId>(-1);

// Pairwise latency used for planning. Both the oracle ("Critical") and the
// coordinate estimate ("Leafset") plug in here.
using LatencyFn = std::function<double(ParticipantId, ParticipantId)>;

class LatencyMatrix;  // flat fast-path view, see alm/latency_matrix.h

class MulticastTree {
 public:
  // `participant_count` sizes the index space; nodes join via SetRoot /
  // AddChild.
  explicit MulticastTree(std::size_t participant_count);

  std::size_t participant_space() const { return parent_.size(); }
  std::size_t size() const { return member_count_; }
  bool Contains(ParticipantId v) const;

  ParticipantId root() const { return root_; }
  void SetRoot(ParticipantId r);

  // Attach `v` (not yet in the tree) under `parent` (already in the tree).
  void AddChild(ParticipantId parent, ParticipantId v);

  // Re-attach `v` (already in the tree, not the root) under `new_parent`.
  // `new_parent` must not be in v's subtree.
  void Reparent(ParticipantId v, ParticipantId new_parent);

  // Exchange the tree positions of two members (used by adjust move (b):
  // "swap the highest node with another leaf node"). Each takes over the
  // other's parent and children.
  void SwapPositions(ParticipantId a, ParticipantId b);

  // Exchange the parent edges of two subtree roots (adjust move (c)):
  // each keeps its own children, so the whole subtrees move. Neither may
  // be the root or an ancestor of the other.
  void SwapSubtrees(ParticipantId a, ParticipantId b);

  // Detach a childless non-root member from the tree (dynamic-membership
  // support; interior departures first re-home their children).
  void RemoveLeaf(ParticipantId v);

  ParticipantId parent(ParticipantId v) const;
  const std::vector<ParticipantId>& children(ParticipantId v) const;

  // Tree degree: incident tree edges (children + parent link for non-root).
  int Degree(ParticipantId v) const;
  bool IsLeaf(ParticipantId v) const;

  // True iff `ancestor` lies on the root path of `v` (inclusive of v).
  bool InSubtree(ParticipantId v, ParticipantId ancestor) const;

  // Members in insertion order (root first).
  const std::vector<ParticipantId>& members() const { return members_; }

  // Aggregated-latency heights for every member; index by participant id
  // (non-members hold 0). Root has height 0. The LatencyMatrix overloads
  // are the fast path (array indexing instead of std::function dispatch);
  // the matrix must cover every tree member.
  std::vector<double> ComputeHeights(const LatencyFn& latency) const;
  std::vector<double> ComputeHeights(const LatencyMatrix& latency) const;
  // Max over members of the height (the DB-MHT objective).
  double Height(const LatencyFn& latency) const;
  double Height(const LatencyMatrix& latency) const;

  // Structural + degree validation; throws util::CheckError on violation.
  // `degree_bounds` indexed by participant id.
  void Validate(const std::vector<int>& degree_bounds) const;

 private:
  ParticipantId root_ = kNoParticipant;
  std::vector<ParticipantId> parent_;  // kNoParticipant = not in tree
  std::vector<std::vector<ParticipantId>> children_;
  std::vector<ParticipantId> members_;
  std::size_t member_count_ = 0;
};

}  // namespace p2p::alm
