// Planner abstraction for ALM sessions: one `PlanInput -> PlanResult`
// interface behind which competing overlay constructions live side by side
// under identical seeds, inputs, and metrics plumbing.
//
//   TreePlanner   the paper's DB-MHT pipeline (amcast build, helper
//                 recruitment, tree adjustment) with the six legacy
//                 Strategy values decomposed into their three orthogonal
//                 axes: helpers on/off x adjust on/off x latency source.
//   MeshPlanner   (alm/mesh.h) the Ripeanu et al. self-organizing
//                 unstructured mesh, exposed through the same PlanResult
//                 vocabulary via per-source dissemination-tree extraction.
//
// Planners are looked up by name through PlannerRegistry — the CLI, pool
// config, and conformance tests all go through the factory, so a new
// planner registered here is automatically exercised by the whole stack.
// `PlanSession(input, strategy)` in alm/critical.h survives as a shim over
// `TreePlanner` and is byte-identical to the pre-interface code path
// (equivalence-test-enforced, including metric snapshots).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "alm/adjust.h"
#include "alm/amcast.h"
#include "alm/session.h"
#include "alm/strategy.h"
#include "net/latency_oracle.h"
#include "obs/metrics.h"

namespace p2p::alm {

struct PlanInput {
  std::vector<int> degree_bounds;  // by participant id
  ParticipantId root = kNoParticipant;
  std::vector<ParticipantId> members;  // excluding root
  std::vector<ParticipantId> helper_candidates;
  LatencyFn true_latency;
  // Coordinate-based estimate; required only when the planner reports
  // NeedsEstimates() (the Leafset tree configurations).
  LatencyFn estimated_latency;
  // When set, planning matrices are filled by direct oracle calls (no
  // std::function dispatch per pair) and `true_latency` may be left null —
  // participant ids must then be host indices into the oracle. Leafset
  // strategies still need `estimated_latency`; a non-null `true_latency`
  // overrides the oracle for truth queries (hybrid test setups).
  const net::LatencyOracle* oracle = nullptr;
  AmcastOptions amcast;   // helper_radius / helper_min_degree knobs
  AdjustOptions adjust;
  // Optional instrumentation: alm.plan.* histograms and counters plus the
  // wall-clock alm.plan_ms profile. Leave null on parallel planning paths —
  // the registry is not thread-safe.
  obs::MetricsRegistry* metrics = nullptr;
  // Opt-in alm.planner.<name>.* namespace (plans, height_ms, stress,
  // maintenance_msgs) recorded by the Planner::Plan wrapper. Off by default
  // so legacy Strategy paths keep their pre-interface snapshot bytes.
  bool planner_metrics = false;

  // Root followed by members, appended to `out` (planning hot paths build
  // matrix core-id lists this way; see also SessionSpec::AppendAllMembers).
  void AppendAllMembers(std::vector<ParticipantId>& out) const {
    out.reserve(out.size() + 1 + members.size());
    out.push_back(root);
    out.insert(out.end(), members.begin(), members.end());
  }
};

struct PlanResult {
  MulticastTree tree;
  double height_true = 0.0;      // evaluated with true latency
  double height_planning = 0.0;  // evaluated with the planning latency
  std::size_t helpers_used = 0;
  AdjustStats adjust_stats;
  // Control messages the planner's overlay spends building and maintaining
  // itself for this session (mesh joins/probes/rewires). The centrally
  // computed tree planners spend none — the DB-MHT build is an oracle-side
  // computation — which is exactly the axis the mesh comparison measures.
  std::size_t maintenance_messages = 0;
};

// Maximum out-degree (children count) over every node of the tree — the
// "stress" a plan puts on its busiest forwarder.
std::size_t MaxFanout(const MulticastTree& tree);

// Outcome of Planner::Repair: the overlay's reaction to a set of failed
// participants, in comparable units across planners.
struct RepairOutcome {
  // Post-repair dissemination tree over the survivors.
  PlanResult plan{MulticastTree(0), 0.0, 0.0, 0, {}, 0};
  std::size_t disrupted = 0;  // survivors cut off until the repair landed
  std::size_t repair_messages = 0;
  double repair_latency_ms = 0.0;  // until the last disrupted node rejoins
};

class Planner {
 public:
  virtual ~Planner();

  // Registry key and metric namespace component ("tree", "mesh").
  virtual std::string name() const = 0;

  // True when Plan() reads PlanInput::estimated_latency.
  virtual bool NeedsEstimates() const { return false; }

  // Plan a session. Non-virtual wrapper over DoPlan: when the input opts in
  // (planner_metrics + metrics), records the alm.planner.<name>.* namespace
  // after the planner-specific work.
  PlanResult Plan(const PlanInput& input);

  // React to `failed` participants dropping out of a session previously
  // planned from `original`. The base implementation models the tree
  // planners' centralized story: the source detects the failures, re-plans
  // over the survivors, and pushes the new tree to every node — so
  //   disrupted       = survivors whose old-tree path crossed a failed node,
  //   repair_messages = 2 x new tree size (re-contact + ack per node),
  //   repair_latency  = 2 x new height_true (push down, acks settle back).
  // Failed members/helpers are removed from the input and their degree
  // zeroed. The root must not be in `failed` (the session dies with it).
  virtual RepairOutcome Repair(const PlanInput& original,
                               const std::vector<ParticipantId>& failed);

 protected:
  virtual PlanResult DoPlan(const PlanInput& input) = 0;
};

// Tree-planner option cube. Defaults reproduce Strategy::kCriticalAdjust
// (oracle latency, helpers, adjustment).
struct TreePlannerOptions {
  bool use_helpers = true;
  bool use_adjust = true;
  // Plan with coordinate estimates for helper-involved pairs (the Leafset
  // hybrid) instead of oracle truth throughout.
  bool use_estimates = false;
};

// The Strategy enum is exactly the corner coordinates of the option cube.
TreePlannerOptions OptionsForStrategy(Strategy s);

class TreePlanner : public Planner {
 public:
  TreePlanner() = default;
  explicit TreePlanner(TreePlannerOptions options) : options_(options) {}

  std::string name() const override { return "tree"; }
  bool NeedsEstimates() const override { return options_.use_estimates; }
  const TreePlannerOptions& options() const { return options_; }

 protected:
  PlanResult DoPlan(const PlanInput& input) override;

 private:
  TreePlannerOptions options_;
};

// Name-keyed planner factory. Built-ins ("tree", "mesh", and the six
// strategy spellings of ParseStrategy as TreePlanner configurations) are
// registered in the constructor — deliberately not via static registrar
// objects, which a static-library link would strip. Register() extends the
// set at runtime (tests, future planners).
class PlannerRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Planner>()>;

  static PlannerRegistry& Instance();

  // Throws util::CheckError when `name` is already registered.
  void Register(const std::string& name, Factory factory);
  bool Contains(const std::string& name) const;
  // Throws util::CheckError on an unknown name.
  std::unique_ptr<Planner> Create(const std::string& name) const;
  // Sorted registered names.
  std::vector<std::string> Names() const;

 private:
  PlannerRegistry();
  std::map<std::string, Factory> factories_;
};

// Shorthand for PlannerRegistry::Instance().Create(name).
std::unique_ptr<Planner> CreatePlanner(const std::string& name);

}  // namespace p2p::alm
