#include "alm/strategy.h"

#include "util/check.h"

namespace p2p::alm {

std::string StrategyName(Strategy s) {
  switch (s) {
    case Strategy::kAmcast: return "AMCast";
    case Strategy::kAmcastAdjust: return "AMCast+adj";
    case Strategy::kCritical: return "Critical";
    case Strategy::kCriticalAdjust: return "Critical+adj";
    case Strategy::kLeafset: return "Leafset";
    case Strategy::kLeafsetAdjust: return "Leafset+adj";
  }
  return "?";
}

bool StrategyUsesHelpers(Strategy s) {
  return s != Strategy::kAmcast && s != Strategy::kAmcastAdjust;
}

bool StrategyUsesAdjust(Strategy s) {
  return s == Strategy::kAmcastAdjust || s == Strategy::kCriticalAdjust ||
         s == Strategy::kLeafsetAdjust;
}

bool StrategyUsesEstimates(Strategy s) {
  return s == Strategy::kLeafset || s == Strategy::kLeafsetAdjust;
}

Strategy ParseStrategy(const std::string& name) {
  if (name == "amcast") return Strategy::kAmcast;
  if (name == "amcast+adj") return Strategy::kAmcastAdjust;
  if (name == "critical") return Strategy::kCritical;
  if (name == "critical+adj") return Strategy::kCriticalAdjust;
  if (name == "leafset") return Strategy::kLeafset;
  if (name == "leafset+adj") return Strategy::kLeafsetAdjust;
  P2P_CHECK_MSG(false, "unknown strategy: " + name);
  return Strategy::kLeafsetAdjust;
}

}  // namespace p2p::alm
