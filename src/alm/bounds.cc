#include "alm/bounds.h"

#include <algorithm>

#include "util/check.h"

namespace p2p::alm {

double IdealHeight(ParticipantId root,
                   const std::vector<ParticipantId>& members,
                   const LatencyFn& latency) {
  double worst = 0.0;
  for (const ParticipantId v : members) {
    if (v == root) continue;
    worst = std::max(worst, latency(root, v));
  }
  return worst;
}

double Improvement(double base_height, double alg_height) {
  P2P_CHECK_MSG(base_height > 0.0, "baseline height must be positive");
  return (base_height - alg_height) / base_height;
}

}  // namespace p2p::alm
