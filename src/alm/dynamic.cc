#include "alm/dynamic.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace p2p::alm {
namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

DynamicSession::DynamicSession(MulticastTree tree,
                               std::vector<int> degree_bounds,
                               std::vector<ParticipantId> helpers_in_tree,
                               LatencyFn latency,
                               DynamicSessionOptions options)
    : tree_(std::move(tree)), degree_bounds_(std::move(degree_bounds)),
      latency_(std::move(latency)), options_(options) {
  P2P_CHECK(degree_bounds_.size() == tree_.participant_space());
  P2P_CHECK(latency_ != nullptr);
  tree_.Validate(degree_bounds_);
  is_helper_.assign(tree_.participant_space(), 0);
  for (const ParticipantId h : helpers_in_tree) {
    P2P_CHECK_MSG(tree_.Contains(h), "helper " << h << " not in the tree");
    is_helper_[h] = 1;
  }
}

std::size_t DynamicSession::helpers_in_tree() const {
  std::size_t n = 0;
  for (const ParticipantId v : tree_.members()) n += is_helper_[v];
  return n;
}

int DynamicSession::FreeDegree(ParticipantId v) const {
  return degree_bounds_[v] - tree_.Degree(v);
}

ParticipantId DynamicSession::BestParent(
    ParticipantId v, ParticipantId exclude_subtree) const {
  const auto heights = tree_.ComputeHeights(latency_);
  ParticipantId best = kNoParticipant;
  double best_height = kInf;
  for (const ParticipantId w : tree_.members()) {
    if (w == v || FreeDegree(w) <= 0) continue;
    if (exclude_subtree != kNoParticipant &&
        tree_.InSubtree(w, exclude_subtree))
      continue;
    const double h = heights[w] + latency_(w, v);
    if (h < best_height) {
      best_height = h;
      best = w;
    }
  }
  return best;
}

bool DynamicSession::Join(
    ParticipantId v, const std::vector<ParticipantId>& helper_candidates) {
  P2P_CHECK(v < tree_.participant_space());
  P2P_CHECK_MSG(!tree_.Contains(v), "node " << v << " already in session");
  const ParticipantId parent = BestParent(v, kNoParticipant);
  if (parent == kNoParticipant) return false;

  // Critical-node trigger: the chosen parent is about to spend its last
  // free degree — try to splice a helper (conditions 1–3 with v as the
  // only prospective child).
  if (options_.amcast.selection != HelperSelection::kNone &&
      FreeDegree(parent) == 1 && !helper_candidates.empty()) {
    ParticipantId h = kNoParticipant;
    double best_score = kInf;
    for (const ParticipantId c : helper_candidates) {
      if (tree_.Contains(c)) continue;
      if (degree_bounds_[c] < options_.amcast.helper_min_degree) continue;
      const double to_parent = latency_(c, parent);
      if (to_parent >= options_.amcast.helper_radius) continue;
      double score = to_parent;
      if (options_.amcast.selection == HelperSelection::kMinimaxHeuristic)
        score += latency_(c, v);
      if (score < best_score) {
        best_score = score;
        h = c;
      }
    }
    if (h != kNoParticipant) {
      tree_.AddChild(parent, h);
      tree_.AddChild(h, v);
      is_helper_[h] = 1;
      ++helpers_recruited_;
      ++joins_;
      MaybeAdjust();
      return true;
    }
  }

  tree_.AddChild(parent, v);
  ++joins_;
  MaybeAdjust();
  return true;
}

bool DynamicSession::Leave(ParticipantId v) {
  P2P_CHECK_MSG(tree_.Contains(v), "node " << v << " not in session");
  P2P_CHECK_MSG(v != tree_.root(), "the root cannot leave");

  // Re-home every child subtree. Plan all moves first so a failure leaves
  // the tree untouched.
  const std::vector<ParticipantId> kids = tree_.children(v);
  // Detaching v frees one degree at its parent; simulate that by allowing
  // v's parent as a target with its post-departure free degree. For
  // simplicity, re-home iteratively and roll back on failure.
  std::vector<std::pair<ParticipantId, ParticipantId>> moves;  // (child, old parent)
  for (const ParticipantId c : kids) {
    // Parent candidates: anywhere outside c's subtree, except v itself.
    const auto heights = tree_.ComputeHeights(latency_);
    ParticipantId best = kNoParticipant;
    double best_height = kInf;
    for (const ParticipantId w : tree_.members()) {
      if (w == v || w == c || tree_.InSubtree(w, c)) continue;
      if (FreeDegree(w) <= 0) continue;
      const double h = heights[w] + latency_(w, c);
      if (h < best_height) {
        best_height = h;
        best = w;
      }
    }
    if (best == kNoParticipant) {
      // Roll back the moves done so far.
      for (auto it = moves.rbegin(); it != moves.rend(); ++it)
        tree_.Reparent(it->first, it->second);
      return false;
    }
    tree_.Reparent(c, best);
    moves.emplace_back(c, v);
  }
  P2P_DCHECK(tree_.IsLeaf(v));
  tree_.RemoveLeaf(v);
  ++leaves_;
  PruneChildlessHelpers();
  MaybeAdjust();
  return true;
}

void DynamicSession::PruneChildlessHelpers() {
  bool changed = true;
  while (changed) {
    changed = false;
    for (const ParticipantId v : tree_.members()) {
      if (is_helper_[v] && tree_.IsLeaf(v) && v != tree_.root()) {
        tree_.RemoveLeaf(v);
        is_helper_[v] = 0;
        ++helpers_pruned_;
        changed = true;
        break;  // members() invalidated
      }
    }
  }
}

void DynamicSession::MaybeAdjust() {
  if (!options_.adjust_after_change) return;
  AdjustTree(tree_, degree_bounds_, latency_, options_.adjust);
#ifndef NDEBUG
  tree_.Validate(degree_bounds_);
#endif
}

}  // namespace p2p::alm
