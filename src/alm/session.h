// ALM session descriptor shared by the single-session planner and the
// multi-session market scheduler.
#pragma once

#include <cstdint>
#include <vector>

#include "alm/tree.h"

namespace p2p::alm {

using SessionId = std::int64_t;

struct SessionSpec {
  SessionId id = 0;
  // Paper §5.3: integer priority 1..3, 1 highest.
  int priority = 1;
  ParticipantId root = kNoParticipant;
  // Original member set M(s), excluding the root.
  std::vector<ParticipantId> members;
  // Activity window (ms of simulated time); end < start means "forever".
  double start_ms = 0.0;
  double end_ms = -1.0;

  // Members including the root, appended to `out` — the planning hot paths
  // reuse one scratch vector across sessions instead of allocating per call.
  void AppendAllMembers(std::vector<ParticipantId>& out) const {
    out.reserve(out.size() + 1 + members.size());
    out.push_back(root);
    out.insert(out.end(), members.begin(), members.end());
  }

  // Members including the root.
  std::vector<ParticipantId> AllMembers() const {
    std::vector<ParticipantId> all;
    AppendAllMembers(all);
    return all;
  }
};

}  // namespace p2p::alm
