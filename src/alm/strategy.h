// Named planning strategies for an ALM session — the six lines of the
// paper's Figure 8 plus the theoretical bound:
//   AMCast            greedy DB-MHT over M(s) only
//   AMCast+adjust     ... followed by tree adjustment
//   Critical          helper recruitment with oracle pairwise latency
//   Critical+adjust
//   Leafset           helper recruitment with coordinate-estimated latency
//   Leafset+adjust    (the practical algorithm the paper recommends)
//
// A Strategy is planner *policy*, not planner logic: it names one point in
// the (helpers × adjust × latency-source) option cube that TreePlanner
// (alm/planner.h) exposes directly. New code should configure
// TreePlannerOptions; the enum survives for the paper-figure vocabulary and
// for the PlanSession() compatibility shim.
#pragma once

#include <string>

namespace p2p::alm {

enum class Strategy {
  kAmcast,
  kAmcastAdjust,
  kCritical,
  kCriticalAdjust,
  kLeafset,
  kLeafsetAdjust,
};

std::string StrategyName(Strategy s);
bool StrategyUsesHelpers(Strategy s);
bool StrategyUsesAdjust(Strategy s);
bool StrategyUsesEstimates(Strategy s);

// CLI spelling ("amcast", "amcast+adj", "critical", "critical+adj",
// "leafset", "leafset+adj") -> Strategy; throws util::CheckError on an
// unknown spelling. These spellings double as planner registry names.
Strategy ParseStrategy(const std::string& name);

}  // namespace p2p::alm
