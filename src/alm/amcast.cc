#include "alm/amcast.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace p2p::alm {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

AmcastResult BuildAmcastTree(const AmcastInput& input,
                             const LatencyFn& latency,
                             const AmcastOptions& options) {
  const std::size_t P = input.degree_bounds.size();
  P2P_CHECK_MSG(input.root < P, "root id out of range");
  for (const ParticipantId m : input.members) P2P_CHECK(m < P && m != input.root);
  for (const ParticipantId h : input.helper_candidates) P2P_CHECK(h < P);
  for (const int b : input.degree_bounds) P2P_CHECK_MSG(b >= 0, "bad bound");

  MulticastTree tree(P);
  tree.SetRoot(input.root);

  // Tentative height/parent per participant id; only member entries used by
  // the main loop (helpers enter the tree exclusively via splicing).
  std::vector<double> height(P, kInf);
  std::vector<ParticipantId> tent_parent(P, kNoParticipant);
  std::vector<char> pending(P, 0);
  std::vector<char> helper_available(P, 0);
  for (const ParticipantId h : input.helper_candidates)
    helper_available[h] = 1;

  // Exact tree heights (recomputed incrementally as nodes are added).
  std::vector<double> tree_height(P, 0.0);

  for (const ParticipantId v : input.members) {
    pending[v] = 1;
    height[v] = latency(input.root, v);
    tent_parent[v] = input.root;
  }

  std::size_t remaining = input.members.size();
  std::size_t helpers_used = 0;

  auto relax_all_against = [&](ParticipantId w) {
    if (input.degree_bounds[w] - tree.Degree(w) <= 0) return;
    for (ParticipantId v = 0; v < P; ++v) {
      if (!pending[v]) continue;
      const double h = tree_height[w] + latency(w, v);
      if (h < height[v]) {
        height[v] = h;
        tent_parent[v] = w;
      }
    }
  };

  while (remaining > 0) {
    // find u ∈ V−W with minimum tentative height.
    ParticipantId u = kNoParticipant;
    for (ParticipantId v = 0; v < P; ++v) {
      if (pending[v] && (u == kNoParticipant || height[v] < height[u])) u = v;
    }
    P2P_CHECK(u != kNoParticipant);

    ParticipantId pu = tent_parent[u];
    // The tentative parent may have filled up since this entry was relaxed;
    // recompute the best feasible parent if so. (With all bounds ≥ 2 at
    // least one tree node always has free degree; bandwidth-capped bounds
    // can drop below 2 and genuinely exhaust the members.)
    if (input.degree_bounds[pu] - tree.Degree(pu) <= 0) {
      height[u] = kInf;
      tent_parent[u] = kNoParticipant;
      for (const ParticipantId w : tree.members()) {
        if (input.degree_bounds[w] - tree.Degree(w) <= 0) continue;
        const double h = tree_height[w] + latency(w, u);
        if (h < height[u]) {
          height[u] = h;
          tent_parent[u] = w;
        }
      }
      P2P_CHECK_MSG(tent_parent[u] != kNoParticipant,
                    "no feasible parent: degree bounds too tight");
      pu = tent_parent[u];
    }

    // Critical-node helper search: parent about to spend its last degree.
    bool spliced = false;
    if (options.selection != HelperSelection::kNone &&
        input.degree_bounds[pu] - tree.Degree(pu) == 1) {
      // Mirror Figure 6: trigger when d(parent(u)) == d_bound(parent(u))−1.
      ParticipantId h = kNoParticipant;
      {
        // find_helper(u): conditions 1–3 of §5.2. The v-set is u plus the
        // still-pending nodes whose tentative parent is parent(u) — the
        // nodes that "will potentially be h's future children".
        double best_score = kInf;
        std::vector<ParticipantId> vs{u};
        for (ParticipantId v = 0; v < P; ++v) {
          if (pending[v] && v != u && tent_parent[v] == pu) vs.push_back(v);
        }
        for (ParticipantId c = 0; c < P; ++c) {
          if (!helper_available[c]) continue;
          if (input.degree_bounds[c] < options.helper_min_degree) continue;
          const double to_parent = latency(c, pu);
          if (to_parent >= options.helper_radius) continue;
          double score = to_parent;
          if (options.selection == HelperSelection::kMinimaxHeuristic) {
            double worst = 0.0;
            for (const ParticipantId v : vs)
              worst = std::max(worst, latency(c, v));
            score += worst;
          }
          if (score < best_score) {
            best_score = score;
            h = c;
          }
        }
      }
      // Feasibility rescue: if attaching u directly would consume the
      // tree's LAST free slot while members remain pending, a helper is
      // mandatory — retry the search ignoring the radius (a tree-quality
      // heuristic, not a capacity rule) and preferring capacity gain.
      // This is what keeps sessions schedulable when bandwidth caps make
      // most members leaf-only.
      if (h == kNoParticipant && remaining > 1) {
        int total_free = 0;
        for (const ParticipantId w : tree.members())
          total_free += input.degree_bounds[w] - tree.Degree(w);
        if (total_free <= 1) {
          double best_score = kInf;
          for (ParticipantId c = 0; c < P; ++c) {
            if (!helper_available[c]) continue;
            if (input.degree_bounds[c] < 3) continue;  // must add capacity
            const double score = latency(c, pu) + latency(c, u);
            if (score < best_score) {
              best_score = score;
              h = c;
            }
          }
        }
      }
      if (h != kNoParticipant) {
        // Splice: h becomes the child of parent(u); u becomes h's child.
        tree.AddChild(pu, h);
        tree_height[h] = tree_height[pu] + latency(pu, h);
        tree.AddChild(h, u);
        tree_height[u] = tree_height[h] + latency(h, u);
        helper_available[h] = 0;
        ++helpers_used;
        spliced = true;
        pending[u] = 0;
        --remaining;
        relax_all_against(h);
        relax_all_against(pu);
        relax_all_against(u);
      }
    }

    if (!spliced) {
      tree.AddChild(pu, u);
      tree_height[u] = tree_height[pu] + latency(pu, u);
      pending[u] = 0;
      --remaining;
      relax_all_against(pu);
      relax_all_against(u);
    }

    // Figure 6 re-adjusts against ALL tree members each iteration; the
    // incremental relaxations above cover new/changed nodes, but a member
    // whose chosen parent just lost its last degree must fall back to the
    // next-best feasible option — handled lazily at pop time above.
  }

  AmcastResult result{std::move(tree), 0.0, helpers_used};
  result.height = result.tree.Height(latency);
  return result;
}

}  // namespace p2p::alm
