#include "alm/amcast.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace p2p::alm {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

void ValidateInput(const AmcastInput& input) {
  const std::size_t P = input.degree_bounds.size();
  P2P_CHECK_MSG(input.root < P, "root id out of range");
  for (const ParticipantId m : input.members) P2P_CHECK(m < P && m != input.root);
  for (const ParticipantId h : input.helper_candidates) P2P_CHECK(h < P);
  for (const int b : input.degree_bounds) P2P_CHECK_MSG(b >= 0, "bad bound");
}

}  // namespace

AmcastResult BuildAmcastTree(const AmcastInput& input,
                             const LatencyMatrix& latency,
                             const AmcastOptions& options) {
  ValidateInput(input);
  const std::size_t P = input.degree_bounds.size();

  MulticastTree tree(P);
  tree.SetRoot(input.root);

  // Tentative height/parent per participant id; only member entries used by
  // the main loop (helpers enter the tree exclusively via splicing).
  std::vector<double> height(P, kInf);
  std::vector<ParticipantId> tent_parent(P, kNoParticipant);
  std::vector<char> pending(P, 0);

  // Exact tree heights (recomputed incrementally as nodes are added).
  std::vector<double> tree_height(P, 0.0);

  // The still-pending members as a compact set (swap-erase removal), so
  // relaxation sweeps are O(|pending|) instead of O(P). pending_dense
  // mirrors pending_ids with each member's dense matrix index, letting the
  // sweeps index raw matrix rows directly.
  std::vector<ParticipantId> pending_ids;
  std::vector<std::uint32_t> pending_dense;
  std::vector<std::uint32_t> pending_pos(P, 0);

  // Lazy-deletion min-heap over (tentative height, id). Relaxations only
  // ever LOWER a member's tentative height, so an entry is current iff it
  // matches height[v] exactly; stale entries are skipped at pop time. Ties
  // break towards the smaller id — the same order the linear scan yields.
  struct HeapEntry {
    double h;
    ParticipantId v;
    bool operator>(const HeapEntry& o) const {
      if (h != o.h) return h > o.h;
      return v > o.v;
    }
  };
  std::vector<HeapEntry> heap;
  heap.reserve(input.members.size() * 2);
  const auto heap_push = [&heap](double h, ParticipantId v) {
    heap.push_back(HeapEntry{h, v});
    std::push_heap(heap.begin(), heap.end(), std::greater<>{});
  };

  // Available helper candidates, ascending (the reference scans ids in
  // increasing order, so score ties resolve to the smallest id).
  std::vector<ParticipantId> helpers = input.helper_candidates;
  std::sort(helpers.begin(), helpers.end());
  helpers.erase(std::unique(helpers.begin(), helpers.end()), helpers.end());

  // Tree degrees mirrored in a flat array: the fallback scan reads a
  // degree per tree member per pop, and tree.Degree() pays a containment
  // check plus a children-vector header load each call.
  std::vector<int> degree(P, 0);
  const auto free_deg = [&](ParticipantId v) {
    return input.degree_bounds[v] - degree[v];
  };

  // Total free degree across tree members, maintained incrementally: the
  // feasibility rescue consults it on every critical-node event.
  int total_free = input.degree_bounds[input.root];
  const auto attach = [&](ParticipantId parent, ParticipantId v) {
    tree.AddChild(parent, v);
    ++degree[parent];
    ++degree[v];  // v enters with its parent link as the sole edge
    tree_height[v] = tree_height[parent] + latency(parent, v);
    total_free += input.degree_bounds[v] - 2;  // v joins at degree 1; parent +1
  };

  const double* root_row = latency.CoreRow(input.root);
  for (const ParticipantId v : input.members) {
    pending_pos[v] = static_cast<std::uint32_t>(pending_ids.size());
    pending_ids.push_back(v);
    pending_dense.push_back(latency.DenseIndex(v));
    pending[v] = 1;
    height[v] = root_row[pending_dense.back()];
    tent_parent[v] = input.root;
    heap_push(height[v], v);
  }

  std::size_t remaining = input.members.size();
  std::size_t helpers_used = 0;

  const auto drop_pending = [&](ParticipantId v) {
    const std::uint32_t pos = pending_pos[v];
    pending_ids[pos] = pending_ids.back();
    pending_dense[pos] = pending_dense.back();
    pending_pos[pending_ids[pos]] = pos;
    pending_ids.pop_back();
    pending_dense.pop_back();
    pending[v] = 0;
  };

  const auto relax_all_against = [&](ParticipantId w) {
    if (free_deg(w) <= 0) return;
    const double base = tree_height[w];
    // Pending members are all core ids, so w's row (core or satellite —
    // satellite rows hold their core-facing latencies) serves every query.
    const double* row = latency.CoreRow(w);
    for (std::size_t i = 0; i < pending_ids.size(); ++i) {
      const double h = base + row[pending_dense[i]];
      const ParticipantId v = pending_ids[i];
      if (h < height[v]) {
        height[v] = h;
        tent_parent[v] = w;
        heap_push(h, v);
      }
    }
  };

  while (remaining > 0) {
    // Pop u ∈ V−W with minimum tentative height, skipping stale entries.
    ParticipantId u = kNoParticipant;
    for (;;) {
      P2P_CHECK_MSG(!heap.empty(), "min-heap drained with members pending");
      std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
      const HeapEntry top = heap.back();
      heap.pop_back();
      if (pending[top.v] && top.h == height[top.v]) {
        u = top.v;
        break;
      }
    }

    ParticipantId pu = tent_parent[u];
    // The tentative parent may have filled up since this entry was relaxed;
    // recompute the best feasible parent if so. (With all bounds ≥ 2 at
    // least one tree node always has free degree; bandwidth-capped bounds
    // can drop below 2 and genuinely exhaust the members.)
    if (free_deg(pu) <= 0) {
      height[u] = kInf;
      tent_parent[u] = kNoParticipant;
      // In a metric space relaxation rarely beats the root star, so once
      // the root fills this recompute runs for nearly every pop — it is
      // the real inner loop at scale. Scanning column u of the matrix
      // (CoreRow(w)[u]) would miss the cache on every read; by symmetry
      // row u holds the same values and stays resident across the scan.
      const double* urow = latency.CoreRow(u);
      const std::uint32_t core_n =
          static_cast<std::uint32_t>(latency.core_size());
      for (const ParticipantId w : tree.members()) {
        if (free_deg(w) <= 0) continue;
        const std::uint32_t dw = latency.DenseIndex(w);
        const double l = dw < core_n ? urow[dw] : latency(w, u);
        const double h = tree_height[w] + l;
        if (h < height[u]) {
          height[u] = h;
          tent_parent[u] = w;
        }
      }
      P2P_CHECK_MSG(tent_parent[u] != kNoParticipant,
                    "no feasible parent: degree bounds too tight");
      pu = tent_parent[u];
    }

    // Critical-node helper search: parent about to spend its last degree.
    bool spliced = false;
    if (options.selection != HelperSelection::kNone && free_deg(pu) == 1) {
      // Mirror Figure 6: trigger when d(parent(u)) == d_bound(parent(u))−1.
      ParticipantId h = kNoParticipant;
      {
        // find_helper(u): conditions 1–3 of §5.2. The v-set is u plus the
        // still-pending nodes whose tentative parent is parent(u) — the
        // nodes that "will potentially be h's future children".
        double best_score = kInf;
        // vs as dense matrix indices: every candidate's row is scanned
        // against them, so resolve the remap once.
        std::vector<std::uint32_t> vs{latency.DenseIndex(u)};
        for (std::size_t i = 0; i < pending_ids.size(); ++i) {
          if (pending_ids[i] != u && tent_parent[pending_ids[i]] == pu)
            vs.push_back(pending_dense[i]);
        }
        for (const ParticipantId c : helpers) {
          if (input.degree_bounds[c] < options.helper_min_degree) continue;
          // pu may itself be a spliced helper (satellite tier), so this
          // query stays on the fallback-aware operator().
          const double to_parent = latency(c, pu);
          if (to_parent >= options.helper_radius) continue;
          double score = to_parent;
          if (options.selection == HelperSelection::kMinimaxHeuristic) {
            const double* crow = latency.CoreRow(c);
            double worst = 0.0;
            for (const std::uint32_t v : vs)
              worst = std::max(worst, crow[v]);
            score += worst;
          }
          if (score < best_score) {
            best_score = score;
            h = c;
          }
        }
      }
      // Feasibility rescue: if attaching u directly would consume the
      // tree's LAST free slot while members remain pending, a helper is
      // mandatory — retry the search ignoring the radius (a tree-quality
      // heuristic, not a capacity rule) and preferring capacity gain.
      // This is what keeps sessions schedulable when bandwidth caps make
      // most members leaf-only.
      if (h == kNoParticipant && remaining > 1 && total_free <= 1) {
        double best_score = kInf;
        for (const ParticipantId c : helpers) {
          if (input.degree_bounds[c] < 3) continue;  // must add capacity
          const double score = latency(c, pu) + latency(c, u);
          if (score < best_score) {
            best_score = score;
            h = c;
          }
        }
      }
      if (h != kNoParticipant) {
        // Splice: h becomes the child of parent(u); u becomes h's child.
        attach(pu, h);
        attach(h, u);
        helpers.erase(std::lower_bound(helpers.begin(), helpers.end(), h));
        ++helpers_used;
        spliced = true;
        drop_pending(u);
        --remaining;
        relax_all_against(h);
        relax_all_against(pu);
        relax_all_against(u);
      }
    }

    if (!spliced) {
      attach(pu, u);
      drop_pending(u);
      --remaining;
      relax_all_against(pu);
      relax_all_against(u);
    }

    // Figure 6 re-adjusts against ALL tree members each iteration; the
    // incremental relaxations above cover new/changed nodes, but a member
    // whose chosen parent just lost its last degree must fall back to the
    // next-best feasible option — handled lazily at pop time above.
  }

  AmcastResult result{std::move(tree), 0.0, helpers_used};
  result.height = result.tree.Height(latency);
  return result;
}

AmcastResult BuildAmcastTree(const AmcastInput& input,
                             const LatencyFn& latency,
                             const AmcastOptions& options) {
  ValidateInput(input);
  // Root and members form the matrix core; helper candidates ride along as
  // satellites (and stay out entirely when helper selection is off).
  std::vector<ParticipantId> core;
  core.reserve(1 + input.members.size());
  core.push_back(input.root);
  core.insert(core.end(), input.members.begin(), input.members.end());
  const LatencyMatrix matrix(
      input.degree_bounds.size(), core,
      options.selection != HelperSelection::kNone ? input.helper_candidates
                                                  : std::vector<ParticipantId>{},
      latency);
  return BuildAmcastTree(input, matrix, options);
}

AmcastResult BuildAmcastTreeReference(const AmcastInput& input,
                                      const LatencyFn& latency,
                                      const AmcastOptions& options) {
  ValidateInput(input);
  const std::size_t P = input.degree_bounds.size();

  MulticastTree tree(P);
  tree.SetRoot(input.root);

  // Tentative height/parent per participant id; only member entries used by
  // the main loop (helpers enter the tree exclusively via splicing).
  std::vector<double> height(P, kInf);
  std::vector<ParticipantId> tent_parent(P, kNoParticipant);
  std::vector<char> pending(P, 0);
  std::vector<char> helper_available(P, 0);
  for (const ParticipantId h : input.helper_candidates)
    helper_available[h] = 1;

  // Exact tree heights (recomputed incrementally as nodes are added).
  std::vector<double> tree_height(P, 0.0);

  for (const ParticipantId v : input.members) {
    pending[v] = 1;
    height[v] = latency(input.root, v);
    tent_parent[v] = input.root;
  }

  std::size_t remaining = input.members.size();
  std::size_t helpers_used = 0;

  auto relax_all_against = [&](ParticipantId w) {
    if (input.degree_bounds[w] - tree.Degree(w) <= 0) return;
    for (ParticipantId v = 0; v < P; ++v) {
      if (!pending[v]) continue;
      const double h = tree_height[w] + latency(w, v);
      if (h < height[v]) {
        height[v] = h;
        tent_parent[v] = w;
      }
    }
  };

  while (remaining > 0) {
    // find u ∈ V−W with minimum tentative height.
    ParticipantId u = kNoParticipant;
    for (ParticipantId v = 0; v < P; ++v) {
      if (pending[v] && (u == kNoParticipant || height[v] < height[u])) u = v;
    }
    P2P_CHECK(u != kNoParticipant);

    ParticipantId pu = tent_parent[u];
    // The tentative parent may have filled up since this entry was relaxed;
    // recompute the best feasible parent if so.
    if (input.degree_bounds[pu] - tree.Degree(pu) <= 0) {
      height[u] = kInf;
      tent_parent[u] = kNoParticipant;
      for (const ParticipantId w : tree.members()) {
        if (input.degree_bounds[w] - tree.Degree(w) <= 0) continue;
        const double h = tree_height[w] + latency(w, u);
        if (h < height[u]) {
          height[u] = h;
          tent_parent[u] = w;
        }
      }
      P2P_CHECK_MSG(tent_parent[u] != kNoParticipant,
                    "no feasible parent: degree bounds too tight");
      pu = tent_parent[u];
    }

    // Critical-node helper search: parent about to spend its last degree.
    bool spliced = false;
    if (options.selection != HelperSelection::kNone &&
        input.degree_bounds[pu] - tree.Degree(pu) == 1) {
      ParticipantId h = kNoParticipant;
      {
        double best_score = kInf;
        std::vector<ParticipantId> vs{u};
        for (ParticipantId v = 0; v < P; ++v) {
          if (pending[v] && v != u && tent_parent[v] == pu) vs.push_back(v);
        }
        for (ParticipantId c = 0; c < P; ++c) {
          if (!helper_available[c]) continue;
          if (input.degree_bounds[c] < options.helper_min_degree) continue;
          const double to_parent = latency(c, pu);
          if (to_parent >= options.helper_radius) continue;
          double score = to_parent;
          if (options.selection == HelperSelection::kMinimaxHeuristic) {
            double worst = 0.0;
            for (const ParticipantId v : vs)
              worst = std::max(worst, latency(c, v));
            score += worst;
          }
          if (score < best_score) {
            best_score = score;
            h = c;
          }
        }
      }
      if (h == kNoParticipant && remaining > 1) {
        int total_free = 0;
        for (const ParticipantId w : tree.members())
          total_free += input.degree_bounds[w] - tree.Degree(w);
        if (total_free <= 1) {
          double best_score = kInf;
          for (ParticipantId c = 0; c < P; ++c) {
            if (!helper_available[c]) continue;
            if (input.degree_bounds[c] < 3) continue;  // must add capacity
            const double score = latency(c, pu) + latency(c, u);
            if (score < best_score) {
              best_score = score;
              h = c;
            }
          }
        }
      }
      if (h != kNoParticipant) {
        // Splice: h becomes the child of parent(u); u becomes h's child.
        tree.AddChild(pu, h);
        tree_height[h] = tree_height[pu] + latency(pu, h);
        tree.AddChild(h, u);
        tree_height[u] = tree_height[h] + latency(h, u);
        helper_available[h] = 0;
        ++helpers_used;
        spliced = true;
        pending[u] = 0;
        --remaining;
        relax_all_against(h);
        relax_all_against(pu);
        relax_all_against(u);
      }
    }

    if (!spliced) {
      tree.AddChild(pu, u);
      tree_height[u] = tree_height[pu] + latency(pu, u);
      pending[u] = 0;
      --remaining;
      relax_all_against(pu);
      relax_all_against(u);
    }
  }

  AmcastResult result{std::move(tree), 0.0, helpers_used};
  result.height = result.tree.Height(latency);
  return result;
}

}  // namespace p2p::alm
