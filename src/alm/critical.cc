#include "alm/critical.h"

#include <vector>

#include "obs/scope_timer.h"
#include "util/check.h"

namespace p2p::alm {

std::string StrategyName(Strategy s) {
  switch (s) {
    case Strategy::kAmcast: return "AMCast";
    case Strategy::kAmcastAdjust: return "AMCast+adj";
    case Strategy::kCritical: return "Critical";
    case Strategy::kCriticalAdjust: return "Critical+adj";
    case Strategy::kLeafset: return "Leafset";
    case Strategy::kLeafsetAdjust: return "Leafset+adj";
  }
  return "?";
}

bool StrategyUsesHelpers(Strategy s) {
  return s != Strategy::kAmcast && s != Strategy::kAmcastAdjust;
}

bool StrategyUsesAdjust(Strategy s) {
  return s == Strategy::kAmcastAdjust || s == Strategy::kCriticalAdjust ||
         s == Strategy::kLeafsetAdjust;
}

bool StrategyUsesEstimates(Strategy s) {
  return s == Strategy::kLeafset || s == Strategy::kLeafsetAdjust;
}

PlanResult PlanSession(const PlanInput& input, Strategy strategy) {
  obs::ScopeTimer plan_timer(
      input.metrics != nullptr ? &input.metrics->profile("alm.plan_ms")
                               : nullptr);
  P2P_CHECK_MSG(input.true_latency != nullptr || input.oracle != nullptr,
                "PlanSession needs a true latency fn or an oracle");
  P2P_CHECK_MSG(!StrategyUsesEstimates(strategy) ||
                    input.estimated_latency != nullptr,
                "Leafset strategies need an estimated latency");
  const net::LatencyOracle* oracle = input.oracle;
  LatencyFn truth = input.true_latency;
  if (truth == nullptr) {
    truth = [oracle](ParticipantId a, ParticipantId b) {
      return oracle->Latency(a, b);
    };
  }

  // Planning latency: true for oracle strategies; hybrid for Leafset.
  LatencyFn planning = truth;
  if (StrategyUsesEstimates(strategy)) {
    std::vector<char> is_member(input.degree_bounds.size(), 0);
    is_member[input.root] = 1;
    for (const ParticipantId m : input.members) is_member[m] = 1;
    planning = [is_member = std::move(is_member), truth,
                est = input.estimated_latency](ParticipantId a,
                                               ParticipantId b) {
      return (is_member[a] && is_member[b]) ? truth(a, b) : est(a, b);
    };
  }

  AmcastInput ain;
  ain.degree_bounds = input.degree_bounds;
  ain.root = input.root;
  ain.members = input.members;
  if (StrategyUsesHelpers(strategy))
    ain.helper_candidates = input.helper_candidates;

  AmcastOptions aopt = input.amcast;
  aopt.selection = StrategyUsesHelpers(strategy)
                       ? (input.amcast.selection == HelperSelection::kNone
                              ? HelperSelection::kMinimaxHeuristic
                              : input.amcast.selection)
                       : HelperSelection::kNone;

  // One planning matrix per session: every latency the build (and the
  // final planning-height evaluation) reads becomes a flat array load
  // instead of a std::function dispatch. Root and members are the core;
  // helper candidates are satellites (their pairwise block is never read).
  std::vector<ParticipantId> core_ids;
  core_ids.reserve(1 + ain.members.size());
  core_ids.push_back(ain.root);
  core_ids.insert(core_ids.end(), ain.members.begin(), ain.members.end());
  // An oracle without estimate-based planning means every planning latency
  // is a truth query: fill the matrix with direct oracle calls instead of
  // going through the std::function per pair.
  const bool oracle_direct =
      oracle != nullptr && input.true_latency == nullptr &&
      !StrategyUsesEstimates(strategy);
  const std::vector<ParticipantId> satellite_ids =
      aopt.selection != HelperSelection::kNone ? ain.helper_candidates
                                               : std::vector<ParticipantId>{};
  const LatencyMatrix planning_matrix =
      oracle_direct ? LatencyMatrix(input.degree_bounds.size(), core_ids,
                                    satellite_ids, *oracle)
                    : LatencyMatrix(input.degree_bounds.size(), core_ids,
                                    satellite_ids, planning);

  AmcastResult built = BuildAmcastTree(ain, planning_matrix, aopt);

  PlanResult result{std::move(built.tree), 0.0, 0.0, built.helpers_used, {}};
  if (StrategyUsesAdjust(strategy)) {
    // Adjustment always runs on TRUE latencies: by this point every tree
    // node — helpers included — has been contacted to reserve its degree,
    // so the session can measure the actual delays among its (small) tree
    // membership. This is why the paper finds adjustment "remarkably
    // effective especially for Leafset": it repairs the damage done by
    // coordinate-estimate errors during helper selection.
    const LatencyMatrix true_matrix =
        oracle != nullptr && input.true_latency == nullptr
            ? LatencyMatrix(input.degree_bounds.size(), result.tree.members(),
                            *oracle)
            : LatencyMatrix(input.degree_bounds.size(), result.tree.members(),
                            truth);
    result.adjust_stats = AdjustTree(result.tree, input.degree_bounds,
                                     true_matrix, input.adjust);
    result.height_true = result.tree.Height(true_matrix);
  } else {
    // One O(members) evaluation pass; not worth a pairwise matrix fill.
    result.height_true = result.tree.Height(truth);
  }
  result.height_planning = result.tree.Height(planning_matrix);
  if (input.metrics != nullptr) {
    input.metrics->counter("alm.sessions.planned").Inc();
    if (StrategyUsesAdjust(strategy))
      input.metrics->counter("alm.sessions.adjusted").Inc();
    input.metrics->histogram("alm.plan.height_ms").Add(result.height_true);
    input.metrics->histogram("alm.plan.helpers")
        .Add(static_cast<double>(result.helpers_used));
  }
  return result;
}

}  // namespace p2p::alm
