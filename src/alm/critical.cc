#include "alm/critical.h"

namespace p2p::alm {

PlanResult PlanSession(const PlanInput& input, Strategy strategy) {
  TreePlanner planner(OptionsForStrategy(strategy));
  return planner.Plan(input);
}

}  // namespace p2p::alm
