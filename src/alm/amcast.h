// The AMCast greedy DB-MHT heuristic (paper §5.2, Figure 6) and the
// critical-node helper extension (the dashed box).
//
// AMCast grows the tree from the root: each step absorbs the pending node
// of minimum tentative height, then relaxes the remaining nodes' tentative
// (height, parent) against every tree member with free degree — O(N³)
// overall.
//
// The critical-node extension fires when the chosen node's parent is about
// to spend its last free degree: the builder searches the resource pool for
// a helper h to splice between them, so the parent's fan-out effectively
// grows. Selection criteria (paper §5.2):
//   minimise l(h, parent(u)) + max_v l(h, v)       (condition 1)
//   over v with parent(v) == parent(u),
//   subject to d_bound(h) ≥ helper_min_degree      (condition 2)
//   and l(h, parent(u)) < helper_radius R          (condition 3).
// The simpler "nearest to parent" rule is kept as an ablation option.
#pragma once

#include <cstddef>
#include <vector>

#include "alm/latency_matrix.h"
#include "alm/tree.h"

namespace p2p::alm {

enum class HelperSelection {
  kNone,             // plain AMCast
  kNearestToParent,  // first variation in §5.2
  kMinimaxHeuristic, // conditions 1–3 (the paper's preferred rule)
};

struct AmcastOptions {
  HelperSelection selection = HelperSelection::kNone;
  double helper_radius = 100.0;   // R; paper: 50–150 works well
  int helper_min_degree = 4;      // condition 2 ("we use 4")
};

struct AmcastInput {
  // Degree bound per participant id; ids ≥ degree_bounds.size() invalid.
  std::vector<int> degree_bounds;
  ParticipantId root = kNoParticipant;
  // Session members M(s), excluding the root.
  std::vector<ParticipantId> members;
  // Helper candidates H from the resource pool (disjoint from members and
  // root); only consulted when options.selection != kNone.
  std::vector<ParticipantId> helper_candidates;
};

struct AmcastResult {
  MulticastTree tree;
  double height = 0.0;           // under the planning latency
  std::size_t helpers_used = 0;  // helper nodes spliced into the tree
};

// Build a DB-MHT tree. `latency` is the planning latency (oracle for
// "Critical", coordinate estimate for "Leafset"); callers evaluate the
// resulting tree under the true latency separately.
//
// The LatencyMatrix overload is the fast path: an indexed lazy-deletion
// min-heap replaces the per-iteration linear min-scan, relaxation sweeps
// touch only the still-pending members, and every latency read is a flat
// array load. The matrix must cover the root, all members, and (when
// options.selection != kNone) all helper candidates. The LatencyFn
// overload builds that matrix internally and delegates, so existing
// callers and tests are unaffected. Both produce trees identical to
// BuildAmcastTreeReference (same pop order, same tie-breaks).
AmcastResult BuildAmcastTree(const AmcastInput& input,
                             const LatencyFn& latency,
                             const AmcastOptions& options = {});
AmcastResult BuildAmcastTree(const AmcastInput& input,
                             const LatencyMatrix& latency,
                             const AmcastOptions& options = {});

// The original O(P) linear-scan implementation, retained verbatim as the
// behavioural reference: the randomized equivalence test and the
// bench-regression harness compare the heap-based fast path against it.
// Do not optimise this function.
AmcastResult BuildAmcastTreeReference(const AmcastInput& input,
                                      const LatencyFn& latency,
                                      const AmcastOptions& options = {});

}  // namespace p2p::alm
