#include "alm/metrics.h"

#include <algorithm>
#include <sstream>

#include "util/check.h"
#include "util/stats.h"

namespace p2p::alm {

TreeMetrics ComputeTreeMetrics(const MulticastTree& tree,
                               const LatencyFn& latency,
                               const BandwidthFn& bandwidth) {
  P2P_CHECK(latency != nullptr);
  TreeMetrics m;
  const auto heights = tree.ComputeHeights(latency);

  util::Accumulator height_acc;
  double bottleneck = std::numeric_limits<double>::infinity();
  bool any_edge = false;

  // BFS for hop depth.
  std::vector<std::pair<ParticipantId, std::size_t>> queue{
      {tree.root(), 0}};
  std::size_t head = 0;
  while (head < queue.size()) {
    const auto [v, hops] = queue[head++];
    m.depth_hops = std::max(m.depth_hops, hops);
    m.max_fanout = std::max(m.max_fanout, tree.children(v).size());
    for (const ParticipantId c : tree.children(v)) {
      const double l = latency(v, c);
      m.total_edge_ms += l;
      m.max_link_ms = std::max(m.max_link_ms, l);
      any_edge = true;
      if (bandwidth != nullptr)
        bottleneck = std::min(bottleneck, bandwidth(v, c));
      queue.push_back({c, hops + 1});
    }
    if (v != tree.root()) {
      height_acc.Add(heights[v]);
      m.max_height_ms = std::max(m.max_height_ms, heights[v]);
    }
  }
  m.mean_height_ms = height_acc.mean();
  m.height_stddev_ms = height_acc.stddev();
  m.bottleneck_kbps =
      (bandwidth != nullptr && any_edge) ? bottleneck : 0.0;
  return m;
}

std::string TreeToDot(const MulticastTree& tree, const LatencyFn& latency,
                      const std::vector<char>& is_helper) {
  P2P_CHECK(latency != nullptr);
  std::ostringstream os;
  os << "digraph alm_tree {\n  rankdir=TB;\n";
  for (const ParticipantId v : tree.members()) {
    const bool helper = v < is_helper.size() && is_helper[v];
    os << "  n" << v << " [label=\"" << v << "\", shape="
       << (helper ? "box" : (v == tree.root() ? "doublecircle" : "circle"))
       << "];\n";
  }
  for (const ParticipantId v : tree.members()) {
    for (const ParticipantId c : tree.children(v)) {
      os << "  n" << v << " -> n" << c << " [label=\""
         << static_cast<long long>(latency(v, c) + 0.5) << "\"];\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace p2p::alm
