#include "alm/adjust.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace p2p::alm {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// The member attaining the maximum height (always a leaf: heights strictly
// increase down any path because latencies are positive).
ParticipantId HighestNode(const MulticastTree& tree,
                          const std::vector<double>& heights) {
  ParticipantId best = kNoParticipant;
  for (const ParticipantId v : tree.members()) {
    if (best == kNoParticipant || heights[v] > heights[best]) best = v;
  }
  return best;
}

}  // namespace

AdjustStats AdjustTree(MulticastTree& tree,
                       const std::vector<int>& degree_bounds,
                       const LatencyFn& latency,
                       const AdjustOptions& options) {
  AdjustStats stats;
  auto heights = tree.ComputeHeights(latency);
  stats.initial_height = tree.Height(latency);

  auto free_degree = [&](ParticipantId v) {
    return degree_bounds[v] - tree.Degree(v);
  };

  for (std::size_t move = 0; move < options.max_moves; ++move) {
    heights = tree.ComputeHeights(latency);
    const ParticipantId x = HighestNode(tree, heights);
    if (x == kNoParticipant || x == tree.root()) break;
    const double current = heights[x];

    // ---- move (a): reparent the highest node ---------------------------
    ParticipantId best_parent = kNoParticipant;
    double best_a = current;
    if (options.enable_reparent) {
      for (const ParticipantId w : tree.members()) {
        if (w == x || w == tree.parent(x)) continue;
        if (tree.InSubtree(w, x)) continue;  // would create a cycle
        if (free_degree(w) <= 0) continue;
        const double h = heights[w] + latency(w, x);
        if (h < best_a) {
          best_a = h;
          best_parent = w;
        }
      }
    }

    // ---- move (b): swap the highest leaf with another leaf -------------
    // (x is a leaf; swapping exchanges the two hosts' positions.)
    ParticipantId best_leaf = kNoParticipant;
    double best_b = current;
    if (options.enable_leaf_swap && tree.IsLeaf(x)) {
      for (const ParticipantId y : tree.members()) {
        if (y == x || y == tree.root() || !tree.IsLeaf(y)) continue;
        if (tree.parent(y) == x || tree.parent(x) == y) continue;
        // After the swap x hangs under parent(y) and y under parent(x).
        const ParticipantId px = tree.parent(x);
        const ParticipantId py = tree.parent(y);
        const double hx = heights[py] + latency(py, x);
        const double hy = heights[px] + latency(px, y);
        // Both new heights must beat the current max for a net win.
        const double worst = std::max(hx, hy);
        if (worst < best_b) {
          best_b = worst;
          best_leaf = y;
        }
      }
    }

    // ---- move (c): swap the subtree rooted at parent(x) ----------------
    ParticipantId best_subtree = kNoParticipant;
    double best_c = current;
    const ParticipantId px =
        tree.parent(x) == kNoParticipant ? kNoParticipant : tree.parent(x);
    if (options.enable_subtree_swap && px != kNoParticipant &&
        px != tree.root()) {
      for (const ParticipantId q : tree.members()) {
        if (q == px || q == x || q == tree.root()) continue;
        if (tree.InSubtree(q, px) || tree.InSubtree(px, q)) continue;
        if (tree.parent(q) == px || tree.parent(px) == q) continue;
        // Heights inside both subtrees shift by the change in their roots'
        // heights; evaluating the true new max needs a full recompute, so
        // estimate with the shifted subtree maxima.
        const ParticipantId pp = tree.parent(px);
        const ParticipantId pq = tree.parent(q);
        const double new_hpx = heights[pq] + latency(pq, px);
        const double new_hq = heights[pp] + latency(pp, q);
        const double delta_px = new_hpx - heights[px];
        const double delta_q = new_hq - heights[q];
        double max_px_sub = 0.0;
        double max_q_sub = 0.0;
        for (const ParticipantId v : tree.members()) {
          if (tree.InSubtree(v, px)) max_px_sub = std::max(max_px_sub, heights[v]);
          if (tree.InSubtree(v, q)) max_q_sub = std::max(max_q_sub, heights[v]);
        }
        const double worst =
            std::max(max_px_sub + delta_px, max_q_sub + delta_q);
        if (worst < best_c) {
          best_c = worst;
          best_subtree = q;
        }
      }
    }

    // ---- apply the best of the three ------------------------------------
    const double best = std::min({best_a, best_b, best_c});
    if (best >= current) break;  // local optimum
    if (best == best_a && best_parent != kNoParticipant) {
      tree.Reparent(x, best_parent);
      ++stats.reparent_moves;
    } else if (best == best_b && best_leaf != kNoParticipant) {
      tree.SwapPositions(x, best_leaf);
      ++stats.leaf_swaps;
    } else if (best_subtree != kNoParticipant) {
      tree.SwapSubtrees(px, best_subtree);
      ++stats.subtree_swaps;
    } else {
      break;
    }
    // Degree bounds are preserved by construction: (a) checks free degree,
    // (b)/(c) exchange positions without changing any node's used degree.
    // Verify cheaply in debug builds.
#ifndef NDEBUG
    tree.Validate(degree_bounds);
#endif
    // Ties elsewhere in the tree can absorb the local gain; require strict
    // global progress to guarantee termination before max_moves.
    if (tree.Height(latency) >= current - 1e-12) break;
  }

  stats.final_height = tree.Height(latency);
  P2P_CHECK(stats.final_height <= stats.initial_height + 1e-9);
  return stats;
}

}  // namespace p2p::alm
