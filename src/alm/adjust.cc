#include "alm/adjust.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace p2p::alm {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// The member attaining the maximum height (always a leaf: heights strictly
// increase down any path because latencies are positive).
ParticipantId HighestNode(const MulticastTree& tree,
                          const std::vector<double>& heights) {
  ParticipantId best = kNoParticipant;
  for (const ParticipantId v : tree.members()) {
    if (best == kNoParticipant || heights[v] > heights[best]) best = v;
  }
  return best;
}

}  // namespace

AdjustStats AdjustTree(MulticastTree& tree,
                       const std::vector<int>& degree_bounds,
                       const LatencyMatrix& latency,
                       const AdjustOptions& options) {
  AdjustStats stats;
  // Heights are computed in full once, then maintained move by move:
  // a move only dislodges the subtrees whose parent edges it rewired, and
  // every other member keeps its root-path prefix sum bit-for-bit.
  std::vector<double> heights = tree.ComputeHeights(latency);

  const auto max_height = [&] {
    double best = 0.0;
    for (const ParticipantId v : tree.members())
      best = std::max(best, heights[v]);
    return best;
  };

  // Re-derive heights below (and including) `sub` from its parent's height.
  std::vector<ParticipantId> bfs;
  const auto recompute_subtree = [&](ParticipantId sub) {
    bfs.assign(1, sub);
    heights[sub] = heights[tree.parent(sub)] + latency(tree.parent(sub), sub);
    std::size_t head = 0;
    while (head < bfs.size()) {
      const ParticipantId v = bfs[head++];
      for (const ParticipantId c : tree.children(v)) {
        heights[c] = heights[v] + latency(v, c);
        bfs.push_back(c);
      }
    }
  };

  stats.initial_height = max_height();

  auto free_degree = [&](ParticipantId v) {
    return degree_bounds[v] - tree.Degree(v);
  };

  // Scratch for the per-move candidate scans. The old implementation
  // answered "is w inside x's (or px's) subtree?" with an InSubtree root
  // walk per candidate — O(n·depth) per move — and recomputed the two
  // subtree maxima from scratch for every candidate q. One BFS per move
  // marks the subtree and collects its max; one reverse-BFS aggregates
  // max-subtree-height for ALL nodes at once.
  const std::size_t space = tree.participant_space();
  std::vector<char> is_member(space, 0);
  for (const ParticipantId v : tree.members()) is_member[v] = 1;
  std::vector<char> in_sub_x(space, 0);
  std::vector<char> in_sub_px(space, 0);
  std::vector<char> anc_px(space, 0);
  std::vector<double> max_sub(space, 0.0);
  std::vector<ParticipantId> scratch, order, marked_x, marked_px, marked_anc;

  // Mark `sub`'s subtree in `mark`, remember what was marked in `log`, and
  // return the max MEMBER height inside the subtree (helpers relay, they
  // are not delivery targets — matches the candidate scans below).
  const auto mark_subtree = [&](ParticipantId sub, std::vector<char>& mark,
                                std::vector<ParticipantId>& log) {
    scratch.assign(1, sub);
    log.clear();
    double max_h = 0.0;
    std::size_t head = 0;
    while (head < scratch.size()) {
      const ParticipantId v = scratch[head++];
      mark[v] = 1;
      log.push_back(v);
      if (is_member[v]) max_h = std::max(max_h, heights[v]);
      for (const ParticipantId c : tree.children(v)) scratch.push_back(c);
    }
    return max_h;
  };
  const auto unmark = [](std::vector<char>& mark,
                         std::vector<ParticipantId>& log) {
    for (const ParticipantId v : log) mark[v] = 0;
  };

  for (std::size_t move = 0; move < options.max_moves; ++move) {
    const ParticipantId x = HighestNode(tree, heights);
    if (x == kNoParticipant || x == tree.root()) break;
    const double current = heights[x];

    // ---- move (a): reparent the highest node ---------------------------
    ParticipantId best_parent = kNoParticipant;
    double best_a = current;
    if (options.enable_reparent) {
      mark_subtree(x, in_sub_x, marked_x);
      for (const ParticipantId w : tree.members()) {
        if (w == x || w == tree.parent(x)) continue;
        if (in_sub_x[w]) continue;  // would create a cycle
        if (free_degree(w) <= 0) continue;
        const double h = heights[w] + latency(w, x);
        if (h < best_a) {
          best_a = h;
          best_parent = w;
        }
      }
      unmark(in_sub_x, marked_x);
    }

    // ---- move (b): swap the highest leaf with another leaf -------------
    // (x is a leaf; swapping exchanges the two hosts' positions.)
    ParticipantId best_leaf = kNoParticipant;
    double best_b = current;
    if (options.enable_leaf_swap && tree.IsLeaf(x)) {
      for (const ParticipantId y : tree.members()) {
        if (y == x || y == tree.root() || !tree.IsLeaf(y)) continue;
        if (tree.parent(y) == x || tree.parent(x) == y) continue;
        // After the swap x hangs under parent(y) and y under parent(x).
        const ParticipantId px = tree.parent(x);
        const ParticipantId py = tree.parent(y);
        const double hx = heights[py] + latency(py, x);
        const double hy = heights[px] + latency(px, y);
        // Both new heights must beat the current max for a net win.
        const double worst = std::max(hx, hy);
        if (worst < best_b) {
          best_b = worst;
          best_leaf = y;
        }
      }
    }

    // ---- move (c): swap the subtree rooted at parent(x) ----------------
    ParticipantId best_subtree = kNoParticipant;
    double best_c = current;
    const ParticipantId px =
        tree.parent(x) == kNoParticipant ? kNoParticipant : tree.parent(x);
    if (options.enable_subtree_swap && px != kNoParticipant &&
        px != tree.root()) {
      // The subtree maximum under px is candidate-invariant: hoist it. The
      // per-candidate maxima come from one reverse-BFS aggregation pass
      // (max_sub[v] = max member height in v's subtree), and the two
      // containment tests become flag lookups: q inside px's subtree is
      // in_sub_px[q]; px inside q's subtree means q is an ancestor of px.
      const double max_px_sub = mark_subtree(px, in_sub_px, marked_px);
      marked_anc.clear();
      for (ParticipantId a = px; a != kNoParticipant; a = tree.parent(a)) {
        anc_px[a] = 1;
        marked_anc.push_back(a);
      }
      order.assign(1, tree.root());
      for (std::size_t head = 0; head < order.size(); ++head) {
        const ParticipantId v = order[head];
        max_sub[v] = is_member[v] ? heights[v] : 0.0;
        for (const ParticipantId c : tree.children(v)) order.push_back(c);
      }
      for (std::size_t i = order.size(); i-- > 1;) {
        const ParticipantId v = order[i];
        max_sub[tree.parent(v)] = std::max(max_sub[tree.parent(v)], max_sub[v]);
      }
      const ParticipantId pp = tree.parent(px);
      for (const ParticipantId q : tree.members()) {
        if (q == px || q == x || q == tree.root()) continue;
        if (in_sub_px[q] || anc_px[q]) continue;
        if (tree.parent(q) == px || pp == q) continue;
        // Heights inside both subtrees shift by the change in their roots'
        // heights; evaluating the true new max needs a full recompute, so
        // estimate with the shifted subtree maxima.
        const ParticipantId pq = tree.parent(q);
        const double new_hpx = heights[pq] + latency(pq, px);
        const double new_hq = heights[pp] + latency(pp, q);
        const double delta_px = new_hpx - heights[px];
        const double delta_q = new_hq - heights[q];
        const double worst =
            std::max(max_px_sub + delta_px, max_sub[q] + delta_q);
        if (worst < best_c) {
          best_c = worst;
          best_subtree = q;
        }
      }
      unmark(in_sub_px, marked_px);
      unmark(anc_px, marked_anc);
    }

    // ---- apply the best of the three ------------------------------------
    const double best = std::min({best_a, best_b, best_c});
    if (best >= current) break;  // local optimum
    if (best == best_a && best_parent != kNoParticipant) {
      tree.Reparent(x, best_parent);
      recompute_subtree(x);
      ++stats.reparent_moves;
    } else if (best == best_b && best_leaf != kNoParticipant) {
      tree.SwapPositions(x, best_leaf);
      recompute_subtree(x);
      recompute_subtree(best_leaf);
      ++stats.leaf_swaps;
    } else if (best_subtree != kNoParticipant) {
      tree.SwapSubtrees(px, best_subtree);
      recompute_subtree(px);
      recompute_subtree(best_subtree);
      ++stats.subtree_swaps;
    } else {
      break;
    }
    // Degree bounds are preserved by construction: (a) checks free degree,
    // (b)/(c) exchange positions without changing any node's used degree.
    // Verify cheaply in debug builds.
#ifndef NDEBUG
    tree.Validate(degree_bounds);
#endif
    // Ties elsewhere in the tree can absorb the local gain; require strict
    // global progress to guarantee termination before max_moves.
    if (max_height() >= current - 1e-12) break;
  }

  stats.final_height = max_height();
  P2P_CHECK(stats.final_height <= stats.initial_height + 1e-9);
  return stats;
}

AdjustStats AdjustTree(MulticastTree& tree,
                       const std::vector<int>& degree_bounds,
                       const LatencyFn& latency,
                       const AdjustOptions& options) {
  const LatencyMatrix matrix(tree.participant_space(), tree.members(),
                             latency);
  return AdjustTree(tree, degree_bounds, matrix, options);
}

}  // namespace p2p::alm
