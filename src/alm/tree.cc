#include "alm/tree.h"

#include <algorithm>

#include "alm/latency_matrix.h"
#include "util/check.h"

namespace p2p::alm {
namespace {

// BFS height computation shared by the LatencyFn and LatencyMatrix
// overloads; `Lat` only needs operator()(ParticipantId, ParticipantId).
template <typename Lat>
std::vector<double> ComputeHeightsImpl(
    const std::vector<std::vector<ParticipantId>>& children,
    ParticipantId root, std::size_t member_count, const Lat& latency) {
  std::vector<double> h(children.size(), 0.0);
  // members_ is insertion-ordered but Reparent/SwapPositions break the
  // parent-before-child property, so walk top-down via BFS from the root.
  if (root == kNoParticipant) return h;
  std::vector<ParticipantId> queue{root};
  std::size_t head = 0;
  while (head < queue.size()) {
    const ParticipantId v = queue[head++];
    for (const ParticipantId c : children[v]) {
      h[c] = h[v] + latency(v, c);
      queue.push_back(c);
    }
  }
  P2P_CHECK_MSG(queue.size() == member_count, "tree contains a cycle");
  return h;
}

}  // namespace

MulticastTree::MulticastTree(std::size_t participant_count)
    : parent_(participant_count, kNoParticipant),
      children_(participant_count) {}

bool MulticastTree::Contains(ParticipantId v) const {
  P2P_CHECK(v < parent_.size());
  return parent_[v] != kNoParticipant;
}

void MulticastTree::SetRoot(ParticipantId r) {
  P2P_CHECK_MSG(root_ == kNoParticipant, "root already set");
  P2P_CHECK(r < parent_.size());
  root_ = r;
  parent_[r] = r;  // root is its own parent (sentinel for "in tree")
  members_.push_back(r);
  ++member_count_;
}

void MulticastTree::AddChild(ParticipantId parent, ParticipantId v) {
  P2P_CHECK_MSG(Contains(parent), "parent " << parent << " not in tree");
  P2P_CHECK_MSG(!Contains(v), "node " << v << " already in tree");
  parent_[v] = parent;
  children_[parent].push_back(v);
  members_.push_back(v);
  ++member_count_;
}

void MulticastTree::Reparent(ParticipantId v, ParticipantId new_parent) {
  P2P_CHECK(Contains(v) && v != root_);
  P2P_CHECK(Contains(new_parent));
  P2P_CHECK_MSG(!InSubtree(new_parent, v),
                "reparenting " << v << " under its own descendant");
  auto& sibs = children_[parent_[v]];
  sibs.erase(std::find(sibs.begin(), sibs.end(), v));
  parent_[v] = new_parent;
  children_[new_parent].push_back(v);
}

void MulticastTree::SwapPositions(ParticipantId a, ParticipantId b) {
  P2P_CHECK(Contains(a) && Contains(b));
  if (a == b) return;
  P2P_CHECK_MSG(parent_[a] != b && parent_[b] != a,
                "cannot swap a parent with its direct child");
  P2P_CHECK_MSG(a != root_ && b != root_, "cannot swap the root");

  const ParticipantId pa = parent_[a];
  const ParticipantId pb = parent_[b];
  // Swap the parent links (careful when a and b are siblings: swapping the
  // two entries in one child list must not match the freshly written one).
  if (pa == pb) {
    auto& cs = children_[pa];
    std::iter_swap(std::find(cs.begin(), cs.end(), a),
                   std::find(cs.begin(), cs.end(), b));
  } else {
    auto replace_child = [&](ParticipantId p, ParticipantId from,
                             ParticipantId to) {
      auto& cs = children_[p];
      *std::find(cs.begin(), cs.end(), from) = to;
    };
    replace_child(pa, a, b);
    replace_child(pb, b, a);
    parent_[a] = pb;
    parent_[b] = pa;
  }
  // Swap the children lists; their members' parent pointers follow.
  std::swap(children_[a], children_[b]);
  for (const ParticipantId c : children_[a]) parent_[c] = a;
  for (const ParticipantId c : children_[b]) parent_[c] = b;
}

void MulticastTree::SwapSubtrees(ParticipantId a, ParticipantId b) {
  P2P_CHECK(Contains(a) && Contains(b));
  P2P_CHECK(a != b);
  P2P_CHECK_MSG(a != root_ && b != root_, "cannot swap the root's subtree");
  P2P_CHECK_MSG(!InSubtree(a, b) && !InSubtree(b, a),
                "subtree swap between ancestor and descendant");
  const ParticipantId pa = parent_[a];
  const ParticipantId pb = parent_[b];
  if (pa == pb) return;  // same parent: the swap changes nothing
  auto& ca = children_[pa];
  auto& cb = children_[pb];
  *std::find(ca.begin(), ca.end(), a) = b;
  *std::find(cb.begin(), cb.end(), b) = a;
  parent_[a] = pb;
  parent_[b] = pa;
}

void MulticastTree::RemoveLeaf(ParticipantId v) {
  P2P_CHECK(Contains(v));
  P2P_CHECK_MSG(v != root_, "cannot remove the root");
  P2P_CHECK_MSG(children_[v].empty(), "node " << v << " has children");
  auto& sibs = children_[parent_[v]];
  sibs.erase(std::find(sibs.begin(), sibs.end(), v));
  parent_[v] = kNoParticipant;
  members_.erase(std::find(members_.begin(), members_.end(), v));
  --member_count_;
}

ParticipantId MulticastTree::parent(ParticipantId v) const {
  P2P_CHECK(Contains(v));
  return v == root_ ? kNoParticipant : parent_[v];
}

const std::vector<ParticipantId>& MulticastTree::children(
    ParticipantId v) const {
  P2P_CHECK(Contains(v));
  return children_[v];
}

int MulticastTree::Degree(ParticipantId v) const {
  P2P_CHECK(Contains(v));
  return static_cast<int>(children_[v].size()) + (v == root_ ? 0 : 1);
}

bool MulticastTree::IsLeaf(ParticipantId v) const {
  P2P_CHECK(Contains(v));
  return children_[v].empty();
}

bool MulticastTree::InSubtree(ParticipantId v, ParticipantId ancestor) const {
  P2P_CHECK(Contains(v) && Contains(ancestor));
  ParticipantId cur = v;
  for (;;) {
    if (cur == ancestor) return true;
    if (cur == root_) return false;
    cur = parent_[cur];
  }
}

std::vector<double> MulticastTree::ComputeHeights(
    const LatencyFn& latency) const {
  return ComputeHeightsImpl(children_, root_, member_count_, latency);
}

std::vector<double> MulticastTree::ComputeHeights(
    const LatencyMatrix& latency) const {
  return ComputeHeightsImpl(children_, root_, member_count_, latency);
}

double MulticastTree::Height(const LatencyFn& latency) const {
  const auto h = ComputeHeights(latency);
  double best = 0.0;
  for (const ParticipantId v : members_) best = std::max(best, h[v]);
  return best;
}

double MulticastTree::Height(const LatencyMatrix& latency) const {
  const auto h = ComputeHeights(latency);
  double best = 0.0;
  for (const ParticipantId v : members_) best = std::max(best, h[v]);
  return best;
}

void MulticastTree::Validate(const std::vector<int>& degree_bounds) const {
  P2P_CHECK(root_ != kNoParticipant);
  P2P_CHECK(degree_bounds.size() == parent_.size());
  std::size_t counted = 0;
  for (ParticipantId v = 0; v < parent_.size(); ++v) {
    if (!Contains(v)) {
      P2P_CHECK_MSG(children_[v].empty(), "non-member " << v << " has children");
      continue;
    }
    ++counted;
    P2P_CHECK_MSG(Degree(v) <= degree_bounds[v],
                  "node " << v << " degree " << Degree(v) << " exceeds bound "
                          << degree_bounds[v]);
    for (const ParticipantId c : children_[v])
      P2P_CHECK_MSG(parent_[c] == v, "broken parent link at " << c);
    if (v != root_) {
      P2P_CHECK_MSG(Contains(parent_[v]), "orphan node " << v);
      const auto& sibs = children_[parent_[v]];
      P2P_CHECK_MSG(std::count(sibs.begin(), sibs.end(), v) == 1,
                    "child-list inconsistency at " << v);
    }
  }
  P2P_CHECK(counted == member_count_);
  // Acyclicity + connectivity via the BFS in ComputeHeights.
  (void)ComputeHeights([](ParticipantId, ParticipantId) { return 1.0; });
}

}  // namespace p2p::alm
