// Tree adjustment (paper §5.2, footnote 2): approximate a globally optimal
// DB-MHT by hill-climbing with three move classes applied to the current
// highest (max aggregated latency) node:
//   (a) find a new parent for the highest node;
//   (b) swap the highest node with another leaf node;
//   (c) swap the sub-tree rooted at the highest node's parent with another
//       sub-tree.
// Moves are accepted only when they strictly reduce the tree height; the
// loop stops at a local optimum or after `max_moves`.
#pragma once

#include <cstddef>
#include <vector>

#include "alm/latency_matrix.h"
#include "alm/tree.h"

namespace p2p::alm {

struct AdjustOptions {
  bool enable_reparent = true;       // move (a)
  bool enable_leaf_swap = true;      // move (b)
  bool enable_subtree_swap = true;   // move (c)
  std::size_t max_moves = 1000;
};

struct AdjustStats {
  std::size_t reparent_moves = 0;
  std::size_t leaf_swaps = 0;
  std::size_t subtree_swaps = 0;
  double initial_height = 0.0;
  double final_height = 0.0;

  std::size_t total_moves() const {
    return reparent_moves + leaf_swaps + subtree_swaps;
  }
};

// Adjust `tree` in place. `degree_bounds` indexed by participant id;
// `latency` is the planning latency (decisions); the caller evaluates the
// final height under whatever latency it cares about.
//
// Heights are maintained incrementally: each accepted move re-derives only
// the subtrees it actually dislodged instead of recomputing the whole tree,
// so a move costs O(dirty subtree + members) rather than O(members × moves)
// latency evaluations. The LatencyMatrix overload is the fast path (the
// matrix must cover every tree member); the LatencyFn overload builds that
// matrix over the current members and delegates.
AdjustStats AdjustTree(MulticastTree& tree,
                       const std::vector<int>& degree_bounds,
                       const LatencyFn& latency,
                       const AdjustOptions& options = {});
AdjustStats AdjustTree(MulticastTree& tree,
                       const std::vector<int>& degree_bounds,
                       const LatencyMatrix& latency,
                       const AdjustOptions& options = {});

}  // namespace p2p::alm
