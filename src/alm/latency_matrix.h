// Flat pairwise-latency view for the ALM planning hot path.
//
// Planning algorithms (AMCast build, adjustment, height evaluation) make
// O(N²)–O(N³) latency queries over a small, fixed participant set. Going
// through the `LatencyFn` std::function for each query costs an indirect
// call per pair; a LatencyMatrix instead evaluates pairs ONCE up front and
// serves all subsequent queries from a flat row-major array.
//
// Covered ids come in two tiers, remapped to a dense 0..n-1 space:
//   - core ids (session root + members): every pair touching a core id is
//     precomputed — these are the pairs the inner loops hammer;
//   - satellite ids (helper candidates): satellite↔satellite pairs are NOT
//     filled. The only such queries are candidate-vs-spliced-helper scores,
//     a vanishing fraction of the total, and eagerly filling the candidate
//     block would cost O(H²) evaluations for a pool-sized H. They fall back
//     to the stored LatencyFn.
// Latencies are assumed symmetric — each unordered pair is evaluated once
// and mirrored — and the diagonal is pinned to 0 (planning never queries
// self-latency; 0 keeps the view a metric). The public `LatencyFn` APIs
// remain: they build a matrix internally and delegate, so tests and
// callers with exotic latencies need no changes.
#pragma once

#include <cstdint>
#include <vector>

#include "alm/tree.h"
#include "net/latency_oracle.h"
#include "util/check.h"

namespace p2p::alm {

class LatencyMatrix {
 public:
  LatencyMatrix() = default;

  // Builds an all-core view over `ids` (duplicates tolerated and
  // collapsed) drawn from the participant space [0, participant_space).
  LatencyMatrix(std::size_t participant_space,
                const std::vector<ParticipantId>& ids, const LatencyFn& fn)
      : LatencyMatrix(participant_space, ids, {}, fn) {}

  // Two-tier view: all pairs touching a core id are precomputed;
  // satellite↔satellite queries go through `fn` (which is retained).
  LatencyMatrix(std::size_t participant_space,
                const std::vector<ParticipantId>& core_ids,
                const std::vector<ParticipantId>& satellite_ids,
                const LatencyFn& fn);

  // Oracle-direct builds: participant ids must be host indices into
  // `oracle`. The fill loop calls oracle.Latency() directly — no
  // std::function dispatch per pair, which matters once the hierarchical
  // oracle makes 10k-host participant sets practical. Satellite↔satellite
  // queries fall back to a stored wrapper; `oracle` must outlive the
  // matrix.
  LatencyMatrix(std::size_t participant_space,
                const std::vector<ParticipantId>& ids,
                const net::LatencyOracle& oracle)
      : LatencyMatrix(participant_space, ids, {}, oracle) {}

  LatencyMatrix(std::size_t participant_space,
                const std::vector<ParticipantId>& core_ids,
                const std::vector<ParticipantId>& satellite_ids,
                const net::LatencyOracle& oracle);

  // Number of distinct covered ids (core + satellite).
  std::size_t size() const { return n_; }
  std::size_t core_size() const { return core_n_; }
  std::size_t participant_space() const { return dense_.size(); }

  bool Covers(ParticipantId v) const {
    return v < dense_.size() && dense_[v] != kAbsent;
  }

  // Latency between two covered ids. Symmetric; 0 on the diagonal.
  double operator()(ParticipantId a, ParticipantId b) const {
    P2P_DCHECK(Covers(a) && Covers(b));
    std::uint32_t ia = dense_[a];
    std::uint32_t ib = dense_[b];
    if (ib >= core_n_) {
      if (ia >= core_n_) return fn_(a, b);  // satellite↔satellite: rare
      std::swap(ia, ib);
    }
    return data_[static_cast<std::size_t>(ia) * core_n_ + ib];
  }

  // Dense index of a covered id; indices < core_size() are core.
  std::uint32_t DenseIndex(ParticipantId v) const {
    P2P_DCHECK(Covers(v));
    return dense_[v];
  }

  // Raw precomputed row of a covered id (core or satellite): entry
  // [DenseIndex(b)] holds the latency to core id b. The planner's
  // relaxation sweeps pin a row once per tree node and index it with
  // cached dense member indices, skipping both per-query id remaps.
  const double* CoreRow(ParticipantId v) const {
    P2P_DCHECK(Covers(v));
    return data_.data() + static_cast<std::size_t>(dense_[v]) * core_n_;
  }

  // Adapter for APIs that still take a LatencyFn. The returned function
  // references this matrix; it must not outlive it.
  LatencyFn AsFn() const {
    return [this](ParticipantId a, ParticipantId b) { return (*this)(a, b); };
  }

 private:
  static constexpr std::uint32_t kAbsent = ~std::uint32_t{0};

  // Shared fill over any pairwise evaluator (LatencyFn or a direct oracle
  // call); `fn_` must already be set for the satellite fallback.
  template <typename Eval>
  void Build(std::size_t participant_space,
             const std::vector<ParticipantId>& core_ids,
             const std::vector<ParticipantId>& satellite_ids,
             const Eval& eval);

  std::size_t n_ = 0;       // distinct covered ids
  std::uint32_t core_n_ = 0;
  std::vector<std::uint32_t> dense_;  // participant id -> dense index;
                                      // core ids occupy [0, core_n_)
  std::vector<double> data_;          // n_ rows × core_n_ columns
  LatencyFn fn_;                      // satellite↔satellite fallback
};

}  // namespace p2p::alm
